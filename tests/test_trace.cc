// Structured event tracing (sim/trace.h): wire-format golden fixtures and
// truncation fuzz (mirroring test_packet.cc style), JSONL round-trips, the
// null-recorder zero-overhead guarantee, time-series folding, per-trial
// path routing, and end-to-end determinism — same (scheme, config, seed)
// must produce byte-identical trace files serially and under LRS_JOBS>1,
// with fault-injected reboots recorded at identical SimTimes.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/run_trials.h"
#include "proto/engine.h"
#include "proto/scheme.h"
#include "sim/trace.h"

namespace lrs::sim {
namespace {

// The trace layer mirrors these proto enums numerically (sim/ cannot
// include proto/); a renumbering must be caught here, not in a viewer.
static_assert(static_cast<int>(proto::NodeState::kMaintain) == 0);
static_assert(static_cast<int>(proto::NodeState::kRx) == 1);
static_assert(static_cast<int>(proto::NodeState::kTx) == 2);
static_assert(static_cast<int>(proto::DataStatus::kRejected) == 0);
static_assert(static_cast<int>(proto::DataStatus::kStale) == 1);
static_assert(static_cast<int>(proto::DataStatus::kStored) == 2);
static_assert(static_cast<int>(proto::DataStatus::kPageComplete) == 3);
static_assert(static_cast<int>(proto::DataStatus::kImageComplete) == 4);

std::string to_hex(ByteView b) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (auto v : b) {
    out.push_back(digits[v >> 4]);
    out.push_back(digits[v & 0xf]);
  }
  return out;
}

TEST(TraceEventWire, GoldenFixture) {
  TraceEvent e;
  e.time = 0x0102030405060708;
  e.type = TraceEventType::kDeliver;
  e.node = 7;
  e.peer = 0xAABBCCDD;
  e.cls = 3;
  e.a = 0x11223344;
  e.b = 1;

  Bytes wire;
  e.encode(wire);
  ASSERT_EQ(wire.size(), kTraceEventWireSize);
  // Little-endian: time, type tag, node, peer, cls, a, b.
  EXPECT_EQ(to_hex(view(wire)),
            "0807060504030201"  // time
            "02"                // kDeliver
            "07000000"          // node
            "ddccbbaa"          // peer
            "03"                // cls
            "44332211"          // a
            "01000000");        // b

  const auto back = TraceEvent::decode(view(wire));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, e);
}

TEST(TraceEventWire, TruncationFuzz) {
  TraceEvent e;
  e.time = 123456;
  e.type = TraceEventType::kPageComplete;
  e.node = 3;
  e.a = 2;
  e.b = 5;
  Bytes wire;
  e.encode(wire);
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(
        TraceEvent::decode(ByteView(wire.data(), len)).has_value())
        << "decode accepted a " << len << "-byte truncation";
  }
  // Trailing bytes beyond one record are the next record's problem, not
  // a decode failure.
  Bytes extended = wire;
  extended.push_back(0xFF);
  EXPECT_TRUE(TraceEvent::decode(view(extended)).has_value());
}

TEST(TraceEventWire, UnknownTypeRejected) {
  TraceEvent e;
  e.type = TraceEventType::kSend;
  Bytes wire;
  e.encode(wire);
  for (std::uint8_t bad : {std::uint8_t{0}, std::uint8_t{10},
                           std::uint8_t{0xFF}}) {
    wire[8] = bad;
    EXPECT_FALSE(TraceEvent::decode(view(wire)).has_value());
  }
}

std::vector<TraceEvent> sample_events() {
  return {
      {10, TraceEventType::kSend, 0, 0, 2, 96, 0},
      {20, TraceEventType::kDeliver, 1, 0, 2, 96, 1},
      {30, TraceEventType::kReboot, 2, 0, 0, 0, 0},
      {40, TraceEventType::kStateTransition, 1, 0, 0, 0, 2},
      {50, TraceEventType::kPageComplete, 1, 0, 0, 3, 4},
      {60, TraceEventType::kNodeComplete, 1, 0, 0, 0, 0},
      {70, TraceEventType::kAuthFailure, 2, 0, 1, 0, 0},
      {80, TraceEventType::kDataServe, 0, 0, 0, 2, 9},
      {90, TraceEventType::kDataRx, 1, 0, 3, 2, 9},
  };
}

TEST(TraceEventWire, RoundTripAllTypes) {
  for (const auto& e : sample_events()) {
    Bytes wire;
    e.encode(wire);
    const auto back = TraceEvent::decode(view(wire));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, e);
  }
}

TEST(TraceEventJsonl, RoundTripAllTypes) {
  for (const auto& e : sample_events()) {
    const std::string line = e.to_jsonl();
    const auto back = TraceEvent::from_jsonl(line);
    ASSERT_TRUE(back.has_value()) << line;
    EXPECT_EQ(*back, e) << line;
    // Canonical: re-serializing reproduces the line byte-for-byte (the
    // property trace_analyze --check enforces).
    EXPECT_EQ(back->to_jsonl(), line);
  }
}

TEST(TraceEventJsonl, MalformedRejected) {
  EXPECT_FALSE(TraceEvent::from_jsonl("").has_value());
  EXPECT_FALSE(TraceEvent::from_jsonl("{}").has_value());
  EXPECT_FALSE(TraceEvent::from_jsonl("{\"t\":1,\"node\":0}").has_value());
  EXPECT_FALSE(
      TraceEvent::from_jsonl("{\"t\":1,\"type\":\"nope\",\"node\":0}")
          .has_value());
  // A send without its required class/bytes fields.
  EXPECT_FALSE(
      TraceEvent::from_jsonl("{\"t\":1,\"type\":\"send\",\"node\":0}")
          .has_value());
}

TEST(PacketClassName, RoundTrip) {
  for (std::size_t c = 0; c < kPacketClassCount; ++c) {
    const auto cls = static_cast<PacketClass>(c);
    const auto back = packet_class_from_name(packet_class_name(cls));
    ASSERT_TRUE(back.has_value()) << packet_class_name(cls);
    EXPECT_EQ(*back, cls);
  }
  EXPECT_FALSE(packet_class_from_name("?").has_value());
  EXPECT_FALSE(packet_class_from_name("").has_value());
  EXPECT_FALSE(packet_class_from_name("datagram").has_value());
}

TEST(TraceEventTypeName, RoundTrip) {
  for (std::uint8_t t = 1; t <= 9; ++t) {
    const auto type = static_cast<TraceEventType>(t);
    const auto back = trace_event_type_from_name(trace_event_type_name(type));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, type);
  }
  EXPECT_FALSE(trace_event_type_from_name("?").has_value());
  EXPECT_FALSE(trace_event_type_from_name("sendx").has_value());
}

TEST(TraceRecorder, DisabledRecordsNothing) {
  TraceRecorder off(false);
  EXPECT_FALSE(off.enabled());
  // Zero allocations when off: the event vector never reserves.
  EXPECT_EQ(off.events().capacity(), 0u);
  Bytes frame(32, 0);
  off.on_send(1, 0, PacketClass::kData, view(frame));
  off.after_deliver(2, 0, 1, PacketClass::kData, view(frame), false);
  off.on_reboot(3, 1);
  off.on_state_transition(4, 1, 0, 2);
  off.on_page_complete(5, 1, 0, 1);
  off.on_node_complete(6, 1);
  off.on_auth_failure(7, 1, PacketClass::kSnack);
  off.on_data_served(8, 0, 0, 1);
  off.on_data_packet(9, 1, 0, 1, 2);
  EXPECT_TRUE(off.events().empty());
  EXPECT_EQ(off.events().capacity(), 0u);
}

TEST(TraceRecorder, RecordsEveryHook) {
  TraceRecorder rec;
  Bytes frame(48, 0);
  rec.on_send(1, 0, PacketClass::kData, view(frame));
  rec.after_deliver(2, 0, 3, PacketClass::kSnack, view(frame), true);
  rec.on_reboot(3, 2);
  ASSERT_EQ(rec.events().size(), 3u);
  EXPECT_EQ(rec.events()[0].type, TraceEventType::kSend);
  EXPECT_EQ(rec.events()[0].a, 48u);
  EXPECT_EQ(rec.events()[1].type, TraceEventType::kDeliver);
  EXPECT_EQ(rec.events()[1].node, 3u);
  EXPECT_EQ(rec.events()[1].peer, 0u);
  EXPECT_EQ(rec.events()[1].b, 1u);  // tampered
  EXPECT_EQ(rec.events()[2].type, TraceEventType::kReboot);
}

TEST(TimeSeries, FoldsCumulativeCounters) {
  std::vector<TraceEvent> events = {
      {100, TraceEventType::kSend, 0, 0,
       static_cast<std::uint8_t>(PacketClass::kData), 90, 0},
      {kSecond + 1, TraceEventType::kSend, 0, 0,
       static_cast<std::uint8_t>(PacketClass::kSnack), 40, 0},
      {kSecond + 2, TraceEventType::kPageComplete, 1, 0, 0, 0, 1},
      {2 * kSecond + 5, TraceEventType::kNodeComplete, 1, 0, 0, 0, 0},
      {2 * kSecond + 6, TraceEventType::kAuthFailure, 2, 0, 0, 0, 0},
  };
  const auto samples = build_time_series(events, kSecond, 3);
  ASSERT_GE(samples.size(), 3u);

  const auto& s1 = samples[0];  // t = 1 s: only the first send landed
  EXPECT_EQ(s1.time, kSecond);
  EXPECT_EQ(s1.sent[static_cast<std::size_t>(PacketClass::kData)], 1u);
  EXPECT_EQ(s1.sent[static_cast<std::size_t>(PacketClass::kSnack)], 0u);
  EXPECT_EQ(s1.sent_bytes, 90u);
  EXPECT_EQ(s1.completed_nodes, 0u);

  const auto& s2 = samples[1];  // t = 2 s: snack sent, page 0 decoded
  EXPECT_EQ(s2.sent[static_cast<std::size_t>(PacketClass::kSnack)], 1u);
  EXPECT_EQ(s2.sent_bytes, 130u);
  EXPECT_EQ(s2.frontier_sum, 1u);

  const auto& last = samples.back();
  EXPECT_EQ(last.completed_nodes, 1u);
  EXPECT_EQ(last.auth_failures, 1u);
  EXPECT_GE(last.time, events.back().time);
}

TEST(TraceForTrial, RoutesPathsPerCell) {
  TraceExportConfig base;
  base.events_path = "out/t.jsonl";
  base.chrome_path = "t.chrome.json";
  base.timeseries_path = "ts";

  // Cell (0, 0) always gets the base paths verbatim.
  const auto first = trace_for_trial(base, 0, 0);
  EXPECT_EQ(first.events_path, base.events_path);
  EXPECT_EQ(first.timeseries_path, base.timeseries_path);

  // Other cells are disabled unless all_trials is set.
  EXPECT_FALSE(trace_for_trial(base, 0, 1).enabled());
  EXPECT_FALSE(trace_for_trial(base, 2, 0).enabled());

  base.all_trials = true;
  const auto cell = trace_for_trial(base, 2, 3);
  EXPECT_EQ(cell.events_path, "out/t.c2.t3.jsonl");
  EXPECT_EQ(cell.chrome_path, "t.chrome.c2.t3.json");
  EXPECT_EQ(cell.timeseries_path, "ts.c2.t3");  // no extension: appended

  // A disabled base stays disabled everywhere.
  EXPECT_FALSE(trace_for_trial({}, 0, 0).enabled());
}

}  // namespace
}  // namespace lrs::sim

namespace lrs::core {
namespace {

ExperimentConfig traced_config(std::uint64_t seed) {
  ExperimentConfig c;
  c.scheme = Scheme::kLrSeluge;
  c.image_size = 4 * 1024;
  c.receivers = 4;
  c.loss_p = 0.2;
  c.seed = seed;
  return c;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

struct TempTraceFiles {
  std::string events, chrome, series;
  explicit TempTraceFiles(const std::string& tag)
      : events("test_trace_" + tag + ".jsonl"),
        chrome("test_trace_" + tag + ".chrome.json"),
        series("test_trace_" + tag + ".ts.json") {}
  ~TempTraceFiles() {
    std::remove(events.c_str());
    std::remove(chrome.c_str());
    std::remove(series.c_str());
  }
  sim::TraceExportConfig config() const {
    sim::TraceExportConfig t;
    t.events_path = events;
    t.chrome_path = chrome;
    t.timeseries_path = series;
    return t;
  }
};

std::vector<sim::TraceEvent> load_jsonl(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  std::vector<sim::TraceEvent> events;
  for (std::string line; std::getline(in, line);) {
    const auto e = sim::TraceEvent::from_jsonl(line);
    EXPECT_TRUE(e.has_value()) << line;
    if (e) events.push_back(*e);
  }
  return events;
}

TEST(TraceEndToEnd, CapturesProtocolEvents) {
  TempTraceFiles files("e2e");
  auto cfg = traced_config(11);
  cfg.trace = files.config();
  const auto r = run_experiment(cfg);
  ASSERT_TRUE(r.all_complete);

  const auto events = load_jsonl(files.events);
  ASSERT_FALSE(events.empty());

  std::size_t sends = 0, delivers = 0, completes = 0, serves = 0;
  std::size_t transitions = 0, pages = 0;
  sim::SimTime prev = 0;
  for (const auto& e : events) {
    EXPECT_GE(e.time, prev);  // exported log is time-ordered
    prev = e.time;
    switch (e.type) {
      case sim::TraceEventType::kSend: ++sends; break;
      case sim::TraceEventType::kDeliver: ++delivers; break;
      case sim::TraceEventType::kNodeComplete: ++completes; break;
      case sim::TraceEventType::kDataServe: ++serves; break;
      case sim::TraceEventType::kStateTransition: ++transitions; break;
      case sim::TraceEventType::kPageComplete: ++pages; break;
      default: break;
    }
  }
  EXPECT_GT(sends, 0u);
  EXPECT_GT(delivers, 0u);
  EXPECT_GT(serves, 0u);
  EXPECT_GT(transitions, 0u);
  EXPECT_GT(pages, 0u);
  // Every receiver completes exactly once, plus the base station (which
  // notifies at start-up — observers attach before the event loop runs).
  EXPECT_EQ(completes, static_cast<std::size_t>(r.receivers) + 1);

  // The Chrome trace and time series were written and are non-trivial.
  const std::string chrome = slurp(files.chrome);
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  const std::string series = slurp(files.series);
  EXPECT_NE(series.find("\"completed_nodes\""), std::string::npos);
}

TEST(TraceEndToEnd, SameSeedIsByteIdentical) {
  TempTraceFiles a("det_a"), b("det_b");
  auto ca = traced_config(33);
  ca.trace = a.config();
  auto cb = traced_config(33);
  cb.trace = b.config();
  run_experiment(ca);
  run_experiment(cb);
  EXPECT_EQ(slurp(a.events), slurp(b.events));
  EXPECT_EQ(slurp(a.chrome), slurp(b.chrome));
  EXPECT_EQ(slurp(a.series), slurp(b.series));
}

TEST(TraceEndToEnd, SerialAndParallelTracesMatch) {
  TempTraceFiles serial("jobs1"), parallel("jobs4");
  // Trace every trial so the comparison covers seeds beyond the first.
  auto cs = traced_config(7);
  cs.trace = serial.config();
  cs.trace.all_trials = true;
  auto cp = traced_config(7);
  cp.trace = parallel.config();
  cp.trace.all_trials = true;
  run_trials(cs, 3, 1);
  run_trials(cp, 3, 4);

  EXPECT_EQ(slurp(serial.events), slurp(parallel.events));
  for (std::size_t trial = 1; trial < 3; ++trial) {
    const auto s = sim::trace_for_trial(cs.trace, 0, trial);
    const auto p = sim::trace_for_trial(cp.trace, 0, trial);
    EXPECT_EQ(slurp(s.events_path), slurp(p.events_path)) << trial;
    std::remove(s.events_path.c_str());
    std::remove(s.chrome_path.c_str());
    std::remove(s.timeseries_path.c_str());
    std::remove(p.events_path.c_str());
    std::remove(p.chrome_path.c_str());
    std::remove(p.timeseries_path.c_str());
  }
}

TEST(TraceEndToEnd, FaultRebootsRecordedAtIdenticalSimTimes) {
  const auto run_with_faults = [](const std::string& tag) {
    TempTraceFiles files(tag);
    auto cfg = traced_config(21);
    cfg.trace.events_path = files.events;  // JSONL only
    cfg.faults.crashes = {{2, sim::kSecond, 2 * sim::kSecond},
                          {3, 3 * sim::kSecond, sim::kSecond}};
    cfg.faults.corrupt_prob = 0.1;
    run_experiment(cfg);
    std::vector<std::pair<sim::SimTime, NodeId>> reboots;
    bool saw_tampered = false;
    for (const auto& e : load_jsonl(files.events)) {
      if (e.type == sim::TraceEventType::kReboot) {
        reboots.push_back({e.time, e.node});
      }
      if (e.type == sim::TraceEventType::kDeliver && e.b != 0) {
        saw_tampered = true;
      }
      if (e.type == sim::TraceEventType::kAuthFailure) saw_tampered = true;
    }
    EXPECT_EQ(reboots.size(), 2u);
    EXPECT_TRUE(saw_tampered);
    return reboots;
  };
  const auto first = run_with_faults("fault_a");
  const auto second = run_with_faults("fault_b");
  EXPECT_EQ(first, second);
}

TEST(TraceEndToEnd, DisabledTraceChangesNothing) {
  // The null-recorder fast path: an untraced run's aggregates equal a
  // traced run's (recording is passive), and no files appear.
  auto plain = traced_config(5);
  auto traced = traced_config(5);
  TempTraceFiles files("off");
  traced.trace = files.config();
  const auto a = run_experiment(plain);
  const auto b = run_experiment(traced);
  EXPECT_EQ(a.data_packets, b.data_packets);
  EXPECT_EQ(a.snack_packets, b.snack_packets);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.received_bytes, b.received_bytes);
  EXPECT_EQ(a.latency_s, b.latency_s);
  std::ifstream should_not_exist("test_trace_never_written.jsonl");
  EXPECT_FALSE(static_cast<bool>(should_not_exist));
}

TEST(ReceivedBytes, CountedPerDelivery) {
  const auto r = run_experiment(traced_config(3));
  EXPECT_GT(r.received_bytes, 0u);
  // Star topology: every broadcast reaches the other N nodes at most, so
  // rx bytes are bounded by fanout x tx bytes (loss removes some).
  EXPECT_LE(r.received_bytes, r.total_bytes * (4 + 1));
}

}  // namespace
}  // namespace lrs::core
