// The parallel trial runner must be a drop-in replacement for the
// historical serial loop: identical per-trial results, identical
// aggregates, regardless of thread count or scheduling order.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "core/experiment.h"
#include "core/run_trials.h"

namespace lrs::core {
namespace {

ExperimentConfig small_config(Scheme scheme, double loss, std::uint64_t seed) {
  ExperimentConfig c;
  c.scheme = scheme;
  c.image_size = 4 * 1024;  // small image keeps the test fast
  c.receivers = 5;
  c.loss_p = loss;
  c.seed = seed;
  return c;
}

void expect_equal(const ExperimentResult& a, const ExperimentResult& b,
                  const char* what) {
  EXPECT_EQ(a.all_complete, b.all_complete) << what;
  EXPECT_EQ(a.completed, b.completed) << what;
  EXPECT_EQ(a.receivers, b.receivers) << what;
  EXPECT_EQ(a.data_packets, b.data_packets) << what;
  EXPECT_EQ(a.page0_data_packets, b.page0_data_packets) << what;
  EXPECT_EQ(a.snack_packets, b.snack_packets) << what;
  EXPECT_EQ(a.adv_packets, b.adv_packets) << what;
  EXPECT_EQ(a.sig_packets, b.sig_packets) << what;
  EXPECT_EQ(a.total_bytes, b.total_bytes) << what;
  EXPECT_EQ(a.latency_s, b.latency_s) << what;  // bitwise: same arithmetic
  EXPECT_EQ(a.collisions, b.collisions) << what;
  EXPECT_EQ(a.hash_verifications, b.hash_verifications) << what;
  EXPECT_EQ(a.signature_verifications, b.signature_verifications) << what;
  EXPECT_EQ(a.auth_failures, b.auth_failures) << what;
  EXPECT_EQ(a.tx_energy_mj, b.tx_energy_mj) << what;
  EXPECT_EQ(a.rx_energy_mj, b.rx_energy_mj) << what;
  EXPECT_EQ(a.listen_energy_mj, b.listen_energy_mj) << what;
  EXPECT_EQ(a.received_bytes, b.received_bytes) << what;
  EXPECT_EQ(a.events_executed, b.events_executed) << what;
  EXPECT_EQ(a.images_match, b.images_match) << what;
}

TEST(RunTrials, TrialIUsesSeedPlusI) {
  const auto cfg = small_config(Scheme::kLrSeluge, 0.2, 77);
  const auto trials = run_trials(cfg, 3, 1);
  ASSERT_EQ(trials.size(), 3u);
  for (std::size_t i = 0; i < trials.size(); ++i) {
    auto c = cfg;
    c.seed = cfg.seed + i;
    expect_equal(trials[i], run_experiment(c), "derived seed");
  }
}

TEST(RunTrials, ParallelMatchesSerialPerTrial) {
  const auto cfg = small_config(Scheme::kLrSeluge, 0.3, 42);
  const auto serial = run_trials(cfg, 4, 1);
  const auto parallel = run_trials(cfg, 4, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_equal(serial[i], parallel[i], "jobs=1 vs jobs=4");
  }
  expect_equal(aggregate_trials(serial), aggregate_trials(parallel),
               "aggregate");
}

TEST(RunTrials, AggregateMatchesRunExperimentAvg) {
  // run_experiment_avg is itself built on run_trials now, but pin the
  // contract anyway: an explicit serial run folded through
  // aggregate_trials equals the public averaging entry point.
  const auto cfg = small_config(Scheme::kSeluge, 0.1, 9);
  const auto avg = run_experiment_avg(cfg, 3);
  expect_equal(aggregate_trials(run_trials(cfg, 3, 1)), avg, "avg");
}

TEST(RunTrials, GridRunnerMatchesPerConfigAveraging) {
  std::vector<ExperimentConfig> configs = {
      small_config(Scheme::kLrSeluge, 0.0, 5),
      small_config(Scheme::kSeluge, 0.2, 5),
      small_config(Scheme::kLrSeluge, 0.4, 11),
  };
  const auto grid = run_experiments_avg(configs, 2, 3);
  ASSERT_EQ(grid.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    expect_equal(grid[i], run_experiment_avg(configs[i], 2), "grid");
  }
}

TEST(RunTrials, DefaultJobsHonorsEnvOverride) {
  ::setenv("LRS_JOBS", "3", 1);
  EXPECT_EQ(default_jobs(), 3u);
  ::setenv("LRS_JOBS", "0", 1);  // invalid: must fall back, stay >= 1
  EXPECT_GE(default_jobs(), 1u);
  ::setenv("LRS_JOBS", "junk", 1);
  EXPECT_GE(default_jobs(), 1u);
  ::unsetenv("LRS_JOBS");
  EXPECT_GE(default_jobs(), 1u);
}

TEST(RunTrials, ZeroRepeatsIsRejected) {
  const auto cfg = small_config(Scheme::kLrSeluge, 0.0, 1);
  EXPECT_THROW(run_trials(cfg, 0, 2), std::logic_error);
}

// ---------------------------------------------------------------------------
// Island-sharded execution (core/experiment.cc + sim/partition.h)
// ---------------------------------------------------------------------------

/// 2x3 lattice of radio-isolated cells, 4 nodes each: six islands, six
/// bases, every receiver two radio hops at most from its island's base.
ExperimentConfig cells_config(std::uint64_t seed) {
  ExperimentConfig c;
  c.scheme = Scheme::kLrSeluge;
  c.image_size = 4 * 1024;
  c.topo = ExperimentConfig::Topo::kSpec;
  c.topo_spec.kind = sim::TopologyKind::kCells;
  c.topo_spec.rows = 2;
  c.topo_spec.cols = 3;
  c.topo_spec.nodes = 24;
  c.topo_spec.width = 30.0;   // 30x30 box, diagonal < outer radius: every
  c.topo_spec.height = 30.0;  // cell placement is connected on the first try
  c.topo_spec.seed = 7;
  c.loss_p = 0.1;
  c.seed = seed;
  c.islands = true;
  c.check_invariants = true;  // per-island observers must merge cleanly
  return c;
}

TEST(IslandExecutor, WorkerCountNeverChangesTheResult) {
  auto cfg = cells_config(5);
  cfg.island_jobs = 1;
  const auto serial = run_experiment(cfg);
  cfg.island_jobs = 4;
  const auto parallel = run_experiment(cfg);
  expect_equal(serial, parallel, "island jobs=1 vs jobs=4");
  EXPECT_TRUE(serial.all_complete);
  EXPECT_TRUE(serial.images_match);
  // Six islands, six bases: 24 - 6 receivers.
  EXPECT_EQ(serial.receivers, 18u);
  EXPECT_EQ(serial.completed, 18u);
  EXPECT_EQ(serial.invariant_violations, 0u);
  EXPECT_GT(serial.invariant_checks, 0u);
}

TEST(IslandExecutor, ConnectedTopologyTakesTheClassicPath) {
  auto cfg = small_config(Scheme::kLrSeluge, 0.2, 3);
  const auto classic = run_experiment(cfg);
  cfg.islands = true;  // a star is one island: must match classic exactly
  cfg.island_jobs = 4;
  const auto island = run_experiment(cfg);
  expect_equal(classic, island, "classic vs islands on connected topology");
}

TEST(IslandExecutor, SecureSchemesShareOneRootAcrossIslands) {
  // Seluge receivers verify the per-island signature against the single
  // preloaded root; >4 islands also exercises the taller one-time-key tree.
  auto cfg = cells_config(11);
  cfg.scheme = Scheme::kSeluge;
  cfg.check_invariants = false;
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.all_complete);
  EXPECT_TRUE(r.images_match);
  EXPECT_GT(r.signature_verifications, 0u);
  EXPECT_EQ(r.auth_failures, 0u);
}

}  // namespace
}  // namespace lrs::core
