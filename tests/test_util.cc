// Unit tests for the util substrate: bit vectors, serialization, RNG,
// hex, statistics and table formatting.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/bitvec.h"
#include "util/buffer.h"
#include "util/check.h"
#include "util/csv.h"
#include "util/hex.h"
#include "util/rng.h"
#include "util/stats.h"

namespace lrs {
namespace {

// ---------------------------------------------------------------------------
// BitVec
// ---------------------------------------------------------------------------

TEST(BitVec, StartsCleared) {
  BitVec v(70);
  EXPECT_EQ(v.size(), 70u);
  EXPECT_EQ(v.count(), 0u);
  EXPECT_TRUE(v.none());
  for (std::size_t i = 0; i < 70; ++i) EXPECT_FALSE(v.get(i));
}

TEST(BitVec, SetAndClearAcrossWordBoundary) {
  BitVec v(130);
  v.set(0);
  v.set(63);
  v.set(64);
  v.set(129);
  EXPECT_EQ(v.count(), 4u);
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  v.clear(64);
  EXPECT_FALSE(v.get(64));
  EXPECT_EQ(v.count(), 3u);
}

TEST(BitVec, SetAllRespectsSize) {
  BitVec v(67, true);
  EXPECT_EQ(v.count(), 67u);
  v.clear_all();
  EXPECT_EQ(v.count(), 0u);
}

TEST(BitVec, UnionIntersectionSubtract) {
  BitVec a(10), b(10);
  a.set(1);
  a.set(3);
  b.set(3);
  b.set(5);
  EXPECT_EQ((a | b).count(), 3u);
  EXPECT_EQ((a & b).count(), 1u);
  BitVec c = a;
  c.subtract(b);
  EXPECT_TRUE(c.get(1));
  EXPECT_FALSE(c.get(3));
}

TEST(BitVec, XorIsSymmetricDifference) {
  BitVec a(8), b(8);
  a.set(1);
  a.set(2);
  b.set(2);
  b.set(3);
  a ^= b;
  EXPECT_TRUE(a.get(1));
  EXPECT_FALSE(a.get(2));
  EXPECT_TRUE(a.get(3));
}

TEST(BitVec, FirstSetLinearAndCyclic) {
  BitVec v(10);
  EXPECT_FALSE(v.first_set().has_value());
  v.set(7);
  v.set(2);
  EXPECT_EQ(v.first_set().value(), 2u);
  EXPECT_EQ(v.first_set(3).value(), 7u);
  EXPECT_EQ(v.first_set_cyclic(8).value(), 2u);
  EXPECT_EQ(v.first_set_cyclic(7).value(), 7u);
}

TEST(BitVec, RoundTripsThroughBytes) {
  BitVec v(19);
  v.set(0);
  v.set(8);
  v.set(18);
  const Bytes raw = v.to_bytes();
  EXPECT_EQ(raw.size(), 3u);
  EXPECT_EQ(BitVec::from_bytes(view(raw), 19), v);
}

TEST(BitVec, SizeMismatchThrows) {
  BitVec a(4), b(5);
  EXPECT_THROW(a |= b, std::logic_error);
  EXPECT_THROW(a.get(4), std::logic_error);
}

// ---------------------------------------------------------------------------
// Writer / Reader
// ---------------------------------------------------------------------------

TEST(Buffer, IntegerRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  Reader r(view(w.data()));
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.at_end());
}

TEST(Buffer, SizedBytesRoundTrip) {
  Writer w;
  const Bytes payload{1, 2, 3, 4, 5};
  w.sized_bytes(view(payload));
  Reader r(view(w.data()));
  EXPECT_EQ(r.sized_bytes(), payload);
}

TEST(Buffer, TruncatedInputFailsSoft) {
  Writer w;
  w.u16(300);
  Reader r(view(w.data()));
  EXPECT_FALSE(r.try_u32().has_value());
  // try_* must not consume on failure paths that matter: a fresh reader
  // still parses the u16.
  Reader r2(view(w.data()));
  EXPECT_EQ(r2.try_u16().value(), 300);
}

TEST(Buffer, SizedBytesWithLyingLengthFails) {
  Writer w;
  w.u16(100);  // claims 100 bytes follow
  w.u8(1);
  Reader r(view(w.data()));
  EXPECT_FALSE(r.try_sized_bytes().has_value());
}

TEST(Buffer, ThrowingAccessorsThrowOnTruncation) {
  Bytes empty;
  Reader r(view(empty));
  EXPECT_THROW(r.u32(), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform(13), 13u);
}

TEST(Rng, UniformCoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(99);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, GeometricMeanMatches) {
  Rng rng(3);
  double total = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i)
    total += static_cast<double>(rng.geometric(0.25));
  EXPECT_NEAR(total / trials, 4.0, 0.1);
}

TEST(Rng, ForkedStreamsAreIndependentlySeeded) {
  Rng parent(10);
  Rng a = parent.fork();
  Rng b = parent.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 4);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

// ---------------------------------------------------------------------------
// Hex
// ---------------------------------------------------------------------------

TEST(Hex, EncodesLowercase) {
  const Bytes data{0x00, 0xff, 0xa5};
  EXPECT_EQ(to_hex(view(data)), "00ffa5");
}

TEST(Hex, DecodesBothCases) {
  EXPECT_EQ(from_hex("00FFa5").value(), (Bytes{0x00, 0xff, 0xa5}));
}

TEST(Hex, RejectsOddLengthAndBadChars) {
  EXPECT_FALSE(from_hex("abc").has_value());
  EXPECT_FALSE(from_hex("zz").has_value());
}

TEST(Hex, RoundTrip) {
  Bytes data;
  for (int i = 0; i < 256; ++i) data.push_back(static_cast<std::uint8_t>(i));
  EXPECT_EQ(from_hex(to_hex(view(data))).value(), data);
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

TEST(Summary, BasicMoments) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, EmptyIsSafe) {
  Summary s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(CounterSet, AddsAndMerges) {
  CounterSet a, b;
  a.add("x");
  a.add("x", 2);
  b.add("y", 5);
  a.merge(b);
  EXPECT_EQ(a.get("x"), 3u);
  EXPECT_EQ(a.get("y"), 5u);
  EXPECT_EQ(a.get("missing"), 0u);
}

// ---------------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------------

TEST(Table, RendersAlignedAndCsv) {
  Table t({"a", "long header", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row(std::vector<double>{1.5, 2.0, 3.25});
  std::ostringstream human, csv;
  t.print(human);
  t.print_csv(csv);
  EXPECT_NE(human.str().find("long header"), std::string::npos);
  EXPECT_EQ(csv.str(), "a,long header,c\n1,2,3\n1.50,2,3.25\n");
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::logic_error);
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table t({"x"});
  t.add_row({std::string("a,\"b\"")});
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_EQ(csv.str(), "x\n\"a,\"\"b\"\"\"\n");
}

}  // namespace
}  // namespace lrs
