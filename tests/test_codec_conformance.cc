// Cross-codec conformance suite: one parameterized battery every CodecKind
// must pass, plus exhaustive erasure-pattern enumeration for the
// deterministic codecs on every small geometry.
//
// The key observation behind the differential checks: every backend is
// byte-wise GF(256)-linear — RS/LRC/xorsched by construction, rlc256 with
// random coefficients, rlc2/LT with {0,1} coefficients (XOR is GF(256)
// multiplication by 1). So the effective n x k generator of ANY codec can be
// recovered by probing with unit single-byte blocks, and both encode and
// decode can be checked against plain reference matrix arithmetic:
//  * encode(blocks) must equal G x blocks computed with scalar Gf256 ops;
//  * decode success implies the received rows span rank k, and the payload
//    must match a reference Gauss-Jordan solve over the probed rows;
//  * for full-elimination decoders the converse holds too: rank k received
//    rows guarantee decode (LT's peeling decoder is deliberately weaker).
// Rank over GF(256) of a {0,1} matrix equals its GF(2) rank (rank is
// invariant under field extension), so one oracle serves every codec.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <numeric>

#include "erasure/code.h"
#include "erasure/gf256.h"
#include "erasure/matrix.h"
#include "util/rng.h"

namespace lrs::erasure {
namespace {

std::vector<Bytes> random_blocks(std::size_t k, std::size_t len,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Bytes> blocks(k);
  for (auto& b : blocks) {
    b.resize(len);
    for (auto& v : b) v = static_cast<std::uint8_t>(rng.uniform(256));
  }
  return blocks;
}

std::vector<Share> pick_shares(const std::vector<Bytes>& encoded,
                               const std::vector<std::size_t>& indices) {
  std::vector<Share> shares;
  for (auto i : indices) shares.push_back({i, encoded[i]});
  return shares;
}

/// Random size-`take` subset of [0, n).
std::vector<std::size_t> random_subset(std::size_t n, std::size_t take,
                                       Rng& rng) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  for (std::size_t i = 0; i < take; ++i)
    std::swap(idx[i], idx[i + rng.uniform(n - i)]);
  idx.resize(take);
  return idx;
}

/// Recovers the effective generator by encoding unit single-byte blocks:
/// G[i][j] is byte 0 of encoded block i when data block j is {1}.
MatrixGf256 probe_generator(const ErasureCode& code) {
  const std::size_t k = code.k(), n = code.n();
  MatrixGf256 g(n, k);
  std::vector<Bytes> blocks(k, Bytes{0});
  for (std::size_t j = 0; j < k; ++j) {
    blocks[j][0] = 1;
    const auto enc = code.encode(blocks);
    for (std::size_t i = 0; i < n; ++i) g.set(i, j, enc[i][0]);
    blocks[j][0] = 0;
  }
  return g;
}

std::size_t subset_rank(const MatrixGf256& g,
                        const std::vector<std::size_t>& rows) {
  MatrixGf256 sub(rows.size(), g.cols());
  for (std::size_t r = 0; r < rows.size(); ++r)
    for (std::size_t c = 0; c < g.cols(); ++c) sub.set(r, c, g.at(rows[r], c));
  return sub.rank();
}

/// Reference decode: Gauss-Jordan over the probed generator rows.
std::optional<std::vector<Bytes>> reference_solve(
    const MatrixGf256& g, const std::vector<Bytes>& encoded,
    const std::vector<std::size_t>& rows) {
  const std::size_t k = g.cols();
  const std::size_t len = encoded.front().size();
  Gf256Eliminator elim(k, len);
  for (auto i : rows) {
    elim.add(g.row(i), view(encoded[i]));
    if (elim.complete()) break;
  }
  if (!elim.complete()) return std::nullopt;
  return elim.solve();
}

// ---------------------------------------------------------------------------
// The parameterized battery
// ---------------------------------------------------------------------------

struct CodecSpec {
  CodecKind kind;
  const char* label;
  std::size_t delta;     // nominal overhead for the probabilistic kinds
  bool deterministic;    // decode at k' guaranteed
  bool full_elimination; // decode succeeds whenever received rows reach rank k
  bool systematic;       // first k encoded blocks are the originals
};

const CodecSpec kSpecs[] = {
    {CodecKind::kReedSolomon, "rs", 0, true, true, true},
    {CodecKind::kRlcGf2, "rlc2", 2, false, true, true},
    {CodecKind::kRlcGf256, "rlc256", 1, false, true, true},
    // LT is deliberately non-systematic: every output is a soliton-degree
    // XOR, the paper's genuinely rateless archetype.
    {CodecKind::kLt, "lt", 6, false, false, false},
    {CodecKind::kLrc, "lrc", 0, true, true, true},
    {CodecKind::kXorSchedule, "xorsched", 0, true, true, true},
};

class CodecConformance : public ::testing::TestWithParam<CodecSpec> {
 protected:
  std::unique_ptr<ErasureCode> make(std::size_t k, std::size_t n,
                                    std::uint64_t seed = 7) const {
    return make_code(GetParam().kind, k, n, GetParam().delta, seed);
  }
};

TEST_P(CodecConformance, NameParsesBackAndThresholdInBounds) {
  auto code = make(8, 16);
  EXPECT_EQ(parse_codec_kind(code->name()), GetParam().kind);
  EXPECT_GE(code->decode_threshold(), code->k());
  EXPECT_LE(code->decode_threshold(), code->n());
  EXPECT_EQ(code->k(), 8u);
  EXPECT_EQ(code->n(), 16u);
}

TEST_P(CodecConformance, SystematicPrefix) {
  auto code = make(8, 16);
  const auto blocks = random_blocks(8, 16, 21);
  const auto encoded = code->encode(blocks);
  ASSERT_EQ(encoded.size(), 16u);
  if (!GetParam().systematic) GTEST_SKIP() << "non-systematic by design";
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(encoded[i], blocks[i]);
}

TEST_P(CodecConformance, DuplicateSharesChangeNothing) {
  auto code = make(8, 16);
  const auto blocks = random_blocks(8, 16, 22);
  const auto encoded = code->encode(blocks);
  const std::vector<std::size_t> distinct{0, 1, 2, 3, 10, 11, 12, 13};
  const std::vector<std::size_t> withdups{10, 10, 0,  1, 2,  10, 3,
                                          10, 11, 12, 13, 13, 0};
  const auto a = code->decode(pick_shares(encoded, distinct));
  const auto b = code->decode(pick_shares(encoded, withdups));
  EXPECT_EQ(a, b);
  // Duplicates alone never reach k distinct blocks.
  EXPECT_FALSE(
      code->decode(pick_shares(encoded, {5, 5, 5, 5, 5, 5, 5, 5, 5}))
          .has_value());
}

TEST_P(CodecConformance, ThresholdHonesty) {
  auto code = make(8, 16);
  const auto blocks = random_blocks(8, 16, 23);
  const auto encoded = code->encode(blocks);
  Rng rng(24);
  const std::size_t kp = code->decode_threshold();
  int successes = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    const auto idx = random_subset(16, kp, rng);
    const auto decoded = code->decode(pick_shares(encoded, idx));
    if (decoded.has_value()) {
      EXPECT_EQ(*decoded, blocks);
      ++successes;
    }
  }
  if (GetParam().deterministic) {
    EXPECT_EQ(successes, trials) << "k' is a guarantee for " << code->name();
  } else {
    // Probabilistic codecs advertise k' as a high-probability threshold; the
    // protocol keeps collecting on a miss. Floors match the per-codec tests.
    EXPECT_GE(successes, trials / 5);
  }
}

TEST_P(CodecConformance, BelowKDistinctAlwaysNullopt) {
  auto code = make(8, 16);
  const auto blocks = random_blocks(8, 16, 25);
  const auto encoded = code->encode(blocks);
  EXPECT_FALSE(code->decode({}).has_value());
  EXPECT_FALSE(code->decode(pick_shares(encoded, {3})).has_value());
  EXPECT_FALSE(
      code->decode(pick_shares(encoded, {0, 1, 2, 3, 4, 5, 6})).has_value());
  EXPECT_FALSE(
      code->decode(pick_shares(encoded, {9, 10, 11, 12, 13, 14, 15}))
          .has_value());
}

TEST_P(CodecConformance, RoundTripsAcrossBlockSizes) {
  // Full share set always decodes (systematic prefix guarantees rank k), so
  // this isolates payload handling: 1-byte, word-aligned, odd, sub-word
  // tails, and multi-KB blocks.
  for (std::size_t len : {std::size_t{1}, std::size_t{16}, std::size_t{37},
                          std::size_t{255}, std::size_t{1024}}) {
    auto code = make(8, 16);
    const auto blocks = random_blocks(8, len, 26 + len);
    const auto encoded = code->encode(blocks);
    for (const auto& e : encoded) EXPECT_EQ(e.size(), len);
    std::vector<std::size_t> all(16);
    std::iota(all.begin(), all.end(), 0);
    const auto decoded = code->decode(pick_shares(encoded, all));
    ASSERT_TRUE(decoded.has_value()) << "len " << len;
    EXPECT_EQ(*decoded, blocks) << "len " << len;
  }
}

TEST_P(CodecConformance, EncodeIsGeneratorMatrixMultiply) {
  auto code = make(8, 16);
  const MatrixGf256 g = probe_generator(*code);
  if (GetParam().systematic) {
    // Systematic prefix shows up as an identity block.
    for (std::size_t i = 0; i < 8; ++i)
      for (std::size_t j = 0; j < 8; ++j)
        EXPECT_EQ(g.at(i, j), i == j ? 1 : 0);
  }
  const auto blocks = random_blocks(8, 24, 27);
  const auto encoded = code->encode(blocks);
  for (std::size_t i = 0; i < 16; ++i) {
    Bytes expect(24, 0);
    for (std::size_t j = 0; j < 8; ++j) {
      for (std::size_t b = 0; b < 24; ++b) {
        expect[b] = Gf256::add(expect[b], Gf256::mul(g.at(i, j),
                                                     blocks[j][b]));
      }
    }
    EXPECT_EQ(encoded[i], expect) << "encoded block " << i;
  }
}

TEST_P(CodecConformance, DecodeMatchesReferenceMatrixSolve) {
  auto code = make(8, 16);
  const MatrixGf256 g = probe_generator(*code);
  const auto blocks = random_blocks(8, 24, 28);
  const auto encoded = code->encode(blocks);
  Rng rng(29);
  for (int t = 0; t < 20; ++t) {
    const std::size_t take = 8 + rng.uniform(9);  // k .. n shares
    const auto idx = random_subset(16, take, rng);
    const auto decoded = code->decode(pick_shares(encoded, idx));
    const auto reference = reference_solve(g, encoded, idx);
    if (decoded.has_value()) {
      // Whatever the codec returned must be exactly the reference solution.
      ASSERT_TRUE(reference.has_value());
      EXPECT_EQ(*decoded, *reference);
      EXPECT_EQ(*decoded, blocks);
    } else if (GetParam().full_elimination) {
      // Full-elimination decoders fail only when the rows genuinely do not
      // span; LT's peeling decoder is allowed to give up earlier.
      EXPECT_FALSE(reference.has_value());
      EXPECT_LT(subset_rank(g, idx), 8u);
    }
  }
}

std::string spec_name(const ::testing::TestParamInfo<CodecSpec>& info) {
  return info.param.label;
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecConformance,
                         ::testing::ValuesIn(kSpecs), spec_name);

// ---------------------------------------------------------------------------
// Exhaustive erasure patterns, n <= 12
// ---------------------------------------------------------------------------

std::vector<std::size_t> mask_to_rows(unsigned mask, std::size_t n) {
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < n; ++i)
    if (mask & (1u << i)) rows.push_back(i);
  return rows;
}

/// Checks decode of `code` against the MDS/locality contract on EVERY
/// receive subset of size >= k:
///  * success must match "probed generator rows reach rank k" exactly
///    (iff for full-elimination decoders);
///  * subsets of size >= decode_threshold() must all succeed;
///  * every success must reproduce the original blocks.
void exhaustive_patterns(const ErasureCode& code, const MatrixGf256& g,
                         bool threshold_guaranteed = true) {
  const std::size_t k = code.k(), n = code.n();
  const std::size_t kp = code.decode_threshold();
  const auto blocks = random_blocks(k, 2, k * 1000 + n);
  const auto encoded = code.encode(blocks);
  for (unsigned mask = 0; mask < (1u << n); ++mask) {
    const auto s = static_cast<std::size_t>(std::popcount(mask));
    if (s < k) continue;
    const auto rows = mask_to_rows(mask, n);
    const bool spans = subset_rank(g, rows) == k;
    const auto decoded = code.decode(pick_shares(encoded, rows));
    if (threshold_guaranteed && s >= kp) {
      ASSERT_TRUE(spans) << code.name() << " k=" << k << " n=" << n
                         << " mask=" << mask
                         << ": threshold-sized subset must span";
    }
    ASSERT_EQ(decoded.has_value(), spans)
        << code.name() << " k=" << k << " n=" << n << " mask=" << mask;
    if (decoded.has_value()) {
      ASSERT_EQ(*decoded, blocks)
          << code.name() << " k=" << k << " n=" << n << " mask=" << mask;
    }
  }
}

TEST(ExhaustivePatterns, RsAndXorschedAreMdsOnEveryGeometry) {
  for (std::size_t n = 1; n <= 12; ++n) {
    for (std::size_t k = 1; k <= n; ++k) {
      auto rs = make_rs_code(k, n);
      auto xs = make_xorsched_code(k, n);
      // Identical constructions: one probe serves both.
      const MatrixGf256 g = probe_generator(*rs);
      EXPECT_EQ(probe_generator(*xs), g) << "k=" << k << " n=" << n;
      exhaustive_patterns(*rs, g);
      exhaustive_patterns(*xs, g);
    }
  }
}

TEST(ExhaustivePatterns, LrcLocalityContractOnEveryGeometry) {
  for (std::size_t n = 1; n <= 12; ++n) {
    for (std::size_t k = 1; k <= n; ++k) {
      auto lrc = make_lrc_code(k, n);
      const std::size_t g = lrc_group_count(k, n);
      EXPECT_EQ(lrc->decode_threshold(), g > 0 ? k + g - 1 : k)
          << "k=" << k << " n=" << n;
      exhaustive_patterns(*lrc, probe_generator(*lrc));
    }
  }
}

TEST(ExhaustivePatterns, RlcSeedSweptOnSmallGeometries) {
  const std::pair<std::size_t, std::size_t> geos[] = {{4, 8}, {5, 10}};
  for (const auto kind : {CodecKind::kRlcGf2, CodecKind::kRlcGf256}) {
    for (const auto& [k, n] : geos) {
      for (std::uint64_t seed : {1u, 2u, 3u}) {
        // RLC's k' is a high-probability threshold, not a guarantee: keep
        // the success-iff-rank contract but drop the threshold assertion.
        auto code = make_code(kind, k, n, 2, seed);
        exhaustive_patterns(*code, probe_generator(*code),
                            /*threshold_guaranteed=*/false);
      }
    }
  }
}

TEST(ExhaustivePatterns, LtSeedSweptDecodeImpliesSpanning) {
  // Peeling is one-directional: success implies the rows span AND the
  // payload is right; failures on spanning subsets are allowed. Every
  // full-set subset must still decode.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const std::size_t k = 4, n = 12;
    auto code = make_lt_code(k, n, 4, seed);
    const MatrixGf256 g = probe_generator(*code);
    const auto blocks = random_blocks(k, 2, 900 + seed);
    const auto encoded = code->encode(blocks);
    std::size_t successes = 0;
    for (unsigned mask = 0; mask < (1u << n); ++mask) {
      const auto s = static_cast<std::size_t>(std::popcount(mask));
      if (s < k) continue;
      const auto rows = mask_to_rows(mask, n);
      const auto decoded = code->decode(pick_shares(encoded, rows));
      if (decoded.has_value()) {
        ASSERT_EQ(subset_rank(g, rows), k) << "seed " << seed;
        ASSERT_EQ(*decoded, blocks) << "seed " << seed;
        ++successes;
      } else {
        ASSERT_LT(s, n) << "full set must decode, seed " << seed;
      }
    }
    EXPECT_GT(successes, 0u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace lrs::erasure
