// InvariantObserver unit tests: each of the five protocol invariants gets a
// dedicated negative test (a synthetic probe deliberately violates it and
// the observer must flag exactly that invariant) plus positive coverage
// showing conforming behaviour stays clean.
#include <gtest/gtest.h>

#include "sim/invariants.h"
#include "util/types.h"

namespace lrs {
namespace {

using sim::InvariantConfig;
using sim::InvariantObserver;
using sim::NodeProbe;
using sim::PacketClass;

/// Mutable stand-in for one node's protocol state; the probe reads it live.
struct FakeNode {
  bool bootstrapped = true;
  std::uint32_t pages = 0;
  std::size_t buffered = 0;
  bool complete = false;
  Bytes image;
  int engine = 0;
  std::size_t kprime = 10;  // decode threshold k'
  std::size_t npkts = 12;   // packets per page n
};

NodeProbe make_probe(FakeNode& n) {
  NodeProbe p;
  p.bootstrapped = [&n] { return n.bootstrapped; };
  p.pages_complete = [&n] { return n.pages; };
  p.buffered_packets = [&n] { return n.buffered; };
  p.image_complete = [&n] { return n.complete; };
  p.assemble_image = [&n] { return n.image; };
  p.engine_state = [&n] { return n.engine; };
  p.packets_in_page = [&n](std::uint32_t) { return n.npkts; };
  p.decode_threshold = [&n](std::uint32_t) { return n.kprime; };
  return p;
}

const Bytes kFrame{0x01, 0x02, 0x03};

InvariantConfig strict_config(const Bytes& expected) {
  InvariantConfig c;
  c.expected_image = expected;
  c.check_immediate_auth = true;
  c.check_tamper_rejection = true;
  c.check_greedy_bound = true;
  // Synthetic parsers: the tests drive the observer directly, so the wire
  // format is irrelevant — every data frame is (page 0, index 0) and every
  // snack requests `q` packets of page 0 for the addressed target.
  c.parse_data = [](ByteView) {
    return std::optional<sim::DataView>({0, 0});
  };
  c.parse_snack = [](ByteView) {
    sim::SnackView v;
    v.sender = 9;
    v.target = 1;
    v.page = 0;
    v.requested = 4;  // q
    return std::optional<sim::SnackView>(v);
  };
  return c;
}

void deliver(InvariantObserver& obs, FakeNode&, NodeId to, PacketClass cls,
             bool tampered = false) {
  obs.before_deliver(0, 0, to, cls, view(kFrame), tampered);
  obs.after_deliver(0, 0, to, cls, view(kFrame), tampered);
}

TEST(Invariant1, WrongImageAtCompletionTransitionIsFlagged) {
  const Bytes expected{1, 2, 3, 4};
  FakeNode n;
  n.image = {9, 9, 9, 9};
  InvariantObserver obs(strict_config(expected));
  obs.attach(1, make_probe(n));

  obs.before_deliver(0, 0, 1, PacketClass::kData, view(kFrame), false);
  n.complete = true;  // the delivery "completed" the node — with a bad image
  obs.after_deliver(0, 0, 1, PacketClass::kData, view(kFrame), false);

  ASSERT_FALSE(obs.ok());
  EXPECT_EQ(obs.violations().front().invariant, 1);
  EXPECT_EQ(obs.violations().front().node, 1u);
}

TEST(Invariant1, WrongImageAtFinalizeIsFlagged) {
  const Bytes expected{1, 2, 3, 4};
  FakeNode n;
  n.complete = true;
  n.image = expected;
  n.image[2] ^= 0xff;  // one corrupted byte
  InvariantObserver obs(strict_config(expected));
  obs.attach(1, make_probe(n));
  obs.finalize(100);
  ASSERT_FALSE(obs.ok());
  EXPECT_EQ(obs.violations().front().invariant, 1);
}

TEST(Invariant1, MatchingImageIsClean) {
  const Bytes expected{1, 2, 3, 4};
  FakeNode n;
  n.complete = true;
  n.image = expected;
  InvariantObserver obs(strict_config(expected));
  obs.attach(1, make_probe(n));
  obs.finalize(100);
  EXPECT_TRUE(obs.ok());
  EXPECT_GT(obs.checks_run(), 0u);
}

TEST(Invariant2, BufferingBeforeBootstrapIsFlagged) {
  FakeNode n;
  n.bootstrapped = false;
  InvariantObserver obs(strict_config({}));
  obs.attach(1, make_probe(n));

  deliver(obs, n, 1, PacketClass::kData);  // nothing buffered yet: clean
  EXPECT_TRUE(obs.ok());

  n.buffered = 3;  // node stored packets without a verified signature
  deliver(obs, n, 1, PacketClass::kData);
  ASSERT_FALSE(obs.ok());
  EXPECT_EQ(obs.violations().front().invariant, 2);
}

TEST(Invariant2, BufferingAfterBootstrapIsClean) {
  FakeNode n;
  n.bootstrapped = true;
  n.buffered = 5;
  InvariantObserver obs(strict_config({}));
  obs.attach(1, make_probe(n));
  deliver(obs, n, 1, PacketClass::kData);
  EXPECT_TRUE(obs.ok());
}

TEST(Invariant3, PageFrontierRegressionIsFlagged) {
  FakeNode n;
  n.pages = 3;
  InvariantObserver obs(strict_config({}));
  obs.attach(1, make_probe(n));

  deliver(obs, n, 1, PacketClass::kData);  // frontier observed at 3
  EXPECT_TRUE(obs.ok());

  n.pages = 1;  // volatile-state bug: frontier went backwards
  deliver(obs, n, 1, PacketClass::kData);
  ASSERT_FALSE(obs.ok());
  EXPECT_EQ(obs.violations().front().invariant, 3);
}

TEST(Invariant3, RebootDroppingFrontierIsFlagged) {
  FakeNode n;
  n.pages = 4;
  InvariantObserver obs(strict_config({}));
  obs.attach(1, make_probe(n));

  deliver(obs, n, 1, PacketClass::kData);
  n.pages = 0;  // reboot lost the persisted frontier
  obs.on_reboot(50, 1);
  ASSERT_FALSE(obs.ok());
  EXPECT_EQ(obs.violations().front().invariant, 3);
}

TEST(Invariant3, AdvancingFrontierIsClean) {
  FakeNode n;
  InvariantObserver obs(strict_config({}));
  obs.attach(1, make_probe(n));
  for (std::uint32_t p = 0; p < 5; ++p) {
    n.pages = p;
    deliver(obs, n, 1, PacketClass::kData);
  }
  obs.on_reboot(50, 1);  // frontier intact across reboot
  EXPECT_TRUE(obs.ok());
}

TEST(Invariant4, TamperedFrameChangingStateIsFlagged) {
  FakeNode n;
  n.buffered = 2;
  InvariantObserver obs(strict_config({}));
  obs.attach(1, make_probe(n));

  obs.before_deliver(0, 0, 1, PacketClass::kData, view(kFrame), true);
  n.buffered = 3;  // the node accepted a corrupted packet
  obs.after_deliver(0, 0, 1, PacketClass::kData, view(kFrame), true);

  ASSERT_FALSE(obs.ok());
  EXPECT_EQ(obs.violations().front().invariant, 4);
}

TEST(Invariant4, TamperedFrameLeavingStateAloneIsClean) {
  FakeNode n;
  n.buffered = 2;
  n.pages = 1;
  InvariantObserver obs(strict_config({}));
  obs.attach(1, make_probe(n));
  deliver(obs, n, 1, PacketClass::kData, /*tampered=*/true);
  deliver(obs, n, 1, PacketClass::kSnack, /*tampered=*/true);
  EXPECT_TRUE(obs.ok());
}

TEST(Invariant5, DataSendWithoutSnackAllowanceIsFlagged) {
  FakeNode server;
  InvariantObserver obs(strict_config({}));
  obs.attach(1, make_probe(server));

  obs.on_send(0, 1, PacketClass::kData, view(kFrame));
  ASSERT_FALSE(obs.ok());
  EXPECT_EQ(obs.violations().front().invariant, 5);
}

TEST(Invariant5, SendsWithinGreedyBoundAreClean) {
  FakeNode server;  // q=4, k'=10, n=12 -> d = q + k' - n = 2 per snack
  InvariantObserver obs(strict_config({}));
  obs.attach(1, make_probe(server));

  deliver(obs, server, 1, PacketClass::kSnack);  // authentic: +2 allowance
  obs.on_send(0, 1, PacketClass::kData, view(kFrame));
  obs.on_send(0, 1, PacketClass::kData, view(kFrame));
  EXPECT_TRUE(obs.ok());

  obs.on_send(0, 1, PacketClass::kData, view(kFrame));  // 3rd exceeds d
  ASSERT_FALSE(obs.ok());
  EXPECT_EQ(obs.violations().front().invariant, 5);
}

TEST(Invariant5, TamperedSnackEarnsNoAllowance) {
  FakeNode server;
  InvariantObserver obs(strict_config({}));
  obs.attach(1, make_probe(server));

  deliver(obs, server, 1, PacketClass::kSnack, /*tampered=*/true);
  obs.on_send(0, 1, PacketClass::kData, view(kFrame));
  ASSERT_FALSE(obs.ok());
  EXPECT_EQ(obs.violations().front().invariant, 5);
}

TEST(ObserverLimits, UnattachedNodesAreIgnored) {
  InvariantObserver obs(strict_config({}));
  // Node 7 was never attached (e.g. an attacker node): nothing to probe.
  obs.before_deliver(0, 0, 7, PacketClass::kData, view(kFrame), true);
  obs.after_deliver(0, 0, 7, PacketClass::kData, view(kFrame), true);
  obs.on_send(0, 7, PacketClass::kData, view(kFrame));
  obs.on_reboot(0, 7);
  obs.finalize(1);
  EXPECT_TRUE(obs.ok());
}

TEST(ObserverLimits, ViolationRecordingIsCapped) {
  FakeNode server;
  auto cfg = strict_config({});
  cfg.max_violations = 2;
  InvariantObserver obs(std::move(cfg));
  obs.attach(1, make_probe(server));
  for (int i = 0; i < 10; ++i) {
    obs.on_send(0, 1, PacketClass::kData, view(kFrame));
  }
  EXPECT_EQ(obs.violations().size(), 2u);
}

TEST(ViolationFormatting, NamesAndToString) {
  EXPECT_STREQ(sim::invariant_name(1), "image-integrity");
  EXPECT_STREQ(sim::invariant_name(2), "immediate-auth");
  EXPECT_STREQ(sim::invariant_name(3), "monotone-progress");
  EXPECT_STREQ(sim::invariant_name(4), "tamper-rejection");
  EXPECT_STREQ(sim::invariant_name(5), "greedy-bound");

  sim::InvariantViolation v{4, 3, 2 * sim::kSecond, "details here"};
  const std::string s = v.to_string();
  EXPECT_NE(s.find("tamper-rejection"), std::string::npos);
  EXPECT_NE(s.find("node 3"), std::string::npos);
  EXPECT_NE(s.find("details here"), std::string::npos);
}

}  // namespace
}  // namespace lrs
