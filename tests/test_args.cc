// Command-line flag parser used by the example/bench executables.
#include <gtest/gtest.h>

#include "util/args.h"

namespace lrs {
namespace {

Args make(std::initializer_list<const char*> argv) {
  std::vector<const char*> full{"prog"};
  full.insert(full.end(), argv.begin(), argv.end());
  return Args(static_cast<int>(full.size()), full.data());
}

TEST(Args, EqualsForm) {
  auto a = make({"--loss=0.25", "--scheme=seluge"});
  EXPECT_DOUBLE_EQ(a.get_double("loss", 0), 0.25);
  EXPECT_EQ(a.get("scheme", ""), "seluge");
}

TEST(Args, SpaceSeparatedForm) {
  auto a = make({"--receivers", "12", "--topo", "grid"});
  EXPECT_EQ(a.get_int("receivers", 0), 12);
  EXPECT_EQ(a.get("topo", ""), "grid");
}

TEST(Args, BareFlagIsBoolean) {
  auto a = make({"--noise", "--leap"});
  EXPECT_TRUE(a.get_bool("noise", false));
  EXPECT_TRUE(a.get_bool("leap", false));
  EXPECT_FALSE(a.get_bool("absent", false));
}

TEST(Args, BooleanNegations) {
  auto a = make({"--x=false", "--y=0", "--z=no"});
  EXPECT_FALSE(a.get_bool("x", true));
  EXPECT_FALSE(a.get_bool("y", true));
  EXPECT_FALSE(a.get_bool("z", true));
}

TEST(Args, DefaultsWhenAbsent) {
  auto a = make({});
  EXPECT_EQ(a.get_int("k", 32), 32);
  EXPECT_DOUBLE_EQ(a.get_double("loss", 0.1), 0.1);
  EXPECT_EQ(a.get("scheme", "lr"), "lr");
}

TEST(Args, PositionalsCollected) {
  auto a = make({"input.bin", "--loss=0.1", "output.bin"});
  ASSERT_EQ(a.positional().size(), 2u);
  EXPECT_EQ(a.positional()[0], "input.bin");
  EXPECT_EQ(a.positional()[1], "output.bin");
}

TEST(Args, BadIntegerRecordsError) {
  auto a = make({"--receivers=twenty"});
  EXPECT_EQ(a.get_int("receivers", 7), 7);
  ASSERT_EQ(a.errors().size(), 1u);
  EXPECT_NE(a.errors()[0].find("receivers"), std::string::npos);
}

TEST(Args, BadDoubleRecordsError) {
  auto a = make({"--loss=lots"});
  EXPECT_DOUBLE_EQ(a.get_double("loss", 0.5), 0.5);
  EXPECT_EQ(a.errors().size(), 1u);
}

TEST(Args, UnknownFlagsReported) {
  auto a = make({"--known=1", "--typo=2"});
  a.get_int("known", 0);
  const auto unknown = a.unknown();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "--typo");
}

TEST(Args, BareFlagBeforeAnotherFlagStaysBoolean) {
  auto a = make({"--noise", "--loss", "0.3"});
  EXPECT_TRUE(a.get_bool("noise", false));
  EXPECT_DOUBLE_EQ(a.get_double("loss", 0), 0.3);
}

}  // namespace
}  // namespace lrs
