// Sluice baseline: page-level deferred authentication — correct transfer
// on honest channels, and the buffer-pollution DoS the paper's §VII
// critique predicts (one forged packet per page forces a whole-page
// discard).
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "crypto/wots.h"
#include "proto/sluice.h"

namespace lrs {
namespace {

using proto::CommonParams;
using proto::DataStatus;

CommonParams small_params() {
  CommonParams p;
  p.payload_size = 32;
  p.k = 8;
  p.puzzle_strength = 4;
  return p;
}

struct Fixture {
  explicit Fixture(std::size_t image_size = 2000)
      : params(small_params()),
        image(core::make_test_image(image_size, 21)),
        signer(view(Bytes{3}), 1),
        src(proto::make_sluice_source(params, image, signer)),
        dst(proto::make_sluice_receiver(params, signer.root_public_key())) {}

  void bootstrap() {
    ASSERT_TRUE(dst->on_signature(view(src->signature_frame().value()), m));
  }

  void feed_page(std::uint32_t page) {
    for (std::uint32_t j = 0; j < params.k; ++j) {
      if (dst->pages_complete() > page) break;
      dst->on_data(page, j, view(src->packet_payload(page, j).value()), m);
    }
  }

  CommonParams params;
  Bytes image;
  crypto::MultiKeySigner signer;
  std::unique_ptr<proto::SchemeState> src;
  std::unique_ptr<proto::SchemeState> dst;
  sim::NodeMetrics m;
};

TEST(SluiceScheme, HonestTransferIsByteExact) {
  Fixture f;
  f.bootstrap();
  for (std::uint32_t p = 0; p < f.src->num_pages(); ++p) f.feed_page(p);
  ASSERT_TRUE(f.dst->image_complete());
  EXPECT_EQ(f.dst->assemble_image(), f.image);
  EXPECT_EQ(f.m.page_discards, 0u);
  // Page-level auth: ONE hash per page, not per packet.
  EXPECT_EQ(f.m.hash_verifications, f.src->num_pages());
}

TEST(SluiceScheme, SingleForgedPacketPoisonsWholePage) {
  Fixture f;
  f.bootstrap();
  // The forged packet is ACCEPTED (deferred auth cannot tell).
  const Bytes forged(f.params.payload_size, 0x66);
  EXPECT_EQ(f.dst->on_data(0, 3, view(forged), f.m), DataStatus::kStored);
  // Genuine packet for the occupied slot bounces off.
  EXPECT_EQ(f.dst->on_data(0, 3, view(f.src->packet_payload(0, 3).value()),
                           f.m),
            DataStatus::kStale);
  // Page completes ... and fails wholesale.
  f.feed_page(0);
  EXPECT_EQ(f.dst->pages_complete(), 0u);
  EXPECT_EQ(f.m.page_discards, 1u);
  // Every buffered packet — including 7 genuine ones — was thrown away.
  EXPECT_EQ(f.dst->request_bits(0).count(), f.params.k);
}

TEST(SluiceScheme, RecoversAfterDiscardWhenAttackerGoesAway) {
  Fixture f;
  f.bootstrap();
  const Bytes forged(f.params.payload_size, 0x66);
  f.dst->on_data(0, 3, view(forged), f.m);
  f.feed_page(0);
  ASSERT_EQ(f.m.page_discards, 1u);
  // Clean re-delivery succeeds.
  for (std::uint32_t p = 0; p < f.src->num_pages(); ++p) f.feed_page(p);
  ASSERT_TRUE(f.dst->image_complete());
  EXPECT_EQ(f.dst->assemble_image(), f.image);
}

TEST(SluiceScheme, PersistentAttackerStallsForever) {
  // One forged packet per page round = permanent denial of service.
  Fixture f;
  f.bootstrap();
  const Bytes forged(f.params.payload_size, 0x66);
  for (int round = 0; round < 20; ++round) {
    // The attacker races the base station to the first still-missing slot.
    const auto missing = f.dst->request_bits(0).first_set();
    ASSERT_TRUE(missing.has_value());
    f.dst->on_data(0, static_cast<std::uint32_t>(*missing), view(forged),
                   f.m);
    f.feed_page(0);
  }
  EXPECT_EQ(f.dst->pages_complete(), 0u);
  EXPECT_EQ(f.m.page_discards, 20u);
}

TEST(SluiceScheme, ForgedSignatureRejected) {
  Fixture f;
  crypto::MultiKeySigner mallory(view(Bytes{9}), 1);
  auto forged = proto::make_sluice_source(f.params,
                                          core::make_test_image(500, 9),
                                          mallory);
  EXPECT_FALSE(
      f.dst->on_signature(view(forged->signature_frame().value()), f.m));
  EXPECT_FALSE(f.dst->bootstrapped());
}

TEST(SluiceScheme, TamperedChainPageRejectedAtCompletion) {
  Fixture f;
  f.bootstrap();
  f.feed_page(0);
  ASSERT_EQ(f.dst->pages_complete(), 1u);
  // Page 1 with one bit flipped completes but fails the chained hash.
  for (std::uint32_t j = 0; j < f.params.k; ++j) {
    Bytes payload = f.src->packet_payload(1, j).value();
    if (j == 0) payload[4] ^= 1;
    f.dst->on_data(1, j, view(payload), f.m);
  }
  EXPECT_EQ(f.dst->pages_complete(), 1u);
  EXPECT_EQ(f.m.page_discards, 1u);
}

TEST(SluiceScheme, EndToEndSimulationUnderLoss) {
  core::ExperimentConfig cfg;
  cfg.scheme = core::Scheme::kSluice;
  cfg.params = small_params();
  cfg.image_size = 2048;
  cfg.receivers = 5;
  cfg.loss_p = 0.2;
  cfg.timing.trickle.tau_low = 250 * sim::kMillisecond;
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.all_complete);
  EXPECT_TRUE(r.images_match);
}

TEST(SluiceScheme, SingleContentPageImage) {
  Fixture f(100);
  f.bootstrap();
  EXPECT_EQ(f.src->num_pages(), 1u);
  f.feed_page(0);
  ASSERT_TRUE(f.dst->image_complete());
  EXPECT_EQ(f.dst->assemble_image(), f.image);
}

}  // namespace
}  // namespace lrs
