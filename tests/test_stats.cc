// Metrics/profiling registry (sim/stats, ISSUE 9 tentpole): HDR-style
// histogram bucket math pinned by goldens, concurrent-recording exactness
// (the StatsHammer.* tests run under TSan in CI), the determinism contract
// (deterministic export byte-identical serial vs LRS_JOBS-parallel), and
// the disabled-path cost guard.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.h"
#include "core/run_trials.h"
#include "sim/stats/stats.h"

namespace lrs {
namespace {

using stats::Counter;
using stats::Histogram;
using stats::Registry;
using stats::Timer;
using stats::TimerScope;

// ---------------------------------------------------------------------------
// Histogram bucket math
// ---------------------------------------------------------------------------

TEST(StatsHistogram, BucketIndexGoldens) {
  // 16 sub-buckets (kSubBucketBits = 4): values below 16 map 1:1, then each
  // power-of-two span splits into 16 sub-buckets. Pinned so a layout change
  // is a deliberate schema break, not an accident.
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Histogram::bucket_index(15), 15u);
  EXPECT_EQ(Histogram::bucket_index(16), 16u);
  EXPECT_EQ(Histogram::bucket_index(17), 17u);  // still 1:1 through 31
  EXPECT_EQ(Histogram::bucket_index(31), 31u);
  EXPECT_EQ(Histogram::bucket_index(32), 32u);  // first 2-wide bucket
  EXPECT_EQ(Histogram::bucket_index(33), 32u);
  EXPECT_EQ(Histogram::bucket_index(63), 47u);
  EXPECT_EQ(Histogram::bucket_index(64), 48u);
  EXPECT_EQ(Histogram::bucket_index(std::uint64_t{1} << 63), 960u);
  EXPECT_EQ(Histogram::bucket_index(~std::uint64_t{0}), 975u);
  static_assert(Histogram::kBucketCount == 976);
}

TEST(StatsHistogram, BucketLowerBoundGoldens) {
  EXPECT_EQ(Histogram::bucket_lower_bound(0), 0u);
  EXPECT_EQ(Histogram::bucket_lower_bound(15), 15u);
  EXPECT_EQ(Histogram::bucket_lower_bound(16), 16u);
  EXPECT_EQ(Histogram::bucket_lower_bound(32), 32u);
  EXPECT_EQ(Histogram::bucket_lower_bound(47), 62u);  // covers [62, 63]
  EXPECT_EQ(Histogram::bucket_lower_bound(48), 64u);
  EXPECT_EQ(Histogram::bucket_lower_bound(960), std::uint64_t{1} << 63);
}

TEST(StatsHistogram, BoundsBracketEveryProbedValue) {
  // lower_bound(index(v)) <= v < lower_bound(index(v) + 1), probed at every
  // power of two and its neighbors across the full u64 range.
  std::vector<std::uint64_t> probes = {0, 1, 2, 3};
  for (int bit = 2; bit < 64; ++bit) {
    const std::uint64_t p = std::uint64_t{1} << bit;
    probes.push_back(p - 1);
    probes.push_back(p);
    probes.push_back(p + 1);
  }
  probes.push_back(~std::uint64_t{0});
  for (const std::uint64_t v : probes) {
    const std::size_t idx = Histogram::bucket_index(v);
    ASSERT_LT(idx, Histogram::kBucketCount) << "v=" << v;
    EXPECT_LE(Histogram::bucket_lower_bound(idx), v) << "v=" << v;
    if (idx + 1 < Histogram::kBucketCount) {
      EXPECT_LT(v, Histogram::bucket_lower_bound(idx + 1)) << "v=" << v;
    }
    // Boundaries are canonical: a lower bound indexes into its own bucket.
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_lower_bound(idx)),
              idx)
        << "v=" << v;
  }
}

TEST(StatsHistogram, RecordAccumulatesAndResets) {
  stats::set_enabled(true);
  Histogram& h = Registry::instance().histogram("test.hist.accumulate");
  h.reset();
  for (const std::uint64_t v : {std::uint64_t{3}, std::uint64_t{3},
                                std::uint64_t{100}, std::uint64_t{5000}}) {
    h.record(v);
  }
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 5106u);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.max(), 5000u);
  EXPECT_EQ(h.bucket_count_at(Histogram::bucket_index(3)), 2u);
  EXPECT_EQ(h.bucket_count_at(Histogram::bucket_index(100)), 1u);
  EXPECT_EQ(h.bucket_count_at(Histogram::bucket_index(5000)), 1u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);  // empty histogram reports 0
  EXPECT_EQ(h.max(), 0u);
  stats::set_enabled(false);
}

// ---------------------------------------------------------------------------
// Enable gate
// ---------------------------------------------------------------------------

TEST(StatsRegistry, DisabledRecordingIsANoop) {
  stats::set_enabled(false);
  Counter& c = Registry::instance().counter("test.disabled.counter");
  Histogram& h = Registry::instance().histogram("test.disabled.hist");
  Timer& t = Registry::instance().timer("test.disabled.timer");
  c.reset();
  h.reset();
  t.reset();
  c.add(7);
  h.record(42);
  { TimerScope scope(t); }
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(t.calls(), 0u);
}

TEST(StatsRegistry, NamedLookupIsStable) {
  Counter& a = Registry::instance().counter("test.lookup.same");
  Counter& b = Registry::instance().counter("test.lookup.same");
  EXPECT_EQ(&a, &b);
  Timer& t1 = Registry::instance().timer("test.lookup.timer", true);
  Timer& t2 = Registry::instance().timer("test.lookup.timer");
  EXPECT_EQ(&t1, &t2);  // top_level sticks from first registration
}

// ---------------------------------------------------------------------------
// Prefix scopes
// ---------------------------------------------------------------------------

TEST(StatsScope, ResolvesAgainstTheGlobalRegistry) {
  const stats::Scope scope("test.scope.t03");
  EXPECT_EQ(scope.prefix(), "test.scope.t03.");
  Counter& via_scope = scope.counter("cells");
  Counter& via_registry = Registry::instance().counter("test.scope.t03.cells");
  EXPECT_EQ(&via_scope, &via_registry);
  EXPECT_EQ(&scope.gauge("g"), &Registry::instance().gauge("test.scope.t03.g"));
  EXPECT_EQ(&scope.histogram("h"),
            &Registry::instance().histogram("test.scope.t03.h"));
  EXPECT_EQ(&scope.timer("t"), &Registry::instance().timer("test.scope.t03.t"));
}

TEST(StatsScope, SubScopeEqualsSpelledOutPrefix) {
  const stats::Scope nested = stats::Scope("test.scope").sub("tenant");
  const stats::Scope flat("test.scope.tenant");
  EXPECT_EQ(nested.prefix(), flat.prefix());
  EXPECT_EQ(&nested.counter("x"), &flat.counter("x"));
}

TEST(StatsScope, DistinctTenantPrefixesGetDisjointSlots) {
  stats::set_enabled(true);
  const stats::Scope a("test.scope.a");
  const stats::Scope b("test.scope.b");
  a.counter("events").reset();
  b.counter("events").reset();
  a.counter("events").add(3);
  b.counter("events").add(5);
  EXPECT_EQ(a.counter("events").value(), 3u);
  EXPECT_EQ(b.counter("events").value(), 5u);
  stats::set_enabled(false);
}

// Generous absolute guard on the disabled path: a disabled record is one
// relaxed atomic load plus a branch. The bound is far above any realistic
// cost (tens of ns even on a loaded CI box would need ~100 cycles/op) but
// low enough to catch the disabled path growing real work — a registry
// lookup, a mutex, a time read.
TEST(StatsRegistry, DisabledPathStaysCheap) {
  stats::set_enabled(false);
  Counter& c = Registry::instance().counter("test.overhead.counter");
  Histogram& h = Registry::instance().histogram("test.overhead.hist");
  Timer& t = Registry::instance().timer("test.overhead.timer");
  constexpr int kIters = 2'000'000;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    c.add();
    h.record(static_cast<std::uint64_t>(i));
    TimerScope scope(t);
  }
  const double ns =
      std::chrono::duration<double, std::nano>(
          std::chrono::steady_clock::now() - t0)
          .count() /
      kIters;
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(t.calls(), 0u);
  EXPECT_LT(ns, 200.0) << "disabled counter+histogram+timer record cost "
                       << ns << " ns per iteration";
}

// ---------------------------------------------------------------------------
// Concurrency (run under TSan in CI: --gtest_filter='StatsHammer.*')
// ---------------------------------------------------------------------------

TEST(StatsHammer, ConcurrentRecordsKeepExactTotals) {
  stats::set_enabled(true);
  Registry& reg = Registry::instance();
  Counter& c = reg.counter("test.hammer.counter");
  Histogram& h = reg.histogram("test.hammer.hist");
  Timer& t = reg.timer("test.hammer.timer");
  c.reset();
  h.reset();
  t.reset();

  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&c, &h, &t, &reg] {
      for (int i = 0; i < kIters; ++i) {
        c.add();
        h.record(static_cast<std::uint64_t>(i % 1000 + 1));
        TimerScope scope(t);
        if (i % 4096 == 0) {
          // Registry lookups race against recording threads — the find-or-
          // create path must be safe while other threads record.
          reg.counter("test.hammer.lookup").add();
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kThreads) * kIters;
  EXPECT_EQ(c.value(), kTotal);
  EXPECT_EQ(h.count(), kTotal);
  // Per thread: 20 full cycles of 1..1000, each summing 500500.
  EXPECT_EQ(h.sum(), static_cast<std::uint64_t>(kThreads) * 20u * 500500u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_EQ(t.calls(), kTotal);
  stats::set_enabled(false);
}

// ---------------------------------------------------------------------------
// Determinism contract: the deterministic export is byte-identical for any
// worker count. All deterministic metrics are commutative aggregates
// (counters add, histogram merges commute), so trial scheduling order must
// not leak into the export.
// ---------------------------------------------------------------------------

core::ExperimentConfig small_star_config(std::uint64_t seed) {
  core::ExperimentConfig cfg;
  cfg.scheme = core::Scheme::kLrSeluge;
  cfg.params.payload_size = 32;
  cfg.params.k = 8;
  cfg.params.n = 12;
  cfg.params.k0 = 4;
  cfg.params.n0 = 8;
  cfg.params.puzzle_strength = 4;
  cfg.image_size = 2048;
  cfg.receivers = 6;
  cfg.seed = seed;
  cfg.loss_p = 0.1;
  cfg.timing.trickle.tau_low = 250 * sim::kMillisecond;
  cfg.timing.trickle.tau_high = 8 * sim::kSecond;
  return cfg;
}

TEST(StatsDeterminism, SerialAndParallelExportsAreByteIdentical) {
  stats::set_enabled(true);
  Registry& reg = Registry::instance();
  const std::vector<core::ExperimentConfig> configs = {
      small_star_config(1), small_star_config(17)};

  reg.reset_values();
  const auto serial =
      core::run_experiments_avg(configs, /*repeats=*/3, /*jobs=*/1);
  const std::string serial_json = reg.deterministic_json("  ");

  reg.reset_values();
  const auto parallel =
      core::run_experiments_avg(configs, /*repeats=*/3, /*jobs=*/8);
  const std::string parallel_json = reg.deterministic_json("  ");

  EXPECT_EQ(serial_json, parallel_json);
  // The signature-verification memo (crypto/wots.cc) makes one-shot SHA
  // call counts scheduling-dependent; that timer opts out of the
  // deterministic section rather than breaking the byte-identity contract.
  EXPECT_EQ(serial_json.find("crypto.sha.oneshot.calls"), std::string::npos);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].events_executed, parallel[i].events_executed);
    EXPECT_EQ(serial[i].max_island_events, parallel[i].max_island_events);
    EXPECT_EQ(serial[i].islands, parallel[i].islands);
  }
  stats::set_enabled(false);
}

TEST(StatsDeterminism, ResultsIdenticalWithMetricsOnAndOff) {
  // Recording must never perturb simulation outcomes: the same config and
  // seed produce identical protocol metrics whether the registry is
  // enabled or not.
  stats::set_enabled(false);
  const auto off = core::run_experiment(small_star_config(5));
  stats::set_enabled(true);
  const auto on = core::run_experiment(small_star_config(5));
  stats::set_enabled(false);
  EXPECT_EQ(off.events_executed, on.events_executed);
  EXPECT_EQ(off.data_packets, on.data_packets);
  EXPECT_EQ(off.snack_packets, on.snack_packets);
  EXPECT_EQ(off.adv_packets, on.adv_packets);
  EXPECT_EQ(off.total_bytes, on.total_bytes);
  EXPECT_EQ(off.latency_s, on.latency_s);
  EXPECT_EQ(off.completed, on.completed);
}

}  // namespace
}  // namespace lrs
