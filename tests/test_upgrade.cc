// Multi-image version upgrades: the actual purpose of over-the-air
// reprogramming. A node running image v1 must adopt a NEWER, properly
// signed image v2 (re-bootstrapping its page state), never a replayed
// older one, and never a forged one — and a full network must converge on
// v2 after the base station pushes it mid-deployment.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/lr_seluge.h"
#include "proto/engine.h"
#include "sim/simulator.h"

namespace lrs {
namespace {

using core::lr_scheme_factory;
using core::make_lr_receiver;
using core::make_lr_source;
using proto::CommonParams;
using proto::DissemNode;
using proto::EngineConfig;

CommonParams small_params(Version v = 1) {
  CommonParams p;
  p.version = v;
  p.payload_size = 32;
  p.k = 8;
  p.n = 12;
  p.k0 = 4;
  p.n0 = 8;
  p.puzzle_strength = 4;
  return p;
}

/// Two images signed under one root, versions 1 and 2.
struct TwoImages {
  TwoImages()
      : signer(view(Bytes{0x77}), 2),
        image_v1(core::make_test_image(1024, 1)),
        image_v2(core::make_test_image(1400, 2)),
        v1(make_lr_source(small_params(1), image_v1, signer)),
        v2(make_lr_source(small_params(2), image_v2, signer)) {}

  crypto::MultiKeySigner signer;
  Bytes image_v1, image_v2;
  std::unique_ptr<proto::SchemeState> v1, v2;
};

/// Feeds every packet of `src` into `node` as frames.
void pump(proto::SchemeState& src, DissemNode& node) {
  for (std::uint32_t p = 0; p < src.num_pages(); ++p) {
    for (std::uint32_t j = 0; j < src.packets_in_page(p); ++j) {
      if (node.scheme().pages_complete() > p) break;
      proto::DataPacket d;
      d.version = src.version();
      d.page = p;
      d.index = j;
      d.payload = src.packet_payload(p, j).value();
      node.on_receive(view(d.serialize()));
    }
  }
}

// A tiny Env double (timers never fire; we drive the node with frames).
class StaticEnv final : public sim::Env {
 public:
  sim::SimTime now() const override { return 0; }
  NodeId id() const override { return 5; }
  void broadcast(sim::PacketClass, Bytes) override {}
  sim::EventToken schedule(sim::SimTime, sim::EventFn) override {
    return sim::EventToken::from_bits(++token_bits_);
  }
  std::size_t pending_tx() const override { return 0; }
  void cancel(sim::EventToken) override {}
  Rng& rng() override { return rng_; }
  sim::NodeMetrics& metrics() override { return metrics_; }
  void notify_complete() override {}

 private:
  Rng rng_{1};
  sim::NodeMetrics metrics_;
  std::uint64_t token_bits_ = 0;
};

DissemNode make_upgradable_node(sim::Env& env, const TwoImages& imgs) {
  EngineConfig cfg;
  cfg.scheme_factory =
      lr_scheme_factory(small_params(), imgs.signer.root_public_key());
  return DissemNode(env,
                    make_lr_receiver(small_params(),
                                     imgs.signer.root_public_key()),
                    cfg, small_params().cluster_key);
}

TEST(Upgrade, AdoptsNewerSignedImageAfterCompletingOld) {
  TwoImages imgs;
  StaticEnv env;
  auto node = make_upgradable_node(env, imgs);
  node.on_start();

  node.on_receive(view(imgs.v1->signature_frame().value()));
  pump(*imgs.v1, node);
  ASSERT_TRUE(node.image_complete());
  ASSERT_EQ(node.scheme().assemble_image(), imgs.image_v1);

  // v2 arrives: state resets to the new version, pages start over.
  node.on_receive(view(imgs.v2->signature_frame().value()));
  EXPECT_EQ(node.scheme().version(), 2u);
  EXPECT_FALSE(node.image_complete());
  EXPECT_EQ(node.scheme().pages_complete(), 0u);

  pump(*imgs.v2, node);
  ASSERT_TRUE(node.image_complete());
  EXPECT_EQ(node.scheme().assemble_image(), imgs.image_v2);
}

TEST(Upgrade, UpgradesMidTransferToo) {
  TwoImages imgs;
  StaticEnv env;
  auto node = make_upgradable_node(env, imgs);
  node.on_start();
  node.on_receive(view(imgs.v1->signature_frame().value()));
  // Only page 0 of v1 delivered, then v2 appears.
  for (std::uint32_t j = 0; j < imgs.v1->packets_in_page(0); ++j) {
    if (node.scheme().pages_complete() > 0) break;
    proto::DataPacket d;
    d.version = 1;
    d.page = 0;
    d.index = j;
    d.payload = imgs.v1->packet_payload(0, j).value();
    node.on_receive(view(d.serialize()));
  }
  node.on_receive(view(imgs.v2->signature_frame().value()));
  EXPECT_EQ(node.scheme().version(), 2u);
  pump(*imgs.v2, node);
  EXPECT_EQ(node.scheme().assemble_image(), imgs.image_v2);
}

TEST(Upgrade, DowngradeReplayIgnored) {
  TwoImages imgs;
  StaticEnv env;
  auto node = make_upgradable_node(env, imgs);
  node.on_start();
  node.on_receive(view(imgs.v2->signature_frame().value()));
  pump(*imgs.v2, node);
  ASSERT_TRUE(node.image_complete());

  // Replaying the (genuine!) v1 signature must not roll the node back.
  node.on_receive(view(imgs.v1->signature_frame().value()));
  EXPECT_EQ(node.scheme().version(), 2u);
  EXPECT_TRUE(node.image_complete());
}

TEST(Upgrade, ForgedNewerVersionRejected) {
  TwoImages imgs;
  crypto::MultiKeySigner mallory(view(Bytes{0x66}), 1);
  auto params3 = small_params(3);
  const Bytes evil = core::make_test_image(800, 9);
  auto forged = make_lr_source(params3, evil, mallory);

  StaticEnv env;
  auto node = make_upgradable_node(env, imgs);
  node.on_start();
  node.on_receive(view(imgs.v1->signature_frame().value()));
  pump(*imgs.v1, node);
  ASSERT_TRUE(node.image_complete());

  // Mallory's "v3" verifies under her root, not ours: no upgrade.
  node.on_receive(view(forged->signature_frame().value()));
  EXPECT_EQ(node.scheme().version(), 1u);
  EXPECT_TRUE(node.image_complete());
}

TEST(Upgrade, WithoutFactoryNewerVersionsIgnored) {
  TwoImages imgs;
  StaticEnv env;
  EngineConfig cfg;  // no scheme_factory
  DissemNode node(env,
                  make_lr_receiver(small_params(),
                                   imgs.signer.root_public_key()),
                  cfg, small_params().cluster_key);
  node.on_start();
  node.on_receive(view(imgs.v1->signature_frame().value()));
  node.on_receive(view(imgs.v2->signature_frame().value()));
  EXPECT_EQ(node.scheme().version(), 1u);
}

TEST(Upgrade, FullNetworkConvergesOnPushedV2) {
  // End-to-end: v1 disseminates; the operator pushes v2 at the base
  // station; every receiver converges on v2 byte-exactly (including nodes
  // that learn about v2 only from advertisements).
  TwoImages imgs;
  const std::size_t kReceivers = 6;
  sim::Simulator simulator(sim::Topology::star(kReceivers),
                           sim::make_uniform_loss(0.1), sim::RadioParams{},
                           3);
  EngineConfig cfg;
  cfg.timing.trickle.tau_low = 250 * sim::kMillisecond;
  cfg.timing.trickle.tau_high = 4 * sim::kSecond;
  cfg.scheme_factory =
      lr_scheme_factory(small_params(), imgs.signer.root_public_key());
  cfg.is_base_station = true;

  std::vector<DissemNode*> nodes;
  crypto::MultiKeySigner bs_signer(view(Bytes{0x77}), 2);
  nodes.push_back(&simulator.add_node<DissemNode>(
      make_lr_source(small_params(1), imgs.image_v1, bs_signer), cfg,
      small_params().cluster_key));
  cfg.is_base_station = false;
  for (std::size_t i = 0; i < kReceivers; ++i) {
    nodes.push_back(&simulator.add_node<DissemNode>(
        make_lr_receiver(small_params(), imgs.signer.root_public_key()), cfg,
        small_params().cluster_key));
  }

  const auto all_at = [&](Version v) {
    for (std::size_t i = 1; i <= kReceivers; ++i) {
      if (nodes[i]->scheme().version() != v ||
          !nodes[i]->image_complete()) {
        return false;
      }
    }
    return true;
  };

  ASSERT_TRUE(
      simulator.run(600LL * sim::kSecond, [&] { return all_at(1); }));

  // Operator pushes v2 (signed by the same signer chain).
  nodes[0]->upgrade(make_lr_source(small_params(2), imgs.image_v2, bs_signer));
  ASSERT_TRUE(
      simulator.run(simulator.now() + 600LL * sim::kSecond,
                    [&] { return all_at(2); }));
  for (std::size_t i = 1; i <= kReceivers; ++i) {
    EXPECT_EQ(nodes[i]->scheme().assemble_image(), imgs.image_v2);
  }
}

}  // namespace
}  // namespace lrs
