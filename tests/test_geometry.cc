// Parameter-grid property tests: every (payload, k, n, k0, n0, image-size)
// combination must preprocess, authenticate, decode under loss, and
// reassemble byte-exactly — for both secure schemes. These sweeps guard
// the page-capacity arithmetic (hash blocks, padding, last-page handling)
// against off-by-one regressions.
#include <gtest/gtest.h>

#include <tuple>

#include "core/experiment.h"
#include "core/lr_image.h"
#include "crypto/wots.h"
#include "proto/seluge.h"
#include "util/rng.h"

namespace lrs {
namespace {

using proto::CommonParams;
using proto::DataStatus;
using proto::SchemeState;

// (payload, k, n, k0, n0, image_size)
using Geometry =
    std::tuple<std::size_t, std::size_t, std::size_t, std::size_t,
               std::size_t, std::size_t>;

CommonParams params_for(const Geometry& g) {
  CommonParams p;
  p.payload_size = std::get<0>(g);
  p.k = std::get<1>(g);
  p.n = std::get<2>(g);
  p.k0 = std::get<3>(g);
  p.n0 = std::get<4>(g);
  p.puzzle_strength = 2;
  return p;
}

class LrGeometry : public ::testing::TestWithParam<Geometry> {};

TEST_P(LrGeometry, LossyTransferIsByteExact) {
  const auto params = params_for(GetParam());
  const std::size_t image_size = std::get<5>(GetParam());
  const Bytes image = core::make_test_image(image_size, image_size);

  crypto::MultiKeySigner signer(view(Bytes{1}), 1);
  auto src = core::make_lr_source(params, image, signer);
  auto dst = core::make_lr_receiver(params, signer.root_public_key());
  sim::NodeMetrics m;
  ASSERT_TRUE(dst->on_signature(view(src->signature_frame().value()), m));

  // Drop a deterministic pseudo-random (n - k') subset of each page.
  Rng rng(image_size * 31 + params.n);
  for (std::uint32_t p = 0; p < src->num_pages(); ++p) {
    const std::size_t count = src->packets_in_page(p);
    const std::size_t threshold = src->decode_threshold(p);
    std::vector<std::uint32_t> order(count);
    for (std::size_t j = 0; j < count; ++j)
      order[j] = static_cast<std::uint32_t>(j);
    for (std::size_t j = 0; j + 1 < count; ++j)
      std::swap(order[j], order[j + rng.uniform(count - j)]);
    order.resize(threshold);  // deliver exactly k' random packets
    for (auto j : order) {
      const auto status =
          dst->on_data(p, j, view(src->packet_payload(p, j).value()), m);
      ASSERT_NE(status, DataStatus::kRejected)
          << "page " << p << " idx " << j;
    }
    ASSERT_EQ(dst->pages_complete(), p + 1) << "page " << p;
  }
  ASSERT_TRUE(dst->image_complete());
  EXPECT_EQ(dst->assemble_image(), image);
  EXPECT_EQ(m.auth_failures, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LrGeometry,
    ::testing::Values(
        // payload, k, n, k0, n0, image size
        Geometry{16, 4, 6, 2, 4, 100},        // tiny everything
        Geometry{16, 4, 6, 2, 4, 1},          // one-byte image
        Geometry{32, 8, 12, 4, 8, 256},       // image == exactly one page
        Geometry{32, 8, 12, 4, 8, 257},       // one page + 1 byte
        Geometry{32, 8, 8, 4, 8, 500},        // n == k (no redundancy)
        Geometry{32, 8, 16, 8, 16, 2000},     // rate 2, k0 == n0/2
        Geometry{48, 12, 20, 4, 8, 3000},     // non-power-of-two k
        Geometry{64, 32, 48, 8, 16, 20480},   // the paper's configuration
        Geometry{64, 32, 64, 16, 32, 8192},   // deep hash page
        Geometry{128, 16, 24, 4, 16, 10000},  // big packets
        Geometry{24, 16, 24, 2, 2, 1000},     // minimal hash-page code
        Geometry{40, 10, 15, 5, 8, 4096}));   // odd sizes everywhere

class SelugeGeometry : public ::testing::TestWithParam<Geometry> {};

TEST_P(SelugeGeometry, FullTransferIsByteExact) {
  const auto params = params_for(GetParam());
  const std::size_t image_size = std::get<5>(GetParam());
  const Bytes image = core::make_test_image(image_size, image_size + 7);

  crypto::MultiKeySigner signer(view(Bytes{2}), 1);
  auto src = proto::make_seluge_source(params, image, signer);
  auto dst = proto::make_seluge_receiver(params, signer.root_public_key());
  sim::NodeMetrics m;
  ASSERT_TRUE(dst->on_signature(view(src->signature_frame().value()), m));

  for (std::uint32_t p = 0; p < src->num_pages(); ++p) {
    for (std::uint32_t j = 0; j < src->packets_in_page(p); ++j) {
      const auto status =
          dst->on_data(p, j, view(src->packet_payload(p, j).value()), m);
      ASSERT_NE(status, DataStatus::kRejected)
          << "page " << p << " idx " << j;
    }
    ASSERT_EQ(dst->pages_complete(), p + 1);
  }
  ASSERT_TRUE(dst->image_complete());
  EXPECT_EQ(dst->assemble_image(), image);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SelugeGeometry,
    ::testing::Values(Geometry{16, 4, 0, 0, 0, 100},
                      Geometry{16, 4, 0, 0, 0, 1},
                      Geometry{32, 8, 0, 0, 0, 256},
                      Geometry{32, 8, 0, 0, 0, 257},
                      Geometry{64, 32, 0, 0, 0, 20480},
                      Geometry{64, 48, 0, 0, 0, 8192},
                      Geometry{24, 5, 0, 0, 0, 1000},
                      Geometry{128, 16, 0, 0, 0, 10000}));

}  // namespace
}  // namespace lrs
