// Differential tests for the dispatched GF(256) kernels: every compiled-in
// kernel must match the reference log/exp kernel byte-for-byte, for every
// coefficient 0-255, over randomized buffers of awkward lengths (empty,
// sub-word, around the 8/16/32-byte vector strides, and page-sized).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "erasure/code.h"
#include "erasure/gf256.h"
#include "erasure/gf256_kernels.h"
#include "util/rng.h"

namespace lrs::erasure {
namespace {

constexpr std::size_t kLengths[] = {0, 1, 7, 63, 64, 65, 4096};

Bytes random_bytes(std::size_t len, Rng& rng) {
  Bytes b(len);
  for (auto& v : b) v = static_cast<std::uint8_t>(rng.uniform(256));
  return b;
}

TEST(Gf256Kernels, RegistryAlwaysHasRefAndTable) {
  const auto names = gf256_available_kernels();
  EXPECT_NE(std::find(names.begin(), names.end(), "ref"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "table"), names.end());
  for (const auto& name : names) {
    EXPECT_NE(gf256_find_kernel(name), nullptr) << name;
  }
  EXPECT_EQ(gf256_find_kernel("no-such-kernel"), nullptr);
  EXPECT_EQ(gf256_find_kernel("auto"), nullptr);
}

TEST(Gf256Kernels, SetKernelRejectsUnknownAndAcceptsAuto) {
  const std::string before = gf256_kernel().name;
  EXPECT_FALSE(gf256_set_kernel("no-such-kernel"));
  EXPECT_EQ(gf256_kernel().name, before);  // unchanged on failure
  EXPECT_TRUE(gf256_set_kernel("auto"));
  EXPECT_TRUE(gf256_set_kernel(before));
}

TEST(Gf256Kernels, MulTableMatchesScalarMul) {
  const std::uint8_t* table = gf256_mul_table();
  for (int c = 0; c < 256; ++c) {
    for (int x = 0; x < 256; ++x) {
      ASSERT_EQ(table[c * 256 + x],
                Gf256::mul(static_cast<std::uint8_t>(c),
                           static_cast<std::uint8_t>(x)))
          << "c=" << c << " x=" << x;
    }
  }
}

TEST(Gf256Kernels, ScalarMulHandlesZeroWithoutGuards) {
  // The log[0] sentinel must make unguarded zero products come out 0.
  for (int x = 0; x < 256; ++x) {
    EXPECT_EQ(Gf256::mul(0, static_cast<std::uint8_t>(x)), 0);
    EXPECT_EQ(Gf256::mul(static_cast<std::uint8_t>(x), 0), 0);
  }
  // And the known AES products still hold.
  EXPECT_EQ(Gf256::mul(0x53, 0xCA), 0x01);
  EXPECT_EQ(Gf256::mul(0x02, 0x80), 0x1b);
}

class KernelDifferential : public ::testing::TestWithParam<std::string> {
 protected:
  const Gf256Kernel* kernel() { return gf256_find_kernel(GetParam()); }
  const Gf256Kernel* ref() { return gf256_find_kernel("ref"); }
};

TEST_P(KernelDifferential, AddmulMatchesReferenceEverywhere) {
  const auto* k = kernel();
  ASSERT_NE(k, nullptr);
  const auto* r = ref();
  Rng rng(0x5eed);
  for (std::size_t len : kLengths) {
    const Bytes src = random_bytes(len, rng);
    const Bytes dst0 = random_bytes(len, rng);
    for (int c = 0; c < 256; ++c) {
      Bytes got = dst0, want = dst0;
      k->addmul(got.data(), src.data(), len,
                static_cast<std::uint8_t>(c));
      r->addmul(want.data(), src.data(), len,
                static_cast<std::uint8_t>(c));
      ASSERT_EQ(got, want) << GetParam() << " coeff=" << c << " len=" << len;
    }
  }
}

TEST_P(KernelDifferential, ScaleMatchesReferenceEverywhere) {
  const auto* k = kernel();
  ASSERT_NE(k, nullptr);
  const auto* r = ref();
  Rng rng(0xfeed);
  for (std::size_t len : kLengths) {
    const Bytes dst0 = random_bytes(len, rng);
    for (int c = 0; c < 256; ++c) {
      Bytes got = dst0, want = dst0;
      k->scale(got.data(), len, static_cast<std::uint8_t>(c));
      r->scale(want.data(), len, static_cast<std::uint8_t>(c));
      ASSERT_EQ(got, want) << GetParam() << " coeff=" << c << " len=" << len;
    }
  }
}

TEST_P(KernelDifferential, UnalignedBuffersMatchReference) {
  // SIMD paths use unaligned loads; shear the buffers so neither dst nor
  // src sits on a vector boundary.
  const auto* k = kernel();
  ASSERT_NE(k, nullptr);
  const auto* r = ref();
  Rng rng(0xa11);
  const std::size_t len = 257;
  Bytes src_store = random_bytes(len + 3, rng);
  Bytes base = random_bytes(len + 1, rng);
  for (int c : {0, 1, 2, 0x8e, 255}) {
    Bytes got = base, want = base;
    k->addmul(got.data() + 1, src_store.data() + 3, len,
              static_cast<std::uint8_t>(c));
    r->addmul(want.data() + 1, src_store.data() + 3, len,
              static_cast<std::uint8_t>(c));
    ASSERT_EQ(got, want) << GetParam() << " coeff=" << c;
  }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelDifferential,
                         ::testing::ValuesIn(gf256_available_kernels()),
                         [](const auto& info) { return info.param; });

// End-to-end: the full RS encode/decode round-trip must be bit-identical
// under every kernel (the protocol hash-chains encoded packets, so kernels
// must not merely be self-consistent — they must agree across nodes that
// may have selected different kernels).
TEST(Gf256Kernels, RsRoundTripIdenticalAcrossKernels) {
  const std::string before = gf256_kernel().name;
  auto code = make_rs_code(8, 12);
  Rng rng(9);
  std::vector<Bytes> blocks(8);
  for (auto& b : blocks) b = random_bytes(40, rng);

  std::vector<std::vector<Bytes>> encodings;
  for (const auto& name : gf256_available_kernels()) {
    ASSERT_TRUE(gf256_set_kernel(name));
    encodings.push_back(code->encode(blocks));
    std::vector<Share> shares;
    for (std::size_t i : {2u, 5u, 8u, 9u, 10u, 11u, 0u, 7u})
      shares.push_back({i, encodings.back()[i]});
    auto decoded = code->decode(shares);
    ASSERT_TRUE(decoded.has_value()) << name;
    EXPECT_EQ(*decoded, blocks) << name;
  }
  for (std::size_t i = 1; i < encodings.size(); ++i)
    EXPECT_EQ(encodings[i], encodings[0]);
  ASSERT_TRUE(gf256_set_kernel(before));
}

// ---------------------------------------------------------------------------
// Codec cache
// ---------------------------------------------------------------------------

TEST(CodecCache, SameKeyYieldsSameInstance) {
  codec_cache_clear();
  auto a = make_code_cached(CodecKind::kRlcGf256, 8, 16, 2, 42);
  auto b = make_code_cached(CodecKind::kRlcGf256, 8, 16, 2, 42);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(codec_cache_size(), 1u);
}

TEST(CodecCache, DistinctKeysYieldDistinctInstances) {
  codec_cache_clear();
  auto a = make_code_cached(CodecKind::kRlcGf256, 8, 16, 2, 42);
  auto b = make_code_cached(CodecKind::kRlcGf256, 8, 16, 2, 43);
  auto c = make_code_cached(CodecKind::kRlcGf2, 8, 16, 2, 42);
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(codec_cache_size(), 3u);
}

TEST(CodecCache, ReedSolomonCanonicalizesDeltaAndSeed) {
  codec_cache_clear();
  auto a = make_code_cached(CodecKind::kReedSolomon, 8, 16, 0, 1);
  auto b = make_code_cached(CodecKind::kReedSolomon, 8, 16, 3, 99);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(codec_cache_size(), 1u);
}

TEST(CodecCache, CachedCodecBehavesLikeFresh) {
  codec_cache_clear();
  auto cached = make_code_cached(CodecKind::kRlcGf256, 4, 8, 1, 7);
  auto fresh = make_code(CodecKind::kRlcGf256, 4, 8, 1, 7);
  Rng rng(11);
  std::vector<Bytes> blocks(4);
  for (auto& b : blocks) b = random_bytes(16, rng);
  EXPECT_EQ(cached->encode(blocks), fresh->encode(blocks));
}

TEST(CodecCache, ClearKeepsOutstandingPointersValid) {
  codec_cache_clear();
  auto a = make_code_cached(CodecKind::kReedSolomon, 4, 8, 0, 0);
  codec_cache_clear();
  EXPECT_EQ(codec_cache_size(), 0u);
  EXPECT_EQ(a->k(), 4u);  // shared_ptr keeps the instance alive
  auto b = make_code_cached(CodecKind::kReedSolomon, 4, 8, 0, 0);
  EXPECT_NE(a.get(), b.get());  // rebuilt after clear
}

}  // namespace
}  // namespace lrs::erasure
