// Security experiments: forged data/signature floods against live
// disseminations, buffer-pollution comparison against the unauthenticated
// baseline, and the denial-of-receipt mitigation.
#include <gtest/gtest.h>

#include "attack/adversary.h"
#include "core/experiment.h"
#include "core/lr_image.h"
#include "crypto/wots.h"
#include "proto/deluge.h"
#include "proto/engine.h"

namespace lrs {
namespace {

using attack::DenialOfReceiptConfig;
using attack::DenialOfReceiptNode;
using attack::InjectorConfig;
using attack::InjectorNode;
using core::make_lr_receiver;
using core::make_lr_source;

proto::CommonParams small_params() {
  proto::CommonParams p;
  p.payload_size = 32;
  p.k = 8;
  p.n = 12;
  p.k0 = 4;
  p.n0 = 8;
  p.puzzle_strength = 10;
  return p;
}

proto::EngineTiming fast_timing() {
  proto::EngineTiming t;
  t.trickle.tau_low = 250 * sim::kMillisecond;
  t.trickle.tau_high = 8 * sim::kSecond;
  return t;
}

/// One-hop cell: base station + `receivers` honest LR-Seluge nodes +
/// one extra topology slot for the attacker (added by the caller).
struct AttackRig {
  explicit AttackRig(std::size_t receivers, std::uint64_t seed = 1)
      : image(core::make_test_image(2048, 42)),
        signer(view(Bytes{1, 2}), 2),
        simulator(sim::Topology::star(receivers + 1),
                  sim::make_perfect_channel(), sim::RadioParams{}, seed) {
    params = small_params();
    proto::EngineConfig cfg;
    cfg.timing = fast_timing();
    cfg.is_base_station = true;
    nodes.push_back(&simulator.add_node<proto::DissemNode>(
        make_lr_source(params, image, signer), cfg, params.cluster_key));
    cfg.is_base_station = false;
    for (std::size_t i = 0; i < receivers; ++i) {
      nodes.push_back(&simulator.add_node<proto::DissemNode>(
          make_lr_receiver(params, signer.root_public_key()), cfg,
          params.cluster_key));
    }
  }

  std::size_t honest_complete() const {
    std::size_t done = 0;
    for (std::size_t i = 1; i < nodes.size(); ++i)
      done += nodes[i]->image_complete();
    return done;
  }

  proto::CommonParams params;
  Bytes image;
  crypto::MultiKeySigner signer;
  sim::Simulator simulator;
  std::vector<proto::DissemNode*> nodes;
};

TEST(Attack, ForgedDataNeverAcceptedAndDisseminationSucceeds) {
  AttackRig rig(4);
  InjectorConfig icfg;
  icfg.version = rig.params.version;
  icfg.period = 15 * sim::kMillisecond;
  icfg.data_pages = 5;
  icfg.data_indices = rig.params.n;
  icfg.data_payload_size = rig.params.payload_size;
  auto& attacker = rig.simulator.add_node<InjectorNode>(icfg);

  rig.simulator.run(600 * sim::kSecond,
                    [&] { return rig.honest_complete() == 4; });
  EXPECT_EQ(rig.honest_complete(), 4u);
  EXPECT_GT(attacker.injected(), 100u);

  // Every honest node reassembles the genuine image despite the flood.
  for (std::size_t i = 1; i < rig.nodes.size(); ++i) {
    EXPECT_EQ(rig.nodes[i]->scheme().assemble_image(), rig.image);
  }
  // Forged packets were rejected (cost: one hash each), never stored.
  EXPECT_GT(rig.simulator.metrics().total_auth_failures(), 0u);
}

TEST(Attack, ForgedPacketCostIsOneHashNotASignature) {
  AttackRig rig(2);
  InjectorConfig icfg;
  icfg.version = rig.params.version;
  icfg.period = 10 * sim::kMillisecond;
  icfg.data_payload_size = rig.params.payload_size;
  rig.simulator.add_node<InjectorNode>(icfg);

  rig.simulator.run(600 * sim::kSecond,
                    [&] { return rig.honest_complete() == 2; });
  ASSERT_EQ(rig.honest_complete(), 2u);
  // Signature verifications stay at one per honest receiver: the flood
  // never triggers expensive crypto.
  EXPECT_EQ(rig.simulator.metrics().total_signature_verifications(), 2u);
}

TEST(Attack, PuzzlelessForgedSignaturesNeverReachVerification) {
  AttackRig rig(3);
  InjectorConfig icfg;
  icfg.version = rig.params.version;
  icfg.forge_data = false;
  icfg.forge_signatures = true;
  icfg.solve_puzzles = false;
  icfg.puzzle_strength = rig.params.puzzle_strength;
  icfg.period = 20 * sim::kMillisecond;
  auto& attacker = rig.simulator.add_node<InjectorNode>(icfg);

  rig.simulator.run(600 * sim::kSecond,
                    [&] { return rig.honest_complete() == 3; });
  ASSERT_EQ(rig.honest_complete(), 3u);
  EXPECT_GT(attacker.injected(), 50u);
  // Only the 3 genuine verifications happened; forged packets died at the
  // puzzle check (with overwhelming probability a random solution fails).
  const auto& m = rig.simulator.metrics();
  EXPECT_LE(m.total_signature_verifications(), 3u + 1u);
  std::uint64_t puzzle_rejects = 0;
  for (NodeId i = 1; i <= 3; ++i)
    puzzle_rejects += m.node(i).puzzle_rejections;
  EXPECT_GT(puzzle_rejects, 0u);
}

TEST(Attack, SolvedPuzzleForgeriesStillFailSignature) {
  AttackRig rig(2);
  InjectorConfig icfg;
  icfg.version = rig.params.version;
  icfg.forge_data = false;
  icfg.forge_signatures = true;
  icfg.solve_puzzles = true;  // attacker pays 2^strength per packet
  icfg.puzzle_strength = rig.params.puzzle_strength;
  icfg.period = 200 * sim::kMillisecond;
  rig.simulator.add_node<InjectorNode>(icfg);

  rig.simulator.run(600 * sim::kSecond,
                    [&] { return rig.honest_complete() == 2; });
  ASSERT_EQ(rig.honest_complete(), 2u);
  // Forged-but-puzzle-valid packets cost receivers signature checks, yet
  // never bootstrap a false image: both nodes hold the genuine one.
  for (std::size_t i = 1; i < rig.nodes.size(); ++i)
    EXPECT_EQ(rig.nodes[i]->scheme().assemble_image(), rig.image);
}

TEST(Attack, DelugeBaselineIsCorruptedByTheSameFlood) {
  // The contrast experiment: with no packet authentication, forged packets
  // are stored and the recovered "image" is wrong (or never completes).
  const auto params = small_params();
  const Bytes image = core::make_test_image(2048, 42);
  sim::Simulator simulator(sim::Topology::star(3),
                           sim::make_perfect_channel(), sim::RadioParams{}, 3);
  proto::EngineConfig cfg;
  cfg.timing = fast_timing();
  cfg.is_base_station = true;
  std::vector<proto::DissemNode*> nodes;
  nodes.push_back(&simulator.add_node<proto::DissemNode>(
      proto::make_deluge_source(params, image), cfg, Bytes{}));
  cfg.is_base_station = false;
  for (int i = 0; i < 2; ++i) {
    nodes.push_back(&simulator.add_node<proto::DissemNode>(
        proto::make_deluge_receiver(params, image.size()), cfg, Bytes{}));
  }
  InjectorConfig icfg;
  icfg.version = params.version;
  icfg.period = 10 * sim::kMillisecond;
  icfg.data_pages = 3;
  icfg.data_indices = params.k;
  icfg.data_payload_size = params.payload_size;
  simulator.add_node<InjectorNode>(icfg);

  simulator.run(300 * sim::kSecond, [&] {
    return nodes[1]->image_complete() && nodes[2]->image_complete();
  });

  bool corrupted = false;
  for (int i = 1; i <= 2; ++i) {
    if (!nodes[i]->image_complete() ||
        nodes[i]->scheme().assemble_image() != image) {
      corrupted = true;
    }
  }
  EXPECT_TRUE(corrupted);
}

TEST(Attack, DenialOfReceiptMitigationCapsService) {
  // A compromised neighbor SNACKs forever; with the §IV-E mitigation the
  // victim stops serving it after the per-page budget.
  const auto params = small_params();
  const Bytes image = core::make_test_image(1024, 9);
  crypto::MultiKeySigner signer(view(Bytes{5}), 1);

  for (bool mitigation : {true, false}) {
    sim::Simulator simulator(sim::Topology::star(1),
                             sim::make_perfect_channel(), sim::RadioParams{},
                             7);
    proto::EngineConfig cfg;
    cfg.timing = fast_timing();
    cfg.is_base_station = true;
    cfg.dor_mitigation = mitigation;
    cfg.dor_limit_factor = 2;
    crypto::MultiKeySigner s(view(Bytes{5}), 1);
    auto& victim = simulator.add_node<proto::DissemNode>(
        make_lr_source(params, image, s), cfg, params.cluster_key);
    (void)victim;

    DenialOfReceiptConfig dcfg;
    dcfg.version = params.version;
    dcfg.victim = 0;
    dcfg.page = 1;
    dcfg.packets_in_page = params.n;
    dcfg.period = 50 * sim::kMillisecond;
    dcfg.cluster_key = params.cluster_key;
    auto& attacker = simulator.add_node<DenialOfReceiptNode>(dcfg);

    simulator.run(60 * sim::kSecond);
    EXPECT_GT(attacker.snacks_sent(), 100u);
    const auto served =
        simulator.metrics().node(0).sent[static_cast<std::size_t>(
            sim::PacketClass::kData)];
    const auto ignored = simulator.metrics().node(0).snacks_ignored;
    if (mitigation) {
      // Budget: dor_limit_factor * k' packets for that page, ever.
      EXPECT_LE(served, 2 * params.k + params.n);
      EXPECT_GT(ignored, 50u);
    } else {
      // Unbounded bleed: every SNACK triggers up to k' transmissions.
      EXPECT_GT(served, 2 * params.k + params.n);
      EXPECT_EQ(ignored, 0u);
    }
  }
}

TEST(Attack, SpoofedSenderIdsDefeatDorBudgetUnderClusterKey) {
  // The weakness the paper's §IV-E future work addresses: with a single
  // shared cluster key, a compromised node rotates fake sender IDs and the
  // per-neighbor budget never trips.
  const auto params = small_params();
  const Bytes image = core::make_test_image(1024, 9);
  sim::Simulator simulator(sim::Topology::star(1), sim::make_perfect_channel(),
                           sim::RadioParams{}, 7);
  proto::EngineConfig cfg;
  cfg.timing = fast_timing();
  cfg.is_base_station = true;
  cfg.dor_mitigation = true;
  cfg.dor_limit_factor = 2;
  crypto::MultiKeySigner s(view(Bytes{5}), 1);
  simulator.add_node<proto::DissemNode>(make_lr_source(params, image, s), cfg,
                                        params.cluster_key);
  DenialOfReceiptConfig dcfg;
  dcfg.version = params.version;
  dcfg.victim = 0;
  dcfg.page = 1;
  dcfg.packets_in_page = params.n;
  dcfg.period = 50 * sim::kMillisecond;
  dcfg.cluster_key = params.cluster_key;
  dcfg.rotate_sender_ids = true;  // fresh fake identity per SNACK
  simulator.add_node<DenialOfReceiptNode>(dcfg);

  simulator.run(60 * sim::kSecond);
  const auto served = simulator.metrics().node(0).sent[static_cast<std::size_t>(
      sim::PacketClass::kData)];
  // Budget evaded: the victim bleeds far beyond any one identity's cap.
  EXPECT_GT(served, 4 * 2 * params.k);
}

TEST(Attack, LeapSourceKeysStopSenderSpoofing) {
  // Same attack with LEAP-style per-source SNACK keys: forged identities
  // fail the MAC (the attacker holds only its own key), and SNACKs under
  // its real identity hit the budget.
  const auto params = small_params();
  const Bytes image = core::make_test_image(1024, 9);
  for (bool spoof : {true, false}) {
    sim::Simulator simulator(sim::Topology::star(1),
                             sim::make_perfect_channel(), sim::RadioParams{},
                             7);
    proto::EngineConfig cfg;
    cfg.timing = fast_timing();
    cfg.is_base_station = true;
    cfg.dor_mitigation = true;
    cfg.dor_limit_factor = 2;
    cfg.leap_snack_auth = true;
    cfg.leap_master = params.leap_master;
    crypto::MultiKeySigner s(view(Bytes{5}), 1);
    simulator.add_node<proto::DissemNode>(make_lr_source(params, image, s),
                                          cfg, params.cluster_key);
    DenialOfReceiptConfig dcfg;
    dcfg.version = params.version;
    dcfg.victim = 0;
    dcfg.page = 1;
    dcfg.packets_in_page = params.n;
    dcfg.period = 50 * sim::kMillisecond;
    // The compromised node's OWN derived key (NodeId 1 in this topology).
    dcfg.cluster_key = proto::leap_source_key(view(params.leap_master), 1);
    dcfg.rotate_sender_ids = spoof;
    simulator.add_node<DenialOfReceiptNode>(dcfg);

    simulator.run(60 * sim::kSecond);
    const auto& m = simulator.metrics().node(0);
    const auto served =
        m.sent[static_cast<std::size_t>(sim::PacketClass::kData)];
    if (spoof) {
      // Every spoofed SNACK fails MAC verification: nothing served at all.
      EXPECT_EQ(served, 0u);
      EXPECT_GT(m.auth_failures, 50u);
    } else {
      // Honest identity: capped by the budget as designed.
      EXPECT_LE(served, 2 * params.k + params.n);
      EXPECT_GT(m.snacks_ignored, 0u);
    }
  }
}

TEST(Attack, LeapEndToEndStillDisseminates) {
  // Sanity: honest dissemination works identically under LEAP SNACK auth.
  core::ExperimentConfig cfg;
  cfg.scheme = core::Scheme::kLrSeluge;
  cfg.params = small_params();
  cfg.params.leap_snack_auth = true;
  cfg.image_size = 2048;
  cfg.receivers = 4;
  cfg.loss_p = 0.2;
  cfg.timing = fast_timing();
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.all_complete);
  EXPECT_TRUE(r.images_match);
}

TEST(Attack, InjectorStopAfterLeavesNoStragglerEvent) {
  // Regression: the injector used to reschedule unconditionally and rely on
  // a guard inside inject(), so one no-op event always fired past
  // stop_after — keeping otherwise-finished simulations alive for an extra
  // period. Now the next injection is simply never armed past the deadline.
  struct IdleNode final : sim::Node {
    using sim::Node::Node;
    void on_start() override {}
    void on_receive(ByteView) override {}
  };

  sim::Simulator simulator(sim::Topology::star(1),
                           sim::make_perfect_channel(), sim::RadioParams{}, 5);
  simulator.add_node<IdleNode>();
  InjectorConfig icfg;
  icfg.period = 500 * sim::kMillisecond;
  icfg.stop_after = 2 * sim::kSecond;
  auto& attacker = simulator.add_node<InjectorNode>(icfg);

  simulator.run(600 * sim::kSecond);
  // Injections at 0.5/1.0/1.5/2.0s (the deadline itself still fires)...
  EXPECT_EQ(attacker.injected(), 4u);
  // ...and the queue drains right after the last frame's delivery — the
  // clock never reaches the old straggler slot at 2.5s.
  EXPECT_LT(simulator.now(), icfg.stop_after + icfg.period / 2);
  EXPECT_GE(simulator.now(), icfg.stop_after);
}

TEST(Attack, TamperedControlPacketsRejectedByClusterMac) {
  AttackRig rig(2);
  // An attacker without the cluster key forges SNACKs at the base station;
  // they must be MAC-rejected, producing zero service.
  DenialOfReceiptConfig dcfg;
  dcfg.version = rig.params.version;
  dcfg.victim = 0;
  dcfg.page = 1;
  dcfg.packets_in_page = rig.params.n;
  dcfg.period = 30 * sim::kMillisecond;
  dcfg.cluster_key = Bytes{0xde, 0xad};  // wrong key
  rig.simulator.add_node<DenialOfReceiptNode>(dcfg);

  rig.simulator.run(600 * sim::kSecond,
                    [&] { return rig.honest_complete() == 2; });
  EXPECT_EQ(rig.honest_complete(), 2u);
  // The forged SNACKs register as auth failures at the victim.
  EXPECT_GT(rig.simulator.metrics().node(0).auth_failures, 10u);
}

}  // namespace
}  // namespace lrs
