// End-to-end dissemination through the simulator: all three schemes, one-hop
// and multi-hop, lossless and lossy channels, byte-exact image recovery and
// scheme-vs-scheme behavioral properties from the paper's evaluation.
#include <gtest/gtest.h>

#include "core/experiment.h"

namespace lrs::core {
namespace {

ExperimentConfig base_config(Scheme scheme) {
  ExperimentConfig c;
  c.scheme = scheme;
  c.params.payload_size = 32;
  c.params.k = 8;
  c.params.n = 12;
  c.params.k0 = 4;
  c.params.n0 = 8;
  c.params.puzzle_strength = 4;
  c.image_size = 2048;
  c.receivers = 5;
  c.seed = 1;
  // Faster Trickle for small test scenarios.
  c.timing.trickle.tau_low = 250 * sim::kMillisecond;
  c.timing.trickle.tau_high = 8 * sim::kSecond;
  return c;
}

class AllSchemes : public ::testing::TestWithParam<Scheme> {};

TEST_P(AllSchemes, LosslessOneHopCompletes) {
  auto cfg = base_config(GetParam());
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.all_complete) << r.completed << "/" << r.receivers;
  EXPECT_TRUE(r.images_match);
  EXPECT_GT(r.data_packets, 0u);
  EXPECT_GT(r.latency_s, 0.0);
}

TEST_P(AllSchemes, ModerateLossOneHopCompletes) {
  auto cfg = base_config(GetParam());
  cfg.loss_p = 0.15;
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.all_complete);
  EXPECT_TRUE(r.images_match);
}

TEST_P(AllSchemes, HeavyLossOneHopCompletes) {
  auto cfg = base_config(GetParam());
  cfg.loss_p = 0.4;
  cfg.receivers = 3;
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.all_complete);
  EXPECT_TRUE(r.images_match);
}

TEST_P(AllSchemes, SmallMultihopGridCompletes) {
  auto cfg = base_config(GetParam());
  cfg.topo = ExperimentConfig::Topo::kGrid;
  cfg.grid_rows = 3;
  cfg.grid_cols = 3;
  cfg.grid_spacing = 30.0;  // forces multi-hop (outer radius 45)
  cfg.image_size = 1024;
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.all_complete) << r.completed << "/" << r.receivers;
  EXPECT_TRUE(r.images_match);
}

TEST_P(AllSchemes, DeterministicForFixedSeed) {
  auto cfg = base_config(GetParam());
  cfg.loss_p = 0.1;
  const auto a = run_experiment(cfg);
  const auto b = run_experiment(cfg);
  EXPECT_EQ(a.data_packets, b.data_packets);
  EXPECT_EQ(a.snack_packets, b.snack_packets);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_DOUBLE_EQ(a.latency_s, b.latency_s);
}

INSTANTIATE_TEST_SUITE_P(Schemes, AllSchemes,
                         ::testing::Values(Scheme::kDeluge, Scheme::kSeluge,
                                           Scheme::kLrSeluge),
                         [](const auto& info) {
                           return std::string(scheme_name(info.param)) ==
                                          "lr-seluge"
                                      ? "LrSeluge"
                                      : (info.param == Scheme::kDeluge
                                             ? "Deluge"
                                             : "Seluge");
                         });

// Loss sweep as a property: completion and integrity hold across p.
class LossSweep : public ::testing::TestWithParam<double> {};

TEST_P(LossSweep, LrSelugeCompletesAndVerifies) {
  auto cfg = base_config(Scheme::kLrSeluge);
  cfg.loss_p = GetParam();
  cfg.receivers = 4;
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.all_complete) << "p=" << GetParam();
  EXPECT_TRUE(r.images_match);
  EXPECT_EQ(r.auth_failures, 0u);  // honest channel: nothing to reject
}

INSTANTIATE_TEST_SUITE_P(LossRates, LossSweep,
                         ::testing::Values(0.0, 0.05, 0.1, 0.2, 0.3, 0.45));

// ---------------------------------------------------------------------------
// Paper-shape properties
// ---------------------------------------------------------------------------

TEST(PaperShape, LrBeatsSelugeDataPacketsUnderLoss) {
  // Paper-like geometry: the 8-byte hash overhead must be small relative
  // to the payload (the paper uses 64+ byte packets), otherwise LR's
  // per-page hash block eats the redundancy gains.
  auto lr = base_config(Scheme::kLrSeluge);
  auto seluge = base_config(Scheme::kSeluge);
  for (auto* cfg : {&lr, &seluge}) {
    cfg->params.payload_size = 64;
    cfg->params.k = 16;
    cfg->params.n = 24;
    cfg->image_size = 6 * 1024;
    cfg->loss_p = 0.3;
    cfg->receivers = 8;
  }
  const auto r_lr = run_experiment_avg(lr, 5);
  const auto r_seluge = run_experiment_avg(seluge, 5);
  ASSERT_TRUE(r_lr.all_complete);
  ASSERT_TRUE(r_seluge.all_complete);
  EXPECT_LT(r_lr.data_packets, r_seluge.data_packets);
  // Latency is noisier at this small geometry; allow a modest margin
  // (paper-scale sweeps in bench/ show clear latency wins).
  EXPECT_LT(r_lr.latency_s, r_seluge.latency_s * 1.15);
}

TEST(PaperShape, EverySchemeSendsMoreUnderLoss) {
  for (Scheme s : {Scheme::kSeluge, Scheme::kLrSeluge}) {
    auto clean = base_config(s);
    auto lossy = base_config(s);
    lossy.loss_p = 0.35;
    const auto r_clean = run_experiment(clean);
    const auto r_lossy = run_experiment(lossy);
    ASSERT_TRUE(r_clean.all_complete && r_lossy.all_complete);
    EXPECT_GT(r_lossy.data_packets, r_clean.data_packets)
        << scheme_name(s);
  }
}

TEST(PaperShape, SignatureVerifiedOncePerReceiver) {
  auto cfg = base_config(Scheme::kLrSeluge);
  cfg.receivers = 6;
  const auto r = run_experiment(cfg);
  ASSERT_TRUE(r.all_complete);
  // Every receiver verifies the root signature exactly once; no forgeries
  // in an honest run.
  EXPECT_EQ(r.signature_verifications, 6u);
  EXPECT_EQ(r.auth_failures, 0u);
}

TEST(PaperShape, GilbertElliottChannelStillCompletes) {
  auto cfg = base_config(Scheme::kLrSeluge);
  cfg.gilbert_elliott = true;
  cfg.ge.p_good = 0.05;
  cfg.ge.p_bad = 0.5;
  cfg.receivers = 4;
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.all_complete);
  EXPECT_TRUE(r.images_match);
}

TEST(PaperShape, LargerImageMeansMoreTraffic) {
  auto small = base_config(Scheme::kLrSeluge);
  auto large = base_config(Scheme::kLrSeluge);
  large.image_size = 4 * small.image_size;
  const auto r_small = run_experiment(small);
  const auto r_large = run_experiment(large);
  ASSERT_TRUE(r_small.all_complete && r_large.all_complete);
  EXPECT_GT(r_large.data_packets, r_small.data_packets * 2);
}

TEST(PaperShape, RlcCodecEndToEnd) {
  auto cfg = base_config(Scheme::kLrSeluge);
  cfg.params.codec = erasure::CodecKind::kRlcGf256;
  cfg.params.delta = 1;
  cfg.loss_p = 0.2;
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.all_complete);
  EXPECT_TRUE(r.images_match);
}

}  // namespace
}  // namespace lrs::core

// Appended: energy accounting surfaces through the experiment runner.
namespace lrs::core {
namespace {

TEST(Energy, ReportedAndInternallyConsistent) {
  auto cfg = base_config(Scheme::kLrSeluge);
  cfg.loss_p = 0.2;
  const auto r = run_experiment(cfg);
  ASSERT_TRUE(r.all_complete);
  EXPECT_GT(r.tx_energy_mj, 0.0);
  // Broadcast: every frame is heard by ~N radios, so aggregate rx energy
  // dwarfs tx energy, and always-on listening dwarfs both.
  EXPECT_GT(r.rx_energy_mj, r.tx_energy_mj);
  EXPECT_GT(r.listen_energy_mj, r.rx_energy_mj);
  // listen = nodes x latency x rx power (56.4 mW default).
  const double expect =
      static_cast<double>(cfg.receivers + 1) * r.latency_s * 56.4;
  EXPECT_NEAR(r.listen_energy_mj, expect, expect * 0.01);
}

}  // namespace
}  // namespace lrs::core

// Appended: relay and determinism properties.
namespace lrs::core {
namespace {

TEST(Relay, LineTopologyForcesMultiHopRelay) {
  // 1x5 line with spacing beyond radio range between non-adjacent nodes:
  // the far end can only be served by intermediate nodes re-encoding and
  // forwarding pages they decoded themselves.
  auto cfg = base_config(Scheme::kLrSeluge);
  cfg.topo = ExperimentConfig::Topo::kGrid;
  cfg.grid_rows = 1;
  cfg.grid_cols = 5;
  cfg.grid_spacing = 30.0;  // outer radius 45: only adjacent nodes hear
  cfg.image_size = 1024;
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.all_complete);
  EXPECT_TRUE(r.images_match);
}

TEST(Relay, RelaysServeFromReencodedPages) {
  // Same line, but verify intermediate nodes actually transmitted data
  // (the base station cannot reach the tail directly).
  auto cfg = base_config(Scheme::kLrSeluge);
  cfg.topo = ExperimentConfig::Topo::kGrid;
  cfg.grid_rows = 1;
  cfg.grid_cols = 4;
  cfg.grid_spacing = 30.0;
  cfg.image_size = 1024;
  // run_experiment aggregates; per-node breakdown needs a manual check via
  // data packets: with 3 receivers in a line, total data sent must exceed
  // what one server alone would send for one neighborhood.
  const auto single_hop = [&] {
    auto c2 = cfg;
    c2.topo = ExperimentConfig::Topo::kStar;
    c2.receivers = 3;
    return run_experiment(c2);
  }();
  const auto line = run_experiment(cfg);
  ASSERT_TRUE(line.all_complete && single_hop.all_complete);
  EXPECT_GT(line.data_packets, single_hop.data_packets);
}

}  // namespace
}  // namespace lrs::core
