// Simulator substrate: event queue ordering/cancellation, Trickle timer,
// topologies, channel models, and the CSMA radio (delivery, loss,
// collisions, half-duplex).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "sim/channel.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "sim/topology.h"
#include "sim/trickle.h"

namespace lrs::sim {
namespace {

// ---------------------------------------------------------------------------
// EventQueue
// ---------------------------------------------------------------------------

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  while (q.run_next()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueueTest, TiesRunInSchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) q.schedule_at(7, [&order, i] { order.push_back(i); });
  while (q.run_next()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CancelledEventSkipped) {
  EventQueue q;
  bool ran = false;
  auto token = q.schedule_at(5, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(token));
  while (q.run_next()) {
  }
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelReturnsFalseForNullAndStaleTokens) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventToken{}));
  auto token = q.schedule_at(5, [] {});
  EXPECT_TRUE(q.run_next());
  EXPECT_FALSE(q.cancel(token));  // already fired
  auto token2 = q.schedule_at(7, [] {});
  EXPECT_TRUE(q.cancel(token2));
  EXPECT_FALSE(q.cancel(token2));  // already cancelled
}

TEST(EventQueueTest, RunUntilStopsAtLimit) {
  EventQueue q;
  int count = 0;
  q.schedule_at(10, [&] { ++count; });
  q.schedule_at(20, [&] { ++count; });
  q.schedule_at(30, [&] { ++count; });
  EXPECT_EQ(q.run_until(20), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(q.now(), 20);
}

TEST(EventQueueTest, SchedulingInPastThrows) {
  EventQueue q;
  q.schedule_at(10, [] {});
  q.run_next();
  EXPECT_THROW(q.schedule_at(5, [] {}), std::logic_error);
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1, [&] {
    ++fired;
    q.schedule_at(q.now() + 1, [&] { ++fired; });
  });
  while (q.run_next()) {
  }
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, PeekSkipsCancelled) {
  EventQueue q;
  auto token = q.schedule_at(5, [] {});
  q.schedule_at(9, [] {});
  q.cancel(token);
  EXPECT_EQ(q.peek_time().value(), 9);
}

// pending() and empty() report exact live counts: scheduling increments,
// firing and cancelling decrement immediately — lazily discarded queue
// entries are never visible.
TEST(EventQueueTest, PendingAndEmptyAreExact) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);

  auto a = q.schedule_at(5, [] {});
  auto b = q.schedule_at(10, [] {});
  q.schedule_at(15, [] {});
  EXPECT_EQ(q.pending(), 3u);

  EXPECT_TRUE(q.cancel(b));
  EXPECT_EQ(q.pending(), 2u);  // exact despite the stale entry still queued
  EXPECT_FALSE(q.empty());

  EXPECT_TRUE(q.run_next());
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_FALSE(q.cancel(a));  // fired already; count unchanged
  EXPECT_EQ(q.pending(), 1u);

  EXPECT_TRUE(q.run_next());
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.run_next());
}

// The peek/cancel/run contract: an event cancelled after peek_time()
// reported it — but before run_next() — never fires; run_next() falls
// through to the next live event, and run_until() never resurrects it.
TEST(EventQueueTest, CancelBetweenPeekAndRunSuppressesTheEvent) {
  EventQueue q;
  std::vector<int> fired;
  auto first = q.schedule_at(5, [&] { fired.push_back(5); });
  q.schedule_at(9, [&] { fired.push_back(9); });

  EXPECT_EQ(q.peek_time().value(), 5);  // reports the soon-to-be-cancelled
  EXPECT_TRUE(q.cancel(first));
  EXPECT_EQ(q.peek_time().value(), 9);

  EXPECT_TRUE(q.run_next());  // skips the stale entry, fires 9
  EXPECT_EQ(fired, (std::vector<int>{9}));
  EXPECT_EQ(q.now(), 9);
  EXPECT_FALSE(q.run_next());
}

TEST(EventQueueTest, RunUntilWithInterleavedCancels) {
  EventQueue q;
  std::vector<int> fired;
  std::vector<EventToken> tokens;
  for (int t = 1; t <= 8; ++t) {
    tokens.push_back(q.schedule_at(t * 10, [&fired, t] { fired.push_back(t); }));
  }
  // Event 2 cancels 3 (later, same run window), event 4 cancels 7 (beyond
  // the window), 1 is cancelled up front after a peek reported it.
  EXPECT_EQ(q.peek_time().value(), 10);
  q.cancel(tokens[0]);
  q.schedule_at(20, [&] { q.cancel(tokens[2]); });
  q.schedule_at(40, [&] { q.cancel(tokens[6]); });

  EXPECT_EQ(q.run_until(50), 5u);  // events 2, 4, 5 + the two cancellers
  EXPECT_EQ(fired, (std::vector<int>{2, 4, 5}));
  EXPECT_EQ(q.now(), 50);
  EXPECT_EQ(q.pending(), 2u);  // 6 and 8 remain; 7 is gone for good

  EXPECT_EQ(q.run_until(100), 2u);
  EXPECT_EQ(fired, (std::vector<int>{2, 4, 5, 6, 8}));
  // Queue drained: now() advances to the limit.
  EXPECT_EQ(q.now(), 100);
  EXPECT_TRUE(q.empty());
}

// Far-future events ride the overflow heap past the calendar's horizon and
// still fire in exact (time, seq) order after the wheel re-anchors.
TEST(EventQueueTest, FarFutureEventsPreserveOrderAcrossReanchor) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3600 * kSecond, [&] { order.push_back(4); });
  q.schedule_at(2 * kSecond, [&] { order.push_back(1); });
  q.schedule_at(3600 * kSecond, [&] { order.push_back(5); });  // same-time tie
  q.schedule_at(60 * kSecond, [&] { order.push_back(2); });
  q.schedule_at(600 * kSecond, [&] { order.push_back(3); });
  while (q.run_next()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(q.now(), 3600 * kSecond);
}

TEST(EventQueueTest, SlotReuseDoesNotConfuseOldTokens) {
  EventQueue q;
  int fired = 0;
  auto stale = q.schedule_at(1, [&] { ++fired; });
  EXPECT_TRUE(q.run_next());  // slot is recycled...
  auto fresh = q.schedule_at(2, [&] { ++fired; });
  EXPECT_FALSE(q.cancel(stale));  // ...but the old token cannot touch it
  EXPECT_TRUE(q.run_next());
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(q.cancel(fresh) == false);
}

// The wheel covers ~4.19 s of lookahead; everything later waits in the
// overflow heap for a re-anchor sweep. Schedule in an order hostile to
// both structures — far windows first, near fill-ins later, a tie deep in
// overflow, one event just past the first horizon — and demand exact
// global (time, seq) order across every sweep.
TEST(EventQueueTest, OverflowHorizonCrossingsFireInGlobalOrder) {
  EventQueue q;
  std::vector<int> order;
  struct Ev {
    SimTime at;
    int id;
  };
  const std::vector<Ev> evs = {
      {9 * kSecond, 6},  {18 * kSecond, 8},
      {1 * kSecond, 1},  {4 * kSecond + kSecond / 2, 4},
      {2 * kSecond, 2},  {9 * kSecond, 7},  // tie with id 6: seq decides
      {4 * kSecond, 3},  {5 * kSecond, 5},
  };
  for (const auto& e : evs) {
    q.schedule_at(e.at, [&order, id = e.id] { order.push_back(id); });
  }
  while (q.run_next()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8}));
  EXPECT_EQ(q.now(), 18 * kSecond);
}

// Events scheduled from inside a running event can target times past the
// wheel's current horizon; they must land in overflow and still fire in
// time order once the wheel re-anchors onto them.
TEST(EventQueueTest, MidRunSchedulingPastTheHorizonSweepsIn) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(kSecond, [&] {
    order.push_back(1);
    q.schedule_at(q.now() + 10 * kSecond, [&] { order.push_back(3); });
    q.schedule_at(q.now() + 5 * kSecond, [&] { order.push_back(2); });
  });
  while (q.run_next()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 11 * kSecond);
}

// Recycling one slot through many schedule/cancel cycles bumps its
// generation each time; every historical token must stay stale — only the
// newest generation may cancel.
TEST(EventQueueTest, RecycledSlotGenerationsInvalidateEveryOldToken) {
  EventQueue q;
  std::vector<EventToken> history;
  for (int i = 0; i < 1000; ++i) {
    auto t = q.schedule_at(5, [] {});
    history.push_back(t);
    EXPECT_TRUE(q.cancel(t));
  }
  auto live = q.schedule_at(5, [] {});
  for (const auto& t : history) EXPECT_FALSE(q.cancel(t));
  EXPECT_TRUE(q.cancel(live));
  EXPECT_TRUE(q.empty());
}

// Tokens minted through from_bits with a mismatched generation (the
// wraparound shape: same slot, different gen) or an out-of-range slot are
// rejected without touching the live event.
TEST(EventQueueTest, ForgedTokensCannotTouchLiveEvents) {
  EventQueue q;
  bool ran = false;
  auto live = q.schedule_at(3, [&] { ran = true; });
  const auto forged_gen = EventToken::from_bits(live.bits() + 1);
  const auto forged_slot =
      EventToken::from_bits(live.bits() + (std::uint64_t{1} << 32));
  const auto huge_slot = EventToken::from_bits(~std::uint64_t{0});
  EXPECT_FALSE(q.cancel(forged_gen));
  EXPECT_FALSE(q.cancel(forged_slot));
  EXPECT_FALSE(q.cancel(huge_slot));
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_TRUE(q.run_next());
  EXPECT_TRUE(ran);
}

// ---------------------------------------------------------------------------
// Trickle
// ---------------------------------------------------------------------------

TEST(TrickleTest, FirePointInSecondHalfOfInterval) {
  Rng rng(1);
  Trickle t({1 * kSecond, 60 * kSecond, 2}, &rng);
  for (int i = 0; i < 50; ++i) {
    t.reset(0);
    EXPECT_GE(t.fire_time(), kSecond / 2);
    EXPECT_LT(t.fire_time(), kSecond);
  }
}

TEST(TrickleTest, IntervalDoublesUpToCap) {
  Rng rng(2);
  Trickle t({1 * kSecond, 8 * kSecond, 2}, &rng);
  t.reset(0);
  EXPECT_EQ(t.tau(), 1 * kSecond);
  SimTime now = 0;
  for (int i = 0; i < 6; ++i) {
    now = t.interval_end();
    t.next_interval(now);
  }
  EXPECT_EQ(t.tau(), 8 * kSecond);
}

TEST(TrickleTest, SuppressionAfterRedundantHears) {
  Rng rng(3);
  Trickle t({1 * kSecond, 60 * kSecond, 2}, &rng);
  t.reset(0);
  EXPECT_TRUE(t.should_broadcast());
  t.heard_consistent();
  EXPECT_TRUE(t.should_broadcast());
  t.heard_consistent();
  EXPECT_FALSE(t.should_broadcast());
  t.next_interval(t.interval_end());
  EXPECT_TRUE(t.should_broadcast());  // counter resets each interval
}

TEST(TrickleTest, ResetReturnsToTauLow) {
  Rng rng(4);
  Trickle t({1 * kSecond, 60 * kSecond, 2}, &rng);
  t.reset(0);
  t.next_interval(t.interval_end());
  t.next_interval(t.interval_end());
  EXPECT_GT(t.tau(), 1 * kSecond);
  t.reset(t.interval_end());
  EXPECT_EQ(t.tau(), 1 * kSecond);
}

// ---------------------------------------------------------------------------
// Topology
// ---------------------------------------------------------------------------

TEST(TopologyTest, StarIsFullyConnected) {
  const auto topo = Topology::star(10);
  EXPECT_EQ(topo.size(), 11u);
  for (NodeId a = 0; a < 11; ++a) {
    EXPECT_EQ(topo.neighbors(a).size(), 10u);
    for (NodeId b = 0; b < 11; ++b) {
      if (a != b) {
        EXPECT_GT(topo.prr(a, b), 0.9);
      }
    }
  }
}

TEST(TopologyTest, GridShapeAndSpacing) {
  const auto topo = Topology::grid(3, 4, 10.0);
  EXPECT_EQ(topo.size(), 12u);
  EXPECT_DOUBLE_EQ(topo.distance(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(topo.distance(0, 4), 10.0);  // next row
  EXPECT_DOUBLE_EQ(topo.distance(0, 5), std::sqrt(200.0));
}

TEST(TopologyTest, PrrFallsWithDistance) {
  LinkModel link;
  EXPECT_DOUBLE_EQ(link.prr(0), link.max_prr);
  EXPECT_DOUBLE_EQ(link.prr(link.connected_radius), link.max_prr);
  const double mid =
      link.prr((link.connected_radius + link.outer_radius) / 2);
  EXPECT_GT(mid, 0.0);
  EXPECT_LT(mid, link.max_prr);
  EXPECT_DOUBLE_EQ(link.prr(link.outer_radius), 0.0);
  EXPECT_DOUBLE_EQ(link.prr(link.outer_radius + 100), 0.0);
}

TEST(TopologyTest, TightGridDenserThanMedium) {
  const auto tight = Topology::grid(15, 15, 10.0);
  const auto medium = Topology::grid(15, 15, 20.0);
  EXPECT_GT(tight.mean_degree(), medium.mean_degree());
  EXPECT_GT(medium.mean_degree(), 2.0);  // still connected
}

// ---------------------------------------------------------------------------
// Channel models
// ---------------------------------------------------------------------------

TEST(ChannelTest, UniformLossMatchesP) {
  auto model = make_uniform_loss(0.3);
  Rng rng(5);
  int delivered = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i)
    delivered += model->delivered(0, 1, 0, rng);
  EXPECT_NEAR(static_cast<double>(delivered) / trials, 0.7, 0.01);
}

TEST(ChannelTest, PerNodeLossIsPerReceiver) {
  auto model = make_per_node_loss({0.0, 0.9});
  Rng rng(6);
  int d0 = 0, d1 = 0;
  for (int i = 0; i < 20000; ++i) {
    d0 += model->delivered(1, 0, 0, rng);
    d1 += model->delivered(0, 1, 0, rng);
  }
  EXPECT_EQ(d0, 20000);
  EXPECT_NEAR(d1 / 20000.0, 0.1, 0.02);
}

TEST(ChannelTest, PerNodeLossRejectsOutOfRangeProbability) {
  EXPECT_THROW(make_per_node_loss({0.5, 1.2}), std::logic_error);
  EXPECT_THROW(make_per_node_loss({-0.1}), std::logic_error);
}

TEST(ChannelTest, PerNodeLossShortVectorFailsLoudly) {
  // A reception at a node past the end of the vector must throw with a
  // clear message, not index out of bounds.
  auto model = make_per_node_loss({0.0, 0.1});
  Rng rng(3);
  EXPECT_THROW(model->delivered(0, 2, 0, rng), std::logic_error);
  // The node-count overload rejects the short vector up front.
  EXPECT_THROW(make_per_node_loss({0.0, 0.1}, 4), std::logic_error);
  EXPECT_NO_THROW(make_per_node_loss({0.0, 0.1, 0.2}, 3));
}

TEST(ChannelTest, GilbertElliottValidatesParams) {
  GilbertElliottParams zero_dwell;
  zero_dwell.mean_good_dwell = 0;
  EXPECT_THROW(zero_dwell.validate(), std::logic_error);
  EXPECT_THROW(make_gilbert_elliott(zero_dwell, 2, 1), std::logic_error);

  GilbertElliottParams negative_dwell;
  negative_dwell.mean_bad_dwell = -1;
  EXPECT_THROW(negative_dwell.validate(), std::logic_error);

  GilbertElliottParams bad_prob;
  bad_prob.p_bad = 1.5;
  EXPECT_THROW(bad_prob.validate(), std::logic_error);

  EXPECT_NO_THROW(GilbertElliottParams{}.validate());
}

TEST(ChannelTest, GilbertElliottLossBetweenGoodAndBad) {
  GilbertElliottParams params;
  params.p_good = 0.05;
  params.p_bad = 0.6;
  auto model = make_gilbert_elliott(params, 2, 7);
  Rng rng(8);
  int delivered = 0;
  const int trials = 200000;
  SimTime t = 0;
  for (int i = 0; i < trials; ++i) {
    t += 5 * kMillisecond;
    delivered += model->delivered(0, 1, t, rng);
  }
  const double loss = 1.0 - static_cast<double>(delivered) / trials;
  EXPECT_GT(loss, params.p_good);
  EXPECT_LT(loss, params.p_bad);
}

TEST(ChannelTest, GilbertElliottIsBursty) {
  // Consecutive drops should correlate more than i.i.d. loss of equal mean.
  GilbertElliottParams params;
  params.p_good = 0.02;
  params.p_bad = 0.9;
  auto model = make_gilbert_elliott(params, 1, 9);
  Rng rng(10);
  std::vector<bool> dropped;
  SimTime t = 0;
  for (int i = 0; i < 100000; ++i) {
    t += 2 * kMillisecond;
    dropped.push_back(!model->delivered(0, 0, t, rng));
  }
  double p = 0, pp = 0;
  int pairs = 0;
  for (std::size_t i = 0; i + 1 < dropped.size(); ++i) {
    p += dropped[i];
    if (dropped[i]) {
      pp += dropped[i + 1];
      ++pairs;
    }
  }
  p /= static_cast<double>(dropped.size());
  const double cond = pp / std::max(1, pairs);
  EXPECT_GT(cond, p * 1.5);  // burstiness: P(drop | drop) >> P(drop)
}

// ---------------------------------------------------------------------------
// Simulator radio
// ---------------------------------------------------------------------------

/// Test node: broadcasts scripted frames, records receptions.
class ProbeNode final : public Node {
 public:
  explicit ProbeNode(Env& env) : Node(env) {}

  void on_start() override {}
  void on_receive(ByteView frame) override {
    received.emplace_back(frame.begin(), frame.end());
    rx_times.push_back(env().now());
  }

  void send_at(SimTime at, Bytes frame) {
    env().schedule(at - env().now(), [this, f = std::move(frame)]() mutable {
      env().broadcast(PacketClass::kData, std::move(f));
    });
  }

  Env& environment() { return env(); }

  std::vector<Bytes> received;
  std::vector<SimTime> rx_times;
};

TEST(SimulatorTest, BroadcastReachesAllNeighbors) {
  Simulator sim(Topology::star(3), make_perfect_channel(), RadioParams{}, 1);
  auto& a = sim.add_node<ProbeNode>();
  auto& b = sim.add_node<ProbeNode>();
  auto& c = sim.add_node<ProbeNode>();
  auto& d = sim.add_node<ProbeNode>();
  sim.run(0);  // deliver on_start
  a.send_at(sim.now() + 1, Bytes{42});
  sim.run(1 * kSecond);
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_EQ(c.received.size(), 1u);
  EXPECT_EQ(d.received.size(), 1u);
  EXPECT_EQ(b.received[0], Bytes{42});
  EXPECT_EQ(sim.metrics().node(0).sent[0], 1u);
  EXPECT_EQ(sim.metrics().node(1).received[0], 1u);
}

TEST(SimulatorTest, AirtimeDelaysDelivery) {
  RadioParams radio;
  Simulator sim(Topology::star(1), make_perfect_channel(), radio, 2);
  auto& a = sim.add_node<ProbeNode>();
  auto& b = sim.add_node<ProbeNode>();
  sim.run(0);
  a.send_at(sim.now() + 1, Bytes(85, 0));  // 100 bytes with PHY overhead
  sim.run(1 * kSecond);
  ASSERT_EQ(b.received.size(), 1u);
  // 100 bytes at 250 kbps = 3.2 ms of airtime (plus backoff).
  EXPECT_GE(b.rx_times[0], 3200 * kMicrosecond);
  EXPECT_LT(b.rx_times[0], 20 * kMillisecond);
}

TEST(SimulatorTest, UniformLossDropsFraction) {
  Simulator sim(Topology::star(1), make_uniform_loss(0.5), RadioParams{}, 3);
  auto& a = sim.add_node<ProbeNode>();
  auto& b = sim.add_node<ProbeNode>();
  sim.run(0);
  const int sends = 400;
  for (int i = 0; i < sends; ++i) {
    a.send_at(sim.now() + 1 + i * 10 * kMillisecond, Bytes{1});
  }
  sim.run(100 * kSecond);
  EXPECT_GT(b.received.size(), 120u);
  EXPECT_LT(b.received.size(), 280u);
}

TEST(SimulatorTest, OutOfRangeNodesDoNotHearEachOther) {
  // Two nodes 1000 apart with default link model (outer radius 45).
  auto topo = Topology::grid(1, 2, 1000.0);
  Simulator sim(std::move(topo), make_perfect_channel(), RadioParams{}, 4);
  auto& a = sim.add_node<ProbeNode>();
  auto& b = sim.add_node<ProbeNode>();
  sim.run(0);
  a.send_at(sim.now() + 1, Bytes{1});
  sim.run(1 * kSecond);
  EXPECT_TRUE(b.received.empty());
}

LinkModel perfect_link() {
  LinkModel link;
  link.max_prr = 1.0;  // no stochastic PRR loss in deterministic tests
  return link;
}

TEST(SimulatorTest, CarrierSenseDefersSecondSender) {
  // b wants to send while a's long frame is in the air: CSMA must defer b,
  // and both frames reach c intact.
  Simulator sim(Topology::star(2, perfect_link()), make_perfect_channel(),
                RadioParams{}, 5);
  auto& a = sim.add_node<ProbeNode>();
  auto& b = sim.add_node<ProbeNode>();
  auto& c = sim.add_node<ProbeNode>();
  sim.run(0);
  a.send_at(sim.now() + 1, Bytes(500, 1));  // ~16 ms of airtime
  b.send_at(sim.now() + 8 * kMillisecond, Bytes{2});
  sim.run(1 * kSecond);
  ASSERT_EQ(c.received.size(), 2u);
  EXPECT_EQ(c.received[0].size(), 500u);
  EXPECT_EQ(c.received[1], Bytes{2});
  EXPECT_EQ(sim.collisions(), 0u);
}

TEST(SimulatorTest, HiddenTerminalCollisionDestroysBothFrames) {
  // Line topology a — c — b where a and b cannot hear each other: carrier
  // sensing cannot prevent their frames overlapping at c, so both are lost
  // and the collision counter records it.
  LinkModel link;
  link.max_prr = 1.0;
  link.connected_radius = 45.0;
  link.outer_radius = 46.0;  // sharp cutoff: 40 connected, 80 silent
  RadioParams radio;
  radio.backoff_initial = 0;
  radio.backoff_window = 1;  // ~deterministic start
  Simulator sim(Topology::grid(1, 3, 40.0, link), make_perfect_channel(),
                radio, 5);
  auto& a = sim.add_node<ProbeNode>();
  auto& c = sim.add_node<ProbeNode>();  // middle node (id 1)
  auto& b = sim.add_node<ProbeNode>();
  sim.run(0);
  a.send_at(sim.now() + 1, Bytes(100, 1));
  b.send_at(sim.now() + 1, Bytes(100, 2));
  sim.run(1 * kSecond);
  EXPECT_TRUE(c.received.empty());
  EXPECT_GT(sim.collisions(), 0u);
}

TEST(SimulatorTest, CompletionTimeRecordedOnce) {
  Simulator sim(Topology::star(1), make_perfect_channel(), RadioParams{}, 6);
  auto& a = sim.add_node<ProbeNode>();
  sim.add_node<ProbeNode>();
  sim.run(0);
  a.environment().notify_complete();
  const SimTime first = sim.metrics().node(0).completion_time;
  a.environment().notify_complete();
  EXPECT_EQ(sim.metrics().node(0).completion_time, first);
  EXPECT_EQ(sim.metrics().completed_count(1), 1u);
}

TEST(SimulatorTest, RunStopsWhenPredicateHolds) {
  Simulator sim(Topology::star(1), make_perfect_channel(), RadioParams{}, 7);
  auto& a = sim.add_node<ProbeNode>();
  auto& b = sim.add_node<ProbeNode>();
  sim.run(0);
  for (int i = 0; i < 100; ++i) a.send_at(sim.now() + 1 + i * kMillisecond, Bytes{1});
  const bool stopped = sim.run(
      10 * kSecond, [&] { return b.received.size() >= 3; });
  EXPECT_TRUE(stopped);
  EXPECT_LT(b.received.size(), 100u);
}

TEST(MetricsTest, AggregatesAcrossNodesAndClasses) {
  Metrics m(3);
  m.record_send(0, PacketClass::kData, 100);
  m.record_send(1, PacketClass::kData, 50);
  m.record_send(1, PacketClass::kSnack, 20);
  EXPECT_EQ(m.total_sent(PacketClass::kData), 2u);
  EXPECT_EQ(m.total_sent(PacketClass::kSnack), 1u);
  EXPECT_EQ(m.total_sent_bytes(), 170u);
  EXPECT_EQ(m.total_sent_bytes(PacketClass::kData), 150u);
}

}  // namespace
}  // namespace lrs::sim

// Appended: radio-energy accounting (tx/rx airtime).
namespace lrs::sim {
namespace {

class EnergyProbe final : public Node {
 public:
  explicit EnergyProbe(Env& env) : Node(env) {}
  void on_start() override {}
  void on_receive(ByteView) override {}
  void send(Bytes frame) {
    env().schedule(1, [this, f = std::move(frame)]() mutable {
      env().broadcast(PacketClass::kData, std::move(f));
    });
  }
};

TEST(EnergyAccounting, AirtimeChargedToSenderAndReceivers) {
  RadioParams radio;
  Simulator sim(Topology::star(2, LinkModel::perfect()),
                make_perfect_channel(), radio, 1);
  auto& a = sim.add_node<EnergyProbe>();
  sim.add_node<EnergyProbe>();
  sim.add_node<EnergyProbe>();
  sim.run(0);
  a.send(Bytes(100, 1));
  sim.run(1 * kSecond);

  const auto expected =
      static_cast<std::uint64_t>(radio.airtime(100));
  EXPECT_EQ(sim.metrics().node(0).tx_airtime_us, expected);
  EXPECT_EQ(sim.metrics().node(0).rx_airtime_us, 0u);
  EXPECT_EQ(sim.metrics().node(1).rx_airtime_us, expected);
  EXPECT_EQ(sim.metrics().node(2).rx_airtime_us, expected);
}

TEST(EnergyAccounting, LossyReceptionStillCostsEnergy) {
  // The radio pays for the whole frame even when the app-layer loss model
  // discards it afterwards.
  RadioParams radio;
  Simulator sim(Topology::star(1, LinkModel::perfect()),
                make_uniform_loss(1.0), radio, 2);
  auto& a = sim.add_node<EnergyProbe>();
  sim.add_node<EnergyProbe>();
  sim.run(0);
  a.send(Bytes(50, 1));
  sim.run(1 * kSecond);
  EXPECT_EQ(sim.metrics().node(1).received[0], 0u);  // dropped
  EXPECT_GT(sim.metrics().node(1).rx_airtime_us, 0u);  // but paid for
}

}  // namespace
}  // namespace lrs::sim
