// TX schedulers: the union scheduler (Deluge/Seluge) and LR-Seluge's greedy
// round-robin tracking table, including a worked example mirroring the
// paper's Table I walk-through (first pick = most popular with lowest
// index; next picks sweep cyclically right; entries leave as soon as their
// distance reaches zero, before their full request is served).
#include <gtest/gtest.h>

#include "core/greedy_scheduler.h"
#include "proto/scheduler.h"
#include "util/rng.h"

namespace lrs {
namespace {

using core::GreedyRoundRobinScheduler;
using proto::make_union_scheduler;

BitVec bits(std::size_t n, std::initializer_list<std::size_t> set) {
  BitVec v(n);
  for (auto i : set) v.set(i);
  return v;
}

// ---------------------------------------------------------------------------
// UnionScheduler
// ---------------------------------------------------------------------------

TEST(UnionScheduler, ServesUnionInIndexOrder) {
  auto s = make_union_scheduler(6);
  s->on_snack(1, bits(6, {0, 3}), 2);
  s->on_snack(2, bits(6, {3, 5}), 2);
  EXPECT_EQ(s->next_packet().value(), 0u);
  EXPECT_EQ(s->next_packet().value(), 3u);
  EXPECT_EQ(s->next_packet().value(), 5u);
  EXPECT_FALSE(s->next_packet().has_value());
  EXPECT_TRUE(s->idle());
}

TEST(UnionScheduler, SendsEveryRequestedPacketRegardlessOfDistance) {
  // The union scheduler must ignore `needed`: ARQ receivers need exactly
  // the packets they asked for.
  auto s = make_union_scheduler(4);
  s->on_snack(1, bits(4, {0, 1, 2, 3}), 1);
  std::size_t count = 0;
  while (s->next_packet()) ++count;
  EXPECT_EQ(count, 4u);
}

TEST(UnionScheduler, LaterSnackMergesMidService) {
  auto s = make_union_scheduler(4);
  s->on_snack(1, bits(4, {1}), 1);
  EXPECT_EQ(s->next_packet().value(), 1u);
  s->on_snack(2, bits(4, {0, 2}), 2);
  EXPECT_EQ(s->next_packet().value(), 2u);  // cyclic from last+1
  EXPECT_EQ(s->next_packet().value(), 0u);
  EXPECT_TRUE(s->idle());
}

TEST(UnionScheduler, OverheardDataClearsPending) {
  auto s = make_union_scheduler(4);
  s->on_snack(1, bits(4, {1, 2}), 2);
  s->on_overheard_data(2);
  EXPECT_EQ(s->next_packet().value(), 1u);
  EXPECT_FALSE(s->next_packet().has_value());
}

// ---------------------------------------------------------------------------
// GreedyRoundRobinScheduler — paper Table I style walk-through
// ---------------------------------------------------------------------------

TEST(GreedyScheduler, TableIWalkThrough) {
  // n = 4, k' = 3. Distances d = q + k' - n = q - 1.
  //   v1 wants {P2, P4}        -> d = 1
  //   v2 wants {P1, P2, P4}    -> d = 2
  //   v3 wants {P1, P2}        -> d = 1
  // Popularity: P1:2  P2:3  P3:0  P4:2.
  GreedyRoundRobinScheduler s(4);
  s.on_snack(1, bits(4, {1, 3}), 1);
  s.on_snack(2, bits(4, {0, 1, 3}), 2);
  s.on_snack(3, bits(4, {0, 1}), 1);
  EXPECT_EQ(s.popularity(1), 3u);

  // Highest popularity: P2 (0-based index 1).
  EXPECT_EQ(s.next_packet().value(), 1u);
  // v1 and v3 reach distance 0 and leave although P4/P1 were never sent.
  EXPECT_EQ(s.tracked(), 1u);
  EXPECT_EQ(s.distance(2), 1u);

  // First packet to the right of P2 with max popularity: P4.
  EXPECT_EQ(s.next_packet().value(), 3u);
  EXPECT_TRUE(s.idle());
  EXPECT_FALSE(s.next_packet().has_value());

  // Total: 2 transmissions versus 3 for the union {P1, P2, P4}.
}

TEST(GreedyScheduler, ThreeTransmissionSequenceSweepsRight) {
  // v1 wants everything (d = 3), v2 wants {P2, P3} (d = 1).
  GreedyRoundRobinScheduler s(4);
  s.on_snack(1, bits(4, {0, 1, 2, 3}), 3);
  s.on_snack(2, bits(4, {1, 2}), 1);
  EXPECT_EQ(s.next_packet().value(), 1u);  // P2: pop 2, lowest index
  EXPECT_EQ(s.next_packet().value(), 2u);  // sweep right
  EXPECT_EQ(s.next_packet().value(), 3u);
  EXPECT_TRUE(s.idle());                   // v1's d hit 0; P1 never sent
}

TEST(GreedyScheduler, FirstPickPrefersLowestIndexOnTies) {
  GreedyRoundRobinScheduler s(5);
  s.on_snack(1, bits(5, {2, 4}), 2);
  EXPECT_EQ(s.next_packet().value(), 2u);
}

TEST(GreedyScheduler, WrapsAroundCyclically) {
  GreedyRoundRobinScheduler s(4);
  s.on_snack(1, bits(4, {0, 3}), 2);
  EXPECT_EQ(s.next_packet().value(), 0u);
  EXPECT_EQ(s.next_packet().value(), 3u);
}

TEST(GreedyScheduler, StopsExactlyAtDistance) {
  // One receiver missing everything of an n=6, k'=4 page: q=6, d=4.
  GreedyRoundRobinScheduler s(6);
  s.on_snack(1, bits(6, {0, 1, 2, 3, 4, 5}), 4);
  std::size_t sent = 0;
  while (s.next_packet()) ++sent;
  EXPECT_EQ(sent, 4u);  // not 6: the receiver can decode after k' = 4
}

TEST(GreedyScheduler, FreshSnackUpdatesExistingEntry) {
  GreedyRoundRobinScheduler s(4);
  s.on_snack(1, bits(4, {0, 1, 2, 3}), 3);
  EXPECT_EQ(s.next_packet().value(), 0u);
  // The receiver lost packet 0 and re-requests: entry is replaced.
  s.on_snack(1, bits(4, {0, 1, 2, 3}), 3);
  EXPECT_EQ(s.distance(1), 3u);
  std::size_t sent = 0;
  while (s.next_packet()) ++sent;
  EXPECT_EQ(sent, 3u);
}

TEST(GreedyScheduler, ZeroNeededOrEmptyRequestClearsEntry) {
  GreedyRoundRobinScheduler s(4);
  s.on_snack(1, bits(4, {0}), 1);
  s.on_snack(1, bits(4, {}), 1);
  EXPECT_TRUE(s.idle());
  s.on_snack(2, bits(4, {1}), 0);
  EXPECT_TRUE(s.idle());
}

TEST(GreedyScheduler, OverheardDataCountsTowardDistances) {
  GreedyRoundRobinScheduler s(4);
  s.on_snack(1, bits(4, {0, 1}), 1);
  s.on_overheard_data(1);  // another server sent P2
  EXPECT_TRUE(s.idle());   // v1's distance hit zero
}

TEST(GreedyScheduler, PopularityDrivesOrderAcrossManyNodes) {
  GreedyRoundRobinScheduler s(8);
  for (NodeId v = 0; v < 10; ++v) {
    // Everyone wants packet 6; only some want others.
    BitVec b(8);
    b.set(6);
    b.set(v % 8);
    s.on_snack(v, b, 1);
  }
  EXPECT_EQ(s.next_packet().value(), 6u);
  EXPECT_TRUE(s.idle());  // one packet satisfied every distance-1 neighbor
}

TEST(GreedyScheduler, BacklogReflectsWorstDistance) {
  GreedyRoundRobinScheduler s(6);
  EXPECT_EQ(s.backlog(), 0u);
  s.on_snack(1, bits(6, {0, 1, 2, 3}), 2);
  s.on_snack(2, bits(6, {0, 1, 2, 3, 4}), 3);
  EXPECT_EQ(s.backlog(), 3u);
}

TEST(GreedyScheduler, NeverExceedsUnionScheduler) {
  // Property: for random request patterns, greedy transmissions <= union.
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 8 + rng.uniform(8);
    const std::size_t kprime = n - 2 - rng.uniform(3);
    GreedyRoundRobinScheduler greedy(n);
    auto union_sched = make_union_scheduler(n);
    const std::size_t receivers = 1 + rng.uniform(6);
    for (NodeId v = 0; v < receivers; ++v) {
      BitVec b(n);
      for (std::size_t j = 0; j < n; ++j) b.set(j, rng.bernoulli(0.5));
      if (b.none()) b.set(0);
      const std::size_t q = b.count();
      const std::size_t d = q + kprime > n ? q + kprime - n : 1;
      greedy.on_snack(v, b, d);
      union_sched->on_snack(v, b, d);
    }
    std::size_t greedy_sent = 0, union_sent = 0;
    while (greedy.next_packet()) ++greedy_sent;
    while (union_sched->next_packet()) ++union_sent;
    EXPECT_LE(greedy_sent, union_sent) << "trial " << trial;
  }
}

}  // namespace
}  // namespace lrs
