// Allocation-count guards for the simulator hot path (ISSUE 6 satellite).
//
// The calendar queue's contract is that schedule / cancel / pop are
// allocation-free in steady state: events live in a recycled slab,
// closures are stored inline (EventFn), and bucket heaps reuse their
// capacity once warmed. This file enforces that contract with a global
// operator-new hook:
//
//  - a synthetic self-rescheduling event loop must perform ZERO heap
//    allocations once warmed up, and
//  - a full star-scenario experiment must stay under a per-event
//    allocation budget, so protocol-layer regressions (per-packet copies,
//    per-MAC key material, per-verify preimage buffers) show up as a test
//    failure rather than a silent throughput loss.
//
// The hook counts every allocation in the process, so measurements are
// deltas around single-threaded regions only.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "core/experiment.h"
#include "sim/event_queue.h"
#include "sim/stats/stats.h"
#include "sim/time.h"

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};

std::uint64_t alloc_count() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align, size == 0 ? align : size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

// Replaceable global allocation functions ([new.delete]); the nothrow and
// placement forms funnel through these.
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace lrs {
namespace {

// A self-rescheduling closure: fires, counts, and schedules its own copy
// `period` later. Small enough for EventFn's inline storage by
// construction (static_assert in EventFn enforces it).
struct PeriodicLoop {
  sim::EventQueue* q;
  std::uint64_t* fired;
  sim::SimTime period;

  void operator()() const {
    ++*fired;
    q->schedule_at(q->now() + period, *this);
  }
};

// Like PeriodicLoop, but additionally exercises the cancel path every
// firing: schedules a victim event and immediately cancels it, so slot
// acquire/release and stale-ref discard run inside the measured region.
struct CancellingLoop {
  sim::EventQueue* q;
  std::uint64_t* fired;
  sim::SimTime period;

  void operator()() const {
    ++*fired;
    std::uint64_t* count = fired;
    sim::EventToken victim = q->schedule_at(
        q->now() + 10 * sim::kMillisecond, [count] { ++*count; });
    ASSERT_TRUE(q->cancel(victim));
    q->schedule_at(q->now() + period, *this);
  }
};

TEST(AllocGuard, SteadyStateEventLoopAllocatesNothing) {
  sim::EventQueue q;
  std::uint64_t fired = 0;

  // Periods sweep the wheel but divide the 2^10 us bucket width (or the
  // whole 2^22 us span), so the bucket-occupancy pattern is periodic with
  // the wheel wrap and every vector's high-water mark is reached during
  // warm-up. (Unaligned periods — say 0.7 ms — drift phase against the
  // buckets for the ~hour-long lcm of period and span, sporadically
  // setting new per-bucket high-water marks; that growth is amortized
  // zero but not zero in any finite window.) The half-width loop touches
  // every bucket twice per wrap; the span-length loop always lands past
  // the horizon, so the overflow heap and the re-anchor sweep both run.
  constexpr sim::SimTime kWidth = 1 << 10;
  constexpr sim::SimTime kSpan = kWidth << 12;
  q.schedule_at(0, PeriodicLoop{&q, &fired, kWidth / 2});
  q.schedule_at(0, PeriodicLoop{&q, &fired, kWidth});
  q.schedule_at(0, PeriodicLoop{&q, &fired, kSpan});
  q.schedule_at(0, CancellingLoop{&q, &fired, kWidth});

  // Warm-up: several full wheel wraps (~4 events/ms means 200k events
  // cover ~50 s of simulated time against the ~4.2 s span), so every
  // vector reaches its steady-state capacity.
  for (int i = 0; i < 200000; ++i) ASSERT_TRUE(q.run_next());

  const std::uint64_t fired_before = fired;
  const std::uint64_t allocs_before = alloc_count();
  for (int i = 0; i < 200000; ++i) ASSERT_TRUE(q.run_next());
  const std::uint64_t allocs = alloc_count() - allocs_before;

  EXPECT_EQ(fired - fired_before, 200000u);
  EXPECT_EQ(allocs, 0u) << "steady-state schedule/cancel/pop must not "
                           "touch the heap";
}

TEST(AllocGuard, OverflowBurstsReuseHeapCapacityOnceWarmed) {
  // A burst of far-future events lands entirely in the overflow heap
  // (every target is past the ~4.2 s wheel horizon), then the drain
  // re-anchors the wheel several times to sweep them in. The first burst
  // may grow the heap's backing store and the per-bucket vectors; a
  // second, identical burst-and-drain cycle must find all of that
  // capacity recycled and allocate nothing.
  constexpr sim::SimTime kWidth = 1 << 10;
  constexpr sim::SimTime kSpan = kWidth << 12;
  constexpr int kBurst = 4096;

  sim::EventQueue q;
  std::uint64_t fired = 0;
  const auto burst_and_drain = [&] {
    // Span-align the burst so both cycles hit the same bucket phase;
    // otherwise the second cycle can set a new per-bucket high-water
    // mark and legitimately allocate once.
    const sim::SimTime base = (q.now() / kSpan + 2) * kSpan;
    for (int i = 0; i < kBurst; ++i) {
      // Hostile order: stride the targets across three span windows so
      // consecutive pushes alternate between heap regions.
      const sim::SimTime at = base + (i % 3) * kSpan + i * kWidth / 4;
      q.schedule_at(at, [&fired] { ++fired; });
    }
    while (q.run_next()) {
    }
  };

  burst_and_drain();  // warm-up: establishes high-water capacity
  const std::uint64_t fired_before = fired;
  const std::uint64_t allocs_before = alloc_count();
  burst_and_drain();
  const std::uint64_t allocs = alloc_count() - allocs_before;

  EXPECT_EQ(fired - fired_before, static_cast<std::uint64_t>(kBurst));
  EXPECT_EQ(allocs, 0u) << "a warmed overflow heap must absorb repeat "
                           "bursts without touching the allocator";
}

TEST(AllocGuard, StarScenarioStaysUnderPerEventBudget) {
  core::ExperimentConfig cfg;
  cfg.scheme = core::Scheme::kLrSeluge;
  cfg.params.payload_size = 32;
  cfg.params.k = 8;
  cfg.params.n = 12;
  cfg.params.k0 = 4;
  cfg.params.n0 = 8;
  cfg.params.puzzle_strength = 4;
  cfg.image_size = 4096;
  cfg.receivers = 20;
  cfg.seed = 1;
  cfg.timing.trickle.tau_low = 250 * sim::kMillisecond;
  cfg.timing.trickle.tau_high = 8 * sim::kSecond;

  // One-shot setup work (topology, hash tree, key schedules, node
  // construction) swamps a short run, so measure the MARGINAL rate: run
  // the same scenario at two image sizes and divide the allocation delta
  // by the event delta. Setup costs cancel; what remains is the
  // per-event steady-state rate.
  const std::uint64_t allocs0 = alloc_count();
  const core::ExperimentResult small = core::run_experiment(cfg);
  const std::uint64_t allocs_small = alloc_count() - allocs0;

  cfg.image_size = 16384;
  const std::uint64_t allocs1 = alloc_count();
  const core::ExperimentResult large = core::run_experiment(cfg);
  const std::uint64_t allocs_large = alloc_count() - allocs1;

  ASSERT_TRUE(small.all_complete);
  ASSERT_TRUE(large.all_complete);
  ASSERT_GT(large.events_executed, small.events_executed);
  const double per_event =
      static_cast<double>(allocs_large - allocs_small) /
      static_cast<double>(large.events_executed - small.events_executed);

  // Measured ~19 marginal allocations/event for this scenario after the
  // hot-path rewrite. The rate is star-specific: a one-hop star delivers
  // every transmission to all 20 receivers in a single end-of-TX event,
  // and each receiver's accepted packet is protocol-required storage (its
  // own Bytes copy, decoder share, serialization buffer) — the lossy
  // multi-hop grids run ~6/event. A 25/event ceiling gives headroom for
  // protocol growth while still catching a return of per-event queue,
  // per-MAC key-prep, or per-verify preimage allocations, each of which
  // adds several allocations to every one of those 20 deliveries.
  EXPECT_LT(per_event, 25.0)
      << "marginal allocations/event=" << per_event
      << " (allocs " << allocs_small << " -> " << allocs_large
      << ", events " << small.events_executed << " -> "
      << large.events_executed << ")";
}

TEST(AllocGuard, EnabledMetricsRecordingAllocatesNothing) {
  // The metrics hot path (sim/stats): registry lookup may allocate ONCE
  // per name; recording through the returned references must never touch
  // the heap, enabled or not.
  auto& reg = lrs::stats::Registry::instance();
  lrs::stats::Counter& c = reg.counter("allocguard.counter");
  lrs::stats::Histogram& h = reg.histogram("allocguard.hist");
  lrs::stats::Timer& t = reg.timer("allocguard.timer");
  lrs::stats::set_enabled(true);
  c.add();  // warm-up: first records touch every atomic once
  h.record(1);
  { lrs::stats::TimerScope scope(t); }

  const std::uint64_t allocs_before = alloc_count();
  for (int i = 0; i < 100000; ++i) {
    c.add();
    h.record(static_cast<std::uint64_t>(i) * 2654435761u);
    lrs::stats::TimerScope scope(t);
  }
  const std::uint64_t allocs = alloc_count() - allocs_before;
  lrs::stats::set_enabled(false);

  EXPECT_EQ(c.value(), 100001u);
  EXPECT_EQ(allocs, 0u) << "enabled metrics recording must not allocate";
}

TEST(AllocGuard, MetricsEnabledEventLoopAllocatesNothing) {
  // The SteadyStateEventLoop contract must survive metrics collection: the
  // queue's counter/histogram instrumentation runs on every schedule /
  // cancel / pop when the registry is enabled, and must stay heap-free.
  lrs::stats::set_enabled(true);
  sim::EventQueue q;
  std::uint64_t fired = 0;
  constexpr sim::SimTime kWidth = 1 << 10;
  constexpr sim::SimTime kSpan = kWidth << 12;
  q.schedule_at(0, PeriodicLoop{&q, &fired, kWidth / 2});
  q.schedule_at(0, PeriodicLoop{&q, &fired, kWidth});
  q.schedule_at(0, PeriodicLoop{&q, &fired, kSpan});
  q.schedule_at(0, CancellingLoop{&q, &fired, kWidth});

  for (int i = 0; i < 200000; ++i) ASSERT_TRUE(q.run_next());

  const std::uint64_t fired_before = fired;
  const std::uint64_t allocs_before = alloc_count();
  for (int i = 0; i < 200000; ++i) ASSERT_TRUE(q.run_next());
  const std::uint64_t allocs = alloc_count() - allocs_before;
  lrs::stats::set_enabled(false);

  EXPECT_EQ(fired - fired_before, 200000u);
  EXPECT_EQ(allocs, 0u) << "metrics-enabled schedule/cancel/pop must not "
                           "touch the heap";
}

}  // namespace
}  // namespace lrs
