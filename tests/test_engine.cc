// DissemNode state-machine tests against a scripted fake environment —
// no simulator, fully deterministic: Trickle advertising and suppression,
// RX entry and SNACK emission, TX service bursts, signature bootstrap and
// rebroadcast, denial-of-receipt budgets, lockstep hold-back and its
// anti-stall deadline, and hostile-input handling.
#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <set>

#include "core/experiment.h"
#include "core/lr_image.h"
#include "crypto/wots.h"
#include "proto/deluge.h"
#include "proto/engine.h"
#include "proto/packet.h"

namespace lrs {
namespace {

using proto::Advertisement;
using proto::CommonParams;
using proto::DataPacket;
using proto::DissemNode;
using proto::EngineConfig;
using proto::NodeState;
using proto::Snack;
using sim::PacketClass;
using sim::SimTime;

/// Env double: timers run on manual advance; broadcasts are captured.
class FakeEnv final : public sim::Env {
 public:
  explicit FakeEnv(NodeId id) : id_(id) {}

  SimTime now() const override { return now_; }
  NodeId id() const override { return id_; }

  void broadcast(PacketClass cls, Bytes frame) override {
    sent.push_back({cls, std::move(frame)});
  }

  sim::EventToken schedule(SimTime delay, sim::EventFn fn) override {
    const auto token = sim::EventToken::from_bits(++token_bits_);
    timers_.insert({{now_ + delay, seq_++}, {std::move(fn), token}});
    return token;
  }

  std::size_t pending_tx() const override { return 0; }  // radio always free

  void cancel(sim::EventToken token) override {
    if (token) cancelled_.insert(token.bits());
  }

  Rng& rng() override { return rng_; }
  sim::NodeMetrics& metrics() override { return metrics_; }
  void notify_complete() override { completed = true; }

  /// Runs every timer due up to and including `t`.
  void advance_to(SimTime t) {
    while (!timers_.empty()) {
      auto it = timers_.begin();
      if (it->first.first > t) break;
      auto [fn, token] = it->second;
      now_ = it->first.first;
      timers_.erase(it);
      if (cancelled_.count(token.bits()) == 0) fn();
    }
    now_ = t;
  }
  void advance(SimTime dt) { advance_to(now_ + dt); }

  /// Frames of a class captured so far (and clears the log).
  std::vector<Bytes> take(PacketClass cls) {
    std::vector<Bytes> out;
    std::vector<std::pair<PacketClass, Bytes>> keep;
    for (auto& [c, f] : sent) {
      if (c == cls)
        out.push_back(std::move(f));
      else
        keep.push_back({c, std::move(f)});
    }
    sent = std::move(keep);
    return out;
  }
  std::size_t count(PacketClass cls) const {
    std::size_t n = 0;
    for (const auto& [c, f] : sent) n += c == cls;
    return n;
  }
  void clear() { sent.clear(); }

  std::vector<std::pair<PacketClass, Bytes>> sent;
  bool completed = false;

 private:
  NodeId id_;
  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t token_bits_ = 0;
  Rng rng_{42};
  sim::NodeMetrics metrics_;
  std::map<std::pair<SimTime, std::uint64_t>,
           std::pair<sim::EventFn, sim::EventToken>>
      timers_;
  std::set<std::uint64_t> cancelled_;
};

CommonParams small_params() {
  CommonParams p;
  p.payload_size = 32;
  p.k = 8;
  p.n = 12;
  p.k0 = 4;
  p.n0 = 8;
  p.puzzle_strength = 4;
  return p;
}

/// A complete LR-Seluge test rig: a receiver-under-test plus a prepared
/// source whose packets can be injected as frames.
struct Rig {
  explicit Rig(bool base_station = false, bool dor = true)
      : params(small_params()),
        image(core::make_test_image(1024, 3)),
        signer(view(Bytes{1}), 1),
        source(core::make_lr_source(params, image, signer)),
        env(base_station ? 0 : 5) {
    EngineConfig cfg;
    cfg.is_base_station = base_station;
    cfg.dor_mitigation = dor;
    cfg.dor_limit_factor = 2;
    cfg.timing.trickle.tau_low = 500 * sim::kMillisecond;
    cfg.timing.trickle.tau_high = 8 * sim::kSecond;
    timing = cfg.timing;
    node = std::make_unique<DissemNode>(
        env,
        base_station
            ? core::make_lr_source(params, image, signer2())
            : core::make_lr_receiver(params, signer.root_public_key()),
        cfg, params.cluster_key);
    node->on_start();
  }

  crypto::MultiKeySigner& signer2() {
    static crypto::MultiKeySigner s(view(Bytes{1}), 1);
    // Fresh instance per rig to avoid one-time key exhaustion.
    signer2_ = std::make_unique<crypto::MultiKeySigner>(view(Bytes{1}), 1);
    return *signer2_;
  }

  void deliver_adv(NodeId from, std::uint32_t pages, bool bootstrapped) {
    Advertisement a;
    a.version = params.version;
    a.sender = from;
    a.pages_complete = pages;
    a.bootstrapped = bootstrapped;
    node->on_receive(view(a.serialize(view(params.cluster_key))));
  }

  void deliver_signature() {
    node->on_receive(view(source->signature_frame().value()));
  }

  void deliver_data(std::uint32_t page, std::uint32_t index) {
    DataPacket d;
    d.version = params.version;
    d.page = page;
    d.index = index;
    d.payload = source->packet_payload(page, index).value();
    node->on_receive(view(d.serialize()));
  }

  void deliver_snack(NodeId from, NodeId target, std::uint32_t page,
                     const BitVec& bits) {
    Snack s;
    s.version = params.version;
    s.sender = from;
    s.target = target;
    s.page = page;
    s.requested = bits;
    node->on_receive(view(s.serialize(view(params.cluster_key))));
  }

  /// Feeds pages 0..`through` completely.
  void complete_pages_through(std::uint32_t through) {
    for (std::uint32_t p = 0; p <= through; ++p) {
      const auto count = source->packets_in_page(p);
      for (std::uint32_t j = 0; j < count; ++j) {
        if (node->scheme().pages_complete() > p) break;
        deliver_data(p, j);
      }
      ASSERT_EQ(node->scheme().pages_complete(), p + 1);
    }
  }

  CommonParams params;
  proto::EngineTiming timing;
  Bytes image;
  crypto::MultiKeySigner signer;
  std::unique_ptr<proto::SchemeState> source;
  std::unique_ptr<crypto::MultiKeySigner> signer2_;
  FakeEnv env;
  std::unique_ptr<DissemNode> node;
};

// ---------------------------------------------------------------------------
// Advertising
// ---------------------------------------------------------------------------

TEST(EngineAdvertising, BroadcastsWithinFirstTrickleInterval) {
  Rig rig;
  rig.env.advance(rig.timing.trickle.tau_low);
  EXPECT_GE(rig.env.count(PacketClass::kAdvertisement), 1u);
}

TEST(EngineAdvertising, SuppressedAfterRedundantConsistentAdvs) {
  Rig rig;
  // Two consistent neighbors advertise before our fire point: kappa = 2
  // suppresses our own broadcast for this interval.
  rig.deliver_adv(7, 0, false);
  rig.deliver_adv(8, 0, false);
  rig.env.advance(rig.timing.trickle.tau_low - 1);
  EXPECT_EQ(rig.env.count(PacketClass::kAdvertisement), 0u);
}

TEST(EngineAdvertising, InconsistentAdvResetsAndAdvertisesSoon) {
  Rig rig;
  rig.env.advance(30 * sim::kSecond);  // interval has grown
  rig.env.clear();
  rig.deliver_adv(7, 3, true);  // neighbor ahead: inconsistency
  rig.env.advance(rig.timing.trickle.tau_low);
  // Reset to tau_low means our own adv (or a signature request) goes out
  // within one short interval.
  EXPECT_GE(rig.env.sent.size(), 1u);
}

TEST(EngineAdvertising, AdvertisementCarriesProgress) {
  Rig rig;
  rig.deliver_signature();
  rig.complete_pages_through(0);
  rig.env.advance(rig.timing.trickle.tau_low * 2);
  const auto advs = rig.env.take(PacketClass::kAdvertisement);
  ASSERT_FALSE(advs.empty());
  const auto parsed = Advertisement::parse(view(advs.back()),
                                           view(rig.params.cluster_key));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->pages_complete, 1u);
  EXPECT_TRUE(parsed->bootstrapped);
}

// ---------------------------------------------------------------------------
// Signature bootstrap
// ---------------------------------------------------------------------------

TEST(EngineBootstrap, RequestsSignatureFromBootstrappedNeighbor) {
  Rig rig;
  rig.deliver_adv(7, 2, true);
  rig.env.advance(200 * sim::kMillisecond);
  const auto snacks = rig.env.take(PacketClass::kSnack);
  ASSERT_FALSE(snacks.empty());
  const auto s = Snack::parse(view(snacks[0]), view(rig.params.cluster_key));
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->page, proto::kSignatureRequestPage);
  EXPECT_EQ(s->target, 7u);
}

TEST(EngineBootstrap, NoSignatureRequestWithoutBootstrappedNeighbor) {
  Rig rig;
  rig.deliver_adv(7, 0, false);
  rig.env.advance(200 * sim::kMillisecond);
  EXPECT_EQ(rig.env.count(PacketClass::kSnack), 0u);
}

TEST(EngineBootstrap, ServesSignatureOnRequestWithRateLimit) {
  Rig rig;
  rig.deliver_signature();
  rig.env.clear();
  rig.deliver_snack(9, rig.env.id(), proto::kSignatureRequestPage, BitVec{});
  EXPECT_EQ(rig.env.count(PacketClass::kSignature), 1u);
  // A second request right away is rate-limited.
  rig.deliver_snack(9, rig.env.id(), proto::kSignatureRequestPage, BitVec{});
  EXPECT_EQ(rig.env.count(PacketClass::kSignature), 1u);
  // After the minimum gap it is served again.
  rig.env.advance(rig.timing.signature_rebroadcast_min_gap + 1);
  rig.deliver_snack(9, rig.env.id(), proto::kSignatureRequestPage, BitVec{});
  EXPECT_EQ(rig.env.count(PacketClass::kSignature), 2u);
}

TEST(EngineBootstrap, SignatureEnablesRx) {
  Rig rig;
  rig.deliver_adv(7, 99, true);
  rig.deliver_signature();
  EXPECT_TRUE(rig.node->scheme().bootstrapped());
  rig.env.advance(rig.timing.snack_delay_max + 1);
  // Now in RX: a SNACK for page 0 goes to node 7.
  const auto snacks = rig.env.take(PacketClass::kSnack);
  bool found_page0 = false;
  for (const auto& f : snacks) {
    const auto s = Snack::parse(view(f), view(rig.params.cluster_key));
    if (s && s->page == 0 && s->target == 7) found_page0 = true;
  }
  EXPECT_TRUE(found_page0);
  EXPECT_EQ(rig.node->state(), NodeState::kRx);
}

// ---------------------------------------------------------------------------
// RX / retry
// ---------------------------------------------------------------------------

TEST(EngineRx, RetriesSnackWhileStalled) {
  Rig rig;
  rig.deliver_adv(7, 99, true);
  rig.deliver_signature();
  rig.env.advance(5 * sim::kSecond);  // several retry periods, no data
  const auto snacks = rig.env.take(PacketClass::kSnack);
  std::size_t page0_requests = 0;
  for (const auto& f : snacks) {
    const auto s = Snack::parse(view(f), view(rig.params.cluster_key));
    if (s && s->page == 0) ++page0_requests;
  }
  EXPECT_GE(page0_requests, 3u);
}

TEST(EngineRx, SnackBitsReflectReceivedPackets) {
  Rig rig;
  rig.deliver_adv(7, 99, true);
  rig.deliver_signature();
  rig.deliver_data(0, 2);
  rig.deliver_data(0, 5);
  rig.env.advance(2 * sim::kSecond);
  const auto snacks = rig.env.take(PacketClass::kSnack);
  ASSERT_FALSE(snacks.empty());
  const auto s =
      Snack::parse(view(snacks.back()), view(rig.params.cluster_key));
  ASSERT_TRUE(s.has_value());
  EXPECT_FALSE(s->requested.get(2));
  EXPECT_FALSE(s->requested.get(5));
  EXPECT_TRUE(s->requested.get(0));
}

TEST(EngineRx, CompletionNotifiesAndStopsRequesting) {
  Rig rig;
  rig.deliver_adv(7, 99, true);
  rig.deliver_signature();
  const std::uint32_t pages = rig.source->num_pages();
  rig.complete_pages_through(pages - 1);
  EXPECT_TRUE(rig.env.completed);
  rig.env.clear();
  rig.env.advance(5 * sim::kSecond);
  EXPECT_EQ(rig.env.count(PacketClass::kSnack), 0u);
}

// ---------------------------------------------------------------------------
// TX / service
// ---------------------------------------------------------------------------

TEST(EngineTx, ServesGreedyDistanceNotFullRequest) {
  Rig rig(/*base_station=*/true);
  rig.env.clear();
  // One neighbor requests everything: q = n = 12, k' = 8 -> distance 8.
  rig.deliver_snack(3, rig.env.id(), 1, BitVec(rig.params.n, true));
  rig.env.advance(2 * sim::kSecond);
  EXPECT_EQ(rig.env.count(PacketClass::kData), 8u);
}

TEST(EngineTx, ConcurrentRequestsShareOneBurst) {
  Rig rig(/*base_station=*/true);
  rig.env.clear();
  rig.deliver_snack(3, rig.env.id(), 1, BitVec(rig.params.n, true));
  rig.deliver_snack(4, rig.env.id(), 1, BitVec(rig.params.n, true));
  rig.env.advance(2 * sim::kSecond);
  // Both need 8; the same 8 broadcasts serve them.
  EXPECT_EQ(rig.env.count(PacketClass::kData), 8u);
}

TEST(EngineTx, LowerPageServedBeforeHigher) {
  Rig rig(/*base_station=*/true);
  rig.env.clear();
  rig.deliver_snack(3, rig.env.id(), 2, BitVec(rig.params.n, true));
  rig.deliver_snack(4, rig.env.id(), 1, BitVec(rig.params.n, true));
  rig.env.advance(2 * sim::kSecond);
  const auto frames = rig.env.take(PacketClass::kData);
  ASSERT_EQ(frames.size(), 16u);
  // First 8 frames must be page 1 (Deluge priority), then page 2.
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const auto d = DataPacket::parse(view(frames[i]));
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->page, i < 8 ? 1u : 2u) << i;
  }
}

TEST(EngineTx, RotationServesFreshPacketsAcrossBursts) {
  Rig rig(/*base_station=*/true);
  rig.env.clear();
  rig.deliver_snack(3, rig.env.id(), 1, BitVec(rig.params.n, true));
  rig.env.advance(2 * sim::kSecond);
  auto first = rig.env.take(PacketClass::kData);
  // The requester lost everything; it asks again.
  rig.deliver_snack(3, rig.env.id(), 1, BitVec(rig.params.n, true));
  rig.env.advance(2 * sim::kSecond);
  auto second = rig.env.take(PacketClass::kData);
  ASSERT_EQ(first.size(), 8u);
  ASSERT_EQ(second.size(), 8u);
  // Burst 2 continues the cyclic sweep: indices 8..11 then wrap 0..3.
  const auto d0 = DataPacket::parse(view(second[0]));
  ASSERT_TRUE(d0.has_value());
  EXPECT_EQ(d0->index, 8u);
}

TEST(EngineTx, IgnoresSnackForPageItLacks) {
  Rig rig;  // plain receiver: has nothing
  rig.deliver_signature();
  rig.env.clear();
  rig.deliver_snack(3, rig.env.id(), 1, BitVec(rig.params.n, true));
  rig.env.advance(1 * sim::kSecond);
  EXPECT_EQ(rig.env.count(PacketClass::kData), 0u);
}

TEST(EngineTx, SnacksForOthersDoNotTriggerService) {
  Rig rig(/*base_station=*/true);
  rig.env.clear();
  rig.deliver_snack(3, /*target=*/99, 1, BitVec(rig.params.n, true));
  rig.env.advance(1 * sim::kSecond);
  EXPECT_EQ(rig.env.count(PacketClass::kData), 0u);
}

// ---------------------------------------------------------------------------
// Denial-of-receipt budget
// ---------------------------------------------------------------------------

TEST(EngineDor, BudgetCapsPerNeighborService) {
  Rig rig(/*base_station=*/true);  // dor_limit_factor = 2 -> 16 packets
  rig.env.clear();
  for (int i = 0; i < 10; ++i) {
    rig.deliver_snack(3, rig.env.id(), 1, BitVec(rig.params.n, true));
    rig.env.advance(2 * sim::kSecond);
  }
  EXPECT_LE(rig.env.count(PacketClass::kData), 16u);
  EXPECT_GT(rig.env.metrics().snacks_ignored, 0u);
}

TEST(EngineDor, BudgetIsPerNeighbor) {
  Rig rig(/*base_station=*/true);
  rig.env.clear();
  for (NodeId v = 10; v < 14; ++v) {
    rig.deliver_snack(v, rig.env.id(), 1, BitVec(rig.params.n, true));
    rig.env.advance(2 * sim::kSecond);
  }
  // Four distinct neighbors each get served (shared bursts aside, far more
  // than one neighbor's cap would allow being denied).
  EXPECT_EQ(rig.env.metrics().snacks_ignored, 0u);
}

TEST(EngineDor, DisabledMitigationServesForever) {
  Rig rig(/*base_station=*/true, /*dor=*/false);
  rig.env.clear();
  for (int i = 0; i < 6; ++i) {
    rig.deliver_snack(3, rig.env.id(), 1, BitVec(rig.params.n, true));
    rig.env.advance(2 * sim::kSecond);
  }
  EXPECT_EQ(rig.env.count(PacketClass::kData), 6u * 8u);
  EXPECT_EQ(rig.env.metrics().snacks_ignored, 0u);
}

// ---------------------------------------------------------------------------
// Hostile input
// ---------------------------------------------------------------------------

TEST(EngineHostile, GarbageFramesIgnored) {
  Rig rig;
  rig.deliver_signature();
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    Bytes junk(rng.uniform(40));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.uniform(256));
    rig.node->on_receive(view(junk));  // must not crash or change state
  }
  EXPECT_EQ(rig.node->scheme().pages_complete(), 0u);
}

TEST(EngineHostile, WrongVersionFramesIgnored) {
  Rig rig(/*base_station=*/true);
  rig.env.clear();
  Snack s;
  s.version = rig.params.version + 1;
  s.sender = 3;
  s.target = rig.env.id();
  s.page = 1;
  s.requested = BitVec(rig.params.n, true);
  rig.node->on_receive(view(s.serialize(view(rig.params.cluster_key))));
  rig.env.advance(1 * sim::kSecond);
  EXPECT_EQ(rig.env.count(PacketClass::kData), 0u);
}

TEST(EngineHostile, UnMacdSnackRejected) {
  Rig rig(/*base_station=*/true);
  rig.env.clear();
  Snack s;
  s.version = rig.params.version;
  s.sender = 3;
  s.target = rig.env.id();
  s.page = 1;
  s.requested = BitVec(rig.params.n, true);
  const Bytes wrong_key{0xde, 0xad};
  rig.node->on_receive(view(s.serialize(view(wrong_key))));
  rig.env.advance(1 * sim::kSecond);
  EXPECT_EQ(rig.env.count(PacketClass::kData), 0u);
  EXPECT_GE(rig.env.metrics().auth_failures, 1u);
}

TEST(EngineHostile, WrongSizeSnackBitmapIgnored) {
  Rig rig(/*base_station=*/true);
  rig.env.clear();
  rig.deliver_snack(3, rig.env.id(), 1, BitVec(5, true));  // wrong length
  rig.env.advance(1 * sim::kSecond);
  EXPECT_EQ(rig.env.count(PacketClass::kData), 0u);
}

// ---------------------------------------------------------------------------
// Lockstep hold-back and anti-stall deadline
// ---------------------------------------------------------------------------

TEST(EngineLockstep, VerifiedLowerPageDataDefersNextRequest) {
  Rig rig;
  rig.deliver_adv(7, 99, true);
  rig.deliver_signature();
  rig.complete_pages_through(0);
  rig.env.clear();
  // Keep replaying authentic page-0 traffic (a straggler being served):
  // our page-1 SNACK must stay deferred well past the stream gap.
  for (int i = 0; i < 8; ++i) {
    rig.deliver_data(0, static_cast<std::uint32_t>(i % 4));
    rig.env.advance(100 * sim::kMillisecond);
  }
  EXPECT_EQ(rig.env.count(PacketClass::kSnack), 0u);
}

TEST(EngineLockstep, DeadlineBreaksEndlessReplayStall) {
  Rig rig;
  rig.deliver_adv(7, 99, true);
  rig.deliver_signature();
  rig.complete_pages_through(0);
  rig.env.clear();
  // An adversary replays one captured authentic packet forever; the
  // deferral ceiling must still let our request out.
  for (int i = 0; i < 200; ++i) {
    rig.deliver_data(0, 1);
    rig.env.advance(100 * sim::kMillisecond);
  }
  EXPECT_GE(rig.env.count(PacketClass::kSnack), 2u);
}

TEST(EngineLockstep, ForgedLowerPageDataDoesNotDefer) {
  Rig rig;
  rig.deliver_adv(7, 99, true);
  rig.deliver_signature();
  rig.complete_pages_through(0);
  rig.env.clear();
  // Forged page-0 packets (bad content) must not hold our request back:
  // SNACKs flow at the normal cadence.
  DataPacket junk;
  junk.version = rig.params.version;
  junk.page = 0;
  junk.index = 2;
  junk.payload = Bytes(rig.source->packet_payload(0, 2)->size(), 0xee);
  for (int i = 0; i < 20; ++i) {
    rig.node->on_receive(view(junk.serialize()));
    rig.env.advance(100 * sim::kMillisecond);
  }
  EXPECT_GE(rig.env.count(PacketClass::kSnack), 2u);
}

}  // namespace
}  // namespace lrs
