// Fault-injection layer: unit tests for every FaultModel, corruption
// property tests for the erasure codecs (a corrupted packet must fail the
// packet_hash gate, never decode into a wrong image), end-to-end
// dissemination under fault plans with the invariant observer attached, and
// the crash-reboot regression of ISSUE 3.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/experiment.h"
#include "crypto/hash.h"
#include "erasure/code.h"
#include "proto/packet.h"
#include "sim/faults.h"
#include "util/rng.h"

namespace lrs {
namespace {

using sim::CrashEvent;
using sim::FaultAction;
using sim::FaultPlan;
using sim::kMillisecond;
using sim::kSecond;

Bytes test_frame(std::size_t size) {
  Bytes f(size);
  for (std::size_t i = 0; i < size; ++i) {
    f[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  return f;
}

// --- fault model units ------------------------------------------------------

TEST(CorruptionFault, AlwaysMutatesAtProbabilityOne) {
  auto fault = sim::make_corruption_fault({1.0, 4, false, 8});
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    Bytes frame = test_frame(40);
    const Bytes original = frame;
    FaultAction action;
    fault->apply(0, 1, 0, frame, action, rng);
    EXPECT_TRUE(action.tampered);
    EXPECT_EQ(frame.size(), original.size());
    EXPECT_NE(frame, original);
  }
}

TEST(CorruptionFault, FlipsNeverCancelOut) {
  // Regression: with-replacement bit flips can land on the same bit an even
  // number of times and cancel, leaving the frame intact but marked
  // tampered — which trips the tamper-rejection invariant when the
  // untouched frame then authenticates. Small frame makes collisions
  // likely; every application must still change it.
  auto fault = sim::make_corruption_fault({1.0, 8, false, 8});
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    Bytes frame = test_frame(4);
    const Bytes original = frame;
    FaultAction action;
    fault->apply(0, 1, 0, frame, action, rng);
    ASSERT_NE(frame, original) << "iteration " << i;
  }
}

TEST(CorruptionFault, BurstMutatesContiguousRun) {
  auto fault = sim::make_corruption_fault({1.0, 4, true, 6});
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    Bytes frame = test_frame(64);
    const Bytes original = frame;
    FaultAction action;
    fault->apply(0, 1, 0, frame, action, rng);
    EXPECT_TRUE(action.tampered);
    std::size_t first = 64, last = 0, changed = 0;
    for (std::size_t j = 0; j < frame.size(); ++j) {
      if (frame[j] != original[j]) {
        first = std::min(first, j);
        last = j;
        ++changed;
      }
    }
    ASSERT_GT(changed, 0u);
    EXPECT_LE(last - first + 1, 6u);
    // Every byte inside the burst changed (xor with nonzero).
    EXPECT_EQ(changed, last - first + 1);
  }
}

TEST(CorruptionFault, DeterministicUnderSeed) {
  for (const bool burst : {false, true}) {
    auto a = sim::make_corruption_fault({0.5, 4, burst, 8});
    auto b = sim::make_corruption_fault({0.5, 4, burst, 8});
    Rng ra(42), rb(42);
    for (int i = 0; i < 100; ++i) {
      Bytes fa = test_frame(32), fb = test_frame(32);
      FaultAction aa, ab;
      a->apply(0, 1, 0, fa, aa, ra);
      b->apply(0, 1, 0, fb, ab, rb);
      EXPECT_EQ(fa, fb);
      EXPECT_EQ(aa.tampered, ab.tampered);
    }
  }
}

TEST(TruncationFault, TruncatesToShorterLength) {
  auto fault = sim::make_truncation_fault({1.0, 0.0, 0});
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    Bytes frame = test_frame(40);
    FaultAction action;
    fault->apply(0, 1, 0, frame, action, rng);
    EXPECT_TRUE(action.tampered);
    EXPECT_LT(frame.size(), 40u);
  }
}

TEST(TruncationFault, PadsWithGarbage) {
  auto fault = sim::make_truncation_fault({0.0, 1.0, 16});
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    Bytes frame = test_frame(40);
    const Bytes original = frame;
    FaultAction action;
    fault->apply(0, 1, 0, frame, action, rng);
    EXPECT_TRUE(action.tampered);
    ASSERT_GT(frame.size(), 40u);
    EXPECT_LE(frame.size(), 40u + 16u);
    EXPECT_TRUE(std::equal(original.begin(), original.end(), frame.begin()));
  }
}

TEST(DuplicationFault, EmitsBoundedCopies) {
  auto fault = sim::make_duplication_fault({1.0, 4});
  Rng rng(5);
  std::set<std::size_t> seen;
  for (int i = 0; i < 100; ++i) {
    Bytes frame = test_frame(16);
    FaultAction action;
    fault->apply(0, 1, 0, frame, action, rng);
    EXPECT_FALSE(action.tampered);  // duplicates carry identical bytes
    EXPECT_GE(action.copies, 2u);
    EXPECT_LE(action.copies, 4u);
    seen.insert(action.copies);
  }
  EXPECT_GT(seen.size(), 1u);
}

TEST(ReorderFault, DelayBounded) {
  auto fault = sim::make_reorder_fault({1.0, 30 * kMillisecond});
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    Bytes frame = test_frame(16);
    FaultAction action;
    fault->apply(0, 1, 0, frame, action, rng);
    EXPECT_GE(action.delay, 1);
    EXPECT_LE(action.delay, 30 * kMillisecond);
  }
}

TEST(CrashFault, DownExactlyInsideWindows) {
  auto fault = sim::make_crash_fault(
      {{2, 1 * kSecond, 500 * kMillisecond}, {3, 4 * kSecond, 1 * kSecond}});
  EXPECT_FALSE(fault->is_down(2, 999 * kMillisecond));
  EXPECT_TRUE(fault->is_down(2, 1 * kSecond));
  EXPECT_TRUE(fault->is_down(2, 1499 * kMillisecond));
  EXPECT_FALSE(fault->is_down(2, 1500 * kMillisecond));
  EXPECT_FALSE(fault->is_down(3, 1 * kSecond));
  EXPECT_TRUE(fault->is_down(3, 4500 * kMillisecond));
  EXPECT_FALSE(fault->is_down(1, 1 * kSecond));
  EXPECT_EQ(fault->crash_events().size(), 2u);
}

TEST(FaultChain, ComposesMutationsCopiesAndWindows) {
  std::vector<std::unique_ptr<sim::FaultModel>> models;
  models.push_back(sim::make_corruption_fault({1.0, 2, false, 8}));
  models.push_back(sim::make_duplication_fault({1.0, 3}));
  models.push_back(
      sim::make_crash_fault({{1, 2 * kSecond, 1 * kSecond}}));
  auto chain = sim::make_fault_chain(std::move(models));

  Rng rng(11);
  Bytes frame = test_frame(32);
  const Bytes original = frame;
  FaultAction action;
  chain->apply(0, 1, 0, frame, action, rng);
  EXPECT_TRUE(action.tampered);
  EXPECT_NE(frame, original);
  EXPECT_GE(action.copies, 2u);
  EXPECT_TRUE(chain->is_down(1, 2500 * kMillisecond));
  EXPECT_FALSE(chain->is_down(1, 3500 * kMillisecond));
  EXPECT_EQ(chain->crash_events().size(), 1u);
}

TEST(FaultPlanTest, AnyAndFactory) {
  FaultPlan none;
  EXPECT_FALSE(none.any());
  EXPECT_EQ(sim::make_fault_model(none), nullptr);
  EXPECT_EQ(none.describe(), "none");

  FaultPlan plan;
  plan.corrupt_prob = 0.25;
  plan.crashes.push_back({1, kSecond, kSecond});
  EXPECT_TRUE(plan.any());
  EXPECT_NE(sim::make_fault_model(plan), nullptr);
  EXPECT_NE(plan.describe().find("corrupt"), std::string::npos);
  EXPECT_NE(plan.describe().find("crash"), std::string::npos);
}

// --- erasure corruption properties (ISSUE 3 satellite 1) --------------------
//
// The dissemination path authenticates every LR-Seluge packet by comparing
// crypto::packet_hash over (version, page, index, payload) against the
// verified hash chain. For each codec and every corruption pattern the
// fault layer can emit, a mutated payload must fail that gate — and a
// decode fed only gate-passing shares must reproduce the original blocks.

struct CodecCase {
  const char* name;
  erasure::CodecKind kind;
};

class ErasureCorruption : public ::testing::TestWithParam<CodecCase> {};

std::vector<Bytes> make_blocks(std::size_t k, std::size_t size,
                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Bytes> blocks(k);
  for (auto& b : blocks) {
    b.resize(size);
    for (auto& byte : b) byte = static_cast<std::uint8_t>(rng.uniform(256));
  }
  return blocks;
}

crypto::PacketHash share_hash(std::uint32_t index, const Bytes& payload) {
  proto::DataPacket probe;
  probe.version = 1;
  probe.page = 1;
  probe.index = index;
  probe.payload = payload;
  return crypto::packet_hash(view(probe.hash_preimage()));
}

TEST_P(ErasureCorruption, CorruptedSharesFailHashAndCleanDecodeSurvives) {
  const auto& tc = GetParam();
  const std::size_t k = 8, n = 14, payload = 48;
  const std::size_t delta = tc.kind == erasure::CodecKind::kLt ? 4 : 2;
  const auto code = erasure::make_code(tc.kind, k, n, delta, 0xbeef);
  const auto blocks = make_blocks(k, payload, 77);
  const auto encoded = code->encode(blocks);
  ASSERT_EQ(encoded.size(), n);

  // Sender-side ground truth: the per-packet hash images.
  std::vector<crypto::PacketHash> hashes(n);
  for (std::size_t j = 0; j < n; ++j) {
    hashes[j] = share_hash(static_cast<std::uint32_t>(j), encoded[j]);
  }

  // Every corruption pattern the fault layer can emit.
  std::vector<std::unique_ptr<sim::FaultModel>> patterns;
  patterns.push_back(sim::make_corruption_fault({1.0, 1, false, 8}));
  patterns.push_back(sim::make_corruption_fault({1.0, 8, false, 8}));
  patterns.push_back(sim::make_corruption_fault({1.0, 4, true, 12}));
  patterns.push_back(sim::make_truncation_fault({1.0, 0.0, 0}));
  patterns.push_back(sim::make_truncation_fault({0.0, 1.0, 16}));

  Rng rng(123);
  for (auto& pattern : patterns) {
    for (std::size_t j = 0; j < n; ++j) {
      Bytes mutated = encoded[j];
      FaultAction action;
      pattern->apply(0, 1, 0, mutated, action, rng);
      ASSERT_TRUE(action.tampered);
      // The authentication gate rejects every corrupted packet.
      EXPECT_FALSE(crypto::equal(
          share_hash(static_cast<std::uint32_t>(j), mutated), hashes[j]))
          << tc.name << " share " << j;
    }
  }

  // Decoding from gate-passing (clean) shares reproduces the original —
  // use the LAST decode_threshold shares so non-systematic paths run too.
  std::vector<erasure::Share> shares;
  for (std::size_t j = n - code->decode_threshold(); j < n; ++j) {
    ASSERT_TRUE(crypto::equal(
        share_hash(static_cast<std::uint32_t>(j), encoded[j]), hashes[j]));
    shares.push_back({j, encoded[j]});
  }
  const auto decoded = code->decode(shares);
  if (tc.kind == erasure::CodecKind::kReedSolomon) {
    ASSERT_TRUE(decoded.has_value());
  }
  if (decoded) {
    EXPECT_EQ(*decoded, blocks) << tc.name;
  } else {
    // Probabilistic codes may need more shares — all of them must do.
    std::vector<erasure::Share> all;
    for (std::size_t j = 0; j < n; ++j) all.push_back({j, encoded[j]});
    const auto full = code->decode(all);
    ASSERT_TRUE(full.has_value()) << tc.name;
    EXPECT_EQ(*full, blocks) << tc.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Codecs, ErasureCorruption,
    ::testing::Values(CodecCase{"rs", erasure::CodecKind::kReedSolomon},
                      CodecCase{"rlc2", erasure::CodecKind::kRlcGf2},
                      CodecCase{"rlc256", erasure::CodecKind::kRlcGf256},
                      CodecCase{"lt", erasure::CodecKind::kLt}),
    [](const auto& info) { return std::string(info.param.name); });

// --- end-to-end under fault plans -------------------------------------------

core::ExperimentConfig fault_config(core::Scheme scheme) {
  core::ExperimentConfig c;
  c.scheme = scheme;
  c.params.payload_size = 32;
  c.params.k = 8;
  c.params.n = 12;
  c.params.k0 = 4;
  c.params.n0 = 8;
  c.params.puzzle_strength = 4;
  c.image_size = 2048;
  c.receivers = 4;
  c.seed = 1;
  c.timing.trickle.tau_low = 250 * kMillisecond;
  c.timing.trickle.tau_high = 8 * kSecond;
  c.check_invariants = true;
  return c;
}

TEST(FaultE2E, LrSelugeCompletesUnderCorruption) {
  auto cfg = fault_config(core::Scheme::kLrSeluge);
  cfg.faults.corrupt_prob = 0.1;
  cfg.faults.corrupt_max_flips = 8;
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.all_complete) << r.completed << "/" << r.receivers;
  EXPECT_TRUE(r.images_match);
  EXPECT_GT(r.tampered_frames, 0u);
  EXPECT_GT(r.invariant_checks, 0u);
  EXPECT_EQ(r.invariant_violations, 0u) << r.first_violation;
}

TEST(FaultE2E, LrSelugeCompletesUnderChaosPlan) {
  auto cfg = fault_config(core::Scheme::kLrSeluge);
  cfg.faults.corrupt_prob = 0.05;
  cfg.faults.truncate_prob = 0.03;
  cfg.faults.duplicate_prob = 0.05;
  cfg.faults.reorder_prob = 0.1;
  cfg.faults.reorder_max_delay = 20 * kMillisecond;
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.all_complete) << r.completed << "/" << r.receivers;
  EXPECT_TRUE(r.images_match);
  EXPECT_EQ(r.invariant_violations, 0u) << r.first_violation;
}

TEST(FaultE2E, DeterministicUnderFaultPlan) {
  auto cfg = fault_config(core::Scheme::kLrSeluge);
  cfg.faults.corrupt_prob = 0.08;
  cfg.faults.duplicate_prob = 0.05;
  cfg.faults.reorder_prob = 0.1;
  const auto a = run_experiment(cfg);
  const auto b = run_experiment(cfg);
  EXPECT_EQ(a.data_packets, b.data_packets);
  EXPECT_EQ(a.snack_packets, b.snack_packets);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.tampered_frames, b.tampered_frames);
  EXPECT_EQ(a.fault_drops, b.fault_drops);
  EXPECT_DOUBLE_EQ(a.latency_s, b.latency_s);
}

TEST(FaultE2E, FaultFreeRunUnchangedByInvariantObserver) {
  // The observer is passive: metrics with and without it are identical.
  auto cfg = fault_config(core::Scheme::kLrSeluge);
  cfg.check_invariants = false;
  const auto plain = run_experiment(cfg);
  cfg.check_invariants = true;
  const auto observed = run_experiment(cfg);
  EXPECT_EQ(plain.data_packets, observed.data_packets);
  EXPECT_EQ(plain.snack_packets, observed.snack_packets);
  EXPECT_EQ(plain.total_bytes, observed.total_bytes);
  EXPECT_DOUBLE_EQ(plain.latency_s, observed.latency_s);
  EXPECT_GT(observed.invariant_checks, 0u);
  EXPECT_EQ(observed.invariant_violations, 0u) << observed.first_violation;
}

// --- crash-reboot regression (ISSUE 3 satellite 3) --------------------------

class CrashReboot : public ::testing::TestWithParam<core::Scheme> {};

TEST_P(CrashReboot, RebootedReceiverStillCompletesUnderGilbertElliott) {
  auto cfg = fault_config(GetParam());
  cfg.gilbert_elliott = true;
  // Mid-transfer outages on two receivers; frontier must survive both.
  cfg.faults.crashes.push_back({2, 1 * kSecond, 700 * kMillisecond});
  cfg.faults.crashes.push_back({3, 2 * kSecond, 500 * kMillisecond});
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.all_complete) << r.completed << "/" << r.receivers;
  EXPECT_TRUE(r.images_match);
  EXPECT_EQ(r.reboots, 2u);
  EXPECT_EQ(r.invariant_violations, 0u) << r.first_violation;
}

INSTANTIATE_TEST_SUITE_P(Schemes, CrashReboot,
                         ::testing::Values(core::Scheme::kDeluge,
                                           core::Scheme::kSeluge,
                                           core::Scheme::kLrSeluge),
                         [](const auto& info) {
                           std::string s = core::scheme_name(info.param);
                           s.erase(std::remove(s.begin(), s.end(), '-'),
                                   s.end());
                           return s;
                         });

}  // namespace
}  // namespace lrs
