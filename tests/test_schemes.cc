// Scheme state machines driven directly (no network): preprocessing,
// page-by-page authentication, erasure decoding, serving/re-encoding,
// tamper rejection and image reassembly for Deluge, Seluge and LR-Seluge.
#include <gtest/gtest.h>

#include <memory>

#include "core/experiment.h"
#include "core/lr_image.h"
#include "crypto/wots.h"
#include "crypto/puzzle.h"
#include "proto/deluge.h"
#include "proto/packet.h"
#include "proto/scheme.h"
#include "proto/seluge.h"
#include "util/rng.h"

namespace lrs {
namespace {

using core::make_lr_receiver;
using core::make_lr_source;
using proto::CommonParams;
using proto::DataStatus;
using proto::SchemeState;

CommonParams small_params() {
  CommonParams p;
  p.payload_size = 32;
  p.k = 8;
  p.n = 12;
  p.k0 = 4;
  p.n0 = 8;
  p.puzzle_strength = 4;  // keep preprocessing fast in tests
  return p;
}

Bytes test_image(std::size_t size, std::uint64_t seed = 7) {
  return core::make_test_image(size, seed);
}

const Bytes kSeed{0xaa, 0xbb};

/// Pumps every packet of every page from `src` into `dst` in index order.
/// Returns the number of packets dst accepted (stored or completing).
std::size_t pump_all(SchemeState& src, SchemeState& dst,
                     sim::NodeMetrics& m) {
  std::size_t accepted = 0;
  if (src.signature_frame()) {
    EXPECT_TRUE(dst.on_signature(view(*src.signature_frame()), m));
  }
  const std::uint32_t pages = src.num_pages();
  for (std::uint32_t p = 0; p < pages; ++p) {
    for (std::uint32_t j = 0; j < src.packets_in_page(p); ++j) {
      if (dst.pages_complete() > p) break;
      auto payload = src.packet_payload(p, j);
      EXPECT_TRUE(payload.has_value());
      const auto status = dst.on_data(p, j, view(*payload), m);
      EXPECT_NE(status, DataStatus::kRejected)
          << "page " << p << " idx " << j;
      if (status != DataStatus::kStale) ++accepted;
    }
  }
  return accepted;
}

// ---------------------------------------------------------------------------
// Deluge
// ---------------------------------------------------------------------------

TEST(DelugeScheme, FullTransferReassemblesImage) {
  const auto params = small_params();
  const Bytes image = test_image(2000);
  auto src = proto::make_deluge_source(params, image);
  auto dst = proto::make_deluge_receiver(params, image.size());
  sim::NodeMetrics m;

  EXPECT_TRUE(src->image_complete());
  EXPECT_FALSE(dst->image_complete());
  EXPECT_FALSE(dst->needs_signature());
  pump_all(*src, *dst, m);
  ASSERT_TRUE(dst->image_complete());
  EXPECT_EQ(dst->assemble_image(), image);
}

TEST(DelugeScheme, AcceptsAnyWellFormedPayload) {
  // The security gap: Deluge stores forged content without complaint.
  const auto params = small_params();
  auto dst = proto::make_deluge_receiver(params, 2000);
  sim::NodeMetrics m;
  const Bytes forged(params.payload_size, 0xee);
  EXPECT_EQ(dst->on_data(0, 0, view(forged), m), DataStatus::kStored);
  EXPECT_EQ(m.auth_failures, 0u);
}

TEST(DelugeScheme, RejectsWrongSizeAndOutOfRange) {
  const auto params = small_params();
  auto dst = proto::make_deluge_receiver(params, 2000);
  sim::NodeMetrics m;
  EXPECT_EQ(dst->on_data(0, 0, view(Bytes(5, 1)), m), DataStatus::kRejected);
  EXPECT_EQ(dst->on_data(0, 99, view(Bytes(params.payload_size, 1)), m),
            DataStatus::kRejected);
}

TEST(DelugeScheme, DuplicateAndFuturePageAreStale) {
  const auto params = small_params();
  const Bytes image = test_image(2000);
  auto src = proto::make_deluge_source(params, image);
  auto dst = proto::make_deluge_receiver(params, image.size());
  sim::NodeMetrics m;
  const auto payload = src->packet_payload(0, 0).value();
  EXPECT_EQ(dst->on_data(0, 0, view(payload), m), DataStatus::kStored);
  EXPECT_EQ(dst->on_data(0, 0, view(payload), m), DataStatus::kStale);
  EXPECT_EQ(dst->on_data(3, 0, view(payload), m), DataStatus::kStale);
}

TEST(DelugeScheme, RequestBitsTrackMissing) {
  const auto params = small_params();
  const Bytes image = test_image(2000);
  auto src = proto::make_deluge_source(params, image);
  auto dst = proto::make_deluge_receiver(params, image.size());
  sim::NodeMetrics m;
  EXPECT_EQ(dst->request_bits(0).count(), params.k);
  dst->on_data(0, 3, view(src->packet_payload(0, 3).value()), m);
  const auto bits = dst->request_bits(0);
  EXPECT_EQ(bits.count(), params.k - 1);
  EXPECT_FALSE(bits.get(3));
}

// ---------------------------------------------------------------------------
// Seluge
// ---------------------------------------------------------------------------

struct SelugeFixture {
  CommonParams params = small_params();
  Bytes image = test_image(2000, 11);
  crypto::MultiKeySigner signer{view(kSeed), 2};
  std::unique_ptr<SchemeState> src =
      proto::make_seluge_source(params, image, signer);
  std::unique_ptr<SchemeState> dst =
      proto::make_seluge_receiver(params, signer.root_public_key());
  sim::NodeMetrics m;
};

TEST(SelugeScheme, FullTransferReassemblesImage) {
  SelugeFixture f;
  EXPECT_TRUE(f.src->image_complete());
  EXPECT_TRUE(f.dst->needs_signature());
  EXPECT_FALSE(f.dst->bootstrapped());
  pump_all(*f.src, *f.dst, f.m);
  ASSERT_TRUE(f.dst->image_complete());
  EXPECT_EQ(f.dst->assemble_image(), f.image);
  EXPECT_GT(f.m.hash_verifications, 0u);
  EXPECT_EQ(f.m.signature_verifications, 1u);
  EXPECT_EQ(f.m.auth_failures, 0u);
}

TEST(SelugeScheme, DataUselessBeforeSignature) {
  SelugeFixture f;
  const auto payload = f.src->packet_payload(0, 0).value();
  EXPECT_EQ(f.dst->on_data(0, 0, view(payload), f.m), DataStatus::kStale);
  EXPECT_EQ(f.dst->pages_complete(), 0u);
}

TEST(SelugeScheme, ForgedSignatureRejectedByPuzzleOrSig) {
  SelugeFixture f;
  // Garbage frame.
  Bytes junk{4, 1, 2, 3};
  EXPECT_FALSE(f.dst->on_signature(view(junk), f.m));
  // Valid structure, bad puzzle: rejected before signature verification.
  proto::SignaturePacket forged;
  forged.meta.version = f.params.version;
  forged.meta.content_pages = 3;
  forged.meta.image_size = 100;
  forged.root.fill(1);
  forged.puzzle = {f.params.puzzle_strength, 0xbad};
  forged.signature = Bytes(600, 0);
  const auto before = f.m.signature_verifications;
  if (!crypto::verify_puzzle(view(forged.signed_message()), forged.puzzle)) {
    EXPECT_FALSE(f.dst->on_signature(view(forged.serialize()), f.m));
    EXPECT_EQ(f.m.signature_verifications, before);
    EXPECT_GE(f.m.puzzle_rejections, 1u);
  }
  // Puzzle solved but signature forged: rejected after one verification.
  forged.puzzle = crypto::solve_puzzle(view(forged.signed_message()),
                                       f.params.puzzle_strength);
  forged.signature = Bytes(600, 0);
  EXPECT_FALSE(f.dst->on_signature(view(forged.serialize()), f.m));
  EXPECT_FALSE(f.dst->bootstrapped());
}

TEST(SelugeScheme, TamperedHashPagePacketRejected) {
  SelugeFixture f;
  f.dst->on_signature(view(*f.src->signature_frame()), f.m);
  Bytes payload = f.src->packet_payload(0, 0).value();
  payload[0] ^= 1;
  EXPECT_EQ(f.dst->on_data(0, 0, view(payload), f.m), DataStatus::kRejected);
  EXPECT_GE(f.m.auth_failures, 1u);
}

TEST(SelugeScheme, TamperedContentPacketRejected) {
  SelugeFixture f;
  f.dst->on_signature(view(*f.src->signature_frame()), f.m);
  for (std::uint32_t j = 0; j < f.src->packets_in_page(0); ++j)
    f.dst->on_data(0, j, view(f.src->packet_payload(0, j).value()), f.m);
  ASSERT_EQ(f.dst->pages_complete(), 1u);
  Bytes payload = f.src->packet_payload(1, 2).value();
  payload[5] ^= 0x80;
  EXPECT_EQ(f.dst->on_data(1, 2, view(payload), f.m), DataStatus::kRejected);
  // The genuine packet still goes through afterwards.
  EXPECT_EQ(f.dst->on_data(1, 2,
                           view(f.src->packet_payload(1, 2).value()), f.m),
            DataStatus::kStored);
}

TEST(SelugeScheme, PacketSplicedToOtherPositionRejected) {
  SelugeFixture f;
  f.dst->on_signature(view(*f.src->signature_frame()), f.m);
  const auto p0 = f.src->packet_payload(0, 0).value();
  EXPECT_EQ(f.dst->on_data(0, 1, view(p0), f.m), DataStatus::kRejected);
}

TEST(SelugeScheme, ReceiverCanServeAfterCompleting) {
  SelugeFixture f;
  pump_all(*f.src, *f.dst, f.m);
  ASSERT_TRUE(f.dst->image_complete());
  auto third = proto::make_seluge_receiver(f.params,
                                           f.signer.root_public_key());
  sim::NodeMetrics m2;
  pump_all(*f.dst, *third, m2);
  ASSERT_TRUE(third->image_complete());
  EXPECT_EQ(third->assemble_image(), f.image);
}

TEST(SelugeScheme, SingleContentPageImage) {
  auto params = small_params();
  const Bytes image = test_image(100, 12);  // fits one page
  crypto::MultiKeySigner signer(view(kSeed), 1);
  auto src = proto::make_seluge_source(params, image, signer);
  auto dst = proto::make_seluge_receiver(params, signer.root_public_key());
  sim::NodeMetrics m;
  pump_all(*src, *dst, m);
  ASSERT_TRUE(dst->image_complete());
  EXPECT_EQ(dst->assemble_image(), image);
}

// ---------------------------------------------------------------------------
// LR-Seluge
// ---------------------------------------------------------------------------

struct LrFixture {
  explicit LrFixture(CommonParams p = small_params(),
                     std::size_t image_size = 2000)
      : params(p),
        image(test_image(image_size, 13)),
        signer(view(kSeed), 2),
        src(make_lr_source(params, image, signer)),
        dst(make_lr_receiver(params, signer.root_public_key())) {}

  CommonParams params;
  Bytes image;
  crypto::MultiKeySigner signer;
  std::unique_ptr<SchemeState> src;
  std::unique_ptr<SchemeState> dst;
  sim::NodeMetrics m;
};

TEST(LrScheme, FullTransferReassemblesImage) {
  LrFixture f;
  pump_all(*f.src, *f.dst, f.m);
  ASSERT_TRUE(f.dst->image_complete());
  EXPECT_EQ(f.dst->assemble_image(), f.image);
  EXPECT_GT(f.m.decode_operations, 0u);
}

TEST(LrScheme, DecodesFromAnyThresholdSubset) {
  // Drop the first n-k' packets of every page: the tail still decodes.
  LrFixture f;
  ASSERT_TRUE(f.dst->on_signature(view(*f.src->signature_frame()), f.m));
  const std::uint32_t pages = f.src->num_pages();
  for (std::uint32_t p = 0; p < pages; ++p) {
    const std::size_t count = f.src->packets_in_page(p);
    const std::size_t threshold = f.src->decode_threshold(p);
    // Feed only the LAST `threshold` packets.
    for (std::size_t j = count - threshold; j < count; ++j) {
      const auto st = f.dst->on_data(
          p, static_cast<std::uint32_t>(j),
          view(f.src->packet_payload(p, static_cast<std::uint32_t>(j))
                   .value()),
          f.m);
      EXPECT_NE(st, DataStatus::kRejected);
    }
    EXPECT_EQ(f.dst->pages_complete(), p + 1) << "page " << p;
  }
  ASSERT_TRUE(f.dst->image_complete());
  EXPECT_EQ(f.dst->assemble_image(), f.image);
}

TEST(LrScheme, RandomThresholdSubsetsDecode) {
  LrFixture f;
  Rng rng(99);
  ASSERT_TRUE(f.dst->on_signature(view(*f.src->signature_frame()), f.m));
  const std::uint32_t pages = f.src->num_pages();
  for (std::uint32_t p = 0; p < pages; ++p) {
    const std::size_t count = f.src->packets_in_page(p);
    // Feed packets in random order until the page completes.
    std::vector<std::uint32_t> order(count);
    for (std::size_t j = 0; j < count; ++j)
      order[j] = static_cast<std::uint32_t>(j);
    for (std::size_t j = 0; j + 1 < count; ++j)
      std::swap(order[j], order[j + rng.uniform(count - j)]);
    std::size_t fed = 0;
    for (auto j : order) {
      if (f.dst->pages_complete() > p) break;
      f.dst->on_data(p, j, view(f.src->packet_payload(p, j).value()), f.m);
      ++fed;
    }
    EXPECT_EQ(f.dst->pages_complete(), p + 1);
    EXPECT_EQ(fed, f.src->decode_threshold(p)) << "MDS: exactly k' packets";
  }
}

TEST(LrScheme, TamperedPacketRejectedEveryPage) {
  LrFixture f;
  ASSERT_TRUE(f.dst->on_signature(view(*f.src->signature_frame()), f.m));
  // Page 0 (Merkle-verified).
  Bytes p0 = f.src->packet_payload(0, 0).value();
  p0[1] ^= 1;
  EXPECT_EQ(f.dst->on_data(0, 0, view(p0), f.m), DataStatus::kRejected);
  // Complete page 0 honestly, then tamper a content packet.
  for (std::uint32_t j = 0; j < f.src->packets_in_page(0); ++j) {
    if (f.dst->pages_complete() > 0) break;
    f.dst->on_data(0, j, view(f.src->packet_payload(0, j).value()), f.m);
  }
  ASSERT_GE(f.dst->pages_complete(), 1u);
  Bytes p1 = f.src->packet_payload(1, 5).value();
  p1[0] ^= 0x40;
  EXPECT_EQ(f.dst->on_data(1, 5, view(p1), f.m), DataStatus::kRejected);
  EXPECT_GE(f.m.auth_failures, 2u);
}

TEST(LrScheme, SplicedIndexRejected) {
  LrFixture f;
  ASSERT_TRUE(f.dst->on_signature(view(*f.src->signature_frame()), f.m));
  const auto payload = f.src->packet_payload(0, 2).value();
  EXPECT_EQ(f.dst->on_data(0, 3, view(payload), f.m), DataStatus::kRejected);
}

TEST(LrScheme, CompletedReceiverServesByReencoding) {
  // B completes from A (which itself decoded from the base station),
  // exercising page re-encoding and Merkle path regeneration end-to-end.
  LrFixture f;
  pump_all(*f.src, *f.dst, f.m);
  ASSERT_TRUE(f.dst->image_complete());

  auto third = make_lr_receiver(f.params, f.signer.root_public_key());
  sim::NodeMetrics m2;
  ASSERT_TRUE(third->on_signature(view(f.dst->signature_frame().value()), m2));
  const std::uint32_t pages = f.dst->num_pages();
  for (std::uint32_t p = 0; p < pages; ++p) {
    // Serve from the TAIL so B must use re-encoded parity packets.
    const std::size_t count = f.dst->packets_in_page(p);
    for (std::size_t j = count; j-- > 0;) {
      if (third->pages_complete() > p) break;
      const auto payload =
          f.dst->packet_payload(p, static_cast<std::uint32_t>(j));
      ASSERT_TRUE(payload.has_value());
      EXPECT_NE(third->on_data(p, static_cast<std::uint32_t>(j),
                               view(*payload), m2),
                DataStatus::kRejected);
    }
  }
  ASSERT_TRUE(third->image_complete());
  EXPECT_EQ(third->assemble_image(), f.image);
}

TEST(LrScheme, ReencodedPacketsMatchBaseStation) {
  // The hash chain only works if every node regenerates bit-identical
  // packets; compare a completed receiver's packets with the source's.
  LrFixture f;
  pump_all(*f.src, *f.dst, f.m);
  ASSERT_TRUE(f.dst->image_complete());
  for (std::uint32_t p = 0; p < f.src->num_pages(); ++p) {
    for (std::uint32_t j = 0; j < f.src->packets_in_page(p); ++j) {
      EXPECT_EQ(f.dst->packet_payload(p, j), f.src->packet_payload(p, j))
          << "page " << p << " idx " << j;
    }
  }
}

TEST(LrScheme, FuturePagePacketsAreStale) {
  LrFixture f;
  ASSERT_TRUE(f.dst->on_signature(view(*f.src->signature_frame()), f.m));
  const auto payload = f.src->packet_payload(1, 0).value();
  EXPECT_EQ(f.dst->on_data(1, 0, view(payload), f.m), DataStatus::kStale);
}

TEST(LrScheme, WorksWithRlcCodecs) {
  for (auto codec : {erasure::CodecKind::kRlcGf2,
                     erasure::CodecKind::kRlcGf256}) {
    CommonParams p = small_params();
    p.codec = codec;
    p.delta = 2;
    LrFixture f(p);
    pump_all(*f.src, *f.dst, f.m);
    ASSERT_TRUE(f.dst->image_complete());
    EXPECT_EQ(f.dst->assemble_image(), f.image);
  }
}

TEST(LrScheme, PaperScaleParameters) {
  CommonParams p;  // defaults: k=32, n=48, payload 64
  p.puzzle_strength = 4;
  LrFixture f(p, 20 * 1024);
  pump_all(*f.src, *f.dst, f.m);
  ASSERT_TRUE(f.dst->image_complete());
  EXPECT_EQ(f.dst->assemble_image(), f.image);
}

TEST(LrScheme, HigherRateNeedsMorePages) {
  // Fig. 6 mechanism: larger n shrinks per-page capacity.
  CommonParams p56 = small_params();
  CommonParams p12 = small_params();
  p56.n = 16;
  crypto::MultiKeySigner s1(view(kSeed), 1), s2(view(kSeed), 1);
  const Bytes image = test_image(3000, 14);
  auto src_wide = make_lr_source(p56, image, s1);
  auto src_narrow = make_lr_source(p12, image, s2);
  EXPECT_GT(src_wide->num_pages(), src_narrow->num_pages());
}

TEST(LrScheme, RejectsGeometryWhereHashesDontFit) {
  CommonParams p = small_params();
  p.k = 2;
  p.n = 12;  // 12 * 8 = 96 hash bytes > 2 * 32 page bytes
  EXPECT_THROW(core::validate_lr_params(p), std::logic_error);
}

}  // namespace
}  // namespace lrs
