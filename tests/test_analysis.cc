// Analytical models (§V): closed-form Seluge expectation cross-checked
// against independent Monte Carlo, ACK-based LR-Seluge model sanity and
// monotonicity properties used by the Fig. 3 harness.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/one_hop.h"
#include "util/rng.h"

namespace lrs::analysis {
namespace {

TEST(SelugeModel, NoLossMeansOneTransmissionPerPacket) {
  EXPECT_DOUBLE_EQ(seluge_expected_data_tx(32, 20, 0.0), 32.0);
}

TEST(SelugeModel, SingleReceiverMatchesGeometricMean) {
  // One receiver: E[G] = 1 / (1 - p) per packet.
  const double p = 0.3;
  EXPECT_NEAR(seluge_expected_data_tx(1, 1, p), 1.0 / (1.0 - p), 1e-9);
  EXPECT_NEAR(seluge_expected_data_tx(10, 1, p), 10.0 / (1.0 - p), 1e-8);
}

TEST(SelugeModel, MatchesMonteCarlo) {
  const std::size_t k = 16, receivers = 10;
  const double p = 0.25;
  const double analytic = seluge_expected_data_tx(k, receivers, p);

  Rng rng(123);
  const int trials = 20000;
  double total = 0;
  for (int t = 0; t < trials; ++t) {
    for (std::size_t pkt = 0; pkt < k; ++pkt) {
      // Transmissions of one packet = max over receivers of geometric.
      std::uint64_t worst = 0;
      for (std::size_t i = 0; i < receivers; ++i)
        worst = std::max(worst, rng.geometric(1.0 - p));
      total += static_cast<double>(worst);
    }
  }
  EXPECT_NEAR(total / trials, analytic, analytic * 0.02);
}

TEST(SelugeModel, IncreasesWithLossAndReceivers) {
  double prev = 0;
  for (double p : {0.0, 0.1, 0.2, 0.3, 0.4}) {
    const double v = seluge_expected_data_tx(32, 20, p);
    EXPECT_GT(v, prev);
    prev = v;
  }
  EXPECT_GT(seluge_expected_data_tx(32, 30, 0.2),
            seluge_expected_data_tx(32, 10, 0.2));
}

TEST(SelugeModel, HeterogeneousLossDominatedByWorstReceiver) {
  const std::vector<double> mixed{0.05, 0.1, 0.4};
  const double v = seluge_expected_data_tx(8, mixed);
  EXPECT_GT(v, seluge_expected_data_tx(8, 3, 0.05));
  EXPECT_GT(v, seluge_expected_data_tx(8, 1, 0.4) - 1e-9);
}

TEST(AckLrModel, NoLossSendsExactlyKprime) {
  AckLrModel model;
  model.k_prime = 32;
  model.n = 48;
  model.receivers = 20;
  model.loss = 0.0;
  model.trials = 100;
  EXPECT_DOUBLE_EQ(model.evaluate(), 32.0);
  EXPECT_DOUBLE_EQ(model.expected_rounds(), 1.0);
}

TEST(AckLrModel, BoundedBelowByKprime) {
  AckLrModel model;
  model.k_prime = 16;
  model.n = 24;
  model.receivers = 5;
  model.loss = 0.2;
  model.trials = 2000;
  EXPECT_GE(model.evaluate(), 16.0);
}

TEST(AckLrModel, IncreasesWithLoss) {
  AckLrModel a, b;
  a.k_prime = b.k_prime = 16;
  a.n = b.n = 24;
  a.receivers = b.receivers = 10;
  a.trials = b.trials = 4000;
  a.loss = 0.1;
  b.loss = 0.35;
  EXPECT_LT(a.evaluate(), b.evaluate());
}

TEST(AckLrModel, BeatsSelugeUnderLoss) {
  // The headline comparison: for moderate loss and redundancy, the
  // erasure-coded scheme transmits fewer data packets per page (for the
  // same useful payload k).
  const std::size_t k = 32, n = 48, receivers = 20;
  const double p = 0.2;
  AckLrModel lr;
  lr.k_prime = k;
  lr.n = n;
  lr.receivers = receivers;
  lr.loss = p;
  lr.trials = 4000;
  EXPECT_LT(lr.evaluate(), seluge_expected_data_tx(k, receivers, p));
}

TEST(AckLrModel, LessSensitiveToReceiversThanSeluge) {
  // Fig. 5 shape: Seluge grows faster with N than LR-Seluge.
  const double p = 0.1;
  AckLrModel lr_small, lr_big;
  lr_small.k_prime = lr_big.k_prime = 32;
  lr_small.n = lr_big.n = 48;
  lr_small.loss = lr_big.loss = p;
  lr_small.trials = lr_big.trials = 3000;
  lr_small.receivers = 5;
  lr_big.receivers = 30;
  const double lr_growth = lr_big.evaluate() / lr_small.evaluate();
  const double seluge_growth = seluge_expected_data_tx(32, 30, p) /
                               seluge_expected_data_tx(32, 5, p);
  EXPECT_LT(lr_growth, seluge_growth);
}

TEST(AckLrModel, HeterogeneousLossSupported) {
  AckLrModel model;
  model.k_prime = 8;
  model.n = 12;
  model.loss_per_receiver = {0.0, 0.3};
  model.trials = 2000;
  const double v = model.evaluate();
  EXPECT_GE(v, 8.0);
  EXPECT_LT(v, 20.0);
}

TEST(OneRoundCompletion, MatchesBinomialEdgeCases) {
  EXPECT_DOUBLE_EQ(one_round_completion_probability(8, 8, 0.0), 1.0);
  EXPECT_NEAR(one_round_completion_probability(1, 1, 0.3), 0.7, 1e-12);
  // k'=1, n=2: 1 - p^2.
  EXPECT_NEAR(one_round_completion_probability(1, 2, 0.3), 1 - 0.09, 1e-12);
}

TEST(OneRoundCompletion, StepBehindFig3) {
  // With k'=32, n=48: one round almost always suffices at p=0.2 but almost
  // never at p=0.5 — the step the paper sees between p=0.3 and p=0.4.
  EXPECT_GT(one_round_completion_probability(32, 48, 0.2), 0.95);
  EXPECT_NEAR(one_round_completion_probability(32, 48, 0.4), 0.214, 0.01);
  EXPECT_LT(one_round_completion_probability(32, 48, 0.5), 0.05);
}

TEST(OneRoundCompletion, MonotoneInP) {
  double prev = 1.1;
  for (double p : {0.05, 0.15, 0.25, 0.35, 0.45}) {
    const double v = one_round_completion_probability(32, 48, p);
    EXPECT_LT(v, prev);
    prev = v;
  }
}

}  // namespace
}  // namespace lrs::analysis
