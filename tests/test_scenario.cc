// Scenario subsystem: topology generators (determinism, connectivity,
// geometry), per-link PRR jitter, the .scn parser (golden round-trips of
// the checked-in library, strict rejection), canonical serialization, and
// the Scenario -> ExperimentConfig compiler.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "sim/partition.h"
#include "sim/scenario/generators.h"
#include "sim/scenario/scenario.h"
#include "sim/time.h"

namespace lrs {
namespace {

namespace fs = std::filesystem;
using scenario::ChannelSpec;
using scenario::Scenario;
using sim::TopologyKind;
using sim::TopologySpec;

// ---------------------------------------------------------------------------
// Topology generators
// ---------------------------------------------------------------------------

TEST(GeneratorTest, KindNamesRoundTrip) {
  for (const TopologyKind k :
       {TopologyKind::kStar, TopologyKind::kGrid,
        TopologyKind::kRandomGeometric, TopologyKind::kClustered,
        TopologyKind::kLine, TopologyKind::kRing, TopologyKind::kCells}) {
    TopologyKind back{};
    ASSERT_TRUE(sim::topology_kind_from_name(sim::topology_kind_name(k),
                                             &back));
    EXPECT_EQ(back, k);
  }
  TopologyKind out{};
  EXPECT_FALSE(sim::topology_kind_from_name("torus", &out));
}

TEST(GeneratorTest, NodeCountMatchesBuiltTopology) {
  std::vector<TopologySpec> specs(6);
  specs[0].kind = TopologyKind::kStar;
  specs[0].receivers = 7;
  specs[1].kind = TopologyKind::kGrid;
  specs[1].rows = 4;
  specs[1].cols = 5;
  specs[2].kind = TopologyKind::kRandomGeometric;
  specs[2].nodes = 20;
  specs[3].kind = TopologyKind::kClustered;
  specs[3].nodes = 18;
  specs[3].clusters = 3;
  specs[4].kind = TopologyKind::kLine;
  specs[4].nodes = 9;
  specs[5].kind = TopologyKind::kRing;
  specs[5].nodes = 11;
  specs[5].radius = 30.0;
  for (const auto& spec : specs) {
    const auto topo = sim::build_topology(spec);
    EXPECT_EQ(topo.size(), spec.node_count());
    EXPECT_TRUE(topo.connected());
  }
}

TEST(GeneratorTest, GeometricIsDeterministicPerSeed) {
  TopologySpec spec;
  spec.kind = TopologyKind::kRandomGeometric;
  spec.nodes = 30;
  spec.width = 140.0;
  spec.height = 140.0;
  spec.seed = 42;
  const auto a = sim::build_topology(spec);
  const auto b = sim::build_topology(spec);
  ASSERT_EQ(a.size(), b.size());
  for (NodeId i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.position(i).x, b.position(i).x);
    EXPECT_EQ(a.position(i).y, b.position(i).y);
  }
  // A different seed yields a different placement.
  spec.seed = 43;
  const auto c = sim::build_topology(spec);
  bool any_differ = false;
  for (NodeId i = 0; i < a.size(); ++i) {
    any_differ |= a.position(i).x != c.position(i).x;
  }
  EXPECT_TRUE(any_differ);
}

TEST(GeneratorTest, GeometricPlacementsStayInAreaAndConnected) {
  TopologySpec spec;
  spec.kind = TopologyKind::kRandomGeometric;
  spec.nodes = 25;
  spec.width = 120.0;
  spec.height = 90.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    spec.seed = seed;
    const auto topo = sim::build_topology(spec);
    EXPECT_TRUE(topo.connected()) << "seed " << seed;
    for (NodeId i = 0; i < topo.size(); ++i) {
      EXPECT_GE(topo.position(i).x, 0.0);
      EXPECT_LE(topo.position(i).x, spec.width);
      EXPECT_GE(topo.position(i).y, 0.0);
      EXPECT_LE(topo.position(i).y, spec.height);
    }
  }
}

TEST(GeneratorTest, ClusteredNodesScatterAroundHotspots) {
  TopologySpec spec;
  spec.kind = TopologyKind::kClustered;
  spec.nodes = 24;
  spec.clusters = 4;
  spec.cluster_radius = 8.0;
  spec.width = 100.0;
  spec.height = 100.0;
  spec.seed = 5;
  const auto topo = sim::build_topology(spec);
  EXPECT_TRUE(topo.connected());
  // Every node must be within cluster_radius of SOME other node's position
  // cloud — weak but placement-independent: nodes of one hotspot are
  // pairwise within 2 * cluster_radius.
  std::size_t close_pairs = 0;
  for (NodeId i = 0; i < topo.size(); ++i) {
    for (NodeId j = i + 1; j < topo.size(); ++j) {
      if (topo.distance(i, j) <= 2.0 * spec.cluster_radius) ++close_pairs;
    }
  }
  // Round-robin assignment puts ~nodes/clusters nodes per hotspot; each
  // hotspot contributes ~C(6,2) close pairs.
  EXPECT_GE(close_pairs, spec.nodes);
}

TEST(GeneratorTest, LineAndRingGeometry) {
  TopologySpec line;
  line.kind = TopologyKind::kLine;
  line.nodes = 6;
  line.spacing = 12.5;
  const auto lt = sim::build_topology(line);
  for (NodeId i = 0; i + 1 < lt.size(); ++i) {
    EXPECT_DOUBLE_EQ(lt.distance(i, i + 1), 12.5);
  }
  EXPECT_DOUBLE_EQ(lt.distance(0, 5), 5 * 12.5);

  TopologySpec ring;
  ring.kind = TopologyKind::kRing;
  ring.nodes = 8;
  ring.radius = 25.0;
  const auto rt = sim::build_topology(ring);
  for (NodeId i = 0; i < rt.size(); ++i) {
    const double r = std::hypot(rt.position(i).x, rt.position(i).y);
    EXPECT_NEAR(r, 25.0, 1e-9);
  }
  // All adjacent chords are equal.
  const double chord = rt.distance(0, 1);
  for (NodeId i = 0; i + 1 < rt.size(); ++i) {
    EXPECT_NEAR(rt.distance(i, i + 1), chord, 1e-9);
  }
}

TEST(GeneratorTest, RejectsDegenerateSpecs) {
  TopologySpec spec;
  spec.kind = TopologyKind::kLine;
  spec.nodes = 5;
  spec.spacing = 0.0;
  EXPECT_THROW(sim::build_topology(spec), std::logic_error);

  TopologySpec sparse;
  sparse.kind = TopologyKind::kRandomGeometric;
  sparse.nodes = 3;
  sparse.width = 5000.0;
  sparse.height = 5000.0;
  // Three nodes in a 5 km square essentially never connect: the rejection
  // loop must give up loudly instead of looping forever.
  EXPECT_THROW(sim::build_topology(sparse), std::logic_error);
}

// ---------------------------------------------------------------------------
// Per-link PRR jitter
// ---------------------------------------------------------------------------

TEST(GeneratorTest, CellsLatticeIsRadioIsolatedAndCellMajor) {
  TopologySpec spec;
  spec.kind = TopologyKind::kCells;
  spec.rows = 2;
  spec.cols = 2;
  spec.nodes = 24;  // 6 per cell
  spec.width = 40.0;
  spec.height = 40.0;
  spec.seed = 3;
  const auto topo = sim::build_topology(spec);
  ASSERT_EQ(topo.size(), 24u);
  EXPECT_FALSE(topo.connected());

  // Exactly one island per cell, ids cell-major: cell c owns [6c, 6c+6).
  const auto islands = sim::radio_islands(topo);
  ASSERT_EQ(islands.size(), 4u);
  for (std::size_t c = 0; c < islands.size(); ++c) {
    ASSERT_EQ(islands[c].size(), 6u);
    for (std::size_t k = 0; k < 6; ++k) {
      EXPECT_EQ(islands[c][k], static_cast<NodeId>(6 * c + k));
    }
  }

  // Deterministic in the seed.
  const auto again = sim::build_topology(spec);
  for (NodeId i = 0; i < topo.size(); ++i) {
    EXPECT_EQ(topo.position(i).x, again.position(i).x);
    EXPECT_EQ(topo.position(i).y, again.position(i).y);
  }
}

TEST(GeneratorTest, ConnectedTopologyIsOneIsland) {
  TopologySpec spec;
  spec.kind = TopologyKind::kRandomGeometric;
  spec.nodes = 20;
  const auto topo = sim::build_topology(spec);
  const auto islands = sim::radio_islands(topo);
  ASSERT_EQ(islands.size(), 1u);
  ASSERT_EQ(islands[0].size(), 20u);
  for (NodeId i = 0; i < 20; ++i) EXPECT_EQ(islands[0][i], i);
}

TEST(JitterTest, ScalesPrrWithinBandDeterministically) {
  TopologySpec spec;
  spec.kind = TopologyKind::kGrid;
  spec.rows = 4;
  spec.cols = 4;
  spec.spacing = 10.0;
  const auto base = sim::build_topology(spec);
  spec.prr_jitter = 0.3;
  spec.jitter_seed = 99;
  const auto jittered = sim::build_topology(spec);
  const auto jittered2 = sim::build_topology(spec);

  bool any_scaled = false;
  for (NodeId a = 0; a < base.size(); ++a) {
    for (NodeId b = 0; b < base.size(); ++b) {
      if (a == b) continue;
      const double p0 = base.prr(a, b);
      const double p1 = jittered.prr(a, b);
      EXPECT_EQ(p1, jittered2.prr(a, b));  // deterministic
      if (p0 == 0.0) {
        EXPECT_EQ(p1, 0.0);  // out-of-range links stay dead
      } else {
        EXPECT_LE(p1, p0);
        EXPECT_GE(p1, p0 * (1.0 - spec.prr_jitter) - 1e-12);
        if (p1 != p0) any_scaled = true;
      }
    }
  }
  EXPECT_TRUE(any_scaled);
}

TEST(JitterTest, PreservesNeighborSets) {
  TopologySpec spec;
  spec.kind = TopologyKind::kGrid;
  spec.rows = 3;
  spec.cols = 3;
  spec.spacing = 15.0;
  const auto base = sim::build_topology(spec);
  spec.prr_jitter = 0.5;
  const auto jittered = sim::build_topology(spec);
  for (NodeId i = 0; i < base.size(); ++i) {
    EXPECT_EQ(base.neighbors(i), jittered.neighbors(i));
  }
}

// ---------------------------------------------------------------------------
// Parser: golden round-trips of the checked-in library
// ---------------------------------------------------------------------------

std::vector<std::string> library_paths() {
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(LRS_SCENARIO_DIR)) {
    if (entry.path().extension() == ".scn") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

TEST(ScenarioGoldenTest, EveryCheckedInScenarioRoundTrips) {
  const auto paths = library_paths();
  ASSERT_GE(paths.size(), 10u) << "scenario library went missing";
  for (const auto& path : paths) {
    std::string error;
    const auto s = scenario::load_scenario_file(path, &error);
    ASSERT_TRUE(s.has_value()) << error;
    const std::string canon = scenario::canonical_scenario(*s);
    const auto reparsed = scenario::parse_scenario(canon, &error);
    ASSERT_TRUE(reparsed.has_value()) << path << ": " << error << "\n"
                                      << canon;
    // Canonicalization is idempotent: the canonical form of the reparsed
    // scenario is byte-identical, i.e. parse . canonical is the identity
    // on canonical text.
    EXPECT_EQ(scenario::canonical_scenario(*reparsed), canon) << path;
  }
}

TEST(ScenarioGoldenTest, EveryCheckedInScenarioCompiles) {
  for (const auto& path : library_paths()) {
    std::string error;
    const auto s = scenario::load_scenario_file(path, &error);
    ASSERT_TRUE(s.has_value()) << error;
    const auto config = scenario::scenario_config(*s);
    // The topology must actually build (connected placement found, valid
    // parameters) for every shipped scenario.
    const auto topo = sim::build_topology(config.topo_spec);
    EXPECT_EQ(topo.size(), s->topo.node_count()) << path;
    EXPECT_GE(s->expected_complete(), 1u) << path;
  }
}

// ---------------------------------------------------------------------------
// Parser: acceptance and strict rejection
// ---------------------------------------------------------------------------

constexpr const char* kMinimal = "[scenario]\nname = minimal\n";

TEST(ScenarioParseTest, MinimalFileGetsDefaults) {
  std::string error;
  const auto s = scenario::parse_scenario(kMinimal, &error);
  ASSERT_TRUE(s.has_value()) << error;
  EXPECT_EQ(s->name, "minimal");
  EXPECT_EQ(s->scheme, core::Scheme::kLrSeluge);
  EXPECT_EQ(s->topo.kind, TopologyKind::kStar);
  EXPECT_EQ(s->channel.model, ChannelSpec::Model::kPerfect);
  EXPECT_EQ(s->repeats, 3u);
  EXPECT_TRUE(s->check_invariants);
}

TEST(ScenarioParseTest, CommentsAndWhitespaceIgnored) {
  std::string error;
  const auto s = scenario::parse_scenario(
      "# full-line comment\n"
      "  [scenario]  \n"
      "  name = commented   # trailing comment\n"
      "\n"
      "[trial]\n"
      "repeats = 5\n",
      &error);
  ASSERT_TRUE(s.has_value()) << error;
  EXPECT_EQ(s->name, "commented");
  EXPECT_EQ(s->repeats, 5u);
}

void expect_rejected(const std::string& text, const std::string& fragment) {
  std::string error;
  const auto s = scenario::parse_scenario(text, &error);
  EXPECT_FALSE(s.has_value()) << "accepted: " << text;
  EXPECT_NE(error.find(fragment), std::string::npos)
      << "error '" << error << "' does not mention '" << fragment << "'";
}

TEST(ScenarioParseTest, RejectsMalformedInput) {
  expect_rejected("[scenario\nname = x\n", "line 1");
  expect_rejected("[nonsense]\n", "unknown section");
  expect_rejected("name = orphan\n", "outside any section");
  expect_rejected("[scenario]\nname = x\nbogus_key = 1\n", "unknown key");
  expect_rejected("[scenario]\nname = x\nk\n", "expected key = value");
  expect_rejected("[scenario]\nname = x\nk = banana\n", "invalid value");
  expect_rejected("[scenario]\nname = x\nk = 4\nk = 5\n", "duplicate key");
  expect_rejected("[scenario]\nname = x\nscheme = bittorrent\n",
                  "unknown scheme");
  expect_rejected("[scenario]\nname = x\ncodec = turbo\n", "unknown codec");
  expect_rejected("[scenario]\nname = x\n[topology]\nkind = torus\n",
                  "unknown topology kind");
  expect_rejected("[scenario]\nname = x\n[channel]\nmodel = quantum\n",
                  "unknown channel model");
}

TEST(ScenarioParseTest, RejectsOutOfRangeValues) {
  expect_rejected("[scenario]\nname = Bad Name\n", "name");
  expect_rejected("[scenario]\nname = x\nk = 8\nn = 4\n", "k <= n");
  expect_rejected("[scenario]\nname = x\nn0 = 12\nk0 = 5\n", "power of two");
  expect_rejected("[scenario]\nname = x\n[channel]\nmodel = uniform\n"
                  "loss = 1.5\n",
                  "[0, 1]");
  expect_rejected("[scenario]\nname = x\n[topology]\nprr_jitter = 1\n",
                  "prr_jitter");
  expect_rejected("[scenario]\nname = x\n[topology]\nouter_radius = 10\n",
                  "outer_radius");
  expect_rejected(
      "[scenario]\nname = x\n[channel]\nmodel = gilbert_elliott\n"
      "good_dwell_ms = 0\n",
      "dwell");
}

TEST(ScenarioParseTest, RejectsInconsistentCrossFieldCombinations) {
  // per_node vector shorter than the topology.
  expect_rejected(
      "[scenario]\nname = x\n[topology]\nkind = star\nreceivers = 4\n"
      "[channel]\nmodel = per_node\nper_node = 0.1,0.2\n",
      "5-node topology");
  // Schedule events must name real receivers (not the base, not beyond).
  expect_rejected(
      "[scenario]\nname = x\n[topology]\nreceivers = 3\n[faults]\n"
      "crash = 9@1000+500\n",
      "crash node 9");
  expect_rejected(
      "[scenario]\nname = x\n[faults]\nlate_joiner = 0@1000\n",
      "late_joiner node 0");
  expect_rejected("[scenario]\nname = x\n[faults]\ncrash = 1@1000+0\n",
                  "downtime");
  expect_rejected(
      "[scenario]\nname = x\n[faults]\nduplicate_prob = 0.5\n"
      "max_copies = 1\n",
      "max_copies");
  // Cells: node count must split evenly into non-trivial cells.
  expect_rejected(
      "[scenario]\nname = x\n[topology]\nkind = cells\nnodes = 25\n"
      "rows = 2\ncols = 3\n",
      "divisible");
  expect_rejected(
      "[scenario]\nname = x\n[topology]\nkind = cells\nnodes = 6\n"
      "rows = 2\ncols = 3\n",
      "two nodes per cell");
  // Island execution cannot honor whole-network fault schedules.
  expect_rejected(
      "[scenario]\nname = x\n[faults]\ncrash = 1@1000+500\n"
      "[trial]\nislands = true\n",
      "islands");
  expect_rejected(
      "[scenario]\nname = x\n[faults]\nearly_sleeper = 2@0\n"
      "[trial]\nislands = true\n",
      "islands");
}

// ---------------------------------------------------------------------------
// Canonical serialization
// ---------------------------------------------------------------------------

TEST(ScenarioCanonicalTest, EmitsOnlyRelevantKeys) {
  std::string error;
  const auto s = scenario::parse_scenario(kMinimal, &error);
  ASSERT_TRUE(s.has_value()) << error;
  const std::string canon = scenario::canonical_scenario(*s);
  // Star topology on a perfect channel with no faults: no grid keys, no
  // loss keys, no [faults] section.
  EXPECT_NE(canon.find("kind = star"), std::string::npos);
  EXPECT_NE(canon.find("receivers = 20"), std::string::npos);
  EXPECT_EQ(canon.find("rows ="), std::string::npos);
  EXPECT_EQ(canon.find("loss ="), std::string::npos);
  EXPECT_EQ(canon.find("[faults]"), std::string::npos);
  EXPECT_EQ(canon.find("description ="), std::string::npos);
}

TEST(ScenarioCanonicalTest, CellsAndIslandsRoundTrip) {
  std::string error;
  const auto s = scenario::parse_scenario(
      "[scenario]\nname = fleet\n[topology]\nkind = cells\nnodes = 24\n"
      "rows = 2\ncols = 3\nwidth = 35\nheight = 35\n"
      "[trial]\nislands = true\n",
      &error);
  ASSERT_TRUE(s.has_value()) << error;
  EXPECT_TRUE(s->islands);
  const std::string canon = scenario::canonical_scenario(*s);
  EXPECT_NE(canon.find("kind = cells"), std::string::npos);
  EXPECT_NE(canon.find("rows = 2"), std::string::npos);
  EXPECT_NE(canon.find("cols = 3"), std::string::npos);
  EXPECT_NE(canon.find("islands = true"), std::string::npos);
  const auto back = scenario::parse_scenario(canon, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(scenario::canonical_scenario(*back), canon);

  // islands defaults to false and is then omitted from canonical form.
  const auto plain = scenario::parse_scenario(kMinimal, &error);
  ASSERT_TRUE(plain.has_value()) << error;
  EXPECT_FALSE(plain->islands);
  EXPECT_EQ(scenario::canonical_scenario(*plain).find("islands"),
            std::string::npos);
}

TEST(ScenarioConfigTest, IslandsMapToConfigAndExpectedComplete) {
  std::string error;
  const auto s = scenario::parse_scenario(
      "[scenario]\nname = fleet\n[topology]\nkind = cells\nnodes = 24\n"
      "rows = 2\ncols = 3\n[trial]\nislands = true\n",
      &error);
  ASSERT_TRUE(s.has_value()) << error;
  const auto cfg = scenario::scenario_config(*s);
  EXPECT_TRUE(cfg.islands);
  // Six cells = six bases: only 18 of 24 nodes are receivers.
  EXPECT_EQ(s->expected_complete(), 18u);

  // Without island execution a cells topology keeps the single base.
  auto classic = *s;
  classic.islands = false;
  EXPECT_EQ(classic.expected_complete(), 23u);
  EXPECT_FALSE(scenario::scenario_config(classic).islands);
}

TEST(ScenarioCanonicalTest, ShortestRoundTripDoubles) {
  std::string error;
  auto s = scenario::parse_scenario(
      "[scenario]\nname = x\n[topology]\nkind = grid\nrows = 2\ncols = 2\n"
      "spacing = 0.1\n",
      &error);
  ASSERT_TRUE(s.has_value()) << error;
  const std::string canon = scenario::canonical_scenario(*s);
  EXPECT_NE(canon.find("spacing = 0.1\n"), std::string::npos) << canon;
  const auto back = scenario::parse_scenario(canon, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->topo.spacing, 0.1);
}

TEST(ScenarioCanonicalTest, NormalizesEventOrder) {
  std::string error;
  const auto s = scenario::parse_scenario(
      "[scenario]\nname = x\n[topology]\nreceivers = 6\n[faults]\n"
      "crash = 5@9000+100\ncrash = 2@1000+100\nearly_sleeper = 4@7000\n"
      "early_sleeper = 1@3000\n",
      &error);
  ASSERT_TRUE(s.has_value()) << error;
  ASSERT_EQ(s->faults.crashes.size(), 2u);
  EXPECT_EQ(s->faults.crashes[0].node, 2u);  // sorted by time
  ASSERT_EQ(s->early_sleepers.size(), 2u);
  EXPECT_EQ(s->early_sleepers[0].node, 1u);
  const std::string canon = scenario::canonical_scenario(*s);
  EXPECT_LT(canon.find("crash = 2@"), canon.find("crash = 5@"));
}

// ---------------------------------------------------------------------------
// Scenario -> ExperimentConfig
// ---------------------------------------------------------------------------

TEST(ScenarioConfigTest, MapsSchemeGeometryAndTrialBlock) {
  std::string error;
  const auto s = scenario::parse_scenario(
      "[scenario]\nname = x\nscheme = seluge\nimage_size = 4096\n"
      "payload_size = 48\nk = 16\nn = 24\nk0 = 4\nn0 = 8\n"
      "codec = rlc256\ndelta = 2\npuzzle_strength = 6\n"
      "greedy_scheduler = false\n"
      "[trial]\nseed = 77\ntime_limit_s = 120.5\ncheck_invariants = false\n",
      &error);
  ASSERT_TRUE(s.has_value()) << error;
  const auto c = scenario::scenario_config(*s);
  EXPECT_EQ(c.scheme, core::Scheme::kSeluge);
  EXPECT_EQ(c.image_size, 4096u);
  EXPECT_EQ(c.params.payload_size, 48u);
  EXPECT_EQ(c.params.k, 16u);
  EXPECT_EQ(c.params.n, 24u);
  EXPECT_EQ(c.params.k0, 4u);
  EXPECT_EQ(c.params.n0, 8u);
  EXPECT_EQ(c.params.codec, erasure::CodecKind::kRlcGf256);
  EXPECT_EQ(c.params.delta, 2u);
  EXPECT_EQ(c.params.puzzle_strength, 6);
  EXPECT_FALSE(c.params.lr_greedy_scheduler);
  EXPECT_EQ(c.seed, 77u);
  EXPECT_EQ(c.time_limit, sim::from_seconds(120.5));
  EXPECT_FALSE(c.check_invariants);
  EXPECT_EQ(c.topo, core::ExperimentConfig::Topo::kSpec);
}

TEST(ScenarioConfigTest, SchedulesCompileToCrashEvents) {
  std::string error;
  const auto s = scenario::parse_scenario(
      "[scenario]\nname = x\n[topology]\nreceivers = 5\n[faults]\n"
      "late_joiner = 2@4000\nearly_sleeper = 3@2500\n",
      &error);
  ASSERT_TRUE(s.has_value()) << error;
  const auto c = scenario::scenario_config(*s);
  ASSERT_EQ(c.faults.crashes.size(), 2u);
  // Late joiner: down from t=0 until the join time.
  EXPECT_EQ(c.faults.crashes[0].node, 2u);
  EXPECT_EQ(c.faults.crashes[0].at, 0);
  EXPECT_EQ(c.faults.crashes[0].downtime, 4000 * sim::kMillisecond);
  // Early sleeper: powers off at its time and never returns (the window
  // end must stay far below the SimTime ceiling to avoid overflow).
  EXPECT_EQ(c.faults.crashes[1].node, 3u);
  EXPECT_EQ(c.faults.crashes[1].at, 2500 * sim::kMillisecond);
  EXPECT_GT(c.faults.crashes[1].downtime, 1000LL * 3600 * sim::kSecond);
  EXPECT_GT(c.faults.crashes[1].at + c.faults.crashes[1].downtime, 0);

  // The sleeper is excluded from the completion expectation.
  EXPECT_EQ(s->expected_complete(), 4u);
}

TEST(ScenarioConfigTest, DerivesPerNodeLossDeterministically) {
  const std::string text =
      "[scenario]\nname = x\n[topology]\nreceivers = 9\n[channel]\n"
      "model = per_node\nloss = 0.2\nloss_jitter = 0.1\nloss_seed = 5\n";
  std::string error;
  const auto s = scenario::parse_scenario(text, &error);
  ASSERT_TRUE(s.has_value()) << error;
  const auto c1 = scenario::scenario_config(*s);
  const auto c2 = scenario::scenario_config(*s);
  ASSERT_EQ(c1.per_node_loss.size(), 10u);  // base + 9 receivers
  EXPECT_EQ(c1.per_node_loss, c2.per_node_loss);
  std::set<double> distinct;
  for (const double p : c1.per_node_loss) {
    EXPECT_GE(p, 0.1 - 1e-12);
    EXPECT_LE(p, 0.3 + 1e-12);
    distinct.insert(p);
  }
  EXPECT_GT(distinct.size(), 1u);  // actually heterogeneous
}

TEST(ScenarioConfigTest, EndToEndSmallScenarioCompletes) {
  // Tiny star so the whole dissemination runs in well under a second.
  std::string error;
  const auto s = scenario::parse_scenario(
      "[scenario]\nname = smoke\nimage_size = 512\npayload_size = 32\n"
      "k = 4\nn = 6\nk0 = 2\nn0 = 4\npuzzle_strength = 2\n"
      "[topology]\nkind = star\nreceivers = 2\nmax_prr = 1\n"
      "[channel]\nmodel = uniform\nloss = 0.02\n"
      "[trial]\nrepeats = 1\nseed = 3\ntime_limit_s = 600\n",
      &error);
  ASSERT_TRUE(s.has_value()) << error;
  const auto r = core::run_experiment(scenario::scenario_config(*s));
  EXPECT_GE(r.completed, s->expected_complete());
  EXPECT_TRUE(r.images_match);
  EXPECT_EQ(r.invariant_violations, 0u);
}

}  // namespace
}  // namespace lrs
