// Rateless Deluge baseline: GF(256) incremental elimination, unbounded
// coefficient windows, fresh-packet service, end-to-end dissemination and
// its (deliberate) lack of packet authentication.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "erasure/gf256.h"
#include "erasure/matrix.h"
#include "proto/rateless.h"
#include "util/rng.h"

namespace lrs {
namespace {

using proto::CommonParams;
using proto::DataStatus;

CommonParams small_params() {
  CommonParams p;
  p.payload_size = 32;
  p.k = 8;
  p.n = 12;
  return p;
}

// ---------------------------------------------------------------------------
// Gf256Eliminator
// ---------------------------------------------------------------------------

TEST(Gf256EliminatorTest, SolvesIdentitySystem) {
  erasure::Gf256Eliminator e(3, 2);
  for (std::uint8_t i = 0; i < 3; ++i) {
    Bytes row(3, 0);
    row[i] = 1;
    Bytes payload{i, static_cast<std::uint8_t>(i * 2)};
    EXPECT_TRUE(e.add(view(row), view(payload)));
  }
  ASSERT_TRUE(e.complete());
  const auto sol = e.solve();
  for (std::uint8_t i = 0; i < 3; ++i) EXPECT_EQ(sol[i][0], i);
}

TEST(Gf256EliminatorTest, SolvesRandomDenseSystem) {
  Rng rng(1);
  const std::size_t k = 8, len = 16;
  std::vector<Bytes> blocks(k);
  for (auto& b : blocks) {
    b.resize(len);
    for (auto& v : b) v = static_cast<std::uint8_t>(rng.uniform(256));
  }
  erasure::Gf256Eliminator e(k, len);
  while (!e.complete()) {
    Bytes row(k);
    for (auto& c : row) c = static_cast<std::uint8_t>(rng.uniform(256));
    Bytes payload(len, 0);
    for (std::size_t j = 0; j < k; ++j)
      erasure::Gf256::addmul(MutByteView(payload.data(), len),
                             view(blocks[j]), row[j]);
    e.add(view(row), view(payload));
  }
  EXPECT_EQ(e.solve(), blocks);
}

TEST(Gf256EliminatorTest, RedundantRowsNotInnovative) {
  erasure::Gf256Eliminator e(2, 1);
  Bytes r1{1, 2}, p1{5};
  Bytes r2{2, 4}, p2{10};  // 2 * equation 1
  EXPECT_TRUE(e.add(view(r1), view(p1)));
  EXPECT_FALSE(e.add(view(r2), view(p2)));
  EXPECT_EQ(e.rank(), 1u);
}

TEST(Gf256EliminatorTest, SolveBeforeCompleteThrows) {
  erasure::Gf256Eliminator e(2, 1);
  Bytes r{1, 0}, p{1};
  e.add(view(r), view(p));
  EXPECT_THROW(e.solve(), std::logic_error);
}

// ---------------------------------------------------------------------------
// Rateless scheme state
// ---------------------------------------------------------------------------

TEST(RatelessScheme, SystematicTransferReassembles) {
  const auto params = small_params();
  const Bytes image = core::make_test_image(1500, 5);
  auto src = proto::make_rateless_source(params, image);
  auto dst = proto::make_rateless_receiver(params, image.size());
  sim::NodeMetrics m;
  for (std::uint32_t p = 0; p < src->num_pages(); ++p) {
    for (std::uint32_t j = 0; j < params.k; ++j) {
      if (dst->pages_complete() > p) break;
      dst->on_data(p, j, view(src->packet_payload(p, j).value()), m);
    }
  }
  ASSERT_TRUE(dst->image_complete());
  EXPECT_EQ(dst->assemble_image(), image);
}

TEST(RatelessScheme, ParityOnlyTransferReassembles) {
  // Feed ONLY coded combinations (no systematic packets) from arbitrary
  // window positions — the rateless property.
  const auto params = small_params();
  const Bytes image = core::make_test_image(1500, 6);
  auto src = proto::make_rateless_source(params, image);
  auto dst = proto::make_rateless_receiver(params, image.size());
  sim::NodeMetrics m;
  const auto window =
      static_cast<std::uint32_t>(proto::kRatelessWindowFactor * params.k);
  for (std::uint32_t p = 0; p < src->num_pages(); ++p) {
    for (std::uint32_t j = window - 1; j >= params.k; --j) {
      if (dst->pages_complete() > p) break;
      dst->on_data(p, j, view(src->packet_payload(p, j).value()), m);
    }
    EXPECT_EQ(dst->pages_complete(), p + 1) << "page " << p;
  }
  EXPECT_EQ(dst->assemble_image(), image);
}

TEST(RatelessScheme, DecodesFromAboutKPackets) {
  // Dense GF(256) combinations are innovative with overwhelming
  // probability: rank k is reached within k + 1 packets almost always.
  const auto params = small_params();
  const Bytes image = core::make_test_image(400, 7);
  auto src = proto::make_rateless_source(params, image);
  auto dst = proto::make_rateless_receiver(params, image.size());
  sim::NodeMetrics m;
  std::uint32_t fed = 0;
  for (std::uint32_t j = params.k; dst->pages_complete() == 0; ++j) {
    dst->on_data(0, j, view(src->packet_payload(0, j).value()), m);
    ++fed;
  }
  EXPECT_LE(fed, params.k + 2);
}

TEST(RatelessScheme, SenderHasFreshPacketsBeyondK) {
  const auto params = small_params();
  const Bytes image = core::make_test_image(400, 8);
  auto src = proto::make_rateless_source(params, image);
  const auto a = src->packet_payload(0, 20).value();
  const auto b = src->packet_payload(0, 21).value();
  EXPECT_NE(a, b);
  // Deterministic regeneration: same index -> same packet.
  EXPECT_EQ(src->packet_payload(0, 20).value(), a);
}

TEST(RatelessScheme, AcceptsForgedPayloads) {
  // The insecurity that motivates LR-Seluge: garbage parses fine and even
  // poisons the decoder.
  const auto params = small_params();
  auto dst = proto::make_rateless_receiver(params, 1500);
  sim::NodeMetrics m;
  const Bytes forged(params.payload_size, 0xba);
  EXPECT_NE(dst->on_data(0, 9, view(forged), m), DataStatus::kRejected);
  EXPECT_EQ(m.auth_failures, 0u);
}

TEST(RatelessScheme, EndToEndSimulation) {
  core::ExperimentConfig cfg;
  cfg.scheme = core::Scheme::kRatelessDeluge;
  cfg.params = small_params();
  cfg.image_size = 2048;
  cfg.receivers = 5;
  cfg.loss_p = 0.25;
  cfg.timing.trickle.tau_low = 250 * sim::kMillisecond;
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.all_complete);
  EXPECT_TRUE(r.images_match);
}

TEST(RatelessScheme, MoreLossResilientThanDeluge) {
  core::ExperimentConfig rateless;
  rateless.scheme = core::Scheme::kRatelessDeluge;
  core::ExperimentConfig deluge;
  deluge.scheme = core::Scheme::kDeluge;
  for (auto* cfg : {&rateless, &deluge}) {
    cfg->params = small_params();
    cfg->params.payload_size = 64;
    cfg->params.k = 16;
    cfg->image_size = 6 * 1024;
    cfg->receivers = 8;
    cfg->loss_p = 0.3;
    cfg->timing.trickle.tau_low = 250 * sim::kMillisecond;
  }
  const auto r1 = run_experiment_avg(rateless, 3);
  const auto r2 = run_experiment_avg(deluge, 3);
  ASSERT_TRUE(r1.all_complete && r2.all_complete);
  EXPECT_LT(r1.data_packets, r2.data_packets);
}

}  // namespace
}  // namespace lrs
