// GF(256) field axioms, matrix algebra, and erasure-code properties:
// exhaustive loss patterns for small codes, randomized patterns for the
// paper's parameters, MDS guarantees for Reed-Solomon and rank behavior
// for the random linear codes.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <iterator>
#include <numeric>
#include <string>
#include <thread>

#include "erasure/code.h"
#include "erasure/gf256.h"
#include "erasure/matrix.h"
#include "sim/stats/stats.h"
#include "util/rng.h"

namespace lrs::erasure {
namespace {

// ---------------------------------------------------------------------------
// GF(256)
// ---------------------------------------------------------------------------

TEST(Gf256Test, MultiplicationCommutesAndAssociates) {
  Rng rng(1);
  for (int t = 0; t < 2000; ++t) {
    const auto a = static_cast<std::uint8_t>(rng.uniform(256));
    const auto b = static_cast<std::uint8_t>(rng.uniform(256));
    const auto c = static_cast<std::uint8_t>(rng.uniform(256));
    EXPECT_EQ(Gf256::mul(a, b), Gf256::mul(b, a));
    EXPECT_EQ(Gf256::mul(a, Gf256::mul(b, c)),
              Gf256::mul(Gf256::mul(a, b), c));
  }
}

TEST(Gf256Test, DistributesOverAddition) {
  Rng rng(2);
  for (int t = 0; t < 2000; ++t) {
    const auto a = static_cast<std::uint8_t>(rng.uniform(256));
    const auto b = static_cast<std::uint8_t>(rng.uniform(256));
    const auto c = static_cast<std::uint8_t>(rng.uniform(256));
    EXPECT_EQ(Gf256::mul(a, Gf256::add(b, c)),
              Gf256::add(Gf256::mul(a, b), Gf256::mul(a, c)));
  }
}

TEST(Gf256Test, IdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    const auto v = static_cast<std::uint8_t>(a);
    EXPECT_EQ(Gf256::mul(v, 1), v);
    EXPECT_EQ(Gf256::mul(v, 0), 0);
  }
}

TEST(Gf256Test, EveryNonzeroElementHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const auto v = static_cast<std::uint8_t>(a);
    EXPECT_EQ(Gf256::mul(v, Gf256::inv(v)), 1) << a;
    EXPECT_EQ(Gf256::div(v, v), 1) << a;
  }
}

TEST(Gf256Test, ZeroHasNoInverse) {
  EXPECT_THROW(Gf256::inv(0), std::logic_error);
  EXPECT_THROW(Gf256::div(1, 0), std::logic_error);
}

TEST(Gf256Test, KnownAesProducts) {
  // From the AES specification: {53} * {CA} = {01}.
  EXPECT_EQ(Gf256::mul(0x53, 0xCA), 0x01);
  EXPECT_EQ(Gf256::mul(0x02, 0x80), 0x1b);  // x * x^7 = x^8 = 0x1b
}

TEST(Gf256Test, PowMatchesRepeatedMultiplication) {
  Rng rng(3);
  for (int t = 0; t < 200; ++t) {
    const auto a = static_cast<std::uint8_t>(rng.uniform(255) + 1);
    const unsigned e = static_cast<unsigned>(rng.uniform(16));
    std::uint8_t expect = 1;
    for (unsigned i = 0; i < e; ++i) expect = Gf256::mul(expect, a);
    EXPECT_EQ(Gf256::pow(a, e), expect);
  }
}

TEST(Gf256Test, AddmulMatchesScalarLoop) {
  Rng rng(4);
  Bytes dst(64), src(64);
  for (auto& b : dst) b = static_cast<std::uint8_t>(rng.uniform(256));
  for (auto& b : src) b = static_cast<std::uint8_t>(rng.uniform(256));
  const std::uint8_t c = 0x8e;
  Bytes expect = dst;
  for (std::size_t i = 0; i < 64; ++i)
    expect[i] = Gf256::add(expect[i], Gf256::mul(src[i], c));
  Gf256::addmul(MutByteView(dst.data(), dst.size()), view(src), c);
  EXPECT_EQ(dst, expect);
}

// ---------------------------------------------------------------------------
// MatrixGf256
// ---------------------------------------------------------------------------

TEST(MatrixTest, IdentityInvertsToItself) {
  const auto id = MatrixGf256::identity(5);
  EXPECT_EQ(id.inverted().value(), id);
}

TEST(MatrixTest, RandomMatrixTimesInverseIsIdentity) {
  Rng rng(5);
  for (int t = 0; t < 50; ++t) {
    MatrixGf256 m(6, 6);
    for (std::size_t r = 0; r < 6; ++r)
      for (std::size_t c = 0; c < 6; ++c)
        m.set(r, c, static_cast<std::uint8_t>(rng.uniform(256)));
    auto inv = m.inverted();
    if (!inv) continue;  // singular random draw
    EXPECT_EQ(m.multiply(*inv), MatrixGf256::identity(6));
    EXPECT_EQ(inv->multiply(m), MatrixGf256::identity(6));
  }
}

TEST(MatrixTest, SingularMatrixReported) {
  MatrixGf256 m(3, 3);
  // Row 2 = row 0 + row 1.
  m.set(0, 0, 1);
  m.set(0, 1, 2);
  m.set(1, 1, 3);
  m.set(1, 2, 4);
  m.set(2, 0, 1);
  m.set(2, 1, Gf256::add(2, 3));
  m.set(2, 2, 4);
  EXPECT_FALSE(m.inverted().has_value());
  EXPECT_EQ(m.rank(), 2u);
}

TEST(MatrixTest, RankOfTallMatrix) {
  MatrixGf256 m(4, 2);
  m.set(0, 0, 1);
  m.set(1, 1, 1);
  m.set(2, 0, 5);
  m.set(3, 1, 9);
  EXPECT_EQ(m.rank(), 2u);
}

// ---------------------------------------------------------------------------
// Gf2Eliminator
// ---------------------------------------------------------------------------

TEST(Gf2EliminatorTest, SolvesIdentitySystem) {
  Gf2Eliminator e(3, 2);
  for (std::size_t i = 0; i < 3; ++i) {
    BitVec c(3);
    c.set(i);
    Bytes payload{static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(i)};
    EXPECT_TRUE(e.add(c, view(payload)));
  }
  ASSERT_TRUE(e.complete());
  const auto sol = e.solve();
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(sol[i][0], i);
}

TEST(Gf2EliminatorTest, RedundantEquationNotInnovative) {
  Gf2Eliminator e(2, 1);
  BitVec c01(2, true);
  Bytes sum{3};
  EXPECT_TRUE(e.add(c01, view(sum)));
  EXPECT_FALSE(e.add(c01, view(sum)));
  EXPECT_EQ(e.rank(), 1u);
}

TEST(Gf2EliminatorTest, SolvesMixedSystem) {
  // x0 ^ x1 = 3, x1 = 2  ->  x0 = 1.
  Gf2Eliminator e(2, 1);
  BitVec both(2, true);
  BitVec second(2);
  second.set(1);
  Bytes b3{3}, b2{2};
  EXPECT_TRUE(e.add(both, view(b3)));
  EXPECT_TRUE(e.add(second, view(b2)));
  ASSERT_TRUE(e.complete());
  const auto sol = e.solve();
  EXPECT_EQ(sol[0][0], 1);
  EXPECT_EQ(sol[1][0], 2);
}

// ---------------------------------------------------------------------------
// Erasure codes: shared property helpers
// ---------------------------------------------------------------------------

std::vector<Bytes> random_blocks(std::size_t k, std::size_t len,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Bytes> blocks(k);
  for (auto& b : blocks) {
    b.resize(len);
    for (auto& v : b) v = static_cast<std::uint8_t>(rng.uniform(256));
  }
  return blocks;
}

std::vector<Share> pick_shares(const std::vector<Bytes>& encoded,
                               const std::vector<std::size_t>& indices) {
  std::vector<Share> shares;
  for (auto i : indices) shares.push_back({i, encoded[i]});
  return shares;
}

TEST(RsCode, SystematicPrefix) {
  auto code = make_rs_code(4, 8);
  const auto blocks = random_blocks(4, 16, 1);
  const auto encoded = code->encode(blocks);
  ASSERT_EQ(encoded.size(), 8u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(encoded[i], blocks[i]);
}

TEST(RsCode, ExhaustiveLossPatternsSmall) {
  // Every subset of exactly k=3 out of n=6 shares must decode (MDS).
  auto code = make_rs_code(3, 6);
  const auto blocks = random_blocks(3, 8, 2);
  const auto encoded = code->encode(blocks);
  std::vector<std::size_t> idx{0, 1, 2, 3, 4, 5};
  std::vector<bool> mask(6, false);
  std::fill(mask.begin(), mask.begin() + 3, true);
  std::sort(mask.begin(), mask.end());
  do {
    std::vector<std::size_t> chosen;
    for (std::size_t i = 0; i < 6; ++i)
      if (mask[i]) chosen.push_back(i);
    const auto decoded = code->decode(pick_shares(encoded, chosen));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, blocks);
  } while (std::next_permutation(mask.begin(), mask.end()));
}

TEST(RsCode, InsufficientSharesReturnNullopt) {
  auto code = make_rs_code(4, 8);
  const auto blocks = random_blocks(4, 8, 3);
  const auto encoded = code->encode(blocks);
  EXPECT_FALSE(code->decode(pick_shares(encoded, {0, 5, 7})).has_value());
  EXPECT_FALSE(code->decode({}).has_value());
}

TEST(RsCode, DuplicateSharesIgnored) {
  auto code = make_rs_code(3, 6);
  const auto blocks = random_blocks(3, 8, 4);
  const auto encoded = code->encode(blocks);
  // Three copies of share 5 plus shares 0,1: exactly k distinct.
  auto decoded =
      code->decode(pick_shares(encoded, {5, 5, 5, 0, 1}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, blocks);
  // Duplicates alone are not enough.
  EXPECT_FALSE(code->decode(pick_shares(encoded, {5, 5, 5})).has_value());
}

TEST(RsCode, PaperScaleRandomPatterns) {
  auto code = make_rs_code(32, 48);
  const auto blocks = random_blocks(32, 64, 5);
  const auto encoded = code->encode(blocks);
  Rng rng(6);
  for (int t = 0; t < 25; ++t) {
    std::vector<std::size_t> idx(48);
    std::iota(idx.begin(), idx.end(), 0);
    // Random k-subset.
    for (std::size_t i = 0; i < 32; ++i) {
      std::swap(idx[i], idx[i + rng.uniform(48 - i)]);
    }
    idx.resize(32);
    const auto decoded = code->decode(pick_shares(encoded, idx));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, blocks);
  }
}

TEST(RsCode, ParityOnlyDecodes) {
  auto code = make_rs_code(4, 12);
  const auto blocks = random_blocks(4, 8, 7);
  const auto encoded = code->encode(blocks);
  const auto decoded = code->decode(pick_shares(encoded, {8, 9, 10, 11}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, blocks);
}

TEST(RsCode, RejectsBadParameters) {
  EXPECT_THROW(make_rs_code(5, 4), std::logic_error);
  EXPECT_THROW(make_rs_code(0, 4), std::logic_error);
  EXPECT_THROW(make_rs_code(10, 300), std::logic_error);
}

TEST(RsCode, KEqualsNDegenerates) {
  auto code = make_rs_code(3, 3);
  const auto blocks = random_blocks(3, 4, 8);
  const auto encoded = code->encode(blocks);
  EXPECT_EQ(encoded, blocks);
  EXPECT_EQ(code->decode(pick_shares(encoded, {0, 1, 2})).value(), blocks);
}

// Parameterized sweep: MDS property across geometries.
class RsGeometry
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(RsGeometry, DecodesFromAnyKRandomSubset) {
  const auto [k, n] = GetParam();
  auto code = make_rs_code(k, n);
  EXPECT_EQ(code->decode_threshold(), k);
  const auto blocks = random_blocks(k, 24, k * 100 + n);
  const auto encoded = code->encode(blocks);
  Rng rng(k * 7 + n);
  for (int t = 0; t < 10; ++t) {
    std::vector<std::size_t> idx(n);
    std::iota(idx.begin(), idx.end(), 0);
    for (std::size_t i = 0; i < k; ++i)
      std::swap(idx[i], idx[i + rng.uniform(n - i)]);
    idx.resize(k);
    const auto decoded = code->decode(pick_shares(encoded, idx));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, blocks);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, RsGeometry,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 2},
                      std::pair<std::size_t, std::size_t>{2, 3},
                      std::pair<std::size_t, std::size_t>{8, 16},
                      std::pair<std::size_t, std::size_t>{16, 24},
                      std::pair<std::size_t, std::size_t>{32, 40},
                      std::pair<std::size_t, std::size_t>{32, 56},
                      std::pair<std::size_t, std::size_t>{32, 64},
                      std::pair<std::size_t, std::size_t>{64, 128}));

// ---------------------------------------------------------------------------
// Random linear codes
// ---------------------------------------------------------------------------

class RlcBothFields : public ::testing::TestWithParam<CodecKind> {};

TEST_P(RlcBothFields, SystematicAndDecodesFromAllSystematic) {
  auto code = make_code(GetParam(), 8, 16, 2, 99);
  const auto blocks = random_blocks(8, 16, 9);
  const auto encoded = code->encode(blocks);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(encoded[i], blocks[i]);
  std::vector<std::size_t> idx{0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(code->decode(pick_shares(encoded, idx)).value(), blocks);
}

TEST_P(RlcBothFields, DecodesFromParityHeavySubsets) {
  auto code = make_code(GetParam(), 8, 24, 2, 100);
  const auto blocks = random_blocks(8, 16, 10);
  const auto encoded = code->encode(blocks);
  Rng rng(11);
  int successes = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    // Take threshold-many random shares.
    std::vector<std::size_t> idx(24);
    std::iota(idx.begin(), idx.end(), 0);
    const std::size_t take = code->decode_threshold();
    for (std::size_t i = 0; i < take; ++i)
      std::swap(idx[i], idx[i + rng.uniform(24 - i)]);
    idx.resize(take);
    auto decoded = code->decode(pick_shares(encoded, idx));
    if (decoded) {
      EXPECT_EQ(*decoded, blocks);
      ++successes;
    }
  }
  // Probabilistic: with delta=2 overhead the failure rate must be small.
  EXPECT_GE(successes, trials * 2 / 3);
}

TEST_P(RlcBothFields, AllSharesAlwaysDecode) {
  auto code = make_code(GetParam(), 8, 20, 2, 101);
  const auto blocks = random_blocks(8, 16, 12);
  const auto encoded = code->encode(blocks);
  std::vector<std::size_t> idx(20);
  std::iota(idx.begin(), idx.end(), 0);
  EXPECT_EQ(code->decode(pick_shares(encoded, idx)).value(), blocks);
}

TEST_P(RlcBothFields, DeterministicAcrossInstances) {
  // Two nodes constructing the same code instance from the preloaded seed
  // must produce identical packets (required for hash chaining).
  auto a = make_code(GetParam(), 8, 20, 2, 77);
  auto b = make_code(GetParam(), 8, 20, 2, 77);
  const auto blocks = random_blocks(8, 16, 13);
  EXPECT_EQ(a->encode(blocks), b->encode(blocks));
}

TEST_P(RlcBothFields, DifferentSeedsDifferentParity) {
  auto a = make_code(GetParam(), 8, 20, 2, 1);
  auto b = make_code(GetParam(), 8, 20, 2, 2);
  const auto blocks = random_blocks(8, 16, 14);
  EXPECT_NE(a->encode(blocks), b->encode(blocks));
}

INSTANTIATE_TEST_SUITE_P(Fields, RlcBothFields,
                         ::testing::Values(CodecKind::kRlcGf2,
                                           CodecKind::kRlcGf256));

TEST(CodecRegistry, ParsesNames) {
  EXPECT_EQ(parse_codec_kind("rs"), CodecKind::kReedSolomon);
  EXPECT_EQ(parse_codec_kind("rlc2"), CodecKind::kRlcGf2);
  EXPECT_EQ(parse_codec_kind("rlc256"), CodecKind::kRlcGf256);
  EXPECT_FALSE(parse_codec_kind("fountain").has_value());
}

TEST(CodecRegistry, ThresholdReflectsDelta) {
  EXPECT_EQ(make_code(CodecKind::kReedSolomon, 8, 16, 2, 1)->decode_threshold(),
            8u);
  EXPECT_EQ(make_code(CodecKind::kRlcGf2, 8, 16, 2, 1)->decode_threshold(),
            10u);
  EXPECT_EQ(make_code(CodecKind::kRlcGf256, 8, 16, 0, 1)->decode_threshold(),
            8u);
}

}  // namespace
}  // namespace lrs::erasure
// NOTE: LT-code tests appended; see lt_code.cc for the codec itself.
namespace lrs::erasure {
namespace {

std::vector<Bytes> lt_blocks(std::size_t k, std::size_t len,
                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Bytes> blocks(k);
  for (auto& b : blocks) {
    b.resize(len);
    for (auto& v : b) v = static_cast<std::uint8_t>(rng.uniform(256));
  }
  return blocks;
}

TEST(LtCode, FullSetAlwaysDecodes) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    auto code = make_lt_code(16, 32, 6, seed);
    const auto blocks = lt_blocks(16, 24, seed);
    const auto encoded = code->encode(blocks);
    std::vector<Share> shares;
    for (std::size_t i = 0; i < 32; ++i) shares.push_back({i, encoded[i]});
    const auto decoded = code->decode(shares);
    ASSERT_TRUE(decoded.has_value()) << "seed " << seed;
    EXPECT_EQ(*decoded, blocks);
  }
}

TEST(LtCode, DeterministicAcrossInstances) {
  auto a = make_lt_code(16, 32, 6, 77);
  auto b = make_lt_code(16, 32, 6, 77);
  const auto blocks = lt_blocks(16, 24, 9);
  EXPECT_EQ(a->encode(blocks), b->encode(blocks));
}

TEST(LtCode, ThresholdDecodesWithReasonableProbability) {
  auto code = make_lt_code(32, 64, 16, 5);
  const auto blocks = lt_blocks(32, 16, 6);
  const auto encoded = code->encode(blocks);
  Rng rng(7);
  int success = 0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    std::vector<std::size_t> idx(64);
    std::iota(idx.begin(), idx.end(), 0);
    const std::size_t take = code->decode_threshold();
    for (std::size_t i = 0; i < take; ++i)
      std::swap(idx[i], idx[i + rng.uniform(64 - i)]);
    idx.resize(take);
    std::vector<Share> shares;
    for (auto i : idx) shares.push_back({i, encoded[i]});
    auto d = code->decode(shares);
    if (d) {
      EXPECT_EQ(*d, blocks);
      ++success;
    }
  }
  // Probabilistic by nature; the protocol just keeps collecting on a miss.
  EXPECT_GE(success, trials / 3);
}

TEST(LtCode, InsufficientSharesFailSoft) {
  auto code = make_lt_code(16, 32, 4, 11);
  const auto blocks = lt_blocks(16, 8, 12);
  const auto encoded = code->encode(blocks);
  std::vector<Share> shares;
  for (std::size_t i = 0; i < 4; ++i) shares.push_back({i, encoded[i]});
  EXPECT_FALSE(code->decode(shares).has_value());
  EXPECT_FALSE(code->decode({}).has_value());
}

TEST(LtCode, RegistryExposesIt) {
  EXPECT_EQ(parse_codec_kind("lt"), CodecKind::kLt);
  auto code = make_code(CodecKind::kLt, 8, 24, 4, 3);
  EXPECT_EQ(code->name(), "lt");
  EXPECT_EQ(code->decode_threshold(), 12u);
}

}  // namespace
}  // namespace lrs::erasure
// NOTE: LRC + XOR-schedule backend tests (PR 8): golden parity bytes, local
// repair stats, decode fuzz, and codec-cache canonicalization/thread tests.
namespace lrs::erasure {
namespace {

std::vector<Bytes> pattern_blocks(std::size_t k, std::size_t len) {
  std::vector<Bytes> blocks(k);
  for (std::size_t j = 0; j < k; ++j) {
    blocks[j].resize(len);
    for (std::size_t i = 0; i < len; ++i)
      blocks[j][i] = static_cast<std::uint8_t>(j * 16 + i);
  }
  return blocks;
}

std::string to_hex(const Bytes& b) {
  static const char* kDigits = "0123456789abcdef";
  std::string s;
  for (auto v : b) {
    s.push_back(kDigits[v >> 4]);
    s.push_back(kDigits[v & 0xf]);
  }
  return s;
}

TEST(LrcCode, GroupCountRule) {
  // Largest divisor of k that is <= (n-k)/2; 0 when fewer than 2 parities.
  EXPECT_EQ(lrc_group_count(32, 48), 8u);  // paper geometry -> k' = 39
  EXPECT_EQ(lrc_group_count(8, 16), 4u);   // hash page -> k' = 11
  EXPECT_EQ(lrc_group_count(4, 8), 2u);
  EXPECT_EQ(lrc_group_count(7, 16), 1u);  // prime k, small parity budget
  EXPECT_EQ(lrc_group_count(6, 12), 3u);
  EXPECT_EQ(lrc_group_count(5, 6), 0u);  // one parity: plain RS row
  EXPECT_EQ(lrc_group_count(5, 5), 0u);  // no parity at all
}

TEST(LrcCode, ThresholdMatchesGeometry) {
  EXPECT_EQ(make_lrc_code(32, 48)->decode_threshold(), 39u);
  EXPECT_EQ(make_lrc_code(8, 16)->decode_threshold(), 11u);
  EXPECT_EQ(make_lrc_code(5, 6)->decode_threshold(), 5u);
}

TEST(LrcCode, GoldenParityBytes) {
  // Freezes the pyramid construction for (k=4, n=8): g=2 local parities
  // (masked Cauchy row 0) then 2 global rows. A change here is a wire-format
  // break for every deployed image.
  auto code = make_lrc_code(4, 8);
  const auto encoded = code->encode(pattern_blocks(4, 8));
  EXPECT_EQ(to_hex(encoded[4]), "04397e43f0cd8ab7");  // local, group {0,1}
  EXPECT_EQ(to_hex(encoded[5]), "a68ff4dd022b5079");  // local, group {2,3}
  EXPECT_EQ(to_hex(encoded[6]), "854014d1bc792de8");  // global row 1
  EXPECT_EQ(to_hex(encoded[7]), "98f858380363c3a3");  // global row 2
}

TEST(LrcCode, LocalParitiesOnlySpanTheirGroup) {
  // Local parity of group 0 must be a function of blocks {0,1} alone.
  auto code = make_lrc_code(4, 8);
  auto blocks = pattern_blocks(4, 8);
  const auto before = code->encode(blocks);
  blocks[2][0] ^= 0xff;  // outside group 0, inside group 1
  const auto after = code->encode(blocks);
  EXPECT_EQ(before[4], after[4]);  // group-0 local unchanged
  EXPECT_NE(before[5], after[5]);  // group-1 local moved
  EXPECT_NE(before[6], after[6]);  // globals see every block
}

TEST(LrcCode, LocalRepairCountsAndResets) {
  // The counters live in the process-wide metrics registry now: enable the
  // registry and zero any residue left by earlier tests in this binary.
  stats::set_enabled(true);
  auto code = make_lrc_code(8, 16);  // g=4, groups of 2, locals at 8..11
  lrc_stats_reset(*code);
  const auto blocks = pattern_blocks(8, 12);
  const auto encoded = code->encode(blocks);

  // Drop data 3 (group 1); its local parity 9 completes the page locally.
  std::vector<Share> shares;
  for (std::size_t i = 0; i < 8; ++i)
    if (i != 3) shares.push_back({i, encoded[i]});
  shares.push_back({9, encoded[9]});
  EXPECT_EQ(code->decode(shares).value(), blocks);
  auto st = lrc_stats(*code);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->decodes, 1u);
  EXPECT_EQ(st->local_repairs, 1u);
  EXPECT_EQ(st->local_only_decodes, 1u);
  EXPECT_EQ(st->full_solves, 0u);

  // Drop both blocks of group 0: local repair cannot fire, full solve runs.
  shares.clear();
  for (std::size_t i = 2; i < 8; ++i) shares.push_back({i, encoded[i]});
  for (std::size_t i = 8; i < 13; ++i) shares.push_back({i, encoded[i]});
  EXPECT_EQ(code->decode(shares).value(), blocks);
  st = lrc_stats(*code);
  EXPECT_EQ(st->decodes, 2u);
  EXPECT_EQ(st->full_solves, 1u);

  lrc_stats_reset(*code);
  st = lrc_stats(*code);
  EXPECT_EQ(st->decodes, 0u);
  EXPECT_EQ(st->local_repairs, 0u);

  // Failed decodes are not counted as decodes.
  EXPECT_FALSE(code->decode({}).has_value());
  EXPECT_EQ(lrc_stats(*code)->decodes, 0u);
}

TEST(LrcCode, StatsAreNulloptForOtherCodecs) {
  auto rs = make_rs_code(4, 8);
  EXPECT_FALSE(lrc_stats(*rs).has_value());
  lrc_stats_reset(*rs);  // must be a harmless no-op
}

TEST(XorschedCode, GoldenParityBytesMatchRs) {
  // The whole point: byte-identical codewords to the table-multiply RS
  // backend, computed through the XOR schedule.
  auto code = make_xorsched_code(4, 8);
  const auto encoded = code->encode(pattern_blocks(4, 8));
  EXPECT_EQ(to_hex(encoded[4]), "74471221b88bdeed");
  EXPECT_EQ(to_hex(encoded[5]), "695a0f3ca596c3f0");
  EXPECT_EQ(to_hex(encoded[6]), "4e7d281b82b1e4d7");
  EXPECT_EQ(to_hex(encoded[7]), "536035069facf9ca");

  auto rs = make_rs_code(4, 8);
  EXPECT_EQ(rs->encode(pattern_blocks(4, 8)), encoded);
}

TEST(XorschedCode, MatchesRsAcrossLengthsAndGeometries) {
  Rng rng(314);
  for (const auto& [k, n] : {std::pair<std::size_t, std::size_t>{1, 2},
                            std::pair<std::size_t, std::size_t>{8, 16},
                            std::pair<std::size_t, std::size_t>{32, 48}}) {
    for (std::size_t len : {std::size_t{1}, std::size_t{37}, std::size_t{64},
                            std::size_t{513}}) {
      std::vector<Bytes> blocks(k);
      for (auto& b : blocks) {
        b.resize(len);
        for (auto& v : b) v = static_cast<std::uint8_t>(rng.uniform(256));
      }
      const auto ex = make_xorsched_code(k, n)->encode(blocks);
      const auto er = make_rs_code(k, n)->encode(blocks);
      EXPECT_EQ(ex, er) << "k=" << k << " n=" << n << " len=" << len;
    }
  }
}

TEST(XorschedCode, RegistryExposesIt) {
  EXPECT_EQ(parse_codec_kind("xorsched"), CodecKind::kXorSchedule);
  EXPECT_EQ(parse_codec_kind("lrc"), CodecKind::kLrc);
  auto xs = make_code(CodecKind::kXorSchedule, 8, 16, 3, 99);
  EXPECT_EQ(xs->name(), "xorsched");
  EXPECT_EQ(xs->decode_threshold(), 8u);  // MDS: delta ignored
  auto lrc = make_code(CodecKind::kLrc, 8, 16, 3, 99);
  EXPECT_EQ(lrc->name(), "lrc");
  EXPECT_EQ(lrc->decode_threshold(), 11u);
}

// ---------------------------------------------------------------------------
// Deterministic decode fuzz: malformed shares must return nullopt or throw
// std::logic_error (LRS_CHECK), never read out of bounds.
// ---------------------------------------------------------------------------

TEST(DecodeFuzz, MalformedSharesFailCleanly) {
  const CodecKind kinds[] = {CodecKind::kReedSolomon, CodecKind::kRlcGf2,
                             CodecKind::kRlcGf256,    CodecKind::kLt,
                             CodecKind::kLrc,         CodecKind::kXorSchedule};
  for (std::size_t ki = 0; ki < std::size(kinds); ++ki) {
    auto code = make_code(kinds[ki], 8, 16, 2, 5);
    std::vector<Bytes> blocks(8);
    Rng init(1000 + ki);
    for (auto& b : blocks) {
      b.resize(12);
      for (auto& v : b) v = static_cast<std::uint8_t>(init.uniform(256));
    }
    const auto encoded = code->encode(blocks);
    Rng rng(2000 + ki);
    int clean = 0, thrown = 0;
    for (int t = 0; t < 300; ++t) {
      // Random subset with duplicates allowed, then one random corruption.
      std::vector<Share> shares;
      const std::size_t cnt = rng.uniform(20);
      for (std::size_t i = 0; i < cnt; ++i) {
        const std::size_t idx = rng.uniform(16);
        shares.push_back({idx, encoded[idx]});
      }
      if (!shares.empty()) {
        auto& victim = shares[rng.uniform(shares.size())];
        switch (rng.uniform(4)) {
          case 0:
            break;  // clean subset
          case 1:  // truncated block
            victim.data.resize(rng.uniform(victim.data.size() + 1));
            break;
          case 2:  // oversized block
            victim.data.resize(victim.data.size() + 1 + rng.uniform(32),
                               0xAB);
            break;
          case 3:  // out-of-range index
            victim.index = 16 + rng.uniform(1000);
            break;
        }
      }
      try {
        const auto decoded = code->decode(shares);
        if (decoded.has_value()) {
          ASSERT_EQ(decoded->size(), 8u);
          for (const auto& b : *decoded) ASSERT_FALSE(b.empty());
        }
        ++clean;
      } catch (const std::logic_error&) {
        ++thrown;  // LRS_CHECK rejection is the contract for malformed input
      }
    }
    EXPECT_GT(clean, 0) << "kind " << ki;
    EXPECT_GT(thrown, 0) << "kind " << ki;
  }
}

// ---------------------------------------------------------------------------
// Codec cache: canonicalization of the new seed-independent kinds, and the
// thread-hammer the TSan CI job runs.
// ---------------------------------------------------------------------------

TEST(CodecCache, CanonicalizesLrcAndXorschedSpellings) {
  codec_cache_clear();
  auto a = make_code_cached(CodecKind::kLrc, 8, 16, 0, 0);
  auto b = make_code_cached(CodecKind::kLrc, 8, 16, 3, 0xdeadbeef);
  EXPECT_EQ(a.get(), b.get());
  auto c = make_code_cached(CodecKind::kXorSchedule, 8, 16, 0, 0);
  auto d = make_code_cached(CodecKind::kXorSchedule, 8, 16, 7, 42);
  EXPECT_EQ(c.get(), d.get());
  EXPECT_NE(a.get(), c.get());  // kinds stay distinct entries
  EXPECT_EQ(codec_cache_size(), 2u);
  codec_cache_clear();
}

TEST(CodecCache, ThreadHammerSharedInstances) {
  // Many threads resolve differing spellings of the same canonical codecs
  // and decode through the shared LRC instance (the registry stat counters
  // are the only mutable state). Run under TSan in CI.
  codec_cache_clear();
  stats::set_enabled(true);
  lrc_stats_reset(*make_code_cached(CodecKind::kLrc, 8, 16, 0, 0));
  constexpr int kThreads = 8;
  constexpr int kIters = 25;
  std::vector<Bytes> blocks(8);
  for (std::size_t j = 0; j < 8; ++j) blocks[j] = Bytes(16, std::uint8_t(j));
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &blocks, &failures] {
      for (int i = 0; i < kIters; ++i) {
        auto lrc = make_code_cached(CodecKind::kLrc, 8, 16,
                                    static_cast<std::size_t>(i % 3),
                                    static_cast<std::uint64_t>(t));
        auto xs = make_code_cached(CodecKind::kXorSchedule, 8, 16,
                                   static_cast<std::size_t>(i % 2),
                                   static_cast<std::uint64_t>(t * 31 + i));
        const auto enc = lrc->encode(blocks);
        std::vector<Share> shares;
        for (std::size_t s = 1; s < 8; ++s) shares.push_back({s, enc[s]});
        shares.push_back({8, enc[8]});  // local parity of group {0,1}
        const auto dec = lrc->decode(shares);
        if (!dec.has_value() || *dec != blocks) failures.fetch_add(1);
        const auto enc2 = xs->encode(blocks);
        if (enc2.size() != 16) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(codec_cache_size(), 2u);
  const auto st = lrc_stats(*make_code_cached(CodecKind::kLrc, 8, 16, 0, 0));
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->decodes, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(st->local_repairs, static_cast<std::uint64_t>(kThreads) * kIters);
  codec_cache_clear();
}

}  // namespace
}  // namespace lrs::erasure
