// GF(256) field axioms, matrix algebra, and erasure-code properties:
// exhaustive loss patterns for small codes, randomized patterns for the
// paper's parameters, MDS guarantees for Reed-Solomon and rank behavior
// for the random linear codes.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "erasure/code.h"
#include "erasure/gf256.h"
#include "erasure/matrix.h"
#include "util/rng.h"

namespace lrs::erasure {
namespace {

// ---------------------------------------------------------------------------
// GF(256)
// ---------------------------------------------------------------------------

TEST(Gf256Test, MultiplicationCommutesAndAssociates) {
  Rng rng(1);
  for (int t = 0; t < 2000; ++t) {
    const auto a = static_cast<std::uint8_t>(rng.uniform(256));
    const auto b = static_cast<std::uint8_t>(rng.uniform(256));
    const auto c = static_cast<std::uint8_t>(rng.uniform(256));
    EXPECT_EQ(Gf256::mul(a, b), Gf256::mul(b, a));
    EXPECT_EQ(Gf256::mul(a, Gf256::mul(b, c)),
              Gf256::mul(Gf256::mul(a, b), c));
  }
}

TEST(Gf256Test, DistributesOverAddition) {
  Rng rng(2);
  for (int t = 0; t < 2000; ++t) {
    const auto a = static_cast<std::uint8_t>(rng.uniform(256));
    const auto b = static_cast<std::uint8_t>(rng.uniform(256));
    const auto c = static_cast<std::uint8_t>(rng.uniform(256));
    EXPECT_EQ(Gf256::mul(a, Gf256::add(b, c)),
              Gf256::add(Gf256::mul(a, b), Gf256::mul(a, c)));
  }
}

TEST(Gf256Test, IdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    const auto v = static_cast<std::uint8_t>(a);
    EXPECT_EQ(Gf256::mul(v, 1), v);
    EXPECT_EQ(Gf256::mul(v, 0), 0);
  }
}

TEST(Gf256Test, EveryNonzeroElementHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const auto v = static_cast<std::uint8_t>(a);
    EXPECT_EQ(Gf256::mul(v, Gf256::inv(v)), 1) << a;
    EXPECT_EQ(Gf256::div(v, v), 1) << a;
  }
}

TEST(Gf256Test, ZeroHasNoInverse) {
  EXPECT_THROW(Gf256::inv(0), std::logic_error);
  EXPECT_THROW(Gf256::div(1, 0), std::logic_error);
}

TEST(Gf256Test, KnownAesProducts) {
  // From the AES specification: {53} * {CA} = {01}.
  EXPECT_EQ(Gf256::mul(0x53, 0xCA), 0x01);
  EXPECT_EQ(Gf256::mul(0x02, 0x80), 0x1b);  // x * x^7 = x^8 = 0x1b
}

TEST(Gf256Test, PowMatchesRepeatedMultiplication) {
  Rng rng(3);
  for (int t = 0; t < 200; ++t) {
    const auto a = static_cast<std::uint8_t>(rng.uniform(255) + 1);
    const unsigned e = static_cast<unsigned>(rng.uniform(16));
    std::uint8_t expect = 1;
    for (unsigned i = 0; i < e; ++i) expect = Gf256::mul(expect, a);
    EXPECT_EQ(Gf256::pow(a, e), expect);
  }
}

TEST(Gf256Test, AddmulMatchesScalarLoop) {
  Rng rng(4);
  Bytes dst(64), src(64);
  for (auto& b : dst) b = static_cast<std::uint8_t>(rng.uniform(256));
  for (auto& b : src) b = static_cast<std::uint8_t>(rng.uniform(256));
  const std::uint8_t c = 0x8e;
  Bytes expect = dst;
  for (std::size_t i = 0; i < 64; ++i)
    expect[i] = Gf256::add(expect[i], Gf256::mul(src[i], c));
  Gf256::addmul(MutByteView(dst.data(), dst.size()), view(src), c);
  EXPECT_EQ(dst, expect);
}

// ---------------------------------------------------------------------------
// MatrixGf256
// ---------------------------------------------------------------------------

TEST(MatrixTest, IdentityInvertsToItself) {
  const auto id = MatrixGf256::identity(5);
  EXPECT_EQ(id.inverted().value(), id);
}

TEST(MatrixTest, RandomMatrixTimesInverseIsIdentity) {
  Rng rng(5);
  for (int t = 0; t < 50; ++t) {
    MatrixGf256 m(6, 6);
    for (std::size_t r = 0; r < 6; ++r)
      for (std::size_t c = 0; c < 6; ++c)
        m.set(r, c, static_cast<std::uint8_t>(rng.uniform(256)));
    auto inv = m.inverted();
    if (!inv) continue;  // singular random draw
    EXPECT_EQ(m.multiply(*inv), MatrixGf256::identity(6));
    EXPECT_EQ(inv->multiply(m), MatrixGf256::identity(6));
  }
}

TEST(MatrixTest, SingularMatrixReported) {
  MatrixGf256 m(3, 3);
  // Row 2 = row 0 + row 1.
  m.set(0, 0, 1);
  m.set(0, 1, 2);
  m.set(1, 1, 3);
  m.set(1, 2, 4);
  m.set(2, 0, 1);
  m.set(2, 1, Gf256::add(2, 3));
  m.set(2, 2, 4);
  EXPECT_FALSE(m.inverted().has_value());
  EXPECT_EQ(m.rank(), 2u);
}

TEST(MatrixTest, RankOfTallMatrix) {
  MatrixGf256 m(4, 2);
  m.set(0, 0, 1);
  m.set(1, 1, 1);
  m.set(2, 0, 5);
  m.set(3, 1, 9);
  EXPECT_EQ(m.rank(), 2u);
}

// ---------------------------------------------------------------------------
// Gf2Eliminator
// ---------------------------------------------------------------------------

TEST(Gf2EliminatorTest, SolvesIdentitySystem) {
  Gf2Eliminator e(3, 2);
  for (std::size_t i = 0; i < 3; ++i) {
    BitVec c(3);
    c.set(i);
    Bytes payload{static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(i)};
    EXPECT_TRUE(e.add(c, view(payload)));
  }
  ASSERT_TRUE(e.complete());
  const auto sol = e.solve();
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(sol[i][0], i);
}

TEST(Gf2EliminatorTest, RedundantEquationNotInnovative) {
  Gf2Eliminator e(2, 1);
  BitVec c01(2, true);
  Bytes sum{3};
  EXPECT_TRUE(e.add(c01, view(sum)));
  EXPECT_FALSE(e.add(c01, view(sum)));
  EXPECT_EQ(e.rank(), 1u);
}

TEST(Gf2EliminatorTest, SolvesMixedSystem) {
  // x0 ^ x1 = 3, x1 = 2  ->  x0 = 1.
  Gf2Eliminator e(2, 1);
  BitVec both(2, true);
  BitVec second(2);
  second.set(1);
  Bytes b3{3}, b2{2};
  EXPECT_TRUE(e.add(both, view(b3)));
  EXPECT_TRUE(e.add(second, view(b2)));
  ASSERT_TRUE(e.complete());
  const auto sol = e.solve();
  EXPECT_EQ(sol[0][0], 1);
  EXPECT_EQ(sol[1][0], 2);
}

// ---------------------------------------------------------------------------
// Erasure codes: shared property helpers
// ---------------------------------------------------------------------------

std::vector<Bytes> random_blocks(std::size_t k, std::size_t len,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Bytes> blocks(k);
  for (auto& b : blocks) {
    b.resize(len);
    for (auto& v : b) v = static_cast<std::uint8_t>(rng.uniform(256));
  }
  return blocks;
}

std::vector<Share> pick_shares(const std::vector<Bytes>& encoded,
                               const std::vector<std::size_t>& indices) {
  std::vector<Share> shares;
  for (auto i : indices) shares.push_back({i, encoded[i]});
  return shares;
}

TEST(RsCode, SystematicPrefix) {
  auto code = make_rs_code(4, 8);
  const auto blocks = random_blocks(4, 16, 1);
  const auto encoded = code->encode(blocks);
  ASSERT_EQ(encoded.size(), 8u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(encoded[i], blocks[i]);
}

TEST(RsCode, ExhaustiveLossPatternsSmall) {
  // Every subset of exactly k=3 out of n=6 shares must decode (MDS).
  auto code = make_rs_code(3, 6);
  const auto blocks = random_blocks(3, 8, 2);
  const auto encoded = code->encode(blocks);
  std::vector<std::size_t> idx{0, 1, 2, 3, 4, 5};
  std::vector<bool> mask(6, false);
  std::fill(mask.begin(), mask.begin() + 3, true);
  std::sort(mask.begin(), mask.end());
  do {
    std::vector<std::size_t> chosen;
    for (std::size_t i = 0; i < 6; ++i)
      if (mask[i]) chosen.push_back(i);
    const auto decoded = code->decode(pick_shares(encoded, chosen));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, blocks);
  } while (std::next_permutation(mask.begin(), mask.end()));
}

TEST(RsCode, InsufficientSharesReturnNullopt) {
  auto code = make_rs_code(4, 8);
  const auto blocks = random_blocks(4, 8, 3);
  const auto encoded = code->encode(blocks);
  EXPECT_FALSE(code->decode(pick_shares(encoded, {0, 5, 7})).has_value());
  EXPECT_FALSE(code->decode({}).has_value());
}

TEST(RsCode, DuplicateSharesIgnored) {
  auto code = make_rs_code(3, 6);
  const auto blocks = random_blocks(3, 8, 4);
  const auto encoded = code->encode(blocks);
  // Three copies of share 5 plus shares 0,1: exactly k distinct.
  auto decoded =
      code->decode(pick_shares(encoded, {5, 5, 5, 0, 1}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, blocks);
  // Duplicates alone are not enough.
  EXPECT_FALSE(code->decode(pick_shares(encoded, {5, 5, 5})).has_value());
}

TEST(RsCode, PaperScaleRandomPatterns) {
  auto code = make_rs_code(32, 48);
  const auto blocks = random_blocks(32, 64, 5);
  const auto encoded = code->encode(blocks);
  Rng rng(6);
  for (int t = 0; t < 25; ++t) {
    std::vector<std::size_t> idx(48);
    std::iota(idx.begin(), idx.end(), 0);
    // Random k-subset.
    for (std::size_t i = 0; i < 32; ++i) {
      std::swap(idx[i], idx[i + rng.uniform(48 - i)]);
    }
    idx.resize(32);
    const auto decoded = code->decode(pick_shares(encoded, idx));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, blocks);
  }
}

TEST(RsCode, ParityOnlyDecodes) {
  auto code = make_rs_code(4, 12);
  const auto blocks = random_blocks(4, 8, 7);
  const auto encoded = code->encode(blocks);
  const auto decoded = code->decode(pick_shares(encoded, {8, 9, 10, 11}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, blocks);
}

TEST(RsCode, RejectsBadParameters) {
  EXPECT_THROW(make_rs_code(5, 4), std::logic_error);
  EXPECT_THROW(make_rs_code(0, 4), std::logic_error);
  EXPECT_THROW(make_rs_code(10, 300), std::logic_error);
}

TEST(RsCode, KEqualsNDegenerates) {
  auto code = make_rs_code(3, 3);
  const auto blocks = random_blocks(3, 4, 8);
  const auto encoded = code->encode(blocks);
  EXPECT_EQ(encoded, blocks);
  EXPECT_EQ(code->decode(pick_shares(encoded, {0, 1, 2})).value(), blocks);
}

// Parameterized sweep: MDS property across geometries.
class RsGeometry
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(RsGeometry, DecodesFromAnyKRandomSubset) {
  const auto [k, n] = GetParam();
  auto code = make_rs_code(k, n);
  EXPECT_EQ(code->decode_threshold(), k);
  const auto blocks = random_blocks(k, 24, k * 100 + n);
  const auto encoded = code->encode(blocks);
  Rng rng(k * 7 + n);
  for (int t = 0; t < 10; ++t) {
    std::vector<std::size_t> idx(n);
    std::iota(idx.begin(), idx.end(), 0);
    for (std::size_t i = 0; i < k; ++i)
      std::swap(idx[i], idx[i + rng.uniform(n - i)]);
    idx.resize(k);
    const auto decoded = code->decode(pick_shares(encoded, idx));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, blocks);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, RsGeometry,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 2},
                      std::pair<std::size_t, std::size_t>{2, 3},
                      std::pair<std::size_t, std::size_t>{8, 16},
                      std::pair<std::size_t, std::size_t>{16, 24},
                      std::pair<std::size_t, std::size_t>{32, 40},
                      std::pair<std::size_t, std::size_t>{32, 56},
                      std::pair<std::size_t, std::size_t>{32, 64},
                      std::pair<std::size_t, std::size_t>{64, 128}));

// ---------------------------------------------------------------------------
// Random linear codes
// ---------------------------------------------------------------------------

class RlcBothFields : public ::testing::TestWithParam<CodecKind> {};

TEST_P(RlcBothFields, SystematicAndDecodesFromAllSystematic) {
  auto code = make_code(GetParam(), 8, 16, 2, 99);
  const auto blocks = random_blocks(8, 16, 9);
  const auto encoded = code->encode(blocks);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(encoded[i], blocks[i]);
  std::vector<std::size_t> idx{0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(code->decode(pick_shares(encoded, idx)).value(), blocks);
}

TEST_P(RlcBothFields, DecodesFromParityHeavySubsets) {
  auto code = make_code(GetParam(), 8, 24, 2, 100);
  const auto blocks = random_blocks(8, 16, 10);
  const auto encoded = code->encode(blocks);
  Rng rng(11);
  int successes = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    // Take threshold-many random shares.
    std::vector<std::size_t> idx(24);
    std::iota(idx.begin(), idx.end(), 0);
    const std::size_t take = code->decode_threshold();
    for (std::size_t i = 0; i < take; ++i)
      std::swap(idx[i], idx[i + rng.uniform(24 - i)]);
    idx.resize(take);
    auto decoded = code->decode(pick_shares(encoded, idx));
    if (decoded) {
      EXPECT_EQ(*decoded, blocks);
      ++successes;
    }
  }
  // Probabilistic: with delta=2 overhead the failure rate must be small.
  EXPECT_GE(successes, trials * 2 / 3);
}

TEST_P(RlcBothFields, AllSharesAlwaysDecode) {
  auto code = make_code(GetParam(), 8, 20, 2, 101);
  const auto blocks = random_blocks(8, 16, 12);
  const auto encoded = code->encode(blocks);
  std::vector<std::size_t> idx(20);
  std::iota(idx.begin(), idx.end(), 0);
  EXPECT_EQ(code->decode(pick_shares(encoded, idx)).value(), blocks);
}

TEST_P(RlcBothFields, DeterministicAcrossInstances) {
  // Two nodes constructing the same code instance from the preloaded seed
  // must produce identical packets (required for hash chaining).
  auto a = make_code(GetParam(), 8, 20, 2, 77);
  auto b = make_code(GetParam(), 8, 20, 2, 77);
  const auto blocks = random_blocks(8, 16, 13);
  EXPECT_EQ(a->encode(blocks), b->encode(blocks));
}

TEST_P(RlcBothFields, DifferentSeedsDifferentParity) {
  auto a = make_code(GetParam(), 8, 20, 2, 1);
  auto b = make_code(GetParam(), 8, 20, 2, 2);
  const auto blocks = random_blocks(8, 16, 14);
  EXPECT_NE(a->encode(blocks), b->encode(blocks));
}

INSTANTIATE_TEST_SUITE_P(Fields, RlcBothFields,
                         ::testing::Values(CodecKind::kRlcGf2,
                                           CodecKind::kRlcGf256));

TEST(CodecRegistry, ParsesNames) {
  EXPECT_EQ(parse_codec_kind("rs"), CodecKind::kReedSolomon);
  EXPECT_EQ(parse_codec_kind("rlc2"), CodecKind::kRlcGf2);
  EXPECT_EQ(parse_codec_kind("rlc256"), CodecKind::kRlcGf256);
  EXPECT_FALSE(parse_codec_kind("fountain").has_value());
}

TEST(CodecRegistry, ThresholdReflectsDelta) {
  EXPECT_EQ(make_code(CodecKind::kReedSolomon, 8, 16, 2, 1)->decode_threshold(),
            8u);
  EXPECT_EQ(make_code(CodecKind::kRlcGf2, 8, 16, 2, 1)->decode_threshold(),
            10u);
  EXPECT_EQ(make_code(CodecKind::kRlcGf256, 8, 16, 0, 1)->decode_threshold(),
            8u);
}

}  // namespace
}  // namespace lrs::erasure
// NOTE: LT-code tests appended; see lt_code.cc for the codec itself.
namespace lrs::erasure {
namespace {

std::vector<Bytes> lt_blocks(std::size_t k, std::size_t len,
                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Bytes> blocks(k);
  for (auto& b : blocks) {
    b.resize(len);
    for (auto& v : b) v = static_cast<std::uint8_t>(rng.uniform(256));
  }
  return blocks;
}

TEST(LtCode, FullSetAlwaysDecodes) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    auto code = make_lt_code(16, 32, 6, seed);
    const auto blocks = lt_blocks(16, 24, seed);
    const auto encoded = code->encode(blocks);
    std::vector<Share> shares;
    for (std::size_t i = 0; i < 32; ++i) shares.push_back({i, encoded[i]});
    const auto decoded = code->decode(shares);
    ASSERT_TRUE(decoded.has_value()) << "seed " << seed;
    EXPECT_EQ(*decoded, blocks);
  }
}

TEST(LtCode, DeterministicAcrossInstances) {
  auto a = make_lt_code(16, 32, 6, 77);
  auto b = make_lt_code(16, 32, 6, 77);
  const auto blocks = lt_blocks(16, 24, 9);
  EXPECT_EQ(a->encode(blocks), b->encode(blocks));
}

TEST(LtCode, ThresholdDecodesWithReasonableProbability) {
  auto code = make_lt_code(32, 64, 16, 5);
  const auto blocks = lt_blocks(32, 16, 6);
  const auto encoded = code->encode(blocks);
  Rng rng(7);
  int success = 0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    std::vector<std::size_t> idx(64);
    std::iota(idx.begin(), idx.end(), 0);
    const std::size_t take = code->decode_threshold();
    for (std::size_t i = 0; i < take; ++i)
      std::swap(idx[i], idx[i + rng.uniform(64 - i)]);
    idx.resize(take);
    std::vector<Share> shares;
    for (auto i : idx) shares.push_back({i, encoded[i]});
    auto d = code->decode(shares);
    if (d) {
      EXPECT_EQ(*d, blocks);
      ++success;
    }
  }
  // Probabilistic by nature; the protocol just keeps collecting on a miss.
  EXPECT_GE(success, trials / 3);
}

TEST(LtCode, InsufficientSharesFailSoft) {
  auto code = make_lt_code(16, 32, 4, 11);
  const auto blocks = lt_blocks(16, 8, 12);
  const auto encoded = code->encode(blocks);
  std::vector<Share> shares;
  for (std::size_t i = 0; i < 4; ++i) shares.push_back({i, encoded[i]});
  EXPECT_FALSE(code->decode(shares).has_value());
  EXPECT_FALSE(code->decode({}).has_value());
}

TEST(LtCode, RegistryExposesIt) {
  EXPECT_EQ(parse_codec_kind("lt"), CodecKind::kLt);
  auto code = make_code(CodecKind::kLt, 8, 24, 4, 3);
  EXPECT_EQ(code->name(), "lt");
  EXPECT_EQ(code->decode_threshold(), 12u);
}

}  // namespace
}  // namespace lrs::erasure
