// The public Publisher/Receiver facade — the transport-agnostic library
// surface a downstream user programs against (examples/quickstart.cpp).
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/lr_seluge.h"

namespace lrs::core {
namespace {

proto::CommonParams quick_params() {
  proto::CommonParams p;
  p.payload_size = 32;
  p.k = 8;
  p.n = 12;
  p.k0 = 4;
  p.n0 = 8;
  p.puzzle_strength = 4;
  return p;
}

TEST(Facade, PublishTransferRecover) {
  Publisher pub(quick_params(), view(Bytes{1, 2, 3}));
  const Bytes image = make_test_image(1500, 21);
  auto prepared = pub.prepare(image);

  Receiver rx(quick_params(), pub.root_public_key());
  EXPECT_FALSE(rx.bootstrapped());
  ASSERT_TRUE(rx.feed_signature(view(prepared->signature_frame().value())));
  EXPECT_TRUE(rx.bootstrapped());
  EXPECT_GT(rx.total_pages(), 1u);

  for (std::uint32_t p = 0; p < prepared->num_pages(); ++p) {
    for (std::uint32_t j = 0; j < prepared->packets_in_page(p); ++j) {
      if (rx.pages_complete() > p) break;
      rx.feed_data(p, j, view(prepared->packet_payload(p, j).value()));
    }
  }
  ASSERT_TRUE(rx.complete());
  EXPECT_EQ(rx.image(), image);
}

TEST(Facade, RequestBitsShrinkAsPacketsArrive) {
  Publisher pub(quick_params(), view(Bytes{4}));
  const Bytes image = make_test_image(1500, 22);
  auto prepared = pub.prepare(image);
  Receiver rx(quick_params(), pub.root_public_key());
  rx.feed_signature(view(prepared->signature_frame().value()));

  const auto before = rx.request_bits();
  EXPECT_EQ(before.count(), before.size());
  rx.feed_data(0, 0, view(prepared->packet_payload(0, 0).value()));
  const auto after = rx.request_bits();
  EXPECT_EQ(after.count(), before.count() - 1);
  EXPECT_FALSE(after.get(0));
}

TEST(Facade, SignerCapacityDepletes) {
  Publisher pub(quick_params(), view(Bytes{5}), /*key_height=*/1);
  EXPECT_EQ(pub.signatures_left(), 2u);
  const Bytes image = make_test_image(600, 23);
  pub.prepare(image);
  EXPECT_EQ(pub.signatures_left(), 1u);
  pub.prepare(image);
  EXPECT_EQ(pub.signatures_left(), 0u);
  EXPECT_THROW(pub.prepare(image), std::runtime_error);
}

TEST(Facade, TwoImagesFromOneRootBothVerify) {
  Publisher pub(quick_params(), view(Bytes{6}), 1);
  const Bytes image_a = make_test_image(800, 24);
  const Bytes image_b = make_test_image(800, 25);
  auto a = pub.prepare(image_a);
  auto b = pub.prepare(image_b);

  for (const auto* prepared : {a.get(), b.get()}) {
    Receiver rx(quick_params(), pub.root_public_key());
    ASSERT_TRUE(
        rx.feed_signature(view(prepared->signature_frame().value())));
  }
}

TEST(Facade, WrongRootRejectsSignature) {
  Publisher alice(quick_params(), view(Bytes{7}));
  Publisher mallory(quick_params(), view(Bytes{8}));
  const Bytes image = make_test_image(800, 26);
  auto forged = mallory.prepare(image);
  Receiver rx(quick_params(), alice.root_public_key());
  EXPECT_FALSE(rx.feed_signature(view(forged->signature_frame().value())));
  EXPECT_FALSE(rx.bootstrapped());
}

TEST(Facade, MetricsExposeVerificationWork) {
  Publisher pub(quick_params(), view(Bytes{9}));
  const Bytes image = make_test_image(800, 27);
  auto prepared = pub.prepare(image);
  Receiver rx(quick_params(), pub.root_public_key());
  rx.feed_signature(view(prepared->signature_frame().value()));
  rx.feed_data(0, 0, view(prepared->packet_payload(0, 0).value()));
  EXPECT_EQ(rx.metrics().signature_verifications, 1u);
  EXPECT_GT(rx.metrics().hash_verifications, 0u);
}

TEST(Facade, EmptyImageRejected) {
  Publisher pub(quick_params(), view(Bytes{10}));
  EXPECT_THROW(pub.prepare(Bytes{}), std::logic_error);
}

TEST(Facade, InvalidGeometryRejectedAtConstruction) {
  auto p = quick_params();
  p.n0 = 7;  // not a power of two
  EXPECT_THROW(Publisher(p, view(Bytes{11})), std::logic_error);
}

}  // namespace
}  // namespace lrs::core
