// Fleet subsystem: delta images (round-trip, tamper and replay rejection,
// end-to-end through the upgrade machinery), clone_source sharing, the
// work-stealing scheduler's contract, and the engine's serial-vs-parallel
// byte-identity discipline.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "core/experiment.h"
#include "core/lr_seluge.h"
#include "core/parallel.h"
#include "fleet/delta.h"
#include "fleet/engine.h"
#include "fleet/tenant.h"
#include "proto/engine.h"
#include "proto/packet.h"
#include "sim/simulator.h"

namespace lrs {
namespace {

using core::make_lr_receiver;
using core::make_lr_source;

// ---------------------------------------------------------------------------
// Delta blobs
// ---------------------------------------------------------------------------

Bytes patched_copy(const Bytes& base, std::size_t at, std::uint8_t x) {
  Bytes b = base;
  b[at] ^= x;
  return b;
}

TEST(Delta, RoundTripReconstructsNewImage) {
  const Bytes v1 = core::make_test_image(2048, 7);
  Bytes v2 = v1;
  v2[100] ^= 0xff;       // page 0 (page size 256)
  v2[1500] ^= 0x01;      // page 5
  v2.resize(2300, 0xee); // grows: pages 8 and (new) 8.x changed

  const Bytes blob = fleet::make_delta(v1, v2, 1, 2, 256);
  const auto m = fleet::parse_delta(view(blob));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->base_version, 1u);
  EXPECT_EQ(m->new_version, 2u);
  EXPECT_EQ(m->image_size, v2.size());
  EXPECT_EQ(m->page_size, 256u);
  // Pages 0 and 5 changed; page 7 grew from 2048 to 2300 fills, page 8 new.
  EXPECT_FALSE(m->changed_pages.empty());
  // The blob must be smaller than the full image (only changed pages ride).
  EXPECT_LT(blob.size(), v2.size());

  const auto applied = fleet::apply_delta(v1, view(blob));
  ASSERT_TRUE(applied.has_value());
  EXPECT_EQ(*applied, v2);
}

TEST(Delta, IdenticalImagesYieldEmptyPageSet) {
  const Bytes v1 = core::make_test_image(1024, 3);
  const Bytes blob = fleet::make_delta(v1, v1, 1, 2, 128);
  const auto m = fleet::parse_delta(view(blob));
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(m->changed_pages.empty());
  const auto applied = fleet::apply_delta(v1, view(blob));
  ASSERT_TRUE(applied.has_value());
  EXPECT_EQ(*applied, v1);
}

TEST(Delta, WrongBaseRejected) {
  const Bytes v1 = core::make_test_image(1024, 3);
  const Bytes v2 = patched_copy(v1, 10, 0x55);
  const Bytes blob = fleet::make_delta(v1, v2, 1, 2, 128);

  // A node whose installed image is NOT v1 (replayed delta after it already
  // moved on, or a misrouted artifact) must refuse to patch.
  const Bytes other = patched_copy(v1, 700, 0x11);
  EXPECT_FALSE(fleet::apply_delta(other, view(blob)).has_value());
  EXPECT_TRUE(fleet::apply_delta(v1, view(blob)).has_value());
}

TEST(Delta, TamperedBlobRejected) {
  const Bytes v1 = core::make_test_image(1024, 3);
  const Bytes v2 = patched_copy(v1, 10, 0x55);
  const Bytes blob = fleet::make_delta(v1, v2, 1, 2, 128);

  // Flip one byte anywhere: header corruption fails parse, payload
  // corruption fails the new_hash end-point check. No offset may slip
  // through as a "successful" apply of wrong bytes.
  for (std::size_t at = 0; at < blob.size(); ++at) {
    const Bytes bad = patched_copy(blob, at, 0x80);
    const auto applied = fleet::apply_delta(v1, view(bad));
    if (applied.has_value()) {
      EXPECT_EQ(*applied, v2) << "tampered byte " << at;
    }
  }
  // Truncation fails loudly too.
  Bytes shorter(blob.begin(), blob.end() - 1);
  EXPECT_FALSE(fleet::apply_delta(v1, view(shorter)).has_value());
}

TEST(Delta, VersionMustMoveForward) {
  Bytes blob = fleet::make_delta(core::make_test_image(256, 1),
                                 core::make_test_image(256, 2), 3, 4, 64);
  // Rewriting the header to base 4 -> new 4 (replay shape) must fail parse.
  blob[4] = 4;  // base_version low byte
  EXPECT_FALSE(fleet::parse_delta(view(blob)).has_value());
}

// ---------------------------------------------------------------------------
// Delta end-to-end through the upgrade machinery (test_upgrade.cc pattern):
// a node running v1 adopts a SIGNED v2 whose payload is the delta blob,
// authenticates every packet in transit, and patches its installed image.
// ---------------------------------------------------------------------------

proto::CommonParams small_params(Version v = 1) {
  proto::CommonParams p;
  p.version = v;
  p.payload_size = 32;
  p.k = 8;
  p.n = 12;
  p.k0 = 4;
  p.n0 = 8;
  p.puzzle_strength = 4;
  return p;
}

class StaticEnv final : public sim::Env {
 public:
  sim::SimTime now() const override { return 0; }
  NodeId id() const override { return 5; }
  void broadcast(sim::PacketClass, Bytes) override {}
  sim::EventToken schedule(sim::SimTime, sim::EventFn) override {
    return sim::EventToken::from_bits(++token_bits_);
  }
  std::size_t pending_tx() const override { return 0; }
  void cancel(sim::EventToken) override {}
  Rng& rng() override { return rng_; }
  sim::NodeMetrics& metrics() override { return metrics_; }
  void notify_complete() override {}

 private:
  Rng rng_{1};
  sim::NodeMetrics metrics_;
  std::uint64_t token_bits_ = 0;
};

void pump(proto::SchemeState& src, proto::DissemNode& node) {
  for (std::uint32_t p = 0; p < src.num_pages(); ++p) {
    for (std::uint32_t j = 0; j < src.packets_in_page(p); ++j) {
      if (node.scheme().pages_complete() > p) break;
      proto::DataPacket d;
      d.version = src.version();
      d.page = p;
      d.index = j;
      d.payload = src.packet_payload(p, j).value();
      node.on_receive(view(d.serialize()));
    }
  }
}

TEST(DeltaUpgrade, NodeAdoptsSignedDeltaAndPatchesInstalledImage) {
  // One signer chain covers v1 (full image) and v2 (the delta blob).
  crypto::MultiKeySigner signer(view(Bytes{0x77}), 2);
  const Bytes image_v1 = core::make_test_image(1024, 11);
  Bytes image_v2 = image_v1;
  image_v2[50] ^= 0x0f;
  image_v2[900] ^= 0xf0;
  const Bytes blob = fleet::make_delta(image_v1, image_v2, 1, 2, 128);

  auto v1 = make_lr_source(small_params(1), image_v1, signer);
  auto v2 = make_lr_source(small_params(2), blob, signer);

  StaticEnv env;
  proto::EngineConfig cfg;
  cfg.scheme_factory =
      core::lr_scheme_factory(small_params(), signer.root_public_key());
  proto::DissemNode node(
      env, make_lr_receiver(small_params(), signer.root_public_key()), cfg,
      small_params().cluster_key);
  node.on_start();

  // Install v1 the ordinary way.
  node.on_receive(view(v1->signature_frame().value()));
  pump(*v1, node);
  ASSERT_TRUE(node.image_complete());
  ASSERT_EQ(node.scheme().assemble_image(), image_v1);

  // The v2 delta arrives: signed, so the node re-bootstraps onto it; every
  // data packet is hash-chain authenticated exactly like a full image.
  node.on_receive(view(v2->signature_frame().value()));
  EXPECT_EQ(node.scheme().version(), 2u);
  pump(*v2, node);
  ASSERT_TRUE(node.image_complete());
  const Bytes received_blob = node.scheme().assemble_image();
  EXPECT_EQ(received_blob, blob);

  // Patch the installed image with the authenticated blob.
  const auto patched = fleet::apply_delta(image_v1, view(received_blob));
  ASSERT_TRUE(patched.has_value());
  EXPECT_EQ(*patched, image_v2);

  // Replaying the (genuine) v1 signature must not roll the node back.
  node.on_receive(view(v1->signature_frame().value()));
  EXPECT_EQ(node.scheme().version(), 2u);
  EXPECT_TRUE(node.image_complete());
}

TEST(DeltaUpgrade, TamperedDeltaPacketRejectedInTransit) {
  crypto::MultiKeySigner signer(view(Bytes{0x77}), 2);
  const Bytes image_v1 = core::make_test_image(1024, 11);
  const Bytes image_v2 = patched_copy(image_v1, 50, 0x0f);
  const Bytes blob = fleet::make_delta(image_v1, image_v2, 1, 2, 128);
  auto src = make_lr_source(small_params(2), blob, signer);

  core::Receiver rx(small_params(2), signer.root_public_key());
  ASSERT_TRUE(rx.feed_signature(view(src->signature_frame().value())));

  // A forged packet (payload bit flipped) must be rejected before buffering
  // — immediate per-packet authentication applies to delta blobs unchanged.
  Bytes payload = src->packet_payload(0, 0).value();
  payload[0] ^= 0x01;
  EXPECT_EQ(rx.feed_data(0, 0, view(payload)),
            proto::DataStatus::kRejected);
  // The genuine packet is accepted.
  EXPECT_EQ(rx.feed_data(0, 0, view(src->packet_payload(0, 0).value())),
            proto::DataStatus::kStored);
}

// ---------------------------------------------------------------------------
// clone_source: shared preprocessing, no re-signing
// ---------------------------------------------------------------------------

TEST(CloneSource, ClonesServeIdenticalPacketsWithoutConsumingKeys) {
  core::Publisher publisher(small_params(1), view(Bytes{0x42}), 2);
  const Bytes image = core::make_test_image(1024, 5);
  auto master = publisher.prepare(image);
  const std::size_t left = publisher.signatures_left();

  auto clone = master->clone_source();
  ASSERT_NE(clone, nullptr);
  EXPECT_EQ(publisher.signatures_left(), left);  // no key consumed

  ASSERT_TRUE(clone->image_complete());
  EXPECT_EQ(clone->assemble_image(), image);
  EXPECT_EQ(clone->signature_frame(), master->signature_frame());
  for (std::uint32_t p = 0; p < master->num_pages(); ++p) {
    for (std::uint32_t j = 0; j < master->packets_in_page(p); ++j) {
      EXPECT_EQ(clone->packet_payload(p, j), master->packet_payload(p, j));
    }
  }
}

TEST(CloneSource, IncompleteReceiverDoesNotClone) {
  const auto rx = make_lr_receiver(small_params(), crypto::PacketHash{});
  EXPECT_EQ(rx->clone_source(), nullptr);
}

// ---------------------------------------------------------------------------
// Work-stealing scheduler
// ---------------------------------------------------------------------------

TEST(ParallelForWs, RunsEveryIndexExactlyOnce) {
  for (const std::size_t count : {0u, 1u, 7u, 64u, 1000u}) {
    for (const std::size_t jobs : {1u, 2u, 8u, 2000u}) {
      std::vector<std::atomic<int>> hits(count);
      core::parallel_for_ws(count, jobs, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      });
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "count=" << count << " jobs=" << jobs;
      }
    }
  }
}

TEST(ParallelForWs, StealsHappenOnSkewedLoads) {
  // Worker 0 owns the single huge task (index 0); the other workers finish
  // their blocks and must steal to stay busy. With enough tiny tasks after
  // a blocking head task, at least one steal is all but guaranteed — but
  // the assertion stays weak (>= 0 by type) plus every-index-once, because
  // steal COUNTS are schedule-dependent by design.
  std::atomic<std::uint64_t> sum{0};
  const std::size_t steals =
      core::parallel_for_ws(256, 4, [&](std::size_t i) {
        volatile std::uint64_t x = 0;
        const std::uint64_t reps = i == 0 ? 2000000 : 100;
        for (std::uint64_t r = 0; r < reps; ++r) x = x + r;
        sum.fetch_add(1, std::memory_order_relaxed);
      });
  EXPECT_EQ(sum.load(), 256u);
  (void)steals;
}

TEST(ParallelForWs, FirstExceptionPropagatesAndWorkCompletes) {
  std::vector<std::atomic<int>> hits(100);
  EXPECT_THROW(
      core::parallel_for_ws(100, 8,
                            [&](std::size_t i) {
                              if (i == 13) throw std::runtime_error("boom");
                              hits[i].fetch_add(1,
                                                std::memory_order_relaxed);
                            }),
      std::runtime_error);
  // Every other task still ran exactly once (the failed worker's leftover
  // deque is stolen by the survivors).
  for (std::size_t i = 0; i < 100; ++i) {
    if (i == 13) continue;
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelForWs, VictimOrderIsDeterministic) {
  const auto a = core::detail::steal_victim_order(2, 8);
  const auto b = core::detail::steal_victim_order(2, 8);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 7u);
  for (std::size_t v : a) EXPECT_NE(v, 2u);
  // Different workers get different permutations (seeded by worker id).
  EXPECT_NE(core::detail::steal_victim_order(0, 8),
            core::detail::steal_victim_order(1, 8));
}

// ---------------------------------------------------------------------------
// FleetEngine: lifecycle, convergence, serial-vs-parallel byte identity
// ---------------------------------------------------------------------------

fleet::TenantSpec small_tenant(const std::string& name, std::uint64_t seed,
                               erasure::CodecKind codec, Version version,
                               bool delta) {
  fleet::TenantSpec spec;
  spec.name = name;
  spec.params = small_params(version);
  spec.params.codec = codec;
  spec.delta = delta;
  spec.image_size = 768;
  spec.seed = seed;
  spec.cells = 4;
  spec.receivers_min = 2;
  spec.receivers_max = 6;
  spec.loss_p = 0.05;
  spec.timing.trickle.tau_low = 250 * sim::kMillisecond;
  spec.timing.trickle.tau_high = 4 * sim::kSecond;
  spec.time_limit = 600LL * sim::kSecond;
  return spec;
}

fleet::FleetEngine make_small_fleet() {
  fleet::FleetEngine engine;
  engine.add_tenant(small_tenant("alpha", 10,
                                 erasure::CodecKind::kReedSolomon, 1,
                                 false));
  engine.add_tenant(small_tenant("bravo", 20, erasure::CodecKind::kLrc, 3,
                                 false));
  engine.add_tenant(small_tenant("delta", 30,
                                 erasure::CodecKind::kXorSchedule, 2,
                                 true));
  return engine;
}

TEST(FleetEngine, LifecycleAndConvergence) {
  fleet::FleetEngine engine = make_small_fleet();
  ASSERT_EQ(engine.tenant_count(), 3u);
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_EQ(engine.phase(t), fleet::TenantPhase::kRegistered);
  }

  engine.prepare();
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_EQ(engine.phase(t), fleet::TenantPhase::kPrepared);
  }
  // The delta tenant disseminates the blob, not the image — and the blob
  // patches the previous version's image into the new one.
  EXPECT_NE(engine.payload(2), engine.image(2));
  const auto patched =
      fleet::apply_delta(engine.base_image(2), view(engine.payload(2)));
  ASSERT_TRUE(patched.has_value());
  EXPECT_EQ(*patched, engine.image(2));

  const fleet::FleetReport report = engine.run(2);
  ASSERT_EQ(report.tenants.size(), 3u);
  EXPECT_EQ(report.cells, 12u);
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_EQ(engine.phase(t), fleet::TenantPhase::kConverged)
        << report.tenants[t].name << ": " << report.tenants[t].converged_cells
        << "/" << report.tenants[t].cells;
    EXPECT_EQ(report.tenants[t].phase, fleet::TenantPhase::kConverged);
    EXPECT_TRUE(report.tenants[t].images_ok);
    EXPECT_GT(report.tenants[t].events, 0u);
    EXPECT_GE(report.tenants[t].imbalance(), 1.0);
  }
}

/// The deterministic core of a TenantResult, comparable across runs.
std::string deterministic_key(const fleet::TenantResult& t) {
  return t.name + "|" + std::to_string(t.cells) + "|" +
         std::to_string(t.converged_cells) + "|" +
         std::to_string(t.receivers) + "|" + std::to_string(t.events) + "|" +
         std::to_string(t.max_cell_events) + "|" +
         std::to_string(t.data_packets) + "|" +
         std::to_string(t.snack_packets) + "|" +
         std::to_string(t.total_bytes) + "|" +
         std::to_string(t.latency_max_s) + "|" +
         (t.images_ok ? "ok" : "bad");
}

TEST(FleetEngine, SerialAndParallelRunsAreByteIdentical) {
  fleet::FleetEngine serial = make_small_fleet();
  serial.prepare();
  const fleet::FleetReport a = serial.run(1);

  fleet::FleetEngine parallel = make_small_fleet();
  parallel.prepare();
  const fleet::FleetReport b = parallel.run(8);

  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (std::size_t t = 0; t < a.tenants.size(); ++t) {
    EXPECT_EQ(deterministic_key(a.tenants[t]), deterministic_key(b.tenants[t]));
  }
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.max_cell_events, b.max_cell_events);
  EXPECT_EQ(a.steals, 0u);  // one worker has no one to steal from
}

TEST(FleetEngine, CellDerivationsAreDeterministicAndInRange) {
  const fleet::TenantSpec spec =
      small_tenant("x", 99, erasure::CodecKind::kReedSolomon, 1, false);
  for (std::size_t c = 0; c < 100; ++c) {
    const std::size_t r1 = fleet::cell_receivers(spec, c);
    const std::size_t r2 = fleet::cell_receivers(spec, c);
    EXPECT_EQ(r1, r2);
    EXPECT_GE(r1, spec.receivers_min);
    EXPECT_LE(r1, spec.receivers_max);
    EXPECT_EQ(fleet::cell_seed(spec, c), fleet::cell_seed(spec, c));
  }
  // Adjacent cells decorrelate.
  EXPECT_NE(fleet::cell_seed(spec, 0), fleet::cell_seed(spec, 1));
}

}  // namespace
}  // namespace lrs
