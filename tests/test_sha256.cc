// SHA-256 known-answer tests (FIPS 180-4 / NIST CAVP vectors) and
// incremental-API behavior.
#include <gtest/gtest.h>

#include <string>

#include "crypto/sha256.h"
#include "util/hex.h"

namespace lrs::crypto {
namespace {

std::string hash_hex(const std::string& msg) {
  const auto d = Sha256::hash(
      ByteView(reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
  return to_hex(ByteView(d.data(), d.size()));
}

TEST(Sha256, EmptyString) {
  EXPECT_EQ(hash_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hash_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hash_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, FourBlock896BitMessage) {
  EXPECT_EQ(hash_hex("abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
                     "hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1");
}

TEST(Sha256, MillionAs) {
  Sha256 ctx;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    ctx.update(ByteView(reinterpret_cast<const std::uint8_t*>(chunk.data()),
                        chunk.size()));
  }
  const auto d = ctx.finalize();
  EXPECT_EQ(to_hex(ByteView(d.data(), d.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShotAtEveryBoundary) {
  // Sweep split points around the 64-byte block boundary.
  std::string msg;
  for (int i = 0; i < 200; ++i) msg.push_back(static_cast<char>('A' + i % 26));
  const auto expect = hash_hex(msg);
  for (std::size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 ctx;
    ctx.update(ByteView(reinterpret_cast<const std::uint8_t*>(msg.data()),
                        split));
    ctx.update(ByteView(
        reinterpret_cast<const std::uint8_t*>(msg.data()) + split,
        msg.size() - split));
    const auto d = ctx.finalize();
    EXPECT_EQ(to_hex(ByteView(d.data(), d.size())), expect) << split;
  }
}

TEST(Sha256, ExactBlockLengths) {
  // 55/56/57/63/64/65 bytes exercise every padding branch.
  const char* expected[] = {
      // echo -n <55 a's> | sha256sum, etc. (NIST-derived)
      "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318",
      "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a",
      "f13b2d724659eb3bf47f2dd6af1accc87b81f09f59f2b75e5c0bed6589dfe8c6",
      "7d3e74a05d7db15bce4ad9ec0658ea98e3f06eeecf16b4c6fff2da457ddc2f34",
      "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb",
      "635361c48bb9eab14198e76ea8ab7f1a41685d6ad62aa9146d301d4f17eb0ae0"};
  const std::size_t lengths[] = {55, 56, 57, 63, 64, 65};
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(hash_hex(std::string(lengths[i], 'a')), expected[i])
        << lengths[i];
  }
}

TEST(Sha256, ReuseAfterFinalizeThrows) {
  Sha256 ctx;
  ctx.update(Bytes{1, 2, 3});
  ctx.finalize();
  EXPECT_THROW(ctx.update(Bytes{4}), std::logic_error);
  EXPECT_THROW(ctx.finalize(), std::logic_error);
}

}  // namespace
}  // namespace lrs::crypto
