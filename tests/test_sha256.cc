// SHA-256 known-answer tests (FIPS 180-4 / NIST CAVP vectors),
// incremental-API behavior, and differential tests for the dispatched
// kernel layer: every compiled-in kernel (and the batch entry points) must
// match the scalar reference byte-for-byte for every message length around
// the block/padding boundaries.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "crypto/hash.h"
#include "crypto/sha256.h"
#include "crypto/sha256_kernels.h"
#include "util/hex.h"
#include "util/rng.h"

namespace lrs::crypto {
namespace {

std::string hash_hex(const std::string& msg) {
  const auto d = Sha256::hash(
      ByteView(reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
  return to_hex(ByteView(d.data(), d.size()));
}

TEST(Sha256, EmptyString) {
  EXPECT_EQ(hash_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hash_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hash_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, FourBlock896BitMessage) {
  EXPECT_EQ(hash_hex("abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
                     "hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1");
}

TEST(Sha256, MillionAs) {
  Sha256 ctx;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    ctx.update(ByteView(reinterpret_cast<const std::uint8_t*>(chunk.data()),
                        chunk.size()));
  }
  const auto d = ctx.finalize();
  EXPECT_EQ(to_hex(ByteView(d.data(), d.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShotAtEveryBoundary) {
  // Sweep split points around the 64-byte block boundary.
  std::string msg;
  for (int i = 0; i < 200; ++i) msg.push_back(static_cast<char>('A' + i % 26));
  const auto expect = hash_hex(msg);
  for (std::size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 ctx;
    ctx.update(ByteView(reinterpret_cast<const std::uint8_t*>(msg.data()),
                        split));
    ctx.update(ByteView(
        reinterpret_cast<const std::uint8_t*>(msg.data()) + split,
        msg.size() - split));
    const auto d = ctx.finalize();
    EXPECT_EQ(to_hex(ByteView(d.data(), d.size())), expect) << split;
  }
}

TEST(Sha256, ExactBlockLengths) {
  // 55/56/57/63/64/65 bytes exercise every padding branch.
  const char* expected[] = {
      // echo -n <55 a's> | sha256sum, etc. (NIST-derived)
      "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318",
      "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a",
      "f13b2d724659eb3bf47f2dd6af1accc87b81f09f59f2b75e5c0bed6589dfe8c6",
      "7d3e74a05d7db15bce4ad9ec0658ea98e3f06eeecf16b4c6fff2da457ddc2f34",
      "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb",
      "635361c48bb9eab14198e76ea8ab7f1a41685d6ad62aa9146d301d4f17eb0ae0"};
  const std::size_t lengths[] = {55, 56, 57, 63, 64, 65};
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(hash_hex(std::string(lengths[i], 'a')), expected[i])
        << lengths[i];
  }
}

TEST(Sha256, ReuseAfterFinalizeThrows) {
  Sha256 ctx;
  ctx.update(Bytes{1, 2, 3});
  ctx.finalize();
  EXPECT_THROW(ctx.update(Bytes{4}), std::logic_error);
  EXPECT_THROW(ctx.finalize(), std::logic_error);
}

// ---------------------------------------------------------------------------
// Kernel registry and differential tests.
// ---------------------------------------------------------------------------

Bytes random_bytes(std::size_t len, Rng& rng) {
  Bytes b(len);
  for (auto& v : b) v = static_cast<std::uint8_t>(rng.uniform(256));
  return b;
}

/// Restores the auto-selected kernel even when a test fails mid-way.
struct KernelGuard {
  ~KernelGuard() { sha256_set_kernel("auto"); }
};

TEST(Sha256Kernels, RegistryAlwaysHasRefAndUnrolled) {
  const auto names = sha256_available_kernels();
  EXPECT_NE(std::find(names.begin(), names.end(), "ref"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "unrolled"), names.end());
  for (const auto& name : names) {
    EXPECT_NE(sha256_find_kernel(name), nullptr) << name;
  }
  EXPECT_EQ(sha256_find_kernel("no-such-kernel"), nullptr);
  EXPECT_EQ(sha256_find_kernel("auto"), nullptr);
  for (const auto& name : sha256_available_batch_kernels()) {
    const auto* k = sha256_find_batch_kernel(name);
    ASSERT_NE(k, nullptr) << name;
    EXPECT_GE(k->lanes, 1u) << name;
  }
  EXPECT_EQ(sha256_find_batch_kernel("no-such-kernel"), nullptr);
}

TEST(Sha256Kernels, SetKernelRejectsUnknownAndAcceptsAuto) {
  KernelGuard guard;
  const std::string before = sha256_kernel().name;
  EXPECT_FALSE(sha256_set_kernel("no-such-kernel"));
  EXPECT_EQ(sha256_kernel().name, before);  // unchanged on failure
  EXPECT_TRUE(sha256_set_kernel("auto"));
  EXPECT_TRUE(sha256_set_kernel(before));
}

TEST(Sha256Kernels, PinningScalarKernelDisablesBatchPath) {
  KernelGuard guard;
  ASSERT_TRUE(sha256_set_kernel("ref"));
  EXPECT_EQ(sha256_batch_kernel(), nullptr);
  ASSERT_TRUE(sha256_set_kernel("auto"));
  if (!sha256_available_batch_kernels().empty()) {
    EXPECT_NE(sha256_batch_kernel(), nullptr);
  }
}

// Every kernel must produce the reference digest for every length 0..1025:
// that range crosses the 55/56/64-byte padding branches, both one- and
// two-block tails, and multi-block messages.
TEST(Sha256Kernels, AllKernelsMatchReferenceForLengths0To1025) {
  KernelGuard guard;
  Rng rng(0x5eed);
  std::vector<Bytes> messages;
  for (std::size_t len = 0; len <= 1025; ++len) {
    messages.push_back(random_bytes(len, rng));
  }

  ASSERT_TRUE(sha256_set_kernel("ref"));
  std::vector<Sha256Digest> expected;
  for (const auto& m : messages) expected.push_back(Sha256::hash(view(m)));

  for (const auto& name : sha256_available_kernels()) {
    ASSERT_TRUE(sha256_set_kernel(name)) << name;
    for (std::size_t len = 0; len < messages.size(); ++len) {
      ASSERT_EQ(Sha256::hash(view(messages[len])), expected[len])
          << "kernel=" << name << " len=" << len;
    }
  }
}

// The raw batch compressors must agree with the reference compressor on
// every lane, including ragged counts that exercise the remainder loop.
TEST(Sha256Kernels, BatchCompressorsMatchReferenceCompressor) {
  const Sha256Kernel* ref = sha256_find_kernel("ref");
  ASSERT_NE(ref, nullptr);
  Rng rng(0xba7c4);
  for (const auto& name : sha256_available_batch_kernels()) {
    const Sha256BatchKernel* batch = sha256_find_batch_kernel(name);
    ASSERT_NE(batch, nullptr) << name;
    for (std::size_t count : {1u, 3u, 4u, 5u, 8u, 9u, 17u}) {
      const Bytes data = random_bytes(count * 64, rng);
      std::vector<const std::uint8_t*> ptrs(count);
      std::vector<std::uint32_t> got(count * 8), want(count * 8);
      for (std::size_t i = 0; i < count; ++i) {
        ptrs[i] = data.data() + 64 * i;
        for (int j = 0; j < 8; ++j) {
          got[8 * i + j] = want[8 * i + j] = kSha256Init[j];
        }
      }
      batch->compress_batch(got.data(), ptrs.data(), count);
      for (std::size_t i = 0; i < count; ++i) {
        ref->compress(want.data() + 8 * i, ptrs[i], 1);
      }
      ASSERT_EQ(got, want) << "kernel=" << name << " count=" << count;
    }
  }
}

// hash_batch must equal one-shot hashing whatever mix of lengths it sees
// and whichever kernels are active.
TEST(Sha256Kernels, HashBatchMatchesOneShotForAllKernels) {
  KernelGuard guard;
  Rng rng(0xfeed);
  // Uniform runs (batch path), mixed lengths (run splitting), singletons.
  std::vector<Bytes> messages;
  for (std::size_t i = 0; i < 9; ++i) messages.push_back(random_bytes(64, rng));
  for (std::size_t len : {0u, 1u, 55u, 56u, 63u, 64u, 65u, 127u, 128u, 300u}) {
    messages.push_back(random_bytes(len, rng));
  }
  for (std::size_t i = 0; i < 5; ++i) messages.push_back(random_bytes(77, rng));

  std::vector<ByteView> views;
  for (const auto& m : messages) views.push_back(view(m));

  ASSERT_TRUE(sha256_set_kernel("ref"));
  std::vector<Sha256Digest> expected;
  for (const auto& m : messages) expected.push_back(Sha256::hash(view(m)));

  std::vector<std::string> modes = sha256_available_kernels();
  modes.push_back("auto");
  for (const auto& name : modes) {
    ASSERT_TRUE(sha256_set_kernel(name)) << name;
    const auto got = hash_batch(std::span<const ByteView>(views));
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], expected[i]) << "kernel=" << name << " msg=" << i;
    }
  }
}

TEST(Sha256Kernels, PacketHashBatchMatchesPacketHash) {
  Rng rng(0x9a5);
  std::vector<Bytes> messages;
  for (std::size_t i = 0; i < 48; ++i) messages.push_back(random_bytes(77, rng));
  std::vector<ByteView> views;
  for (const auto& m : messages) views.push_back(view(m));
  std::vector<PacketHash> got(messages.size());
  packet_hash_batch(views.data(), messages.size(), got.data());
  for (std::size_t i = 0; i < messages.size(); ++i) {
    ASSERT_EQ(got[i], packet_hash(view(messages[i]))) << i;
  }
}

}  // namespace
}  // namespace lrs::crypto
