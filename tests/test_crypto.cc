// HMAC (RFC 4231 vectors), Merkle tree, WOTS / multi-key signatures and the
// message-specific puzzle.
#include <gtest/gtest.h>

#include <string>

#include "crypto/hash.h"
#include "crypto/hmac.h"
#include "crypto/merkle.h"
#include "crypto/puzzle.h"
#include "crypto/wots.h"
#include "util/hex.h"

namespace lrs::crypto {
namespace {

Bytes str_bytes(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

// ---------------------------------------------------------------------------
// HMAC-SHA256
// ---------------------------------------------------------------------------

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const auto mac = hmac_sha256(view(key), view(str_bytes("Hi There")));
  EXPECT_EQ(to_hex(ByteView(mac.data(), mac.size())),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const auto mac = hmac_sha256(
      view(str_bytes("Jefe")), view(str_bytes("what do ya want for nothing?")));
  EXPECT_EQ(to_hex(ByteView(mac.data(), mac.size())),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  const auto mac = hmac_sha256(view(key), view(data));
  EXPECT_EQ(to_hex(ByteView(mac.data(), mac.size())),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  const Bytes key(131, 0xaa);
  const auto mac = hmac_sha256(
      view(key), view(str_bytes("Test Using Larger Than Block-Size Key - "
                                "Hash Key First")));
  EXPECT_EQ(to_hex(ByteView(mac.data(), mac.size())),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(ControlMac, VerifiesAndRejectsTamper) {
  const Bytes key{1, 2, 3};
  const Bytes msg{9, 9, 9};
  const ControlMac mac = control_mac(view(key), view(msg));
  EXPECT_TRUE(verify_control_mac(view(key), view(msg), mac));
  Bytes other{9, 9, 8};
  EXPECT_FALSE(verify_control_mac(view(key), view(other), mac));
  const Bytes wrong_key{1, 2, 4};
  EXPECT_FALSE(verify_control_mac(view(wrong_key), view(msg), mac));
}

// ---------------------------------------------------------------------------
// Packet hashes
// ---------------------------------------------------------------------------

TEST(PacketHashTest, IsPrefixOfSha256) {
  const Bytes data{1, 2, 3};
  const auto full = Sha256::hash(view(data));
  const auto trunc = packet_hash(view(data));
  for (std::size_t i = 0; i < kPacketHashSize; ++i)
    EXPECT_EQ(trunc[i], full[i]);
}

TEST(PacketHashTest, ReadAtOffset) {
  Bytes buf(24, 0);
  const PacketHash h = packet_hash(view(Bytes{7}));
  std::copy(h.begin(), h.end(), buf.begin() + 8);
  EXPECT_TRUE(equal(read_packet_hash(view(buf), 8), h));
  EXPECT_THROW(read_packet_hash(view(buf), 20), std::logic_error);
}

// ---------------------------------------------------------------------------
// Merkle tree
// ---------------------------------------------------------------------------

std::vector<Bytes> make_leaves(std::size_t count) {
  std::vector<Bytes> leaves;
  for (std::size_t i = 0; i < count; ++i)
    leaves.push_back(Bytes{static_cast<std::uint8_t>(i), 0x55,
                           static_cast<std::uint8_t>(i * 7)});
  return leaves;
}

TEST(Merkle, EveryLeafVerifiesAgainstRoot) {
  for (std::size_t count : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const auto leaves = make_leaves(count);
    const auto tree = MerkleTree::build(leaves);
    EXPECT_EQ(tree.leaf_count(), count);
    for (std::size_t i = 0; i < count; ++i) {
      const auto path = tree.auth_path(i);
      EXPECT_EQ(path.size(), tree.depth());
      EXPECT_TRUE(equal(
          MerkleTree::compute_root(view(leaves[i]), i, path), tree.root()))
          << "count=" << count << " leaf=" << i;
    }
  }
}

TEST(Merkle, TamperedLeafFails) {
  const auto leaves = make_leaves(8);
  const auto tree = MerkleTree::build(leaves);
  Bytes forged = leaves[3];
  forged[0] ^= 1;
  EXPECT_FALSE(equal(
      MerkleTree::compute_root(view(forged), 3, tree.auth_path(3)),
      tree.root()));
}

TEST(Merkle, WrongIndexFails) {
  const auto leaves = make_leaves(8);
  const auto tree = MerkleTree::build(leaves);
  EXPECT_FALSE(equal(
      MerkleTree::compute_root(view(leaves[3]), 4, tree.auth_path(3)),
      tree.root()));
}

TEST(Merkle, TamperedPathFails) {
  const auto leaves = make_leaves(8);
  const auto tree = MerkleTree::build(leaves);
  auto path = tree.auth_path(5);
  path[1][0] ^= 1;
  EXPECT_FALSE(
      equal(MerkleTree::compute_root(view(leaves[5]), 5, path), tree.root()));
}

TEST(Merkle, NonPowerOfTwoRejected) {
  EXPECT_THROW(MerkleTree::build(make_leaves(3)), std::logic_error);
  EXPECT_THROW(MerkleTree::build({}), std::logic_error);
}

TEST(Merkle, LeafAndNodeDomainsSeparated) {
  // A leaf containing exactly the encoding of two child hashes must not
  // collide with the internal node above them.
  const auto leaves = make_leaves(2);
  const auto tree = MerkleTree::build(leaves);
  const PacketHash l0 = MerkleTree::leaf_hash(view(leaves[0]));
  const PacketHash l1 = MerkleTree::leaf_hash(view(leaves[1]));
  Bytes concat;
  append(concat, l0);
  append(concat, l1);
  EXPECT_FALSE(equal(MerkleTree::leaf_hash(view(concat)),
                     MerkleTree::node_hash(l0, l1)));
}

// ---------------------------------------------------------------------------
// WOTS
// ---------------------------------------------------------------------------

TEST(Wots, SignVerifyRoundTrip) {
  const Bytes seed{1, 2, 3, 4};
  auto kp = WotsKeyPair::generate(view(seed), 0);
  const Bytes msg = str_bytes("new code image v2");
  const auto sig = kp.sign(view(msg));
  EXPECT_TRUE(WotsKeyPair::verify(kp.public_key(), view(msg), sig));
}

TEST(Wots, WrongMessageFails) {
  const Bytes seed{1, 2, 3, 4};
  auto kp = WotsKeyPair::generate(view(seed), 0);
  const auto sig = kp.sign(view(str_bytes("genuine")));
  EXPECT_FALSE(WotsKeyPair::verify(kp.public_key(), view(str_bytes("forged")),
                                   sig));
}

TEST(Wots, TamperedSignatureFails) {
  const Bytes seed{9};
  auto kp = WotsKeyPair::generate(view(seed), 0);
  const Bytes msg = str_bytes("m");
  auto sig = kp.sign(view(msg));
  sig.chains[5][0] ^= 1;
  EXPECT_FALSE(WotsKeyPair::verify(kp.public_key(), view(msg), sig));
}

TEST(Wots, KeyReuseRefused) {
  const Bytes seed{7};
  auto kp = WotsKeyPair::generate(view(seed), 0);
  kp.sign(view(str_bytes("one")));
  EXPECT_THROW(kp.sign(view(str_bytes("two"))), std::logic_error);
}

TEST(Wots, DistinctIndicesGiveDistinctKeys) {
  const Bytes seed{7};
  auto a = WotsKeyPair::generate(view(seed), 0);
  auto b = WotsKeyPair::generate(view(seed), 1);
  EXPECT_FALSE(equal(a.public_key(), b.public_key()));
}

TEST(Wots, SignatureSerializationRoundTrip) {
  const Bytes seed{3};
  auto kp = WotsKeyPair::generate(view(seed), 0);
  const Bytes msg = str_bytes("x");
  const auto sig = kp.sign(view(msg));
  const Bytes raw = sig.serialize();
  EXPECT_EQ(raw.size(), WotsSignature::kSerializedSize);
  const auto back = WotsSignature::deserialize(view(raw));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(WotsKeyPair::verify(kp.public_key(), view(msg), *back));
}

// ---------------------------------------------------------------------------
// MultiKeySigner
// ---------------------------------------------------------------------------

TEST(MultiKeySigner, SignsUpToCapacityThenThrows) {
  const Bytes seed{1};
  MultiKeySigner signer(view(seed), 2);
  EXPECT_EQ(signer.capacity(), 4u);
  for (int i = 0; i < 4; ++i) {
    const Bytes msg{static_cast<std::uint8_t>(i)};
    const auto sig = signer.sign(view(msg));
    EXPECT_TRUE(
        MultiKeySigner::verify(signer.root_public_key(), view(msg), sig));
  }
  const Bytes msg{99};
  EXPECT_THROW(signer.sign(view(msg)), std::runtime_error);
}

TEST(MultiKeySigner, CrossMessageForgeryFails) {
  const Bytes seed{2};
  MultiKeySigner signer(view(seed), 1);
  const auto sig = signer.sign(view(Bytes{1}));
  EXPECT_FALSE(MultiKeySigner::verify(signer.root_public_key(), view(Bytes{2}),
                                      sig));
}

TEST(MultiKeySigner, ForeignKeyRejected) {
  const Bytes seed_a{3}, seed_b{4};
  MultiKeySigner alice(view(seed_a), 1);
  MultiKeySigner mallory(view(seed_b), 1);
  const Bytes msg{7};
  const auto sig = mallory.sign(view(msg));
  // Mallory's signature verifies under her root but not Alice's.
  EXPECT_TRUE(
      MultiKeySigner::verify(mallory.root_public_key(), view(msg), sig));
  EXPECT_FALSE(
      MultiKeySigner::verify(alice.root_public_key(), view(msg), sig));
}

TEST(MultiKeySigner, SerializationRoundTrip) {
  const Bytes seed{5};
  MultiKeySigner signer(view(seed), 3);
  const Bytes msg = str_bytes("image metadata || root");
  const auto sig = signer.sign(view(msg));
  const auto back = CertifiedSignature::deserialize(view(sig.serialize()));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(
      MultiKeySigner::verify(signer.root_public_key(), view(msg), *back));
}

TEST(MultiKeySigner, TruncatedSerializationRejected) {
  const Bytes seed{6};
  MultiKeySigner signer(view(seed), 1);
  Bytes raw = signer.sign(view(Bytes{1})).serialize();
  raw.resize(raw.size() - 1);
  EXPECT_FALSE(CertifiedSignature::deserialize(view(raw)).has_value());
}

// ---------------------------------------------------------------------------
// Puzzle
// ---------------------------------------------------------------------------

TEST(Puzzle, SolveThenVerify) {
  const Bytes msg = str_bytes("signature packet body");
  const auto sol = solve_puzzle(view(msg), 12);
  EXPECT_TRUE(verify_puzzle(view(msg), sol));
}

TEST(Puzzle, WrongMessageFails) {
  const Bytes msg = str_bytes("genuine");
  const auto sol = solve_puzzle(view(msg), 12);
  EXPECT_FALSE(verify_puzzle(view(str_bytes("forged!")), sol));
}

TEST(Puzzle, RandomSolutionAlmostNeverValid) {
  const Bytes msg = str_bytes("target");
  int valid = 0;
  for (std::uint64_t s = 0; s < 200; ++s) {
    PuzzleSolution guess{16, s * 7919 + 1};
    valid += verify_puzzle(view(msg), guess);
  }
  EXPECT_LE(valid, 1);
}

TEST(Puzzle, StrengthZeroAlwaysPasses) {
  const Bytes msg = str_bytes("m");
  PuzzleSolution sol{0, 12345};
  EXPECT_TRUE(verify_puzzle(view(msg), sol));
}

TEST(Puzzle, AbsurdStrengthRejected) {
  const Bytes msg = str_bytes("m");
  PuzzleSolution sol{200, 0};
  EXPECT_FALSE(verify_puzzle(view(msg), sol));
  EXPECT_THROW(solve_puzzle(view(msg), 200), std::logic_error);
}

TEST(Puzzle, SerializationRoundTrip) {
  PuzzleSolution sol{13, 0xdeadbeefcafeULL};
  const auto back = PuzzleSolution::deserialize(view(sol.serialize()));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->strength, 13);
  EXPECT_EQ(back->solution, 0xdeadbeefcafeULL);
}

}  // namespace
}  // namespace lrs::crypto
