// Wire-format round trips, MAC enforcement on control packets, and
// malformed/hostile input handling. Also covers the page layout math.
#include <gtest/gtest.h>

#include "proto/layout.h"
#include "proto/packet.h"

namespace lrs::proto {
namespace {

const Bytes kKey{1, 2, 3, 4};

TEST(AdvertisementTest, RoundTripWithMac) {
  Advertisement a;
  a.version = 7;
  a.sender = 12;
  a.pages_complete = 5;
  a.bootstrapped = true;
  const Bytes frame = a.serialize(view(kKey));
  EXPECT_EQ(peek_type(view(frame)), PacketType::kAdvertisement);
  const auto back = Advertisement::parse(view(frame), view(kKey));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->version, 7u);
  EXPECT_EQ(back->sender, 12u);
  EXPECT_EQ(back->pages_complete, 5u);
  EXPECT_TRUE(back->bootstrapped);
}

TEST(AdvertisementTest, TamperedMacRejected) {
  Advertisement a;
  a.version = 1;
  Bytes frame = a.serialize(view(kKey));
  frame[2] ^= 1;
  EXPECT_FALSE(Advertisement::parse(view(frame), view(kKey)).has_value());
}

TEST(AdvertisementTest, WrongKeyRejected) {
  Advertisement a;
  const Bytes frame = a.serialize(view(kKey));
  const Bytes other{9, 9};
  EXPECT_FALSE(Advertisement::parse(view(frame), view(other)).has_value());
}

TEST(AdvertisementTest, NoKeyMeansNoMac) {
  Advertisement a;
  a.pages_complete = 3;
  const Bytes frame = a.serialize({});
  const auto back = Advertisement::parse(view(frame), {});
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->pages_complete, 3u);
}

TEST(SnackTest, RoundTripPreservesBitmap) {
  Snack s;
  s.version = 2;
  s.sender = 4;
  s.target = 9;
  s.page = 3;
  s.requested = BitVec(48);
  s.requested.set(0);
  s.requested.set(13);
  s.requested.set(47);
  const Bytes frame = s.serialize(view(kKey));
  const auto back = Snack::parse(view(frame), view(kKey));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->requested, s.requested);
  EXPECT_EQ(back->target, 9u);
  EXPECT_EQ(back->page, 3u);
}

TEST(SnackTest, LrBitmapIsLongerOnTheWire) {
  // Paper: LR-Seluge SNACKs are n-k bits longer than Seluge's.
  Snack lr, seluge;
  lr.requested = BitVec(48);      // n
  seluge.requested = BitVec(32);  // k
  EXPECT_EQ(lr.serialize(view(kKey)).size() -
                seluge.serialize(view(kKey)).size(),
            (48 - 32) / 8u);
}

TEST(SnackTest, SignatureRequestSentinelRoundTrips) {
  Snack s;
  s.page = kSignatureRequestPage;
  const auto back = Snack::parse(view(s.serialize(view(kKey))), view(kKey));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->page, kSignatureRequestPage);
}

TEST(DataPacketTest, RoundTrip) {
  DataPacket d;
  d.version = 1;
  d.page = 6;
  d.index = 40;
  d.payload = Bytes(64, 0xab);
  const Bytes frame = d.serialize();
  const auto back = DataPacket::parse(view(frame));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->page, 6u);
  EXPECT_EQ(back->index, 40u);
  EXPECT_EQ(back->payload, d.payload);
}

TEST(DataPacketTest, HashPreimageBindsPosition) {
  DataPacket a, b;
  a.payload = b.payload = Bytes(8, 1);
  a.page = 1;
  b.page = 2;
  EXPECT_NE(a.hash_preimage(), b.hash_preimage());
  b.page = 1;
  b.index = 5;
  EXPECT_NE(a.hash_preimage(), b.hash_preimage());
}

TEST(DataPacketTest, MalformedInputsFailSoft) {
  Bytes garbage{3, 1, 2};  // type byte of data, then truncation
  EXPECT_FALSE(DataPacket::parse(view(garbage)).has_value());
  Bytes empty;
  EXPECT_FALSE(peek_type(view(empty)).has_value());
  Bytes unknown{200};
  EXPECT_FALSE(peek_type(view(unknown)).has_value());
}

TEST(DataPacketTest, TrailingGarbageRejected) {
  DataPacket d;
  d.payload = Bytes(4, 1);
  Bytes frame = d.serialize();
  frame.push_back(0);
  EXPECT_FALSE(DataPacket::parse(view(frame)).has_value());
}

TEST(SignaturePacketTest, RoundTrip) {
  SignaturePacket p;
  p.meta.version = 3;
  p.meta.content_pages = 12;
  p.meta.image_size = 20480;
  p.root.fill(0x5a);
  p.puzzle = {10, 777};
  p.signature = Bytes(100, 0xcd);
  const auto back = SignaturePacket::parse(view(p.serialize()));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->meta.content_pages, 12u);
  EXPECT_EQ(back->meta.image_size, 20480u);
  EXPECT_EQ(back->root, p.root);
  EXPECT_EQ(back->puzzle.solution, 777u);
  EXPECT_EQ(back->signature, p.signature);
}

TEST(SignaturePacketTest, SignedMessageCoversMetaAndRoot) {
  SignaturePacket a, b;
  a.root.fill(1);
  b.root.fill(1);
  b.meta.content_pages = 99;
  EXPECT_NE(a.signed_message(), b.signed_message());
  b.meta = a.meta;
  b.root.fill(2);
  EXPECT_NE(a.signed_message(), b.signed_message());
}

// ---------------------------------------------------------------------------
// Page layout math
// ---------------------------------------------------------------------------

TEST(LayoutTest, SinglePageWhenImageFitsLastCapacity) {
  const auto l = compute_layout(100, 50, 200);
  EXPECT_EQ(l.content_pages, 1u);
}

TEST(LayoutTest, PageCountFormula) {
  // 1000 bytes, mid 100, last 150: 1 + ceil((1000-150)/100) = 10.
  const auto l = compute_layout(1000, 100, 150);
  EXPECT_EQ(l.content_pages, 10u);
}

TEST(LayoutTest, SliceRoundTrip) {
  Bytes image(1000);
  for (std::size_t i = 0; i < image.size(); ++i)
    image[i] = static_cast<std::uint8_t>(i);
  const auto l = compute_layout(image.size(), 96, 128);
  Bytes rebuilt(image.size(), 0);
  for (std::size_t p = 1; p <= l.content_pages; ++p) {
    const Bytes slice = page_slice(view(image), l, p);
    EXPECT_EQ(slice.size(), p < l.content_pages ? 96u : 128u);
    place_slice(rebuilt, l, p, view(slice));
  }
  EXPECT_EQ(rebuilt, image);
}

TEST(LayoutTest, LastPagePadsWithZeros) {
  Bytes image(130, 0xff);
  const auto l = compute_layout(image.size(), 100, 100);
  EXPECT_EQ(l.content_pages, 2u);
  const Bytes last = page_slice(view(image), l, 2);
  EXPECT_EQ(last.size(), 100u);
  EXPECT_EQ(last[29], 0xff);
  EXPECT_EQ(last[30], 0x00);  // padding
}

TEST(LayoutTest, SplitBlocksPadsEvenly) {
  Bytes data(10, 7);
  const auto blocks = split_blocks(view(data), 4);
  ASSERT_EQ(blocks.size(), 4u);
  for (const auto& b : blocks) EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(blocks[3][0], 7);   // byte 9
  EXPECT_EQ(blocks[3][1], 0);   // padding
}

TEST(LayoutTest, SplitFixedUsesExactBlockSize) {
  Bytes data(10, 9);
  const auto blocks = split_fixed(view(data), 4, 3);
  ASSERT_EQ(blocks.size(), 3u);
  for (const auto& b : blocks) EXPECT_EQ(b.size(), 4u);
  EXPECT_EQ(blocks[2][1], 9);
  EXPECT_EQ(blocks[2][2], 0);
  EXPECT_THROW(split_fixed(view(data), 4, 2), std::logic_error);
}

TEST(LayoutTest, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(17), 32u);
}

}  // namespace
}  // namespace lrs::proto
