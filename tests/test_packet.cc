// Wire-format round trips, MAC enforcement on control packets, and
// malformed/hostile input handling. Also covers the page layout math.
#include <gtest/gtest.h>

#include "proto/layout.h"
#include "proto/packet.h"
#include "util/hex.h"
#include "util/rng.h"

namespace lrs::proto {
namespace {

const Bytes kKey{1, 2, 3, 4};

TEST(AdvertisementTest, RoundTripWithMac) {
  Advertisement a;
  a.version = 7;
  a.sender = 12;
  a.pages_complete = 5;
  a.bootstrapped = true;
  const Bytes frame = a.serialize(view(kKey));
  EXPECT_EQ(peek_type(view(frame)), PacketType::kAdvertisement);
  const auto back = Advertisement::parse(view(frame), view(kKey));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->version, 7u);
  EXPECT_EQ(back->sender, 12u);
  EXPECT_EQ(back->pages_complete, 5u);
  EXPECT_TRUE(back->bootstrapped);
}

TEST(AdvertisementTest, TamperedMacRejected) {
  Advertisement a;
  a.version = 1;
  Bytes frame = a.serialize(view(kKey));
  frame[2] ^= 1;
  EXPECT_FALSE(Advertisement::parse(view(frame), view(kKey)).has_value());
}

TEST(AdvertisementTest, WrongKeyRejected) {
  Advertisement a;
  const Bytes frame = a.serialize(view(kKey));
  const Bytes other{9, 9};
  EXPECT_FALSE(Advertisement::parse(view(frame), view(other)).has_value());
}

TEST(AdvertisementTest, NoKeyMeansNoMac) {
  Advertisement a;
  a.pages_complete = 3;
  const Bytes frame = a.serialize({});
  const auto back = Advertisement::parse(view(frame), {});
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->pages_complete, 3u);
}

TEST(SnackTest, RoundTripPreservesBitmap) {
  Snack s;
  s.version = 2;
  s.sender = 4;
  s.target = 9;
  s.page = 3;
  s.requested = BitVec(48);
  s.requested.set(0);
  s.requested.set(13);
  s.requested.set(47);
  const Bytes frame = s.serialize(view(kKey));
  const auto back = Snack::parse(view(frame), view(kKey));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->requested, s.requested);
  EXPECT_EQ(back->target, 9u);
  EXPECT_EQ(back->page, 3u);
}

TEST(SnackTest, LrBitmapIsLongerOnTheWire) {
  // Paper: LR-Seluge SNACKs are n-k bits longer than Seluge's.
  Snack lr, seluge;
  lr.requested = BitVec(48);      // n
  seluge.requested = BitVec(32);  // k
  EXPECT_EQ(lr.serialize(view(kKey)).size() -
                seluge.serialize(view(kKey)).size(),
            (48 - 32) / 8u);
}

TEST(SnackTest, SignatureRequestSentinelRoundTrips) {
  Snack s;
  s.page = kSignatureRequestPage;
  const auto back = Snack::parse(view(s.serialize(view(kKey))), view(kKey));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->page, kSignatureRequestPage);
}

TEST(DataPacketTest, RoundTrip) {
  DataPacket d;
  d.version = 1;
  d.page = 6;
  d.index = 40;
  d.payload = Bytes(64, 0xab);
  const Bytes frame = d.serialize();
  const auto back = DataPacket::parse(view(frame));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->page, 6u);
  EXPECT_EQ(back->index, 40u);
  EXPECT_EQ(back->payload, d.payload);
}

TEST(DataPacketTest, HashPreimageBindsPosition) {
  DataPacket a, b;
  a.payload = b.payload = Bytes(8, 1);
  a.page = 1;
  b.page = 2;
  EXPECT_NE(a.hash_preimage(), b.hash_preimage());
  b.page = 1;
  b.index = 5;
  EXPECT_NE(a.hash_preimage(), b.hash_preimage());
}

TEST(DataPacketTest, MalformedInputsFailSoft) {
  Bytes garbage{3, 1, 2};  // type byte of data, then truncation
  EXPECT_FALSE(DataPacket::parse(view(garbage)).has_value());
  Bytes empty;
  EXPECT_FALSE(peek_type(view(empty)).has_value());
  Bytes unknown{200};
  EXPECT_FALSE(peek_type(view(unknown)).has_value());
}

TEST(DataPacketTest, TrailingGarbageRejected) {
  DataPacket d;
  d.payload = Bytes(4, 1);
  Bytes frame = d.serialize();
  frame.push_back(0);
  EXPECT_FALSE(DataPacket::parse(view(frame)).has_value());
}

TEST(SignaturePacketTest, RoundTrip) {
  SignaturePacket p;
  p.meta.version = 3;
  p.meta.content_pages = 12;
  p.meta.image_size = 20480;
  p.root.fill(0x5a);
  p.puzzle = {10, 777};
  p.signature = Bytes(100, 0xcd);
  const auto back = SignaturePacket::parse(view(p.serialize()));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->meta.content_pages, 12u);
  EXPECT_EQ(back->meta.image_size, 20480u);
  EXPECT_EQ(back->root, p.root);
  EXPECT_EQ(back->puzzle.solution, 777u);
  EXPECT_EQ(back->signature, p.signature);
}

TEST(SignaturePacketTest, SignedMessageCoversMetaAndRoot) {
  SignaturePacket a, b;
  a.root.fill(1);
  b.root.fill(1);
  b.meta.content_pages = 99;
  EXPECT_NE(a.signed_message(), b.signed_message());
  b.meta = a.meta;
  b.root.fill(2);
  EXPECT_NE(a.signed_message(), b.signed_message());
}

// ---------------------------------------------------------------------------
// Golden wire vectors — the serialized forms below are frozen. A failure
// here means the wire format changed: deployed networks mixing old and new
// nodes would stop interoperating, so bump the version handling instead of
// updating a fixture casually.
// ---------------------------------------------------------------------------

Bytes fixture(std::string_view hex) {
  const auto b = from_hex(hex);
  EXPECT_TRUE(b.has_value());
  return *b;
}

// All MAC'd fixtures use kKey = {1, 2, 3, 4}.
const char* const kGoldenAdv = "01070000000c000000050000000199314bfa";
const char* const kGoldenSnack =
    "02020000000400000009000000030000000c002108ee1b63e0";
const char* const kGoldenSigRequest = "02020000000400000009000000ffffffff00004893a953";
const char* const kGoldenData = "0301000000060000002800000008000001020304050607";
const char* const kGoldenSignature =
    "04030000000c000000005000005a5a5a5a5a5a5a5a0a09030000000000000c00"
    "cdcdcdcdcdcdcdcdcdcdcdcd";

TEST(GoldenVectors, AdvertisementFrozen) {
  Advertisement a;
  a.version = 7;
  a.sender = 12;
  a.pages_complete = 5;
  a.bootstrapped = true;
  EXPECT_EQ(to_hex(view(a.serialize(view(kKey)))), kGoldenAdv);

  const auto back = Advertisement::parse(view(fixture(kGoldenAdv)), view(kKey));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->version, 7u);
  EXPECT_EQ(back->sender, 12u);
  EXPECT_EQ(back->pages_complete, 5u);
  EXPECT_TRUE(back->bootstrapped);
}

TEST(GoldenVectors, SnackFrozen) {
  Snack s;
  s.version = 2;
  s.sender = 4;
  s.target = 9;
  s.page = 3;
  s.requested = BitVec(12);
  s.requested.set(0);
  s.requested.set(5);
  s.requested.set(11);
  EXPECT_EQ(to_hex(view(s.serialize(view(kKey)))), kGoldenSnack);

  const auto back = Snack::parse(view(fixture(kGoldenSnack)), view(kKey));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->sender, 4u);
  EXPECT_EQ(back->target, 9u);
  EXPECT_EQ(back->page, 3u);
  EXPECT_EQ(back->requested.count(), 3u);
  EXPECT_EQ(Snack::peek_sender(view(fixture(kGoldenSnack))), 4u);
}

TEST(GoldenVectors, SignatureRequestFrozen) {
  Snack s;
  s.version = 2;
  s.sender = 4;
  s.target = 9;
  s.page = kSignatureRequestPage;
  EXPECT_EQ(to_hex(view(s.serialize(view(kKey)))), kGoldenSigRequest);

  const auto back = Snack::parse(view(fixture(kGoldenSigRequest)), view(kKey));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->page, kSignatureRequestPage);
  EXPECT_TRUE(back->requested.none());
}

TEST(GoldenVectors, DataFrozen) {
  DataPacket d;
  d.version = 1;
  d.page = 6;
  d.index = 40;
  for (int i = 0; i < 8; ++i)
    d.payload.push_back(static_cast<std::uint8_t>(i));
  EXPECT_EQ(to_hex(view(d.serialize())), kGoldenData);

  const auto back = DataPacket::parse(view(fixture(kGoldenData)));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->page, 6u);
  EXPECT_EQ(back->index, 40u);
  EXPECT_EQ(back->payload, d.payload);
}

TEST(GoldenVectors, SignatureFrozen) {
  SignaturePacket p;
  p.meta.version = 3;
  p.meta.content_pages = 12;
  p.meta.image_size = 20480;
  p.root.fill(0x5a);
  p.puzzle = {10, 777};
  p.signature = Bytes(12, 0xcd);
  EXPECT_EQ(to_hex(view(p.serialize())), kGoldenSignature);

  const auto back = SignaturePacket::parse(view(fixture(kGoldenSignature)));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->meta.content_pages, 12u);
  EXPECT_EQ(back->meta.image_size, 20480u);
  EXPECT_EQ(back->puzzle.strength, 10u);
  EXPECT_EQ(back->puzzle.solution, 777u);
  EXPECT_EQ(back->signature, Bytes(12, 0xcd));
}

// ---------------------------------------------------------------------------
// Fuzz decode: truncated, bit-flipped and random buffers must be rejected
// cleanly — no crash, no partially-parsed packet.
// ---------------------------------------------------------------------------

TEST(FuzzDecode, EveryTruncationCleanlyRejected) {
  for (const char* hex :
       {kGoldenAdv, kGoldenSnack, kGoldenSigRequest, kGoldenData,
        kGoldenSignature}) {
    const Bytes frame = fixture(hex);
    for (std::size_t len = 0; len < frame.size(); ++len) {
      const ByteView prefix(frame.data(), len);
      EXPECT_FALSE(Advertisement::parse(prefix, view(kKey)).has_value());
      EXPECT_FALSE(Snack::parse(prefix, view(kKey)).has_value());
      EXPECT_FALSE(DataPacket::parse(prefix).has_value());
      EXPECT_FALSE(SignaturePacket::parse(prefix).has_value());
    }
  }
}

TEST(FuzzDecode, EveryBitFlipOnControlPacketsRejected) {
  // Control traffic is MAC'd end to end: no single-bit flip anywhere in the
  // frame (header, bitmap or MAC itself) may survive verification.
  for (const char* hex : {kGoldenAdv, kGoldenSnack, kGoldenSigRequest}) {
    const Bytes frame = fixture(hex);
    for (std::size_t bit = 0; bit < frame.size() * 8; ++bit) {
      Bytes mutated = frame;
      mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      EXPECT_FALSE(Advertisement::parse(view(mutated), view(kKey)).has_value())
          << hex << " bit " << bit;
      EXPECT_FALSE(Snack::parse(view(mutated), view(kKey)).has_value())
          << hex << " bit " << bit;
    }
  }
}

TEST(FuzzDecode, BitFlippedDataNeverAliasesTheOriginalHash) {
  // Data packets carry no MAC — the hash chain authenticates them. Any
  // accepted bit-flipped frame must produce a different hash preimage, so
  // the per-packet hash comparison rejects it downstream.
  const Bytes frame = fixture(kGoldenData);
  const Bytes preimage = DataPacket::parse(view(frame))->hash_preimage();
  for (std::size_t bit = 0; bit < frame.size() * 8; ++bit) {
    Bytes mutated = frame;
    mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    const auto parsed = DataPacket::parse(view(mutated));
    if (parsed) {
      EXPECT_NE(parsed->hash_preimage(), preimage) << "bit " << bit;
    }
  }
}

TEST(FuzzDecode, RandomBuffersNeverCrashAnyParser) {
  Rng rng(0xf22);
  for (int i = 0; i < 2000; ++i) {
    Bytes buf(rng.uniform(64));
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.uniform(256));
    if (!buf.empty() && i % 2 == 0) {
      // Half the corpus gets a valid type tag so parsing goes deeper.
      buf[0] = static_cast<std::uint8_t>(1 + rng.uniform(4));
    }
    peek_type(view(buf));
    Advertisement::parse(view(buf), view(kKey));
    Advertisement::parse(view(buf), {});
    Snack::parse(view(buf), view(kKey));
    Snack::peek_sender(view(buf));
    DataPacket::parse(view(buf));
    SignaturePacket::parse(view(buf));
  }
}

// ---------------------------------------------------------------------------
// Page layout math
// ---------------------------------------------------------------------------

TEST(LayoutTest, SinglePageWhenImageFitsLastCapacity) {
  const auto l = compute_layout(100, 50, 200);
  EXPECT_EQ(l.content_pages, 1u);
}

TEST(LayoutTest, PageCountFormula) {
  // 1000 bytes, mid 100, last 150: 1 + ceil((1000-150)/100) = 10.
  const auto l = compute_layout(1000, 100, 150);
  EXPECT_EQ(l.content_pages, 10u);
}

TEST(LayoutTest, SliceRoundTrip) {
  Bytes image(1000);
  for (std::size_t i = 0; i < image.size(); ++i)
    image[i] = static_cast<std::uint8_t>(i);
  const auto l = compute_layout(image.size(), 96, 128);
  Bytes rebuilt(image.size(), 0);
  for (std::size_t p = 1; p <= l.content_pages; ++p) {
    const Bytes slice = page_slice(view(image), l, p);
    EXPECT_EQ(slice.size(), p < l.content_pages ? 96u : 128u);
    place_slice(rebuilt, l, p, view(slice));
  }
  EXPECT_EQ(rebuilt, image);
}

TEST(LayoutTest, LastPagePadsWithZeros) {
  Bytes image(130, 0xff);
  const auto l = compute_layout(image.size(), 100, 100);
  EXPECT_EQ(l.content_pages, 2u);
  const Bytes last = page_slice(view(image), l, 2);
  EXPECT_EQ(last.size(), 100u);
  EXPECT_EQ(last[29], 0xff);
  EXPECT_EQ(last[30], 0x00);  // padding
}

TEST(LayoutTest, SplitBlocksPadsEvenly) {
  Bytes data(10, 7);
  const auto blocks = split_blocks(view(data), 4);
  ASSERT_EQ(blocks.size(), 4u);
  for (const auto& b : blocks) EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(blocks[3][0], 7);   // byte 9
  EXPECT_EQ(blocks[3][1], 0);   // padding
}

TEST(LayoutTest, SplitFixedUsesExactBlockSize) {
  Bytes data(10, 9);
  const auto blocks = split_fixed(view(data), 4, 3);
  ASSERT_EQ(blocks.size(), 3u);
  for (const auto& b : blocks) EXPECT_EQ(b.size(), 4u);
  EXPECT_EQ(blocks[2][1], 9);
  EXPECT_EQ(blocks[2][2], 0);
  EXPECT_THROW(split_fixed(view(data), 4, 2), std::logic_error);
}

TEST(LayoutTest, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(17), 32u);
}

}  // namespace
}  // namespace lrs::proto
