file(REMOVE_RECURSE
  "liblrs_attack.a"
)
