file(REMOVE_RECURSE
  "CMakeFiles/lrs_attack.dir/adversary.cc.o"
  "CMakeFiles/lrs_attack.dir/adversary.cc.o.d"
  "liblrs_attack.a"
  "liblrs_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrs_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
