# Empty dependencies file for lrs_attack.
# This may be replaced when dependencies are built.
