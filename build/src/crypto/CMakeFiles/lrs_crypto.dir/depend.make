# Empty dependencies file for lrs_crypto.
# This may be replaced when dependencies are built.
