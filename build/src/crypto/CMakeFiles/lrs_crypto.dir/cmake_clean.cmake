file(REMOVE_RECURSE
  "CMakeFiles/lrs_crypto.dir/hash.cc.o"
  "CMakeFiles/lrs_crypto.dir/hash.cc.o.d"
  "CMakeFiles/lrs_crypto.dir/hmac.cc.o"
  "CMakeFiles/lrs_crypto.dir/hmac.cc.o.d"
  "CMakeFiles/lrs_crypto.dir/merkle.cc.o"
  "CMakeFiles/lrs_crypto.dir/merkle.cc.o.d"
  "CMakeFiles/lrs_crypto.dir/puzzle.cc.o"
  "CMakeFiles/lrs_crypto.dir/puzzle.cc.o.d"
  "CMakeFiles/lrs_crypto.dir/sha256.cc.o"
  "CMakeFiles/lrs_crypto.dir/sha256.cc.o.d"
  "CMakeFiles/lrs_crypto.dir/wots.cc.o"
  "CMakeFiles/lrs_crypto.dir/wots.cc.o.d"
  "liblrs_crypto.a"
  "liblrs_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrs_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
