file(REMOVE_RECURSE
  "liblrs_crypto.a"
)
