file(REMOVE_RECURSE
  "liblrs_sim.a"
)
