file(REMOVE_RECURSE
  "CMakeFiles/lrs_sim.dir/channel.cc.o"
  "CMakeFiles/lrs_sim.dir/channel.cc.o.d"
  "CMakeFiles/lrs_sim.dir/event_queue.cc.o"
  "CMakeFiles/lrs_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/lrs_sim.dir/metrics.cc.o"
  "CMakeFiles/lrs_sim.dir/metrics.cc.o.d"
  "CMakeFiles/lrs_sim.dir/simulator.cc.o"
  "CMakeFiles/lrs_sim.dir/simulator.cc.o.d"
  "CMakeFiles/lrs_sim.dir/topology.cc.o"
  "CMakeFiles/lrs_sim.dir/topology.cc.o.d"
  "CMakeFiles/lrs_sim.dir/trickle.cc.o"
  "CMakeFiles/lrs_sim.dir/trickle.cc.o.d"
  "liblrs_sim.a"
  "liblrs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
