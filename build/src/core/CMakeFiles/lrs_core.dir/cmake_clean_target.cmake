file(REMOVE_RECURSE
  "liblrs_core.a"
)
