file(REMOVE_RECURSE
  "CMakeFiles/lrs_core.dir/experiment.cc.o"
  "CMakeFiles/lrs_core.dir/experiment.cc.o.d"
  "CMakeFiles/lrs_core.dir/greedy_scheduler.cc.o"
  "CMakeFiles/lrs_core.dir/greedy_scheduler.cc.o.d"
  "CMakeFiles/lrs_core.dir/lr_image.cc.o"
  "CMakeFiles/lrs_core.dir/lr_image.cc.o.d"
  "CMakeFiles/lrs_core.dir/lr_seluge.cc.o"
  "CMakeFiles/lrs_core.dir/lr_seluge.cc.o.d"
  "liblrs_core.a"
  "liblrs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
