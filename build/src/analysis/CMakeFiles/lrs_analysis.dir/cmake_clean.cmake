file(REMOVE_RECURSE
  "CMakeFiles/lrs_analysis.dir/one_hop.cc.o"
  "CMakeFiles/lrs_analysis.dir/one_hop.cc.o.d"
  "liblrs_analysis.a"
  "liblrs_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrs_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
