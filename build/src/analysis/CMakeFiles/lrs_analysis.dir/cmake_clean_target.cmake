file(REMOVE_RECURSE
  "liblrs_analysis.a"
)
