# Empty dependencies file for lrs_analysis.
# This may be replaced when dependencies are built.
