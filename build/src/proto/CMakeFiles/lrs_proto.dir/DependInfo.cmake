
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/deluge.cc" "src/proto/CMakeFiles/lrs_proto.dir/deluge.cc.o" "gcc" "src/proto/CMakeFiles/lrs_proto.dir/deluge.cc.o.d"
  "/root/repo/src/proto/engine.cc" "src/proto/CMakeFiles/lrs_proto.dir/engine.cc.o" "gcc" "src/proto/CMakeFiles/lrs_proto.dir/engine.cc.o.d"
  "/root/repo/src/proto/layout.cc" "src/proto/CMakeFiles/lrs_proto.dir/layout.cc.o" "gcc" "src/proto/CMakeFiles/lrs_proto.dir/layout.cc.o.d"
  "/root/repo/src/proto/packet.cc" "src/proto/CMakeFiles/lrs_proto.dir/packet.cc.o" "gcc" "src/proto/CMakeFiles/lrs_proto.dir/packet.cc.o.d"
  "/root/repo/src/proto/rateless.cc" "src/proto/CMakeFiles/lrs_proto.dir/rateless.cc.o" "gcc" "src/proto/CMakeFiles/lrs_proto.dir/rateless.cc.o.d"
  "/root/repo/src/proto/scheduler.cc" "src/proto/CMakeFiles/lrs_proto.dir/scheduler.cc.o" "gcc" "src/proto/CMakeFiles/lrs_proto.dir/scheduler.cc.o.d"
  "/root/repo/src/proto/seluge.cc" "src/proto/CMakeFiles/lrs_proto.dir/seluge.cc.o" "gcc" "src/proto/CMakeFiles/lrs_proto.dir/seluge.cc.o.d"
  "/root/repo/src/proto/sluice.cc" "src/proto/CMakeFiles/lrs_proto.dir/sluice.cc.o" "gcc" "src/proto/CMakeFiles/lrs_proto.dir/sluice.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lrs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/lrs_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/erasure/CMakeFiles/lrs_erasure.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lrs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
