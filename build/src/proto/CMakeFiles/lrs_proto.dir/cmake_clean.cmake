file(REMOVE_RECURSE
  "CMakeFiles/lrs_proto.dir/deluge.cc.o"
  "CMakeFiles/lrs_proto.dir/deluge.cc.o.d"
  "CMakeFiles/lrs_proto.dir/engine.cc.o"
  "CMakeFiles/lrs_proto.dir/engine.cc.o.d"
  "CMakeFiles/lrs_proto.dir/layout.cc.o"
  "CMakeFiles/lrs_proto.dir/layout.cc.o.d"
  "CMakeFiles/lrs_proto.dir/packet.cc.o"
  "CMakeFiles/lrs_proto.dir/packet.cc.o.d"
  "CMakeFiles/lrs_proto.dir/rateless.cc.o"
  "CMakeFiles/lrs_proto.dir/rateless.cc.o.d"
  "CMakeFiles/lrs_proto.dir/scheduler.cc.o"
  "CMakeFiles/lrs_proto.dir/scheduler.cc.o.d"
  "CMakeFiles/lrs_proto.dir/seluge.cc.o"
  "CMakeFiles/lrs_proto.dir/seluge.cc.o.d"
  "CMakeFiles/lrs_proto.dir/sluice.cc.o"
  "CMakeFiles/lrs_proto.dir/sluice.cc.o.d"
  "liblrs_proto.a"
  "liblrs_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrs_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
