# Empty dependencies file for lrs_proto.
# This may be replaced when dependencies are built.
