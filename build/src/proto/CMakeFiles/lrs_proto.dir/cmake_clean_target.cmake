file(REMOVE_RECURSE
  "liblrs_proto.a"
)
