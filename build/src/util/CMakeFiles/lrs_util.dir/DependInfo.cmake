
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/args.cc" "src/util/CMakeFiles/lrs_util.dir/args.cc.o" "gcc" "src/util/CMakeFiles/lrs_util.dir/args.cc.o.d"
  "/root/repo/src/util/bitvec.cc" "src/util/CMakeFiles/lrs_util.dir/bitvec.cc.o" "gcc" "src/util/CMakeFiles/lrs_util.dir/bitvec.cc.o.d"
  "/root/repo/src/util/buffer.cc" "src/util/CMakeFiles/lrs_util.dir/buffer.cc.o" "gcc" "src/util/CMakeFiles/lrs_util.dir/buffer.cc.o.d"
  "/root/repo/src/util/csv.cc" "src/util/CMakeFiles/lrs_util.dir/csv.cc.o" "gcc" "src/util/CMakeFiles/lrs_util.dir/csv.cc.o.d"
  "/root/repo/src/util/hex.cc" "src/util/CMakeFiles/lrs_util.dir/hex.cc.o" "gcc" "src/util/CMakeFiles/lrs_util.dir/hex.cc.o.d"
  "/root/repo/src/util/log.cc" "src/util/CMakeFiles/lrs_util.dir/log.cc.o" "gcc" "src/util/CMakeFiles/lrs_util.dir/log.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/util/CMakeFiles/lrs_util.dir/rng.cc.o" "gcc" "src/util/CMakeFiles/lrs_util.dir/rng.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/util/CMakeFiles/lrs_util.dir/stats.cc.o" "gcc" "src/util/CMakeFiles/lrs_util.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
