file(REMOVE_RECURSE
  "CMakeFiles/lrs_util.dir/args.cc.o"
  "CMakeFiles/lrs_util.dir/args.cc.o.d"
  "CMakeFiles/lrs_util.dir/bitvec.cc.o"
  "CMakeFiles/lrs_util.dir/bitvec.cc.o.d"
  "CMakeFiles/lrs_util.dir/buffer.cc.o"
  "CMakeFiles/lrs_util.dir/buffer.cc.o.d"
  "CMakeFiles/lrs_util.dir/csv.cc.o"
  "CMakeFiles/lrs_util.dir/csv.cc.o.d"
  "CMakeFiles/lrs_util.dir/hex.cc.o"
  "CMakeFiles/lrs_util.dir/hex.cc.o.d"
  "CMakeFiles/lrs_util.dir/log.cc.o"
  "CMakeFiles/lrs_util.dir/log.cc.o.d"
  "CMakeFiles/lrs_util.dir/rng.cc.o"
  "CMakeFiles/lrs_util.dir/rng.cc.o.d"
  "CMakeFiles/lrs_util.dir/stats.cc.o"
  "CMakeFiles/lrs_util.dir/stats.cc.o.d"
  "liblrs_util.a"
  "liblrs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
