# Empty compiler generated dependencies file for lrs_util.
# This may be replaced when dependencies are built.
