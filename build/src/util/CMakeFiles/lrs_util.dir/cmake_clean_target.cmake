file(REMOVE_RECURSE
  "liblrs_util.a"
)
