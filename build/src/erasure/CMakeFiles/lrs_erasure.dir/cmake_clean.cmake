file(REMOVE_RECURSE
  "CMakeFiles/lrs_erasure.dir/code.cc.o"
  "CMakeFiles/lrs_erasure.dir/code.cc.o.d"
  "CMakeFiles/lrs_erasure.dir/gf256.cc.o"
  "CMakeFiles/lrs_erasure.dir/gf256.cc.o.d"
  "CMakeFiles/lrs_erasure.dir/lt_code.cc.o"
  "CMakeFiles/lrs_erasure.dir/lt_code.cc.o.d"
  "CMakeFiles/lrs_erasure.dir/matrix.cc.o"
  "CMakeFiles/lrs_erasure.dir/matrix.cc.o.d"
  "CMakeFiles/lrs_erasure.dir/rlc_code.cc.o"
  "CMakeFiles/lrs_erasure.dir/rlc_code.cc.o.d"
  "CMakeFiles/lrs_erasure.dir/rs_code.cc.o"
  "CMakeFiles/lrs_erasure.dir/rs_code.cc.o.d"
  "liblrs_erasure.a"
  "liblrs_erasure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrs_erasure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
