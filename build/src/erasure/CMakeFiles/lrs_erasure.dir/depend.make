# Empty dependencies file for lrs_erasure.
# This may be replaced when dependencies are built.
