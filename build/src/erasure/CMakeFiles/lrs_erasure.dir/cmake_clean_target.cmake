file(REMOVE_RECURSE
  "liblrs_erasure.a"
)
