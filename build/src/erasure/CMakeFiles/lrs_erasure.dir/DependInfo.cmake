
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/erasure/code.cc" "src/erasure/CMakeFiles/lrs_erasure.dir/code.cc.o" "gcc" "src/erasure/CMakeFiles/lrs_erasure.dir/code.cc.o.d"
  "/root/repo/src/erasure/gf256.cc" "src/erasure/CMakeFiles/lrs_erasure.dir/gf256.cc.o" "gcc" "src/erasure/CMakeFiles/lrs_erasure.dir/gf256.cc.o.d"
  "/root/repo/src/erasure/lt_code.cc" "src/erasure/CMakeFiles/lrs_erasure.dir/lt_code.cc.o" "gcc" "src/erasure/CMakeFiles/lrs_erasure.dir/lt_code.cc.o.d"
  "/root/repo/src/erasure/matrix.cc" "src/erasure/CMakeFiles/lrs_erasure.dir/matrix.cc.o" "gcc" "src/erasure/CMakeFiles/lrs_erasure.dir/matrix.cc.o.d"
  "/root/repo/src/erasure/rlc_code.cc" "src/erasure/CMakeFiles/lrs_erasure.dir/rlc_code.cc.o" "gcc" "src/erasure/CMakeFiles/lrs_erasure.dir/rlc_code.cc.o.d"
  "/root/repo/src/erasure/rs_code.cc" "src/erasure/CMakeFiles/lrs_erasure.dir/rs_code.cc.o" "gcc" "src/erasure/CMakeFiles/lrs_erasure.dir/rs_code.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lrs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
