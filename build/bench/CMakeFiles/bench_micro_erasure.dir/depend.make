# Empty dependencies file for bench_micro_erasure.
# This may be replaced when dependencies are built.
