# Empty dependencies file for bench_attack_dos.
# This may be replaced when dependencies are built.
