file(REMOVE_RECURSE
  "CMakeFiles/bench_attack_dos.dir/bench_attack_dos.cc.o"
  "CMakeFiles/bench_attack_dos.dir/bench_attack_dos.cc.o.d"
  "bench_attack_dos"
  "bench_attack_dos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_attack_dos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
