file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_analysis.dir/bench_fig3_analysis.cc.o"
  "CMakeFiles/bench_fig3_analysis.dir/bench_fig3_analysis.cc.o.d"
  "bench_fig3_analysis"
  "bench_fig3_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
