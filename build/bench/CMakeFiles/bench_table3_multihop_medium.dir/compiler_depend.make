# Empty compiler generated dependencies file for bench_table3_multihop_medium.
# This may be replaced when dependencies are built.
