file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_multihop_medium.dir/bench_table3_multihop_medium.cc.o"
  "CMakeFiles/bench_table3_multihop_medium.dir/bench_table3_multihop_medium.cc.o.d"
  "bench_table3_multihop_medium"
  "bench_table3_multihop_medium.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_multihop_medium.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
