file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_multihop_tight.dir/bench_table2_multihop_tight.cc.o"
  "CMakeFiles/bench_table2_multihop_tight.dir/bench_table2_multihop_tight.cc.o.d"
  "bench_table2_multihop_tight"
  "bench_table2_multihop_tight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_multihop_tight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
