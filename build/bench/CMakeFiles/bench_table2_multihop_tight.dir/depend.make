# Empty dependencies file for bench_table2_multihop_tight.
# This may be replaced when dependencies are built.
