file(REMOVE_RECURSE
  "CMakeFiles/upgrade_demo.dir/upgrade_demo.cpp.o"
  "CMakeFiles/upgrade_demo.dir/upgrade_demo.cpp.o.d"
  "upgrade_demo"
  "upgrade_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upgrade_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
