# Empty dependencies file for upgrade_demo.
# This may be replaced when dependencies are built.
