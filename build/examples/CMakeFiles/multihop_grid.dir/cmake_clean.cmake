file(REMOVE_RECURSE
  "CMakeFiles/multihop_grid.dir/multihop_grid.cpp.o"
  "CMakeFiles/multihop_grid.dir/multihop_grid.cpp.o.d"
  "multihop_grid"
  "multihop_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multihop_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
