# Empty compiler generated dependencies file for multihop_grid.
# This may be replaced when dependencies are built.
