file(REMOVE_RECURSE
  "CMakeFiles/coding_rate_planner.dir/coding_rate_planner.cpp.o"
  "CMakeFiles/coding_rate_planner.dir/coding_rate_planner.cpp.o.d"
  "coding_rate_planner"
  "coding_rate_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coding_rate_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
