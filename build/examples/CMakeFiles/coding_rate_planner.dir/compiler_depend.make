# Empty compiler generated dependencies file for coding_rate_planner.
# This may be replaced when dependencies are built.
