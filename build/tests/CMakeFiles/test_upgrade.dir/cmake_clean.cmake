file(REMOVE_RECURSE
  "CMakeFiles/test_upgrade.dir/test_upgrade.cc.o"
  "CMakeFiles/test_upgrade.dir/test_upgrade.cc.o.d"
  "test_upgrade"
  "test_upgrade.pdb"
  "test_upgrade[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_upgrade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
