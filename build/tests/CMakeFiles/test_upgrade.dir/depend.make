# Empty dependencies file for test_upgrade.
# This may be replaced when dependencies are built.
