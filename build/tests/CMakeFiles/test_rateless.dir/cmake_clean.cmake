file(REMOVE_RECURSE
  "CMakeFiles/test_rateless.dir/test_rateless.cc.o"
  "CMakeFiles/test_rateless.dir/test_rateless.cc.o.d"
  "test_rateless"
  "test_rateless.pdb"
  "test_rateless[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rateless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
