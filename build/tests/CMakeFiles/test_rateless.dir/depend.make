# Empty dependencies file for test_rateless.
# This may be replaced when dependencies are built.
