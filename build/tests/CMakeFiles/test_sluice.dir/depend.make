# Empty dependencies file for test_sluice.
# This may be replaced when dependencies are built.
