file(REMOVE_RECURSE
  "CMakeFiles/test_sluice.dir/test_sluice.cc.o"
  "CMakeFiles/test_sluice.dir/test_sluice.cc.o.d"
  "test_sluice"
  "test_sluice.pdb"
  "test_sluice[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sluice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
