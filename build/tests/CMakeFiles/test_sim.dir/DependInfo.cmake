
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/test_sim.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lrs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/lrs_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/lrs_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/lrs_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lrs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/erasure/CMakeFiles/lrs_erasure.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/lrs_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lrs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
