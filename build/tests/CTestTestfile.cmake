# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_sha256[1]_include.cmake")
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_erasure[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_packet[1]_include.cmake")
include("/root/repo/build/tests/test_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_schemes[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_e2e[1]_include.cmake")
include("/root/repo/build/tests/test_attack[1]_include.cmake")
include("/root/repo/build/tests/test_facade[1]_include.cmake")
include("/root/repo/build/tests/test_rateless[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_upgrade[1]_include.cmake")
include("/root/repo/build/tests/test_args[1]_include.cmake")
include("/root/repo/build/tests/test_geometry[1]_include.cmake")
include("/root/repo/build/tests/test_sluice[1]_include.cmake")
