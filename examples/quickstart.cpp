// Quickstart: LR-Seluge as a library, no network simulator involved.
//
// The base-station side (Publisher) preprocesses and signs a code image;
// the sensor side (Receiver) authenticates every packet on arrival and
// erasure-decodes page by page. The transport here is a lossy loop that
// drops 30% of packets and garbles one — any transport works, the library
// is sans-IO.
//
//   ./examples/quickstart
#include <cstdio>

#include "core/lr_seluge.h"
#include "util/rng.h"

using namespace lrs;

int main() {
  // 1. Parameters the network owner preloads on every node (paper §IV-B):
  //    the erasure-code instances, packet geometry and keys.
  proto::CommonParams params;
  params.payload_size = 64;  // bytes per encoded block
  params.k = 32;             // blocks per page
  params.n = 48;             // encoded packets per page (rate 1.5)
  params.k0 = 8;             // hash-page code
  params.n0 = 16;            // Merkle leaves (power of two)
  params.puzzle_strength = 8;

  // 2. The base station's key material. The root public key is the ONLY
  //    thing sensor nodes need preloaded to verify every future image.
  const Bytes key_seed{0x13, 0x37, 0xc0, 0xde};
  core::Publisher publisher(params, view(key_seed));
  std::printf("publisher ready, %zu one-time signatures available\n",
              publisher.signatures_left());

  // 3. A new firmware image to disseminate (here: 20 KB of pseudo-bytes).
  Rng rng(7);
  Bytes image(20 * 1024);
  for (auto& b : image) b = static_cast<std::uint8_t>(rng.uniform(256));
  auto prepared = publisher.prepare(image);
  std::printf("image prepared: %u transfer pages (hash page + %u content)\n",
              prepared->num_pages(), prepared->num_pages() - 1);

  // 4. A receiving node: starts with nothing but the root public key.
  core::Receiver receiver(params, publisher.root_public_key());

  // 5. Bootstrap: the signature packet authenticates the Merkle root and
  //    the image geometry. One signature verification per image — after
  //    this, every data packet costs a single hash to check.
  if (!receiver.feed_signature(view(prepared->signature_frame().value()))) {
    std::printf("signature verification failed?!\n");
    return 1;
  }
  std::printf("signature verified; receiver expects %u pages\n",
              receiver.total_pages());

  // 6. Lossy transfer: drop 30%% of packets; the receiver still finishes
  //    because ANY k' of the n packets decode a page. Also inject one
  //    tampered packet to show immediate authentication.
  Rng channel(99);
  std::size_t sent = 0, dropped = 0, rejected = 0;
  bool tampered_once = false;
  while (!receiver.complete()) {
    const std::uint32_t page = receiver.pages_complete();
    bool page_progressed = false;
    for (std::uint32_t j = 0; j < prepared->packets_in_page(page); ++j) {
      if (receiver.pages_complete() != page) {
        page_progressed = true;
        break;
      }
      Bytes payload = prepared->packet_payload(page, j).value();
      ++sent;
      if (channel.bernoulli(0.3)) {  // the channel eats it
        ++dropped;
        continue;
      }
      if (!tampered_once && page == 1) {
        tampered_once = true;  // garble the first delivered page-1 packet
        payload[0] ^= 0xff;
      }
      const auto status = receiver.feed_data(page, j, view(payload));
      if (status == proto::DataStatus::kRejected) ++rejected;
    }
    if (!page_progressed && receiver.pages_complete() == page &&
        receiver.request_bits().count() == 0) {
      break;  // defensive: should not happen
    }
  }

  // 7. Byte-exact recovery despite the losses; the tampered packet was
  //    rejected at a cost of exactly one hash.
  std::printf("transfer done: %zu sent, %zu lost (%.0f%%), %zu rejected\n",
              sent, dropped, 100.0 * static_cast<double>(dropped) /
                                 static_cast<double>(sent),
              rejected);
  std::printf("hash checks: %lu, signature checks: %lu\n",
              static_cast<unsigned long>(receiver.metrics().hash_verifications),
              static_cast<unsigned long>(
                  receiver.metrics().signature_verifications));
  if (receiver.image() == image) {
    std::printf("image recovered byte-exactly — quickstart OK\n");
    return 0;
  }
  std::printf("IMAGE MISMATCH\n");
  return 1;
}
