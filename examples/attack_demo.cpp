// Security demo: a hostile node floods the cell with forged data packets
// while the base station disseminates an image.
//
// LR-Seluge authenticates every packet the moment it arrives (one hash),
// so the flood costs the honest nodes almost nothing and the image arrives
// byte-exact. The same flood against plain Deluge is accepted verbatim —
// the "firmware" the baseline installs is attacker-controlled.
//
//   ./examples/attack_demo
#include <cstdio>

#include "attack/adversary.h"
#include "core/experiment.h"
#include "core/lr_image.h"
#include "crypto/wots.h"
#include "proto/deluge.h"
#include "proto/engine.h"
#include "sim/simulator.h"

using namespace lrs;

namespace {

struct Result {
  std::size_t complete = 0;
  bool intact = true;
  std::uint64_t injected = 0;
  std::uint64_t auth_failures = 0;
  std::uint64_t sig_verifies = 0;
};

Result run(bool secure) {
  proto::CommonParams params;
  params.payload_size = 64;
  params.k = 16;
  params.n = 24;
  params.k0 = 8;
  params.n0 = 16;
  params.puzzle_strength = 10;

  const std::size_t kReceivers = 4;
  const Bytes image = core::make_test_image(8 * 1024, 2026);
  crypto::MultiKeySigner signer(view(Bytes{0x42}), 1);

  sim::Simulator simulator(sim::Topology::star(kReceivers + 1),
                           sim::make_perfect_channel(), sim::RadioParams{},
                           1);
  proto::EngineConfig cfg;
  cfg.is_base_station = true;
  const Bytes key = secure ? params.cluster_key : Bytes{};
  std::vector<proto::DissemNode*> nodes;
  nodes.push_back(&simulator.add_node<proto::DissemNode>(
      secure ? core::make_lr_source(params, image, signer)
             : proto::make_deluge_source(params, image),
      cfg, key));
  cfg.is_base_station = false;
  for (std::size_t i = 0; i < kReceivers; ++i) {
    nodes.push_back(&simulator.add_node<proto::DissemNode>(
        secure ? core::make_lr_receiver(params, signer.root_public_key())
               : proto::make_deluge_receiver(params, image.size()),
        cfg, key));
  }

  attack::InjectorConfig icfg;
  icfg.version = params.version;
  icfg.period = 12 * sim::kMillisecond;
  icfg.data_pages = 6;
  icfg.data_indices = params.n;
  icfg.data_payload_size = params.payload_size;
  auto& attacker = simulator.add_node<attack::InjectorNode>(icfg);

  simulator.run(600LL * sim::kSecond, [&] {
    for (std::size_t i = 1; i <= kReceivers; ++i)
      if (!nodes[i]->image_complete()) return false;
    return true;
  });

  Result r;
  for (std::size_t i = 1; i <= kReceivers; ++i) {
    if (!nodes[i]->image_complete()) {
      r.intact = false;
      continue;
    }
    ++r.complete;
    if (nodes[i]->scheme().assemble_image() != image) r.intact = false;
  }
  r.injected = attacker.injected();
  r.auth_failures = simulator.metrics().total_auth_failures();
  r.sig_verifies = simulator.metrics().total_signature_verifications();
  return r;
}

void report(const char* name, const Result& r) {
  std::printf("%-22s complete=%zu/4  forged=%lu  rejected=%lu  "
              "sig_checks=%lu  firmware %s\n",
              name, r.complete, static_cast<unsigned long>(r.injected),
              static_cast<unsigned long>(r.auth_failures),
              static_cast<unsigned long>(r.sig_verifies),
              r.intact ? "GENUINE" : "*** CORRUPTED/MISSING ***");
}

}  // namespace

int main() {
  std::printf("an attacker floods forged data packets during dissemination\n\n");
  report("LR-Seluge (secure):", run(true));
  report("Deluge (baseline):", run(false));
  std::printf(
      "\nLR-Seluge rejects every forged packet on arrival with one hash —\n"
      "buffers stay clean, signatures are verified once, and the genuine\n"
      "image survives. Deluge stores whatever arrives first.\n");
  return 0;
}
