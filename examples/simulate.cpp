// General-purpose dissemination simulator CLI — every experiment in the
// paper (and beyond) from one command line.
//
//   ./examples/simulate --scheme lr-seluge --loss 0.2 --receivers 20
//   ./examples/simulate --scheme seluge --topo grid --rows 15 --cols 15 \
//       --spacing 10 --noise        # Table II conditions
//   ./examples/simulate --scheme lr-seluge --k 32 --n 64 --image-kb 40 \
//       --codec rlc2 --delta 2 --seeds 5
//
// Run with --help for the full flag list.
#include <cstdio>
#include <string>

#include "core/experiment.h"
#include "core/provenance.h"
#include "sim/stats/stats.h"
#include "util/args.h"

using namespace lrs;
using namespace lrs::core;

namespace {

void usage() {
  std::printf(
      "usage: simulate [flags]\n"
      "  --scheme S      deluge | rateless | seluge | lr-seluge (default)\n"
      "  --topo T        star (default) | grid\n"
      "  --receivers N   one-hop receivers (star, default 20)\n"
      "  --rows R --cols C --spacing D   grid geometry (default 15x15x10)\n"
      "  --loss P        i.i.d. app-layer loss probability (default 0.1)\n"
      "  --noise         Gilbert-Elliott bursty noise instead of i.i.d.\n"
      "  --image-kb KB   image size (default 20)\n"
      "  --k K --n N     erasure geometry (default 32/48)\n"
      "  --payload B     packet payload bytes (default 64)\n"
      "  --codec C       rs (default) | rlc2 | rlc256 | lt | lrc |\n"
      "                  xorsched, with --delta D (rlc/lt headroom)\n"
      "  --union-sched   serve with the union scheduler (ablation)\n"
      "  --leap          LEAP-style per-source SNACK authentication\n"
      "  --seeds S       runs to average (default 1), --seed base seed\n"
      "  --limit SECONDS simulated-time budget (default 3600)\n"
      "  --trace P       structured event trace of the first run: JSONL to\n"
      "                  P plus a Chrome-trace twin at P's .chrome.json\n"
      "  --timeseries P  sampled progress counters (JSON) of the first run\n"
      "  --metrics P     runtime metrics/profiling JSON to P ('-' = stdout)\n"
      "  --metrics-heartbeat S   with --metrics: stderr progress line\n"
      "                  every S seconds\n"
      "  (trace and metrics format spec: docs/observability.md)\n");
}

std::optional<Scheme> parse_scheme(const std::string& s) {
  if (s == "deluge") return Scheme::kDeluge;
  if (s == "rateless") return Scheme::kRatelessDeluge;
  if (s == "seluge") return Scheme::kSeluge;
  if (s == "lr-seluge" || s == "lr") return Scheme::kLrSeluge;
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  if (args.get_bool("help", false)) {
    usage();
    return 0;
  }

  ExperimentConfig cfg;
  const auto scheme = parse_scheme(args.get("scheme", "lr-seluge"));
  if (!scheme) {
    std::fprintf(stderr, "unknown --scheme\n");
    usage();
    return 2;
  }
  cfg.scheme = *scheme;
  cfg.topo = args.get("topo", "star") == "grid"
                 ? ExperimentConfig::Topo::kGrid
                 : ExperimentConfig::Topo::kStar;
  cfg.receivers = static_cast<std::size_t>(args.get_int("receivers", 20));
  cfg.grid_rows = static_cast<std::size_t>(args.get_int("rows", 15));
  cfg.grid_cols = static_cast<std::size_t>(args.get_int("cols", 15));
  cfg.grid_spacing = args.get_double("spacing", 10.0);
  cfg.loss_p = args.get_double("loss", 0.1);
  cfg.gilbert_elliott = args.get_bool("noise", false);
  cfg.image_size = static_cast<std::size_t>(args.get_int("image-kb", 20)) *
                   1024;
  cfg.params.k = static_cast<std::size_t>(args.get_int("k", 32));
  cfg.params.n = static_cast<std::size_t>(args.get_int("n", 48));
  cfg.params.payload_size =
      static_cast<std::size_t>(args.get_int("payload", 64));
  cfg.params.delta = static_cast<std::size_t>(args.get_int("delta", 0));
  cfg.params.puzzle_strength = 8;
  cfg.params.lr_greedy_scheduler = !args.get_bool("union-sched", false);
  cfg.params.leap_snack_auth = args.get_bool("leap", false);
  const auto codec = erasure::parse_codec_kind(args.get("codec", "rs"));
  if (!codec) {
    std::fprintf(stderr, "unknown --codec\n");
    return 2;
  }
  cfg.params.codec = *codec;
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  cfg.time_limit = args.get_int("limit", 3600) * sim::kSecond;
  const auto seeds = static_cast<std::size_t>(args.get_int("seeds", 1));
  cfg.trace.events_path = args.get("trace", "");
  if (!cfg.trace.events_path.empty()) {
    const std::string& p = cfg.trace.events_path;
    const auto dot = p.find_last_of('.');
    cfg.trace.chrome_path =
        (dot == std::string::npos || p.find('/', dot) != std::string::npos
             ? p
             : p.substr(0, dot)) +
        ".chrome.json";
  }
  cfg.trace.timeseries_path = args.get("timeseries", "");
  const std::string metrics = args.get("metrics", "");
  const double metrics_heartbeat = args.get_double("metrics-heartbeat", 0.0);

  if (metrics_heartbeat < 0 || (metrics_heartbeat > 0 && metrics.empty())) {
    std::fprintf(stderr,
                 "--metrics-heartbeat needs --metrics P and a positive"
                 " period\n");
    return 2;
  }
  if (!args.errors().empty() || !args.unknown().empty()) {
    for (const auto& e : args.errors()) std::fprintf(stderr, "%s\n", e.c_str());
    for (const auto& u : args.unknown())
      std::fprintf(stderr, "unknown flag %s\n", u.c_str());
    usage();
    return 2;
  }

  if (!metrics.empty()) {
    stats::Registry::instance().reset_values();
    stats::set_enabled(true);
    if (metrics_heartbeat > 0) stats::start_heartbeat(metrics_heartbeat);
  }

  const auto r = run_experiment_avg(cfg, seeds);
  std::printf("scheme=%s complete=%zu/%zu images_ok=%s\n",
              scheme_name(cfg.scheme), r.completed, r.receivers,
              r.images_match ? "yes" : "NO");
  std::printf("data=%lu snack=%lu adv=%lu signature=%lu packets\n",
              static_cast<unsigned long>(r.data_packets),
              static_cast<unsigned long>(r.snack_packets),
              static_cast<unsigned long>(r.adv_packets),
              static_cast<unsigned long>(r.sig_packets));
  std::printf("total_bytes=%lu latency=%.2fs collisions=%lu\n",
              static_cast<unsigned long>(r.total_bytes), r.latency_s,
              static_cast<unsigned long>(r.collisions));
  std::printf("hash_checks=%lu sig_checks=%lu auth_failures=%lu\n",
              static_cast<unsigned long>(r.hash_verifications),
              static_cast<unsigned long>(r.signature_verifications),
              static_cast<unsigned long>(r.auth_failures));
  // After the summary so that with --metrics - the document is the
  // trailing block of stdout (matching the bench harnesses' at-exit
  // export order).
  if (!metrics.empty()) {
    stats::write_metrics_json(metrics, core::provenance_json("  "));
  }
  return r.all_complete ? 0 : 1;
}
