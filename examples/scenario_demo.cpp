// Scenario demo: load a declarative .scn file, show its canonical form,
// compile it into an experiment, and run the trial plan.
//
//   ./examples/scenario_demo [file.scn]
//
// e.g. ./examples/scenario_demo scenarios/churn.scn
// With no argument a small built-in scenario is used, so the binary runs
// from any working directory.
#include <cstdio>
#include <optional>
#include <string>

#include "core/experiment.h"
#include "core/run_trials.h"
#include "sim/scenario/scenario.h"

using namespace lrs;

namespace {

constexpr const char* kBuiltin = R"(# built-in demo scenario
[scenario]
name = demo
description = 12-hop corridor under uniform loss
image_size = 2048
payload_size = 32
k = 8
n = 12
k0 = 4
n0 = 8
puzzle_strength = 4

[topology]
kind = line
nodes = 12
spacing = 14

[channel]
model = uniform
loss = 0.05

[trial]
repeats = 2
seed = 1
time_limit_s = 1800
)";

}  // namespace

int main(int argc, char** argv) {
  std::string error;
  std::optional<scenario::Scenario> s;
  if (argc >= 2) {
    s = scenario::load_scenario_file(argv[1], &error);
  } else {
    s = scenario::parse_scenario(kBuiltin, &error);
  }
  if (!s) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }

  // A parsed scenario re-serializes into one canonical form: fixed key
  // order, only the keys relevant to the chosen topology/channel/faults.
  std::printf("canonical form:\n---\n%s---\n\n",
              scenario::canonical_scenario(*s).c_str());

  const core::ExperimentConfig config = scenario::scenario_config(*s);
  std::printf("running '%s': %zu nodes, %zu trial(s), seed %llu\n\n",
              s->name.c_str(), s->topo.node_count(), s->repeats,
              static_cast<unsigned long long>(s->seed));
  const auto trials = core::run_trials(config, s->repeats);
  const auto avg = core::aggregate_trials(trials);

  const std::size_t expected = s->expected_complete();
  std::printf("%-10s: %zu/%zu nodes complete (expected >= %zu) "
              "in %.1f s avg\n",
              core::scheme_name(s->scheme), avg.completed, avg.receivers,
              expected, avg.latency_s);
  std::printf("            data %llu pkts | SNACK %llu | adv %llu | "
              "%.1f KB on air | %s | %llu invariant violations | "
              "%llu reboots\n",
              static_cast<unsigned long long>(avg.data_packets),
              static_cast<unsigned long long>(avg.snack_packets),
              static_cast<unsigned long long>(avg.adv_packets),
              static_cast<double>(avg.total_bytes) / 1024.0,
              avg.images_match ? "images byte-exact" : "IMAGE MISMATCH",
              static_cast<unsigned long long>(avg.invariant_violations),
              static_cast<unsigned long long>(avg.reboots));

  bool ok = avg.images_match && avg.invariant_violations == 0;
  for (const auto& r : trials) ok = ok && r.completed >= expected;
  return ok ? 0 : 1;
}
