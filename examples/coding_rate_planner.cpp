// Capacity planning: pick an erasure-coding rate n/k for your deployment.
//
// Given the expected packet-loss rate and fleet size of a one-hop cell,
// sweep n (with k = 32 fixed) and report the total communication cost and
// latency of disseminating your image — reproducing the U-shape of the
// paper's Fig. 6: too little redundancy forces retransmission rounds, too
// much shrinks per-page capacity (the n hash images ride in every page).
//
//   ./examples/coding_rate_planner [loss_p receivers image_kb]
#include <cstdio>
#include <cstdlib>

#include "core/experiment.h"

using namespace lrs;
using namespace lrs::core;

int main(int argc, char** argv) {
  double loss = 0.1;
  std::size_t receivers = 20;
  std::size_t image_kb = 20;
  if (argc >= 2) loss = std::atof(argv[1]);
  if (argc >= 3) receivers = static_cast<std::size_t>(std::atoi(argv[2]));
  if (argc >= 4) image_kb = static_cast<std::size_t>(std::atoi(argv[3]));

  std::printf("planning for p=%.2f, N=%zu, image=%zu KB (k=32)\n\n", loss,
              receivers, image_kb);
  std::printf("%4s  %5s  %6s  %10s  %11s  %9s\n", "n", "rate", "pages",
              "data_pkts", "total_bytes", "latency_s");

  double best_bytes = -1;
  std::size_t best_n = 0;
  for (std::size_t n = 32; n <= 72; n += 4) {
    ExperimentConfig cfg;
    cfg.scheme = Scheme::kLrSeluge;
    cfg.params.n = n;
    cfg.params.puzzle_strength = 6;
    cfg.receivers = receivers;
    cfg.loss_p = loss;
    cfg.image_size = image_kb * 1024;
    const auto r = run_experiment_avg(cfg, 3);
    if (!r.all_complete) {
      std::printf("%4zu  did not complete in time\n", n);
      continue;
    }
    const std::size_t mid = cfg.params.k * cfg.params.payload_size - n * 8;
    const std::size_t last = cfg.params.k * cfg.params.payload_size;
    const std::size_t pages =
        cfg.image_size <= last ? 1
                               : 1 + (cfg.image_size - last + mid - 1) / mid;
    std::printf("%4zu  %5.2f  %6zu  %10lu  %11lu  %9.1f\n", n,
                static_cast<double>(n) / 32.0, pages,
                static_cast<unsigned long>(r.data_packets),
                static_cast<unsigned long>(r.total_bytes), r.latency_s);
    if (best_bytes < 0 || static_cast<double>(r.total_bytes) < best_bytes) {
      best_bytes = static_cast<double>(r.total_bytes);
      best_n = n;
    }
  }
  std::printf("\nrecommended: n = %zu (rate %.2f) — lowest total bytes\n",
              best_n, static_cast<double>(best_n) / 32.0);
  return 0;
}
