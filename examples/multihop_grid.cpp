// Multi-hop dissemination demo: a base station in the corner of a sensor
// grid pushes a new 20 KB image to every node over lossy multi-hop radio,
// comparing LR-Seluge against the Seluge baseline.
//
//   ./examples/multihop_grid [rows cols spacing [loss_p]]
//
// e.g. ./examples/multihop_grid 10 10 20 0.1
#include <cstdio>
#include <cstdlib>

#include "core/experiment.h"

using namespace lrs;
using namespace lrs::core;

int main(int argc, char** argv) {
  std::size_t rows = 7, cols = 7;
  double spacing = 20.0, loss = 0.05;
  if (argc >= 4) {
    rows = static_cast<std::size_t>(std::atoi(argv[1]));
    cols = static_cast<std::size_t>(std::atoi(argv[2]));
    spacing = std::atof(argv[3]);
  }
  if (argc >= 5) loss = std::atof(argv[4]);

  std::printf("disseminating a 20 KB image over a %zux%zu grid "
              "(spacing %.0f, extra loss p=%.2f)\n\n",
              rows, cols, spacing, loss);

  for (auto scheme : {Scheme::kSeluge, Scheme::kLrSeluge}) {
    ExperimentConfig cfg;
    cfg.scheme = scheme;
    cfg.params.puzzle_strength = 8;
    cfg.topo = ExperimentConfig::Topo::kGrid;
    cfg.grid_rows = rows;
    cfg.grid_cols = cols;
    cfg.grid_spacing = spacing;
    cfg.loss_p = loss;
    cfg.image_size = 20 * 1024;
    cfg.time_limit = 3600LL * sim::kSecond;

    const auto r = run_experiment(cfg);
    std::printf("%-10s: %zu/%zu nodes complete in %.1f s\n",
                scheme_name(scheme), r.completed, r.receivers, r.latency_s);
    std::printf("            data %lu pkts | SNACK %lu | adv %lu | "
                "%.1f KB on air | integrity %s\n\n",
                static_cast<unsigned long>(r.data_packets),
                static_cast<unsigned long>(r.snack_packets),
                static_cast<unsigned long>(r.adv_packets),
                static_cast<double>(r.total_bytes) / 1024.0,
                r.images_match ? "byte-exact on every node" : "VIOLATED");
  }
  std::printf("LR-Seluge's erasure-coded pages shine in multi-hop settings:\n"
              "every overheard packet is useful to every neighbor, so the\n"
              "same broadcast serves nodes with independent loss patterns.\n");
  return 0;
}
