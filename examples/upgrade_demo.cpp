// Multi-image upgrade demo: the reason over-the-air reprogramming exists.
//
// A fleet runs firmware v1; the operator pushes v2 at the base station.
// Every node verifies v2's signature against the SAME preloaded root
// public key (the multi-key signer certifies many one-time keys under one
// root), abandons its v1 state, and fetches v2 page by page. Replayed old
// versions and forged "v3" images are ignored.
//
//   ./examples/upgrade_demo
#include <cstdio>

#include "core/experiment.h"
#include "core/lr_seluge.h"
#include "proto/engine.h"
#include "sim/simulator.h"

using namespace lrs;
using namespace lrs::core;

namespace {

proto::CommonParams params_v(Version v) {
  proto::CommonParams p;
  p.version = v;
  p.payload_size = 64;
  p.k = 16;
  p.n = 24;
  p.k0 = 8;
  p.n0 = 16;
  p.puzzle_strength = 8;
  return p;
}

}  // namespace

int main() {
  const std::size_t kReceivers = 10;
  const Bytes firmware_v1 = make_test_image(8 * 1024, 1);
  const Bytes firmware_v2 = make_test_image(12 * 1024, 2);

  crypto::MultiKeySigner signer(view(Bytes{0xf1, 0x44}), 2);
  sim::Simulator simulator(sim::Topology::star(kReceivers),
                           sim::make_uniform_loss(0.1), sim::RadioParams{},
                           7);

  proto::EngineConfig cfg;
  cfg.scheme_factory =
      lr_scheme_factory(params_v(1), signer.root_public_key());
  cfg.is_base_station = true;

  std::vector<proto::DissemNode*> nodes;
  nodes.push_back(&simulator.add_node<proto::DissemNode>(
      make_lr_source(params_v(1), firmware_v1, signer), cfg,
      params_v(1).cluster_key));
  cfg.is_base_station = false;
  for (std::size_t i = 0; i < kReceivers; ++i) {
    nodes.push_back(&simulator.add_node<proto::DissemNode>(
        make_lr_receiver(params_v(1), signer.root_public_key()), cfg,
        params_v(1).cluster_key));
  }

  const auto all_at = [&](Version v) {
    for (std::size_t i = 1; i <= kReceivers; ++i) {
      if (nodes[i]->scheme().version() != v || !nodes[i]->image_complete())
        return false;
    }
    return true;
  };

  simulator.run(600LL * sim::kSecond, [&] { return all_at(1); });
  std::printf("t=%5.1fs  fleet converged on v1 (%zu nodes, 10%% loss)\n",
              sim::to_seconds(simulator.now()), kReceivers);

  std::printf("t=%5.1fs  operator pushes firmware v2 (one one-time key "
              "consumed, %zu left)\n",
              sim::to_seconds(simulator.now()),
              signer.capacity() - signer.signatures_issued() - 1);
  nodes[0]->upgrade(make_lr_source(params_v(2), firmware_v2, signer));

  simulator.run(simulator.now() + 600LL * sim::kSecond,
                [&] { return all_at(2); });
  std::printf("t=%5.1fs  fleet converged on v2\n",
              sim::to_seconds(simulator.now()));

  bool exact = true;
  for (std::size_t i = 1; i <= kReceivers; ++i) {
    exact = exact && nodes[i]->scheme().assemble_image() == firmware_v2;
  }
  std::printf("every node now runs v2: %s\n",
              exact ? "byte-exact" : "MISMATCH");
  return exact ? 0 : 1;
}
