// FleetEngine: a long-running multi-tenant campaign engine — one process
// drives thousands of concurrent network cells across many tenants (images,
// versions, codecs), the OTA-backend reframing of dissemination as an
// ongoing service rather than a one-shot transfer.
//
// What is shared and what is not:
//   * Per tenant, preprocessing is done ONCE: prepare() builds the image,
//     hash chain, Merkle tree and signature through core::Publisher,
//     consuming one one-time key per tenant — then every cell's base
//     station is stamped from that master state via SchemeState::
//     clone_source() (a byte copy, no re-hashing, no re-signing).
//   * Per cell, everything dynamic is private: simulator, RNG streams,
//     receiver states, verification memo. Cells never touch each other.
//
// Determinism contract (the repo-wide serial-vs-LRS_JOBS discipline): the
// work list is the tenant-ordered, cell-indexed cross product; each cell's
// simulation is a pure function of (spec, cell index); results land in
// index-addressed slots and per-tenant aggregation walks them in index
// order. The work-stealing pool (core/parallel.h) only decides WHICH worker
// runs a cell, so every TenantResult is byte-identical for any job count.
// Steal counts are schedule-dependent and reported separately.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/lr_seluge.h"
#include "crypto/hash.h"
#include "fleet/tenant.h"
#include "util/types.h"

namespace lrs::fleet {

/// Outcome of one cell — deterministic for (spec, cell index).
struct CellResult {
  bool converged = false;  // every receiver completed within the time limit
  std::size_t receivers = 0;
  std::uint64_t events = 0;  // simulator events executed
  std::uint64_t data_packets = 0;
  std::uint64_t snack_packets = 0;
  std::uint64_t total_bytes = 0;
  double latency_s = 0.0;  // simulated; time limit when not converged
  bool images_match = true;  // completed receivers reassembled the payload
};

/// Per-tenant aggregate over its cells, walked in cell-index order.
struct TenantResult {
  std::string name;
  TenantPhase phase = TenantPhase::kRegistered;
  Version version = 0;
  erasure::CodecKind codec = erasure::CodecKind::kReedSolomon;
  bool delta = false;

  std::size_t cells = 0;
  std::size_t converged_cells = 0;
  std::size_t receivers = 0;  // summed over cells
  std::uint64_t events = 0;
  std::uint64_t max_cell_events = 0;  // busiest cell: imbalance numerator
  std::uint64_t data_packets = 0;
  std::uint64_t snack_packets = 0;
  std::uint64_t total_bytes = 0;
  double latency_max_s = 0.0;  // slowest cell (simulated time)
  bool images_ok = true;

  /// max/mean per-cell event load: max_cell_events * cells / events, 1.0
  /// when perfectly balanced; deterministic (event counts are).
  double imbalance() const {
    return events == 0 ? 1.0
                       : static_cast<double>(max_cell_events) *
                             static_cast<double>(cells) /
                             static_cast<double>(events);
  }
};

struct FleetReport {
  std::vector<TenantResult> tenants;  // tenant registration order
  std::size_t cells = 0;
  std::uint64_t events = 0;
  std::uint64_t max_cell_events = 0;  // busiest cell fleet-wide
  /// Successful steals in the work-stealing pool — schedule-dependent,
  /// excluded from every determinism comparison.
  std::uint64_t steals = 0;

  double imbalance() const {
    return events == 0 ? 1.0
                       : static_cast<double>(max_cell_events) *
                             static_cast<double>(cells) /
                             static_cast<double>(events);
  }
};

class FleetEngine {
 public:
  /// Registers a tenant (phase kRegistered). Returns its tenant id — the
  /// index into run()'s FleetReport::tenants.
  std::size_t add_tenant(TenantSpec spec);

  std::size_t tenant_count() const { return tenants_.size(); }
  TenantPhase phase(std::size_t tenant) const;

  /// The bytes a tenant's cells disseminate and converge on: the image
  /// itself, or the delta blob for a delta tenant. Valid after prepare().
  const Bytes& payload(std::size_t tenant) const;
  /// The tenant's full new image (what apply_delta reconstructs); equals
  /// payload() for non-delta tenants. Valid after prepare().
  const Bytes& image(std::size_t tenant) const;
  /// The previous version's image a delta tenant patches (empty for
  /// non-delta tenants). Valid after prepare().
  const Bytes& base_image(std::size_t tenant) const;

  /// Preprocesses and signs every registered tenant's payload, one
  /// Publisher and one one-time key per tenant, serially in registration
  /// order (the key sequence must never depend on scheduling). Idempotent:
  /// already-prepared tenants are skipped.
  void prepare();

  /// Runs every prepared tenant's cells on the work-stealing pool (`jobs`
  /// 0 = core::default_jobs()) and aggregates per tenant. Tenants move to
  /// kConverged (all cells complete and byte-exact) or kFailed.
  FleetReport run(std::size_t jobs = 0);

 private:
  struct Tenant {
    TenantSpec spec;
    TenantPhase phase = TenantPhase::kRegistered;
    std::unique_ptr<core::Publisher> publisher;
    std::unique_ptr<proto::SchemeState> master;  // prepared, serving-ready
    crypto::PacketHash root_pk{};
    Bytes image;       // the new image (version spec.params.version)
    Bytes base;        // previous version's image (delta tenants only)
    Bytes payload;     // what cells disseminate: image or delta blob
  };

  CellResult run_cell(const Tenant& tenant, std::size_t cell) const;

  std::vector<Tenant> tenants_;
};

}  // namespace lrs::fleet
