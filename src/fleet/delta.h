// Delta images: disseminate only the changed pages of a v1 -> v2 upgrade.
//
// A delta blob is a self-describing artifact — manifest header plus the raw
// bytes of every changed page — that the fleet engine publishes through the
// ordinary LR-Seluge pipeline at the NEW version number. The hash chain and
// signature are therefore recomputed over the delta manifest itself: every
// packet of the blob is immediately authenticated in transit exactly like a
// full image, and a tampered delta never reaches apply_delta. What the
// manifest adds are the end-point checks the transport cannot see:
//
//   * base_hash pins WHICH installed image the delta patches — applying a
//     (genuine) delta on top of the wrong base is rejected, so a replayed
//     old delta cannot corrupt a node that has since moved on;
//   * new_hash pins the result — a blob that parses but reconstructs the
//     wrong bytes (bit rot, wrong page map) is rejected after patching;
//   * base_version < new_version is enforced structurally, matching the
//     engine's forward-only version rule (proto/params.h scheme_factory).
//
// Format (little-endian, fixed header, docs/fleet.md):
//   "LRD1" | u32 base_version | u32 new_version | u64 image_size |
//   u32 page_size | u32 changed_count | base_hash[8] | new_hash[8] |
//   changed_count x u32 ascending page indices | changed page bytes
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/hash.h"
#include "util/types.h"

namespace lrs::fleet {

struct DeltaManifest {
  Version base_version = 0;
  Version new_version = 0;
  std::uint64_t image_size = 0;  // size of the NEW image in bytes
  std::uint32_t page_size = 0;   // patch granularity, bytes
  crypto::PacketHash base_hash{};  // packet_hash of the base image
  crypto::PacketHash new_hash{};   // packet_hash of the new image
  std::vector<std::uint32_t> changed_pages;  // ascending, unique
};

/// Builds the delta blob patching `base_image` (installed as base_version)
/// into `new_image` (to run as new_version). A page is "changed" when its
/// bytes differ from the same offsets of the base — including every page
/// past the base image's end when the new image grew. Requires
/// base_version < new_version and page_size >= 1.
Bytes make_delta(const Bytes& base_image, const Bytes& new_image,
                 Version base_version, Version new_version,
                 std::size_t page_size);

/// Parses the manifest header of a delta blob: nullopt on bad magic,
/// truncation, unordered page indices, version order violation or a length
/// that disagrees with the declared geometry.
std::optional<DeltaManifest> parse_delta(ByteView blob);

/// Patches `base_image` with `blob`. Rejects (nullopt) malformed blobs, a
/// base whose hash does not match the manifest's base_hash, and any result
/// whose hash does not match new_hash. On success the returned bytes ARE
/// the new image.
std::optional<Bytes> apply_delta(const Bytes& base_image, ByteView blob);

}  // namespace lrs::fleet
