// Tenant model of the fleet engine: a tenant = (image, version, codec,
// scenario shape) plus the cell population disseminating it. One prepared
// image serves every cell of its tenant; cells differ only in their
// deterministic per-cell derivations (receiver count, channel seed).
#pragma once

#include <cstdint>
#include <string>

#include "proto/params.h"
#include "sim/time.h"

namespace lrs::fleet {

/// Tenant lifecycle. prepare() moves kRegistered -> kPrepared (image built,
/// Merkle tree + signature done, one one-time key consumed); run() moves
/// kPrepared -> kDisseminating -> kConverged (every cell complete and
/// byte-exact) or kFailed (any cell timed out or mismatched).
enum class TenantPhase {
  kRegistered,
  kPrepared,
  kDisseminating,
  kConverged,
  kFailed,
};

const char* phase_name(TenantPhase p);

/// Everything that defines one tenant. `params.version` is the version the
/// tenant's cells converge on; a delta tenant (delta = true, version >= 2)
/// disseminates the make_delta blob of version-1 -> version instead of the
/// full image, so only changed pages travel.
struct TenantSpec {
  std::string name;
  proto::CommonParams params{};  // version, codec, coding geometry, payload
  proto::EngineTiming timing{};  // Trickle/pacing constants for the cells

  std::size_t image_size = 2048;
  std::uint64_t seed = 1;

  /// Cell population: `cells` one-hop stars whose receiver counts spread
  /// uniformly (deterministically per cell) over [receivers_min,
  /// receivers_max] — the heterogeneity the work-stealing scheduler exists
  /// for.
  std::size_t cells = 8;
  std::size_t receivers_min = 4;
  std::size_t receivers_max = 12;

  /// Uniform app-layer loss probability inside every cell.
  double loss_p = 0.02;

  /// Delta-image tenant: disseminate only the pages that changed between
  /// the previous version's image and this one (fleet/delta.h).
  bool delta = false;
  std::size_t delta_page_size = 256;

  /// Per-cell simulated-time budget; a cell still incomplete at the limit
  /// marks the tenant kFailed.
  sim::SimTime time_limit = 1800LL * sim::kSecond;
};

/// Receiver count of cell `cell`: uniform over [receivers_min,
/// receivers_max], a pure function of (spec.seed, cell) — never of
/// scheduling.
std::size_t cell_receivers(const TenantSpec& spec, std::size_t cell);

/// Simulation seed of cell `cell`, decorrelated across tenants and cells.
std::uint64_t cell_seed(const TenantSpec& spec, std::size_t cell);

}  // namespace lrs::fleet
