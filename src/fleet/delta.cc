#include "fleet/delta.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"

namespace lrs::fleet {

namespace {

constexpr std::uint8_t kMagic[4] = {'L', 'R', 'D', '1'};
// magic + base_version + new_version + image_size + page_size +
// changed_count + base_hash + new_hash
constexpr std::size_t kHeaderSize =
    4 + 4 + 4 + 8 + 4 + 4 + crypto::kPacketHashSize + crypto::kPacketHashSize;

// Upper bound on a plausible firmware image. Keeps a corrupted image_size
// header field from driving a multi-gigabyte allocation in apply_delta
// before the hash checks get a chance to reject the blob.
constexpr std::uint64_t kMaxImageSize = 1ULL << 30;

void put_u32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t get_u32(ByteView b, std::size_t off) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | b[off + static_cast<std::size_t>(i)];
  return v;
}

std::uint64_t get_u64(ByteView b, std::size_t off) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | b[off + static_cast<std::size_t>(i)];
  return v;
}

/// Bytes of delta page `p` inside an image of `image_size`.
std::size_t page_bytes(std::uint64_t image_size, std::uint32_t page_size,
                       std::uint32_t p) {
  const std::uint64_t start =
      static_cast<std::uint64_t>(p) * page_size;
  if (start >= image_size) return 0;
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(page_size, image_size - start));
}

}  // namespace

Bytes make_delta(const Bytes& base_image, const Bytes& new_image,
                 Version base_version, Version new_version,
                 std::size_t page_size) {
  LRS_CHECK_MSG(page_size >= 1, "delta page_size must be >= 1");
  LRS_CHECK_MSG(base_version < new_version,
                "delta must move the version forward");
  LRS_CHECK_MSG(new_image.size() <= kMaxImageSize,
                "image exceeds the delta format's size bound");

  const std::uint64_t size = new_image.size();
  const std::uint32_t pages = static_cast<std::uint32_t>(
      (size + page_size - 1) / page_size);

  std::vector<std::uint32_t> changed;
  for (std::uint32_t p = 0; p < pages; ++p) {
    const std::size_t off = static_cast<std::size_t>(p) * page_size;
    const std::size_t len =
        page_bytes(size, static_cast<std::uint32_t>(page_size), p);
    // A page is unchanged only if the base covers it fully with identical
    // bytes; growth past the base's end is always a changed page.
    const bool same =
        off + len <= base_image.size() &&
        std::memcmp(base_image.data() + off, new_image.data() + off, len) == 0;
    if (!same) changed.push_back(p);
  }

  Bytes out;
  out.reserve(kHeaderSize + changed.size() * (4 + page_size));
  out.insert(out.end(), kMagic, kMagic + 4);
  put_u32(out, base_version);
  put_u32(out, new_version);
  put_u64(out, size);
  put_u32(out, static_cast<std::uint32_t>(page_size));
  put_u32(out, static_cast<std::uint32_t>(changed.size()));
  crypto::append(out, crypto::packet_hash(view(base_image)));
  crypto::append(out, crypto::packet_hash(view(new_image)));
  for (const std::uint32_t p : changed) put_u32(out, p);
  for (const std::uint32_t p : changed) {
    const std::size_t off = static_cast<std::size_t>(p) * page_size;
    const std::size_t len =
        page_bytes(size, static_cast<std::uint32_t>(page_size), p);
    out.insert(out.end(), new_image.begin() + static_cast<std::ptrdiff_t>(off),
               new_image.begin() + static_cast<std::ptrdiff_t>(off + len));
  }
  return out;
}

std::optional<DeltaManifest> parse_delta(ByteView blob) {
  if (blob.size() < kHeaderSize) return std::nullopt;
  if (std::memcmp(blob.data(), kMagic, 4) != 0) return std::nullopt;

  DeltaManifest m;
  m.base_version = get_u32(blob, 4);
  m.new_version = get_u32(blob, 8);
  m.image_size = get_u64(blob, 12);
  m.page_size = get_u32(blob, 20);
  const std::uint32_t count = get_u32(blob, 24);
  m.base_hash = crypto::read_packet_hash(blob, 28);
  m.new_hash = crypto::read_packet_hash(blob, 28 + crypto::kPacketHashSize);

  if (m.page_size == 0) return std::nullopt;
  if (m.image_size > kMaxImageSize) return std::nullopt;
  if (m.base_version >= m.new_version) return std::nullopt;
  const std::uint64_t pages =
      (m.image_size + m.page_size - 1) / m.page_size;
  if (count > pages) return std::nullopt;

  std::size_t off = kHeaderSize;
  if (blob.size() < off + static_cast<std::size_t>(count) * 4) {
    return std::nullopt;
  }
  m.changed_pages.reserve(count);
  std::uint64_t payload = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t p = get_u32(blob, off + static_cast<std::size_t>(i) * 4);
    if (p >= pages) return std::nullopt;
    if (!m.changed_pages.empty() && p <= m.changed_pages.back()) {
      return std::nullopt;  // must be strictly ascending (unique)
    }
    m.changed_pages.push_back(p);
    payload += page_bytes(m.image_size, m.page_size, p);
  }
  off += static_cast<std::size_t>(count) * 4;
  // The blob length must be exactly header + index table + page payloads:
  // a truncated or padded artifact fails loudly instead of mis-patching.
  if (blob.size() != off + payload) return std::nullopt;
  return m;
}

std::optional<Bytes> apply_delta(const Bytes& base_image, ByteView blob) {
  const auto m = parse_delta(blob);
  if (!m) return std::nullopt;
  if (!crypto::equal(m->base_hash, crypto::packet_hash(view(base_image)))) {
    return std::nullopt;  // wrong installed base — replayed/misrouted delta
  }

  // Start from the base truncated/zero-extended to the new size, then
  // overwrite the changed pages from the blob's payload section.
  Bytes image(base_image);
  image.resize(static_cast<std::size_t>(m->image_size), 0);
  std::size_t off = kHeaderSize + m->changed_pages.size() * 4;
  for (const std::uint32_t p : m->changed_pages) {
    const std::size_t len = static_cast<std::size_t>(
        std::min<std::uint64_t>(m->page_size,
                                m->image_size -
                                    static_cast<std::uint64_t>(p) *
                                        m->page_size));
    std::memcpy(image.data() + static_cast<std::size_t>(p) * m->page_size,
                blob.data() + off, len);
    off += len;
  }

  if (!crypto::equal(m->new_hash, crypto::packet_hash(view(image)))) {
    return std::nullopt;  // patched result does not match the manifest
  }
  return image;
}

}  // namespace lrs::fleet
