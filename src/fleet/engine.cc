#include "fleet/engine.h"

#include <algorithm>
#include <utility>

#include "core/experiment.h"  // make_test_image
#include "core/parallel.h"
#include "fleet/delta.h"
#include "proto/engine.h"
#include "sim/channel.h"
#include "sim/simulator.h"
#include "sim/stats/stats.h"
#include "util/check.h"

namespace lrs::fleet {

namespace {

/// Derived per-tenant signing seed: each tenant owns its Publisher (its own
/// one-time key tree and preloaded root), so key consumption order across
/// tenants cannot matter — only the per-tenant prepare() order does, and
/// that is registration order by construction.
Bytes tenant_key_seed(const TenantSpec& spec) {
  Bytes seed;
  std::uint64_t x = spec.seed ^ 0xf1ee7ULL;
  for (int i = 0; i < 8; ++i) {
    seed.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
  }
  for (const char c : spec.name) {
    seed.push_back(static_cast<std::uint8_t>(c));
  }
  return seed;
}

/// The previous version's installed image a delta tenant patches from:
/// the new image with a deterministic quarter of its delta pages replaced
/// by different bytes — so the delta blob carries those pages and nothing
/// else, modelling a firmware release that touched part of the binary.
Bytes derive_base_image(const TenantSpec& spec, const Bytes& new_image) {
  Bytes base = new_image;
  const std::size_t page = spec.delta_page_size;
  const std::size_t pages = (base.size() + page - 1) / page;
  for (std::size_t p = 0; p < pages; ++p) {
    // Same mixer family as tenant.cc: pure function of (seed, page).
    std::uint64_t x = (spec.seed ^ 0xde17aULL) + p;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    if ((x ^ (x >> 31)) % 4 != 0) continue;  // ~1/4 of pages changed
    const std::size_t lo = p * page;
    const std::size_t hi = std::min(base.size(), lo + page);
    for (std::size_t i = lo; i < hi; ++i) base[i] ^= 0xa5;
  }
  return base;
}

}  // namespace

std::size_t FleetEngine::add_tenant(TenantSpec spec) {
  LRS_CHECK_MSG(!spec.name.empty(), "tenant needs a name");
  LRS_CHECK_MSG(spec.cells >= 1, "tenant needs at least one cell");
  LRS_CHECK_MSG(!spec.delta || spec.params.version >= 2,
                "a delta tenant upgrades FROM version-1: version must be >= 2");
  Tenant t;
  t.spec = std::move(spec);
  tenants_.push_back(std::move(t));
  return tenants_.size() - 1;
}

TenantPhase FleetEngine::phase(std::size_t tenant) const {
  LRS_CHECK(tenant < tenants_.size());
  return tenants_[tenant].phase;
}

const Bytes& FleetEngine::payload(std::size_t tenant) const {
  LRS_CHECK(tenant < tenants_.size());
  return tenants_[tenant].payload;
}

const Bytes& FleetEngine::image(std::size_t tenant) const {
  LRS_CHECK(tenant < tenants_.size());
  return tenants_[tenant].image;
}

const Bytes& FleetEngine::base_image(std::size_t tenant) const {
  LRS_CHECK(tenant < tenants_.size());
  return tenants_[tenant].base;
}

void FleetEngine::prepare() {
  static stats::Timer& timer = stats::Registry::instance().timer(
      "fleet.prepare", /*top_level=*/true);
  stats::TimerScope scope(timer);
  for (Tenant& t : tenants_) {
    if (t.phase != TenantPhase::kRegistered) continue;
    t.image = core::make_test_image(t.spec.image_size, t.spec.seed);
    if (t.spec.delta) {
      t.base = derive_base_image(t.spec, t.image);
      t.payload = make_delta(t.base, t.image, t.spec.params.version - 1,
                             t.spec.params.version, t.spec.delta_page_size);
    } else {
      t.payload = t.image;
    }
    const Bytes key_seed = tenant_key_seed(t.spec);
    t.publisher = std::make_unique<core::Publisher>(t.spec.params,
                                                    view(key_seed),
                                                    /*key_height=*/2);
    t.master = t.publisher->prepare(t.payload);
    t.root_pk = t.publisher->root_public_key();
    t.phase = TenantPhase::kPrepared;
  }
}

CellResult FleetEngine::run_cell(const Tenant& tenant,
                                 std::size_t cell) const {
  // Top-level scope: one fleet cell end to end. Cells run concurrently, so
  // accumulated scope time is CPU-time-like under LRS_JOBS > 1.
  static stats::Timer& cell_timer = stats::Registry::instance().timer(
      "fleet.run_cell", /*top_level=*/true);
  stats::TimerScope cell_scope(cell_timer);

  const TenantSpec& spec = tenant.spec;
  const std::size_t receivers = cell_receivers(spec, cell);
  const std::uint64_t seed = cell_seed(spec, cell);

  std::unique_ptr<proto::SchemeState> source = tenant.master->clone_source();
  LRS_CHECK_MSG(source != nullptr, "tenant master must be serving-ready");

  sim::Simulator simulator(
      sim::Topology::star(receivers),
      spec.loss_p > 0.0 ? sim::make_uniform_loss(spec.loss_p)
                        : sim::make_perfect_channel(),
      sim::RadioParams{}, seed);

  // One receive-side verification memo per cell (cells are single-threaded
  // simulations; the memo never crosses cells).
  auto rx_memo = std::make_unique<proto::RxFanoutMemo>();
  proto::EngineConfig engine;
  engine.timing = spec.timing;
  engine.leap_snack_auth = spec.params.leap_snack_auth;
  engine.leap_master = spec.params.leap_master;
  engine.rx_memo = rx_memo.get();

  std::vector<proto::DissemNode*> nodes;
  nodes.reserve(receivers + 1);
  engine.is_base_station = true;
  nodes.push_back(&simulator.add_node<proto::DissemNode>(
      std::move(source), engine, spec.params.cluster_key));
  engine.is_base_station = false;
  for (std::size_t i = 0; i < receivers; ++i) {
    nodes.push_back(&simulator.add_node<proto::DissemNode>(
        core::make_lr_receiver(spec.params, tenant.root_pk), engine,
        spec.params.cluster_key));
  }

  auto& metrics = simulator.metrics();
  const NodeId base = 0;
  const auto done = [&] { return metrics.completed_count(base) == receivers; };
  {
    static stats::Timer& run_timer =
        stats::Registry::instance().timer("sim.run");
    stats::TimerScope run_scope(run_timer);
    simulator.run(spec.time_limit, done);
  }

  CellResult r;
  r.receivers = receivers;
  r.converged = metrics.completed_count(base) == receivers;
  r.events = simulator.events_executed();
  r.data_packets = metrics.total_sent(sim::PacketClass::kData);
  r.snack_packets = metrics.total_sent(sim::PacketClass::kSnack);
  r.total_bytes = metrics.total_sent_bytes();
  r.latency_s = r.converged ? sim::to_seconds(metrics.last_completion())
                            : sim::to_seconds(spec.time_limit);
  for (std::size_t k = 1; k <= receivers; ++k) {
    if (!nodes[k]->image_complete()) continue;
    if (nodes[k]->scheme().assemble_image() != tenant.payload) {
      r.images_match = false;
    }
  }
  return r;
}

FleetReport FleetEngine::run(std::size_t jobs) {
  if (jobs == 0) jobs = core::default_jobs();

  // The global work list: tenant-ordered, cells contiguous per tenant.
  struct Item {
    std::size_t tenant;
    std::size_t cell;
  };
  std::vector<Item> items;
  std::vector<std::size_t> first_item(tenants_.size(), 0);
  for (std::size_t ti = 0; ti < tenants_.size(); ++ti) {
    LRS_CHECK_MSG(tenants_[ti].phase == TenantPhase::kPrepared,
                  "run() needs every tenant prepared");
    tenants_[ti].phase = TenantPhase::kDisseminating;
    first_item[ti] = items.size();
    for (std::size_t c = 0; c < tenants_[ti].spec.cells; ++c) {
      items.push_back({ti, c});
    }
  }

  std::vector<CellResult> results(items.size());
  const std::size_t steals =
      core::parallel_for_ws(items.size(), jobs, [&](std::size_t i) {
        results[i] = run_cell(tenants_[items[i].tenant], items[i].cell);
      });

  FleetReport report;
  report.cells = items.size();
  report.steals = steals;
  report.tenants.reserve(tenants_.size());
  for (std::size_t ti = 0; ti < tenants_.size(); ++ti) {
    Tenant& t = tenants_[ti];
    TenantResult agg;
    agg.name = t.spec.name;
    agg.version = t.spec.params.version;
    agg.codec = t.spec.params.codec;
    agg.delta = t.spec.delta;
    agg.cells = t.spec.cells;
    // Cell-index order: the aggregate is a pure fold over deterministic
    // per-cell results, byte-identical for any worker count.
    for (std::size_t c = 0; c < t.spec.cells; ++c) {
      const CellResult& r = results[first_item[ti] + c];
      agg.converged_cells += r.converged ? 1 : 0;
      agg.receivers += r.receivers;
      agg.events += r.events;
      agg.max_cell_events = std::max(agg.max_cell_events, r.events);
      agg.data_packets += r.data_packets;
      agg.snack_packets += r.snack_packets;
      agg.total_bytes += r.total_bytes;
      agg.latency_max_s = std::max(agg.latency_max_s, r.latency_s);
      agg.images_ok = agg.images_ok && r.images_match;
    }
    t.phase = (agg.converged_cells == agg.cells && agg.images_ok)
                  ? TenantPhase::kConverged
                  : TenantPhase::kFailed;
    agg.phase = t.phase;

    // Per-tenant scoped metrics: disjoint registry slots per tenant, and —
    // the deterministic export sorting by full name — one adjacent block
    // per tenant in the counters section. All values fold deterministic
    // cell results, so they keep the LRS_JOBS byte-identity guarantee.
    const stats::Scope scope("fleet." + t.spec.name);
    scope.counter("cells").add(agg.cells);
    scope.counter("cells_converged").add(agg.converged_cells);
    scope.counter("events").add(agg.events);
    scope.counter("data_packets").add(agg.data_packets);
    scope.counter("total_bytes").add(agg.total_bytes);

    report.events += agg.events;
    report.max_cell_events =
        std::max(report.max_cell_events, agg.max_cell_events);
    report.tenants.push_back(std::move(agg));
  }

  static stats::Counter& cells_counter =
      stats::Registry::instance().counter("fleet.cells");
  cells_counter.add(report.cells);
  // Steals depend on worker timing: Gauge (timing section), never Counter.
  static stats::Gauge& steal_gauge =
      stats::Registry::instance().gauge("fleet.steals");
  steal_gauge.add(static_cast<std::int64_t>(report.steals));
  return report;
}

}  // namespace lrs::fleet
