#include "fleet/tenant.h"

#include "util/check.h"

namespace lrs::fleet {

namespace {

/// SplitMix64 finalizer: the same mixing the RNG layer uses for seed
/// decorrelation — adjacent (seed, cell) pairs land far apart.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* phase_name(TenantPhase p) {
  switch (p) {
    case TenantPhase::kRegistered: return "registered";
    case TenantPhase::kPrepared: return "prepared";
    case TenantPhase::kDisseminating: return "disseminating";
    case TenantPhase::kConverged: return "converged";
    case TenantPhase::kFailed: return "failed";
  }
  return "?";
}

std::size_t cell_receivers(const TenantSpec& spec, std::size_t cell) {
  LRS_CHECK(spec.receivers_min >= 1 &&
            spec.receivers_min <= spec.receivers_max);
  const std::size_t span = spec.receivers_max - spec.receivers_min + 1;
  return spec.receivers_min +
         static_cast<std::size_t>(mix64(spec.seed ^ (0xce11ULL + cell)) %
                                  span);
}

std::uint64_t cell_seed(const TenantSpec& spec, std::size_t cell) {
  return mix64(mix64(spec.seed) ^ (0x5eedULL * (cell + 1)));
}

}  // namespace lrs::fleet
