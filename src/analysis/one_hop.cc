#include "analysis/one_hop.h"

#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace lrs::analysis {

double seluge_expected_data_tx(std::size_t k, std::span<const double> loss) {
  LRS_CHECK(k >= 1);
  for (double p : loss) LRS_CHECK(p >= 0.0 && p < 1.0);

  // E[max_i G_i] = sum_{t>=0} P(max > t); the t=0 term is 1 (every packet
  // is transmitted at least once) and P(max > t) = 1 - prod_i (1 - p_i^t).
  double expect = 1.0;
  std::vector<double> pt(loss.begin(), loss.end());  // p_i^t, starts at t=1
  for (int t = 1; t < 100000; ++t) {
    double prod = 1.0;
    for (double v : pt) prod *= 1.0 - v;
    const double term = 1.0 - prod;
    expect += term;
    if (term < 1e-12) break;
    for (std::size_t i = 0; i < pt.size(); ++i) pt[i] *= loss[i];
  }
  return static_cast<double>(k) * expect;
}

double seluge_expected_data_tx(std::size_t k, std::size_t receivers,
                               double p) {
  std::vector<double> loss(receivers, p);
  return seluge_expected_data_tx(k, loss);
}

namespace {

/// One Monte-Carlo trial of the ACK-based process; returns transmissions.
std::size_t ack_lr_trial(std::size_t k_prime, std::size_t n,
                         std::span<const double> loss, Rng& rng) {
  const std::size_t receivers = loss.size();
  // has[i][j]: receiver i holds packet j. counts[i]: distinct held.
  std::vector<std::vector<bool>> has(receivers,
                                     std::vector<bool>(n, false));
  std::vector<std::size_t> counts(receivers, 0);
  std::size_t active = receivers;
  std::size_t transmissions = 0;

  while (active > 0) {
    bool sent_this_round = false;
    for (std::size_t j = 0; j < n && active > 0; ++j) {
      // Skip packets no active receiver is missing.
      bool wanted = false;
      for (std::size_t i = 0; i < receivers; ++i) {
        if (counts[i] < k_prime && !has[i][j]) {
          wanted = true;
          break;
        }
      }
      if (!wanted) continue;
      ++transmissions;
      sent_this_round = true;
      for (std::size_t i = 0; i < receivers; ++i) {
        if (counts[i] >= k_prime || has[i][j]) continue;
        if (!rng.bernoulli(loss[i])) {
          has[i][j] = true;
          if (++counts[i] == k_prime) --active;
        }
      }
    }
    LRS_CHECK_MSG(sent_this_round || active == 0,
                  "ACK model stalled (k' > n?)");
  }
  return transmissions;
}

}  // namespace

double AckLrModel::evaluate() const {
  LRS_CHECK(k_prime >= 1 && k_prime <= n);
  std::vector<double> loss_vec = loss_per_receiver;
  if (loss_vec.empty()) loss_vec.assign(receivers, loss);
  for (double p : loss_vec) LRS_CHECK(p >= 0.0 && p < 1.0);
  if (loss_vec.empty()) return static_cast<double>(k_prime);

  Rng rng(seed);
  double total = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    total += static_cast<double>(ack_lr_trial(k_prime, n, loss_vec, rng));
  }
  return total / static_cast<double>(trials);
}

double AckLrModel::expected_rounds() const {
  // A round transmits at most n packets; the mean transmission count
  // divided by n under-counts partial rounds, so simulate rounds directly.
  std::vector<double> loss_vec = loss_per_receiver;
  if (loss_vec.empty()) loss_vec.assign(receivers, loss);
  if (loss_vec.empty()) return 1.0;

  Rng rng(seed + 1);
  double total_rounds = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    const std::size_t receivers_n = loss_vec.size();
    std::vector<std::vector<bool>> has(receivers_n,
                                       std::vector<bool>(n, false));
    std::vector<std::size_t> counts(receivers_n, 0);
    std::size_t active = receivers_n;
    std::size_t rounds = 0;
    while (active > 0) {
      ++rounds;
      for (std::size_t j = 0; j < n && active > 0; ++j) {
        bool wanted = false;
        for (std::size_t i = 0; i < receivers_n; ++i) {
          if (counts[i] < k_prime && !has[i][j]) {
            wanted = true;
            break;
          }
        }
        if (!wanted) continue;
        for (std::size_t i = 0; i < receivers_n; ++i) {
          if (counts[i] >= k_prime || has[i][j]) continue;
          if (!rng.bernoulli(loss_vec[i])) {
            has[i][j] = true;
            if (++counts[i] == k_prime) --active;
          }
        }
      }
    }
    total_rounds += static_cast<double>(rounds);
  }
  return total_rounds / static_cast<double>(trials);
}

double one_round_completion_probability(std::size_t k_prime, std::size_t n,
                                        double p) {
  LRS_CHECK(k_prime <= n);
  // P(Binomial(n, 1-p) >= k').
  double prob = 0.0;
  double log_choose = 0.0;  // log C(n, 0)
  for (std::size_t s = 0; s <= n; ++s) {
    if (s >= k_prime) {
      const double log_term =
          log_choose + static_cast<double>(s) * std::log(1.0 - p) +
          static_cast<double>(n - s) * std::log(p > 0 ? p : 1e-300);
      prob += std::exp(log_term);
    }
    if (s < n) {
      log_choose += std::log(static_cast<double>(n - s)) -
                    std::log(static_cast<double>(s + 1));
    }
  }
  return std::min(prob, 1.0);
}

}  // namespace lrs::analysis
