// Analytical models of one-hop data-packet transmissions (paper §V-A).
//
// Setting: one local sender, N receivers, every packet to receiver i lost
// independently with probability p_i (the model of [20] adopted by the
// paper). Two quantities are derived:
//
//  * Seluge (Theorem 1 shape): each of the k packets of a page must be
//    retransmitted until every receiver holds that exact packet. The
//    number of transmissions of one packet is max_i G_i with G_i geometric
//    (success 1 - p_i), so
//        E[T_seluge] = k * sum_{t>=1} (1 - prod_i (1 - p_i^t)).
//
//  * ACK-based LR-Seluge (Theorem 2 shape): an idealized variant in which
//    receivers acknowledge truthfully after every packet and the sender
//    cycles over the n encoded packets, skipping packets nobody needs and
//    stopping each receiver's service once it holds k' distinct packets.
//    The paper uses it as an analytical upper bound on real (SNACK-based)
//    LR-Seluge. Its expectation has no convenient closed form for N > 1;
//    evaluate() computes it by seeded Monte Carlo over the exact process.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace lrs::analysis {

/// E[data transmissions] for one Seluge page, heterogeneous loss rates.
double seluge_expected_data_tx(std::size_t k, std::span<const double> loss);

/// Uniform-loss convenience overload.
double seluge_expected_data_tx(std::size_t k, std::size_t receivers,
                               double p);

struct AckLrModel {
  std::size_t k_prime = 32;  // packets a receiver needs to decode
  std::size_t n = 48;        // encoded packets per page
  std::size_t receivers = 20;
  double loss = 0.1;              // uniform loss probability
  std::vector<double> loss_per_receiver;  // overrides `loss` if non-empty

  std::size_t trials = 20'000;
  std::uint64_t seed = 1;

  /// Mean data transmissions per page under the ACK-based process.
  double evaluate() const;

  /// Mean number of full passes ("rounds") over the packet set.
  double expected_rounds() const;
};

/// Probability that a receiver collects >= k' of n packets in a single
/// pass when each is lost with probability p (one-round completion — the
/// quantity behind the step in Fig. 3 at the loss rate where one round
/// stops sufficing).
double one_round_completion_probability(std::size_t k_prime, std::size_t n,
                                        double p);

}  // namespace lrs::analysis
