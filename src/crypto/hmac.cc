#include "crypto/hmac.h"

#include <algorithm>

namespace lrs::crypto {

Sha256Digest hmac_sha256(ByteView key, ByteView message) {
  constexpr std::size_t kBlock = 64;
  std::array<std::uint8_t, kBlock> k{};  // zero-padded
  if (key.size() > kBlock) {
    const Sha256Digest kd = Sha256::hash(key);
    std::copy(kd.begin(), kd.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }

  std::array<std::uint8_t, kBlock> ipad, opad;
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(ByteView(ipad.data(), ipad.size())).update(message);
  const Sha256Digest inner_digest = inner.finalize();

  Sha256 outer;
  outer.update(ByteView(opad.data(), opad.size()))
      .update(ByteView(inner_digest.data(), inner_digest.size()));
  return outer.finalize();
}

ControlMac control_mac(ByteView key, ByteView message) {
  const Sha256Digest full = hmac_sha256(key, message);
  ControlMac mac;
  std::copy_n(full.begin(), kControlMacSize, mac.begin());
  return mac;
}

bool verify_control_mac(ByteView key, ByteView message,
                        const ControlMac& mac) {
  const ControlMac expect = control_mac(key, message);
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < kControlMacSize; ++i) acc |= expect[i] ^ mac[i];
  return acc == 0;
}

}  // namespace lrs::crypto
