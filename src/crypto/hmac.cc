#include "crypto/hmac.h"

#include <algorithm>

#include "sim/stats/stats.h"

namespace lrs::crypto {

HmacKey::HmacKey(ByteView key) {
  constexpr std::size_t kBlock = 64;
  std::array<std::uint8_t, kBlock> k{};  // zero-padded
  if (key.size() > kBlock) {
    const Sha256Digest kd = Sha256::hash(key);
    std::copy(kd.begin(), kd.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }

  std::array<std::uint8_t, kBlock> pad;
  for (std::size_t i = 0; i < kBlock; ++i) pad[i] = k[i] ^ 0x36;
  Sha256 inner;
  inner.update(ByteView(pad.data(), pad.size()));
  inner_ = inner.midstate();

  for (std::size_t i = 0; i < kBlock; ++i) pad[i] = k[i] ^ 0x5c;
  Sha256 outer;
  outer.update(ByteView(pad.data(), pad.size()));
  outer_ = outer.midstate();
}

Sha256Digest hmac_sha256(const HmacKey& key, ByteView message) {
  static stats::Timer& timer =
      stats::Registry::instance().timer("crypto.hmac");
  stats::TimerScope scope(timer);
  Sha256 inner = key.inner_ctx();
  const Sha256Digest inner_digest = inner.update(message).finalize();
  Sha256 outer = key.outer_ctx();
  return outer.update(ByteView(inner_digest.data(), inner_digest.size()))
      .finalize();
}

Sha256Digest hmac_sha256(ByteView key, ByteView message) {
  return hmac_sha256(HmacKey(key), message);
}

ControlMac control_mac(const HmacKey& key, ByteView message) {
  const Sha256Digest full = hmac_sha256(key, message);
  ControlMac mac;
  std::copy_n(full.begin(), kControlMacSize, mac.begin());
  return mac;
}

ControlMac control_mac(ByteView key, ByteView message) {
  return control_mac(HmacKey(key), message);
}

bool verify_control_mac(const HmacKey& key, ByteView message,
                        const ControlMac& mac) {
  const ControlMac expect = control_mac(key, message);
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < kControlMacSize; ++i) acc |= expect[i] ^ mac[i];
  return acc == 0;
}

bool verify_control_mac(ByteView key, ByteView message,
                        const ControlMac& mac) {
  return verify_control_mac(HmacKey(key), message, mac);
}

}  // namespace lrs::crypto
