#include "crypto/wots.h"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "crypto/hmac.h"
#include "util/buffer.h"
#include "util/check.h"

namespace lrs::crypto {

namespace {

using Chain = std::array<std::uint8_t, kWotsChainBytes>;

/// One application of the chaining function.
Chain chain_step(const Chain& in) {
  const Sha256Digest d = Sha256::hash(ByteView(in.data(), in.size()));
  Chain out;
  std::copy_n(d.begin(), kWotsChainBytes, out.begin());
  return out;
}

/// Applies the chaining function `steps` times.
Chain chain(Chain v, unsigned steps) {
  for (unsigned i = 0; i < steps; ++i) v = chain_step(v);
  return v;
}

/// Message digest -> len1 byte chunks + len2 checksum chunks, all in [0,255].
std::array<unsigned, kWotsLen> message_chunks(ByteView message) {
  const Sha256Digest d = Sha256::hash(message);
  std::array<unsigned, kWotsLen> chunks{};
  unsigned checksum = 0;
  for (std::size_t i = 0; i < kWotsLen1; ++i) {
    chunks[i] = d[i];
    checksum += 255 - d[i];
  }
  // checksum <= 16 * 255 = 4080, fits in two base-256 digits.
  chunks[kWotsLen1] = (checksum >> 8) & 0xff;
  chunks[kWotsLen1 + 1] = checksum & 0xff;
  return chunks;
}

WotsPublicKey compress_tops(
    const std::array<Chain, kWotsLen>& tops) {
  Sha256 h;
  for (const auto& t : tops) h.update(ByteView(t.data(), t.size()));
  return h.finalize();
}

}  // namespace

Bytes WotsSignature::serialize() const {
  Bytes out;
  out.reserve(kSerializedSize);
  for (const auto& c : chains) out.insert(out.end(), c.begin(), c.end());
  return out;
}

std::optional<WotsSignature> WotsSignature::deserialize(ByteView data) {
  if (data.size() < kSerializedSize) return std::nullopt;
  WotsSignature sig;
  std::size_t off = 0;
  for (auto& c : sig.chains) {
    std::memcpy(c.data(), data.data() + off, kWotsChainBytes);
    off += kWotsChainBytes;
  }
  return sig;
}

WotsKeyPair WotsKeyPair::generate(ByteView seed, std::uint64_t index) {
  WotsKeyPair kp;
  std::array<Chain, kWotsLen> tops;
  for (std::size_t i = 0; i < kWotsLen; ++i) {
    // sk_i = HMAC(seed, index || i): deterministic, independent per chain.
    Writer w;
    w.u64(index);
    w.u64(i);
    const Sha256Digest d = hmac_sha256(seed, view(w.data()));
    std::copy_n(d.begin(), kWotsChainBytes, kp.sk_[i].begin());
    tops[i] = chain(kp.sk_[i], 255);
  }
  kp.pk_ = compress_tops(tops);
  return kp;
}

WotsSignature WotsKeyPair::sign(ByteView message) {
  LRS_CHECK_MSG(!used_, "WOTS key reuse would forfeit security");
  used_ = true;
  const auto chunks = message_chunks(message);
  WotsSignature sig;
  for (std::size_t i = 0; i < kWotsLen; ++i) {
    sig.chains[i] = chain(sk_[i], chunks[i]);
  }
  return sig;
}

bool WotsKeyPair::verify(const WotsPublicKey& pk, ByteView message,
                         const WotsSignature& sig) {
  const auto chunks = message_chunks(message);
  std::array<Chain, kWotsLen> tops;
  for (std::size_t i = 0; i < kWotsLen; ++i) {
    tops[i] = chain(sig.chains[i], 255 - chunks[i]);
  }
  return equal(compress_tops(tops), pk);
}

Bytes CertifiedSignature::serialize() const {
  Writer w;
  w.u32(key_index);
  w.bytes(ByteView(wots_pk.data(), wots_pk.size()));
  w.u8(static_cast<std::uint8_t>(cert_path.size()));
  for (const auto& h : cert_path) w.bytes(ByteView(h.data(), h.size()));
  w.bytes(view(sig.serialize()));
  return std::move(w).take();
}

std::optional<CertifiedSignature> CertifiedSignature::deserialize(
    ByteView data) {
  Reader r(data);
  CertifiedSignature out;
  auto idx = r.try_u32();
  if (!idx) return std::nullopt;
  out.key_index = *idx;
  auto pk = r.try_bytes(out.wots_pk.size());
  if (!pk) return std::nullopt;
  std::copy(pk->begin(), pk->end(), out.wots_pk.begin());
  auto depth = r.try_u8();
  if (!depth || *depth > 32) return std::nullopt;
  for (unsigned i = 0; i < *depth; ++i) {
    auto h = r.try_bytes(kPacketHashSize);
    if (!h) return std::nullopt;
    PacketHash ph;
    std::copy(h->begin(), h->end(), ph.begin());
    out.cert_path.push_back(ph);
  }
  auto sig_bytes = r.try_bytes(WotsSignature::kSerializedSize);
  if (!sig_bytes) return std::nullopt;
  auto sig = WotsSignature::deserialize(view(*sig_bytes));
  if (!sig) return std::nullopt;
  out.sig = *sig;
  return out;
}

MultiKeySigner::MultiKeySigner(ByteView seed, std::size_t height)
    : tree_(MerkleTree::build([&] {
        LRS_CHECK(height <= 16);
        std::vector<Bytes> leaves;
        const std::size_t count = std::size_t{1} << height;
        leaves.reserve(count);
        keys_.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
          keys_.push_back(WotsKeyPair::generate(seed, i));
          const auto& pk = keys_.back().public_key();
          leaves.emplace_back(pk.begin(), pk.end());
        }
        return leaves;
      }())) {}

CertifiedSignature MultiKeySigner::sign(ByteView message) {
  if (next_ >= keys_.size())
    throw std::runtime_error("MultiKeySigner: all one-time keys consumed");
  CertifiedSignature out;
  out.key_index = static_cast<std::uint32_t>(next_);
  out.wots_pk = keys_[next_].public_key();
  out.cert_path = tree_.auth_path(next_);
  out.sig = keys_[next_].sign(message);
  ++next_;
  return out;
}

bool MultiKeySigner::verify(const PacketHash& root_public_key,
                            ByteView message, const CertifiedSignature& sig) {
  // 1. The WOTS public key must be certified under the preloaded root.
  const PacketHash root = MerkleTree::compute_root(
      ByteView(sig.wots_pk.data(), sig.wots_pk.size()), sig.key_index,
      sig.cert_path);
  if (!equal(root, root_public_key)) return false;
  // 2. The WOTS signature must verify under that key.
  return WotsKeyPair::verify(sig.wots_pk, message, sig.sig);
}

bool verify_certified_cached(const PacketHash& root_public_key,
                             ByteView message, const CertifiedSignature& sig) {
  // Collision-resistant fingerprint of the full (root, message, signature)
  // triple: two distinct verification questions cannot share a key.
  Sha256 h;
  h.update(ByteView(root_public_key.data(), root_public_key.size()));
  Writer w;
  w.u64(message.size());
  w.u32(sig.key_index);
  w.u8(static_cast<std::uint8_t>(sig.cert_path.size()));
  h.update(view(w.data()));
  h.update(message);
  h.update(ByteView(sig.wots_pk.data(), sig.wots_pk.size()));
  for (const auto& p : sig.cert_path) h.update(ByteView(p.data(), p.size()));
  for (const auto& c : sig.sig.chains) h.update(ByteView(c.data(), c.size()));
  const Sha256Digest key = h.finalize();

  struct DigestHash {
    std::size_t operator()(const Sha256Digest& d) const {
      std::size_t v;
      std::memcpy(&v, d.data(), sizeof(v));
      return v;
    }
  };
  static std::mutex mu;
  static std::unordered_map<Sha256Digest, bool, DigestHash> cache;
  {
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache.find(key);
    if (it != cache.end()) return it->second;
  }
  const bool ok = MultiKeySigner::verify(root_public_key, message, sig);
  {
    std::lock_guard<std::mutex> lock(mu);
    // A run only ever sees a handful of distinct signature packets; the cap
    // is a leak guard for adversarial floods of forged signatures.
    if (cache.size() >= 4096) cache.clear();
    cache.emplace(key, ok);
  }
  return ok;
}

}  // namespace lrs::crypto
