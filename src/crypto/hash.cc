#include "crypto/hash.h"

#include <algorithm>
#include <cstring>

#include "crypto/sha256_kernels.h"
#include "sim/stats/stats.h"
#include "util/check.h"

namespace lrs::crypto {

PacketHash packet_hash(ByteView data) {
  const Sha256Digest full = Sha256::hash(data);
  PacketHash out;
  std::copy_n(full.begin(), kPacketHashSize, out.begin());
  return out;
}

namespace {

/// Multi-buffer hash of `count` same-length messages. Whole blocks are
/// compressed straight out of the messages; the tail + FIPS padding (one
/// or two final blocks, identical shape across the run since lengths are
/// equal) is materialized per message in a scratch arena.
void hash_batch_uniform(const Sha256BatchKernel& kernel, const ByteView* msgs,
                        std::size_t count, Sha256Digest* out) {
  const std::size_t len = msgs[0].size();
  const std::size_t full_blocks = len / 64;
  const std::size_t tail_len = len - full_blocks * 64;
  // 0x80 + 8-byte length must fit: one extra block unless tail >= 56.
  const std::size_t pad_blocks = tail_len >= 56 ? 2 : 1;

  std::vector<std::uint32_t> states(count * 8);
  for (std::size_t i = 0; i < count; ++i) {
    std::memcpy(&states[8 * i], kSha256Init, sizeof(kSha256Init));
  }

  std::vector<const std::uint8_t*> ptrs(count);
  for (std::size_t b = 0; b < full_blocks; ++b) {
    for (std::size_t i = 0; i < count; ++i) ptrs[i] = msgs[i].data() + b * 64;
    kernel.compress_batch(states.data(), ptrs.data(), count);
  }

  // Padded tail blocks, laid out per message.
  const std::uint64_t bit_len = static_cast<std::uint64_t>(len) * 8;
  std::vector<std::uint8_t> scratch(count * pad_blocks * 64, 0);
  for (std::size_t i = 0; i < count; ++i) {
    std::uint8_t* dst = scratch.data() + i * pad_blocks * 64;
    if (tail_len > 0)
      std::memcpy(dst, msgs[i].data() + full_blocks * 64, tail_len);
    dst[tail_len] = 0x80;
    std::uint8_t* len_be = dst + pad_blocks * 64 - 8;
    for (int b = 0; b < 8; ++b)
      len_be[b] = static_cast<std::uint8_t>(bit_len >> (8 * (7 - b)));
  }
  for (std::size_t b = 0; b < pad_blocks; ++b) {
    for (std::size_t i = 0; i < count; ++i)
      ptrs[i] = scratch.data() + (i * pad_blocks + b) * 64;
    kernel.compress_batch(states.data(), ptrs.data(), count);
  }

  for (std::size_t i = 0; i < count; ++i) {
    for (int j = 0; j < 8; ++j) {
      const std::uint32_t s = states[8 * i + j];
      out[i][4 * j] = static_cast<std::uint8_t>(s >> 24);
      out[i][4 * j + 1] = static_cast<std::uint8_t>(s >> 16);
      out[i][4 * j + 2] = static_cast<std::uint8_t>(s >> 8);
      out[i][4 * j + 3] = static_cast<std::uint8_t>(s);
    }
  }
}

}  // namespace

void hash_batch(const ByteView* msgs, std::size_t count, Sha256Digest* out) {
  // Batch-vs-oneshot attribution: how many messages rode the multi-buffer
  // kernel vs fell back to serial hashing. The batch timer is inclusive of
  // the fallback's crypto.sha.oneshot time.
  static stats::Counter& batch_msgs =
      stats::Registry::instance().counter("crypto.sha.batch_msgs");
  static stats::Counter& simd_msgs =
      stats::Registry::instance().counter("crypto.sha.batch_simd_msgs");
  static stats::Timer& timer =
      stats::Registry::instance().timer("crypto.sha.batch");
  batch_msgs.add(count);
  stats::TimerScope scope(timer);
  const Sha256BatchKernel* kernel = sha256_batch_kernel();
  std::size_t i = 0;
  while (i < count) {
    // Maximal same-length run starting at i.
    std::size_t run = 1;
    while (i + run < count && msgs[i + run].size() == msgs[i].size()) ++run;
    if (kernel != nullptr && run >= 2) {
      simd_msgs.add(run);
      hash_batch_uniform(*kernel, msgs + i, run, out + i);
    } else {
      for (std::size_t j = i; j < i + run; ++j) out[j] = Sha256::hash(msgs[j]);
    }
    i += run;
  }
}

std::vector<Sha256Digest> hash_batch(std::span<const ByteView> msgs) {
  std::vector<Sha256Digest> out(msgs.size());
  hash_batch(msgs.data(), msgs.size(), out.data());
  return out;
}

void packet_hash_batch(const ByteView* msgs, std::size_t count,
                       PacketHash* out) {
  std::vector<Sha256Digest> full(count);
  hash_batch(msgs, count, full.data());
  for (std::size_t i = 0; i < count; ++i) {
    std::copy_n(full[i].begin(), kPacketHashSize, out[i].begin());
  }
}

namespace {
template <std::size_t N>
bool ct_equal(const std::array<std::uint8_t, N>& a,
              const std::array<std::uint8_t, N>& b) {
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < N; ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}
}  // namespace

bool equal(const PacketHash& a, const PacketHash& b) { return ct_equal(a, b); }
bool equal(const Sha256Digest& a, const Sha256Digest& b) {
  return ct_equal(a, b);
}

void append(Bytes& out, const PacketHash& h) {
  out.insert(out.end(), h.begin(), h.end());
}

void append(Bytes& out, const Sha256Digest& h) {
  out.insert(out.end(), h.begin(), h.end());
}

PacketHash read_packet_hash(ByteView data, std::size_t off) {
  LRS_CHECK(off + kPacketHashSize <= data.size());
  PacketHash h;
  std::memcpy(h.data(), data.data() + off, kPacketHashSize);
  return h;
}

}  // namespace lrs::crypto
