#include "crypto/hash.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"

namespace lrs::crypto {

PacketHash packet_hash(ByteView data) {
  const Sha256Digest full = Sha256::hash(data);
  PacketHash out;
  std::copy_n(full.begin(), kPacketHashSize, out.begin());
  return out;
}

namespace {
template <std::size_t N>
bool ct_equal(const std::array<std::uint8_t, N>& a,
              const std::array<std::uint8_t, N>& b) {
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < N; ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}
}  // namespace

bool equal(const PacketHash& a, const PacketHash& b) { return ct_equal(a, b); }
bool equal(const Sha256Digest& a, const Sha256Digest& b) {
  return ct_equal(a, b);
}

void append(Bytes& out, const PacketHash& h) {
  out.insert(out.end(), h.begin(), h.end());
}

void append(Bytes& out, const Sha256Digest& h) {
  out.insert(out.end(), h.begin(), h.end());
}

PacketHash read_packet_hash(ByteView data, std::size_t off) {
  LRS_CHECK(off + kPacketHashSize <= data.size());
  PacketHash h;
  std::memcpy(h.data(), data.data() + off, kPacketHashSize);
  return h;
}

}  // namespace lrs::crypto
