// Merkle hash tree over the encoded packets of the hash page (paper Fig. 2).
//
// The base station builds a depth-d binary tree over n0 = 2^d leaves; every
// page-0 packet carries its leaf's authentication path (the d sibling node
// values from leaf to root), so a receiver that knows only the signed root
// can authenticate any page-0 packet immediately on arrival.
//
// Node values are truncated to kPacketHashSize bytes — the auth path rides in
// every page-0 packet and its length is what the paper's byte accounting
// charges. Leaves and internal nodes are domain-separated to prevent
// second-preimage splicing between levels.
#pragma once

#include <cstddef>
#include <vector>

#include "crypto/hash.h"
#include "util/types.h"

namespace lrs::crypto {

class MerkleTree {
 public:
  /// Builds a tree over `leaves` (each leaf is the full packet content it
  /// authenticates). The leaf count must be a power of two >= 1; callers pad
  /// with empty leaves if necessary.
  static MerkleTree build(const std::vector<Bytes>& leaves);

  std::size_t leaf_count() const { return leaf_count_; }
  std::size_t depth() const { return depth_; }
  const PacketHash& root() const { return nodes_[1]; }

  /// Sibling node values along the path from leaf `index` to the root,
  /// ordered leaf-level first. Size == depth().
  std::vector<PacketHash> auth_path(std::size_t index) const;

  /// Recomputes the root implied by (`leaf_data`, `index`, `path`).
  /// A packet is authentic iff this equals the signed root.
  static PacketHash compute_root(ByteView leaf_data, std::size_t index,
                                 std::span<const PacketHash> path);

  /// Hash of a leaf's content (domain-separated).
  static PacketHash leaf_hash(ByteView leaf_data);
  /// Hash of two child node values (domain-separated).
  static PacketHash node_hash(const PacketHash& left, const PacketHash& right);

 private:
  MerkleTree() = default;

  std::size_t leaf_count_ = 0;
  std::size_t depth_ = 0;
  // Heap layout: nodes_[1] is the root, children of i are 2i and 2i+1,
  // leaves occupy [leaf_count_, 2*leaf_count_).
  std::vector<PacketHash> nodes_;
};

}  // namespace lrs::crypto
