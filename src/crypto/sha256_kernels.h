// Runtime-dispatched SHA-256 compression kernels: the inner loop behind
// every authenticator in the system (packet hashes, the hash page, the
// Merkle tree, HMAC, WOTS, puzzles).
//
// Mirrors the GF(256) kernel layer in erasure/gf256_kernels.{h,cc}. Four
// implementation tiers are compiled in (availability permitting):
//  * "ref"      — the original rolled scalar compression loop. Kept forever
//                 as the differential-testing oracle; never removed, never
//                 "improved".
//  * "unrolled" — portable block-unrolled scalar kernel: all 64 rounds
//                 spelled out with the message schedule kept in a rotating
//                 16-word window, no per-round array traffic.
//  * "shani"    — x86 SHA-NI path (sha256rnds2/sha256msg1/sha256msg2),
//                 two rounds per instruction.
//  * Multi-buffer SIMD ("mb4"/"mb8") — 4-way SSE2 / 8-way AVX2 transposed
//                 kernels that compress one block of 4 or 8 *independent*
//                 messages at once; each vector lane carries one message's
//                 state. Only reachable through the batch entry points —
//                 single-stream hashing has no lane-parallelism to exploit.
//                 A "shani" batch adapter (a loop over the SHA-NI kernel)
//                 outranks both where the CPU has SHA extensions.
//
// The active single-stream kernel is chosen once, at first use, by CPUID
// feature probing (best available wins) and can be overridden with the
// environment variable LRS_SHA256_KERNEL=ref|unrolled|shani|auto — for A/B
// benchmarking and for forcing portable paths under sanitizers. The batch
// kernel is probed independently (SHA-NI loop > mb8 > mb4 > scalar loop).
// All kernels are byte-identical (enforced by tests/test_sha256.cc).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace lrs::crypto {

/// One single-stream SHA-256 implementation. `compress` folds `blocks`
/// consecutive 64-byte blocks into `state` (8 words, host order).
struct Sha256Kernel {
  const char* name;
  void (*compress)(std::uint32_t* state, const std::uint8_t* data,
                   std::size_t blocks);
};

/// One multi-buffer implementation: folds one 64-byte block from each of
/// `count` independent messages into `count` separate states. `states` is
/// count contiguous 8-word state vectors; `data[i]` points at message i's
/// next block. `lanes` is the native vector width — callers may pass any
/// `count`, the kernel loops in groups of `lanes` and falls back to the
/// active single-stream kernel for the remainder.
struct Sha256BatchKernel {
  const char* name;
  std::size_t lanes;
  void (*compress_batch)(std::uint32_t* states,
                         const std::uint8_t* const* data, std::size_t count);
};

/// The active single-stream kernel. First call performs selection (env
/// override, then CPUID) and logs the choice once.
const Sha256Kernel& sha256_kernel();

/// The active multi-buffer kernel, or nullptr when none beats the
/// single-stream path on this CPU (or LRS_SHA256_KERNEL pinned a scalar
/// kernel, which also pins batch hashing to it for reproducible A/B runs).
const Sha256BatchKernel* sha256_batch_kernel();

/// Single-stream kernels compiled in AND runnable on this CPU, fastest
/// last. Always contains at least {"ref", "unrolled"}.
std::vector<std::string> sha256_available_kernels();

/// Batch kernels runnable on this CPU (may be empty on non-x86).
std::vector<std::string> sha256_available_batch_kernels();

/// Looks up a single-stream kernel by name; nullptr when unknown or not
/// runnable on this CPU. "auto" is not a kernel name.
const Sha256Kernel* sha256_find_kernel(const std::string& name);

/// Looks up a batch kernel by name ("mb4", "mb8", "shani"); nullptr when
/// unknown or not runnable on this CPU.
const Sha256BatchKernel* sha256_find_batch_kernel(const std::string& name);

/// Forces the active single-stream kernel ("auto" re-runs CPUID selection,
/// which also re-enables the batch path). Forcing "ref"/"unrolled" disables
/// the multi-buffer batch path so differential tests exercise the scalar
/// batch loop. Returns false — leaving the selection unchanged — when the
/// name is unknown or the CPU lacks the required ISA.
bool sha256_set_kernel(const std::string& name);

/// The initial SHA-256 chaining value (FIPS 180-4 §5.3.3).
inline constexpr std::uint32_t kSha256Init[8] = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

}  // namespace lrs::crypto
