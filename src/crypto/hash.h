// Digest types used by the dissemination protocols.
//
// Seluge and LR-Seluge embed per-packet hash images inside packets, so the
// hash length directly costs airtime. Following Seluge, packet hashes are
// truncated to 64 bits (kPacketHashSize); the Merkle tree and signatures use
// full-length digests internally but the tree is built over truncated node
// values to keep page-0 packets small, matching the paper's byte budget.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "crypto/sha256.h"
#include "util/types.h"

namespace lrs::crypto {

/// Truncated packet-hash length in bytes (64-bit, as in Seluge).
inline constexpr std::size_t kPacketHashSize = 8;

using PacketHash = std::array<std::uint8_t, kPacketHashSize>;

/// SHA-256 truncated to the first kPacketHashSize bytes.
PacketHash packet_hash(ByteView data);

/// Hashes `count` independent messages: out[i] = SHA-256(msgs[i]).
/// Same-length runs go through the multi-buffer SIMD kernel when one is
/// active (see crypto/sha256_kernels.h); digests are byte-identical to
/// one-shot Sha256::hash either way. This is the entry point for the
/// many-hashes-at-once hot paths: per-page packet hashing, Merkle levels.
void hash_batch(const ByteView* msgs, std::size_t count, Sha256Digest* out);
std::vector<Sha256Digest> hash_batch(std::span<const ByteView> msgs);

/// Batch variant of packet_hash (truncated digests).
void packet_hash_batch(const ByteView* msgs, std::size_t count,
                       PacketHash* out);

/// Constant-time-ish comparison (not security-critical in a simulator, but
/// the library should model good practice).
bool equal(const PacketHash& a, const PacketHash& b);
bool equal(const Sha256Digest& a, const Sha256Digest& b);

/// Append helpers for building hash-chained payloads.
void append(Bytes& out, const PacketHash& h);
void append(Bytes& out, const Sha256Digest& h);

/// Reads a PacketHash at byte offset `off` (bounds-checked).
PacketHash read_packet_hash(ByteView data, std::size_t off);

}  // namespace lrs::crypto
