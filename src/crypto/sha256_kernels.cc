#include "crypto/sha256_kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "util/log.h"

#if defined(__x86_64__) || defined(__i386__)
#define LRS_SHA256_X86 1
#include <immintrin.h>
#endif

namespace lrs::crypto {

namespace {

// FIPS 180-4 round constants. The SHA-NI path loads them 4 at a time, so
// keep the array addressable rather than folding into immediates.
alignas(16) constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}
inline std::uint32_t bsig0(std::uint32_t x) {
  return rotr(x, 2) ^ rotr(x, 13) ^ rotr(x, 22);
}
inline std::uint32_t bsig1(std::uint32_t x) {
  return rotr(x, 6) ^ rotr(x, 11) ^ rotr(x, 25);
}
inline std::uint32_t ssig0(std::uint32_t x) {
  return rotr(x, 7) ^ rotr(x, 18) ^ (x >> 3);
}
inline std::uint32_t ssig1(std::uint32_t x) {
  return rotr(x, 17) ^ rotr(x, 19) ^ (x >> 10);
}
inline std::uint32_t load_be32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

// ---------------------------------------------------------------------------
// Reference kernel: the original rolled scalar loop (moved verbatim from
// Sha256::process_block). This is the differential-testing oracle — do not
// optimize it.
// ---------------------------------------------------------------------------

void compress_ref(std::uint32_t* state, const std::uint8_t* data,
                  std::size_t blocks) {
  while (blocks-- > 0) {
    const std::uint8_t* block = data;
    data += 64;
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) w[i] = load_be32(block + 4 * i);
    for (int i = 16; i < 64; ++i) {
      w[i] = ssig1(w[i - 2]) + w[i - 7] + ssig0(w[i - 15]) + w[i - 16];
    }

    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

    for (int i = 0; i < 64; ++i) {
      const std::uint32_t t1 =
          h + bsig1(e) + ((e & f) ^ (~e & g)) + kK[i] + w[i];
      const std::uint32_t t2 = bsig0(a) + ((a & b) ^ (a & c) ^ (b & c));
      h = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
  }
}

// ---------------------------------------------------------------------------
// Portable unrolled kernel: all 64 rounds spelled out with the message
// schedule kept in a rotating 16-word window. No register shuffling — the
// a..h rotation is expressed by permuting macro arguments — and no w[64]
// array traffic.
// ---------------------------------------------------------------------------

// One round. `i` is always a compile-time constant, so the schedule branch
// and all the & 15 ring indices fold away.
#define LRS_SHA256_RND(A, B, C, D, E, F, G, H, i)                           \
  do {                                                                      \
    if ((i) >= 16) {                                                        \
      w[(i) & 15] += ssig1(w[((i) - 2) & 15]) + w[((i) - 7) & 15] +         \
                     ssig0(w[((i) - 15) & 15]);                             \
    }                                                                       \
    const std::uint32_t t1 =                                                \
        H + bsig1(E) + ((E & F) ^ (~E & G)) + kK[i] + w[(i) & 15];          \
    const std::uint32_t t2 = bsig0(A) + ((A & B) ^ (A & C) ^ (B & C));      \
    D += t1;                                                                \
    H = t1 + t2;                                                            \
  } while (0)

#define LRS_SHA256_8RND(i)                            \
  LRS_SHA256_RND(a, b, c, d, e, f, g, h, (i) + 0);    \
  LRS_SHA256_RND(h, a, b, c, d, e, f, g, (i) + 1);    \
  LRS_SHA256_RND(g, h, a, b, c, d, e, f, (i) + 2);    \
  LRS_SHA256_RND(f, g, h, a, b, c, d, e, (i) + 3);    \
  LRS_SHA256_RND(e, f, g, h, a, b, c, d, (i) + 4);    \
  LRS_SHA256_RND(d, e, f, g, h, a, b, c, (i) + 5);    \
  LRS_SHA256_RND(c, d, e, f, g, h, a, b, (i) + 6);    \
  LRS_SHA256_RND(b, c, d, e, f, g, h, a, (i) + 7)

void compress_unrolled(std::uint32_t* state, const std::uint8_t* data,
                       std::size_t blocks) {
  while (blocks-- > 0) {
    std::uint32_t w[16];
    for (int i = 0; i < 16; ++i) w[i] = load_be32(data + 4 * i);
    data += 64;

    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

    LRS_SHA256_8RND(0);
    LRS_SHA256_8RND(8);
    LRS_SHA256_8RND(16);
    LRS_SHA256_8RND(24);
    LRS_SHA256_8RND(32);
    LRS_SHA256_8RND(40);
    LRS_SHA256_8RND(48);
    LRS_SHA256_8RND(56);

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
  }
}

#undef LRS_SHA256_8RND
#undef LRS_SHA256_RND

// ---------------------------------------------------------------------------
// x86 SHA-NI kernel: sha256rnds2 performs two rounds per instruction;
// sha256msg1/msg2 compute the message schedule four words at a time.
// Compiled with per-function target attributes so the translation unit
// builds without global -msha; runtime CPUID gates selection.
// ---------------------------------------------------------------------------

#ifdef LRS_SHA256_X86

// Schedule-active 4-round group: consumes m_cur, folds the schedule update
// into m_next (msg2) and m_prev (msg1). Used for rounds 12..51 where both
// halves of the W recurrence are still live.
#define LRS_SHANI_4RND_SCHED(m_cur, m_prev, m_next, k_idx)                  \
  do {                                                                      \
    msg = _mm_add_epi32(                                                    \
        m_cur, _mm_load_si128(reinterpret_cast<const __m128i*>(&kK[k_idx]))); \
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);                    \
    tmp = _mm_alignr_epi8(m_cur, m_prev, 4);                                \
    m_next = _mm_add_epi32(m_next, tmp);                                    \
    m_next = _mm_sha256msg2_epu32(m_next, m_cur);                           \
    msg = _mm_shuffle_epi32(msg, 0x0E);                                     \
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);                    \
    m_prev = _mm_sha256msg1_epu32(m_prev, m_cur);                           \
  } while (0)

__attribute__((target("sha,sse4.1"))) void compress_shani(
    std::uint32_t* state, const std::uint8_t* data, std::size_t blocks) {
  const __m128i kSwap =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);

  // Repack {a..h} into the ABEF/CDGH register layout sha256rnds2 expects.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);        // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);  // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);   // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);        // CDGH

  while (blocks-- > 0) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;
    __m128i msg;

    // Rounds 0-3.
    __m128i msg0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data)), kSwap);
    msg = _mm_add_epi32(msg0,
                        _mm_load_si128(reinterpret_cast<const __m128i*>(&kK[0])));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 4-7.
    __m128i msg1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16)), kSwap);
    msg = _mm_add_epi32(msg1,
                        _mm_load_si128(reinterpret_cast<const __m128i*>(&kK[4])));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 8-11.
    __m128i msg2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32)), kSwap);
    msg = _mm_add_epi32(msg2,
                        _mm_load_si128(reinterpret_cast<const __m128i*>(&kK[8])));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 12-15 and onward: uniform schedule-active groups, rotating
    // the message registers (cur, prev, next).
    __m128i msg3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48)), kSwap);
    LRS_SHANI_4RND_SCHED(msg3, msg2, msg0, 12);
    LRS_SHANI_4RND_SCHED(msg0, msg3, msg1, 16);
    LRS_SHANI_4RND_SCHED(msg1, msg0, msg2, 20);
    LRS_SHANI_4RND_SCHED(msg2, msg1, msg3, 24);
    LRS_SHANI_4RND_SCHED(msg3, msg2, msg0, 28);
    LRS_SHANI_4RND_SCHED(msg0, msg3, msg1, 32);
    LRS_SHANI_4RND_SCHED(msg1, msg0, msg2, 36);
    LRS_SHANI_4RND_SCHED(msg2, msg1, msg3, 40);
    LRS_SHANI_4RND_SCHED(msg3, msg2, msg0, 44);
    LRS_SHANI_4RND_SCHED(msg0, msg3, msg1, 48);

    // Rounds 52-55 (schedule tail: msg2 still needs its msg2 step).
    msg = _mm_add_epi32(
        msg1, _mm_load_si128(reinterpret_cast<const __m128i*>(&kK[52])));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 56-59.
    msg = _mm_add_epi32(
        msg2, _mm_load_si128(reinterpret_cast<const __m128i*>(&kK[56])));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 60-63.
    msg = _mm_add_epi32(
        msg3, _mm_load_si128(reinterpret_cast<const __m128i*>(&kK[60])));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
    data += 64;
  }

  // Unpack ABEF/CDGH back to {a..h}.
  tmp = _mm_shuffle_epi32(state0, 0x1B);     // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);  // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);        // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);           // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

#undef LRS_SHANI_4RND_SCHED

// ---------------------------------------------------------------------------
// Multi-buffer kernels: each vector lane carries one independent message's
// state, so one pass over the 64 rounds compresses 4 (SSE2) or 8 (AVX2)
// same-position blocks at once. Lane gather/scatter goes through small
// stack arrays — the round arithmetic dominates by an order of magnitude.
// ---------------------------------------------------------------------------

#define LRS_MB_ROTR(OR, SRL, SLL, x, n) OR(SRL(x, n), SLL(x, 32 - (n)))

#define LRS_SHA256_MB_BODY(VEC, SET1, ADD, AND, ANDNOT, OR, XOR, SRL, SLL,  \
                           LANES)                                           \
  VEC s[8];                                                                 \
  alignas(32) std::uint32_t lane[LANES];                                    \
  for (int j = 0; j < 8; ++j) {                                             \
    for (int l = 0; l < LANES; ++l) lane[l] = states[8 * l + j];            \
    s[j] = LRS_MB_LOAD(lane);                                               \
  }                                                                         \
  VEC w[16];                                                                \
  for (int t = 0; t < 16; ++t) {                                            \
    for (int l = 0; l < LANES; ++l) lane[l] = load_be32(data[l] + 4 * t);   \
    w[t] = LRS_MB_LOAD(lane);                                               \
  }                                                                         \
  VEC a = s[0], b = s[1], c = s[2], d = s[3];                               \
  VEC e = s[4], f = s[5], g = s[6], h = s[7];                               \
  for (int t = 0; t < 64; ++t) {                                            \
    if (t >= 16) {                                                          \
      const VEC w2 = w[(t - 2) & 15], w15 = w[(t - 15) & 15];               \
      const VEC sig1 = XOR(XOR(LRS_MB_ROTR(OR, SRL, SLL, w2, 17), LRS_MB_ROTR(OR, SRL, SLL, w2, 19)),   \
                           SRL(w2, 10));                                    \
      const VEC sig0 = XOR(XOR(LRS_MB_ROTR(OR, SRL, SLL, w15, 7), LRS_MB_ROTR(OR, SRL, SLL, w15, 18)),  \
                           SRL(w15, 3));                                    \
      w[t & 15] = ADD(ADD(w[t & 15], sig1), ADD(w[(t - 7) & 15], sig0));    \
    }                                                                       \
    const VEC bs1 = XOR(XOR(LRS_MB_ROTR(OR, SRL, SLL, e, 6), LRS_MB_ROTR(OR, SRL, SLL, e, 11)),         \
                        LRS_MB_ROTR(OR, SRL, SLL, e, 25));                                \
    const VEC ch = XOR(AND(e, f), ANDNOT(e, g));                            \
    const VEC t1 =                                                          \
        ADD(ADD(ADD(h, bs1), ADD(ch, SET1(static_cast<int>(kK[t])))),       \
            w[t & 15]);                                                     \
    const VEC bs0 = XOR(XOR(LRS_MB_ROTR(OR, SRL, SLL, a, 2), LRS_MB_ROTR(OR, SRL, SLL, a, 13)),         \
                        LRS_MB_ROTR(OR, SRL, SLL, a, 22));                                \
    const VEC maj = XOR(XOR(AND(a, b), AND(a, c)), AND(b, c));              \
    const VEC t2 = ADD(bs0, maj);                                           \
    h = g;                                                                  \
    g = f;                                                                  \
    f = e;                                                                  \
    e = ADD(d, t1);                                                         \
    d = c;                                                                  \
    c = b;                                                                  \
    b = a;                                                                  \
    a = ADD(t1, t2);                                                        \
  }                                                                         \
  const VEC out[8] = {ADD(s[0], a), ADD(s[1], b), ADD(s[2], c),             \
                      ADD(s[3], d), ADD(s[4], e), ADD(s[5], f),             \
                      ADD(s[6], g), ADD(s[7], h)};                          \
  for (int j = 0; j < 8; ++j) {                                             \
    LRS_MB_STORE(lane, out[j]);                                             \
    for (int l = 0; l < LANES; ++l) states[8 * l + j] = lane[l];            \
  }

// One block of exactly 4 messages (SSE2 — baseline on x86-64).
#pragma GCC push_options
#pragma GCC target("sse2")
#define LRS_MB_LOAD(p) _mm_load_si128(reinterpret_cast<const __m128i*>(p))
#define LRS_MB_STORE(p, v) _mm_store_si128(reinterpret_cast<__m128i*>(p), v)
void compress_mb4_group(std::uint32_t* states,
                        const std::uint8_t* const* data) {
  LRS_SHA256_MB_BODY(__m128i, _mm_set1_epi32, _mm_add_epi32, _mm_and_si128,
                     _mm_andnot_si128, _mm_or_si128, _mm_xor_si128,
                     _mm_srli_epi32, _mm_slli_epi32, 4)
}
#undef LRS_MB_LOAD
#undef LRS_MB_STORE
#pragma GCC pop_options

// One block of exactly 8 messages (AVX2).
#pragma GCC push_options
#pragma GCC target("avx2")
#define LRS_MB_LOAD(p) _mm256_load_si256(reinterpret_cast<const __m256i*>(p))
#define LRS_MB_STORE(p, v) \
  _mm256_store_si256(reinterpret_cast<__m256i*>(p), v)
void compress_mb8_group(std::uint32_t* states,
                        const std::uint8_t* const* data) {
  LRS_SHA256_MB_BODY(__m256i, _mm256_set1_epi32, _mm256_add_epi32,
                     _mm256_and_si256, _mm256_andnot_si256, _mm256_or_si256,
                     _mm256_xor_si256, _mm256_srli_epi32, _mm256_slli_epi32,
                     8)
}
#undef LRS_MB_LOAD
#undef LRS_MB_STORE
#pragma GCC pop_options

#undef LRS_SHA256_MB_BODY
#undef LRS_MB_ROTR

void compress_batch_mb4(std::uint32_t* states, const std::uint8_t* const* data,
                        std::size_t count) {
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) compress_mb4_group(states + 8 * i, data + i);
  for (; i < count; ++i) compress_unrolled(states + 8 * i, data[i], 1);
}

void compress_batch_mb8(std::uint32_t* states, const std::uint8_t* const* data,
                        std::size_t count) {
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) compress_mb8_group(states + 8 * i, data + i);
  for (; i + 4 <= count; i += 4) compress_mb4_group(states + 8 * i, data + i);
  for (; i < count; ++i) compress_unrolled(states + 8 * i, data[i], 1);
}

// Batch adapter over the SHA-NI single-stream kernel. Measured on a Xeon
// with both extensions, looping sha256rnds2 outruns the 8-lane AVX2
// multi-buffer kernel (~1.4 GB/s vs ~1.0 GB/s on 8x64B), so this ranks
// highest when the CPU has SHA extensions.
void compress_batch_shani(std::uint32_t* states,
                          const std::uint8_t* const* data, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    compress_shani(states + 8 * i, data[i], 1);
  }
}

#endif  // LRS_SHA256_X86

// ---------------------------------------------------------------------------
// Registry and runtime selection.
// ---------------------------------------------------------------------------

constexpr Sha256Kernel kRefKernel{"ref", compress_ref};
constexpr Sha256Kernel kUnrolledKernel{"unrolled", compress_unrolled};
#ifdef LRS_SHA256_X86
constexpr Sha256Kernel kShaniKernel{"shani", compress_shani};
constexpr Sha256BatchKernel kMb4Kernel{"mb4", 4, compress_batch_mb4};
constexpr Sha256BatchKernel kMb8Kernel{"mb8", 8, compress_batch_mb8};
constexpr Sha256BatchKernel kShaniBatchKernel{"shani", 1,
                                              compress_batch_shani};
#endif

/// Single-stream kernels runnable on this CPU, slowest to fastest.
std::vector<const Sha256Kernel*> runnable_kernels() {
  std::vector<const Sha256Kernel*> v{&kRefKernel, &kUnrolledKernel};
#ifdef LRS_SHA256_X86
  if (__builtin_cpu_supports("sha")) v.push_back(&kShaniKernel);
#endif
  return v;
}

/// Batch kernels runnable on this CPU, slowest to fastest. The multi-buffer
/// lanes beat the scalar kernels for many-message workloads, but dedicated
/// SHA extensions outrun even 8-lane AVX2 (measured ~1.4x on 8x64B), so a
/// loop over SHA-NI ranks above mb8 when the CPU has it.
std::vector<const Sha256BatchKernel*> runnable_batch_kernels() {
  std::vector<const Sha256BatchKernel*> v;
#ifdef LRS_SHA256_X86
  if (__builtin_cpu_supports("sse2")) v.push_back(&kMb4Kernel);
  if (__builtin_cpu_supports("avx2")) v.push_back(&kMb8Kernel);
  if (__builtin_cpu_supports("sha")) v.push_back(&kShaniBatchKernel);
#endif
  return v;
}

const Sha256Kernel* select_auto() { return runnable_kernels().back(); }

const Sha256BatchKernel* select_batch_auto() {
  auto v = runnable_batch_kernels();
  return v.empty() ? nullptr : v.back();
}

struct ActiveKernels {
  std::atomic<const Sha256Kernel*> single;
  std::atomic<const Sha256BatchKernel*> batch;

  ActiveKernels() {
    const Sha256Kernel* chosen = nullptr;
    const char* env = std::getenv("LRS_SHA256_KERNEL");
    const bool overridden =
        env != nullptr && env[0] != '\0' && std::string(env) != "auto";
    if (overridden) {
      chosen = sha256_find_kernel(env);
      if (chosen == nullptr) {
        LRS_LOG(kWarn) << "LRS_SHA256_KERNEL=" << env
                       << " unknown or unsupported on this CPU; "
                          "falling back to auto selection";
      }
    }
    // A pinned scalar kernel also pins batch hashing to it, so sanitizer
    // and A/B runs exercise exactly one implementation.
    const bool pinned =
        chosen != nullptr && chosen != runnable_kernels().back();
    if (chosen == nullptr) chosen = select_auto();
    const Sha256BatchKernel* batch_chosen =
        pinned ? nullptr : select_batch_auto();
    LRS_LOG(kInfo) << "SHA-256 kernel: " << chosen->name << ", batch: "
                   << (batch_chosen ? batch_chosen->name : "(single-stream)")
                   << (overridden ? " (LRS_SHA256_KERNEL override)"
                                  : " (auto-selected)");
    single.store(chosen, std::memory_order_release);
    batch.store(batch_chosen, std::memory_order_release);
  }
};

ActiveKernels& active_kernels() {
  static ActiveKernels a;
  return a;
}

}  // namespace

const Sha256Kernel& sha256_kernel() {
  return *active_kernels().single.load(std::memory_order_acquire);
}

const Sha256BatchKernel* sha256_batch_kernel() {
  return active_kernels().batch.load(std::memory_order_acquire);
}

std::vector<std::string> sha256_available_kernels() {
  std::vector<std::string> names;
  for (const auto* k : runnable_kernels()) names.emplace_back(k->name);
  return names;
}

std::vector<std::string> sha256_available_batch_kernels() {
  std::vector<std::string> names;
  for (const auto* k : runnable_batch_kernels()) names.emplace_back(k->name);
  return names;
}

const Sha256Kernel* sha256_find_kernel(const std::string& name) {
  for (const auto* k : runnable_kernels()) {
    if (name == k->name) return k;
  }
  return nullptr;
}

const Sha256BatchKernel* sha256_find_batch_kernel(const std::string& name) {
  for (const auto* k : runnable_batch_kernels()) {
    if (name == k->name) return k;
  }
  return nullptr;
}

bool sha256_set_kernel(const std::string& name) {
  const Sha256Kernel* k =
      name == "auto" ? select_auto() : sha256_find_kernel(name);
  if (k == nullptr) return false;
  auto& a = active_kernels();
  a.single.store(k, std::memory_order_release);
  // Scalar pins disable the multi-buffer path (see header); the best
  // kernel (or "auto") restores CPUID batch selection.
  const bool pinned = k != runnable_kernels().back();
  a.batch.store(pinned ? nullptr : select_batch_auto(),
                std::memory_order_release);
  return true;
}

}  // namespace lrs::crypto
