#include "crypto/puzzle.h"

#include "crypto/sha256.h"
#include "util/buffer.h"
#include "util/check.h"

namespace lrs::crypto {

namespace {
/// True iff the digest's low `strength` bits (reading the tail bytes) are 0.
bool tail_zero_bits(const Sha256Digest& d, unsigned strength) {
  unsigned remaining = strength;
  std::size_t i = d.size();
  while (remaining >= 8) {
    if (d[--i] != 0) return false;
    remaining -= 8;
  }
  if (remaining > 0) {
    const std::uint8_t mask = static_cast<std::uint8_t>((1u << remaining) - 1);
    if ((d[i - 1] & mask) != 0) return false;
  }
  return true;
}

Sha256Digest puzzle_hash(ByteView message, std::uint64_t candidate) {
  Sha256 h;
  h.update(message);
  std::uint8_t buf[8];
  for (int i = 0; i < 8; ++i)
    buf[i] = static_cast<std::uint8_t>(candidate >> (8 * i));
  h.update(ByteView(buf, 8));
  return h.finalize();
}
}  // namespace

Bytes PuzzleSolution::serialize() const {
  Writer w;
  w.u8(strength);
  w.u64(solution);
  return std::move(w).take();
}

std::optional<PuzzleSolution> PuzzleSolution::deserialize(ByteView data) {
  Reader r(data);
  PuzzleSolution p;
  auto s = r.try_u8();
  auto sol = r.try_u64();
  if (!s || !sol) return std::nullopt;
  p.strength = *s;
  p.solution = *sol;
  return p;
}

PuzzleSolution solve_puzzle(ByteView message, std::uint8_t strength) {
  LRS_CHECK_MSG(strength <= 30, "puzzle strength unreasonably high");
  PuzzleSolution out;
  out.strength = strength;
  for (std::uint64_t candidate = 0;; ++candidate) {
    if (tail_zero_bits(puzzle_hash(message, candidate), strength)) {
      out.solution = candidate;
      return out;
    }
  }
}

bool verify_puzzle(ByteView message, const PuzzleSolution& s) {
  if (s.strength > 30) return false;
  return tail_zero_bits(puzzle_hash(message, s.solution), s.strength);
}

}  // namespace lrs::crypto
