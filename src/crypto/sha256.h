// SHA-256 (FIPS 180-4), implemented from scratch.
//
// This is the single cryptographic hash underlying every authenticator in
// the system: packet hash chains, the hash page, the Merkle tree, HMAC,
// WOTS signatures and the message-specific puzzle. The block compression
// dispatches through the runtime-selected kernel layer in
// crypto/sha256_kernels.h (scalar reference, unrolled portable, x86
// SHA-NI); many-message workloads should prefer the batch entry points in
// crypto/hash.h, which additionally use the multi-buffer SIMD kernels.
#pragma once

#include <array>
#include <cstdint>

#include "util/types.h"

namespace lrs::crypto {

/// A full 256-bit digest.
using Sha256Digest = std::array<std::uint8_t, 32>;

/// Compression state captured at a 64-byte block boundary. Lets a fixed
/// prefix (e.g. an HMAC pad block) be absorbed once and then resumed per
/// message — see HmacKey in crypto/hmac.h.
struct Sha256Midstate {
  std::array<std::uint32_t, 8> state;
  std::uint64_t processed = 0;  // bytes absorbed; always a multiple of 64
};

/// Incremental hashing context.
class Sha256 {
 public:
  Sha256();

  Sha256& update(ByteView data);
  /// Finalizes and returns the digest. The context must not be reused after.
  Sha256Digest finalize();

  /// Snapshot of the state; only valid when the bytes absorbed so far are
  /// an exact multiple of the block size (no partial block buffered).
  Sha256Midstate midstate() const;
  /// A context that continues as if the midstate's bytes had been absorbed.
  static Sha256 resume(const Sha256Midstate& m);

  /// One-shot convenience.
  static Sha256Digest hash(ByteView data);

 private:
  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finalized_ = false;
};

}  // namespace lrs::crypto
