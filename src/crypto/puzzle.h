// Message-specific puzzle: the weak authenticator attached to signature
// packets (Seluge / LR-Seluge §IV-C.3).
//
// Verifying a digital signature is expensive for a sensor node, so an
// adversary could flood forged signature packets to drain batteries. The
// base station therefore solves a moderately hard hash puzzle over the
// signature packet: it finds a solution s such that H(message || s) ends in
// `strength` zero bits. Receivers check the puzzle with a single hash and
// only verify the signature if the puzzle holds — forging a packet that even
// reaches signature verification costs the adversary ~2^strength hashes.
#pragma once

#include <cstdint>
#include <optional>

#include "util/types.h"

namespace lrs::crypto {

struct PuzzleSolution {
  std::uint8_t strength = 0;  // required zero bits
  std::uint64_t solution = 0;

  static constexpr std::size_t kSerializedSize = 9;
  Bytes serialize() const;
  static std::optional<PuzzleSolution> deserialize(ByteView data);
};

/// Brute-forces a solution (expected 2^strength hash evaluations; the base
/// station has abundant resources). strength <= 30 keeps tests fast.
PuzzleSolution solve_puzzle(ByteView message, std::uint8_t strength);

/// One hash evaluation; cheap enough to run on every received signature
/// packet.
bool verify_puzzle(ByteView message, const PuzzleSolution& s);

}  // namespace lrs::crypto
