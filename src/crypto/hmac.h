// HMAC-SHA256 (RFC 2104).
//
// Used for the cluster-key authentication of advertisement and SNACK packets
// (Seluge §IV and LR-Seluge §IV-E adopt the same mechanism) and for keyed
// derivations inside WOTS key generation.
#pragma once

#include "crypto/sha256.h"
#include "util/types.h"

namespace lrs::crypto {

/// Precomputed HMAC key schedule: the SHA-256 midstates left after
/// absorbing the ipad and opad blocks. A MAC over a short message then
/// costs two compressions instead of four plus the pad setup — worth
/// holding on to for keys that authenticate many packets (the cluster key,
/// LEAP per-source keys). Produces digests bit-identical to the ByteView
/// overloads.
class HmacKey {
 public:
  explicit HmacKey(ByteView key);

  Sha256 inner_ctx() const { return Sha256::resume(inner_); }
  Sha256 outer_ctx() const { return Sha256::resume(outer_); }

 private:
  Sha256Midstate inner_;
  Sha256Midstate outer_;
};

Sha256Digest hmac_sha256(ByteView key, ByteView message);
Sha256Digest hmac_sha256(const HmacKey& key, ByteView message);

/// Truncated 4-byte MAC as carried by control packets (advertisements and
/// SNACKs are short; sensor-network MACs are conventionally 4 bytes).
inline constexpr std::size_t kControlMacSize = 4;
using ControlMac = std::array<std::uint8_t, kControlMacSize>;

ControlMac control_mac(ByteView key, ByteView message);
bool verify_control_mac(ByteView key, ByteView message, const ControlMac& mac);
ControlMac control_mac(const HmacKey& key, ByteView message);
bool verify_control_mac(const HmacKey& key, ByteView message,
                        const ControlMac& mac);

}  // namespace lrs::crypto
