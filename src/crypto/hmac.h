// HMAC-SHA256 (RFC 2104).
//
// Used for the cluster-key authentication of advertisement and SNACK packets
// (Seluge §IV and LR-Seluge §IV-E adopt the same mechanism) and for keyed
// derivations inside WOTS key generation.
#pragma once

#include "crypto/sha256.h"
#include "util/types.h"

namespace lrs::crypto {

Sha256Digest hmac_sha256(ByteView key, ByteView message);

/// Truncated 4-byte MAC as carried by control packets (advertisements and
/// SNACKs are short; sensor-network MACs are conventionally 4 bytes).
inline constexpr std::size_t kControlMacSize = 4;
using ControlMac = std::array<std::uint8_t, kControlMacSize>;

ControlMac control_mac(ByteView key, ByteView message);
bool verify_control_mac(ByteView key, ByteView message, const ControlMac& mac);

}  // namespace lrs::crypto
