#include "crypto/sha256.h"

#include <cstring>

#include "crypto/sha256_kernels.h"
#include "sim/stats/stats.h"
#include "util/check.h"

namespace lrs::crypto {

Sha256::Sha256()
    : state_{kSha256Init[0], kSha256Init[1], kSha256Init[2], kSha256Init[3],
             kSha256Init[4], kSha256Init[5], kSha256Init[6], kSha256Init[7]} {}

Sha256& Sha256::update(ByteView data) {
  LRS_CHECK(!finalized_);
  const Sha256Kernel& kernel = sha256_kernel();
  total_len_ += data.size();
  std::size_t offset = 0;

  if (buffer_len_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset += take;
    if (buffer_len_ == 64) {
      kernel.compress(state_.data(), buffer_.data(), 1);
      buffer_len_ = 0;
    }
  }
  // All remaining whole blocks in one kernel call.
  const std::size_t blocks = (data.size() - offset) / 64;
  if (blocks > 0) {
    kernel.compress(state_.data(), data.data() + offset, blocks);
    offset += blocks * 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
  return *this;
}

Sha256Digest Sha256::finalize() {
  LRS_CHECK(!finalized_);
  finalized_ = true;

  // Append 0x80, pad with zeros to 56 mod 64, then the 64-bit big-endian
  // message length — written straight into the block buffer (this runs
  // once per digest, which in MAC-heavy simulations means millions of
  // short messages; the byte-shuffling here is as hot as the compression).
  const Sha256Kernel& kernel = sha256_kernel();
  const std::uint64_t bit_len = total_len_ * 8;
  buffer_[buffer_len_++] = 0x80;
  if (buffer_len_ > 56) {
    std::memset(buffer_.data() + buffer_len_, 0, 64 - buffer_len_);
    kernel.compress(state_.data(), buffer_.data(), 1);
    buffer_len_ = 0;
  }
  std::memset(buffer_.data() + buffer_len_, 0, 56 - buffer_len_);
  for (int i = 0; i < 8; ++i)
    buffer_[56 + i] = static_cast<std::uint8_t>(bit_len >> (8 * (7 - i)));
  kernel.compress(state_.data(), buffer_.data(), 1);

  Sha256Digest out;
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return out;
}

Sha256Midstate Sha256::midstate() const {
  LRS_CHECK(!finalized_ && buffer_len_ == 0);
  return {state_, total_len_};
}

Sha256 Sha256::resume(const Sha256Midstate& m) {
  Sha256 ctx;
  ctx.state_ = m.state;
  ctx.total_len_ = m.processed;
  return ctx;
}

Sha256Digest Sha256::hash(ByteView data) {
  // deterministic=false: the signature-verification memo in wots.cc
  // absorbs a scheduling-dependent share of these calls, so the count is
  // not byte-identical across LRS_JOBS worker counts.
  static stats::Timer& timer =
      stats::Registry::instance().timer("crypto.sha.oneshot",
                                        /*top_level=*/false,
                                        /*deterministic=*/false);
  stats::TimerScope scope(timer);
  Sha256 ctx;
  ctx.update(data);
  return ctx.finalize();
}

}  // namespace lrs::crypto
