// Hash-based digital signatures: Winternitz one-time signatures (WOTS) plus
// a small Merkle-certified multi-key scheme ("XMSS-lite").
//
// The paper assumes the base station owns an ECDSA key pair and that a node
// can afford roughly one signature verification per code image (1.12 s on a
// Tmote Sky). We substitute a from-scratch hash-based scheme with the same
// protocol interface — sign the Merkle root of the hash page once per image,
// verify once per image — because it is genuinely implementable and testable
// without big-integer/elliptic-curve machinery while preserving every
// security property the protocol relies on (existential unforgeability of
// the root signature). DESIGN.md documents the substitution.
//
// Parameters: chains over SHA-256, Winternitz w = 256 (byte chunks), message
// digests truncated to 16 bytes -> 16 message chains + 2 checksum chains,
// 32-byte chain values. Signature = 18 * 32 = 576 bytes.
//
// A WOTS key signs exactly one message. MultiKeySigner certifies 2^h WOTS
// public keys under a single Merkle root so one preloaded verification key
// covers up to 2^h code-image versions, mirroring deployments that must
// disseminate many images over the network's lifetime.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "util/types.h"

namespace lrs::crypto {

inline constexpr std::size_t kWotsMsgBytes = 16;   // truncated digest signed
inline constexpr std::size_t kWotsChainBytes = 32; // chain element size
inline constexpr std::size_t kWotsLen1 = kWotsMsgBytes;  // one chain per byte
inline constexpr std::size_t kWotsLen2 = 2;        // checksum chains (max 4080)
inline constexpr std::size_t kWotsLen = kWotsLen1 + kWotsLen2;

struct WotsSignature {
  std::array<std::array<std::uint8_t, kWotsChainBytes>, kWotsLen> chains;

  Bytes serialize() const;
  static std::optional<WotsSignature> deserialize(ByteView data);
  static constexpr std::size_t kSerializedSize = kWotsLen * kWotsChainBytes;
};

/// Compressed WOTS public key (hash of all chain tops).
using WotsPublicKey = Sha256Digest;

class WotsKeyPair {
 public:
  /// Deterministically derives a key pair from `seed` and `index`
  /// (index lets MultiKeySigner derive many independent keys).
  static WotsKeyPair generate(ByteView seed, std::uint64_t index);

  const WotsPublicKey& public_key() const { return pk_; }

  /// Signs `message` (hashed and truncated internally). One-time: the pair
  /// remembers use and refuses to sign twice.
  WotsSignature sign(ByteView message);

  static bool verify(const WotsPublicKey& pk, ByteView message,
                     const WotsSignature& sig);

 private:
  WotsKeyPair() = default;

  std::array<std::array<std::uint8_t, kWotsChainBytes>, kWotsLen> sk_;
  WotsPublicKey pk_;
  bool used_ = false;
};

/// A signature under a MultiKeySigner: the WOTS signature, the WOTS public
/// key that produced it, its index, and the Merkle path certifying that key
/// under the preloaded root.
struct CertifiedSignature {
  std::uint32_t key_index = 0;
  WotsPublicKey wots_pk{};
  std::vector<PacketHash> cert_path;
  WotsSignature sig{};

  Bytes serialize() const;
  static std::optional<CertifiedSignature> deserialize(ByteView data);
};

class MultiKeySigner {
 public:
  /// Generates 2^height WOTS key pairs from `seed` and certifies them under
  /// a single Merkle root (the network-preloaded verification key).
  MultiKeySigner(ByteView seed, std::size_t height);

  /// The value preloaded on every sensor node before deployment.
  const PacketHash& root_public_key() const { return tree_.root(); }
  std::size_t capacity() const { return keys_.size(); }
  std::size_t signatures_issued() const { return next_; }

  /// Signs with the next unused WOTS key. Throws std::runtime_error once
  /// capacity is exhausted.
  CertifiedSignature sign(ByteView message);

  static bool verify(const PacketHash& root_public_key, ByteView message,
                     const CertifiedSignature& sig);

 private:
  std::vector<WotsKeyPair> keys_;
  MerkleTree tree_;
  std::size_t next_ = 0;
};

/// Memoized MultiKeySigner::verify. The verdict is a pure function of
/// (root_public_key, message, signature), and in a broadcast network
/// thousands of receivers verify the *same* signature packet, so a
/// process-wide cache keyed by a digest of the triple turns the ~2000-hash
/// WOTS chain walk into one short hash plus a lookup after the first
/// receiver. Thread-safe. Callers still count one signature verification
/// per protocol-level check; only the redundant chain recomputation is
/// elided, never the decision.
bool verify_certified_cached(const PacketHash& root_public_key,
                             ByteView message, const CertifiedSignature& sig);

}  // namespace lrs::crypto
