#include "crypto/merkle.h"

#include <bit>

#include "util/check.h"

namespace lrs::crypto {

namespace {
constexpr std::uint8_t kLeafTag = 0x00;
constexpr std::uint8_t kNodeTag = 0x01;
}  // namespace

PacketHash MerkleTree::leaf_hash(ByteView leaf_data) {
  Bytes buf;
  buf.reserve(leaf_data.size() + 1);
  buf.push_back(kLeafTag);
  buf.insert(buf.end(), leaf_data.begin(), leaf_data.end());
  return packet_hash(view(buf));
}

PacketHash MerkleTree::node_hash(const PacketHash& left,
                                 const PacketHash& right) {
  Bytes buf;
  buf.reserve(1 + 2 * kPacketHashSize);
  buf.push_back(kNodeTag);
  buf.insert(buf.end(), left.begin(), left.end());
  buf.insert(buf.end(), right.begin(), right.end());
  return packet_hash(view(buf));
}

MerkleTree MerkleTree::build(const std::vector<Bytes>& leaves) {
  LRS_CHECK_MSG(!leaves.empty(), "Merkle tree needs at least one leaf");
  LRS_CHECK_MSG(std::has_single_bit(leaves.size()),
                "Merkle leaf count must be a power of two");

  MerkleTree t;
  t.leaf_count_ = leaves.size();
  t.depth_ = static_cast<std::size_t>(std::countr_zero(leaves.size()));
  t.nodes_.resize(2 * t.leaf_count_);

  for (std::size_t i = 0; i < t.leaf_count_; ++i) {
    t.nodes_[t.leaf_count_ + i] = leaf_hash(view(leaves[i]));
  }
  for (std::size_t i = t.leaf_count_; i-- > 1;) {
    t.nodes_[i] = node_hash(t.nodes_[2 * i], t.nodes_[2 * i + 1]);
  }
  return t;
}

std::vector<PacketHash> MerkleTree::auth_path(std::size_t index) const {
  LRS_CHECK(index < leaf_count_);
  std::vector<PacketHash> path;
  path.reserve(depth_);
  std::size_t node = leaf_count_ + index;
  while (node > 1) {
    path.push_back(nodes_[node ^ 1]);  // sibling
    node /= 2;
  }
  return path;
}

PacketHash MerkleTree::compute_root(ByteView leaf_data, std::size_t index,
                                    std::span<const PacketHash> path) {
  PacketHash h = leaf_hash(leaf_data);
  for (const auto& sib : path) {
    h = (index & 1) ? node_hash(sib, h) : node_hash(h, sib);
    index >>= 1;
  }
  return h;
}

}  // namespace lrs::crypto
