#include "crypto/merkle.h"

#include <bit>

#include "util/check.h"

namespace lrs::crypto {

namespace {
constexpr std::uint8_t kLeafTag = 0x00;
constexpr std::uint8_t kNodeTag = 0x01;
}  // namespace

PacketHash MerkleTree::leaf_hash(ByteView leaf_data) {
  Bytes buf;
  buf.reserve(leaf_data.size() + 1);
  buf.push_back(kLeafTag);
  buf.insert(buf.end(), leaf_data.begin(), leaf_data.end());
  return packet_hash(view(buf));
}

PacketHash MerkleTree::node_hash(const PacketHash& left,
                                 const PacketHash& right) {
  Bytes buf;
  buf.reserve(1 + 2 * kPacketHashSize);
  buf.push_back(kNodeTag);
  buf.insert(buf.end(), left.begin(), left.end());
  buf.insert(buf.end(), right.begin(), right.end());
  return packet_hash(view(buf));
}

MerkleTree MerkleTree::build(const std::vector<Bytes>& leaves) {
  LRS_CHECK_MSG(!leaves.empty(), "Merkle tree needs at least one leaf");
  LRS_CHECK_MSG(std::has_single_bit(leaves.size()),
                "Merkle leaf count must be a power of two");

  MerkleTree t;
  t.leaf_count_ = leaves.size();
  t.depth_ = static_cast<std::size_t>(std::countr_zero(leaves.size()));
  t.nodes_.resize(2 * t.leaf_count_);

  // Leaf level: tag every leaf, then hash the whole level in one batch
  // call so the multi-buffer kernels see same-length runs.
  {
    std::vector<Bytes> tagged(t.leaf_count_);
    std::vector<ByteView> views(t.leaf_count_);
    for (std::size_t i = 0; i < t.leaf_count_; ++i) {
      Bytes& buf = tagged[i];
      buf.reserve(leaves[i].size() + 1);
      buf.push_back(kLeafTag);
      buf.insert(buf.end(), leaves[i].begin(), leaves[i].end());
      views[i] = view(buf);
    }
    packet_hash_batch(views.data(), t.leaf_count_,
                      t.nodes_.data() + t.leaf_count_);
  }

  // Internal levels, bottom-up one level at a time: nodes [w, 2w) feed
  // nodes [w/2, w), and every preimage at a level has the same 17-byte
  // shape, so each level is one uniform batch.
  std::vector<Bytes> pre;
  std::vector<ByteView> pre_views;
  for (std::size_t width = t.leaf_count_ / 2; width >= 1; width /= 2) {
    pre.assign(width, Bytes());
    pre_views.resize(width);
    for (std::size_t i = 0; i < width; ++i) {
      Bytes& buf = pre[i];
      buf.reserve(1 + 2 * kPacketHashSize);
      buf.push_back(kNodeTag);
      const std::size_t node = width + i;
      append(buf, t.nodes_[2 * node]);
      append(buf, t.nodes_[2 * node + 1]);
      pre_views[i] = view(buf);
    }
    packet_hash_batch(pre_views.data(), width, t.nodes_.data() + width);
  }
  return t;
}

std::vector<PacketHash> MerkleTree::auth_path(std::size_t index) const {
  LRS_CHECK(index < leaf_count_);
  std::vector<PacketHash> path;
  path.reserve(depth_);
  std::size_t node = leaf_count_ + index;
  while (node > 1) {
    path.push_back(nodes_[node ^ 1]);  // sibling
    node /= 2;
  }
  return path;
}

PacketHash MerkleTree::compute_root(ByteView leaf_data, std::size_t index,
                                    std::span<const PacketHash> path) {
  PacketHash h = leaf_hash(leaf_data);
  for (const auto& sib : path) {
    h = (index & 1) ? node_hash(sib, h) : node_hash(h, sib);
    index >>= 1;
  }
  return h;
}

}  // namespace lrs::crypto
