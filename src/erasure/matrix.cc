#include "erasure/matrix.h"

#include <algorithm>

#include "erasure/gf256.h"
#include "util/check.h"

namespace lrs::erasure {

MatrixGf256::MatrixGf256(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

MatrixGf256 MatrixGf256::identity(std::size_t n) {
  MatrixGf256 m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.set(i, i, 1);
  return m;
}

MatrixGf256 MatrixGf256::multiply(const MatrixGf256& other) const {
  LRS_CHECK(cols_ == other.rows_);
  MatrixGf256 out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t t = 0; t < cols_; ++t) {
      const std::uint8_t a = at(i, t);
      if (a != 0) Gf256::addmul(out.row(i), other.row(t), a);
    }
  }
  return out;
}

std::optional<MatrixGf256> MatrixGf256::inverted() const {
  LRS_CHECK(rows_ == cols_);
  const std::size_t n = rows_;
  // Gauss-Jordan on the augmented matrix [A | I]: each elimination step is
  // one addmul over a contiguous 2n-byte row instead of two n-byte calls,
  // halving the kernel-dispatch overhead that dominates for the small rows
  // (k <= 64) erasure decoding works with.
  MatrixGf256 aug(n, 2 * n);
  for (std::size_t r = 0; r < n; ++r) {
    auto dst = aug.row(r);
    const auto src = row(r);
    std::copy(src.begin(), src.end(), dst.begin());
    dst[n + r] = 1;
  }

  for (std::size_t col = 0; col < n; ++col) {
    // Find a pivot.
    std::size_t pivot = col;
    while (pivot < n && aug.at(pivot, col) == 0) ++pivot;
    if (pivot == n) return std::nullopt;  // singular
    if (pivot != col) {
      auto a = aug.row(col);
      auto b = aug.row(pivot);
      std::swap_ranges(a.begin(), a.end(), b.begin());
    }
    // Normalize the pivot row.
    const std::uint8_t p = aug.at(col, col);
    if (p != 1) Gf256::scale(aug.row(col), Gf256::inv(p));
    // Eliminate the column everywhere else.
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const std::uint8_t f = aug.at(r, col);
      if (f != 0) Gf256::addmul(aug.row(r), aug.row(col), f);
    }
  }

  MatrixGf256 inv(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    const auto src = aug.row(r);
    auto dst = inv.row(r);
    std::copy(src.begin() + static_cast<std::ptrdiff_t>(n), src.end(),
              dst.begin());
  }
  return inv;
}

std::size_t MatrixGf256::rank() const {
  MatrixGf256 a = *this;
  std::size_t rank = 0;
  for (std::size_t col = 0; col < cols_ && rank < rows_; ++col) {
    std::size_t pivot = rank;
    while (pivot < rows_ && a.at(pivot, col) == 0) ++pivot;
    if (pivot == rows_) continue;
    if (pivot != rank) {
      for (std::size_t c = 0; c < cols_; ++c)
        std::swap(a.row(rank)[c], a.row(pivot)[c]);
    }
    const std::uint8_t pinv = Gf256::inv(a.at(rank, col));
    Gf256::scale(a.row(rank), pinv);
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r != rank && a.at(r, col) != 0)
        Gf256::addmul(a.row(r), a.row(rank), a.at(r, col));
    }
    ++rank;
  }
  return rank;
}

Gf256Eliminator::Gf256Eliminator(std::size_t k, std::size_t block_size)
    : k_(k), block_size_(block_size), rows_(k) {}

bool Gf256Eliminator::add(ByteView coeffs, ByteView payload) {
  LRS_CHECK(coeffs.size() == k_);
  LRS_CHECK(payload.size() == block_size_);
  Bytes c(coeffs.begin(), coeffs.end());
  Bytes p(payload.begin(), payload.end());

  for (std::size_t col = 0; col < k_; ++col) {
    if (c[col] == 0) continue;
    auto& slot = rows_[col];
    if (!slot) {
      // Normalize so the pivot is 1 and claim the slot.
      const std::uint8_t inv = Gf256::inv(c[col]);
      Gf256::scale(MutByteView(c.data(), c.size()), inv);
      Gf256::scale(MutByteView(p.data(), p.size()), inv);
      slot = {std::move(c), std::move(p)};
      ++rank_;
      return true;
    }
    // Eliminate this column with the existing pivot row.
    const std::uint8_t f = c[col];
    Gf256::addmul(MutByteView(c.data(), c.size()), view(slot->first), f);
    Gf256::addmul(MutByteView(p.data(), p.size()), view(slot->second), f);
  }
  return false;  // reduced to zero: redundant
}

std::vector<Bytes> Gf256Eliminator::solve() const {
  LRS_CHECK_MSG(complete(), "solve() before reaching full rank");
  std::vector<Bytes> coeffs(k_), vals(k_);
  for (std::size_t i = 0; i < k_; ++i) {
    coeffs[i] = rows_[i]->first;
    vals[i] = rows_[i]->second;
  }
  // Back-substitute bottom-up: rows below are already unit vectors when
  // their turn comes.
  for (std::size_t i = k_; i-- > 0;) {
    for (std::size_t j = i + 1; j < k_; ++j) {
      const std::uint8_t f = coeffs[i][j];
      if (f != 0) {
        coeffs[i][j] = 0;
        Gf256::addmul(MutByteView(vals[i].data(), vals[i].size()),
                      view(vals[j]), f);
      }
    }
  }
  return vals;
}

Gf2Eliminator::Gf2Eliminator(std::size_t k, std::size_t block_size)
    : k_(k), block_size_(block_size), rows_(k) {}

bool Gf2Eliminator::add(const BitVec& coeffs, ByteView payload) {
  LRS_CHECK(coeffs.size() == k_);
  LRS_CHECK(payload.size() == block_size_);
  BitVec c = coeffs;
  Bytes p(payload.begin(), payload.end());

  // Reduce against existing pivot rows until the equation either lands in an
  // empty pivot slot (innovative) or cancels to zero (redundant).
  while (true) {
    auto lead = c.first_set();
    if (!lead) return false;
    auto& slot = rows_[*lead];
    if (!slot) {
      slot = {std::move(c), std::move(p)};
      ++rank_;
      return true;
    }
    c ^= slot->first;
    for (std::size_t b = 0; b < block_size_; ++b) p[b] ^= slot->second[b];
  }
}

std::vector<Bytes> Gf2Eliminator::solve() const {
  LRS_CHECK_MSG(complete(), "solve() before reaching full rank");
  // Back-substitute: rows are in echelon form with pivot i at column i.
  std::vector<BitVec> coeffs;
  std::vector<Bytes> vals;
  coeffs.reserve(k_);
  vals.reserve(k_);
  for (std::size_t i = 0; i < k_; ++i) {
    coeffs.push_back(rows_[i]->first);
    vals.push_back(rows_[i]->second);
  }
  for (std::size_t i = k_; i-- > 0;) {
    for (std::size_t j = i + 1; j < k_; ++j) {
      if (coeffs[i].get(j)) {
        coeffs[i].clear(j);
        for (std::size_t b = 0; b < block_size_; ++b)
          vals[i][b] ^= vals[j][b];
      }
    }
  }
  return vals;
}

}  // namespace lrs::erasure
