#include "erasure/code.h"

namespace lrs::erasure {

std::optional<CodecKind> parse_codec_kind(const std::string& name) {
  if (name == "rs") return CodecKind::kReedSolomon;
  if (name == "rlc2") return CodecKind::kRlcGf2;
  if (name == "rlc256") return CodecKind::kRlcGf256;
  if (name == "lt") return CodecKind::kLt;
  return std::nullopt;
}

std::unique_ptr<ErasureCode> make_code(CodecKind kind, std::size_t k,
                                       std::size_t n, std::size_t delta,
                                       std::uint64_t seed) {
  switch (kind) {
    case CodecKind::kReedSolomon:
      return make_rs_code(k, n);
    case CodecKind::kRlcGf2:
      return make_rlc_gf2(k, n, delta, seed);
    case CodecKind::kRlcGf256:
      return make_rlc_gf256(k, n, delta, seed);
    case CodecKind::kLt:
      return make_lt_code(k, n, delta, seed);
  }
  return nullptr;
}

}  // namespace lrs::erasure
