#include "erasure/code.h"

#include <map>
#include <mutex>
#include <tuple>

namespace lrs::erasure {

std::optional<CodecKind> parse_codec_kind(const std::string& name) {
  if (name == "rs") return CodecKind::kReedSolomon;
  if (name == "rlc2") return CodecKind::kRlcGf2;
  if (name == "rlc256") return CodecKind::kRlcGf256;
  if (name == "lt") return CodecKind::kLt;
  if (name == "lrc") return CodecKind::kLrc;
  if (name == "xorsched") return CodecKind::kXorSchedule;
  return std::nullopt;
}

std::unique_ptr<ErasureCode> make_code(CodecKind kind, std::size_t k,
                                       std::size_t n, std::size_t delta,
                                       std::uint64_t seed) {
  switch (kind) {
    case CodecKind::kReedSolomon:
      return make_rs_code(k, n);
    case CodecKind::kRlcGf2:
      return make_rlc_gf2(k, n, delta, seed);
    case CodecKind::kRlcGf256:
      return make_rlc_gf256(k, n, delta, seed);
    case CodecKind::kLt:
      return make_lt_code(k, n, delta, seed);
    case CodecKind::kLrc:
      return make_lrc_code(k, n);
    case CodecKind::kXorSchedule:
      return make_xorsched_code(k, n);
  }
  return nullptr;
}

namespace {

using CacheKey =
    std::tuple<CodecKind, std::size_t, std::size_t, std::size_t,
               std::uint64_t>;

struct CodecCache {
  std::mutex mu;
  std::map<CacheKey, std::shared_ptr<const ErasureCode>> entries;
};

CodecCache& codec_cache() {
  static CodecCache c;
  return c;
}

}  // namespace

std::shared_ptr<const ErasureCode> make_code_cached(CodecKind kind,
                                                    std::size_t k,
                                                    std::size_t n,
                                                    std::size_t delta,
                                                    std::uint64_t seed) {
  if (kind == CodecKind::kReedSolomon || kind == CodecKind::kLrc ||
      kind == CodecKind::kXorSchedule) {
    // These constructions ignore delta and seed; canonicalize so all
    // spellings share one generator matrix / XOR schedule.
    delta = 0;
    seed = 0;
  }
  const CacheKey key{kind, k, n, delta, seed};
  auto& cache = codec_cache();
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    auto it = cache.entries.find(key);
    if (it != cache.entries.end()) return it->second;
  }
  // Build outside the lock — generator construction is the expensive part
  // the cache exists to amortize. A racing builder loses to try_emplace.
  std::shared_ptr<const ErasureCode> built =
      make_code(kind, k, n, delta, seed);
  std::lock_guard<std::mutex> lock(cache.mu);
  return cache.entries.try_emplace(key, std::move(built)).first->second;
}

std::size_t codec_cache_size() {
  auto& cache = codec_cache();
  std::lock_guard<std::mutex> lock(cache.mu);
  return cache.entries.size();
}

void codec_cache_clear() {
  auto& cache = codec_cache();
  std::lock_guard<std::mutex> lock(cache.mu);
  cache.entries.clear();
}

}  // namespace lrs::erasure
