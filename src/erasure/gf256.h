// Arithmetic in GF(2^8) with the AES reduction polynomial x^8+x^4+x^3+x+1.
//
// Foundation for the Reed-Solomon and GF(256) random-linear erasure codes.
// Multiplication/division go through log/exp tables built once at startup.
#pragma once

#include <cstdint>

#include "util/types.h"

namespace lrs::erasure {

class Gf256 {
 public:
  /// Addition and subtraction coincide (XOR).
  static std::uint8_t add(std::uint8_t a, std::uint8_t b) { return a ^ b; }

  static std::uint8_t mul(std::uint8_t a, std::uint8_t b);
  /// b must be non-zero.
  static std::uint8_t div(std::uint8_t a, std::uint8_t b);
  /// a must be non-zero.
  static std::uint8_t inv(std::uint8_t a);
  static std::uint8_t pow(std::uint8_t a, unsigned e);

  /// dst[i] ^= coeff * src[i] for every byte — the inner loop of all
  /// encode/decode paths.
  static void addmul(MutByteView dst, ByteView src, std::uint8_t coeff);
  /// dst[i] = coeff * dst[i].
  static void scale(MutByteView dst, std::uint8_t coeff);
};

}  // namespace lrs::erasure
