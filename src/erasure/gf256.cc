#include "erasure/gf256.h"

#include <array>

#include "util/check.h"

namespace lrs::erasure {

namespace {

struct Tables {
  std::array<std::uint8_t, 256> log{};
  std::array<std::uint8_t, 512> exp{};  // doubled to skip a mod in mul

  Tables() {
    // Generator 0x03 is primitive for the AES polynomial 0x11b.
    std::uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[i] = static_cast<std::uint8_t>(x);
      log[x] = static_cast<std::uint8_t>(i);
      // x *= 3 in GF(256): x*2 ^ x with reduction.
      std::uint16_t x2 = static_cast<std::uint16_t>(x << 1);
      if (x2 & 0x100) x2 ^= 0x11b;
      x = static_cast<std::uint16_t>(x2 ^ x);
    }
    for (int i = 255; i < 512; ++i) exp[i] = exp[i - 255];
    log[0] = 0;  // undefined; guarded by callers
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

std::uint8_t Gf256::mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const auto& t = tables();
  return t.exp[t.log[a] + t.log[b]];
}

std::uint8_t Gf256::div(std::uint8_t a, std::uint8_t b) {
  LRS_CHECK_MSG(b != 0, "division by zero in GF(256)");
  if (a == 0) return 0;
  const auto& t = tables();
  return t.exp[t.log[a] + 255 - t.log[b]];
}

std::uint8_t Gf256::inv(std::uint8_t a) {
  LRS_CHECK_MSG(a != 0, "inverse of zero in GF(256)");
  const auto& t = tables();
  return t.exp[255 - t.log[a]];
}

std::uint8_t Gf256::pow(std::uint8_t a, unsigned e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const auto& t = tables();
  const unsigned le = (static_cast<unsigned>(t.log[a]) * e) % 255;
  return t.exp[le];
}

void Gf256::addmul(MutByteView dst, ByteView src, std::uint8_t coeff) {
  LRS_CHECK(dst.size() == src.size());
  if (coeff == 0) return;
  if (coeff == 1) {
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= src[i];
    return;
  }
  const auto& t = tables();
  const unsigned lc = t.log[coeff];
  for (std::size_t i = 0; i < dst.size(); ++i) {
    const std::uint8_t s = src[i];
    if (s != 0) dst[i] ^= t.exp[lc + t.log[s]];
  }
}

void Gf256::scale(MutByteView dst, std::uint8_t coeff) {
  if (coeff == 1) return;
  if (coeff == 0) {
    for (auto& b : dst) b = 0;
    return;
  }
  const auto& t = tables();
  const unsigned lc = t.log[coeff];
  for (auto& b : dst) {
    if (b != 0) b = t.exp[lc + t.log[b]];
  }
}

}  // namespace lrs::erasure
