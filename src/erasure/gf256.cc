#include "erasure/gf256.h"

#include "erasure/gf256_kernels.h"
#include "util/check.h"

namespace lrs::erasure {

// Scalar entry points share the sentinel-guarded log/exp tables with the
// kernel layer (see gf256_kernels.h): log[0]'s sentinel makes products with
// zero come out 0 without a branch, so mul() needs no zero guard at all.

std::uint8_t Gf256::mul(std::uint8_t a, std::uint8_t b) {
  const auto& t = detail::gf256_tables();
  return t.exp[t.log[a] + t.log[b]];
}

std::uint8_t Gf256::div(std::uint8_t a, std::uint8_t b) {
  LRS_CHECK_MSG(b != 0, "division by zero in GF(256)");
  if (a == 0) return 0;
  const auto& t = detail::gf256_tables();
  return t.exp[t.log[a] + 255 - t.log[b]];
}

std::uint8_t Gf256::inv(std::uint8_t a) {
  LRS_CHECK_MSG(a != 0, "inverse of zero in GF(256)");
  const auto& t = detail::gf256_tables();
  return t.exp[255 - t.log[a]];
}

std::uint8_t Gf256::pow(std::uint8_t a, unsigned e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const auto& t = detail::gf256_tables();
  const unsigned le = (static_cast<unsigned>(t.log[a]) * e) % 255;
  return t.exp[le];
}

void Gf256::addmul(MutByteView dst, ByteView src, std::uint8_t coeff) {
  LRS_CHECK(dst.size() == src.size());
  gf256_kernel().addmul(dst.data(), src.data(), dst.size(), coeff);
}

void Gf256::scale(MutByteView dst, std::uint8_t coeff) {
  gf256_kernel().scale(dst.data(), dst.size(), coeff);
}

}  // namespace lrs::erasure
