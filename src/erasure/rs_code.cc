// Systematic MDS Reed-Solomon code from a Cauchy construction.
//
// Generator G (n x k) = [ I_k ; C ] where C[r][j] = 1/(x_r + y_j) with
// x_r = r for parity row r in [0, n-k) and y_j = (n-k) + j for column j —
// all 2n-k points distinct, so every square submatrix of C is Cauchy and
// hence invertible, which makes every k x k submatrix of G invertible:
// expanding any selected identity rows reduces the determinant to a Cauchy
// minor. This is the classic Cauchy-RS construction (as used in Jerasure).
#include <algorithm>

#include "erasure/code.h"
#include "erasure/gf256.h"
#include "erasure/matrix.h"
#include "sim/stats/stats.h"
#include "util/check.h"

namespace lrs::erasure {

namespace {

stats::Timer& rs_encode_timer() {
  static stats::Timer& t =
      stats::Registry::instance().timer("erasure.rs.encode");
  return t;
}
stats::Timer& rs_decode_timer() {
  static stats::Timer& t =
      stats::Registry::instance().timer("erasure.rs.decode");
  return t;
}

class ReedSolomonCode final : public ErasureCode {
 public:
  ReedSolomonCode(std::size_t k, std::size_t n)
      : k_(k), n_(n), generator_(n, k) {
    LRS_CHECK_MSG(k >= 1 && k <= n, "RS requires 1 <= k <= n");
    LRS_CHECK_MSG(n <= 255, "Cauchy RS over GF(256) supports n <= 255");
    for (std::size_t i = 0; i < k_; ++i) generator_.set(i, i, 1);
    for (std::size_t r = 0; r + k_ < n_; ++r) {
      const std::uint8_t x = static_cast<std::uint8_t>(r);
      for (std::size_t j = 0; j < k_; ++j) {
        const std::uint8_t y = static_cast<std::uint8_t>(n_ - k_ + j);
        generator_.set(k_ + r, j, Gf256::inv(Gf256::add(x, y)));
      }
    }
  }

  std::size_t k() const override { return k_; }
  std::size_t n() const override { return n_; }
  std::size_t decode_threshold() const override { return k_; }
  std::string name() const override { return "rs"; }

  std::vector<Bytes> encode(const std::vector<Bytes>& blocks) const override {
    stats::TimerScope scope(rs_encode_timer());
    LRS_CHECK(blocks.size() == k_);
    const std::size_t len = blocks.front().size();
    for (const auto& b : blocks) LRS_CHECK(b.size() == len);

    std::vector<Bytes> out;
    out.reserve(n_);
    // Systematic part: copies.
    for (std::size_t i = 0; i < k_; ++i) out.push_back(blocks[i]);
    // Parity part.
    for (std::size_t r = k_; r < n_; ++r) {
      Bytes e(len, 0);
      for (std::size_t j = 0; j < k_; ++j) {
        Gf256::addmul(MutByteView(e.data(), e.size()), view(blocks[j]),
                      generator_.at(r, j));
      }
      out.push_back(std::move(e));
    }
    return out;
  }

  std::optional<std::vector<Bytes>> decode(
      const std::vector<Share>& shares) const override {
    stats::TimerScope scope(rs_decode_timer());
    // Deduplicate by index, keep the first k distinct shares.
    std::vector<const Share*> picked;
    std::vector<bool> seen(n_, false);
    for (const auto& s : shares) {
      LRS_CHECK(s.index < n_);
      if (seen[s.index]) continue;
      seen[s.index] = true;
      picked.push_back(&s);
      if (picked.size() == k_) break;
    }
    if (picked.size() < k_) return std::nullopt;

    const std::size_t len = picked.front()->data.size();
    for (const auto* s : picked) LRS_CHECK(s->data.size() == len);

    // Fast path: all k systematic shares present.
    const bool all_systematic = std::all_of(
        picked.begin(), picked.end(),
        [&](const Share* s) { return s->index < k_; });
    if (all_systematic) {
      std::vector<Bytes> out(k_);
      for (const auto* s : picked) out[s->index] = s->data;
      return out;
    }

    MatrixGf256 sub(k_, k_);
    for (std::size_t r = 0; r < k_; ++r) {
      for (std::size_t c = 0; c < k_; ++c)
        sub.set(r, c, generator_.at(picked[r]->index, c));
    }
    auto inv = sub.inverted();
    LRS_CHECK_MSG(inv.has_value(), "MDS property violated (bug)");

    std::vector<Bytes> out;
    out.reserve(k_);
    for (std::size_t j = 0; j < k_; ++j) {
      Bytes m(len, 0);
      for (std::size_t r = 0; r < k_; ++r) {
        Gf256::addmul(MutByteView(m.data(), m.size()), view(picked[r]->data),
                      inv->at(j, r));
      }
      out.push_back(std::move(m));
    }
    return out;
  }

 private:
  std::size_t k_, n_;
  MatrixGf256 generator_;
};

}  // namespace

std::unique_ptr<ErasureCode> make_rs_code(std::size_t k, std::size_t n) {
  return std::make_unique<ReedSolomonCode>(k, n);
}

}  // namespace lrs::erasure
