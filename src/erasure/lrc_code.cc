// Pyramid-style Locally Repairable Code (LRC) over GF(256).
//
// Geometry: the k data blocks split into g contiguous groups of k/g blocks
// (g = lrc_group_count(k, n) = largest divisor of k with g <= (n-k)/2); each
// group gets one *local* parity and the remaining r = (n-k) - g parities are
// *global*. Encoded index layout:
//
//   [0, k)        data (systematic)
//   [k, k+g)      local parities, one per group
//   [k+g, n)      global parities
//
// Construction (pyramid / Cauchy): take a base Cauchy block B of r+1 rows by
// k columns, B[t][j] = 1/(x_t + y_j) with x_t = t and y_j = (r+1) + j — all
// points distinct, so every square submatrix of B is invertible. The local
// parity of group G is row 0 of B masked to G's columns; the global parities
// are rows 1..r of B in full. (When g == 0 the parities are just plain
// Cauchy RS rows and the code degenerates to RS.)
//
// Decode threshold k' = k + g - 1, i.e. ANY n - k' = r + 1 erasures are
// survivable. Proof: let t/l/q of the r+1 erasures hit data/local/global
// blocks (t + l + q = r + 1), so r - q = t + l - 1 globals survive.
//  * If l >= 1: at least t full Cauchy rows survive among the globals; their
//    restriction to the t erased data columns is a t x t Cauchy submatrix,
//    hence invertible — the erased data solves from survivors alone.
//  * If l == 0: every local parity survives. Each group touched by an
//    erasure contributes the equation "row 0 of B restricted to that group's
//    erased columns" (known right-hand side after subtracting survived
//    data); summing them yields row 0 of B restricted to the full erased
//    set. Together with the t - 1 surviving globals (rows of B), a vector
//    orthogonal to all of them is orthogonal to t distinct Cauchy rows
//    restricted to t columns — an invertible system — so only 0 is, and the
//    stacked equations have full rank t.
// Either way rank k is reached from any k' = k + g - 1 blocks. The bound is
// tight: erasing one group's local parity plus r+1 of its data blocks (when
// the group is large enough) leaves fewer than k independent rows.
//
// decode() first repairs single-erasure groups from the group alone (group
// size + 1 byte-rows touched instead of a k-wide solve) and only falls back
// to Gaussian elimination when local repair cannot complete the page. The
// counters behind lrc_stats() record how often each path fires; since the
// metrics subsystem landed they are process-wide registry counters
// ("erasure.lrc.*", gated on stats::enabled()) and lrc_stats() is a thin
// snapshot shim kept for bench_micro_erasure and the conformance tests.
#include "erasure/code.h"
#include "erasure/gf256.h"
#include "erasure/matrix.h"
#include "sim/stats/stats.h"
#include "util/check.h"

namespace lrs::erasure {

std::size_t lrc_group_count(std::size_t k, std::size_t n) {
  const std::size_t m = n - k;
  if (m < 2) return 0;
  for (std::size_t g = (m / 2 < k) ? m / 2 : k; g >= 1; --g) {
    if (k % g == 0) return g;
  }
  return 0;
}

namespace {

/// The migrated lrc_stats() counters plus the encode/decode scope timers,
/// resolved once and recorded through references (hot-path contract of
/// sim/stats/stats.h).
struct LrcRegistry {
  stats::Counter& decodes;
  stats::Counter& local_repairs;
  stats::Counter& local_only_decodes;
  stats::Counter& full_solves;
  stats::Timer& encode;
  stats::Timer& decode;

  static LrcRegistry& get() {
    auto& reg = stats::Registry::instance();
    static LrcRegistry r{
        reg.counter("erasure.lrc.decodes"),
        reg.counter("erasure.lrc.local_repairs"),
        reg.counter("erasure.lrc.local_only_decodes"),
        reg.counter("erasure.lrc.full_solves"),
        reg.timer("erasure.lrc.encode"),
        reg.timer("erasure.lrc.decode"),
    };
    return r;
  }
};

class LrcCode final : public ErasureCode {
 public:
  LrcCode(std::size_t k, std::size_t n)
      : k_(k),
        n_(n),
        g_(lrc_group_count(k, n)),
        group_size_(g_ > 0 ? k / g_ : 0),
        generator_(n, k) {
    LRS_CHECK_MSG(k >= 1 && k <= n, "LRC requires 1 <= k <= n");
    LRS_CHECK_MSG(n <= 255, "Cauchy LRC over GF(256) supports n <= 255");
    const std::size_t m = n_ - k_;
    // Base Cauchy rows: r+1 when grouped (row 0 feeds the locals), plain m
    // when degenerate. y offsets start past the largest x so all points are
    // distinct; base + k <= 255 + 1 holds because base <= m - 1 and n <= 255.
    const std::size_t base = g_ > 0 ? (m - g_) + 1 : m;
    auto cauchy = [&](std::size_t t, std::size_t j) {
      return Gf256::inv(Gf256::add(static_cast<std::uint8_t>(t),
                                   static_cast<std::uint8_t>(base + j)));
    };
    for (std::size_t i = 0; i < k_; ++i) generator_.set(i, i, 1);
    if (g_ > 0) {
      for (std::size_t grp = 0; grp < g_; ++grp) {
        for (std::size_t j = grp * group_size_; j < (grp + 1) * group_size_;
             ++j) {
          generator_.set(k_ + grp, j, cauchy(0, j));
        }
      }
      for (std::size_t r = 1; r < base; ++r) {
        for (std::size_t j = 0; j < k_; ++j)
          generator_.set(k_ + g_ + (r - 1), j, cauchy(r, j));
      }
    } else {
      for (std::size_t r = 0; r < m; ++r) {
        for (std::size_t j = 0; j < k_; ++j)
          generator_.set(k_ + r, j, cauchy(r, j));
      }
    }
  }

  std::size_t k() const override { return k_; }
  std::size_t n() const override { return n_; }
  std::size_t decode_threshold() const override {
    return g_ > 0 ? k_ + g_ - 1 : k_;
  }
  std::string name() const override { return "lrc"; }

  std::vector<Bytes> encode(const std::vector<Bytes>& blocks) const override {
    stats::TimerScope scope(LrcRegistry::get().encode);
    LRS_CHECK(blocks.size() == k_);
    const std::size_t len = blocks.front().size();
    for (const auto& b : blocks) LRS_CHECK(b.size() == len);

    std::vector<Bytes> out;
    out.reserve(n_);
    for (std::size_t i = 0; i < k_; ++i) out.push_back(blocks[i]);
    for (std::size_t r = k_; r < n_; ++r) {
      Bytes e(len, 0);
      for (std::size_t j = 0; j < k_; ++j) {
        // Local rows are zero outside their group; skip the dead columns.
        const std::uint8_t c = generator_.at(r, j);
        if (c == 0) continue;
        Gf256::addmul(MutByteView(e.data(), e.size()), view(blocks[j]), c);
      }
      out.push_back(std::move(e));
    }
    return out;
  }

  std::optional<std::vector<Bytes>> decode(
      const std::vector<Share>& shares) const override {
    stats::TimerScope scope(LrcRegistry::get().decode);
    // Deduplicate by index (first occurrence wins), keeping every distinct
    // share: unlike MDS decode, which k blocks we hold decides whether the
    // cheap local path applies.
    std::vector<const Bytes*> have(n_, nullptr);
    std::size_t distinct = 0;
    for (const auto& s : shares) {
      LRS_CHECK(s.index < n_);
      if (have[s.index] != nullptr) continue;
      have[s.index] = &s.data;
      ++distinct;
    }
    if (distinct < k_) return std::nullopt;

    const Bytes* first = nullptr;
    for (std::size_t i = 0; i < n_ && first == nullptr; ++i) first = have[i];
    const std::size_t len = first->size();
    for (std::size_t i = 0; i < n_; ++i) {
      if (have[i] != nullptr) LRS_CHECK(have[i]->size() == len);
    }

    // Pass 1: local repair. Any group missing exactly one data block whose
    // local parity survived repairs from group_size_ + 1 blocks.
    std::vector<Bytes> repaired;
    repaired.reserve(g_);
    std::uint64_t repairs = 0;
    for (std::size_t grp = 0; grp < g_; ++grp) {
      if (have[k_ + grp] == nullptr) continue;
      std::size_t missing = n_;  // sentinel: none
      bool repairable = true;
      for (std::size_t j = grp * group_size_;
           repairable && j < (grp + 1) * group_size_; ++j) {
        if (have[j] != nullptr) continue;
        if (missing != n_) repairable = false;  // two erasures in the group
        missing = j;
      }
      if (!repairable || missing == n_) continue;
      Bytes rec = *have[k_ + grp];
      for (std::size_t j = grp * group_size_; j < (grp + 1) * group_size_;
           ++j) {
        if (j == missing) continue;
        Gf256::addmul(MutByteView(rec.data(), rec.size()), view(*have[j]),
                      generator_.at(k_ + grp, j));
      }
      Gf256::scale(MutByteView(rec.data(), rec.size()),
                   Gf256::inv(generator_.at(k_ + grp, missing)));
      repaired.push_back(std::move(rec));
      have[missing] = &repaired.back();
      ++repairs;
    }
    LrcRegistry::get().local_repairs.add(repairs);

    bool all_data = true;
    for (std::size_t j = 0; j < k_; ++j) all_data &= have[j] != nullptr;
    if (all_data) {
      LrcRegistry::get().decodes.add();
      LrcRegistry::get().local_only_decodes.add();
      std::vector<Bytes> out;
      out.reserve(k_);
      for (std::size_t j = 0; j < k_; ++j) out.push_back(*have[j]);
      return out;
    }

    // Pass 2: full solve over everything we hold (repaired blocks are in the
    // received span, so feeding them cannot raise the achievable rank — they
    // just land the eliminator on its trivial unit-row path).
    Gf256Eliminator elim(k_, len);
    for (std::size_t i = 0; i < n_; ++i) {
      if (have[i] == nullptr) continue;
      elim.add(generator_.row(i), view(*have[i]));
      if (elim.complete()) break;
    }
    if (!elim.complete()) return std::nullopt;
    LrcRegistry::get().decodes.add();
    LrcRegistry::get().full_solves.add();
    return elim.solve();
  }

 private:
  std::size_t k_, n_, g_, group_size_;
  MatrixGf256 generator_;
};

}  // namespace

std::unique_ptr<ErasureCode> make_lrc_code(std::size_t k, std::size_t n) {
  return std::make_unique<LrcCode>(k, n);
}

std::optional<LrcStats> lrc_stats(const ErasureCode& code) {
  if (dynamic_cast<const LrcCode*>(&code) == nullptr) return std::nullopt;
  const LrcRegistry& r = LrcRegistry::get();
  LrcStats s;
  s.decodes = r.decodes.value();
  s.local_repairs = r.local_repairs.value();
  s.local_only_decodes = r.local_only_decodes.value();
  s.full_solves = r.full_solves.value();
  return s;
}

void lrc_stats_reset(const ErasureCode& code) {
  if (dynamic_cast<const LrcCode*>(&code) == nullptr) return;
  LrcRegistry& r = LrcRegistry::get();
  r.decodes.reset();
  r.local_repairs.reset();
  r.local_only_decodes.reset();
  r.full_solves.reset();
}

}  // namespace lrs::erasure
