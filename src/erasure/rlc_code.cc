// Systematic random linear codes with seed-derived parity rows.
//
// Encoded block i < k is original block i; encoded block k+r is a
// pseudorandom linear combination of the originals whose coefficients are
// derived from (seed, r) — every node holding the same preloaded seed
// regenerates identical packets, which is what lets LR-Seluge hash-chain
// them. GF(2) rows are dense random bit vectors (an XOR-only code a mote
// could run); GF(256) rows are random bytes (near-MDS). Decoding is
// Gaussian elimination over the received coefficient rows; it succeeds when
// they reach rank k, which is why the nominal threshold k' exceeds k.
#include <algorithm>

#include "erasure/code.h"
#include "erasure/gf256.h"
#include "erasure/matrix.h"
#include "sim/stats/stats.h"
#include "util/check.h"
#include "util/rng.h"

namespace lrs::erasure {

namespace {

stats::Timer& rlc_timer(bool gf256, bool decode) {
  static stats::Timer* timers[4] = {
      &stats::Registry::instance().timer("erasure.rlc2.encode"),
      &stats::Registry::instance().timer("erasure.rlc2.decode"),
      &stats::Registry::instance().timer("erasure.rlc256.encode"),
      &stats::Registry::instance().timer("erasure.rlc256.decode"),
  };
  return *timers[(gf256 ? 2 : 0) + (decode ? 1 : 0)];
}

std::uint64_t row_seed(std::uint64_t seed, std::size_t row) {
  // splitmix-style mix so adjacent rows decorrelate.
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (row + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class RlcGf2Code final : public ErasureCode {
 public:
  RlcGf2Code(std::size_t k, std::size_t n, std::size_t delta,
             std::uint64_t seed)
      : k_(k), n_(n), delta_(delta) {
    LRS_CHECK_MSG(k >= 1 && k <= n, "RLC requires 1 <= k <= n");
    LRS_CHECK(k + delta <= n || delta == 0 || k == n);
    parity_rows_.reserve(n - k);
    for (std::size_t r = 0; r + k_ < n_; ++r) {
      Rng rng(row_seed(seed, r));
      BitVec row(k_);
      do {
        for (std::size_t j = 0; j < k_; ++j) row.set(j, rng.bernoulli(0.5));
      } while (row.none());
      parity_rows_.push_back(std::move(row));
    }
  }

  std::size_t k() const override { return k_; }
  std::size_t n() const override { return n_; }
  std::size_t decode_threshold() const override {
    return std::min(n_, k_ + delta_);
  }
  std::string name() const override { return "rlc2"; }

  std::vector<Bytes> encode(const std::vector<Bytes>& blocks) const override {
    stats::TimerScope scope(rlc_timer(false, false));
    LRS_CHECK(blocks.size() == k_);
    const std::size_t len = blocks.front().size();
    for (const auto& b : blocks) LRS_CHECK(b.size() == len);

    std::vector<Bytes> out;
    out.reserve(n_);
    for (const auto& b : blocks) out.push_back(b);
    for (const auto& row : parity_rows_) {
      Bytes e(len, 0);
      for (std::size_t j = 0; j < k_; ++j) {
        if (!row.get(j)) continue;
        for (std::size_t b = 0; b < len; ++b) e[b] ^= blocks[j][b];
      }
      out.push_back(std::move(e));
    }
    return out;
  }

  std::optional<std::vector<Bytes>> decode(
      const std::vector<Share>& shares) const override {
    stats::TimerScope scope(rlc_timer(false, true));
    if (shares.empty()) return std::nullopt;
    const std::size_t len = shares.front().data.size();
    Gf2Eliminator elim(k_, len);
    std::vector<bool> seen(n_, false);
    for (const auto& s : shares) {
      LRS_CHECK(s.index < n_);
      LRS_CHECK(s.data.size() == len);
      if (seen[s.index]) continue;
      seen[s.index] = true;
      elim.add(coeff_row(s.index), view(s.data));
      if (elim.complete()) return elim.solve();
    }
    return std::nullopt;
  }

 private:
  BitVec coeff_row(std::size_t index) const {
    if (index < k_) {
      BitVec unit(k_);
      unit.set(index);
      return unit;
    }
    return parity_rows_[index - k_];
  }

  std::size_t k_, n_, delta_;
  std::vector<BitVec> parity_rows_;
};

class RlcGf256Code final : public ErasureCode {
 public:
  RlcGf256Code(std::size_t k, std::size_t n, std::size_t delta,
               std::uint64_t seed)
      : k_(k), n_(n), delta_(delta), generator_(n, k) {
    LRS_CHECK_MSG(k >= 1 && k <= n, "RLC requires 1 <= k <= n");
    for (std::size_t i = 0; i < k_; ++i) generator_.set(i, i, 1);
    for (std::size_t r = 0; r + k_ < n_; ++r) {
      Rng rng(row_seed(seed, r));
      bool nonzero = false;
      do {
        for (std::size_t j = 0; j < k_; ++j) {
          const auto c = static_cast<std::uint8_t>(rng.uniform(256));
          generator_.set(k_ + r, j, c);
          nonzero = nonzero || c != 0;
        }
      } while (!nonzero);
    }
  }

  std::size_t k() const override { return k_; }
  std::size_t n() const override { return n_; }
  std::size_t decode_threshold() const override {
    return std::min(n_, k_ + delta_);
  }
  std::string name() const override { return "rlc256"; }

  std::vector<Bytes> encode(const std::vector<Bytes>& blocks) const override {
    stats::TimerScope scope(rlc_timer(true, false));
    LRS_CHECK(blocks.size() == k_);
    const std::size_t len = blocks.front().size();
    for (const auto& b : blocks) LRS_CHECK(b.size() == len);

    std::vector<Bytes> out;
    out.reserve(n_);
    for (const auto& b : blocks) out.push_back(b);
    for (std::size_t r = k_; r < n_; ++r) {
      Bytes e(len, 0);
      for (std::size_t j = 0; j < k_; ++j) {
        Gf256::addmul(MutByteView(e.data(), e.size()), view(blocks[j]),
                      generator_.at(r, j));
      }
      out.push_back(std::move(e));
    }
    return out;
  }

  std::optional<std::vector<Bytes>> decode(
      const std::vector<Share>& shares) const override {
    stats::TimerScope scope(rlc_timer(true, true));
    // Gather distinct shares.
    std::vector<const Share*> picked;
    std::vector<bool> seen(n_, false);
    for (const auto& s : shares) {
      LRS_CHECK(s.index < n_);
      if (seen[s.index]) continue;
      seen[s.index] = true;
      picked.push_back(&s);
    }
    if (picked.size() < k_) return std::nullopt;
    const std::size_t len = picked.front()->data.size();

    // Augmented Gaussian elimination over all received rows.
    const std::size_t m = picked.size();
    MatrixGf256 a(m, k_);
    std::vector<Bytes> payload(m);
    for (std::size_t r = 0; r < m; ++r) {
      LRS_CHECK(picked[r]->data.size() == len);
      for (std::size_t c = 0; c < k_; ++c)
        a.set(r, c, generator_.at(picked[r]->index, c));
      payload[r] = picked[r]->data;
    }

    std::size_t rank = 0;
    std::vector<std::size_t> pivot_row(k_);
    for (std::size_t col = 0; col < k_; ++col) {
      std::size_t pr = rank;
      while (pr < m && a.at(pr, col) == 0) ++pr;
      if (pr == m) return std::nullopt;  // rank deficient in this column
      if (pr != rank) {
        for (std::size_t c = 0; c < k_; ++c)
          std::swap(a.row(rank)[c], a.row(pr)[c]);
        std::swap(payload[rank], payload[pr]);
      }
      const std::uint8_t pinv = Gf256::inv(a.at(rank, col));
      Gf256::scale(a.row(rank), pinv);
      Gf256::scale(MutByteView(payload[rank].data(), len), pinv);
      for (std::size_t r = 0; r < m; ++r) {
        if (r == rank) continue;
        const std::uint8_t f = a.at(r, col);
        if (f != 0) {
          Gf256::addmul(a.row(r), a.row(rank), f);
          Gf256::addmul(MutByteView(payload[r].data(), len),
                        view(payload[rank]), f);
        }
      }
      pivot_row[col] = rank;
      ++rank;
    }

    std::vector<Bytes> out(k_);
    for (std::size_t col = 0; col < k_; ++col)
      out[col] = std::move(payload[pivot_row[col]]);
    return out;
  }

 private:
  std::size_t k_, n_, delta_;
  MatrixGf256 generator_;
};

}  // namespace

std::unique_ptr<ErasureCode> make_rlc_gf2(std::size_t k, std::size_t n,
                                          std::size_t delta,
                                          std::uint64_t seed) {
  return std::make_unique<RlcGf2Code>(k, n, delta, seed);
}

std::unique_ptr<ErasureCode> make_rlc_gf256(std::size_t k, std::size_t n,
                                            std::size_t delta,
                                            std::uint64_t seed) {
  return std::make_unique<RlcGf256Code>(k, n, delta, seed);
}

}  // namespace lrs::erasure
