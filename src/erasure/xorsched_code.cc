// Cauchy Reed-Solomon compiled to a word-wise XOR schedule.
//
// Same generator as rs_code.cc — G = [ I_k ; C ], C[r][j] = 1/(x_r + y_j),
// x_r = r, y_j = (n-k) + j — so the codewords are byte-identical to the
// table-multiply RS backend (tests exploit this as a differential oracle).
// What changes is the arithmetic: instead of per-(row, block) GF(256) table
// multiplies, each coefficient c expands into the 8x8 bit matrix whose
// column b is c * 2^b over GF(256) (jerasure matrix_to_bitmatrix), and the
// whole parity computation flattens into a precomputed XOR program
// (bitmatrix_to_schedule): parity bit-plane (p, i) is the XOR of data
// bit-planes (j, b) for every set bit (i, b) of the expansion of C[p][j].
//
// Blocks are transposed into 8 bit-planes of S = ceil(len/8) bytes each
// (plane b, byte s, bit r holds bit b of block byte 8s+r) via a u64 8x8
// bit-matrix transpose, the schedule runs word-wise XORs over whole planes,
// and parities transpose back. Because the symbols are plain block bytes,
// padding symbols past len are zero, so parity bytes past len are zero too
// and blocks of any length round-trip exactly like RS. Plane XOR uses a
// single u64 register per parity plane at the paper geometry (len 64, S 8)
// and streams through the dispatched GF(256) kernel (addmul with coeff 1 is
// pure XOR) for large blocks.
#include <algorithm>
#include <cstring>

#include "erasure/code.h"
#include "erasure/gf256.h"
#include "erasure/gf256_kernels.h"
#include "erasure/matrix.h"
#include "sim/stats/stats.h"
#include "util/check.h"

namespace lrs::erasure {

namespace {

/// Transposes the 8x8 bit matrix whose row r is byte r of x (Hacker's
/// Delight 7-7): out byte b, bit r == in byte r, bit b. Involutive.
inline std::uint64_t transpose8(std::uint64_t x) {
  std::uint64_t t;
  t = (x ^ (x >> 7)) & 0x00AA00AA00AA00AAULL;
  x = x ^ t ^ (t << 7);
  t = (x ^ (x >> 14)) & 0x0000CCCC0000CCCCULL;
  x = x ^ t ^ (t << 14);
  t = (x ^ (x >> 28)) & 0x00000000F0F0F0F0ULL;
  x = x ^ t ^ (t << 28);
  return x;
}

/// Spreads a len-byte block (zero-padded to 8*S) into 8 bit-planes of S
/// bytes: planes[b*S + s] bit r == bit b of block byte 8s + r.
void to_planes(const std::uint8_t* block, std::size_t len, std::size_t S,
               std::uint8_t* planes) {
  for (std::size_t s = 0; s < S; ++s) {
    std::uint64_t x = 0;
    const std::size_t base = 8 * s;
    const std::size_t take = std::min<std::size_t>(8, len - base);
    for (std::size_t r = 0; r < take; ++r)
      x |= static_cast<std::uint64_t>(block[base + r]) << (8 * r);
    const std::uint64_t y = transpose8(x);
    for (std::size_t b = 0; b < 8; ++b)
      planes[b * S + s] = static_cast<std::uint8_t>(y >> (8 * b));
  }
}

/// Inverse of to_planes; writes exactly len bytes.
void from_planes(const std::uint8_t* planes, std::size_t S, std::uint8_t* out,
                 std::size_t len) {
  for (std::size_t s = 0; s < S; ++s) {
    std::uint64_t y = 0;
    for (std::size_t b = 0; b < 8; ++b)
      y |= static_cast<std::uint64_t>(planes[b * S + s]) << (8 * b);
    const std::uint64_t x = transpose8(y);
    const std::size_t base = 8 * s;
    const std::size_t put = std::min<std::size_t>(8, len - base);
    for (std::size_t r = 0; r < put; ++r)
      out[base + r] = static_cast<std::uint8_t>(x >> (8 * r));
  }
}

/// Flattened XOR program: dst plane d reads src planes
/// src[begin[d] .. begin[d+1]).
struct XorSchedule {
  std::vector<std::uint32_t> begin;
  std::vector<std::uint32_t> src;
};

/// Expands every coefficient of `m` into its 8x8 bit block and flattens the
/// set bits into per-destination-plane source lists. Rows index destination
/// blocks, columns index source blocks.
XorSchedule compile_schedule(const MatrixGf256& m) {
  XorSchedule sched;
  sched.begin.reserve(m.rows() * 8 + 1);
  sched.begin.push_back(0);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t i = 0; i < 8; ++i) {
      for (std::size_t j = 0; j < m.cols(); ++j) {
        const std::uint8_t c = m.at(r, j);
        if (c == 0) continue;
        for (std::size_t b = 0; b < 8; ++b) {
          const std::uint8_t prod =
              Gf256::mul(c, static_cast<std::uint8_t>(1u << b));
          if (prod & (1u << i))
            sched.src.push_back(static_cast<std::uint32_t>(j * 8 + b));
        }
      }
      sched.begin.push_back(static_cast<std::uint32_t>(sched.src.size()));
    }
  }
  return sched;
}

inline std::uint64_t load64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline void xor_bytes(std::uint8_t* dst, const std::uint8_t* src,
                      std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a = load64(dst + i);
    a ^= load64(src + i);
    std::memcpy(dst + i, &a, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

/// Runs the program: dst planes (pre-zeroed, dst_count of them) accumulate
/// XORs of src planes, all of stride S bytes.
void run_schedule(const XorSchedule& sched, const std::uint8_t* src_planes,
                  std::uint8_t* dst_planes, std::size_t dst_count,
                  std::size_t S) {
  if (S == 8) {
    // Paper geometry (64-byte payload): one u64 register per plane.
    for (std::size_t d = 0; d < dst_count; ++d) {
      std::uint64_t acc = 0;
      for (std::uint32_t e = sched.begin[d]; e < sched.begin[d + 1]; ++e)
        acc ^= load64(src_planes + sched.src[e] * 8);
      std::memcpy(dst_planes + d * 8, &acc, 8);
    }
    return;
  }
  if (S >= 64) {
    // Wide planes: stream through the dispatched SIMD kernel (coeff-1
    // addmul is a pure XOR).
    const Gf256Kernel& kern = gf256_kernel();
    for (std::size_t d = 0; d < dst_count; ++d) {
      for (std::uint32_t e = sched.begin[d]; e < sched.begin[d + 1]; ++e)
        kern.addmul(dst_planes + d * S, src_planes + sched.src[e] * S, S, 1);
    }
    return;
  }
  for (std::size_t d = 0; d < dst_count; ++d) {
    for (std::uint32_t e = sched.begin[d]; e < sched.begin[d + 1]; ++e)
      xor_bytes(dst_planes + d * S, src_planes + sched.src[e] * S, S);
  }
}

class XorScheduleCode final : public ErasureCode {
 public:
  XorScheduleCode(std::size_t k, std::size_t n)
      : k_(k), n_(n), generator_(n, k) {
    LRS_CHECK_MSG(k >= 1 && k <= n, "xorsched requires 1 <= k <= n");
    LRS_CHECK_MSG(n <= 255, "Cauchy RS over GF(256) supports n <= 255");
    for (std::size_t i = 0; i < k_; ++i) generator_.set(i, i, 1);
    for (std::size_t r = 0; r + k_ < n_; ++r) {
      const std::uint8_t x = static_cast<std::uint8_t>(r);
      for (std::size_t j = 0; j < k_; ++j) {
        const std::uint8_t y = static_cast<std::uint8_t>(n_ - k_ + j);
        generator_.set(k_ + r, j, Gf256::inv(Gf256::add(x, y)));
      }
    }
    if (n_ > k_) {
      MatrixGf256 parity(n_ - k_, k_);
      for (std::size_t r = 0; r < n_ - k_; ++r) {
        for (std::size_t j = 0; j < k_; ++j)
          parity.set(r, j, generator_.at(k_ + r, j));
      }
      encode_sched_ = compile_schedule(parity);
    }
  }

  std::size_t k() const override { return k_; }
  std::size_t n() const override { return n_; }
  std::size_t decode_threshold() const override { return k_; }
  std::string name() const override { return "xorsched"; }

  std::vector<Bytes> encode(const std::vector<Bytes>& blocks) const override {
    static stats::Timer& timer =
        stats::Registry::instance().timer("erasure.xorsched.encode");
    stats::TimerScope scope(timer);
    LRS_CHECK(blocks.size() == k_);
    const std::size_t len = blocks.front().size();
    for (const auto& b : blocks) LRS_CHECK(b.size() == len);

    std::vector<Bytes> out;
    out.reserve(n_);
    for (std::size_t i = 0; i < k_; ++i) out.push_back(blocks[i]);
    if (n_ == k_) return out;

    const std::size_t m = n_ - k_;
    const std::size_t S = (len + 7) / 8;
    Bytes data_planes(k_ * 8 * S, 0);
    for (std::size_t j = 0; j < k_; ++j)
      to_planes(blocks[j].data(), len, S, data_planes.data() + j * 8 * S);
    Bytes parity_planes(m * 8 * S, 0);
    run_schedule(encode_sched_, data_planes.data(), parity_planes.data(),
                 m * 8, S);
    for (std::size_t p = 0; p < m; ++p) {
      Bytes e(len);
      from_planes(parity_planes.data() + p * 8 * S, S, e.data(), len);
      out.push_back(std::move(e));
    }
    return out;
  }

  std::optional<std::vector<Bytes>> decode(
      const std::vector<Share>& shares) const override {
    static stats::Timer& timer =
        stats::Registry::instance().timer("erasure.xorsched.decode");
    stats::TimerScope scope(timer);
    std::vector<const Share*> picked;
    std::vector<bool> seen(n_, false);
    for (const auto& s : shares) {
      LRS_CHECK(s.index < n_);
      if (seen[s.index]) continue;
      seen[s.index] = true;
      picked.push_back(&s);
      if (picked.size() == k_) break;
    }
    if (picked.size() < k_) return std::nullopt;

    const std::size_t len = picked.front()->data.size();
    for (const auto* s : picked) LRS_CHECK(s->data.size() == len);

    const bool all_systematic =
        std::all_of(picked.begin(), picked.end(),
                    [&](const Share* s) { return s->index < k_; });
    if (all_systematic) {
      std::vector<Bytes> out(k_);
      for (const auto* s : picked) out[s->index] = s->data;
      return out;
    }

    MatrixGf256 sub(k_, k_);
    for (std::size_t r = 0; r < k_; ++r) {
      for (std::size_t c = 0; c < k_; ++c)
        sub.set(r, c, generator_.at(picked[r]->index, c));
    }
    auto inv = sub.inverted();
    LRS_CHECK_MSG(inv.has_value(), "MDS property violated (bug)");
    const XorSchedule sched = compile_schedule(*inv);

    const std::size_t S = (len + 7) / 8;
    Bytes recv_planes(k_ * 8 * S, 0);
    for (std::size_t r = 0; r < k_; ++r) {
      to_planes(picked[r]->data.data(), len, S,
                recv_planes.data() + r * 8 * S);
    }
    Bytes out_planes(k_ * 8 * S, 0);
    run_schedule(sched, recv_planes.data(), out_planes.data(), k_ * 8, S);

    std::vector<Bytes> out;
    out.reserve(k_);
    for (std::size_t j = 0; j < k_; ++j) {
      Bytes b(len);
      from_planes(out_planes.data() + j * 8 * S, S, b.data(), len);
      out.push_back(std::move(b));
    }
    return out;
  }

 private:
  std::size_t k_, n_;
  MatrixGf256 generator_;
  XorSchedule encode_sched_;
};

}  // namespace

std::unique_ptr<ErasureCode> make_xorsched_code(std::size_t k,
                                                std::size_t n) {
  return std::make_unique<XorScheduleCode>(k, n);
}

}  // namespace lrs::erasure
