// Dense matrices over GF(256) and GF(2) with Gaussian elimination.
//
// The erasure decoders build the k x k sub-generator implied by the received
// packet indices and invert it (GF(256) codes) or eliminate incrementally
// (GF(2) random linear code).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/bitvec.h"
#include "util/check.h"
#include "util/types.h"

namespace lrs::erasure {

class MatrixGf256 {
 public:
  MatrixGf256(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  // Element and row access is inline with debug-only bounds checks:
  // inverted()/multiply()/rank() call these per element, and an always-on
  // check there dominates the Gaussian-elimination profile.
  std::uint8_t at(std::size_t r, std::size_t c) const {
    LRS_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  void set(std::size_t r, std::size_t c, std::uint8_t v) {
    LRS_DCHECK(r < rows_ && c < cols_);
    data_[r * cols_ + c] = v;
  }

  /// Row r as a contiguous view.
  ByteView row(std::size_t r) const {
    LRS_DCHECK(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  MutByteView row(std::size_t r) {
    LRS_DCHECK(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  static MatrixGf256 identity(std::size_t n);
  MatrixGf256 multiply(const MatrixGf256& other) const;

  /// Gauss-Jordan inverse; nullopt when singular. Requires square.
  std::optional<MatrixGf256> inverted() const;

  /// Rank via elimination on a scratch copy.
  std::size_t rank() const;

  bool operator==(const MatrixGf256& other) const = default;

 private:
  std::size_t rows_, cols_;
  std::vector<std::uint8_t> data_;
};

/// Incremental GF(256) Gaussian eliminator: feed (coefficient row, payload)
/// pairs as packets arrive — the decoder of rateless random-linear-coded
/// dissemination, where the coefficient set is unbounded and decode
/// happens once rank k is reached.
class Gf256Eliminator {
 public:
  Gf256Eliminator(std::size_t k, std::size_t block_size);

  /// Adds one equation; returns true when it raised the rank.
  bool add(ByteView coeffs, ByteView payload);

  std::size_t rank() const { return rank_; }
  bool complete() const { return rank_ == k_; }

  /// The k solved blocks; only valid when complete().
  std::vector<Bytes> solve() const;

 private:
  std::size_t k_;
  std::size_t block_size_;
  std::size_t rank_ = 0;
  // rows_[i], if present, is normalized with pivot 1 at column i.
  std::vector<std::optional<std::pair<Bytes, Bytes>>> rows_;
};

/// Incremental GF(2) Gaussian eliminator: feed (coefficient row, payload)
/// pairs as packets arrive; reports when full rank is reached and back-
/// substitutes the original blocks. Row-reduced echelon is maintained so the
/// cost is spread over arrivals — what a sensor node would actually run.
class Gf2Eliminator {
 public:
  /// `k` unknowns, each payload `block_size` bytes.
  Gf2Eliminator(std::size_t k, std::size_t block_size);

  /// Adds one equation: sum of unknowns selected by `coeffs` == payload.
  /// Returns true if the equation was innovative (raised the rank).
  bool add(const BitVec& coeffs, ByteView payload);

  std::size_t rank() const { return rank_; }
  bool complete() const { return rank_ == k_; }

  /// The k solved blocks; only valid when complete().
  std::vector<Bytes> solve() const;

 private:
  std::size_t k_;
  std::size_t block_size_;
  std::size_t rank_ = 0;
  // rows_[i], if present, has pivot at column i.
  std::vector<std::optional<std::pair<BitVec, Bytes>>> rows_;
};

}  // namespace lrs::erasure
