// Fixed-rate k-n-k' erasure codes (paper §II-C, §IV-B).
//
// A code transforms k equal-length blocks into n >= k encoded blocks such
// that the originals can be recovered from (almost) any k' encoded blocks.
// LR-Seluge preloads the *same instance* on every node so any node can
// regenerate the exact n packets of a page it has decoded and serve them.
//
// Four families are provided:
//  * ReedSolomonCode — systematic Cauchy-matrix RS over GF(256). MDS:
//    deterministically decodable from ANY k blocks (k' == k).
//  * RlcCode — systematic random linear code over GF(2) or GF(256) with
//    pseudorandom parity rows derived from a public seed. Decoding succeeds
//    once the received coefficient rows reach rank k; the nominal k'
//    (k + delta) is what the protocol advertises in SNACK distance math.
//  * LrcCode — pyramid-style Locally Repairable Code: the k data blocks
//    split into g local groups, each protected by one local parity, plus
//    global Cauchy parities. A single erasure inside a group repairs from
//    the group alone (no k-wide solve); any k + g - 1 blocks decode
//    deterministically (weaker than MDS — see lrc_code.cc).
//  * XorScheduleCode — the same Cauchy-RS construction compiled into a
//    precomputed word-wise XOR program (jerasure matrix_to_bitmatrix /
//    bitmatrix_to_schedule style); MDS like RS but with no GF(256)
//    multiplies on the encode path.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/types.h"

namespace lrs::erasure {

/// One received encoded block: its index in [0, n) plus its bytes.
struct Share {
  std::size_t index;
  Bytes data;
};

class ErasureCode {
 public:
  virtual ~ErasureCode() = default;

  virtual std::size_t k() const = 0;
  virtual std::size_t n() const = 0;
  /// Nominal decode threshold k': the number of distinct encoded blocks
  /// after which decode() succeeds (always, for MDS codes; with high
  /// probability otherwise). k <= k' <= n.
  virtual std::size_t decode_threshold() const = 0;

  /// Encodes k equal-length blocks into n encoded blocks. Systematic codes
  /// return the originals as the first k outputs.
  virtual std::vector<Bytes> encode(
      const std::vector<Bytes>& blocks) const = 0;

  /// Recovers the k original blocks from a subset of encoded blocks.
  /// Returns nullopt when the subset is insufficient (protocol keeps
  /// requesting). Duplicate indices are tolerated and ignored.
  virtual std::optional<std::vector<Bytes>> decode(
      const std::vector<Share>& shares) const = 0;

  virtual std::string name() const = 0;
};

/// MDS Reed-Solomon instance; requires k <= n <= 255.
std::unique_ptr<ErasureCode> make_rs_code(std::size_t k, std::size_t n);

/// GF(2) random linear code; `delta` is the nominal decode overhead
/// (k' = k + delta). Parity rows derive from `seed` so all nodes agree.
std::unique_ptr<ErasureCode> make_rlc_gf2(std::size_t k, std::size_t n,
                                          std::size_t delta,
                                          std::uint64_t seed);

/// GF(256) random linear code; near-MDS (failure prob ~2^-8 per extra
/// block), nominal k' = k + delta (delta may be 0).
std::unique_ptr<ErasureCode> make_rlc_gf256(std::size_t k, std::size_t n,
                                            std::size_t delta,
                                            std::uint64_t seed);

/// Fixed-rate LT code (robust soliton degrees, peeling decoder); genuinely
/// probabilistic decode threshold — the paper's "k' > k" archetype.
std::unique_ptr<ErasureCode> make_lt_code(std::size_t k, std::size_t n,
                                          std::size_t delta,
                                          std::uint64_t seed);

/// Pyramid-style Locally Repairable Code; requires k <= n <= 255. The k data
/// blocks split into lrc_group_count(k, n) groups, each with one local
/// parity; the remaining parities are global Cauchy rows. Deterministic
/// decode from any k + g - 1 blocks (k' == k + g - 1); a single missing data
/// block whose group parity survived repairs from its group alone.
std::unique_ptr<ErasureCode> make_lrc_code(std::size_t k, std::size_t n);

/// Cauchy-RS compiled to a word-wise XOR schedule; requires k <= n <= 255.
/// Byte-identical codewords to make_rs_code(k, n) (same generator), but
/// encode/decode run a precomputed bitmatrix-derived XOR program over
/// bit-planes instead of GF(256) table multiplies. MDS (k' == k).
std::unique_ptr<ErasureCode> make_xorsched_code(std::size_t k, std::size_t n);

/// Number of local parity groups the LRC construction uses for (k, n): the
/// largest divisor of k that is <= (n - k) / 2, or 0 when n - k < 2 (too few
/// parities for locality to pay — all parities are plain global RS rows).
std::size_t lrc_group_count(std::size_t k, std::size_t n);

/// Decode-path counters of the LRC backend. Since the metrics subsystem
/// (sim/stats/stats.h) these are snapshots of the process-wide registry
/// counters "erasure.lrc.{decodes,local_repairs,local_only_decodes,
/// full_solves}": shared by every LrcCode instance, cumulative since
/// process start or the last lrc_stats_reset, thread-safe, and — like all
/// registry metrics — only advancing while stats::enabled().
struct LrcStats {
  std::uint64_t decodes = 0;        ///< decode() calls that returned blocks
  std::uint64_t local_repairs = 0;  ///< single-erasure group repairs done
  std::uint64_t local_only_decodes = 0;  ///< decodes with no k-wide solve
  std::uint64_t full_solves = 0;         ///< decodes that ran a k-wide solve
};

/// Snapshot of the LRC counters; nullopt when `code` is not an LrcCode.
std::optional<LrcStats> lrc_stats(const ErasureCode& code);

/// Zeroes the LRC counters; no-op when `code` is not an LrcCode.
void lrc_stats_reset(const ErasureCode& code);

/// Parses "rs", "rlc2", "rlc256", "lt", "lrc", "xorsched" — used by
/// example/bench CLI flags and scenario files.
enum class CodecKind { kReedSolomon, kRlcGf2, kRlcGf256, kLt, kLrc,
                       kXorSchedule };
std::optional<CodecKind> parse_codec_kind(const std::string& name);
std::unique_ptr<ErasureCode> make_code(CodecKind kind, std::size_t k,
                                       std::size_t n, std::size_t delta,
                                       std::uint64_t seed);

/// Process-wide cache of immutable codec instances keyed by
/// (kind, k, n, delta, seed). LR-Seluge preloads the *same* code instance on
/// every node, so all receivers of a simulation — and every page and Monte
/// Carlo trial of the bench harnesses — can share one generator matrix
/// instead of rebuilding the Cauchy/RLC construction per node. Codecs are
/// deterministic and stateless after construction, hence safe to share.
/// Seed-independent kinds (Reed-Solomon, LRC, XOR-schedule) canonicalize
/// delta/seed in the key, so all spellings share one instance.
/// Thread-safe; entries live for the process lifetime (a handful of small
/// matrices).
std::shared_ptr<const ErasureCode> make_code_cached(CodecKind kind,
                                                    std::size_t k,
                                                    std::size_t n,
                                                    std::size_t delta,
                                                    std::uint64_t seed);

/// Number of distinct codec instances currently cached.
std::size_t codec_cache_size();

/// Drops every cached codec (outstanding shared_ptrs stay valid). For tests.
void codec_cache_clear();

}  // namespace lrs::erasure
