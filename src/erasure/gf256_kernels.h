// Runtime-dispatched GF(256) bulk kernels: the addmul/scale inner loops
// behind every erasure encode and decode.
//
// Three implementation tiers are compiled in (availability permitting):
//  * "ref"   — the original branchy log/exp scalar loop. Kept forever as the
//              differential-testing oracle; never removed, never "improved".
//  * "table" — portable fallback: one row of a lazily built 64 KB full
//              multiplication table per coefficient, so the per-byte work is
//              a single load + xor with no branch, unrolled 8 bytes per
//              iteration.
//  * "ssse3" / "avx2" — the classic low/high-nibble pshufb split-table
//              technique (as in ISA-L and Jerasure): two 16-entry product
//              tables per coefficient, 16 or 32 bytes per shuffle step.
//
// The active kernel is chosen once, at first use, by CPUID feature probing
// (best available wins) and can be overridden with the environment variable
// LRS_GF256_KERNEL=ref|table|ssse3|avx2|auto — both for A/B benchmarking and
// for forcing the portable paths under sanitizers. The selection is logged
// once at kInfo.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace lrs::erasure {

/// One GF(256) bulk-arithmetic implementation. All kernels implement
/// identical semantics (verified byte-for-byte by tests/test_gf256_kernels):
///   addmul: dst[i] ^= coeff * src[i]   (no-op when coeff == 0)
///   scale:  dst[i]  = coeff * dst[i]   (zero-fill when coeff == 0)
struct Gf256Kernel {
  const char* name;
  void (*addmul)(std::uint8_t* dst, const std::uint8_t* src, std::size_t len,
                 std::uint8_t coeff);
  void (*scale)(std::uint8_t* dst, std::size_t len, std::uint8_t coeff);
};

/// The active kernel. First call performs selection (env override, then
/// CPUID) and logs the choice once.
const Gf256Kernel& gf256_kernel();

/// Kernels compiled in AND runnable on this CPU, fastest last. Always
/// contains at least {"ref", "table"}.
std::vector<std::string> gf256_available_kernels();

/// Looks up a kernel by name; nullptr when unknown or not runnable on this
/// CPU. "auto" is not a kernel name (use gf256_set_kernel for that).
const Gf256Kernel* gf256_find_kernel(const std::string& name);

/// Forces the active kernel ("auto" re-runs CPUID selection). Returns false
/// — leaving the active kernel unchanged — when the name is unknown or the
/// CPU lacks the required ISA. Intended for tests and benchmarks; simulation
/// code should rely on the startup selection.
bool gf256_set_kernel(const std::string& name);

/// The 256x256 full multiplication table (row c holds c*x for x in 0..255),
/// lazily built on first use and shared by the table/SIMD kernels. Exposed
/// so tests can cross-check it against Gf256::mul.
const std::uint8_t* gf256_mul_table();

namespace detail {

/// log values of nonzero elements are <= 254; log[0] gets this sentinel so
/// that exp[log[a] + log[b]] indexes the zeroed tail of exp[] — and thus
/// correctly evaluates to 0 — whenever a or b is 0, instead of the silent
/// `0 * x == x` the old `log[0] = 0` convention produced in unguarded code.
inline constexpr std::uint16_t kLogZeroSentinel = 512;
/// Covers the worst-case index log[0] + log[0] == 1024.
inline constexpr std::size_t kExpSize = 1056;

/// Shared log/exp tables (generator 0x03, AES polynomial 0x11b), used by
/// both the scalar Gf256 entry points and the reference kernel. exp[] is
/// doubled (indices [255,510)) to skip a mod-255 in products and zero-padded
/// beyond so the log[0] sentinel propagates zeros.
struct Gf256Tables {
  std::uint16_t log[256];
  std::uint8_t exp[kExpSize];
};

const Gf256Tables& gf256_tables();

}  // namespace detail

}  // namespace lrs::erasure
