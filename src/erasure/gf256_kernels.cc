#include "erasure/gf256_kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "util/log.h"

#if defined(__x86_64__) || defined(__i386__)
#define LRS_GF256_X86 1
#include <immintrin.h>
#endif

namespace lrs::erasure {

namespace detail {

const Gf256Tables& gf256_tables() {
  static const Gf256Tables t = [] {
    Gf256Tables tb{};
    // Generator 0x03 is primitive for the AES polynomial 0x11b.
    std::uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      tb.exp[i] = static_cast<std::uint8_t>(x);
      tb.log[x] = static_cast<std::uint16_t>(i);
      // x *= 3 in GF(256): x*2 ^ x with reduction.
      std::uint16_t x2 = static_cast<std::uint16_t>(x << 1);
      if (x2 & 0x100) x2 ^= 0x11b;
      x = static_cast<std::uint16_t>(x2 ^ x);
    }
    for (int i = 255; i < 510; ++i) tb.exp[i] = tb.exp[i - 255];
    // Zero-propagating sentinel instead of the old `log[0] = 0` footgun:
    // log of a nonzero element is at most 254 and exp[] is zero from index
    // 510 on, so exp[log[a] + log[b]] lands in the zero region — and thus
    // correctly yields 0 — whenever a or b is 0 (worst case 512+512 = 1024
    // < kExpSize). An unguarded caller can no longer silently compute
    // 0 * x == exp[log[x]] == x.
    tb.log[0] = kLogZeroSentinel;
    for (std::size_t i = 510; i < kExpSize; ++i) tb.exp[i] = 0;
    return tb;
  }();
  return t;
}

}  // namespace detail

namespace {

using detail::gf256_tables;

// ---------------------------------------------------------------------------
// Reference kernel: the original branchy per-byte log/exp loop. This is the
// differential-testing oracle — do not optimize it.
// ---------------------------------------------------------------------------

void addmul_ref(std::uint8_t* dst, const std::uint8_t* src, std::size_t len,
                std::uint8_t coeff) {
  if (coeff == 0) return;
  if (coeff == 1) {
    for (std::size_t i = 0; i < len; ++i) dst[i] ^= src[i];
    return;
  }
  const auto& t = gf256_tables();
  const unsigned lc = t.log[coeff];
  for (std::size_t i = 0; i < len; ++i) {
    const std::uint8_t s = src[i];
    if (s != 0) dst[i] ^= t.exp[lc + t.log[s]];
  }
}

void scale_ref(std::uint8_t* dst, std::size_t len, std::uint8_t coeff) {
  if (coeff == 1) return;
  if (coeff == 0) {
    if (len != 0) std::memset(dst, 0, len);  // empty views carry nullptr
    return;
  }
  const auto& t = gf256_tables();
  const unsigned lc = t.log[coeff];
  for (std::size_t i = 0; i < len; ++i) {
    if (dst[i] != 0) dst[i] = t.exp[lc + t.log[dst[i]]];
  }
}

// ---------------------------------------------------------------------------
// Full multiplication table (64 KB, row c = c*x for all x) and the per-
// coefficient nibble split tables (8 KB) the SIMD kernels shuffle from.
// Both derive from the log/exp tables and are built lazily on first use.
// ---------------------------------------------------------------------------

struct MulTable {
  std::uint8_t row[256][256];
};

const MulTable& mul_table() {
  static const MulTable m = [] {
    MulTable mt;
    const auto& t = gf256_tables();
    std::memset(mt.row[0], 0, 256);
    for (std::size_t c = 1; c < 256; ++c) {
      const unsigned lc = t.log[c];
      mt.row[c][0] = 0;
      for (std::size_t x = 1; x < 256; ++x)
        mt.row[c][x] = t.exp[lc + t.log[x]];
    }
    return mt;
  }();
  return m;
}

// Row c: bytes [0,16) = c * x for x in 0..15 (low nibble products),
// bytes [16,32) = c * (x << 4) (high nibble products). GF multiplication
// distributes over the nibble split: c*v == c*(v & 0xf) ^ c*(v & 0xf0).
struct NibbleTable {
  alignas(32) std::uint8_t row[256][32];
};

const NibbleTable& nibble_table() {
  static const NibbleTable n = [] {
    NibbleTable nt;
    const auto& m = mul_table();
    for (std::size_t c = 0; c < 256; ++c) {
      for (std::size_t x = 0; x < 16; ++x) {
        nt.row[c][x] = m.row[c][x];
        nt.row[c][16 + x] = m.row[c][x << 4];
      }
    }
    return nt;
  }();
  return n;
}

// ---------------------------------------------------------------------------
// Portable table kernel: one load per byte from the coefficient's product
// row, no branch in the loop body, 8 bytes per unrolled iteration.
// ---------------------------------------------------------------------------

inline void xor_bytes(std::uint8_t* dst, const std::uint8_t* src,
                      std::size_t len) {
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    std::uint64_t d, s;
    std::memcpy(&d, dst + i, 8);
    std::memcpy(&s, src + i, 8);
    d ^= s;
    std::memcpy(dst + i, &d, 8);
  }
  for (; i < len; ++i) dst[i] ^= src[i];
}

void addmul_table(std::uint8_t* dst, const std::uint8_t* src, std::size_t len,
                  std::uint8_t coeff) {
  if (coeff == 0) return;
  if (coeff == 1) {
    xor_bytes(dst, src, len);
    return;
  }
  const std::uint8_t* row = mul_table().row[coeff];
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    dst[i] ^= row[src[i]];
    dst[i + 1] ^= row[src[i + 1]];
    dst[i + 2] ^= row[src[i + 2]];
    dst[i + 3] ^= row[src[i + 3]];
    dst[i + 4] ^= row[src[i + 4]];
    dst[i + 5] ^= row[src[i + 5]];
    dst[i + 6] ^= row[src[i + 6]];
    dst[i + 7] ^= row[src[i + 7]];
  }
  for (; i < len; ++i) dst[i] ^= row[src[i]];
}

void scale_table(std::uint8_t* dst, std::size_t len, std::uint8_t coeff) {
  if (coeff == 1) return;
  if (coeff == 0) {
    if (len != 0) std::memset(dst, 0, len);  // empty views carry nullptr
    return;
  }
  const std::uint8_t* row = mul_table().row[coeff];
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    dst[i] = row[dst[i]];
    dst[i + 1] = row[dst[i + 1]];
    dst[i + 2] = row[dst[i + 2]];
    dst[i + 3] = row[dst[i + 3]];
    dst[i + 4] = row[dst[i + 4]];
    dst[i + 5] = row[dst[i + 5]];
    dst[i + 6] = row[dst[i + 6]];
    dst[i + 7] = row[dst[i + 7]];
  }
  for (; i < len; ++i) dst[i] = row[dst[i]];
}

// ---------------------------------------------------------------------------
// SSSE3 / AVX2 kernels: split each byte into nibbles and use pshufb as a
// 16-way parallel table lookup — two shuffles + xor per 16 (or 32) bytes.
// Compiled with per-function target attributes so the translation unit
// builds without global -mssse3/-mavx2; runtime CPUID gates selection.
// ---------------------------------------------------------------------------

#ifdef LRS_GF256_X86

__attribute__((target("ssse3"))) void addmul_ssse3(std::uint8_t* dst,
                                                   const std::uint8_t* src,
                                                   std::size_t len,
                                                   std::uint8_t coeff) {
  if (coeff == 0) return;
  const std::uint8_t* nib = nibble_table().row[coeff];
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(nib));
  const __m128i hi =
      _mm_load_si128(reinterpret_cast<const __m128i*>(nib + 16));
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i l = _mm_and_si128(v, mask);
    const __m128i h = _mm_and_si128(_mm_srli_epi64(v, 4), mask);
    const __m128i p =
        _mm_xor_si128(_mm_shuffle_epi8(lo, l), _mm_shuffle_epi8(hi, h));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, p));
  }
  if (i < len) addmul_table(dst + i, src + i, len - i, coeff);
}

__attribute__((target("ssse3"))) void scale_ssse3(std::uint8_t* dst,
                                                  std::size_t len,
                                                  std::uint8_t coeff) {
  if (coeff == 1) return;
  if (coeff == 0) {
    if (len != 0) std::memset(dst, 0, len);  // empty views carry nullptr
    return;
  }
  const std::uint8_t* nib = nibble_table().row[coeff];
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(nib));
  const __m128i hi =
      _mm_load_si128(reinterpret_cast<const __m128i*>(nib + 16));
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i l = _mm_and_si128(v, mask);
    const __m128i h = _mm_and_si128(_mm_srli_epi64(v, 4), mask);
    const __m128i p =
        _mm_xor_si128(_mm_shuffle_epi8(lo, l), _mm_shuffle_epi8(hi, h));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), p);
  }
  if (i < len) scale_table(dst + i, len - i, coeff);
}

__attribute__((target("avx2"))) void addmul_avx2(std::uint8_t* dst,
                                                 const std::uint8_t* src,
                                                 std::size_t len,
                                                 std::uint8_t coeff) {
  if (coeff == 0) return;
  const std::uint8_t* nib = nibble_table().row[coeff];
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(nib)));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(nib + 16)));
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i l = _mm256_and_si256(v, mask);
    const __m256i h = _mm256_and_si256(_mm256_srli_epi64(v, 4), mask);
    const __m256i p = _mm256_xor_si256(_mm256_shuffle_epi8(lo, l),
                                       _mm256_shuffle_epi8(hi, h));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, p));
  }
  if (i < len) addmul_ssse3(dst + i, src + i, len - i, coeff);
}

__attribute__((target("avx2"))) void scale_avx2(std::uint8_t* dst,
                                                std::size_t len,
                                                std::uint8_t coeff) {
  if (coeff == 1) return;
  if (coeff == 0) {
    if (len != 0) std::memset(dst, 0, len);  // empty views carry nullptr
    return;
  }
  const std::uint8_t* nib = nibble_table().row[coeff];
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(nib)));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(nib + 16)));
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i l = _mm256_and_si256(v, mask);
    const __m256i h = _mm256_and_si256(_mm256_srli_epi64(v, 4), mask);
    const __m256i p = _mm256_xor_si256(_mm256_shuffle_epi8(lo, l),
                                       _mm256_shuffle_epi8(hi, h));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), p);
  }
  if (i < len) scale_ssse3(dst + i, len - i, coeff);
}

#endif  // LRS_GF256_X86

// ---------------------------------------------------------------------------
// Registry and runtime selection.
// ---------------------------------------------------------------------------

constexpr Gf256Kernel kRefKernel{"ref", addmul_ref, scale_ref};
constexpr Gf256Kernel kTableKernel{"table", addmul_table, scale_table};
#ifdef LRS_GF256_X86
constexpr Gf256Kernel kSsse3Kernel{"ssse3", addmul_ssse3, scale_ssse3};
constexpr Gf256Kernel kAvx2Kernel{"avx2", addmul_avx2, scale_avx2};
#endif

/// Kernels runnable on this CPU, slowest to fastest.
std::vector<const Gf256Kernel*> runnable_kernels() {
  std::vector<const Gf256Kernel*> v{&kRefKernel, &kTableKernel};
#ifdef LRS_GF256_X86
  if (__builtin_cpu_supports("ssse3")) v.push_back(&kSsse3Kernel);
  if (__builtin_cpu_supports("avx2")) v.push_back(&kAvx2Kernel);
#endif
  return v;
}

const Gf256Kernel* select_auto() { return runnable_kernels().back(); }

struct ActiveKernel {
  std::atomic<const Gf256Kernel*> ptr;

  ActiveKernel() {
    const Gf256Kernel* chosen = nullptr;
    const char* env = std::getenv("LRS_GF256_KERNEL");
    if (env != nullptr && env[0] != '\0' && std::string(env) != "auto") {
      chosen = gf256_find_kernel(env);
      if (chosen == nullptr) {
        LRS_LOG(kWarn) << "LRS_GF256_KERNEL=" << env
                       << " unknown or unsupported on this CPU; "
                          "falling back to auto selection";
      }
    }
    if (chosen == nullptr) chosen = select_auto();
    LRS_LOG(kInfo) << "GF(256) kernel: " << chosen->name
                   << (env != nullptr && env[0] != '\0'
                           ? " (LRS_GF256_KERNEL override)"
                           : " (auto-selected)");
    ptr.store(chosen, std::memory_order_release);
  }
};

ActiveKernel& active_kernel() {
  static ActiveKernel a;
  return a;
}

}  // namespace

const Gf256Kernel& gf256_kernel() {
  return *active_kernel().ptr.load(std::memory_order_acquire);
}

std::vector<std::string> gf256_available_kernels() {
  std::vector<std::string> names;
  for (const auto* k : runnable_kernels()) names.emplace_back(k->name);
  return names;
}

const Gf256Kernel* gf256_find_kernel(const std::string& name) {
  for (const auto* k : runnable_kernels()) {
    if (name == k->name) return k;
  }
  return nullptr;
}

bool gf256_set_kernel(const std::string& name) {
  const Gf256Kernel* k =
      name == "auto" ? select_auto() : gf256_find_kernel(name);
  if (k == nullptr) return false;
  active_kernel().ptr.store(k, std::memory_order_release);
  return true;
}

const std::uint8_t* gf256_mul_table() { return mul_table().row[0]; }

}  // namespace lrs::erasure
