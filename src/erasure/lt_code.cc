// Fixed-rate LT code (Luby, FOCS'02) — the paper's §II-C lists LT codes as
// a typical erasure code, and they are the canonical instance of the
// "k' > k" decode overhead LR-Seluge's analysis assumes.
//
// Encoded packet i draws a degree d_i from the robust soliton distribution
// and XORs d_i pseudorandomly chosen blocks; both draws derive from the
// preloaded seed and the packet index, so every node regenerates identical
// packets (required for hash chaining). Decoding is the classic peeling
// process: repeatedly release degree-one packets, substitute the recovered
// block everywhere, fail soft if the ripple dries up before all k blocks
// are known — the caller simply keeps collecting packets.
#include <algorithm>
#include <cmath>
#include <vector>

#include "erasure/code.h"
#include "sim/stats/stats.h"
#include "util/check.h"
#include "util/rng.h"

namespace lrs::erasure {

namespace {

std::uint64_t packet_seed(std::uint64_t base, std::size_t index) {
  std::uint64_t z = base + 0x632be59bd9b4e019ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Robust soliton distribution (c = 0.1, delta = 0.5), precomputed CDF.
std::vector<double> robust_soliton_cdf(std::size_t k) {
  const double c = 0.1;
  const double delta = 0.5;
  const double r = c * std::log(k / delta) * std::sqrt(static_cast<double>(k));
  const auto spike = std::max<std::size_t>(
      1, std::min(k, static_cast<std::size_t>(k / std::max(1.0, r))));

  std::vector<double> p(k + 1, 0.0);
  // Ideal soliton rho.
  p[1] = 1.0 / static_cast<double>(k);
  for (std::size_t d = 2; d <= k; ++d)
    p[d] = 1.0 / (static_cast<double>(d) * static_cast<double>(d - 1));
  // Robust correction tau.
  for (std::size_t d = 1; d < spike; ++d)
    p[d] += r / (static_cast<double>(d) * static_cast<double>(k));
  p[spike] += r * std::log(r / delta) / static_cast<double>(k);

  double total = 0.0;
  for (std::size_t d = 1; d <= k; ++d) total += p[d];
  std::vector<double> cdf(k + 1, 0.0);
  double acc = 0.0;
  for (std::size_t d = 1; d <= k; ++d) {
    acc += p[d] / total;
    cdf[d] = acc;
  }
  cdf[k] = 1.0;
  return cdf;
}

class LtCode final : public ErasureCode {
 public:
  LtCode(std::size_t k, std::size_t n, std::size_t delta, std::uint64_t seed)
      : k_(k), n_(n), delta_(delta), seed_(seed), cdf_(robust_soliton_cdf(k)) {
    LRS_CHECK_MSG(k >= 1 && k <= n, "LT requires 1 <= k <= n");
    // A fixed-rate LT instance must be decodable from the FULL packet set,
    // or a page could never complete. Re-salt deterministically until the
    // full set peels — every node derives the same instance.
    for (std::uint64_t salt = 0;; ++salt) {
      neighbors_.clear();
      neighbors_.reserve(n_);
      for (std::size_t i = 0; i < n_; ++i)
        neighbors_.push_back(draw_neighbors(i, salt));
      if (full_set_peels()) break;
      LRS_CHECK_MSG(salt < 1000, "LT instance unreachable (n too small?)");
    }
  }

  std::size_t k() const override { return k_; }
  std::size_t n() const override { return n_; }
  std::size_t decode_threshold() const override {
    return std::min(n_, k_ + delta_);
  }
  std::string name() const override { return "lt"; }

  std::vector<Bytes> encode(const std::vector<Bytes>& blocks) const override {
    static stats::Timer& timer =
        stats::Registry::instance().timer("erasure.lt.encode");
    stats::TimerScope scope(timer);
    LRS_CHECK(blocks.size() == k_);
    const std::size_t len = blocks.front().size();
    for (const auto& b : blocks) LRS_CHECK(b.size() == len);
    std::vector<Bytes> out;
    out.reserve(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      Bytes e(len, 0);
      for (auto j : neighbors_[i]) {
        for (std::size_t b = 0; b < len; ++b) e[b] ^= blocks[j][b];
      }
      out.push_back(std::move(e));
    }
    return out;
  }

  std::optional<std::vector<Bytes>> decode(
      const std::vector<Share>& shares) const override {
    static stats::Timer& timer =
        stats::Registry::instance().timer("erasure.lt.decode");
    stats::TimerScope scope(timer);
    if (shares.empty()) return std::nullopt;
    const std::size_t len = shares.front().data.size();

    // Working copies: each received packet's unresolved neighbor set.
    struct Pending {
      std::vector<std::size_t> nbr;
      Bytes data;
    };
    std::vector<Pending> pend;
    std::vector<bool> seen(n_, false);
    for (const auto& s : shares) {
      LRS_CHECK(s.index < n_);
      LRS_CHECK(s.data.size() == len);
      if (seen[s.index]) continue;
      seen[s.index] = true;
      pend.push_back({neighbors_[s.index], s.data});
    }

    std::vector<std::optional<Bytes>> solved(k_);
    std::size_t solved_count = 0;

    // Peeling: substitute every already-solved block, then release
    // degree-one packets until the ripple dries up.
    bool progress = true;
    while (progress && solved_count < k_) {
      progress = false;
      for (auto& p : pend) {
        if (p.nbr.empty()) continue;
        // Substitute solved neighbors.
        auto it = p.nbr.begin();
        while (it != p.nbr.end()) {
          if (solved[*it]) {
            for (std::size_t b = 0; b < len; ++b)
              p.data[b] ^= (*solved[*it])[b];
            it = p.nbr.erase(it);
          } else {
            ++it;
          }
        }
        if (p.nbr.size() == 1) {
          const std::size_t j = p.nbr.front();
          p.nbr.clear();
          if (!solved[j]) {
            solved[j] = std::move(p.data);
            ++solved_count;
          }
          progress = true;
        }
      }
    }
    if (solved_count < k_) return std::nullopt;

    std::vector<Bytes> out;
    out.reserve(k_);
    for (auto& s : solved) out.push_back(*std::move(s));
    return out;
  }

 private:
  /// Structural dry run of the peeling decoder over all n packets.
  bool full_set_peels() const {
    std::vector<std::vector<std::size_t>> nbr = neighbors_;
    std::vector<bool> solved(k_, false);
    std::size_t count = 0;
    bool progress = true;
    while (progress && count < k_) {
      progress = false;
      for (auto& ns : nbr) {
        ns.erase(std::remove_if(ns.begin(), ns.end(),
                                [&](std::size_t j) { return solved[j]; }),
                 ns.end());
        if (ns.size() == 1) {
          if (!solved[ns.front()]) {
            solved[ns.front()] = true;
            ++count;
          }
          ns.clear();
          progress = true;
        }
      }
    }
    return count == k_;
  }

  std::vector<std::size_t> draw_neighbors(std::size_t index,
                                          std::uint64_t salt) const {
    Rng rng(packet_seed(seed_ ^ (salt * 0x9e3779b97f4a7c15ULL), index));
    // Sample the degree from the robust soliton CDF.
    const double u = rng.uniform01();
    std::size_t degree = 1;
    while (degree < k_ && cdf_[degree] < u) ++degree;
    // Distinct neighbor blocks via partial Fisher-Yates.
    std::vector<std::size_t> idx(k_);
    for (std::size_t j = 0; j < k_; ++j) idx[j] = j;
    for (std::size_t j = 0; j < degree; ++j)
      std::swap(idx[j], idx[j + rng.uniform(k_ - j)]);
    idx.resize(degree);
    std::sort(idx.begin(), idx.end());
    return idx;
  }

  std::size_t k_, n_, delta_;
  std::uint64_t seed_;
  std::vector<double> cdf_;
  std::vector<std::vector<std::size_t>> neighbors_;  // per encoded index
};

}  // namespace

std::unique_ptr<ErasureCode> make_lt_code(std::size_t k, std::size_t n,
                                          std::size_t delta,
                                          std::uint64_t seed) {
  return std::make_unique<LtCode>(k, n, delta, seed);
}

}  // namespace lrs::erasure
