// Lightweight runtime checking macros.
//
// LRS_CHECK is always on (simulation code is not performance critical enough
// to justify unchecked invariants); it throws std::logic_error so tests can
// observe violations and RAII unwinds cleanly.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace lrs::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace lrs::detail

#define LRS_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) ::lrs::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define LRS_CHECK_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr))                                                     \
      ::lrs::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

// Debug-only check for per-element hot paths (matrix at/set, kernel inner
// loops) where an always-on branch is measurable. Compiles away under
// NDEBUG (Release/RelWithDebInfo); full LRS_CHECK otherwise.
#ifdef NDEBUG
#define LRS_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define LRS_DCHECK(expr) LRS_CHECK(expr)
#endif
