#include "util/bitvec.h"

#include <bit>

#include "util/check.h"

namespace lrs {

BitVec::BitVec(std::size_t size) : size_(size), words_((size + 63) / 64, 0) {}

BitVec::BitVec(std::size_t size, bool value) : BitVec(size) {
  if (value) set_all();
}

void BitVec::set_all() {
  for (auto& w : words_) w = ~std::uint64_t{0};
  trim_tail();
}

void BitVec::clear_all() {
  for (auto& w : words_) w = 0;
}

void BitVec::trim_tail() {
  const std::size_t tail = size_ % 64;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << tail) - 1;
  }
}

std::size_t BitVec::count() const {
  std::size_t c = 0;
  for (auto w : words_) c += static_cast<std::size_t>(std::popcount(w));
  return c;
}

BitVec& BitVec::operator|=(const BitVec& other) {
  LRS_CHECK(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

BitVec& BitVec::operator&=(const BitVec& other) {
  LRS_CHECK(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

BitVec& BitVec::operator^=(const BitVec& other) {
  LRS_CHECK(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

BitVec& BitVec::subtract(const BitVec& other) {
  LRS_CHECK(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

bool BitVec::operator==(const BitVec& other) const {
  return size_ == other.size_ && words_ == other.words_;
}

std::optional<std::size_t> BitVec::first_set(std::size_t from) const {
  for (std::size_t i = from; i < size_; ++i) {
    if (get(i)) return i;
  }
  return std::nullopt;
}

std::optional<std::size_t> BitVec::first_set_cyclic(std::size_t from) const {
  if (size_ == 0) return std::nullopt;
  from %= size_;
  for (std::size_t step = 0; step < size_; ++step) {
    const std::size_t i = (from + step) % size_;
    if (get(i)) return i;
  }
  return std::nullopt;
}

Bytes BitVec::to_bytes() const {
  Bytes out(byte_size(), 0);
  for (std::size_t i = 0; i < size_; ++i) {
    if (get(i)) out[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  }
  return out;
}

BitVec BitVec::from_bytes(ByteView bytes, std::size_t size) {
  LRS_CHECK(bytes.size() >= (size + 7) / 8);
  BitVec v(size);
  // Both layouts are little-endian (bit i lives at byte i/8, bit i%8; word
  // i/64, bit i%64), so bytes assemble into words directly.
  const std::size_t nbytes = (size + 7) / 8;
  for (std::size_t b = 0; b < nbytes; ++b) {
    v.words_[b / 8] |= static_cast<std::uint64_t>(bytes[b]) << (8 * (b % 8));
  }
  v.trim_tail();
  return v;
}

std::string BitVec::to_string() const {
  std::string s;
  s.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) s.push_back(get(i) ? '1' : '0');
  return s;
}

}  // namespace lrs
