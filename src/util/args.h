// Minimal command-line flag parser for the example/bench executables.
//
// Accepts "--name=value", "--name value" and bare "--flag" booleans;
// anything not starting with "--" is a positional argument. Typed getters
// fall back to defaults and record errors instead of throwing, so tools
// can print one consolidated usage message.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace lrs {

class Args {
 public:
  Args(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def) const;
  long get_int(const std::string& name, long def);
  double get_double(const std::string& name, double def);
  bool get_bool(const std::string& name, bool def) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags present on the command line but never queried — typo detection.
  std::vector<std::string> unknown() const;
  /// Parse errors accumulated by the typed getters.
  const std::vector<std::string>& errors() const { return errors_; }

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
  std::vector<std::string> errors_;
};

}  // namespace lrs
