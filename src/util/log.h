// Minimal leveled logger.
//
// Protocol and simulator modules log through this; benches run with logging
// off (the default is kWarn) so harness output stays clean. The logger is a
// process-wide singleton because simulations are single-threaded.
#pragma once

#include <sstream>
#include <string>

namespace lrs {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void emit(LogLevel level, const std::string& msg);
}

/// Stream-style logging:  LRS_LOG(kDebug) << "node " << id << " ...";
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { detail::emit(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace lrs

#define LRS_LOG(level)                                      \
  if (::lrs::LogLevel::level < ::lrs::log_level()) {        \
  } else                                                    \
    ::lrs::LogLine(::lrs::LogLevel::level)
