#include "util/csv.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "util/check.h"

namespace lrs {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  LRS_CHECK(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void Table::add_row(const std::vector<double>& row, int precision) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) cells.push_back(format_num(v, precision));
  add_row(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size())
        os << std::string(width[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += '"';
  return out;
}
}  // namespace

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << csv_escape(row[c]);
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string format_num(double v, int precision) {
  if (std::rint(v) == v && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace lrs
