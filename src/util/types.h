// Common scalar and buffer aliases used across the LR-Seluge code base.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace lrs {

/// Owned byte buffer. All wire payloads, blocks and digests use this.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning read-only view over bytes.
using ByteView = std::span<const std::uint8_t>;

/// Non-owning mutable view over bytes.
using MutByteView = std::span<std::uint8_t>;

/// Node identifier inside a simulated network. 0 is reserved for the
/// base station by convention (not enforced).
using NodeId = std::uint32_t;

/// Code-image version number carried in every protocol packet.
using Version = std::uint32_t;

inline ByteView view(const Bytes& b) { return {b.data(), b.size()}; }

}  // namespace lrs
