#include "util/buffer.h"

#include <stdexcept>

#include "util/check.h"

namespace lrs {

void Writer::sized_bytes(ByteView b) {
  LRS_CHECK(b.size() <= 0xffff);
  u16(static_cast<std::uint16_t>(b.size()));
  bytes(b);
}

namespace {
[[noreturn]] void truncated() {
  throw std::runtime_error("Reader: truncated input");
}
}  // namespace

std::uint8_t Reader::u8() {
  auto v = try_u8();
  if (!v) truncated();
  return *v;
}
std::uint16_t Reader::u16() {
  auto v = try_u16();
  if (!v) truncated();
  return *v;
}
std::uint32_t Reader::u32() {
  auto v = try_u32();
  if (!v) truncated();
  return *v;
}
std::uint64_t Reader::u64() {
  auto v = try_u64();
  if (!v) truncated();
  return *v;
}
Bytes Reader::bytes(std::size_t n) {
  auto v = try_bytes(n);
  if (!v) truncated();
  return *std::move(v);
}
Bytes Reader::sized_bytes() {
  auto v = try_sized_bytes();
  if (!v) truncated();
  return *std::move(v);
}

Bytes Reader::rest() { return bytes(remaining()); }

}  // namespace lrs
