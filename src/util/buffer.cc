#include "util/buffer.h"

#include <stdexcept>

#include "util/check.h"

namespace lrs {

void Writer::u8(std::uint8_t v) { out_.push_back(v); }

void Writer::u16(std::uint16_t v) {
  out_.push_back(static_cast<std::uint8_t>(v));
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::bytes(ByteView b) { out_.insert(out_.end(), b.begin(), b.end()); }

void Writer::sized_bytes(ByteView b) {
  LRS_CHECK(b.size() <= 0xffff);
  u16(static_cast<std::uint16_t>(b.size()));
  bytes(b);
}

std::optional<std::uint8_t> Reader::try_u8() {
  if (remaining() < 1) return std::nullopt;
  return data_[pos_++];
}

std::optional<std::uint16_t> Reader::try_u16() {
  if (remaining() < 2) return std::nullopt;
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::optional<std::uint32_t> Reader::try_u32() {
  if (remaining() < 4) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::optional<std::uint64_t> Reader::try_u64() {
  if (remaining() < 8) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

std::optional<Bytes> Reader::try_bytes(std::size_t n) {
  if (remaining() < n) return std::nullopt;
  Bytes out(data_.begin() + pos_, data_.begin() + pos_ + n);
  pos_ += n;
  return out;
}

std::optional<Bytes> Reader::try_sized_bytes() {
  auto n = try_u16();
  if (!n) return std::nullopt;
  return try_bytes(*n);
}

namespace {
[[noreturn]] void truncated() {
  throw std::runtime_error("Reader: truncated input");
}
}  // namespace

std::uint8_t Reader::u8() {
  auto v = try_u8();
  if (!v) truncated();
  return *v;
}
std::uint16_t Reader::u16() {
  auto v = try_u16();
  if (!v) truncated();
  return *v;
}
std::uint32_t Reader::u32() {
  auto v = try_u32();
  if (!v) truncated();
  return *v;
}
std::uint64_t Reader::u64() {
  auto v = try_u64();
  if (!v) truncated();
  return *v;
}
Bytes Reader::bytes(std::size_t n) {
  auto v = try_bytes(n);
  if (!v) truncated();
  return *std::move(v);
}
Bytes Reader::sized_bytes() {
  auto v = try_sized_bytes();
  if (!v) truncated();
  return *std::move(v);
}

Bytes Reader::rest() { return bytes(remaining()); }

}  // namespace lrs
