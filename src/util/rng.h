// Deterministic pseudo-random number generation.
//
// Every stochastic component (channel losses, protocol jitter, workload
// generation) draws from an Rng seeded explicitly, so whole simulations are
// reproducible bit-for-bit from a single seed. The generator is
// xoshiro256** (public domain, Blackman & Vigna) seeded via splitmix64.
#pragma once

#include <cstdint>

namespace lrs {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform in [0, bound), bound > 0. Uses rejection to avoid modulo bias.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Geometric number of Bernoulli(p) trials until first success (>= 1).
  std::uint64_t geometric(double p);

  /// Derive an independent child generator (for per-node streams).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace lrs
