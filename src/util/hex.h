// Hex encoding/decoding, used by tests (known-answer vectors) and logging.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "util/types.h"

namespace lrs {

/// Lowercase hex string, two characters per byte.
std::string to_hex(ByteView bytes);

/// Parses a hex string (case-insensitive). Returns nullopt on odd length or
/// non-hex characters.
std::optional<Bytes> from_hex(std::string_view hex);

}  // namespace lrs
