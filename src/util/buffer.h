// Bounds-checked binary serialization.
//
// All wire formats in the protocol layer are serialized through Writer and
// parsed through Reader. Integers are little-endian. Reader signals malformed
// input by returning std::nullopt from try_* accessors (protocol code treats
// malformed packets as hostile and drops them) or throwing from the plain
// accessors (internal use where malformation is a bug).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/types.h"

namespace lrs {

class Writer {
 public:
  Writer() = default;

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Raw bytes, no length prefix.
  void bytes(ByteView b);
  /// u16 length prefix followed by the bytes.
  void sized_bytes(ByteView b);

  const Bytes& data() const& { return out_; }
  Bytes take() && { return std::move(out_); }
  std::size_t size() const { return out_.size(); }

 private:
  Bytes out_;
};

class Reader {
 public:
  explicit Reader(ByteView data) : data_(data) {}

  std::optional<std::uint8_t> try_u8();
  std::optional<std::uint16_t> try_u16();
  std::optional<std::uint32_t> try_u32();
  std::optional<std::uint64_t> try_u64();
  /// Next `n` raw bytes.
  std::optional<Bytes> try_bytes(std::size_t n);
  /// u16 length prefix followed by that many bytes.
  std::optional<Bytes> try_sized_bytes();

  /// Throwing variants for internal deserialization where failure is a bug.
  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  Bytes bytes(std::size_t n);
  Bytes sized_bytes();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return remaining() == 0; }
  /// Everything not yet consumed.
  Bytes rest();

 private:
  ByteView data_;
  std::size_t pos_ = 0;
};

}  // namespace lrs
