// Bounds-checked binary serialization.
//
// All wire formats in the protocol layer are serialized through Writer and
// parsed through Reader. Integers are little-endian. Reader signals malformed
// input by returning std::nullopt from try_* accessors (protocol code treats
// malformed packets as hostile and drops them) or throwing from the plain
// accessors (internal use where malformation is a bug).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/types.h"

namespace lrs {

// The integer and byte primitives are defined inline: parse runs once per
// delivered frame, which makes these the most frequently called functions
// in a large simulation.
class Writer {
 public:
  Writer() = default;

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  /// Raw bytes, no length prefix.
  void bytes(ByteView b) { out_.insert(out_.end(), b.begin(), b.end()); }
  /// u16 length prefix followed by the bytes.
  void sized_bytes(ByteView b);

  const Bytes& data() const& { return out_; }
  Bytes take() && { return std::move(out_); }
  std::size_t size() const { return out_.size(); }

 private:
  Bytes out_;
};

class Reader {
 public:
  explicit Reader(ByteView data) : data_(data) {}

  std::optional<std::uint8_t> try_u8() {
    if (remaining() < 1) return std::nullopt;
    return data_[pos_++];
  }
  std::optional<std::uint16_t> try_u16() {
    if (remaining() < 2) return std::nullopt;
    const std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                            static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
    pos_ += 2;
    return v;
  }
  std::optional<std::uint32_t> try_u32() {
    if (remaining() < 4) return std::nullopt;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }
  std::optional<std::uint64_t> try_u64() {
    if (remaining() < 8) return std::nullopt;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }
  /// Next `n` raw bytes.
  std::optional<Bytes> try_bytes(std::size_t n) {
    if (remaining() < n) return std::nullopt;
    Bytes out(data_.begin() + pos_, data_.begin() + pos_ + n);
    pos_ += n;
    return out;
  }
  /// u16 length prefix followed by that many bytes.
  std::optional<Bytes> try_sized_bytes() {
    const auto n = try_u16();
    if (!n) return std::nullopt;
    return try_bytes(*n);
  }

  /// Throwing variants for internal deserialization where failure is a bug.
  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  Bytes bytes(std::size_t n);
  Bytes sized_bytes();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return remaining() == 0; }
  /// Everything not yet consumed.
  Bytes rest();

 private:
  ByteView data_;
  std::size_t pos_ = 0;
};

}  // namespace lrs
