// Tiny CSV + aligned-table writer for benchmark harness output.
//
// Every figure/table harness prints (a) an aligned human-readable table that
// mirrors the paper's presentation and (b) machine-readable CSV, so results
// can be re-plotted.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace lrs {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Convenience: formats doubles with `precision` digits after the point.
  void add_row(const std::vector<double>& row, int precision = 2);

  /// Space-aligned rendering for terminals.
  void print(std::ostream& os) const;
  /// RFC-4180-ish CSV (fields containing commas/quotes get quoted).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& row_data() const {
    return rows_;
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double compactly ("12", "0.35", "1.2e+06"-free).
std::string format_num(double v, int precision = 2);

}  // namespace lrs
