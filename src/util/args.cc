#include "util/args.h"

#include <cstdlib>

namespace lrs {

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--name value" unless the next token is another flag (then boolean).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";
    }
  }
}

bool Args::has(const std::string& name) const {
  queried_[name] = true;
  return values_.count(name) > 0;
}

std::string Args::get(const std::string& name, const std::string& def) const {
  queried_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

long Args::get_int(const std::string& name, long def) {
  queried_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    errors_.push_back("--" + name + " expects an integer, got '" +
                      it->second + "'");
    return def;
  }
  return v;
}

double Args::get_double(const std::string& name, double def) {
  queried_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    errors_.push_back("--" + name + " expects a number, got '" + it->second +
                      "'");
    return def;
  }
  return v;
}

bool Args::get_bool(const std::string& name, bool def) const {
  queried_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second != "false" && it->second != "0" && it->second != "no";
}

std::vector<std::string> Args::unknown() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : values_) {
    if (!queried_.count(k)) out.push_back("--" + k);
  }
  return out;
}

}  // namespace lrs
