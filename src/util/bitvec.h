// Fixed-length dynamic bit vector.
//
// Used for SNACK request bitmaps: bit j set means "packet j is requested"
// (receiver does not have it yet). Provides the set algebra the TX-state
// schedulers need (union, intersection, popcount, column scans).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/types.h"

namespace lrs {

class BitVec {
 public:
  BitVec() = default;
  /// All bits cleared.
  explicit BitVec(std::size_t size);
  /// All bits set to `value`.
  BitVec(std::size_t size, bool value);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // get/set are inline: TX schedulers scan request bitmaps bit-by-bit in
  // the simulation hot path.
  bool get(std::size_t i) const {
    LRS_CHECK(i < size_);
    return (words_[word_index(i)] & bit_mask(i)) != 0;
  }
  void set(std::size_t i, bool value = true) {
    LRS_CHECK(i < size_);
    if (value)
      words_[word_index(i)] |= bit_mask(i);
    else
      words_[word_index(i)] &= ~bit_mask(i);
  }
  void clear(std::size_t i) { set(i, false); }
  void set_all();
  void clear_all();

  /// Number of set bits.
  std::size_t count() const;
  bool any() const { return count() > 0; }
  bool none() const { return count() == 0; }

  /// In-place union / intersection / subtraction; sizes must match.
  BitVec& operator|=(const BitVec& other);
  BitVec& operator&=(const BitVec& other);
  /// Clears every bit that is set in `other`.
  BitVec& subtract(const BitVec& other);
  /// Symmetric difference (GF(2) addition).
  BitVec& operator^=(const BitVec& other);

  friend BitVec operator|(BitVec a, const BitVec& b) { return a |= b; }
  friend BitVec operator&(BitVec a, const BitVec& b) { return a &= b; }

  bool operator==(const BitVec& other) const;

  /// Index of the first set bit at or after `from` (no wrap), if any.
  std::optional<std::size_t> first_set(std::size_t from = 0) const;
  /// Index of the first set bit scanning cyclically starting at `from`.
  std::optional<std::size_t> first_set_cyclic(std::size_t from) const;

  /// Serialized length in bytes (ceil(size/8)); SNACK byte accounting uses it.
  std::size_t byte_size() const { return (size_ + 7) / 8; }
  /// Packs bits little-endian within bytes.
  Bytes to_bytes() const;
  /// Inverse of to_bytes(); `size` restores the exact bit length.
  static BitVec from_bytes(ByteView bytes, std::size_t size);

  /// "10110…" debugging aid.
  std::string to_string() const;

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;

  static std::size_t word_index(std::size_t i) { return i / 64; }
  static std::uint64_t bit_mask(std::size_t i) {
    return std::uint64_t{1} << (i % 64);
  }
  void trim_tail();
};

}  // namespace lrs
