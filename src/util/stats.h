// Streaming statistics used by the benchmark harnesses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace lrs {

/// Welford-style streaming summary: count/mean/stddev/min/max.
class Summary {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return count_ ? mean_ * static_cast<double>(count_) : 0.0; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// A named bag of monotonically increasing counters.
class CounterSet {
 public:
  void add(const std::string& name, std::uint64_t delta = 1);
  std::uint64_t get(const std::string& name) const;
  const std::map<std::string, std::uint64_t>& all() const { return counters_; }
  void merge(const CounterSet& other);
  void reset();

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace lrs
