#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace lrs {

void Summary::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Summary::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

void CounterSet::add(const std::string& name, std::uint64_t delta) {
  counters_[name] += delta;
}

std::uint64_t CounterSet::get(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void CounterSet::merge(const CounterSet& other) {
  for (const auto& [k, v] : other.counters_) counters_[k] += v;
}

void CounterSet::reset() { counters_.clear(); }

}  // namespace lrs
