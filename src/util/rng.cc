#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace lrs {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  LRS_CHECK(bound > 0);
  // Rejection sampling: discard values in the biased tail.
  const std::uint64_t limit = (~std::uint64_t{0}) - (~std::uint64_t{0}) % bound;
  std::uint64_t v;
  do {
    v = next();
  } while (v >= limit);
  return v % bound;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  LRS_CHECK(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // may wrap to 0 for full range
  if (span == 0) return static_cast<std::int64_t>(next());
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform01() {
  // 53 random mantissa bits.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::uint64_t Rng::geometric(double p) {
  LRS_CHECK(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 1;
  const double u = 1.0 - uniform01();  // in (0, 1]
  return 1 + static_cast<std::uint64_t>(std::floor(std::log(u) /
                                                   std::log(1.0 - p)));
}

Rng Rng::fork() { return Rng(next()); }

}  // namespace lrs
