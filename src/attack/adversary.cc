#include "attack/adversary.h"

#include "crypto/puzzle.h"
#include "crypto/wots.h"

namespace lrs::attack {

InjectorNode::InjectorNode(sim::Env& env, InjectorConfig config)
    : sim::Node(env), cfg_(config) {}

void InjectorNode::on_start() {
  schedule_next(cfg_.start_delay + cfg_.period);
}

void InjectorNode::schedule_next(sim::SimTime delay) {
  // Never arm an injection that would fire past the deadline: the event
  // queue only drains when no event is pending, so a stray no-op event
  // past stop_after would keep short simulations alive for nothing.
  if (cfg_.stop_after > 0 && env().now() + delay > cfg_.stop_after) return;
  env().schedule(delay, [this] { inject(); });
}

void InjectorNode::inject() {
  if (cfg_.forge_data) {
    proto::DataPacket d;
    d.version = cfg_.version;
    d.page = static_cast<std::uint32_t>(env().rng().uniform(cfg_.data_pages));
    d.index =
        static_cast<std::uint32_t>(env().rng().uniform(cfg_.data_indices));
    d.payload.resize(cfg_.data_payload_size);
    for (auto& b : d.payload)
      b = static_cast<std::uint8_t>(env().rng().uniform(256));
    env().broadcast(sim::PacketClass::kData, d.serialize());
    ++injected_;
  }

  if (cfg_.forge_signatures) {
    proto::SignaturePacket sig;
    sig.meta.version = cfg_.version;
    sig.meta.content_pages = 4;
    sig.meta.image_size = 1;
    for (auto& b : sig.root)
      b = static_cast<std::uint8_t>(env().rng().uniform(256));
    sig.signature.resize(crypto::WotsSignature::kSerializedSize + 64, 0);
    if (cfg_.solve_puzzles) {
      sig.puzzle =
          crypto::solve_puzzle(view(sig.signed_message()),
                               cfg_.puzzle_strength);
    } else {
      sig.puzzle.strength = cfg_.puzzle_strength;
      sig.puzzle.solution = env().rng().next();
    }
    env().broadcast(sim::PacketClass::kSignature, sig.serialize());
    ++injected_;
  }

  schedule_next(cfg_.period);
}

DenialOfReceiptNode::DenialOfReceiptNode(sim::Env& env,
                                         DenialOfReceiptConfig config)
    : sim::Node(env), cfg_(config) {}

void DenialOfReceiptNode::on_start() {
  env().schedule(cfg_.period, [this] { send_snack(); });
}

void DenialOfReceiptNode::send_snack() {
  proto::Snack s;
  s.version = cfg_.version;
  s.sender = cfg_.rotate_sender_ids
                 ? static_cast<NodeId>(1000 + snacks_sent_)
                 : env().id();
  s.target = cfg_.victim;
  s.page = cfg_.page;
  s.requested = BitVec(cfg_.packets_in_page, true);
  env().broadcast(sim::PacketClass::kSnack,
                  s.serialize(view(cfg_.cluster_key)));
  ++snacks_sent_;
  env().schedule(cfg_.period, [this] { send_snack(); });
}

}  // namespace lrs::attack
