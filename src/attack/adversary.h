// Adversary nodes for the security experiments (paper §III, §IV-E).
//
// The injector mounts the attacks the Seluge line of work defends against:
//   * bogus data packets — random payloads with well-formed headers, aimed
//     at polluting receiver buffers / forcing wasted verification;
//   * forged signature packets — without a valid puzzle they must be
//     rejected by one cheap hash, never reaching signature verification;
//   * (optionally) puzzle-solved forged signatures — the adversary spends
//     2^strength hashes per packet and still fails signature verification;
//   * denial-of-receipt — a *compromised* node (it holds the cluster key)
//     keeps SNACKing all-ones bitmaps to bleed a server's battery; the
//     engine's per-neighbor budget (EngineConfig::dor_mitigation) caps it.
#pragma once

#include <cstdint>

#include "proto/packet.h"
#include "proto/params.h"
#include "sim/simulator.h"

namespace lrs::attack {

struct InjectorConfig {
  Version version = 1;
  sim::SimTime period = 20 * sim::kMillisecond;  // injection interval
  sim::SimTime start_delay = 0;
  sim::SimTime stop_after = 0;  // 0 = never stop

  bool forge_data = true;
  std::uint32_t data_pages = 4;       // page numbers to spray
  std::uint32_t data_indices = 48;    // index range to spray
  std::size_t data_payload_size = 64;

  bool forge_signatures = false;
  /// Spend the work to solve the puzzle on forged signature packets
  /// (models a well-resourced attacker; receivers then waste a signature
  /// verification instead of one hash).
  bool solve_puzzles = false;
  std::uint8_t puzzle_strength = 12;
};

/// Broadcasts forged traffic on a schedule. Holds no keys.
class InjectorNode final : public sim::Node {
 public:
  InjectorNode(sim::Env& env, InjectorConfig config);

  void on_start() override;
  void on_receive(ByteView) override {}

  std::uint64_t injected() const { return injected_; }

 private:
  void inject();
  /// Arms the next injection, unless it would fire after `stop_after`.
  void schedule_next(sim::SimTime delay);

  InjectorConfig cfg_;
  std::uint64_t injected_ = 0;
};

struct DenialOfReceiptConfig {
  Version version = 1;
  NodeId victim = 0;
  std::uint32_t page = 0;
  std::size_t packets_in_page = 48;
  sim::SimTime period = 100 * sim::kMillisecond;
  Bytes cluster_key;  // compromised node: it has the key

  /// Claim a fresh fake sender ID on every SNACK. Under a shared cluster
  /// key this defeats the per-neighbor DoR budget (the MAC does not bind
  /// the sender); under LEAP-style per-source keys the forged identities
  /// fail verification, because the attacker only holds ITS OWN key.
  bool rotate_sender_ids = false;
};

/// A compromised node that denies every receipt: it SNACKs an all-ones
/// bitmap at the victim forever, regardless of what it receives.
class DenialOfReceiptNode final : public sim::Node {
 public:
  DenialOfReceiptNode(sim::Env& env, DenialOfReceiptConfig config);

  void on_start() override;
  void on_receive(ByteView) override {}

  std::uint64_t snacks_sent() const { return snacks_sent_; }

 private:
  void send_snack();

  DenialOfReceiptConfig cfg_;
  std::uint64_t snacks_sent_ = 0;
};

}  // namespace lrs::attack
