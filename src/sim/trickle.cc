#include "sim/trickle.h"

#include <algorithm>

#include "util/check.h"

namespace lrs::sim {

Trickle::Trickle(TrickleParams params, Rng* rng)
    : params_(params), rng_(rng), tau_(params.tau_low) {
  LRS_CHECK(params.tau_low > 0 && params.tau_low <= params.tau_high);
  LRS_CHECK(rng != nullptr);
}

void Trickle::reset(SimTime now) {
  tau_ = params_.tau_low;
  interval_start_ = now;
  heard_ = 0;
  pick_fire_point();
}

void Trickle::heard_consistent() { ++heard_; }

void Trickle::next_interval(SimTime now) {
  tau_ = std::min(tau_ * 2, params_.tau_high);
  interval_start_ = now;
  heard_ = 0;
  pick_fire_point();
}

void Trickle::pick_fire_point() {
  // Uniform in [tau/2, tau) after the interval start.
  const SimTime half = tau_ / 2;
  const SimTime jitter =
      half > 0 ? static_cast<SimTime>(
                     rng_->uniform(static_cast<std::uint64_t>(half)))
               : 0;
  fire_time_ = interval_start_ + half + jitter;
}

}  // namespace lrs::sim
