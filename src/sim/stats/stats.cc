#include "sim/stats/stats.h"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

namespace lrs::stats {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

using SteadyClock = std::chrono::steady_clock;

/// Cycle-counter calibration anchor, (re-)taken by set_enabled(true) and
/// reset_values(): converting timer cycles to ns divides by the mean
/// cycles/ns observed between the anchor and the export.
struct Anchor {
  std::uint64_t cycles = 0;
  SteadyClock::time_point steady{};
};

std::mutex g_anchor_mu;
Anchor g_anchor;

void take_anchor() {
  std::lock_guard<std::mutex> lock(g_anchor_mu);
  g_anchor.cycles = now_cycles();
  g_anchor.steady = SteadyClock::now();
}

Anchor anchor() {
  std::lock_guard<std::mutex> lock(g_anchor_mu);
  return g_anchor;
}

struct Calibration {
  double cycles_per_ns = 1.0;
  std::uint64_t wall_ns = 0;
};

Calibration calibrate() {
  const Anchor a = anchor();
  Calibration c;
  if (a.steady == SteadyClock::time_point{}) return c;  // never enabled
  const auto dt = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      SteadyClock::now() - a.steady)
                      .count();
  c.wall_ns = dt > 0 ? static_cast<std::uint64_t>(dt) : 0;
  const std::uint64_t dc = now_cycles() - a.cycles;
  if (dt > 0 && dc > 0) {
    c.cycles_per_ns =
        static_cast<double>(dc) / static_cast<double>(dt);
  }
  return c;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    if (ch == '"' || ch == '\\') {
      out.push_back('\\');
      out.push_back(ch);
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", ch);
      out += buf;
    } else {
      out.push_back(ch);
    }
  }
  return out;
}

/// Current resident set in KiB from /proc/self/status (0 off-Linux).
std::uint64_t current_rss_kib() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return std::strtoull(line.c_str() + 6, nullptr, 10);
    }
  }
  return 0;
}

}  // namespace

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

struct Registry::Impl {
  mutable std::mutex mu;
  // unique_ptr slots: stable addresses for the cached call-site references,
  // std::less<> for allocation-free string_view lookup on the warm path.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
  struct TimerSlot {
    std::unique_ptr<Timer> timer = std::make_unique<Timer>();
    bool top_level = false;
    bool deterministic = true;
  };
  std::map<std::string, TimerSlot, std::less<>> timers;
};

Registry& Registry::instance() {
  static Registry r;
  return r;
}

Registry::Impl& Registry::impl() const {
  static Impl impl;
  return impl;
}

Counter& Registry::counter(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.counters.find(name);
  if (it == im.counters.end()) {
    it = im.counters.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.gauges.find(name);
  if (it == im.gauges.end()) {
    it = im.gauges.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.histograms.find(name);
  if (it == im.histograms.end()) {
    it = im.histograms
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

Timer& Registry::timer(std::string_view name, bool top_level,
                       bool deterministic) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.timers.find(name);
  if (it == im.timers.end()) {
    it = im.timers.emplace(std::string(name), Impl::TimerSlot{}).first;
    it->second.top_level = top_level;
    it->second.deterministic = deterministic;
  }
  return *it->second.timer;
}

void Registry::reset_values() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  for (auto& [name, c] : im.counters) c->reset();
  for (auto& [name, g] : im.gauges) g->reset();
  for (auto& [name, h] : im.histograms) h->reset();
  for (auto& [name, t] : im.timers) t.timer->reset();
  take_anchor();
}

std::string Registry::deterministic_json(const std::string& indent) const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::ostringstream out;
  const std::string in1 = indent + "  ";
  const std::string in2 = in1 + "  ";
  const std::string in3 = in2 + "  ";

  // Counters and timer call counts share one sorted namespace: the timer
  // "x.y" contributes the deterministic counter "x.y.calls" — unless it
  // was registered deterministic=false (its calls stay timing-only).
  std::map<std::string, std::uint64_t> flat;
  for (const auto& [name, c] : im.counters) flat[name] = c->value();
  for (const auto& [name, t] : im.timers) {
    if (t.deterministic) flat[name + ".calls"] = t.timer->calls();
  }

  out << "{\n" << in1 << "\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : flat) {
    out << (first ? "\n" : ",\n")
        << in2 << "\"" << json_escape(name) << "\": " << value;
    first = false;
  }
  out << (first ? "" : "\n" + in1) << "},\n";

  out << in1 << "\"histograms\": {";
  first = true;
  for (const auto& [name, h] : im.histograms) {
    out << (first ? "\n" : ",\n") << in2 << "\"" << json_escape(name)
        << "\": {\n";
    out << in3 << "\"count\": " << h->count() << ",\n";
    out << in3 << "\"sum\": " << h->sum() << ",\n";
    out << in3 << "\"min\": " << h->min() << ",\n";
    out << in3 << "\"max\": " << h->max() << ",\n";
    out << in3 << "\"buckets\": [";
    bool bfirst = true;
    for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
      const std::uint64_t n = h->bucket_count_at(i);
      if (n == 0) continue;
      out << (bfirst ? "" : ", ") << "[" << Histogram::bucket_lower_bound(i)
          << ", " << n << "]";
      bfirst = false;
    }
    out << "]\n" << in2 << "}";
    first = false;
  }
  out << (first ? "" : "\n" + in1) << "}\n" << indent << "}";
  return out.str();
}

std::string Registry::timing_json(const std::string& indent) const {
  const Calibration cal = calibrate();
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::ostringstream out;
  const std::string in1 = indent + "  ";
  const std::string in2 = in1 + "  ";
  const std::string in3 = in2 + "  ";

  const auto to_ns = [&cal](std::uint64_t cycles) {
    return static_cast<std::uint64_t>(static_cast<double>(cycles) /
                                      cal.cycles_per_ns);
  };
  std::uint64_t attributed_ns = 0;
  for (const auto& [name, t] : im.timers) {
    if (t.top_level) attributed_ns += to_ns(t.timer->cycles());
  }

  out << "{\n";
  out << in1 << "\"wall_ns\": " << cal.wall_ns << ",\n";
  char hz[64];
  std::snprintf(hz, sizeof hz, "%.0f", cal.cycles_per_ns * 1e9);
  out << in1 << "\"tsc_hz\": " << hz << ",\n";
  out << in1 << "\"attributed_ns\": " << attributed_ns << ",\n";
  char frac[64];
  std::snprintf(frac, sizeof frac, "%.4f",
                cal.wall_ns > 0 ? static_cast<double>(attributed_ns) /
                                      static_cast<double>(cal.wall_ns)
                                : 0.0);
  out << in1 << "\"attributed_frac\": " << frac << ",\n";

  out << in1 << "\"scopes\": {";
  bool first = true;
  for (const auto& [name, t] : im.timers) {
    out << (first ? "\n" : ",\n") << in2 << "\"" << json_escape(name)
        << "\": {\n";
    out << in3 << "\"calls\": " << t.timer->calls() << ",\n";
    out << in3 << "\"ns\": " << to_ns(t.timer->cycles()) << ",\n";
    out << in3 << "\"top_level\": " << (t.top_level ? "true" : "false")
        << ",\n";
    out << in3 << "\"deterministic\": " << (t.deterministic ? "true" : "false")
        << "\n" << in2 << "}";
    first = false;
  }
  out << (first ? "" : "\n" + in1) << "},\n";

  out << in1 << "\"gauges\": {";
  first = true;
  for (const auto& [name, g] : im.gauges) {
    out << (first ? "\n" : ",\n")
        << in2 << "\"" << json_escape(name) << "\": " << g->value();
    first = false;
  }
  out << (first ? "" : "\n" + in1) << "}\n" << indent << "}";
  return out.str();
}

void set_enabled(bool on) {
  const bool was = detail::g_enabled.exchange(on, std::memory_order_relaxed);
  if (on && !was) take_anchor();
}

std::string metrics_json(const std::string& provenance_json) {
  Registry& r = Registry::instance();
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": \"lrs-metrics-v1\",\n";
  out << "  \"enabled\": " << (enabled() ? "true" : "false") << ",\n";
  out << "  \"provenance\": "
      << (provenance_json.empty() ? "null" : provenance_json) << ",\n";
  out << "  \"deterministic\": " << r.deterministic_json("  ") << ",\n";
  out << "  \"timing\": " << r.timing_json("  ") << "\n";
  out << "}\n";
  return out.str();
}

bool write_metrics_json(const std::string& path,
                        const std::string& provenance_json) {
  stop_heartbeat();
  const std::string doc = metrics_json(provenance_json);
  if (path == "-") {
    std::cout << doc;
    return true;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "warning: cannot write " << path << "\n";
    return false;
  }
  out << doc;
  return true;
}

namespace {

struct Heartbeat {
  std::mutex mu;
  std::condition_variable cv;
  std::thread thread;
  bool stop = false;
  bool running = false;
};

Heartbeat& heartbeat() {
  static Heartbeat hb;
  return hb;
}

void heartbeat_loop(double period_s) {
  Heartbeat& hb = heartbeat();
  Counter& pops = Registry::instance().counter("sim.queue.pop");
  const auto start = SteadyClock::now();
  std::uint64_t last_pops = pops.value();
  auto last = start;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(hb.mu);
      hb.cv.wait_for(lock,
                     std::chrono::duration<double>(period_s),
                     [&hb] { return hb.stop; });
      if (hb.stop) return;
    }
    const auto now = SteadyClock::now();
    const double t = std::chrono::duration<double>(now - start).count();
    const double dt = std::chrono::duration<double>(now - last).count();
    const std::uint64_t p = pops.value();
    const double rate =
        dt > 0 ? static_cast<double>(p - last_pops) / dt : 0.0;
    std::fprintf(stderr,
                 "[metrics] t=%.1fs events=%llu (+%.0f/s) rss=%.1fMiB\n", t,
                 static_cast<unsigned long long>(p), rate,
                 static_cast<double>(current_rss_kib()) / 1024.0);
    last_pops = p;
    last = now;
  }
}

}  // namespace

void start_heartbeat(double period_s) {
  if (period_s <= 0) return;
  Heartbeat& hb = heartbeat();
  std::lock_guard<std::mutex> lock(hb.mu);
  if (hb.running) return;
  hb.stop = false;
  hb.running = true;
  hb.thread = std::thread(heartbeat_loop, period_s);
}

void stop_heartbeat() {
  Heartbeat& hb = heartbeat();
  {
    std::lock_guard<std::mutex> lock(hb.mu);
    if (!hb.running) return;
    hb.stop = true;
  }
  hb.cv.notify_all();
  hb.thread.join();
  {
    std::lock_guard<std::mutex> lock(hb.mu);
    hb.running = false;
  }
}

}  // namespace lrs::stats
