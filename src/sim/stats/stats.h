// Process-wide metrics & profiling registry: named monotonic counters,
// gauges, HDR-style log-bucketed histograms and TSC cycle-timer scopes,
// attributing hot-path work to subsystems (event queue, crypto, erasure,
// protocol engine, island executor).
//
// Contract (mirrors the trace layer's, docs/observability.md):
//   * Disabled (the default) every record call is a relaxed flag load and
//     a predicted-not-taken branch — no stores, no locks, no allocation.
//   * Enabled, the hot path is allocation-free: metrics live in
//     registry-owned fixed-size slots created on first use
//     (tests/test_alloc_guard.cc guards both properties).
//   * Deterministic quantities (counters, histogram contents, timer call
//     counts) are commutative aggregates of per-trial work, so their JSON
//     export is byte-identical for any LRS_JOBS worker count. Timing
//     quantities (cycle totals, gauges, wall clock) are nondeterministic
//     and live in a strictly separate "timing" section of the export.
//     A timer registered deterministic=false opts its call count out of
//     that guarantee (its scope sits beneath a schedule-dependent cache).
//
// Naming: dot-separated "<subsystem>.<unit>[.<detail>]", e.g.
// "sim.queue.schedule", "crypto.sha.batch", "erasure.lrc.local_repairs",
// "core.run_cell". Timer scopes registered top-level must not nest inside
// one another: their summed time is the export's attributed_ns.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#else
#include <chrono>
#endif

namespace lrs::stats {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Global metrics switch. Off by default; harnesses enable it when
/// --metrics/--metrics-heartbeat is given. Enabling (re-)anchors the
/// cycle-counter calibration used to convert timer cycles to ns.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

/// Monotonic cycle counter: raw TSC on x86-64 (invariant-TSC assumed, as
/// on every deployment target), steady_clock ns elsewhere. Calibrated to
/// ns at export time via the anchor taken by set_enabled().
inline std::uint64_t now_cycles() {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

/// Monotonic event counter (deterministic section). Cache-line sized so
/// hot counters hammered from the island worker pool do not false-share.
class alignas(64) Counter {
 public:
  void add(std::uint64_t delta = 1) {
    if (!enabled()) return;
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-writer-wins instantaneous value (timing section: the final value
/// depends on worker scheduling, so it is never exported as deterministic).
class alignas(64) Gauge {
 public:
  void set(std::int64_t v) {
    if (!enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) {
    if (!enabled()) return;
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// HDR-style log-bucketed histogram over the full u64 range: values below
/// 16 are exact, every power-of-two span above is split into 16
/// sub-buckets (kSubBucketBits = 4), giving <= 6.25% relative bucket width
/// in 976 fixed slots. Records are relaxed atomics into pre-sized arrays —
/// no allocation, merge-commutative, hence deterministic under LRS_JOBS.
class Histogram {
 public:
  static constexpr int kSubBucketBits = 4;
  static constexpr std::size_t kSubBuckets = 1u << kSubBucketBits;  // 16
  // Exact buckets [0,16) + 60 coarse spans (msb 4..63) x 16 sub-buckets.
  static constexpr std::size_t kBucketCount =
      kSubBuckets + (64 - kSubBucketBits) * kSubBuckets;  // 976

  /// 0 -> 0, 1 -> 1, ..., 15 -> 15, 16..31 map 1:1, then 16 sub-buckets
  /// per power of two; the u64 maximum lands in bucket 975.
  static constexpr std::size_t bucket_index(std::uint64_t v) {
    if (v < kSubBuckets) return static_cast<std::size_t>(v);
    const int msb = 63 - std::countl_zero(v);  // >= kSubBucketBits
    const int shift = msb - kSubBucketBits;
    return static_cast<std::size_t>(msb - kSubBucketBits + 1) * kSubBuckets +
           static_cast<std::size_t>((v >> shift) & (kSubBuckets - 1));
  }

  /// Smallest value mapping to bucket `index` (inverse of bucket_index on
  /// bucket boundaries); values v in [lower(i), lower(i+1)) share bucket i.
  static constexpr std::uint64_t bucket_lower_bound(std::size_t index) {
    if (index < kSubBuckets) return index;
    const std::size_t span = index / kSubBuckets;  // >= 1
    const std::size_t sub = index % kSubBuckets;
    return static_cast<std::uint64_t>(kSubBuckets + sub) << (span - 1);
  }

  void record(std::uint64_t v) {
    if (!enabled()) return;
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    atomic_min(min_, v);
    atomic_max(max_, v);
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// 0 when empty.
  std::uint64_t min() const {
    return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
  }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  std::uint64_t bucket_count_at(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset();

 private:
  static void atomic_min(std::atomic<std::uint64_t>& a, std::uint64_t v) {
    std::uint64_t cur = a.load(std::memory_order_relaxed);
    while (v < cur &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void atomic_max(std::atomic<std::uint64_t>& a, std::uint64_t v) {
    std::uint64_t cur = a.load(std::memory_order_relaxed);
    while (v > cur &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::uint64_t> buckets_[kBucketCount]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

/// Accumulated cycle time of a named scope. Call counts are deterministic
/// (exported with the counters); cycle totals are timing-only.
class alignas(64) Timer {
 public:
  void record(std::uint64_t cycles) {
    calls_.fetch_add(1, std::memory_order_relaxed);
    cycles_.fetch_add(cycles, std::memory_order_relaxed);
  }
  std::uint64_t calls() const {
    return calls_.load(std::memory_order_relaxed);
  }
  std::uint64_t cycles() const {
    return cycles_.load(std::memory_order_relaxed);
  }
  void reset() {
    calls_.store(0, std::memory_order_relaxed);
    cycles_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> calls_{0};
  std::atomic<std::uint64_t> cycles_{0};
};

/// RAII scope attributing elapsed cycles to a Timer. The enabled check
/// happens once at construction; a scope started enabled records even if
/// the flag flips mid-scope (harness enable/disable is not mid-run).
class TimerScope {
 public:
  explicit TimerScope(Timer& t)
      : timer_(enabled() ? &t : nullptr),
        start_(timer_ != nullptr ? now_cycles() : 0) {}
  ~TimerScope() {
    if (timer_ != nullptr) timer_->record(now_cycles() - start_);
  }
  TimerScope(const TimerScope&) = delete;
  TimerScope& operator=(const TimerScope&) = delete;

 private:
  Timer* timer_;
  std::uint64_t start_;
};

/// Process-wide find-or-create registry. Lookup takes a mutex and may
/// allocate (do it once, outside the hot loop, caching the reference —
/// metric slots never move or disappear); recording through the returned
/// references is lock- and allocation-free.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);
  /// `top_level` marks a scope whose time counts toward the export's
  /// attributed_ns (top-level scopes must not nest). `deterministic=false`
  /// keeps the timer's call count out of the deterministic section: use it
  /// for scopes beneath schedule-dependent caches (e.g. the signature
  /// verification memo in crypto/wots.cc absorbs a worker-interleaving-
  /// dependent share of Sha256::hash calls). Both flags stick from the
  /// first registration.
  Timer& timer(std::string_view name, bool top_level = false,
               bool deterministic = true);

  /// Zeroes every registered metric and re-anchors the cycle calibration;
  /// registrations (names, addresses) survive.
  void reset_values();

  /// The deterministic section: counters (including "<timer>.calls") and
  /// histograms, keys sorted, byte-identical for any LRS_JOBS.
  std::string deterministic_json(const std::string& indent) const;
  /// The timing section: wall clock since the calibration anchor, derived
  /// TSC frequency, per-scope ns (attributed_ns/attributed_frac over the
  /// top-level scopes) and gauges. Nondeterministic by nature.
  std::string timing_json(const std::string& indent) const;

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

/// Prefix-scope handle over the registry: every metric created through a
/// Scope("fleet.t03") is named "fleet.t03.<name>", so concurrent components
/// of one process — fleet tenants above all — get disjoint registry slots
/// instead of aliasing each other's counters, with zero export changes:
/// the deterministic section sorts by full name, so one scope's metrics
/// group into an adjacent block per tenant. Scopes are cheap name builders;
/// the usual discipline still applies (look metrics up once, cache the
/// returned references, record through them lock-free).
class Scope {
 public:
  /// `prefix` without the trailing dot ("fleet.t03").
  explicit Scope(std::string_view prefix)
      : prefix_(std::string(prefix) + ".") {}

  Counter& counter(std::string_view name) const {
    return Registry::instance().counter(full(name));
  }
  Gauge& gauge(std::string_view name) const {
    return Registry::instance().gauge(full(name));
  }
  Histogram& histogram(std::string_view name) const {
    return Registry::instance().histogram(full(name));
  }
  Timer& timer(std::string_view name, bool top_level = false,
               bool deterministic = true) const {
    return Registry::instance().timer(full(name), top_level, deterministic);
  }

  /// Nested scope: Scope("fleet").sub("t03") == Scope("fleet.t03").
  Scope sub(std::string_view name) const { return Scope(full(name)); }

  /// The full prefix including the trailing dot ("fleet.t03.").
  const std::string& prefix() const { return prefix_; }

 private:
  std::string full(std::string_view name) const {
    std::string s;
    s.reserve(prefix_.size() + name.size());
    s += prefix_;
    s += name;
    return s;
  }
  std::string prefix_;  // always ends with '.'
};

/// Full export document (schema "lrs-metrics-v1"): schema tag, caller
/// provenance (pass "null" when absent), deterministic + timing sections.
std::string metrics_json(const std::string& provenance_json);

/// Writes metrics_json to `path` ("-" = stdout). Returns false (with a
/// stderr warning) when the file cannot be written.
bool write_metrics_json(const std::string& path,
                        const std::string& provenance_json);

/// Background heartbeat for long runs: every `period_s` seconds prints
/// one stderr line with wall time, executed-event count and delta rate
/// (counter "sim.queue.pop") and current RSS. Idempotent start; export
/// and process exit stop it.
void start_heartbeat(double period_s);
void stop_heartbeat();

}  // namespace lrs::stats
