#include "sim/simulator.h"

#include <algorithm>

#include "util/check.h"
#include "util/log.h"

namespace lrs::sim {

namespace {
/// "No transmission" sentinel for RadioCard::rx_tx pool indices.
constexpr std::uint32_t kNoTx = 0xffffffffu;
}  // namespace

/// One in-flight frame, slab-pooled (see tx_pool_). Per-receiver corruption
/// flags are tracked for every neighbor that started locked onto this frame.
struct Simulator::Transmission {
  NodeId sender = 0;
  PacketClass cls = PacketClass::kData;
  Bytes frame;
  // corrupted[i] corresponds to topology.neighbors(sender)[i].
  std::vector<std::uint8_t> corrupted;
};

/// The 16-byte hot radio state the carrier/collision loops walk — four
/// neighbors per cache line.
struct Simulator::RadioCard {
  // Frame this node's receiver is currently locked onto: pool index of the
  // transmission plus this node's slot in its corrupted vector. Always a
  // live transmission — every reference is cleared before the end event
  // releases the slot.
  std::uint32_t rx_tx = kNoTx;
  std::uint32_t rx_slot = 0;
  // Number of active transmissions whose carrier reaches this node.
  std::int32_t carrier_count = 0;
  std::uint8_t transmitting = 0;
  std::uint8_t attempt_scheduled = 0;
};

/// Cold per-node MAC state, touched only when this node itself queues or
/// sends frames.
struct Simulator::MacState {
  // MAC queue: frames waiting for the channel. A vector-backed FIFO (pop =
  // advance tx_head) whose storage is recycled once drained, so steady-
  // state queueing never reallocates.
  std::vector<std::pair<PacketClass, Bytes>> tx_queue;
  std::size_t tx_head = 0;
  SimTime backoff_window = 0;

  std::size_t queued() const { return tx_queue.size() - tx_head; }
};

class Simulator::SimEnv final : public Env {
 public:
  SimEnv(Simulator* sim, NodeId id) : sim_(sim), id_(id) {}

  SimTime now() const override { return sim_->queue_.now(); }
  NodeId id() const override { return id_; }
  SimObserver* observer() const override { return sim_->observer_; }

  void broadcast(PacketClass cls, Bytes frame) override {
    sim_->enqueue_frame(id_, cls, std::move(frame));
  }

  EventToken schedule(SimTime delay, EventFn fn) override {
    LRS_CHECK(delay >= 0);
    return sim_->queue_.schedule_at(now() + delay, std::move(fn));
  }

  void cancel(EventToken token) override { sim_->queue_.cancel(token); }

  std::size_t pending_tx() const override {
    return sim_->macs_[id_].queued() +
           (sim_->cards_[id_].transmitting ? 1 : 0);
  }

  Rng& rng() override { return sim_->rngs_[id_]; }
  NodeMetrics& metrics() override { return sim_->metrics_->node(id_); }

  void notify_complete() override {
    if (sim_->metrics_->record_completion(id_, now()) && sim_->observer_) {
      sim_->observer_->on_node_complete(now(), id_);
    }
  }

  std::uint64_t delivery_serial() const override {
    return sim_->delivery_serial_;
  }

 private:
  Simulator* sim_;
  NodeId id_;
};

Simulator::Simulator(Topology topology, std::unique_ptr<LossModel> loss,
                     RadioParams radio, std::uint64_t seed)
    : Simulator(std::make_shared<const Topology>(std::move(topology)),
                std::move(loss), radio, seed) {}

Simulator::Simulator(std::shared_ptr<const Topology> topology,
                     std::unique_ptr<LossModel> loss, RadioParams radio,
                     std::uint64_t seed, std::vector<NodeId> members)
    : topology_(std::move(topology)),
      loss_(std::move(loss)),
      radio_(radio),
      rng_(seed),
      metrics_(std::make_unique<Metrics>(topology_->size())),
      members_(std::move(members)) {
  LRS_CHECK(loss_ != nullptr);
  const std::size_t n = topology_->size();
  cards_.resize(n);
  macs_.resize(n);
  // Rng streams are forked for every topology position in id order even in
  // island mode, so a member node's stream does not depend on how the
  // topology was partitioned.
  rngs_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) rngs_.push_back(rng_.fork());
  envs_.resize(n);
  nodes_.resize(n);
  if (members_.empty()) {
    members_.resize(n);
    for (std::size_t i = 0; i < n; ++i) members_[i] = static_cast<NodeId>(i);
  } else {
    LRS_CHECK(std::is_sorted(members_.begin(), members_.end()));
    is_member_.assign(n, 0);
    for (NodeId m : members_) {
      LRS_CHECK(m < n);
      is_member_[m] = 1;
    }
  }
}

Simulator::~Simulator() = default;

void Simulator::set_fault_model(std::unique_ptr<FaultModel> fault) {
  LRS_CHECK_MSG(!started_, "fault model must be installed before run()");
  fault_ = std::move(fault);
}

void Simulator::add_observer(SimObserver* observer) {
  if (observer == nullptr) return;
  fanout_.add(observer);
  // One observer dispatches directly; two or more go through the fan-out.
  observer_ = fanout_.sole() != nullptr ? fanout_.sole() : &fanout_;
}

NodeId Simulator::next_node_id() const {
  LRS_CHECK_MSG(added_ < members_.size(),
                "more nodes than simulated topology positions");
  return members_[added_];
}

Env& Simulator::make_env(NodeId id) {
  envs_[id] = std::make_unique<SimEnv>(this, id);
  return *envs_[id];
}

void Simulator::attach(NodeId id, std::unique_ptr<Node> node) {
  LRS_CHECK(!started_);
  nodes_[id] = std::move(node);
  ++added_;
}

void Simulator::start_if_needed() {
  if (started_) return;
  started_ = true;
  LRS_CHECK_MSG(added_ == members_.size(),
                "every simulated topology position needs a node before run()");
  for (NodeId id : members_) {
    queue_.schedule_at(0, [n = nodes_[id].get()] { n->on_start(); });
  }
  if (fault_) {
    for (const auto& e : fault_->crash_events()) {
      LRS_CHECK(e.node < nodes_.size());
      if (!is_member_.empty() && !is_member_[e.node]) continue;
      queue_.schedule_at(e.at + e.downtime, [this, node = e.node] {
        ++reboots_;
        LRS_LOG(kDebug) << "REBOOT node " << node << " at " << queue_.now();
        nodes_[node]->on_reboot();
        if (observer_) observer_->on_reboot(queue_.now(), node);
      });
    }
  }
}

bool Simulator::run(SimTime limit, const std::function<bool()>& done) {
  start_if_needed();
  if (done && done()) return true;
  while (queue_.run_next_before(limit)) {
    if (done && done()) return true;
  }
  return done ? done() : true;
}

std::uint32_t Simulator::acquire_tx() {
  if (!tx_free_.empty()) {
    const std::uint32_t t = tx_free_.back();
    tx_free_.pop_back();
    return t;
  }
  tx_pool_.emplace_back();
  return static_cast<std::uint32_t>(tx_pool_.size() - 1);
}

void Simulator::release_tx(std::uint32_t tx_index) {
  // Buffers keep their capacity for the next occupant; the frame bytes
  // themselves are freed when the slot is refilled (move-assignment).
  tx_free_.push_back(tx_index);
}

void Simulator::enqueue_frame(NodeId sender, PacketClass cls, Bytes frame) {
  if (fault_ && fault_->is_down(sender, queue_.now())) {
    // Radio is off during a crash window: the frame never reaches the MAC.
    ++fault_drops_;
    return;
  }
  auto& mac = macs_[sender];
  auto& card = cards_[sender];
  mac.tx_queue.emplace_back(cls, std::move(frame));
  if (!card.attempt_scheduled && !card.transmitting) {
    // Fresh contention: small random initial backoff for fairness.
    schedule_attempt(sender, radio_.backoff_initial +
                                 static_cast<SimTime>(rngs_[sender].uniform(
                                     static_cast<std::uint64_t>(
                                         radio_.backoff_window))));
    mac.backoff_window = radio_.backoff_window;
  }
}

void Simulator::schedule_attempt(NodeId sender, SimTime delay) {
  cards_[sender].attempt_scheduled = 1;
  queue_.schedule_at(queue_.now() + delay,
                     [this, sender] { attempt_send(sender); });
}

bool Simulator::carrier_busy(NodeId sender) const {
  const auto& card = cards_[sender];
  return card.carrier_count > 0 || card.rx_tx != kNoTx;
}

void Simulator::attempt_send(NodeId sender) {
  auto& mac = macs_[sender];
  auto& card = cards_[sender];
  card.attempt_scheduled = 0;
  if (mac.queued() == 0 || card.transmitting) return;
  if (fault_ && fault_->is_down(sender, queue_.now())) {
    // The node crashed with frames queued: the MAC queue dies with it.
    fault_drops_ += mac.queued();
    mac.tx_queue.clear();
    mac.tx_head = 0;
    return;
  }

  if (carrier_busy(sender)) {
    // Binary exponential backoff.
    mac.backoff_window =
        std::min(mac.backoff_window * 2, radio_.backoff_window_max);
    schedule_attempt(sender, static_cast<SimTime>(rngs_[sender].uniform(
                         static_cast<std::uint64_t>(mac.backoff_window))) +
                         radio_.backoff_initial);
    return;
  }
  mac.backoff_window = radio_.backoff_window;
  begin_transmission(sender);
}

void Simulator::begin_transmission(NodeId sender) {
  auto& mac = macs_[sender];
  auto& card = cards_[sender];
  const std::uint32_t ti = acquire_tx();
  Transmission& tx = tx_pool_[ti];
  auto& [cls, frame] = mac.tx_queue[mac.tx_head];
  tx.sender = sender;
  tx.cls = cls;
  tx.frame = std::move(frame);
  if (++mac.tx_head == mac.tx_queue.size()) {
    mac.tx_queue.clear();  // keeps capacity; the FIFO storage is recycled
    mac.tx_head = 0;
  }

  const SimTime duration = radio_.airtime(tx.frame.size());
  const SimTime end = queue_.now() + duration;

  const auto& neighbors = topology_->neighbors(sender);
  tx.corrupted.assign(neighbors.size(), 0);

  metrics_->record_send(sender, tx.cls, tx.frame.size());
  if (observer_) {
    observer_->on_send(queue_.now(), sender, tx.cls, view(tx.frame));
  }
  metrics_->node(sender).tx_airtime_us +=
      static_cast<std::uint64_t>(duration);
  LRS_LOG(kTrace) << "TX node " << sender << " class "
                  << packet_class_name(tx.cls) << " start " << queue_.now()
                  << " end " << end;
  card.transmitting = 1;

  // Half-duplex: starting to transmit aborts any in-progress reception.
  if (card.rx_tx != kNoTx) {
    tx_pool_[card.rx_tx].corrupted[card.rx_slot] = 1;
    card.rx_tx = kNoTx;
    ++collisions_;
  }

  for (std::size_t slot = 0; slot < neighbors.size(); ++slot) {
    const NodeId r = neighbors[slot];
    auto& rc = cards_[r];
    ++rc.carrier_count;
    if (rc.transmitting) {
      // Receiver is busy talking: it misses this frame entirely.
      tx.corrupted[slot] = 1;
      continue;
    }
    if (rc.rx_tx != kNoTx) {
      // Collision: both the in-progress frame and this one are lost at r.
      tx_pool_[rc.rx_tx].corrupted[rc.rx_slot] = 1;
      tx.corrupted[slot] = 1;
      ++collisions_;
      continue;
    }
    rc.rx_tx = ti;
    rc.rx_slot = static_cast<std::uint32_t>(slot);
  }

  queue_.schedule_at(end, [this, ti] { end_transmission(ti); });
}

void Simulator::end_transmission(std::uint32_t tx_index) {
  // Safe to hold the reference across the loop: nothing inside delivery
  // can start a transmission synchronously (sends always go through a
  // scheduled attempt), so the pool cannot grow under us.
  Transmission& tx = tx_pool_[tx_index];
  const NodeId sender = tx.sender;
  cards_[sender].transmitting = 0;

  // One serial per physical frame: every receiver the loop below delivers
  // to observes the same value, which is what lets the protocol layer
  // verify the frame once per transmission. Fault models may rewrite
  // frames per receiver, so the serial stays 0 (memo off) for them.
  if (!fault_) ++delivery_serial_;

  const SimTime air = radio_.airtime(tx.frame.size());
  const auto& neighbors = topology_->neighbors(sender);
  for (std::size_t slot = 0; slot < neighbors.size(); ++slot) {
    const NodeId r = neighbors[slot];
    auto& rc = cards_[r];
    --rc.carrier_count;
    const bool locked = rc.rx_tx == tx_index && rc.rx_slot == slot;
    if (locked) {
      rc.rx_tx = kNoTx;
      // The receiver's radio was occupied for the whole frame whether or
      // not the content survives (collisions/losses still cost energy).
      metrics_->node(r).rx_airtime_us += static_cast<std::uint64_t>(air);
    }

    if (!locked || tx.corrupted[slot] != 0) continue;
    // Channel quality: topology PRR sample, then the loss-model overlay
    // (application-layer drops in the paper's one-hop experiments).
    if (!rngs_[r].bernoulli(topology_->prr_by_slot(sender, slot))) continue;
    if (!loss_->delivered(sender, r, queue_.now(), rngs_[r])) continue;

    deliver(sender, r, tx.cls, tx.frame);
  }

  // Every receiver reference was cleared above (or earlier, on abort), so
  // the slot can recycle.
  release_tx(tx_index);

  // Node may have queued more frames while transmitting.
  if (macs_[sender].queued() != 0 && !cards_[sender].attempt_scheduled) {
    schedule_attempt(sender,
                     radio_.backoff_initial +
                         static_cast<SimTime>(rngs_[sender].uniform(
                             static_cast<std::uint64_t>(radio_.backoff_window))));
  }
}

void Simulator::deliver(NodeId sender, NodeId receiver, PacketClass cls,
                        const Bytes& frame) {
  if (!fault_) {
    // Fast path: no copy, no extra rng draws — historical seeds replay
    // byte-identically.
    deliver_now(sender, receiver, cls, frame, /*tampered=*/false);
    return;
  }
  if (fault_->is_down(receiver, queue_.now())) {
    ++fault_drops_;
    return;
  }
  Bytes mutated = frame;
  FaultAction action;
  fault_->apply(sender, receiver, queue_.now(), mutated, action,
                rngs_[receiver]);
  if (action.drop) {
    ++fault_drops_;
    return;
  }
  if (action.tampered) ++tampered_frames_;
  LRS_CHECK(action.copies >= 1);
  LRS_CHECK(action.delay >= 0);
  if (action.delay == 0) {
    deliver_now(sender, receiver, cls, mutated, action.tampered);
  }
  // Duplicates (and delayed originals) go back through the event queue so
  // later frames can overtake them; a crash window is re-checked at the
  // rescheduled delivery time.
  const std::size_t deferred = action.copies - (action.delay == 0 ? 1 : 0);
  for (std::size_t c = 0; c < deferred; ++c) {
    queue_.schedule_at(
        queue_.now() + action.delay,
        [this, sender, receiver, cls, mutated, tampered = action.tampered] {
          if (fault_ && fault_->is_down(receiver, queue_.now())) {
            ++fault_drops_;
            return;
          }
          deliver_now(sender, receiver, cls, mutated, tampered);
        });
  }
}

void Simulator::deliver_now(NodeId sender, NodeId receiver, PacketClass cls,
                            const Bytes& frame, bool tampered) {
  metrics_->record_receive(receiver, cls, frame.size());
  if (observer_) {
    observer_->before_deliver(queue_.now(), sender, receiver, cls,
                              view(frame), tampered);
  }
  nodes_[receiver]->on_receive(view(frame));
  if (observer_) {
    observer_->after_deliver(queue_.now(), sender, receiver, cls,
                             view(frame), tampered);
  }
}

}  // namespace lrs::sim
