// Network topologies: node placement plus a link-quality model mapping
// distance to packet reception rate (PRR).
//
// The paper evaluates a fully-connected one-hop cell (losses injected at the
// application layer) and two 225-node TOSSIM mica2 grids
// (15-15-tight / 15-15-medium). We rebuild those as 15x15 grids with tight
// vs medium spacing and an empirical-shaped PRR-vs-distance curve: near-
// perfect reception inside a connected radius, a transitional gray region
// with steeply falling PRR, and silence beyond the outer radius — the
// standard shape measured for mica2-class radios.
//
// Arbitrary placements (random geometric, clustered, corridor, ring — see
// sim/scenario/generators.h) enter through Topology::custom; per-link PRR
// jitter models the link-quality heterogeneity real deployments measure
// between geometrically identical links.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/types.h"

namespace lrs::sim {

struct Position {
  double x = 0.0;
  double y = 0.0;
};

/// PRR-vs-distance curve parameters (distance units are arbitrary but
/// consistent with node positions; defaults model a mica2-class radio with
/// grid spacings of 10 = tight, 20 = medium).
struct LinkModel {
  double connected_radius = 18.0;  // PRR == max_prr inside
  double outer_radius = 45.0;      // PRR == 0 beyond
  double max_prr = 0.98;

  double prr(double distance) const;

  /// Error-free variant (max_prr = 1): models the paper's one-hop cell
  /// where nodes are placed close enough to eliminate channel errors and
  /// losses are injected at the application layer instead.
  static LinkModel perfect();
};

class Topology {
 public:
  /// Fully connected cell: node 0 at the center, `receivers` nodes around
  /// it, every pair within connected radius. Defaults to an error-free
  /// link (paper §VI-A: losses are emulated at the application layer).
  static Topology star(std::size_t receivers,
                       const LinkModel& link = LinkModel::perfect());

  /// rows x cols grid with the given spacing; node 0 is the corner node
  /// (the base station's position in the paper's grid experiments).
  static Topology grid(std::size_t rows, std::size_t cols, double spacing,
                       const LinkModel& link = LinkModel{});

  /// Arbitrary placement (scenario generators): node 0 is the base station.
  static Topology custom(std::vector<Position> positions,
                         const LinkModel& link = LinkModel{});

  std::size_t size() const { return positions_.size(); }
  const Position& position(NodeId id) const { return positions_[id]; }
  const LinkModel& link_model() const { return link_; }

  double distance(NodeId a, NodeId b) const;
  /// Base PRR of the directed link a->b (0 when out of range).
  double prr(NodeId a, NodeId b) const;

  /// Nodes with non-zero PRR from `id` (potential receivers / carrier-sense
  /// set).
  const std::vector<NodeId>& neighbors(NodeId id) const {
    return neighbors_[id];
  }

  /// PRR of the directed link `id -> neighbors(id)[slot]`. Cached at
  /// construction (and refreshed by set_prr_jitter), so the delivery loop —
  /// which already walks neighbor slots — avoids recomputing the distance
  /// curve and jitter hash per received frame. Values are the exact doubles
  /// prr() returns, so the Bernoulli draws they feed are bit-identical.
  double prr_by_slot(NodeId id, std::size_t slot) const {
    return prr_cache_[id][slot];
  }

  /// Mean neighbor count — densitometry for reporting.
  double mean_degree() const;

  /// True when every node is radio-reachable from node 0 (BFS over the
  /// neighbor lists). Generators reject disconnected placements. With a
  /// positive `min_prr` the BFS only walks links whose base PRR exceeds
  /// it, i.e. checks connectivity of the *reliable* subgraph: a placement
  /// can pass the plain check while a pocket of nodes hangs off a single
  /// near-silent gray-zone bridge that in practice never delivers.
  bool connected(double min_prr = 0.0) const;

  /// Per-link heterogeneity: scales each directed link's PRR by a
  /// deterministic factor in [1 - magnitude, 1], drawn from a hash of
  /// (from, to, seed). magnitude must be in [0, 1) so no link's PRR
  /// reaches zero — neighbor sets (computed from the base curve) stay
  /// valid. magnitude == 0 restores the pure distance curve.
  void set_prr_jitter(double magnitude, std::uint64_t seed);
  double prr_jitter() const { return jitter_magnitude_; }

 private:
  Topology(std::vector<Position> positions, const LinkModel& link);

  void rebuild_prr_cache();

  std::vector<Position> positions_;
  LinkModel link_;
  std::vector<std::vector<NodeId>> neighbors_;
  std::vector<std::vector<double>> prr_cache_;  // parallel to neighbors_
  double jitter_magnitude_ = 0.0;
  std::uint64_t jitter_seed_ = 0;
};

}  // namespace lrs::sim
