#include "sim/topology.h"

#include <cmath>
#include <deque>

#include "util/check.h"

namespace lrs::sim {

namespace {

/// splitmix64 finalizer — cheap stateless hash for the per-link jitter.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

double LinkModel::prr(double distance) const {
  if (distance <= connected_radius) return max_prr;
  if (distance >= outer_radius) return 0.0;
  // Smooth cubic fall-off across the gray region.
  const double t =
      (distance - connected_radius) / (outer_radius - connected_radius);
  const double shape = 1.0 - t * t * (3.0 - 2.0 * t);  // smoothstep down
  return max_prr * shape;
}

LinkModel LinkModel::perfect() {
  LinkModel link;
  link.max_prr = 1.0;
  return link;
}

Topology::Topology(std::vector<Position> positions, const LinkModel& link)
    : positions_(std::move(positions)), link_(link) {
  neighbors_.resize(positions_.size());
  for (NodeId a = 0; a < positions_.size(); ++a) {
    for (NodeId b = 0; b < positions_.size(); ++b) {
      if (a != b && prr(a, b) > 0.0) neighbors_[a].push_back(b);
    }
  }
}

Topology Topology::star(std::size_t receivers, const LinkModel& link) {
  std::vector<Position> pos;
  pos.reserve(receivers + 1);
  pos.push_back({0.0, 0.0});
  // Place receivers on a small circle well inside the connected radius so
  // that every pair of nodes hears every other (single collision domain).
  const double r = link.connected_radius * 0.25;
  for (std::size_t i = 0; i < receivers; ++i) {
    const double angle =
        2.0 * M_PI * static_cast<double>(i) / static_cast<double>(receivers);
    pos.push_back({r * std::cos(angle), r * std::sin(angle)});
  }
  return Topology(std::move(pos), link);
}

Topology Topology::grid(std::size_t rows, std::size_t cols, double spacing,
                        const LinkModel& link) {
  LRS_CHECK(rows >= 1 && cols >= 1);
  std::vector<Position> pos;
  pos.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      pos.push_back({static_cast<double>(c) * spacing,
                     static_cast<double>(r) * spacing});
    }
  }
  return Topology(std::move(pos), link);
}

Topology Topology::custom(std::vector<Position> positions,
                          const LinkModel& link) {
  LRS_CHECK_MSG(!positions.empty(), "topology needs at least one node");
  return Topology(std::move(positions), link);
}

double Topology::distance(NodeId a, NodeId b) const {
  const auto& pa = positions_[a];
  const auto& pb = positions_[b];
  return std::hypot(pa.x - pb.x, pa.y - pb.y);
}

double Topology::prr(NodeId a, NodeId b) const {
  const double base = link_.prr(distance(a, b));
  if (jitter_magnitude_ == 0.0 || base == 0.0) return base;
  // Deterministic per-directed-link factor in [1 - magnitude, 1].
  const std::uint64_t h =
      mix64(jitter_seed_ ^ mix64((static_cast<std::uint64_t>(a) << 32) |
                                 static_cast<std::uint64_t>(b)));
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // [0,1)
  return base * (1.0 - jitter_magnitude_ * u);
}

void Topology::set_prr_jitter(double magnitude, std::uint64_t seed) {
  LRS_CHECK_MSG(magnitude >= 0.0 && magnitude < 1.0,
                "prr jitter magnitude must be in [0, 1)");
  jitter_magnitude_ = magnitude;
  jitter_seed_ = seed;
}

bool Topology::connected() const {
  if (positions_.empty()) return true;
  std::vector<bool> seen(positions_.size(), false);
  std::deque<NodeId> frontier{0};
  seen[0] = true;
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const NodeId at = frontier.front();
    frontier.pop_front();
    for (const NodeId next : neighbors_[at]) {
      if (!seen[next]) {
        seen[next] = true;
        ++reached;
        frontier.push_back(next);
      }
    }
  }
  return reached == positions_.size();
}

double Topology::mean_degree() const {
  if (positions_.empty()) return 0.0;
  std::size_t total = 0;
  for (const auto& nb : neighbors_) total += nb.size();
  return static_cast<double>(total) / static_cast<double>(positions_.size());
}

}  // namespace lrs::sim
