#include "sim/topology.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <utility>

#include "util/check.h"

namespace lrs::sim {

namespace {

/// splitmix64 finalizer — cheap stateless hash for the per-link jitter.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

double LinkModel::prr(double distance) const {
  if (distance <= connected_radius) return max_prr;
  if (distance >= outer_radius) return 0.0;
  // Smooth cubic fall-off across the gray region.
  const double t =
      (distance - connected_radius) / (outer_radius - connected_radius);
  const double shape = 1.0 - t * t * (3.0 - 2.0 * t);  // smoothstep down
  return max_prr * shape;
}

LinkModel LinkModel::perfect() {
  LinkModel link;
  link.max_prr = 1.0;
  return link;
}

Topology::Topology(std::vector<Position> positions, const LinkModel& link)
    : positions_(std::move(positions)), link_(link) {
  // Spatial-hash neighbor build: only nodes within outer_radius can have
  // prr > 0, so bin positions into cells of that size and test the 3x3
  // neighborhood — O(N x degree) instead of the all-pairs O(N^2) that
  // dominated construction at 10k nodes. Candidates are gathered per cell
  // and sorted, preserving the ascending-NodeId neighbor order the
  // delivery loop's per-slot bookkeeping and RNG draw sequence depend on.
  const std::size_t n = positions_.size();
  neighbors_.resize(n);
  if (n == 0) return;

  const double cell = std::max(link_.outer_radius, 1e-9);
  double min_x = positions_[0].x, min_y = positions_[0].y;
  for (const auto& p : positions_) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
  }
  const auto cell_of = [&](const Position& p) {
    return std::pair<std::int64_t, std::int64_t>{
        static_cast<std::int64_t>(std::floor((p.x - min_x) / cell)),
        static_cast<std::int64_t>(std::floor((p.y - min_y) / cell))};
  };

  std::int64_t cols = 0, rows = 0;
  for (const auto& p : positions_) {
    const auto [cx, cy] = cell_of(p);
    cols = std::max(cols, cx + 1);
    rows = std::max(rows, cy + 1);
  }

  // Counting sort of nodes into cells (two passes, no per-cell vectors).
  const std::size_t cell_count =
      static_cast<std::size_t>(cols) * static_cast<std::size_t>(rows);
  std::vector<std::uint32_t> starts(cell_count + 1, 0);
  std::vector<std::uint32_t> cell_index(n);
  for (NodeId a = 0; a < n; ++a) {
    const auto [cx, cy] = cell_of(positions_[a]);
    cell_index[a] =
        static_cast<std::uint32_t>(cy * cols + cx);
    ++starts[cell_index[a] + 1];
  }
  for (std::size_t c = 0; c < cell_count; ++c) starts[c + 1] += starts[c];
  std::vector<NodeId> by_cell(n);
  {
    std::vector<std::uint32_t> fill(starts.begin(), starts.end() - 1);
    for (NodeId a = 0; a < n; ++a) by_cell[fill[cell_index[a]]++] = a;
  }

  for (NodeId a = 0; a < n; ++a) {
    const auto [cx, cy] = cell_of(positions_[a]);
    auto& out = neighbors_[a];
    for (std::int64_t dy = -1; dy <= 1; ++dy) {
      const std::int64_t y = cy + dy;
      if (y < 0 || y >= rows) continue;
      for (std::int64_t dx = -1; dx <= 1; ++dx) {
        const std::int64_t x = cx + dx;
        if (x < 0 || x >= cols) continue;
        const std::size_t c = static_cast<std::size_t>(y * cols + x);
        for (std::uint32_t i = starts[c]; i < starts[c + 1]; ++i) {
          const NodeId b = by_cell[i];
          if (b != a && prr(a, b) > 0.0) out.push_back(b);
        }
      }
    }
    std::sort(out.begin(), out.end());
  }
  rebuild_prr_cache();
}

void Topology::rebuild_prr_cache() {
  prr_cache_.resize(neighbors_.size());
  for (NodeId a = 0; a < neighbors_.size(); ++a) {
    const auto& nb = neighbors_[a];
    auto& row = prr_cache_[a];
    row.resize(nb.size());
    for (std::size_t slot = 0; slot < nb.size(); ++slot)
      row[slot] = prr(a, nb[slot]);
  }
}

Topology Topology::star(std::size_t receivers, const LinkModel& link) {
  std::vector<Position> pos;
  pos.reserve(receivers + 1);
  pos.push_back({0.0, 0.0});
  // Place receivers on a small circle well inside the connected radius so
  // that every pair of nodes hears every other (single collision domain).
  const double r = link.connected_radius * 0.25;
  for (std::size_t i = 0; i < receivers; ++i) {
    const double angle =
        2.0 * M_PI * static_cast<double>(i) / static_cast<double>(receivers);
    pos.push_back({r * std::cos(angle), r * std::sin(angle)});
  }
  return Topology(std::move(pos), link);
}

Topology Topology::grid(std::size_t rows, std::size_t cols, double spacing,
                        const LinkModel& link) {
  LRS_CHECK(rows >= 1 && cols >= 1);
  std::vector<Position> pos;
  pos.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      pos.push_back({static_cast<double>(c) * spacing,
                     static_cast<double>(r) * spacing});
    }
  }
  return Topology(std::move(pos), link);
}

Topology Topology::custom(std::vector<Position> positions,
                          const LinkModel& link) {
  LRS_CHECK_MSG(!positions.empty(), "topology needs at least one node");
  return Topology(std::move(positions), link);
}

double Topology::distance(NodeId a, NodeId b) const {
  const auto& pa = positions_[a];
  const auto& pb = positions_[b];
  return std::hypot(pa.x - pb.x, pa.y - pb.y);
}

double Topology::prr(NodeId a, NodeId b) const {
  const double base = link_.prr(distance(a, b));
  if (jitter_magnitude_ == 0.0 || base == 0.0) return base;
  // Deterministic per-directed-link factor in [1 - magnitude, 1].
  const std::uint64_t h =
      mix64(jitter_seed_ ^ mix64((static_cast<std::uint64_t>(a) << 32) |
                                 static_cast<std::uint64_t>(b)));
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // [0,1)
  return base * (1.0 - jitter_magnitude_ * u);
}

void Topology::set_prr_jitter(double magnitude, std::uint64_t seed) {
  LRS_CHECK_MSG(magnitude >= 0.0 && magnitude < 1.0,
                "prr jitter magnitude must be in [0, 1)");
  jitter_magnitude_ = magnitude;
  jitter_seed_ = seed;
  rebuild_prr_cache();
}

bool Topology::connected(double min_prr) const {
  if (positions_.empty()) return true;
  std::vector<bool> seen(positions_.size(), false);
  std::deque<NodeId> frontier{0};
  seen[0] = true;
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const NodeId at = frontier.front();
    frontier.pop_front();
    const auto& nb = neighbors_[at];
    for (std::size_t slot = 0; slot < nb.size(); ++slot) {
      const NodeId next = nb[slot];
      if (!seen[next] && prr_cache_[at][slot] > min_prr) {
        seen[next] = true;
        ++reached;
        frontier.push_back(next);
      }
    }
  }
  return reached == positions_.size();
}

double Topology::mean_degree() const {
  if (positions_.empty()) return 0.0;
  std::size_t total = 0;
  for (const auto& nb : neighbors_) total += nb.size();
  return static_cast<double>(total) / static_cast<double>(positions_.size());
}

}  // namespace lrs::sim
