// Per-reception loss models layered on top of the topology's base PRR.
//
// The paper's one-hop experiments emulate losses by dropping each received
// packet with probability p at the application layer (§VI-A); the multi-hop
// experiments add heavy RF noise from the TinyOS meyer-heavy trace. We model
// the former exactly (UniformLossModel) and substitute the latter with a
// Gilbert-Elliott two-state burst process — the standard synthetic source of
// bursty interference (see DESIGN.md).
#pragma once

#include <memory>
#include <vector>

#include "sim/time.h"
#include "sim/topology.h"
#include "util/rng.h"
#include "util/types.h"

namespace lrs::sim {

class LossModel {
 public:
  virtual ~LossModel() = default;
  /// True if the frame from `from` survives the channel to `to` at `now`
  /// (evaluated once per reception attempt, after PRR and collisions).
  virtual bool delivered(NodeId from, NodeId to, SimTime now, Rng& rng) = 0;
};

/// No extra losses beyond PRR/collisions.
std::unique_ptr<LossModel> make_perfect_channel();

/// Drops every reception independently with probability `p` — the paper's
/// one-hop loss-emulation strategy.
std::unique_ptr<LossModel> make_uniform_loss(double p);

/// Per-receiver loss probabilities (heterogeneous p_i, as in the analysis of
/// §V-A); `p[i]` applies to receptions at node i. Every probability must be
/// in [0, 1] (checked at construction), and receptions at a node beyond the
/// vector fail loudly instead of indexing past the end — pass `node_count`
/// to reject a short vector up front.
std::unique_ptr<LossModel> make_per_node_loss(std::vector<double> p);
std::unique_ptr<LossModel> make_per_node_loss(std::vector<double> p,
                                              std::size_t node_count);

/// Gilbert-Elliott burst noise: each receiver flips between a good state
/// (drop probability p_good) and a bad state (p_bad), with dwell times
/// exponentially distributed around the given means. Substitutes the
/// meyer-heavy RF noise trace.
struct GilbertElliottParams {
  double p_good = 0.05;
  double p_bad = 0.6;
  SimTime mean_good_dwell = 800 * kMillisecond;
  SimTime mean_bad_dwell = 200 * kMillisecond;

  /// Throws (LRS_CHECK) unless both drop probabilities are in [0, 1] and
  /// both mean dwell times are positive — a zero or negative mean would
  /// otherwise silently degenerate the exponential dwell draws.
  void validate() const;
};
std::unique_ptr<LossModel> make_gilbert_elliott(GilbertElliottParams params,
                                                std::size_t node_count,
                                                std::uint64_t seed);

}  // namespace lrs::sim
