// Simulated time: a signed 64-bit count of microseconds since simulation
// start. Plain integer arithmetic keeps event ordering exact.
#pragma once

#include <cstdint>

namespace lrs::sim {

using SimTime = std::int64_t;

inline constexpr SimTime kMicrosecond = 1;
inline constexpr SimTime kMillisecond = 1000;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

inline constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

inline constexpr SimTime from_seconds(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kSecond));
}

}  // namespace lrs::sim
