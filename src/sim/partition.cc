#include "sim/partition.h"

#include <algorithm>

namespace lrs::sim {

std::vector<std::vector<NodeId>> radio_islands(const Topology& t) {
  const std::size_t n = t.size();
  std::vector<std::uint8_t> visited(n, 0);
  std::vector<std::vector<NodeId>> islands;
  std::vector<NodeId> frontier;
  for (std::size_t start = 0; start < n; ++start) {
    if (visited[start]) continue;
    // BFS from the lowest unvisited id; the seed order makes island order
    // (by smallest member) automatic.
    std::vector<NodeId> members;
    visited[start] = 1;
    frontier.clear();
    frontier.push_back(static_cast<NodeId>(start));
    members.push_back(static_cast<NodeId>(start));
    while (!frontier.empty()) {
      const NodeId cur = frontier.back();
      frontier.pop_back();
      for (const NodeId next : t.neighbors(cur)) {
        if (visited[next]) continue;
        visited[next] = 1;
        frontier.push_back(next);
        members.push_back(next);
      }
    }
    std::sort(members.begin(), members.end());
    islands.push_back(std::move(members));
  }
  return islands;
}

}  // namespace lrs::sim
