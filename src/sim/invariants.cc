#include "sim/invariants.h"

#include <sstream>
#include <utility>

namespace lrs::sim {

const char* invariant_name(int invariant) {
  switch (invariant) {
    case 1:
      return "image-integrity";
    case 2:
      return "immediate-auth";
    case 3:
      return "monotone-progress";
    case 4:
      return "tamper-rejection";
    case 5:
      return "greedy-bound";
    default:
      return "unknown";
  }
}

std::string InvariantViolation::to_string() const {
  std::ostringstream os;
  os << "invariant " << invariant << " (" << invariant_name(invariant)
     << ") node " << node << " t=" << to_seconds(at) << "s: " << detail;
  return os.str();
}

InvariantObserver::InvariantObserver(InvariantConfig config)
    : cfg_(std::move(config)) {}

void InvariantObserver::attach(NodeId id, NodeProbe probe) {
  probes_[id] = std::move(probe);
}

void InvariantObserver::record(int invariant, NodeId node, SimTime at,
                               std::string detail) {
  if (violations_.size() >= cfg_.max_violations) return;
  violations_.push_back({invariant, node, at, std::move(detail)});
}

InvariantObserver::Snapshot InvariantObserver::snapshot(
    const NodeProbe& probe) const {
  Snapshot s;
  s.valid = true;
  s.pages = probe.pages_complete ? probe.pages_complete() : 0;
  s.buffered = probe.buffered_packets ? probe.buffered_packets() : 0;
  s.bootstrapped = probe.bootstrapped ? probe.bootstrapped() : true;
  s.complete = probe.image_complete ? probe.image_complete() : false;
  s.engine_state = probe.engine_state ? probe.engine_state() : -1;
  return s;
}

void InvariantObserver::on_send(SimTime now, NodeId sender, PacketClass cls,
                                ByteView frame) {
  if (!cfg_.check_greedy_bound || cls != PacketClass::kData) return;
  if (probes_.find(sender) == probes_.end()) return;
  if (!cfg_.parse_data) return;
  const auto data = cfg_.parse_data(frame);
  if (!data) return;
  const auto key = std::make_pair(sender, data->page);
  const std::uint64_t sent = ++sent_[key];
  const std::uint64_t allowed = allowance_[key];
  ++checks_run_;
  if (sent > allowed) {
    std::ostringstream os;
    os << "page " << data->page << ": sent " << sent
       << " data packets but delivered SNACKs only allow " << allowed;
    record(5, sender, now, os.str());
  }
}

void InvariantObserver::before_deliver(SimTime /*now*/, NodeId /*from*/,
                                       NodeId to, PacketClass /*cls*/,
                                       ByteView /*frame*/, bool /*tampered*/) {
  const auto it = probes_.find(to);
  if (it == probes_.end()) return;
  pre_[to] = snapshot(it->second);
}

void InvariantObserver::after_deliver(SimTime now, NodeId /*from*/, NodeId to,
                                      PacketClass cls, ByteView frame,
                                      bool tampered) {
  const auto it = probes_.find(to);
  if (it == probes_.end()) return;
  const NodeProbe& probe = it->second;
  const Snapshot post = snapshot(probe);
  Snapshot pre = pre_[to];
  pre_[to].valid = false;

  // Invariant 3: the page frontier only ever advances.
  auto& high = max_pages_[to];
  ++checks_run_;
  if (post.pages < high) {
    std::ostringstream os;
    os << "pages_complete went " << high << " -> " << post.pages;
    record(3, to, now, os.str());
  }
  if (post.pages > high) high = post.pages;

  // Invariant 2: nothing is buffered until the signature verified.
  if (cfg_.check_immediate_auth) {
    ++checks_run_;
    if (!post.bootstrapped && post.buffered > 0) {
      std::ostringstream os;
      os << post.buffered << " packets buffered before bootstrap";
      record(2, to, now, os.str());
    }
  }

  // Invariant 4: a tampered frame leaves the node exactly as it was.
  if (cfg_.check_tamper_rejection && tampered && pre.valid) {
    ++checks_run_;
    if (post.buffered != pre.buffered || post.pages != pre.pages ||
        post.bootstrapped != pre.bootstrapped ||
        post.engine_state != pre.engine_state) {
      std::ostringstream os;
      os << "tampered " << packet_class_name(cls) << " frame changed state:"
         << " buffered " << pre.buffered << "->" << post.buffered
         << " pages " << pre.pages << "->" << post.pages << " bootstrapped "
         << pre.bootstrapped << "->" << post.bootstrapped << " engine "
         << pre.engine_state << "->" << post.engine_state;
      record(4, to, now, os.str());
    }
  }

  // Invariant 1: the moment a node claims completion, its image must match.
  if (post.complete && !pre.complete) check_image(to, now, probe);

  // Invariant 5 bookkeeping: an authentic SNACK delivered to its addressee
  // grants the server d = max(1, q + k' − n) sends for that page. Forged
  // or tampered SNACKs grant nothing — serving one trips the bound.
  if (cfg_.check_greedy_bound && cls == PacketClass::kSnack && !tampered &&
      cfg_.parse_snack) {
    const auto snack = cfg_.parse_snack(frame);
    if (snack && snack->target == to && !snack->signature_request &&
        snack->requested > 0 && probe.decode_threshold &&
        probe.packets_in_page) {
      const std::size_t q = snack->requested;
      const std::size_t kprime = probe.decode_threshold(snack->page);
      const std::size_t npkts = probe.packets_in_page(snack->page);
      const std::size_t needed =
          q + kprime > npkts ? q + kprime - npkts : std::size_t{1};
      allowance_[{to, snack->page}] += needed;
    }
  }
}

void InvariantObserver::on_reboot(SimTime now, NodeId node) {
  const auto it = probes_.find(node);
  if (it == probes_.end()) return;
  const Snapshot post = snapshot(it->second);
  // Invariant 3 across reboots: the persisted frontier must survive.
  auto& high = max_pages_[node];
  ++checks_run_;
  if (post.pages < high) {
    std::ostringstream os;
    os << "reboot dropped pages_complete " << high << " -> " << post.pages;
    record(3, node, now, os.str());
  }
  if (post.pages > high) high = post.pages;
}

void InvariantObserver::check_image(NodeId node, SimTime at,
                                    const NodeProbe& probe) {
  if (!probe.assemble_image) return;
  ++checks_run_;
  const Bytes image = probe.assemble_image();
  if (image != cfg_.expected_image) {
    std::ostringstream os;
    os << "completed image differs from the disseminated one (" << image.size()
       << " vs " << cfg_.expected_image.size() << " bytes)";
    record(1, node, at, os.str());
  }
}

void InvariantObserver::finalize(SimTime now) {
  for (const auto& [id, probe] : probes_) {
    if (probe.image_complete && probe.image_complete()) {
      check_image(id, now, probe);
    }
  }
}

}  // namespace lrs::sim
