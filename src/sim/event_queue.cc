#include "sim/event_queue.h"

#include "util/check.h"

namespace lrs::sim {

EventToken EventQueue::schedule_at(SimTime at, std::function<void()> fn) {
  LRS_CHECK_MSG(at >= now_, "cannot schedule events in the past");
  auto token = std::make_shared<bool>(false);
  queue_.push(Entry{at, next_seq_++, std::move(fn), token});
  return token;
}

std::optional<SimTime> EventQueue::peek_time() {
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (top.cancelled && *top.cancelled) {
      queue_.pop();
      continue;
    }
    return top.time;
  }
  return std::nullopt;
}

bool EventQueue::run_next() {
  while (!queue_.empty()) {
    Entry e = queue_.top();
    queue_.pop();
    if (e.cancelled && *e.cancelled) continue;
    now_ = e.time;
    e.fn();
    return true;
  }
  return false;
}

std::uint64_t EventQueue::run_until(SimTime limit) {
  std::uint64_t executed = 0;
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (top.cancelled && *top.cancelled) {
      queue_.pop();
      continue;
    }
    if (top.time > limit) break;
    Entry e = queue_.top();
    queue_.pop();
    now_ = e.time;
    e.fn();
    ++executed;
  }
  if (now_ < limit && queue_.empty()) now_ = limit;
  return executed;
}

}  // namespace lrs::sim
