#include "sim/event_queue.h"

#include <algorithm>
#include <bit>

#include "sim/stats/stats.h"
#include "util/check.h"

namespace lrs::sim {

namespace {

/// Call-site cache of the queue's registry slots: resolved once per
/// process, recorded through references on the hot path (allocation- and
/// lock-free; every record is gated on stats::enabled()).
struct QueueStats {
  stats::Counter& schedule;
  stats::Counter& cancel;
  stats::Counter& pop;
  stats::Counter& overflow;
  stats::Counter& reanchor;
  stats::Histogram& pending;

  static QueueStats& get() {
    static QueueStats s{
        stats::Registry::instance().counter("sim.queue.schedule"),
        stats::Registry::instance().counter("sim.queue.cancel"),
        stats::Registry::instance().counter("sim.queue.pop"),
        stats::Registry::instance().counter("sim.queue.overflow_push"),
        stats::Registry::instance().counter("sim.queue.reanchor"),
        stats::Registry::instance().histogram("sim.queue.pending"),
    };
    return s;
  }
};

}  // namespace

EventQueue::EventQueue() : buckets_(kBuckets) {}

std::uint32_t EventQueue::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t s = free_slots_.back();
    free_slots_.pop_back();
    return s;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn.reset();
  ++s.gen;
  if (s.gen == 0) ++s.gen;  // generation 0 is reserved for null tokens
  free_slots_.push_back(slot);
}

void EventQueue::push_ref(const Ref& r) {
  const SimTime offset = r.time - base_;
  if (offset >= kSpan) {
    QueueStats::get().overflow.add();
    overflow_.push_back(r);
    std::push_heap(overflow_.begin(), overflow_.end(),
                   [](const Ref& a, const Ref& b) { return a.after(b); });
    return;
  }
  const auto b = static_cast<std::size_t>(offset >> kBucketWidthBits);
  LRS_DCHECK(b < kBuckets);
  auto& bucket = buckets_[b];
  bucket.push_back(r);
  std::push_heap(bucket.begin(), bucket.end(),
                 [](const Ref& a, const Ref& b2) { return a.after(b2); });
  occupied_[b / 64] |= std::uint64_t{1} << (b % 64);
  if (b < cursor_) cursor_ = b;
}

EventToken EventQueue::schedule_at(SimTime at, EventFn fn) {
  LRS_CHECK_MSG(at >= now_, "cannot schedule events in the past");
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  const EventToken token(slot, s.gen);
  push_ref(Ref{at, next_seq_++, slot, s.gen});
  ++live_;
  QueueStats& qs = QueueStats::get();
  qs.schedule.add();
  qs.pending.record(live_);
  return token;
}

bool EventQueue::cancel(EventToken token) {
  if (!token) return false;
  const std::uint32_t slot = token.slot();
  if (slot >= slots_.size() || slots_[slot].gen != token.gen()) return false;
  release_slot(slot);  // the bucket/overflow ref goes stale and is skipped
  --live_;
  QueueStats::get().cancel.add();
  return true;
}

std::size_t EventQueue::next_occupied(std::size_t from) const {
  if (from >= kBuckets) return kBuckets;
  std::size_t word = from / 64;
  std::uint64_t bits = occupied_[word] & (~std::uint64_t{0} << (from % 64));
  while (bits == 0) {
    if (++word >= kBitmapWords) return kBuckets;
    bits = occupied_[word];
  }
  return word * 64 + static_cast<std::size_t>(std::countr_zero(bits));
}

bool EventQueue::prune_bucket(std::size_t b) {
  auto& bucket = buckets_[b];
  const auto after = [](const Ref& a, const Ref& b2) { return a.after(b2); };
  while (!bucket.empty() && !is_live(bucket.front())) {
    std::pop_heap(bucket.begin(), bucket.end(), after);
    bucket.pop_back();
  }
  if (bucket.empty()) {
    occupied_[b / 64] &= ~(std::uint64_t{1} << (b % 64));
    return false;
  }
  return true;
}

bool EventQueue::prune_overflow() {
  const auto after = [](const Ref& a, const Ref& b) { return a.after(b); };
  while (!overflow_.empty() && !is_live(overflow_.front())) {
    std::pop_heap(overflow_.begin(), overflow_.end(), after);
    overflow_.pop_back();
  }
  return !overflow_.empty();
}

bool EventQueue::find_earliest(SimTime* time) {
  if (live_ == 0) return false;
  for (std::size_t b = next_occupied(cursor_); b < kBuckets;
       b = next_occupied(b + 1)) {
    // Buckets ahead of the first live entry are empty or stale-only, so
    // the cursor can skip them on every later scan.
    cursor_ = b;
    if (prune_bucket(b)) {
      *time = buckets_[b].front().time;
      return true;
    }
  }
  cursor_ = kBuckets;
  if (!prune_overflow()) return false;  // unreachable while live_ > 0
  *time = overflow_.front().time;
  return true;
}

EventQueue::Ref EventQueue::pop_earliest() {
  const auto after = [](const Ref& a, const Ref& b) { return a.after(b); };
  const std::size_t b = cursor_;
  if (b < kBuckets) {
    auto& bucket = buckets_[b];
    LRS_DCHECK(!bucket.empty() && is_live(bucket.front()));
    std::pop_heap(bucket.begin(), bucket.end(), after);
    const Ref r = bucket.back();
    bucket.pop_back();
    if (bucket.empty()) occupied_[b / 64] &= ~(std::uint64_t{1} << (b % 64));
    return r;
  }
  // Wheel drained: re-anchor it onto the overflow's earliest event and
  // sweep everything inside the new horizon back into buckets. now_ is
  // advanced to the popped event's time by the caller before any code can
  // schedule again, so base_ <= now() keeps holding.
  LRS_DCHECK(!overflow_.empty() && is_live(overflow_.front()));
  QueueStats::get().reanchor.add();
  const SimTime head = overflow_.front().time;
  base_ = head & ~(kBucketWidth - 1);
  cursor_ = 0;
  while (!overflow_.empty() && overflow_.front().time - base_ < kSpan) {
    std::pop_heap(overflow_.begin(), overflow_.end(), after);
    const Ref r = overflow_.back();
    overflow_.pop_back();
    if (is_live(r)) push_ref(r);
  }
  SimTime t;
  const bool found = find_earliest(&t);
  LRS_DCHECK(found);
  (void)found;
  return pop_earliest();
}

void EventQueue::run_ref(const Ref& r) {
  now_ = r.time;
  // Move the closure out and release the slot first, so the event body can
  // freely reschedule (possibly into this very slot) and cancelling its
  // own, now stale, token is a no-op.
  EventFn fn = std::move(slots_[r.slot].fn);
  release_slot(r.slot);
  --live_;
  ++executed_;
  QueueStats::get().pop.add();
  fn();
}

bool EventQueue::run_next() {
  SimTime t;
  if (!find_earliest(&t)) return false;
  run_ref(pop_earliest());
  return true;
}

bool EventQueue::run_next_before(SimTime limit) {
  SimTime t;
  if (!find_earliest(&t) || t > limit) return false;
  run_ref(pop_earliest());
  return true;
}

std::optional<SimTime> EventQueue::peek_time() {
  SimTime t;
  if (!find_earliest(&t)) return std::nullopt;
  return t;
}

std::uint64_t EventQueue::run_until(SimTime limit) {
  std::uint64_t count = 0;
  while (run_next_before(limit)) ++count;
  if (live_ == 0 && now_ < limit) now_ = limit;
  return count;
}

}  // namespace lrs::sim
