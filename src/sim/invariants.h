// Continuous protocol invariant checking (paper §III security goals, §IV
// greedy scheduling bound).
//
// An InvariantObserver attaches to the simulator's packet stream
// (SimObserver) plus per-node state probes and verifies, after every single
// delivery rather than only at the end of a run:
//
//   1. image integrity   — a node reporting image_complete holds exactly
//                          the disseminated image, bit for bit;
//   2. immediate auth    — no packet is buffered before the node is
//                          bootstrapped (signature verified): nothing
//                          unauthenticated ever occupies buffer space;
//   3. monotone progress — a node's completed-page frontier never moves
//                          backwards, not even across a crash/reboot;
//   4. tamper rejection  — a corrupted/forged frame never changes a node's
//                          buffers, page frontier or engine state;
//   5. greedy bound      — a server never transmits more data packets for a
//                          page than the sum of d = max(1, q + k' − n) over
//                          the SNACKs delivered to it (§IV-C).
//
// Checks 2 and 4 only hold for schemes with per-packet authentication
// (Seluge, LR-Seluge); check 5 only for the LR greedy scheduler — the
// caller enables exactly the subset its scheme promises. The observer is
// passive: it never mutates protocol state and a fault-free run with an
// observer attached is bit-identical to one without.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "util/types.h"

namespace lrs::sim {

/// Read-only views into one node's protocol state. Capture the node's
/// SchemeState through an indirection that survives scheme upgrades (e.g.
/// call through the owning DissemNode on every probe).
struct NodeProbe {
  std::function<bool()> bootstrapped;
  std::function<std::uint32_t()> pages_complete;
  std::function<std::size_t()> buffered_packets;
  std::function<bool()> image_complete;
  std::function<Bytes()> assemble_image;
  /// Engine NodeState as an int (kMaintain=0/kRx=1/kTx=2); may be null.
  std::function<int()> engine_state;
  /// Geometry of a page as served by THIS node (for the greedy bound).
  std::function<std::size_t(std::uint32_t)> packets_in_page;
  std::function<std::size_t(std::uint32_t)> decode_threshold;
};

/// What the observer needs to know about a SNACK on the wire.
struct SnackView {
  NodeId sender = 0;
  NodeId target = 0;
  std::uint32_t page = 0;
  std::size_t requested = 0;  // q: set bits in the request bitmap
  bool signature_request = false;
};

struct DataView {
  std::uint32_t page = 0;
  std::uint32_t index = 0;
};

struct InvariantConfig {
  /// The image being disseminated (invariant 1's ground truth).
  Bytes expected_image;
  /// Enable invariant 2 (immediate authentication) — authenticated schemes.
  bool check_immediate_auth = false;
  /// Enable invariant 4 (tampered frames change nothing) — schemes whose
  /// control traffic is MAC'd and data per-packet authenticated.
  bool check_tamper_rejection = false;
  /// Enable invariant 5 (greedy scheduler send bound).
  bool check_greedy_bound = false;
  /// Wire parsers, nullopt on failure. parse_snack must verify the same MAC
  /// the protocol under test verifies (so forged SNACKs earn no allowance).
  std::function<std::optional<SnackView>(ByteView)> parse_snack;
  std::function<std::optional<DataView>(ByteView)> parse_data;
  /// Stop recording (not checking) after this many violations.
  std::size_t max_violations = 16;
};

struct InvariantViolation {
  int invariant = 0;  // 1..5
  NodeId node = 0;
  SimTime at = 0;
  std::string detail;
  std::string to_string() const;
};

const char* invariant_name(int invariant);

class InvariantObserver final : public SimObserver {
 public:
  explicit InvariantObserver(InvariantConfig config);

  /// Registers a node's probes. Unattached nodes (e.g. attacker nodes) are
  /// simply not checked.
  void attach(NodeId id, NodeProbe probe);

  // SimObserver:
  void on_send(SimTime now, NodeId sender, PacketClass cls,
               ByteView frame) override;
  void before_deliver(SimTime now, NodeId from, NodeId to, PacketClass cls,
                      ByteView frame, bool tampered) override;
  void after_deliver(SimTime now, NodeId from, NodeId to, PacketClass cls,
                     ByteView frame, bool tampered) override;
  void on_reboot(SimTime now, NodeId node) override;

  /// End-of-run sweep: invariant 1 for every attached node that claims
  /// completion. Call once after Simulator::run.
  void finalize(SimTime now);

  bool ok() const { return violations_.empty(); }
  const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }
  /// Total individual assertions evaluated (a meaningful "checked
  /// something" signal for the stress runner's report).
  std::uint64_t checks_run() const { return checks_run_; }

 private:
  struct Snapshot {
    bool valid = false;
    std::uint32_t pages = 0;
    std::size_t buffered = 0;
    bool bootstrapped = false;
    bool complete = false;
    int engine_state = -1;
  };

  void record(int invariant, NodeId node, SimTime at, std::string detail);
  void check_image(NodeId node, SimTime at, const NodeProbe& probe);
  Snapshot snapshot(const NodeProbe& probe) const;

  InvariantConfig cfg_;
  std::map<NodeId, NodeProbe> probes_;
  std::map<NodeId, Snapshot> pre_;
  // Highest page frontier ever observed per node (invariant 3).
  std::map<NodeId, std::uint32_t> max_pages_;
  // Invariant 5 ledger, keyed by (server, page).
  std::map<std::pair<NodeId, std::uint32_t>, std::uint64_t> allowance_;
  std::map<std::pair<NodeId, std::uint32_t>, std::uint64_t> sent_;
  std::vector<InvariantViolation> violations_;
  std::uint64_t checks_run_ = 0;
};

}  // namespace lrs::sim
