#include "sim/trace.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/stats/stats.h"

namespace lrs::sim {

void TraceRecorder::record(TraceEvent e) {
  if (!enabled_) return;
  static stats::Counter& recorded =
      stats::Registry::instance().counter("sim.trace.events");
  recorded.add();
  events_.push_back(e);
}

namespace {

void put_u32(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(Bytes& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(ByteView in, std::size_t at) {
  return static_cast<std::uint32_t>(in[at]) |
         static_cast<std::uint32_t>(in[at + 1]) << 8 |
         static_cast<std::uint32_t>(in[at + 2]) << 16 |
         static_cast<std::uint32_t>(in[at + 3]) << 24;
}

std::uint64_t get_u64(ByteView in, std::size_t at) {
  return static_cast<std::uint64_t>(get_u32(in, at)) |
         static_cast<std::uint64_t>(get_u32(in, at + 4)) << 32;
}

bool known_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(TraceEventType::kSend) &&
         t <= static_cast<std::uint8_t>(TraceEventType::kDataRx);
}

/// Extracts an unsigned integer field `"key":value` from a JSONL line.
std::optional<std::uint64_t> json_uint(std::string_view line,
                                       std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const auto at = line.find(needle);
  if (at == std::string_view::npos) return std::nullopt;
  std::size_t i = at + needle.size();
  if (i >= line.size() || line[i] < '0' || line[i] > '9') return std::nullopt;
  std::uint64_t v = 0;
  while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
    v = v * 10 + static_cast<std::uint64_t>(line[i] - '0');
    ++i;
  }
  return v;
}

/// Extracts a string field `"key":"value"` from a JSONL line.
std::optional<std::string> json_str(std::string_view line,
                                    std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":\"";
  const auto at = line.find(needle);
  if (at == std::string_view::npos) return std::nullopt;
  const std::size_t start = at + needle.size();
  const auto end = line.find('"', start);
  if (end == std::string_view::npos) return std::nullopt;
  return std::string(line.substr(start, end - start));
}

std::optional<PacketClass> packet_class_from_byte(std::uint8_t c) {
  if (c >= kPacketClassCount) return std::nullopt;
  return static_cast<PacketClass>(c);
}

const char* data_status_name(std::uint8_t s) {
  // Mirrors proto::DataStatus (sim cannot include proto; the numeric
  // contract is pinned by tests/test_trace.cc).
  switch (s) {
    case 0: return "rejected";
    case 1: return "stale";
    case 2: return "stored";
    case 3: return "page_complete";
    case 4: return "image_complete";
  }
  return "?";
}

const char* engine_state_name(std::uint32_t s) {
  // Mirrors proto::NodeState (same layering note as data_status_name).
  switch (s) {
    case 0: return "maintain";
    case 1: return "rx";
    case 2: return "tx";
  }
  return "?";
}

}  // namespace

const char* trace_event_type_name(TraceEventType t) {
  switch (t) {
    case TraceEventType::kSend: return "send";
    case TraceEventType::kDeliver: return "deliver";
    case TraceEventType::kReboot: return "reboot";
    case TraceEventType::kStateTransition: return "state";
    case TraceEventType::kPageComplete: return "page_complete";
    case TraceEventType::kNodeComplete: return "node_complete";
    case TraceEventType::kAuthFailure: return "auth_failure";
    case TraceEventType::kDataServe: return "data_serve";
    case TraceEventType::kDataRx: return "data_rx";
  }
  return "?";
}

std::optional<TraceEventType> trace_event_type_from_name(std::string_view s) {
  for (std::uint8_t t = static_cast<std::uint8_t>(TraceEventType::kSend);
       t <= static_cast<std::uint8_t>(TraceEventType::kDataRx); ++t) {
    if (s == trace_event_type_name(static_cast<TraceEventType>(t))) {
      return static_cast<TraceEventType>(t);
    }
  }
  return std::nullopt;
}

void TraceEvent::encode(Bytes& out) const {
  put_u64(out, static_cast<std::uint64_t>(time));
  out.push_back(static_cast<std::uint8_t>(type));
  put_u32(out, node);
  put_u32(out, peer);
  out.push_back(cls);
  put_u32(out, a);
  put_u32(out, b);
}

std::optional<TraceEvent> TraceEvent::decode(ByteView in) {
  if (in.size() < kTraceEventWireSize) return std::nullopt;
  if (!known_type(in[8])) return std::nullopt;
  TraceEvent e;
  e.time = static_cast<SimTime>(get_u64(in, 0));
  e.type = static_cast<TraceEventType>(in[8]);
  e.node = get_u32(in, 9);
  e.peer = get_u32(in, 13);
  e.cls = in[17];
  e.a = get_u32(in, 18);
  e.b = get_u32(in, 22);
  return e;
}

std::string TraceEvent::to_jsonl() const {
  std::ostringstream os;
  os << "{\"t\":" << time << ",\"type\":\"" << trace_event_type_name(type)
     << "\",\"node\":" << node;
  switch (type) {
    case TraceEventType::kSend:
      os << ",\"cls\":\"" << packet_class_name(static_cast<PacketClass>(cls))
         << "\",\"bytes\":" << a;
      break;
    case TraceEventType::kDeliver:
      os << ",\"from\":" << peer << ",\"cls\":\""
         << packet_class_name(static_cast<PacketClass>(cls))
         << "\",\"bytes\":" << a << ",\"tampered\":" << (b ? 1 : 0);
      break;
    case TraceEventType::kReboot:
    case TraceEventType::kNodeComplete:
      break;
    case TraceEventType::kStateTransition:
      os << ",\"from_state\":\"" << engine_state_name(a)
         << "\",\"to_state\":\"" << engine_state_name(b) << "\"";
      break;
    case TraceEventType::kPageComplete:
      os << ",\"page\":" << a << ",\"pages_complete\":" << b;
      break;
    case TraceEventType::kAuthFailure:
      os << ",\"cls\":\"" << packet_class_name(static_cast<PacketClass>(cls))
         << "\"";
      break;
    case TraceEventType::kDataServe:
      os << ",\"page\":" << a << ",\"index\":" << b;
      break;
    case TraceEventType::kDataRx:
      os << ",\"page\":" << a << ",\"index\":" << b << ",\"status\":\""
         << data_status_name(cls) << "\"";
      break;
  }
  os << "}";
  return os.str();
}

std::optional<TraceEvent> TraceEvent::from_jsonl(std::string_view line) {
  const auto t = json_uint(line, "t");
  const auto type_name = json_str(line, "type");
  const auto node = json_uint(line, "node");
  if (!t || !type_name || !node) return std::nullopt;
  const auto type = trace_event_type_from_name(*type_name);
  if (!type) return std::nullopt;

  TraceEvent e;
  e.time = static_cast<SimTime>(*t);
  e.type = *type;
  e.node = static_cast<NodeId>(*node);

  const auto cls_of = [&](std::string_view key) -> std::optional<std::uint8_t> {
    const auto name = json_str(line, key);
    if (!name) return std::nullopt;
    if (const auto c = packet_class_from_name(*name)) {
      return static_cast<std::uint8_t>(*c);
    }
    return std::nullopt;
  };

  switch (*type) {
    case TraceEventType::kSend: {
      const auto cls = cls_of("cls");
      const auto bytes = json_uint(line, "bytes");
      if (!cls || !bytes) return std::nullopt;
      e.cls = *cls;
      e.a = static_cast<std::uint32_t>(*bytes);
      break;
    }
    case TraceEventType::kDeliver: {
      const auto cls = cls_of("cls");
      const auto from = json_uint(line, "from");
      const auto bytes = json_uint(line, "bytes");
      const auto tampered = json_uint(line, "tampered");
      if (!cls || !from || !bytes || !tampered) return std::nullopt;
      e.cls = *cls;
      e.peer = static_cast<NodeId>(*from);
      e.a = static_cast<std::uint32_t>(*bytes);
      e.b = static_cast<std::uint32_t>(*tampered);
      break;
    }
    case TraceEventType::kReboot:
    case TraceEventType::kNodeComplete:
      break;
    case TraceEventType::kStateTransition: {
      const auto from = json_str(line, "from_state");
      const auto to = json_str(line, "to_state");
      if (!from || !to) return std::nullopt;
      const auto decode_state =
          [](const std::string& s) -> std::optional<std::uint32_t> {
        for (std::uint32_t v = 0; v < 3; ++v) {
          if (s == engine_state_name(v)) return v;
        }
        return std::nullopt;
      };
      const auto fa = decode_state(*from);
      const auto fb = decode_state(*to);
      if (!fa || !fb) return std::nullopt;
      e.a = *fa;
      e.b = *fb;
      break;
    }
    case TraceEventType::kPageComplete: {
      const auto page = json_uint(line, "page");
      const auto pc = json_uint(line, "pages_complete");
      if (!page || !pc) return std::nullopt;
      e.a = static_cast<std::uint32_t>(*page);
      e.b = static_cast<std::uint32_t>(*pc);
      break;
    }
    case TraceEventType::kAuthFailure: {
      const auto cls = cls_of("cls");
      if (!cls) return std::nullopt;
      e.cls = *cls;
      break;
    }
    case TraceEventType::kDataServe: {
      const auto page = json_uint(line, "page");
      const auto index = json_uint(line, "index");
      if (!page || !index) return std::nullopt;
      e.a = static_cast<std::uint32_t>(*page);
      e.b = static_cast<std::uint32_t>(*index);
      break;
    }
    case TraceEventType::kDataRx: {
      const auto page = json_uint(line, "page");
      const auto index = json_uint(line, "index");
      const auto status = json_str(line, "status");
      if (!page || !index || !status) return std::nullopt;
      e.a = static_cast<std::uint32_t>(*page);
      e.b = static_cast<std::uint32_t>(*index);
      std::optional<std::uint8_t> code;
      for (std::uint8_t s = 0; s <= 4; ++s) {
        if (*status == data_status_name(s)) code = s;
      }
      if (!code) return std::nullopt;
      e.cls = *code;
      break;
    }
  }
  return e;
}

TraceRecorder::TraceRecorder(bool enabled) : enabled_(enabled) {
  if (enabled_) events_.reserve(4096);
}

void TraceRecorder::on_send(SimTime now, NodeId sender, PacketClass cls,
                            ByteView frame) {
  record({now, TraceEventType::kSend, sender, 0,
          static_cast<std::uint8_t>(cls),
          static_cast<std::uint32_t>(frame.size()), 0});
}

void TraceRecorder::after_deliver(SimTime now, NodeId from, NodeId to,
                                  PacketClass cls, ByteView frame,
                                  bool tampered) {
  record({now, TraceEventType::kDeliver, to, from,
          static_cast<std::uint8_t>(cls),
          static_cast<std::uint32_t>(frame.size()), tampered ? 1u : 0u});
}

void TraceRecorder::on_reboot(SimTime now, NodeId node) {
  record({now, TraceEventType::kReboot, node, 0, 0, 0, 0});
}

void TraceRecorder::on_state_transition(SimTime now, NodeId node, int from,
                                        int to) {
  record({now, TraceEventType::kStateTransition, node, 0, 0,
          static_cast<std::uint32_t>(from), static_cast<std::uint32_t>(to)});
}

void TraceRecorder::on_page_complete(SimTime now, NodeId node,
                                     std::uint32_t page,
                                     std::uint32_t pages_complete) {
  record({now, TraceEventType::kPageComplete, node, 0, 0, page,
          pages_complete});
}

void TraceRecorder::on_node_complete(SimTime now, NodeId node) {
  record({now, TraceEventType::kNodeComplete, node, 0, 0, 0, 0});
}

void TraceRecorder::on_auth_failure(SimTime now, NodeId node,
                                    PacketClass cls) {
  record({now, TraceEventType::kAuthFailure, node, 0,
          static_cast<std::uint8_t>(cls), 0, 0});
}

void TraceRecorder::on_data_served(SimTime now, NodeId node,
                                   std::uint32_t page, std::uint32_t index) {
  record({now, TraceEventType::kDataServe, node, 0, 0, page, index});
}

void TraceRecorder::on_data_packet(SimTime now, NodeId node,
                                   std::uint32_t page, std::uint32_t index,
                                   int status) {
  record({now, TraceEventType::kDataRx, node, 0,
          static_cast<std::uint8_t>(status), page, index});
}

bool TraceRecorder::write_jsonl(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  for (const auto& e : events_) out << e.to_jsonl() << "\n";
  return static_cast<bool>(out);
}

bool TraceRecorder::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;

  // Track nodes seen so every lane gets a thread-name metadata record.
  NodeId max_node = 0;
  for (const auto& e : events_) max_node = std::max(max_node, e.node);

  out << "{\"traceEvents\":[\n";
  bool first = true;
  const auto sep = [&] {
    if (!first) out << ",\n";
    first = false;
  };
  for (NodeId n = 0; n <= max_node; ++n) {
    sep();
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << n
        << ",\"args\":{\"name\":\"node " << n
        << (n == 0 ? " (base)" : "") << "\"}}";
  }
  std::uint64_t completed = 0;
  for (const auto& e : events_) {
    sep();
    switch (e.type) {
      case TraceEventType::kNodeComplete:
        ++completed;
        out << "{\"name\":\"completed_nodes\",\"ph\":\"C\",\"pid\":0,"
            << "\"ts\":" << e.time << ",\"args\":{\"completed\":" << completed
            << "}}";
        break;
      case TraceEventType::kPageComplete:
        out << "{\"name\":\"frontier node " << e.node
            << "\",\"ph\":\"C\",\"pid\":0,\"ts\":" << e.time
            << ",\"args\":{\"pages_complete\":" << e.b << "}}";
        break;
      case TraceEventType::kStateTransition:
        out << "{\"name\":\"" << engine_state_name(e.b)
            << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":" << e.node
            << ",\"ts\":" << e.time << ",\"args\":{\"from\":\""
            << engine_state_name(e.a) << "\"}}";
        break;
      default:
        out << "{\"name\":\"" << trace_event_type_name(e.type)
            << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":" << e.node
            << ",\"ts\":" << e.time << ",\"args\":{";
        if (e.type == TraceEventType::kSend ||
            e.type == TraceEventType::kDeliver ||
            e.type == TraceEventType::kAuthFailure) {
          out << "\"cls\":\""
              << packet_class_name(static_cast<PacketClass>(e.cls)) << "\"";
          if (e.type != TraceEventType::kAuthFailure) {
            out << ",\"bytes\":" << e.a;
          }
          if (e.type == TraceEventType::kDeliver) {
            out << ",\"from\":" << e.peer;
          }
        } else if (e.type == TraceEventType::kDataServe ||
                   e.type == TraceEventType::kDataRx) {
          out << "\"page\":" << e.a << ",\"index\":" << e.b;
          if (e.type == TraceEventType::kDataRx) {
            out << ",\"status\":\"" << data_status_name(e.cls) << "\"";
          }
        }
        out << "}}";
        break;
    }
  }
  out << "\n]}\n";
  return static_cast<bool>(out);
}

std::vector<TimeSeriesSample> build_time_series(
    const std::vector<TraceEvent>& events, SimTime period,
    std::size_t node_count) {
  if (period <= 0) period = kSecond;
  std::vector<TimeSeriesSample> samples;
  TimeSeriesSample cur;  // running cumulative counters
  std::vector<std::uint32_t> frontier(node_count, 0);

  const auto frontier_stats = [&](TimeSeriesSample& s) {
    std::uint32_t fmin = 0;
    std::uint64_t fsum = 0;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      fsum += frontier[i];
      if (i == 1 || (i > 1 && frontier[i] < fmin)) fmin = frontier[i];
    }
    s.frontier_min = node_count > 1 ? fmin : 0;
    s.frontier_sum = fsum;
  };

  SimTime next_sample = period;
  const auto flush_until = [&](SimTime t) {
    while (next_sample <= t) {
      TimeSeriesSample s = cur;
      s.time = next_sample;
      frontier_stats(s);
      samples.push_back(s);
      next_sample += period;
    }
  };

  for (const auto& e : events) {
    flush_until(e.time - 1);  // samples cover (prev, next_sample]
    switch (e.type) {
      case TraceEventType::kSend:
        if (e.cls < kPacketClassCount) cur.sent[e.cls] += 1;
        cur.sent_bytes += e.a;
        break;
      case TraceEventType::kNodeComplete:
        cur.completed_nodes += 1;
        break;
      case TraceEventType::kPageComplete:
        if (e.node < frontier.size()) frontier[e.node] = e.b;
        break;
      case TraceEventType::kAuthFailure:
        cur.auth_failures += 1;
        break;
      default:
        break;
    }
  }
  // Final partial sample so the curve always reaches the last event.
  const SimTime end = events.empty() ? 0 : events.back().time;
  TimeSeriesSample s = cur;
  s.time = std::max(end, next_sample - period);
  frontier_stats(s);
  flush_until(s.time);
  if (samples.empty() || samples.back().time < s.time) samples.push_back(s);
  return samples;
}

bool write_time_series(const std::vector<TimeSeriesSample>& samples,
                       SimTime period, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << "{\n  \"period_us\": " << period << ",\n  \"columns\": [\"t_us\"";
  for (std::size_t c = 0; c < kPacketClassCount; ++c) {
    out << ", \"sent_" << packet_class_name(static_cast<PacketClass>(c))
        << "\"";
  }
  out << ", \"sent_bytes\", \"completed_nodes\", \"frontier_min\","
      << " \"frontier_sum\", \"auth_failures\"],\n  \"rows\": [\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& s = samples[i];
    out << "    [" << s.time;
    for (std::size_t c = 0; c < kPacketClassCount; ++c) {
      out << ", " << s.sent[c];
    }
    out << ", " << s.sent_bytes << ", " << s.completed_nodes << ", "
        << s.frontier_min << ", " << s.frontier_sum << ", "
        << s.auth_failures << "]" << (i + 1 < samples.size() ? "," : "")
        << "\n";
  }
  out << "  ]\n}\n";
  return static_cast<bool>(out);
}

TraceExportConfig trace_for_trial(const TraceExportConfig& base,
                                  std::size_t config_index,
                                  std::size_t trial_index) {
  if (!base.enabled()) return {};
  if (config_index == 0 && trial_index == 0) return base;
  if (!base.all_trials) return {};

  const auto derive = [&](const std::string& path) -> std::string {
    if (path.empty()) return path;
    std::ostringstream tag;
    tag << ".c" << config_index << ".t" << trial_index;
    const auto slash = path.find_last_of('/');
    const auto dot = path.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash)) {
      return path + tag.str();  // no extension: append the tag
    }
    return path.substr(0, dot) + tag.str() + path.substr(dot);
  };

  TraceExportConfig out = base;
  out.events_path = derive(base.events_path);
  out.chrome_path = derive(base.chrome_path);
  out.timeseries_path = derive(base.timeseries_path);
  return out;
}

bool export_trace(const TraceRecorder& recorder,
                  const TraceExportConfig& config, std::size_t node_count) {
  bool ok = true;
  if (!config.events_path.empty()) {
    ok = recorder.write_jsonl(config.events_path) && ok;
  }
  if (!config.chrome_path.empty()) {
    ok = recorder.write_chrome_trace(config.chrome_path) && ok;
  }
  if (!config.timeseries_path.empty()) {
    const auto samples = build_time_series(
        recorder.events(), config.sample_period, node_count);
    ok = write_time_series(samples, config.sample_period,
                           config.timeseries_path) &&
         ok;
  }
  return ok;
}

}  // namespace lrs::sim
