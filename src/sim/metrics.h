// Measurement plumbing: everything the paper's figures and tables report.
//
// Frames are classified so the harnesses can print the paper's five metrics:
// data packets, SNACK packets, advertisement packets, total bytes, and
// dissemination latency (completion time of the last node). Security
// experiments additionally count per-node verification work and rejected
// packets.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.h"
#include "util/types.h"

namespace lrs::sim {

enum class PacketClass : std::uint8_t {
  kData = 0,
  kSnack,
  kAdvertisement,
  kSignature,
  kCount  // sentinel
};

const char* packet_class_name(PacketClass c);
/// Inverse of packet_class_name; nullopt for unknown names (and "?").
std::optional<PacketClass> packet_class_from_name(std::string_view name);

inline constexpr std::size_t kPacketClassCount =
    static_cast<std::size_t>(PacketClass::kCount);

struct NodeMetrics {
  std::array<std::uint64_t, kPacketClassCount> sent{};
  std::array<std::uint64_t, kPacketClassCount> sent_bytes{};
  std::array<std::uint64_t, kPacketClassCount> received{};
  std::array<std::uint64_t, kPacketClassCount> received_bytes{};

  std::uint64_t hash_verifications = 0;
  std::uint64_t signature_verifications = 0;
  std::uint64_t puzzle_rejections = 0;
  std::uint64_t auth_failures = 0;   // packets that failed authentication
  std::uint64_t decode_operations = 0;
  std::uint64_t snacks_ignored = 0;  // denial-of-receipt mitigation hits
  /// Data packets sent for the hash page (page 0) — lets harnesses report
  /// content-page transmissions separately (Fig. 3 compares one page).
  std::uint64_t page0_data_sent = 0;
  /// Whole pages thrown away because deferred (page-level) authentication
  /// failed after assembly — Sluice's buffer-pollution exposure.
  std::uint64_t page_discards = 0;

  /// Radio occupancy, microseconds: transmitting, and locked onto
  /// incoming frames (successful or not — the radio pays either way).
  std::uint64_t tx_airtime_us = 0;
  std::uint64_t rx_airtime_us = 0;

  /// Set when the node holds the complete, verified image; -1 = incomplete.
  /// Written through Metrics::record_completion so the network-wide
  /// completion counter stays exact.
  SimTime completion_time = -1;
};

class Metrics {
 public:
  explicit Metrics(std::size_t node_count) : nodes_(node_count) {}

  NodeMetrics& node(NodeId id) { return nodes_[id]; }
  const NodeMetrics& node(NodeId id) const { return nodes_[id]; }
  std::size_t node_count() const { return nodes_.size(); }

  void record_send(NodeId id, PacketClass c, std::size_t frame_bytes);
  void record_receive(NodeId id, PacketClass c, std::size_t frame_bytes);

  /// Network-wide totals.
  std::uint64_t total_sent(PacketClass c) const;
  std::uint64_t total_sent_bytes() const;
  std::uint64_t total_sent_bytes(PacketClass c) const;
  std::uint64_t total_received(PacketClass c) const;
  std::uint64_t total_received_bytes() const;
  std::uint64_t total_received_bytes(PacketClass c) const;
  std::uint64_t total_auth_failures() const;
  std::uint64_t total_hash_verifications() const;
  std::uint64_t total_signature_verifications() const;

  /// Marks `id` complete at time `at`. Returns true the first time for the
  /// node (repeat calls are no-ops), so callers can fire once-per-node
  /// hooks off it.
  bool record_completion(NodeId id, SimTime at);

  /// Nodes that have completed, O(1) — this is polled after every event in
  /// the simulator's done() check, so it must not scan.
  std::size_t completions() const { return completions_; }
  /// Number of nodes (excluding `excluding`, usually the base station) that
  /// have completed. O(1).
  std::size_t completed_count(NodeId excluding) const;
  /// Latest completion time over all completed nodes; -1 if none.
  SimTime last_completion() const;

 private:
  std::vector<NodeMetrics> nodes_;
  std::size_t completions_ = 0;
};

}  // namespace lrs::sim
