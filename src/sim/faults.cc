#include "sim/faults.h"

#include <algorithm>
#include <sstream>
#include <utility>

namespace lrs::sim {

namespace {

class CorruptionFault final : public FaultModel {
 public:
  explicit CorruptionFault(CorruptionFaultParams p) : p_(p) {}

  void apply(NodeId /*from*/, NodeId /*to*/, SimTime /*now*/, Bytes& frame,
             FaultAction& action, Rng& rng) override {
    if (frame.empty() || !rng.bernoulli(p_.prob)) return;
    if (p_.burst) {
      const std::size_t len = static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(
                                 std::min(p_.burst_len, frame.size()))));
      const std::size_t start = static_cast<std::size_t>(
          rng.uniform(static_cast<std::uint64_t>(frame.size() - len + 1)));
      for (std::size_t i = 0; i < len; ++i) {
        // xor with 1..255 guarantees each byte in the burst changes
        frame[start + i] ^= static_cast<std::uint8_t>(rng.uniform(255) + 1);
      }
    } else {
      const std::uint64_t total_bits =
          static_cast<std::uint64_t>(frame.size()) * 8;
      const std::size_t flips = std::min<std::size_t>(
          static_cast<std::size_t>(
              rng.uniform_int(1, static_cast<std::int64_t>(
                                     std::max<std::size_t>(1, p_.max_flips)))),
          static_cast<std::size_t>(total_bits));
      // Distinct bit positions: an even number of flips landing on the
      // same bit would cancel out, silently breaking the "guaranteed to
      // change the frame" contract (and the tampered marking with it).
      std::vector<std::uint64_t> bits;
      bits.reserve(flips);
      while (bits.size() < flips) {
        const std::uint64_t bit = rng.uniform(total_bits);
        if (std::find(bits.begin(), bits.end(), bit) != bits.end()) continue;
        bits.push_back(bit);
        frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      }
    }
    action.tampered = true;
  }

 private:
  CorruptionFaultParams p_;
};

class TruncationFault final : public FaultModel {
 public:
  explicit TruncationFault(TruncationFaultParams p) : p_(p) {}

  void apply(NodeId /*from*/, NodeId /*to*/, SimTime /*now*/, Bytes& frame,
             FaultAction& action, Rng& rng) override {
    if (!frame.empty() && rng.bernoulli(p_.truncate_prob)) {
      frame.resize(static_cast<std::size_t>(
          rng.uniform(static_cast<std::uint64_t>(frame.size()))));
      action.tampered = true;
    }
    if (p_.max_pad > 0 && rng.bernoulli(p_.pad_prob)) {
      const std::size_t pad = static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(p_.max_pad)));
      for (std::size_t i = 0; i < pad; ++i) {
        frame.push_back(static_cast<std::uint8_t>(rng.uniform(256)));
      }
      action.tampered = true;
    }
  }

 private:
  TruncationFaultParams p_;
};

class DuplicationFault final : public FaultModel {
 public:
  explicit DuplicationFault(DuplicationFaultParams p) : p_(p) {}

  void apply(NodeId /*from*/, NodeId /*to*/, SimTime /*now*/, Bytes& /*frame*/,
             FaultAction& action, Rng& rng) override {
    if (p_.max_copies < 2 || !rng.bernoulli(p_.prob)) return;
    action.copies *= static_cast<std::size_t>(
        rng.uniform_int(2, static_cast<std::int64_t>(p_.max_copies)));
  }

 private:
  DuplicationFaultParams p_;
};

class ReorderFault final : public FaultModel {
 public:
  explicit ReorderFault(ReorderFaultParams p) : p_(p) {}

  void apply(NodeId /*from*/, NodeId /*to*/, SimTime /*now*/, Bytes& /*frame*/,
             FaultAction& action, Rng& rng) override {
    if (p_.max_delay <= 0 || !rng.bernoulli(p_.prob)) return;
    action.delay += static_cast<SimTime>(
        rng.uniform_int(1, static_cast<std::int64_t>(p_.max_delay)));
  }

 private:
  ReorderFaultParams p_;
};

class CrashFault final : public FaultModel {
 public:
  explicit CrashFault(std::vector<CrashEvent> events)
      : events_(std::move(events)) {}

  void apply(NodeId /*from*/, NodeId /*to*/, SimTime /*now*/, Bytes& /*frame*/,
             FaultAction& /*action*/, Rng& /*rng*/) override {}

  bool is_down(NodeId node, SimTime now) const override {
    for (const auto& e : events_) {
      if (e.node == node && now >= e.at && now < e.at + e.downtime) {
        return true;
      }
    }
    return false;
  }

  std::vector<CrashEvent> crash_events() const override { return events_; }

 private:
  std::vector<CrashEvent> events_;
};

class FaultChain final : public FaultModel {
 public:
  explicit FaultChain(std::vector<std::unique_ptr<FaultModel>> models)
      : models_(std::move(models)) {}

  void apply(NodeId from, NodeId to, SimTime now, Bytes& frame,
             FaultAction& action, Rng& rng) override {
    for (auto& m : models_) {
      m->apply(from, to, now, frame, action, rng);
      if (action.drop) return;
    }
  }

  bool is_down(NodeId node, SimTime now) const override {
    for (const auto& m : models_) {
      if (m->is_down(node, now)) return true;
    }
    return false;
  }

  std::vector<CrashEvent> crash_events() const override {
    std::vector<CrashEvent> all;
    for (const auto& m : models_) {
      auto sub = m->crash_events();
      all.insert(all.end(), sub.begin(), sub.end());
    }
    return all;
  }

 private:
  std::vector<std::unique_ptr<FaultModel>> models_;
};

}  // namespace

std::unique_ptr<FaultModel> make_corruption_fault(CorruptionFaultParams p) {
  return std::make_unique<CorruptionFault>(p);
}

std::unique_ptr<FaultModel> make_truncation_fault(TruncationFaultParams p) {
  return std::make_unique<TruncationFault>(p);
}

std::unique_ptr<FaultModel> make_duplication_fault(DuplicationFaultParams p) {
  return std::make_unique<DuplicationFault>(p);
}

std::unique_ptr<FaultModel> make_reorder_fault(ReorderFaultParams p) {
  return std::make_unique<ReorderFault>(p);
}

std::unique_ptr<FaultModel> make_crash_fault(std::vector<CrashEvent> events) {
  return std::make_unique<CrashFault>(std::move(events));
}

std::unique_ptr<FaultModel> make_fault_chain(
    std::vector<std::unique_ptr<FaultModel>> models) {
  return std::make_unique<FaultChain>(std::move(models));
}

bool FaultPlan::any() const {
  return corrupt_prob > 0 || truncate_prob > 0 || pad_prob > 0 ||
         duplicate_prob > 0 || reorder_prob > 0 || !crashes.empty();
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  bool first = true;
  auto sep = [&] {
    if (!first) os << ' ';
    first = false;
  };
  if (corrupt_prob > 0) {
    sep();
    os << "corrupt(p=" << corrupt_prob;
    if (corrupt_burst) {
      os << ",burst=" << corrupt_burst_len;
    } else {
      os << ",flips=" << corrupt_max_flips;
    }
    os << ')';
  }
  if (truncate_prob > 0) {
    sep();
    os << "truncate(p=" << truncate_prob << ')';
  }
  if (pad_prob > 0) {
    sep();
    os << "pad(p=" << pad_prob << ",max=" << max_pad << ')';
  }
  if (duplicate_prob > 0) {
    sep();
    os << "dup(p=" << duplicate_prob << ",max=" << max_copies << ')';
  }
  if (reorder_prob > 0) {
    sep();
    os << "reorder(p=" << reorder_prob
       << ",max=" << to_seconds(reorder_max_delay) << "s)";
  }
  for (const auto& c : crashes) {
    sep();
    os << "crash(n" << c.node << '@' << to_seconds(c.at) << "s+"
       << to_seconds(c.downtime) << "s)";
  }
  if (first) os << "none";
  return os.str();
}

std::unique_ptr<FaultModel> make_fault_model(const FaultPlan& plan) {
  if (!plan.any()) return nullptr;
  std::vector<std::unique_ptr<FaultModel>> models;
  if (plan.corrupt_prob > 0) {
    models.push_back(make_corruption_fault({plan.corrupt_prob,
                                            plan.corrupt_max_flips,
                                            plan.corrupt_burst,
                                            plan.corrupt_burst_len}));
  }
  if (plan.truncate_prob > 0 || plan.pad_prob > 0) {
    models.push_back(make_truncation_fault(
        {plan.truncate_prob, plan.pad_prob, plan.max_pad}));
  }
  if (plan.duplicate_prob > 0) {
    models.push_back(
        make_duplication_fault({plan.duplicate_prob, plan.max_copies}));
  }
  if (plan.reorder_prob > 0) {
    models.push_back(
        make_reorder_fault({plan.reorder_prob, plan.reorder_max_delay}));
  }
  if (!plan.crashes.empty()) {
    models.push_back(make_crash_fault(plan.crashes));
  }
  if (models.size() == 1) return std::move(models.front());
  return make_fault_chain(std::move(models));
}

}  // namespace lrs::sim
