#include "sim/metrics.h"

#include <algorithm>

#include "util/check.h"

namespace lrs::sim {

const char* packet_class_name(PacketClass c) {
  switch (c) {
    case PacketClass::kData: return "data";
    case PacketClass::kSnack: return "snack";
    case PacketClass::kAdvertisement: return "adv";
    case PacketClass::kSignature: return "signature";
    case PacketClass::kCount: break;
  }
  return "?";
}

std::optional<PacketClass> packet_class_from_name(std::string_view name) {
  for (std::size_t c = 0; c < kPacketClassCount; ++c) {
    const auto cls = static_cast<PacketClass>(c);
    if (name == packet_class_name(cls)) return cls;
  }
  return std::nullopt;
}

void Metrics::record_send(NodeId id, PacketClass c, std::size_t frame_bytes) {
  LRS_CHECK(id < nodes_.size());
  auto& m = nodes_[id];
  m.sent[static_cast<std::size_t>(c)] += 1;
  m.sent_bytes[static_cast<std::size_t>(c)] += frame_bytes;
}

void Metrics::record_receive(NodeId id, PacketClass c,
                             std::size_t frame_bytes) {
  LRS_CHECK(id < nodes_.size());
  auto& m = nodes_[id];
  m.received[static_cast<std::size_t>(c)] += 1;
  m.received_bytes[static_cast<std::size_t>(c)] += frame_bytes;
}

std::uint64_t Metrics::total_sent(PacketClass c) const {
  std::uint64_t total = 0;
  for (const auto& m : nodes_) total += m.sent[static_cast<std::size_t>(c)];
  return total;
}

std::uint64_t Metrics::total_sent_bytes() const {
  std::uint64_t total = 0;
  for (const auto& m : nodes_)
    for (auto b : m.sent_bytes) total += b;
  return total;
}

std::uint64_t Metrics::total_sent_bytes(PacketClass c) const {
  std::uint64_t total = 0;
  for (const auto& m : nodes_)
    total += m.sent_bytes[static_cast<std::size_t>(c)];
  return total;
}

std::uint64_t Metrics::total_received(PacketClass c) const {
  std::uint64_t total = 0;
  for (const auto& m : nodes_)
    total += m.received[static_cast<std::size_t>(c)];
  return total;
}

std::uint64_t Metrics::total_received_bytes() const {
  std::uint64_t total = 0;
  for (const auto& m : nodes_)
    for (auto b : m.received_bytes) total += b;
  return total;
}

std::uint64_t Metrics::total_received_bytes(PacketClass c) const {
  std::uint64_t total = 0;
  for (const auto& m : nodes_)
    total += m.received_bytes[static_cast<std::size_t>(c)];
  return total;
}

std::uint64_t Metrics::total_auth_failures() const {
  std::uint64_t total = 0;
  for (const auto& m : nodes_) total += m.auth_failures;
  return total;
}

std::uint64_t Metrics::total_hash_verifications() const {
  std::uint64_t total = 0;
  for (const auto& m : nodes_) total += m.hash_verifications;
  return total;
}

std::uint64_t Metrics::total_signature_verifications() const {
  std::uint64_t total = 0;
  for (const auto& m : nodes_) total += m.signature_verifications;
  return total;
}

bool Metrics::record_completion(NodeId id, SimTime at) {
  LRS_CHECK(id < nodes_.size());
  auto& m = nodes_[id];
  if (m.completion_time >= 0) return false;
  m.completion_time = at;
  ++completions_;
  return true;
}

std::size_t Metrics::completed_count(NodeId excluding) const {
  std::size_t count = completions_;
  if (excluding < nodes_.size() && nodes_[excluding].completion_time >= 0) {
    --count;
  }
  return count;
}

SimTime Metrics::last_completion() const {
  SimTime last = -1;
  for (const auto& m : nodes_) last = std::max(last, m.completion_time);
  return last;
}

}  // namespace lrs::sim
