// Topology partitioning for island-sharded simulation.
//
// An *island* is a maximal radio-connected component of the topology: no
// frame, carrier or collision can ever cross between two islands, so each
// one is a closed discrete-event system. The island executor
// (core/experiment.cc) simulates islands independently — serially or on a
// worker pool — and merges their metrics in island order, which is what
// makes serial and LRS_JOBS=N runs byte-identical: every island's event
// stream, rng draws and metrics are a pure function of (topology, seed,
// island membership), none of which depend on scheduling.
//
// Determinism contract:
//  - islands are ordered by their smallest NodeId (ascending), and
//  - each island's member list is sorted ascending,
// so the decomposition of a topology is a pure function of its adjacency
// and never of traversal timing.
#pragma once

#include <vector>

#include "sim/topology.h"
#include "util/types.h"

namespace lrs::sim {

/// Radio-connected components of `t`, each sorted ascending, ordered by
/// smallest member id. A connected topology yields exactly one island
/// containing every node.
std::vector<std::vector<NodeId>> radio_islands(const Topology& t);

}  // namespace lrs::sim
