// Structured event tracing and time-series progress metrics (observability
// layer, ISSUE 4 tentpole).
//
// A TraceRecorder attaches to the simulator's SimObserver hook set and
// captures every send, delivery, reboot, engine state transition, page
// completion, node completion, auth failure and data serve/receive as a
// compact fixed-width binary event (26 bytes in memory and on the wire).
// Recording is append-only into one contiguous vector: no per-event
// allocation beyond amortized growth, no formatting, no I/O until export.
// When no recorder is attached the simulator's observer pointer stays null
// and the hot paths pay a single branch — the null-recorder fast path.
//
// After the run the event log exports to
//  * JSONL         — one JSON object per line, stable key order, integer
//                    times (microseconds). The machine-readable archive
//                    format consumed by trace_analyze and the CI checker.
//  * Chrome trace  — {"traceEvents": [...]} loadable by Perfetto or
//                    chrome://tracing: one thread lane per node, instant
//                    events for packets, counter tracks for completed
//                    nodes and the page frontier.
//  * time series   — counters sampled on a fixed SimTime grid (packets
//                    sent by class, cumulative bytes, completed-node
//                    count, page-frontier min/sum, auth failures), the
//                    input for convergence-curve plots (paper Figs. 3-6).
//
// Everything here is deterministic: same (scheme, config, seed) produces
// byte-identical export files, serial or under LRS_JOBS parallelism.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/metrics.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "util/types.h"

namespace lrs::sim {

enum class TraceEventType : std::uint8_t {
  kSend = 1,             // node broadcast a frame: cls, a=frame bytes
  kDeliver = 2,          // frame survived the channel: peer=sender, cls,
                         // a=frame bytes, b=1 when fault-tampered
  kReboot = 3,           // crash/reboot fault restarted the node
  kStateTransition = 4,  // engine state change: a=from, b=to (NodeState)
  kPageComplete = 5,     // page decoded+verified: a=page, b=pages_complete
  kNodeComplete = 6,     // node holds the complete verified image
  kAuthFailure = 7,      // packet failed authentication: cls
  kDataServe = 8,        // sender-side data packet choice: a=page, b=index
  kDataRx = 9,           // receiver-side data outcome: a=page, b=index,
                         // cls=proto::DataStatus
};

/// Human-readable tag used in the JSONL "type" field.
const char* trace_event_type_name(TraceEventType t);
/// Inverse of trace_event_type_name; nullopt for unknown tags.
std::optional<TraceEventType> trace_event_type_from_name(std::string_view s);

/// One trace record. The in-memory layout doubles as the binary wire
/// format: encode() emits exactly kTraceEventWireSize little-endian bytes,
/// decode() consumes them and fails soft on truncation or an unknown type.
struct TraceEvent {
  SimTime time = 0;              // microseconds since simulation start
  TraceEventType type = TraceEventType::kSend;
  NodeId node = 0;               // acting node (receiver for kDeliver)
  NodeId peer = 0;               // counterpart (sender for kDeliver), or 0
  std::uint8_t cls = 0;          // PacketClass / DataStatus, type-dependent
  std::uint32_t a = 0;           // type-dependent (see TraceEventType)
  std::uint32_t b = 0;           // type-dependent (see TraceEventType)

  bool operator==(const TraceEvent&) const = default;

  /// Appends the fixed-width binary encoding to `out`.
  void encode(Bytes& out) const;
  /// Decodes one record from the front of `in`; nullopt when `in` is
  /// shorter than kTraceEventWireSize or the type tag is unknown.
  static std::optional<TraceEvent> decode(ByteView in);

  /// One JSONL line (no trailing newline): integer microsecond time,
  /// symbolic type/class names, type-specific field names.
  std::string to_jsonl() const;
  /// Parses a line produced by to_jsonl(); nullopt on malformed input.
  static std::optional<TraceEvent> from_jsonl(std::string_view line);
};

inline constexpr std::size_t kTraceEventWireSize = 8 + 1 + 4 + 4 + 1 + 4 + 4;

/// Passive SimObserver that appends every hook invocation to an in-memory
/// event log. Constructing with enabled=false turns every record call into
/// an immediate return (and reserves nothing) so a shared code path can
/// keep a recorder object around at zero cost.
class TraceRecorder final : public SimObserver {
 public:
  explicit TraceRecorder(bool enabled = true);

  bool enabled() const { return enabled_; }
  const std::vector<TraceEvent>& events() const { return events_; }

  // SimObserver hooks (simulator side).
  void on_send(SimTime now, NodeId sender, PacketClass cls,
               ByteView frame) override;
  void after_deliver(SimTime now, NodeId from, NodeId to, PacketClass cls,
                     ByteView frame, bool tampered) override;
  void on_reboot(SimTime now, NodeId node) override;
  // SimObserver hooks (protocol side, emitted by the dissemination engine).
  void on_state_transition(SimTime now, NodeId node, int from,
                           int to) override;
  void on_page_complete(SimTime now, NodeId node, std::uint32_t page,
                        std::uint32_t pages_complete) override;
  void on_node_complete(SimTime now, NodeId node) override;
  void on_auth_failure(SimTime now, NodeId node, PacketClass cls) override;
  void on_data_served(SimTime now, NodeId node, std::uint32_t page,
                      std::uint32_t index) override;
  void on_data_packet(SimTime now, NodeId node, std::uint32_t page,
                      std::uint32_t index, int status) override;

  /// Writes the log as JSONL (one event per line). Returns false when the
  /// file cannot be opened.
  bool write_jsonl(const std::string& path) const;
  /// Writes Chrome trace / Perfetto JSON ({"traceEvents": [...]}).
  bool write_chrome_trace(const std::string& path) const;

 private:
  // Out of line: bumps the "sim.trace.events" metrics counter (the hook
  // trace_analyze --metrics-check cross-checks against a trace's line
  // count) without pulling sim/stats into this header.
  void record(TraceEvent e);

  bool enabled_;
  std::vector<TraceEvent> events_;
};

/// One sampled row of the progress time series.
struct TimeSeriesSample {
  SimTime time = 0;  // sample-grid timestamp (inclusive upper bound)
  std::uint64_t sent[kPacketClassCount] = {};  // cumulative sends by class
  std::uint64_t sent_bytes = 0;                // cumulative bytes on air
  std::uint64_t completed_nodes = 0;           // nodes holding the image
  std::uint32_t frontier_min = 0;   // min pages_complete over receivers
  std::uint64_t frontier_sum = 0;   // sum of pages_complete over all nodes
  std::uint64_t auth_failures = 0;  // cumulative rejected packets
};

/// Folds a recorded event log into cumulative counters sampled every
/// `period` microseconds (plus one final sample at the last event time).
/// `node_count` sizes the per-node frontier table; node 0 (the base
/// station) is excluded from frontier_min, matching completed_count(0).
std::vector<TimeSeriesSample> build_time_series(
    const std::vector<TraceEvent>& events, SimTime period,
    std::size_t node_count);

/// Writes the sampled series as JSON: {"period_us": ..., "columns": [...],
/// "rows": [[...], ...]}. Returns false when the file cannot be opened.
bool write_time_series(const std::vector<TimeSeriesSample>& samples,
                       SimTime period, const std::string& path);

/// Export destinations for one traced run; empty strings disable each
/// output. enabled() gates recorder construction — the null-recorder fast
/// path — so a default TraceExportConfig adds zero work to a run.
struct TraceExportConfig {
  std::string events_path;      // JSONL event log
  std::string chrome_path;      // Chrome trace / Perfetto JSON
  std::string timeseries_path;  // sampled progress counters
  SimTime sample_period = kSecond;
  /// Multi-trial runners (core/run_trials) trace only the first trial of
  /// the first config by default, writing these exact paths — so a traced
  /// sweep stays byte-identical to a single traced run. Set to trace every
  /// (config, trial) pair at derived paths instead (see trace_for_trial).
  bool all_trials = false;

  bool enabled() const {
    return !events_path.empty() || !chrome_path.empty() ||
           !timeseries_path.empty();
  }
};

/// Routes `base` to one (config, trial) cell of a sweep: cell (0, 0) gets
/// the base paths verbatim; other cells get ".c<ci>.t<ti>" inserted before
/// each path's extension when base.all_trials is set, and a disabled config
/// otherwise.
TraceExportConfig trace_for_trial(const TraceExportConfig& base,
                                  std::size_t config_index,
                                  std::size_t trial_index);

/// Writes every output requested by `config` from one recorded run.
/// Returns false when any requested file could not be written.
bool export_trace(const TraceRecorder& recorder,
                  const TraceExportConfig& config, std::size_t node_count);

}  // namespace lrs::sim
