// Fault injection for the event simulator (paper §III threat model plus the
// physical failure modes the loss models cannot express).
//
// A FaultModel sits between the LossModel and frame delivery: every
// reception that survived PRR, collisions and channel loss is handed to the
// model, which may mutate the frame bytes (bit-flip or burst corruption,
// truncation, garbage padding), drop it, duplicate it, delay it by a bounded
// jitter (reordering it past later frames), or declare the receiving node
// crashed so the frame vanishes entirely. Crash/reboot schedules addition-
// ally reset the node's volatile protocol state through Node::on_reboot()
// while its persisted page frontier survives — the sensor-node reality of a
// watchdog reset mid-transfer.
//
// Every decision draws from the receiving node's deterministic Rng stream
// (exactly like LossModel), so a (config, seed) pair replays bit-identically
// through core::run_trials — a failing stress-sweep combination is a
// one-line replay command, not a flake.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/time.h"
#include "util/rng.h"
#include "util/types.h"

namespace lrs::sim {

/// Per-reception verdict. The frame itself is mutated in place.
struct FaultAction {
  bool drop = false;       // swallow this reception entirely
  bool tampered = false;   // frame bytes were altered (observer hint)
  std::size_t copies = 1;  // total deliveries, >= 1 (duplication)
  SimTime delay = 0;       // extra delivery latency (bounded reorder)
};

/// One scheduled outage: `node` is down in [at, at + downtime); at the end
/// of the window it reboots (volatile state lost, persisted frontier kept).
struct CrashEvent {
  NodeId node = 0;
  SimTime at = 0;
  SimTime downtime = 0;
};

class FaultModel {
 public:
  virtual ~FaultModel() = default;

  /// Applied once per (frame, receiver) reception that survived the channel.
  /// May mutate `frame` in place and/or update `action`. `rng` is the
  /// receiver's deterministic stream.
  virtual void apply(NodeId from, NodeId to, SimTime now, Bytes& frame,
                     FaultAction& action, Rng& rng) = 0;

  /// True while `node`'s radio is off (crashed). Down nodes neither
  /// transmit nor receive.
  virtual bool is_down(NodeId node, SimTime now) const {
    (void)node;
    (void)now;
    return false;
  }

  /// Outage windows this model imposes; the simulator arms the matching
  /// Node::on_reboot() callbacks before the run starts.
  virtual std::vector<CrashEvent> crash_events() const { return {}; }
};

// --- primitive models -------------------------------------------------------

/// Byte corruption: with probability `prob` per reception, either flip
/// 1..max_flips random bits anywhere in the frame, or (burst mode) XOR a
/// contiguous run of up to `burst_len` random bytes. The mutation is
/// guaranteed to change the frame.
struct CorruptionFaultParams {
  double prob = 0.1;
  std::size_t max_flips = 4;
  bool burst = false;
  std::size_t burst_len = 8;
};
std::unique_ptr<FaultModel> make_corruption_fault(CorruptionFaultParams p);

/// Truncation and/or garbage padding: with probability `truncate_prob` the
/// frame is cut to a random shorter length (possibly zero); independently,
/// with probability `pad_prob` up to `max_pad` random bytes are appended.
struct TruncationFaultParams {
  double truncate_prob = 0.05;
  double pad_prob = 0.0;
  std::size_t max_pad = 16;
};
std::unique_ptr<FaultModel> make_truncation_fault(TruncationFaultParams p);

/// Duplication: with probability `prob` the frame is delivered 2..max_copies
/// times (the duplicates carry the same bytes).
struct DuplicationFaultParams {
  double prob = 0.1;
  std::size_t max_copies = 3;
};
std::unique_ptr<FaultModel> make_duplication_fault(DuplicationFaultParams p);

/// Bounded reorder: with probability `prob` the delivery is delayed by a
/// uniform jitter in (0, max_delay], letting later frames overtake it.
struct ReorderFaultParams {
  double prob = 0.2;
  SimTime max_delay = 30 * kMillisecond;
};
std::unique_ptr<FaultModel> make_reorder_fault(ReorderFaultParams p);

/// Crash/reboot schedule: nodes are down during their windows and reboot
/// (Node::on_reboot) when the window ends.
std::unique_ptr<FaultModel> make_crash_fault(std::vector<CrashEvent> events);

/// Chains models: frame mutations compose left to right; drop short-
/// circuits; copies multiply; delays add; a node is down if any link says
/// so.
std::unique_ptr<FaultModel> make_fault_chain(
    std::vector<std::unique_ptr<FaultModel>> models);

// --- declarative plan -------------------------------------------------------

/// A flat, copyable description of a composed fault model — what the stress
/// sweep matrices enumerate and what a replay command names. Zero
/// probabilities (and an empty crash list) mean "no such fault".
struct FaultPlan {
  double corrupt_prob = 0.0;
  std::size_t corrupt_max_flips = 4;
  bool corrupt_burst = false;
  std::size_t corrupt_burst_len = 8;

  double truncate_prob = 0.0;
  double pad_prob = 0.0;
  std::size_t max_pad = 16;

  double duplicate_prob = 0.0;
  std::size_t max_copies = 3;

  double reorder_prob = 0.0;
  SimTime reorder_max_delay = 30 * kMillisecond;

  std::vector<CrashEvent> crashes;

  bool any() const;
  /// One-line human-readable summary ("corrupt(p=0.25,flips=8) crash(n1)").
  std::string describe() const;
};

/// Builds the composed model for a plan; nullptr when plan.any() is false.
std::unique_ptr<FaultModel> make_fault_model(const FaultPlan& plan);

}  // namespace lrs::sim
