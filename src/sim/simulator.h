// The discrete-event network simulator: nodes, a CSMA broadcast radio with
// collisions and half-duplex receivers, channel loss models, and metrics.
//
// Protocol state machines are written against the narrow Env interface so
// they also run under scripted fake environments in unit tests. The
// simulator provides the real Env implementation: local broadcast with
// carrier sensing, exponential-backoff retries, per-receiver collision
// tracking, PRR sampling from the topology and an additional LossModel
// (the paper's application-layer drop probability p).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/channel.h"
#include "sim/event_queue.h"
#include "sim/faults.h"
#include "sim/metrics.h"
#include "sim/time.h"
#include "sim/topology.h"
#include "util/rng.h"
#include "util/types.h"

namespace lrs::sim {

struct RadioParams {
  double bitrate_bps = 250'000.0;      // CC2420-class radio
  std::size_t phy_overhead_bytes = 15; // preamble/SFD/len/MAC/FCS per frame
  // Power draws for energy accounting (CC2420 at 3 V: 17.4 mA tx at 0 dBm,
  // 18.8 mA rx/listen).
  double tx_power_mw = 52.2;
  double rx_power_mw = 56.4;
  SimTime backoff_initial = 500 * kMicrosecond;
  SimTime backoff_window = 5 * kMillisecond;   // initial contention window
  SimTime backoff_window_max = 50 * kMillisecond;

  SimTime airtime(std::size_t frame_bytes) const {
    const double bits =
        static_cast<double>((frame_bytes + phy_overhead_bytes) * 8);
    return static_cast<SimTime>(bits / bitrate_bps *
                                static_cast<double>(kSecond));
  }
};

class Simulator;
class SimObserver;

/// What a protocol node sees of the world. Implemented by the simulator and
/// by test doubles.
class Env {
 public:
  virtual ~Env() = default;

  virtual SimTime now() const = 0;
  virtual NodeId id() const = 0;
  /// The simulator's observer chain, or nullptr when nothing is attached —
  /// the null-recorder fast path. Protocol engines use this to report
  /// state transitions and progress to tracers without paying anything
  /// (one branch) in untraced runs.
  virtual SimObserver* observer() const { return nullptr; }
  /// Local broadcast to all radio neighbors (queued behind CSMA).
  virtual void broadcast(PacketClass cls, Bytes frame) = 0;
  /// One-shot timer; the token cancels it. The closure is stored inline
  /// (EventFn) — captures beyond its capacity are a compile error, which
  /// keeps the per-event allocation count at zero.
  virtual EventToken schedule(SimTime delay, EventFn fn) = 0;
  /// Frames waiting in (or occupying) this node's MAC: lets senders pace
  /// themselves to the radio instead of flooding the queue.
  virtual std::size_t pending_tx() const = 0;
  /// Cancels a timer; null and stale (already fired/cancelled) tokens are
  /// ignored.
  virtual void cancel(EventToken token) = 0;
  virtual Rng& rng() = 0;
  virtual NodeMetrics& metrics() = 0;
  /// The node holds the complete verified image (records completion time).
  virtual void notify_complete() = 0;
  /// Identifier of the broadcast delivery currently being dispatched, shared
  /// by every receiver of the same physical frame. 0 means "no sharing" —
  /// test doubles, and runs whose fault layer may mutate frames per
  /// receiver, stay at 0 so receive-side memoization is disabled there.
  /// Protocol engines use a nonzero serial to verify/parse each broadcast
  /// frame once per transmission instead of once per receiver.
  virtual std::uint64_t delivery_serial() const { return 0; }
};

/// Base class for everything attached to the simulator.
class Node {
 public:
  explicit Node(Env& env) : env_(env) {}
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Called once when the simulation starts.
  virtual void on_start() = 0;
  /// Called for every frame that survives the channel.
  virtual void on_receive(ByteView frame) = 0;
  /// Called when a crash/reboot fault schedule restarts this node: volatile
  /// protocol state is gone, persisted storage (completed pages, bootstrap
  /// metadata) survives. Default: nothing to lose.
  virtual void on_reboot() {}

 protected:
  Env& env() { return env_; }
  const Env& env() const { return env_; }

 private:
  Env& env_;
};

/// Passive hook into the simulator's packet stream — invariant checkers and
/// protocol tracers attach one without perturbing the run. Every callback
/// defaults to a no-op. Deliveries are synchronous, so a before/after pair
/// brackets exactly one frame's effect on the receiving node.
class SimObserver {
 public:
  virtual ~SimObserver() = default;
  virtual void on_send(SimTime now, NodeId sender, PacketClass cls,
                       ByteView frame) {
    (void)now;
    (void)sender;
    (void)cls;
    (void)frame;
  }
  virtual void before_deliver(SimTime now, NodeId from, NodeId to,
                              PacketClass cls, ByteView frame, bool tampered) {
    (void)now;
    (void)from;
    (void)to;
    (void)cls;
    (void)frame;
    (void)tampered;
  }
  virtual void after_deliver(SimTime now, NodeId from, NodeId to,
                             PacketClass cls, ByteView frame, bool tampered) {
    (void)now;
    (void)from;
    (void)to;
    (void)cls;
    (void)frame;
    (void)tampered;
  }
  virtual void on_reboot(SimTime now, NodeId node) {
    (void)now;
    (void)node;
  }

  // Protocol-level hooks, reported by the dissemination engine through
  // Env::observer() (the simulator fans them out to every attached
  // observer). `from`/`to`/`status` use the proto enums' integer values so
  // sim/ need not depend on proto/.

  /// Engine state machine moved between MAINTAIN / RX / TX.
  virtual void on_state_transition(SimTime now, NodeId node, int from,
                                   int to) {
    (void)now;
    (void)node;
    (void)from;
    (void)to;
  }
  /// A page decoded and verified; `pages_complete` is the new frontier.
  virtual void on_page_complete(SimTime now, NodeId node, std::uint32_t page,
                                std::uint32_t pages_complete) {
    (void)now;
    (void)node;
    (void)page;
    (void)pages_complete;
  }
  /// The node holds the complete verified image (fires once per node).
  virtual void on_node_complete(SimTime now, NodeId node) {
    (void)now;
    (void)node;
  }
  /// A received packet failed authentication (MAC, hash or signature).
  virtual void on_auth_failure(SimTime now, NodeId node, PacketClass cls) {
    (void)now;
    (void)node;
    (void)cls;
  }
  /// The serve loop chose data packet (page, index) for transmission.
  virtual void on_data_served(SimTime now, NodeId node, std::uint32_t page,
                              std::uint32_t index) {
    (void)now;
    (void)node;
    (void)page;
    (void)index;
  }
  /// A data packet was fed to the scheme; `status` is proto::DataStatus.
  virtual void on_data_packet(SimTime now, NodeId node, std::uint32_t page,
                              std::uint32_t index, int status) {
    (void)now;
    (void)node;
    (void)page;
    (void)index;
    (void)status;
  }
};

/// Fans every SimObserver callback out to a list of observers, in
/// attachment order. The simulator keeps one internally so invariant
/// checkers and trace recorders can watch the same run.
class ObserverFanout final : public SimObserver {
 public:
  void add(SimObserver* o) {
    if (o != nullptr) list_.push_back(o);
  }
  std::size_t size() const { return list_.size(); }
  SimObserver* sole() const { return list_.size() == 1 ? list_[0] : nullptr; }

  void on_send(SimTime now, NodeId sender, PacketClass cls,
               ByteView frame) override {
    for (auto* o : list_) o->on_send(now, sender, cls, frame);
  }
  void before_deliver(SimTime now, NodeId from, NodeId to, PacketClass cls,
                      ByteView frame, bool tampered) override {
    for (auto* o : list_) o->before_deliver(now, from, to, cls, frame,
                                            tampered);
  }
  void after_deliver(SimTime now, NodeId from, NodeId to, PacketClass cls,
                     ByteView frame, bool tampered) override {
    for (auto* o : list_) o->after_deliver(now, from, to, cls, frame,
                                           tampered);
  }
  void on_reboot(SimTime now, NodeId node) override {
    for (auto* o : list_) o->on_reboot(now, node);
  }
  void on_state_transition(SimTime now, NodeId node, int from,
                           int to) override {
    for (auto* o : list_) o->on_state_transition(now, node, from, to);
  }
  void on_page_complete(SimTime now, NodeId node, std::uint32_t page,
                        std::uint32_t pages_complete) override {
    for (auto* o : list_) o->on_page_complete(now, node, page,
                                              pages_complete);
  }
  void on_node_complete(SimTime now, NodeId node) override {
    for (auto* o : list_) o->on_node_complete(now, node);
  }
  void on_auth_failure(SimTime now, NodeId node, PacketClass cls) override {
    for (auto* o : list_) o->on_auth_failure(now, node, cls);
  }
  void on_data_served(SimTime now, NodeId node, std::uint32_t page,
                      std::uint32_t index) override {
    for (auto* o : list_) o->on_data_served(now, node, page, index);
  }
  void on_data_packet(SimTime now, NodeId node, std::uint32_t page,
                      std::uint32_t index, int status) override {
    for (auto* o : list_) o->on_data_packet(now, node, page, index, status);
  }

 private:
  std::vector<SimObserver*> list_;
};

class Simulator {
 public:
  Simulator(Topology topology, std::unique_ptr<LossModel> loss,
            RadioParams radio, std::uint64_t seed);

  /// Island mode: simulates only `members` (ascending NodeIds, closed under
  /// the radio graph — i.e. a union of connected components) of a shared
  /// topology. Node ids, metrics rows and per-node rng streams keep their
  /// global numbering: rng streams are forked for *all* topology positions
  /// in id order, so a member's stream is identical no matter how the
  /// topology was partitioned. An empty `members` list means all nodes.
  Simulator(std::shared_ptr<const Topology> topology,
            std::unique_ptr<LossModel> loss, RadioParams radio,
            std::uint64_t seed, std::vector<NodeId> members = {});
  ~Simulator();

  /// Installs a fault layer between the loss model and delivery. Must be
  /// set before run(); pass nullptr for none (the default). Without a fault
  /// model the per-receiver Rng streams see exactly the same draws as
  /// before this hook existed, so historical seeds replay unchanged.
  void set_fault_model(std::unique_ptr<FaultModel> fault);

  /// Attaches a passive observer (not owned; nullptr is ignored). Multiple
  /// observers — e.g. an invariant checker plus a trace recorder — see
  /// every callback in attachment order. With none attached, observer()
  /// stays nullptr and the hot paths pay one branch (no fan-out object).
  void add_observer(SimObserver* observer);

  /// The active observer chain, or nullptr when none is attached: a single
  /// observer is exposed directly, several through an internal fan-out.
  SimObserver* observer() const { return observer_; }

  /// Creates a node of type T whose constructor receives (Env&, args...).
  /// Nodes must be added in NodeId order — 0..topology.size()-1, or the
  /// members list in ascending order under island mode — before run().
  template <typename T, typename... Args>
  T& add_node(Args&&... args) {
    const NodeId id = next_node_id();
    Env& env = make_env(id);
    auto node = std::make_unique<T>(env, std::forward<Args>(args)...);
    T& ref = *node;
    attach(id, std::move(node));
    return ref;
  }

  /// Runs until `done()` (checked after every event) or `limit`.
  /// Returns true when `done()` stopped the run.
  bool run(SimTime limit, const std::function<bool()>& done = {});

  SimTime now() const { return queue_.now(); }
  Metrics& metrics() { return *metrics_; }
  const Metrics& metrics() const { return *metrics_; }
  const Topology& topology() const { return *topology_; }
  std::size_t node_count() const { return topology_->size(); }
  /// The simulated members (ascending). Equals 0..size-1 outside island mode.
  const std::vector<NodeId>& members() const { return members_; }
  Node& node(NodeId id) { return *nodes_[id]; }
  const RadioParams& radio() const { return radio_; }

  /// Number of frames dropped due to collisions / half-duplex conflicts —
  /// exposed for radio-model tests and diagnostics.
  std::uint64_t collisions() const { return collisions_; }

  /// Total events the queue executed so far — the numerator of the
  /// events/sec throughput figure bench_scale tracks across PRs.
  std::uint64_t events_executed() const { return queue_.executed(); }

  /// Fault-layer accounting: frames whose bytes the fault model altered,
  /// frames it swallowed (drops plus deliveries to crashed nodes), and
  /// crash/reboot events fired.
  std::uint64_t tampered_frames() const { return tampered_frames_; }
  std::uint64_t fault_drops() const { return fault_drops_; }
  std::uint64_t reboots() const { return reboots_; }

 private:
  class SimEnv;
  struct Transmission;
  struct RadioCard;
  struct MacState;

  NodeId next_node_id() const;
  Env& make_env(NodeId id);
  void attach(NodeId id, std::unique_ptr<Node> node);
  void start_if_needed();

  void enqueue_frame(NodeId sender, PacketClass cls, Bytes frame);
  void schedule_attempt(NodeId sender, SimTime delay);
  void attempt_send(NodeId sender);
  bool carrier_busy(NodeId sender) const;
  void begin_transmission(NodeId sender);
  void end_transmission(std::uint32_t tx_index);
  std::uint32_t acquire_tx();
  void release_tx(std::uint32_t tx_index);
  void deliver(NodeId sender, NodeId receiver, PacketClass cls,
               const Bytes& frame);
  void deliver_now(NodeId sender, NodeId receiver, PacketClass cls,
                   const Bytes& frame, bool tampered);

  std::shared_ptr<const Topology> topology_;
  std::unique_ptr<LossModel> loss_;
  std::unique_ptr<FaultModel> fault_;
  RadioParams radio_;
  Rng rng_;
  EventQueue queue_;
  std::unique_ptr<Metrics> metrics_;
  ObserverFanout fanout_;
  SimObserver* observer_ = nullptr;

  std::vector<std::unique_ptr<SimEnv>> envs_;
  std::vector<std::unique_ptr<Node>> nodes_;
  // Per-node simulation state, struct-of-arrays: the 16-byte radio card
  // (carrier count, rx lock, tx flags) is all the per-neighbor loops in
  // begin/end_transmission touch — four cards per cache line instead of one
  // ~96-byte node record — while the rng streams and the cold MAC queues
  // live in their own arrays.
  std::vector<RadioCard> cards_;
  std::vector<MacState> macs_;
  std::vector<Rng> rngs_;
  std::vector<NodeId> members_;
  std::vector<std::uint8_t> is_member_;  // empty unless island mode
  std::size_t added_ = 0;
  // Broadcast delivery serial: bumped once per physical frame delivery
  // fan-out, 0 forever when a fault model may mutate frames per receiver.
  std::uint64_t delivery_serial_ = 0;
  // In-flight transmissions, slab-pooled: a transmission's lifetime is
  // bounded by its own end event, so slots recycle through a free list and
  // the frame/flag buffers keep their capacity — broadcast to N neighbors
  // is N copy-free deliveries of the one pooled payload.
  std::vector<Transmission> tx_pool_;
  std::vector<std::uint32_t> tx_free_;
  bool started_ = false;
  std::uint64_t collisions_ = 0;
  std::uint64_t tampered_frames_ = 0;
  std::uint64_t fault_drops_ = 0;
  std::uint64_t reboots_ = 0;
};

}  // namespace lrs::sim
