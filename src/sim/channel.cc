#include "sim/channel.h"

#include <cmath>

#include "util/check.h"

namespace lrs::sim {

namespace {

class PerfectChannel final : public LossModel {
 public:
  bool delivered(NodeId, NodeId, SimTime, Rng&) override { return true; }
};

class UniformLoss final : public LossModel {
 public:
  explicit UniformLoss(double p) : p_(p) { LRS_CHECK(p >= 0.0 && p <= 1.0); }
  bool delivered(NodeId, NodeId, SimTime, Rng& rng) override {
    return !rng.bernoulli(p_);
  }

 private:
  double p_;
};

class PerNodeLoss final : public LossModel {
 public:
  explicit PerNodeLoss(std::vector<double> p) : p_(std::move(p)) {}
  bool delivered(NodeId, NodeId to, SimTime, Rng& rng) override {
    LRS_CHECK(to < p_.size());
    return !rng.bernoulli(p_[to]);
  }

 private:
  std::vector<double> p_;
};

class GilbertElliott final : public LossModel {
 public:
  GilbertElliott(GilbertElliottParams params, std::size_t node_count,
                 std::uint64_t seed)
      : params_(params), rng_(seed) {
    LRS_CHECK(params.mean_good_dwell > 0 && params.mean_bad_dwell > 0);
    states_.reserve(node_count);
    for (std::size_t i = 0; i < node_count; ++i) {
      // Stagger initial phases so nodes do not fade in lockstep.
      State s;
      s.bad = rng_.bernoulli(stationary_bad_probability());
      s.until = sample_dwell(s.bad);
      states_.push_back(s);
    }
  }

  bool delivered(NodeId, NodeId to, SimTime now, Rng& rng) override {
    LRS_CHECK(to < states_.size());
    State& s = states_[to];
    // Lazily advance the two-state Markov process to `now`.
    while (s.until <= now) {
      s.bad = !s.bad;
      s.until += sample_dwell(s.bad);
    }
    return !rng.bernoulli(s.bad ? params_.p_bad : params_.p_good);
  }

 private:
  struct State {
    bool bad = false;
    SimTime until = 0;
  };

  double stationary_bad_probability() const {
    const double g = static_cast<double>(params_.mean_good_dwell);
    const double b = static_cast<double>(params_.mean_bad_dwell);
    return b / (g + b);
  }

  SimTime sample_dwell(bool bad) {
    const double mean = static_cast<double>(bad ? params_.mean_bad_dwell
                                                : params_.mean_good_dwell);
    const double u = 1.0 - rng_.uniform01();
    const double d = -mean * std::log(u);
    return std::max<SimTime>(1, static_cast<SimTime>(d));
  }

  GilbertElliottParams params_;
  Rng rng_;
  std::vector<State> states_;
};

}  // namespace

std::unique_ptr<LossModel> make_perfect_channel() {
  return std::make_unique<PerfectChannel>();
}

std::unique_ptr<LossModel> make_uniform_loss(double p) {
  return std::make_unique<UniformLoss>(p);
}

std::unique_ptr<LossModel> make_per_node_loss(std::vector<double> p) {
  return std::make_unique<PerNodeLoss>(std::move(p));
}

std::unique_ptr<LossModel> make_gilbert_elliott(GilbertElliottParams params,
                                                std::size_t node_count,
                                                std::uint64_t seed) {
  return std::make_unique<GilbertElliott>(params, node_count, seed);
}

}  // namespace lrs::sim
