#include "sim/channel.h"

#include <cmath>

#include "util/check.h"

namespace lrs::sim {

namespace {

class PerfectChannel final : public LossModel {
 public:
  bool delivered(NodeId, NodeId, SimTime, Rng&) override { return true; }
};

class UniformLoss final : public LossModel {
 public:
  explicit UniformLoss(double p) : p_(p) { LRS_CHECK(p >= 0.0 && p <= 1.0); }
  bool delivered(NodeId, NodeId, SimTime, Rng& rng) override {
    return !rng.bernoulli(p_);
  }

 private:
  double p_;
};

class PerNodeLoss final : public LossModel {
 public:
  explicit PerNodeLoss(std::vector<double> p) : p_(std::move(p)) {
    for (std::size_t i = 0; i < p_.size(); ++i) {
      LRS_CHECK_MSG(p_[i] >= 0.0 && p_[i] <= 1.0,
                    "per-node loss probability p[" + std::to_string(i) +
                        "] = " + std::to_string(p_[i]) +
                        " outside [0, 1]");
    }
  }
  bool delivered(NodeId, NodeId to, SimTime, Rng& rng) override {
    LRS_CHECK_MSG(to < p_.size(),
                  "per-node loss vector has " + std::to_string(p_.size()) +
                      " entries but node " + std::to_string(to) +
                      " received a frame — vector shorter than the network");
    return !rng.bernoulli(p_[to]);
  }

 private:
  std::vector<double> p_;
};

class GilbertElliott final : public LossModel {
 public:
  GilbertElliott(GilbertElliottParams params, std::size_t node_count,
                 std::uint64_t seed)
      : params_(params), rng_(seed) {
    params.validate();
    states_.reserve(node_count);
    for (std::size_t i = 0; i < node_count; ++i) {
      // Stagger initial phases so nodes do not fade in lockstep.
      State s;
      s.bad = rng_.bernoulli(stationary_bad_probability());
      s.until = sample_dwell(s.bad);
      states_.push_back(s);
    }
  }

  bool delivered(NodeId, NodeId to, SimTime now, Rng& rng) override {
    LRS_CHECK(to < states_.size());
    State& s = states_[to];
    // Lazily advance the two-state Markov process to `now`.
    while (s.until <= now) {
      s.bad = !s.bad;
      s.until += sample_dwell(s.bad);
    }
    return !rng.bernoulli(s.bad ? params_.p_bad : params_.p_good);
  }

 private:
  struct State {
    bool bad = false;
    SimTime until = 0;
  };

  double stationary_bad_probability() const {
    const double g = static_cast<double>(params_.mean_good_dwell);
    const double b = static_cast<double>(params_.mean_bad_dwell);
    return b / (g + b);
  }

  SimTime sample_dwell(bool bad) {
    const double mean = static_cast<double>(bad ? params_.mean_bad_dwell
                                                : params_.mean_good_dwell);
    const double u = 1.0 - rng_.uniform01();
    const double d = -mean * std::log(u);
    return std::max<SimTime>(1, static_cast<SimTime>(d));
  }

  GilbertElliottParams params_;
  Rng rng_;
  std::vector<State> states_;
};

}  // namespace

std::unique_ptr<LossModel> make_perfect_channel() {
  return std::make_unique<PerfectChannel>();
}

std::unique_ptr<LossModel> make_uniform_loss(double p) {
  return std::make_unique<UniformLoss>(p);
}

std::unique_ptr<LossModel> make_per_node_loss(std::vector<double> p) {
  return std::make_unique<PerNodeLoss>(std::move(p));
}

std::unique_ptr<LossModel> make_per_node_loss(std::vector<double> p,
                                              std::size_t node_count) {
  LRS_CHECK_MSG(p.size() >= node_count,
                "per-node loss vector has " + std::to_string(p.size()) +
                    " entries for a " + std::to_string(node_count) +
                    "-node network");
  return std::make_unique<PerNodeLoss>(std::move(p));
}

void GilbertElliottParams::validate() const {
  LRS_CHECK_MSG(p_good >= 0.0 && p_good <= 1.0,
                "Gilbert-Elliott p_good outside [0, 1]");
  LRS_CHECK_MSG(p_bad >= 0.0 && p_bad <= 1.0,
                "Gilbert-Elliott p_bad outside [0, 1]");
  LRS_CHECK_MSG(mean_good_dwell > 0,
                "Gilbert-Elliott mean_good_dwell must be positive");
  LRS_CHECK_MSG(mean_bad_dwell > 0,
                "Gilbert-Elliott mean_bad_dwell must be positive");
}

std::unique_ptr<LossModel> make_gilbert_elliott(GilbertElliottParams params,
                                                std::size_t node_count,
                                                std::uint64_t seed) {
  return std::make_unique<GilbertElliott>(params, node_count, seed);
}

}  // namespace lrs::sim
