// The Trickle algorithm (Levis et al., NSDI'04), used by Deluge-family
// protocols to pace advertisements: the interval doubles from tau_l to
// tau_h while the neighborhood is consistent, resets to tau_l on
// inconsistency, and a broadcast within an interval is suppressed when at
// least `redundancy` consistent messages were already overheard.
//
// This implementation is sans-IO: the owner feeds it the current time and
// events, and asks when the next fire is due. The protocol nodes drive it
// from their simulator timers.
#pragma once

#include <cstdint>

#include "sim/time.h"
#include "util/rng.h"

namespace lrs::sim {

struct TrickleParams {
  SimTime tau_low = 1 * kSecond;
  SimTime tau_high = 60 * kSecond;
  std::uint32_t redundancy = 2;  // 'kappa': suppress after this many heard
};

class Trickle {
 public:
  Trickle(TrickleParams params, Rng* rng);

  /// (Re)starts at tau_low; call at protocol start or on inconsistency.
  void reset(SimTime now);

  /// Call when a consistent advertisement is overheard.
  void heard_consistent();

  /// Absolute time of the pending fire point t in [tau/2, tau).
  SimTime fire_time() const { return fire_time_; }
  /// Absolute end of the current interval.
  SimTime interval_end() const { return interval_start_ + tau_; }

  /// At the fire point: should the owner actually broadcast?
  bool should_broadcast() const { return heard_ < params_.redundancy; }

  /// Call when the current interval expires: doubles tau (capped) and opens
  /// the next interval.
  void next_interval(SimTime now);

  SimTime tau() const { return tau_; }

 private:
  void pick_fire_point();

  TrickleParams params_;
  Rng* rng_;
  SimTime tau_;
  SimTime interval_start_ = 0;
  SimTime fire_time_ = 0;
  std::uint32_t heard_ = 0;
};

}  // namespace lrs::sim
