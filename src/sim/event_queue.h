// Priority event queue for the discrete-event simulator.
//
// Events at equal timestamps fire in scheduling order (a strictly increasing
// sequence number breaks ties), which keeps runs reproducible. Cancellation
// is cooperative: schedule() hands back a token the caller may cancel; a
// cancelled event is skipped when popped.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace lrs::sim {

/// Shared cancellation flag. Holding the token and setting *token = true
/// before the event fires suppresses it.
using EventToken = std::shared_ptr<bool>;

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `at` (must be >= now()).
  EventToken schedule_at(SimTime at, std::function<void()> fn);

  SimTime now() const { return now_; }
  /// Counts cancelled-but-not-yet-popped events too (they are skipped when
  /// reached); callers treat these as conservative.
  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

  /// Pops and runs the next event; returns false when the queue is empty.
  bool run_next();

  /// Time of the next live event, discarding cancelled entries on the way;
  /// nullopt when drained.
  std::optional<SimTime> peek_time();

  /// Runs until the queue drains or `limit` is passed (events strictly after
  /// `limit` stay queued). Returns the number of events executed.
  std::uint64_t run_until(SimTime limit);

  static void cancel(const EventToken& token) {
    if (token) *token = true;
  }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
    EventToken cancelled;

    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
};

}  // namespace lrs::sim
