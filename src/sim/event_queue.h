// Calendar event queue for the discrete-event simulator.
//
// The hot path of every experiment is schedule / cancel / pop, so all three
// are allocation-free in steady state:
//
//  - Events live in a slab of fixed-layout slots recycled through a free
//    list. A slot is addressed by an EventToken — a POD {slot, generation}
//    handle — so cancellation is an O(1) generation bump, never a search
//    and never a heap allocation (the old design minted a shared_ptr<bool>
//    per event).
//  - Closures are stored inline in the slot (EventFn, a fixed-capacity
//    copyable closure), not in a std::function that spills to the heap.
//  - Ordering uses a bucketed calendar: a wheel of kBuckets windows of
//    kBucketWidth microseconds each, with a min-heap per bucket and a
//    sorted overflow heap for events beyond the wheel's horizon. Schedule
//    and pop are O(1) amortized for the timer/airtime event mix the radio
//    model produces (sub-second deltas); far-future events (advertisement
//    trains, crash schedules) ride the overflow heap and are swept into
//    the wheel when the wheel drains and re-anchors.
//
// Determinism: events fire in strictly increasing (time, seq) order, where
// seq is the scheduling order — exactly the contract of the binary-heap
// queue this replaces, so historical seeds replay byte-identically.
//
// Cancellation is cooperative and lazy: cancel() invalidates the slot
// immediately (live counts update right away — pending() and empty() are
// exact), but the stale reference stays in its bucket until the pop path
// reaches and discards it. Consequently an event cancelled at any point
// before it fires — including between a peek_time() that reported its time
// and the run_next() that would have fired it — can never fire; run_next()
// skips the stale entry and fires the next live event instead.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.h"
#include "util/check.h"

namespace lrs::sim {

/// Fixed-capacity inline closure for simulator events: copyable, movable,
/// never heap-allocates. Capturing more than kCapacity bytes is a compile
/// error — enlarge the capture-heaviest call site or the capacity, not the
/// allocation count.
class EventFn {
 public:
  static constexpr std::size_t kCapacity = 64;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kCapacity,
                  "event closure captures too much for inline storage");
    static_assert(alignof(Fn) <= alignof(std::max_align_t));
    new (storage_) Fn(std::forward<F>(f));
    ops_ = &OpsFor<Fn>::ops;
  }

  EventFn(const EventFn& other) { copy_from(other); }
  EventFn(EventFn&& other) noexcept { move_from(other); }
  EventFn& operator=(const EventFn& other) {
    if (this != &other) {
      reset();
      copy_from(other);
    }
    return *this;
  }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  ~EventFn() { reset(); }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() {
    LRS_DCHECK(ops_ != nullptr);
    ops_->invoke(storage_);
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*copy)(void* dst, const void* src);
    void (*move)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename Fn>
  struct OpsFor {
    static constexpr Ops ops = {
        [](void* p) { (*static_cast<Fn*>(p))(); },
        [](void* dst, const void* src) {
          new (dst) Fn(*static_cast<const Fn*>(src));
        },
        [](void* dst, void* src) {
          new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        },
        [](void* p) { static_cast<Fn*>(p)->~Fn(); },
    };
  };

  void copy_from(const EventFn& other) {
    if (other.ops_ != nullptr) {
      other.ops_->copy(storage_, other.storage_);
      ops_ = other.ops_;
    }
  }
  void move_from(EventFn& other) {
    if (other.ops_ != nullptr) {
      other.ops_->move(storage_, other.storage_);
      ops_ = other.ops_;
      other.reset();
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kCapacity];
  const Ops* ops_ = nullptr;
};

/// Handle to a scheduled event: a {slot, generation} pair packed into one
/// word. Default-constructed tokens are null; a token goes stale (cancel
/// becomes a no-op) the moment its event fires or is cancelled, so holding
/// one past either is always safe — there is nothing to leak or double-
/// free. Copy freely; copies refer to the same event.
class EventToken {
 public:
  EventToken() = default;

  explicit operator bool() const { return bits_ != 0; }
  friend bool operator==(const EventToken&, const EventToken&) = default;

  /// Raw packed value — for test doubles that mint their own distinct
  /// tokens and for diagnostics. Real tokens come from schedule_at().
  static EventToken from_bits(std::uint64_t bits) {
    EventToken t;
    t.bits_ = bits;
    return t;
  }
  std::uint64_t bits() const { return bits_; }

 private:
  friend class EventQueue;
  EventToken(std::uint32_t slot, std::uint32_t gen)
      : bits_((static_cast<std::uint64_t>(slot) << 32) | gen) {}
  std::uint32_t slot() const { return static_cast<std::uint32_t>(bits_ >> 32); }
  std::uint32_t gen() const { return static_cast<std::uint32_t>(bits_); }

  std::uint64_t bits_ = 0;  // 0 = null (live generations are never 0)
};

class EventQueue {
 public:
  EventQueue();

  /// Schedules `fn` at absolute time `at` (must be >= now()).
  EventToken schedule_at(SimTime at, EventFn fn);

  /// Cancels the event, O(1). Returns true when the token referred to a
  /// live (scheduled, not yet fired) event; false for null or stale
  /// tokens. A cancelled event never fires, even when the cancellation
  /// lands between a peek_time() and the run_next() that would have
  /// popped it.
  bool cancel(EventToken token);

  SimTime now() const { return now_; }
  /// Number of events executed since construction (cancelled events are
  /// never counted).
  std::uint64_t executed() const { return executed_; }
  /// Exactly the number of live (scheduled, not fired, not cancelled)
  /// events — cancellation updates both immediately.
  bool empty() const { return live_ == 0; }
  std::size_t pending() const { return live_; }

  /// Pops and runs the next live event; returns false when none remain.
  bool run_next();

  /// Runs the next live event only if its time is <= limit. Returns true
  /// when an event ran. Does not advance now() when nothing runs — the
  /// single-traversal loop primitive Simulator::run is built on.
  bool run_next_before(SimTime limit);

  /// Time of the next live event, discarding stale (cancelled) entries on
  /// the way; nullopt when drained. Does not advance now().
  std::optional<SimTime> peek_time();

  /// Runs events in order while their time is <= limit. Returns the number
  /// executed. When the queue drains (no live events left) and now() is
  /// still behind, now() advances to `limit`; events strictly after
  /// `limit` — and only live ones count — keep now() at the last executed
  /// event's time.
  std::uint64_t run_until(SimTime limit);

 private:
  // Wheel geometry: 4096 buckets of 2^10 us (~1 ms) cover ~4.2 s of
  // lookahead, which spans the radio model's backoff (0.5–50 ms) and
  // airtime (~1–4 ms) deltas; protocol-level timers beyond the horizon
  // take the overflow heap and are swept in when the wheel re-anchors —
  // a batched, cache-friendly path that measures faster than widening the
  // buckets until Trickle's 60 s tau_high fits the wheel. Width and count
  // are powers of two so index math is shift/mask.
  static constexpr int kBucketBits = 12;
  static constexpr std::size_t kBuckets = std::size_t{1} << kBucketBits;
  static constexpr int kBucketWidthBits = 10;
  static constexpr SimTime kBucketWidth = SimTime{1} << kBucketWidthBits;
  static constexpr SimTime kSpan = static_cast<SimTime>(kBuckets) *
                                   kBucketWidth;
  static constexpr std::size_t kBitmapWords = kBuckets / 64;

  /// POD reference ordered by (time, seq); `gen` detects stale entries
  /// whose event was cancelled (or whose slot was recycled) after the
  /// reference was enqueued.
  struct Ref {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;

    bool after(const Ref& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  struct Slot {
    EventFn fn;
    std::uint32_t gen = 1;  // bumped on every release; 0 never occurs
  };

  bool is_live(const Ref& r) const { return slots_[r.slot].gen == r.gen; }
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  void push_ref(const Ref& r);
  /// First bucket index >= from with entries, or kBuckets when the wheel
  /// is clear.
  std::size_t next_occupied(std::size_t from) const;
  /// Drops stale heap tops; true when a live ref tops the bucket after.
  bool prune_bucket(std::size_t b);
  bool prune_overflow();
  /// Locates the earliest live ref without removing it. Never re-anchors
  /// (safe from peek paths); when the wheel is clear the overflow top is
  /// the answer. Returns false when no live events remain.
  bool find_earliest(SimTime* time);
  /// Removes and returns the earliest live ref, re-anchoring the wheel
  /// onto the overflow when it drains. Only called when a live event
  /// exists and will be executed.
  Ref pop_earliest();
  void run_ref(const Ref& r);

  SimTime now_ = 0;
  SimTime base_ = 0;        // wheel origin, multiple of kBucketWidth
  std::size_t cursor_ = 0;  // first bucket that can still hold entries
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::vector<Ref>> buckets_;  // min-heaps by (time, seq)
  std::uint64_t occupied_[kBitmapWords] = {};
  std::vector<Ref> overflow_;  // min-heap by (time, seq)
};

}  // namespace lrs::sim
