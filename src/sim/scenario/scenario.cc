#include "sim/scenario/scenario.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <set>
#include <sstream>

#include "erasure/code.h"
#include "util/rng.h"

namespace lrs::scenario {

namespace {

// Early sleepers never wake: a crash window that outlives any time limit
// (kept far from the SimTime ceiling so at + downtime cannot overflow).
constexpr sim::SimTime kSleepForever =
    std::numeric_limits<sim::SimTime>::max() / 4;

const char* codec_name(erasure::CodecKind k) {
  switch (k) {
    case erasure::CodecKind::kReedSolomon: return "rs";
    case erasure::CodecKind::kRlcGf2: return "rlc2";
    case erasure::CodecKind::kRlcGf256: return "rlc256";
    case erasure::CodecKind::kLt: return "lt";
    case erasure::CodecKind::kLrc: return "lrc";
    case erasure::CodecKind::kXorSchedule: return "xorsched";
  }
  return "?";
}

std::string trim(const std::string& s) {
  const std::size_t a = s.find_first_not_of(" \t\r");
  if (a == std::string::npos) return "";
  const std::size_t b = s.find_last_not_of(" \t\r");
  return s.substr(a, b - a + 1);
}

bool parse_u64(const std::string& v, std::uint64_t* out) {
  if (v.empty() || !(v[0] >= '0' && v[0] <= '9')) return false;
  errno = 0;
  char* end = nullptr;
  const std::uint64_t x = std::strtoull(v.c_str(), &end, 10);
  if (errno != 0 || end != v.c_str() + v.size()) return false;
  *out = x;
  return true;
}

bool parse_size(const std::string& v, std::size_t* out) {
  std::uint64_t x = 0;
  if (!parse_u64(v, &x)) return false;
  *out = static_cast<std::size_t>(x);
  return true;
}

bool parse_f64(const std::string& v, double* out) {
  if (v.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double x = std::strtod(v.c_str(), &end);
  if (errno != 0 || end != v.c_str() + v.size() || !std::isfinite(x)) {
    return false;
  }
  *out = x;
  return true;
}

bool parse_bool(const std::string& v, bool* out) {
  if (v == "true") {
    *out = true;
    return true;
  }
  if (v == "false") {
    *out = false;
    return true;
  }
  return false;
}

/// Milliseconds (fractional allowed) -> SimTime microseconds.
bool parse_ms(const std::string& v, sim::SimTime* out) {
  double ms = 0.0;
  if (!parse_f64(v, &ms) || ms < 0.0) return false;
  *out = static_cast<sim::SimTime>(std::llround(ms * 1000.0));
  return true;
}

/// "node@ms" (late_joiner / early_sleeper values).
bool parse_node_event(const std::string& v, NodeEvent* out) {
  const auto at = v.find('@');
  if (at == std::string::npos) return false;
  std::uint64_t node = 0;
  if (!parse_u64(trim(v.substr(0, at)), &node)) return false;
  sim::SimTime t = 0;
  if (!parse_ms(trim(v.substr(at + 1)), &t)) return false;
  out->node = static_cast<NodeId>(node);
  out->at = t;
  return true;
}

/// "node@at_ms+down_ms" (crash values).
bool parse_crash(const std::string& v, sim::CrashEvent* out) {
  const auto at = v.find('@');
  if (at == std::string::npos) return false;
  const auto plus = v.find('+', at + 1);
  if (plus == std::string::npos) return false;
  std::uint64_t node = 0;
  if (!parse_u64(trim(v.substr(0, at)), &node)) return false;
  sim::SimTime start = 0;
  sim::SimTime down = 0;
  if (!parse_ms(trim(v.substr(at + 1, plus - at - 1)), &start)) return false;
  if (!parse_ms(trim(v.substr(plus + 1)), &down)) return false;
  out->node = static_cast<NodeId>(node);
  out->at = start;
  out->downtime = down;
  return true;
}

/// Fixed-notation rendering with `prec` fractional digits, trailing zeros
/// (and a bare trailing dot) stripped. Never uses scientific notation: an
/// exponent's '+' would collide with the '+' separator in crash schedules.
std::string fmt_fixed(double v, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  std::string text = os.str();
  if (text.find('.') != std::string::npos) {
    while (text.back() == '0') text.pop_back();
    if (text.back() == '.') text.pop_back();
  }
  return text;
}

/// Shortest fixed-notation decimal string that strtod's back to exactly `v`.
std::string fmt_f64(double v) {
  for (int prec = 0; prec <= 17; ++prec) {
    const std::string text = fmt_fixed(v, prec);
    double back = 0.0;
    if (parse_f64(text, &back) && back == v) return text;
  }
  return fmt_fixed(v, 17);
}

std::string fmt_ms(sim::SimTime t) {
  return fmt_f64(static_cast<double>(t) / 1000.0);
}

bool valid_name(const std::string& name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '-' || c == '_' || c == '.';
    if (!ok) return false;
  }
  return true;
}

bool power_of_two(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Semantic validation of a fully parsed scenario; normalizes event order
/// (so canonical output is stable) and returns "" when sound.
std::string validate_scenario(Scenario& s) {
  if (!valid_name(s.name)) {
    return "[scenario] name is required and may only use a-z 0-9 . _ -";
  }
  if (s.image_size == 0) return "[scenario] image_size must be positive";
  if (s.payload_size == 0) return "[scenario] payload_size must be positive";
  if (s.k < 1 || s.n < s.k) return "[scenario] need 1 <= k <= n";
  if (s.k0 < 1 || s.n0 < s.k0) return "[scenario] need 1 <= k0 <= n0";
  if (!power_of_two(s.n0)) {
    return "[scenario] n0 must be a power of two (Merkle leaf count)";
  }
  if (s.puzzle_strength > 30) {
    return "[scenario] puzzle_strength must be <= 30";
  }

  const auto& t = s.topo;
  switch (t.kind) {
    case sim::TopologyKind::kStar:
      if (t.receivers < 1) return "[topology] star needs receivers >= 1";
      break;
    case sim::TopologyKind::kGrid:
      if (t.rows < 1 || t.cols < 1 || t.rows * t.cols < 2) {
        return "[topology] grid needs rows x cols >= 2";
      }
      if (t.spacing <= 0.0) return "[topology] spacing must be positive";
      break;
    case sim::TopologyKind::kRandomGeometric:
      if (t.nodes < 2) return "[topology] geometric needs nodes >= 2";
      if (t.width <= 0.0 || t.height <= 0.0) {
        return "[topology] width/height must be positive";
      }
      break;
    case sim::TopologyKind::kClustered:
      if (t.nodes < 2) return "[topology] clustered needs nodes >= 2";
      if (t.clusters < 1 || t.clusters > t.nodes) {
        return "[topology] need 1 <= clusters <= nodes";
      }
      if (t.cluster_radius <= 0.0) {
        return "[topology] cluster_radius must be positive";
      }
      if (t.width <= 0.0 || t.height <= 0.0) {
        return "[topology] width/height must be positive";
      }
      break;
    case sim::TopologyKind::kLine:
      if (t.nodes < 2) return "[topology] line needs nodes >= 2";
      if (t.spacing <= 0.0) return "[topology] spacing must be positive";
      break;
    case sim::TopologyKind::kRing:
      if (t.nodes < 2) return "[topology] ring needs nodes >= 2";
      if (t.radius <= 0.0) return "[topology] radius must be positive";
      break;
    case sim::TopologyKind::kCells: {
      const std::size_t cells = t.rows * t.cols;
      if (t.rows < 1 || t.cols < 1) {
        return "[topology] cells needs rows >= 1 and cols >= 1";
      }
      if (t.nodes % cells != 0) {
        return "[topology] cells needs nodes divisible by rows x cols";
      }
      if (t.nodes / cells < 2) {
        return "[topology] cells needs at least two nodes per cell";
      }
      if (t.width <= 0.0 || t.height <= 0.0) {
        return "[topology] width/height must be positive";
      }
      break;
    }
  }
  if (t.link.connected_radius <= 0.0 ||
      t.link.outer_radius <= t.link.connected_radius) {
    return "[topology] need 0 < connected_radius < outer_radius";
  }
  if (t.link.max_prr <= 0.0 || t.link.max_prr > 1.0) {
    return "[topology] max_prr must be in (0, 1]";
  }
  if (t.prr_jitter < 0.0 || t.prr_jitter >= 1.0) {
    return "[topology] prr_jitter must be in [0, 1)";
  }

  const std::size_t node_count = t.node_count();
  const auto& c = s.channel;
  if (c.loss < 0.0 || c.loss > 1.0) return "[channel] loss must be in [0, 1]";
  if (c.model == ChannelSpec::Model::kPerNode) {
    if (!c.per_node.empty()) {
      if (c.per_node.size() != node_count) {
        return "[channel] per_node lists " +
               std::to_string(c.per_node.size()) + " probabilities for a " +
               std::to_string(node_count) + "-node topology";
      }
      for (const double p : c.per_node) {
        if (p < 0.0 || p > 1.0) {
          return "[channel] per_node probabilities must be in [0, 1]";
        }
      }
    } else if (c.loss_jitter < 0.0 || c.loss_jitter > 1.0) {
      return "[channel] loss_jitter must be in [0, 1]";
    }
  }
  if (c.model == ChannelSpec::Model::kGilbertElliott) {
    if (c.ge.p_good < 0.0 || c.ge.p_good > 1.0 || c.ge.p_bad < 0.0 ||
        c.ge.p_bad > 1.0) {
      return "[channel] p_good/p_bad must be in [0, 1]";
    }
    if (c.ge.mean_good_dwell <= 0 || c.ge.mean_bad_dwell <= 0) {
      return "[channel] dwell times must be positive";
    }
  }

  const auto& f = s.faults;
  for (const double p : {f.corrupt_prob, f.truncate_prob, f.pad_prob,
                         f.duplicate_prob, f.reorder_prob}) {
    if (p < 0.0 || p > 1.0) return "[faults] probabilities must be in [0, 1]";
  }
  if (f.corrupt_prob > 0.0 && !f.corrupt_burst && f.corrupt_max_flips < 1) {
    return "[faults] corrupt_max_flips must be >= 1";
  }
  if (f.corrupt_prob > 0.0 && f.corrupt_burst && f.corrupt_burst_len < 1) {
    return "[faults] corrupt_burst_len must be >= 1";
  }
  if (f.pad_prob > 0.0 && f.max_pad < 1) {
    return "[faults] max_pad must be >= 1";
  }
  if (f.duplicate_prob > 0.0 && f.max_copies < 2) {
    return "[faults] max_copies must be >= 2";
  }
  if (f.reorder_prob > 0.0 && f.reorder_max_delay <= 0) {
    return "[faults] reorder_max_delay_ms must be positive";
  }
  const auto check_node = [node_count](NodeId node,
                                       const char* what) -> std::string {
    if (node < 1 || node >= node_count) {
      return std::string("[faults] ") + what + " node " +
             std::to_string(node) + " outside the receiver range [1, " +
             std::to_string(node_count) + ")";
    }
    return "";
  };
  for (const auto& e : f.crashes) {
    if (auto msg = check_node(e.node, "crash"); !msg.empty()) return msg;
    if (e.downtime <= 0) return "[faults] crash downtime must be positive";
  }
  for (const auto& e : s.late_joiners) {
    if (auto msg = check_node(e.node, "late_joiner"); !msg.empty()) return msg;
    if (e.at <= 0) return "[faults] late_joiner join time must be positive";
  }
  for (const auto& e : s.early_sleepers) {
    if (auto msg = check_node(e.node, "early_sleeper"); !msg.empty()) {
      return msg;
    }
  }

  if (s.repeats < 1) return "[trial] repeats must be >= 1";
  if (s.time_limit_s <= 0.0) return "[trial] time_limit_s must be positive";
  if (s.islands && (f.any() || !s.late_joiners.empty() ||
                    !s.early_sleepers.empty())) {
    return "[trial] islands = true is incompatible with [faults] (fault "
           "plans are whole-network schedules)";
  }

  const auto crash_less = [](const sim::CrashEvent& a,
                             const sim::CrashEvent& b) {
    return a.at != b.at ? a.at < b.at : a.node < b.node;
  };
  const auto event_less = [](const NodeEvent& a, const NodeEvent& b) {
    return a.at != b.at ? a.at < b.at : a.node < b.node;
  };
  std::stable_sort(s.faults.crashes.begin(), s.faults.crashes.end(),
                   crash_less);
  std::stable_sort(s.late_joiners.begin(), s.late_joiners.end(), event_less);
  std::stable_sort(s.early_sleepers.begin(), s.early_sleepers.end(),
                   event_less);
  return "";
}

// --- line parser ------------------------------------------------------------

struct Parser {
  Scenario s;
  std::string section;
  std::set<std::string> seen;  // "section.key" for duplicate detection
  std::string detail;          // set by key handlers on semantic failures

  bool unknown_key(const std::string& key) {
    detail = "unknown key '" + key + "' in section [" + section + "]";
    return false;
  }

  bool scenario_key(const std::string& key, const std::string& value) {
    if (key == "name") {
      s.name = value;
      return true;
    }
    if (key == "description") {
      s.description = value;
      return true;
    }
    if (key == "scheme") {
      const auto scheme = core::scheme_from_name(value);
      if (!scheme) {
        detail = "unknown scheme '" + value + "'";
        return false;
      }
      s.scheme = *scheme;
      return true;
    }
    if (key == "codec") {
      const auto codec = erasure::parse_codec_kind(value);
      if (!codec) {
        detail = "unknown codec '" + value + "'";
        return false;
      }
      s.codec = *codec;
      return true;
    }
    if (key == "image_size") return parse_size(value, &s.image_size);
    if (key == "payload_size") return parse_size(value, &s.payload_size);
    if (key == "k") return parse_size(value, &s.k);
    if (key == "n") return parse_size(value, &s.n);
    if (key == "k0") return parse_size(value, &s.k0);
    if (key == "n0") return parse_size(value, &s.n0);
    if (key == "delta") return parse_size(value, &s.delta);
    if (key == "puzzle_strength") {
      std::uint64_t u = 0;
      if (!parse_u64(value, &u) || u > 255) return false;
      s.puzzle_strength = static_cast<std::uint8_t>(u);
      return true;
    }
    if (key == "greedy_scheduler") {
      return parse_bool(value, &s.greedy_scheduler);
    }
    return unknown_key(key);
  }

  bool topology_key(const std::string& key, const std::string& value) {
    auto& t = s.topo;
    if (key == "kind") {
      if (!sim::topology_kind_from_name(value, &t.kind)) {
        detail = "unknown topology kind '" + value + "'";
        return false;
      }
      return true;
    }
    if (key == "receivers") return parse_size(value, &t.receivers);
    if (key == "rows") return parse_size(value, &t.rows);
    if (key == "cols") return parse_size(value, &t.cols);
    if (key == "nodes") return parse_size(value, &t.nodes);
    if (key == "clusters") return parse_size(value, &t.clusters);
    if (key == "seed") return parse_u64(value, &t.seed);
    if (key == "jitter_seed") return parse_u64(value, &t.jitter_seed);
    if (key == "spacing") return parse_f64(value, &t.spacing);
    if (key == "width") return parse_f64(value, &t.width);
    if (key == "height") return parse_f64(value, &t.height);
    if (key == "cluster_radius") return parse_f64(value, &t.cluster_radius);
    if (key == "radius") return parse_f64(value, &t.radius);
    if (key == "connected_radius") {
      return parse_f64(value, &t.link.connected_radius);
    }
    if (key == "outer_radius") return parse_f64(value, &t.link.outer_radius);
    if (key == "max_prr") return parse_f64(value, &t.link.max_prr);
    if (key == "prr_jitter") return parse_f64(value, &t.prr_jitter);
    return unknown_key(key);
  }

  bool channel_key(const std::string& key, const std::string& value) {
    auto& c = s.channel;
    if (key == "model") {
      if (!channel_model_from_name(value, &c.model)) {
        detail = "unknown channel model '" + value + "'";
        return false;
      }
      return true;
    }
    if (key == "loss") return parse_f64(value, &c.loss);
    if (key == "loss_jitter") return parse_f64(value, &c.loss_jitter);
    if (key == "loss_seed") return parse_u64(value, &c.loss_seed);
    if (key == "per_node") {
      std::istringstream list(value);
      std::string item;
      c.per_node.clear();
      while (std::getline(list, item, ',')) {
        double p = 0.0;
        if (!parse_f64(trim(item), &p)) return false;
        c.per_node.push_back(p);
      }
      return !c.per_node.empty();
    }
    if (key == "p_good") return parse_f64(value, &c.ge.p_good);
    if (key == "p_bad") return parse_f64(value, &c.ge.p_bad);
    if (key == "good_dwell_ms") return parse_ms(value, &c.ge.mean_good_dwell);
    if (key == "bad_dwell_ms") return parse_ms(value, &c.ge.mean_bad_dwell);
    return unknown_key(key);
  }

  bool faults_key(const std::string& key, const std::string& value) {
    auto& f = s.faults;
    if (key == "corrupt_prob") return parse_f64(value, &f.corrupt_prob);
    if (key == "corrupt_max_flips") {
      return parse_size(value, &f.corrupt_max_flips);
    }
    if (key == "corrupt_burst") return parse_bool(value, &f.corrupt_burst);
    if (key == "corrupt_burst_len") {
      return parse_size(value, &f.corrupt_burst_len);
    }
    if (key == "truncate_prob") return parse_f64(value, &f.truncate_prob);
    if (key == "pad_prob") return parse_f64(value, &f.pad_prob);
    if (key == "max_pad") return parse_size(value, &f.max_pad);
    if (key == "duplicate_prob") return parse_f64(value, &f.duplicate_prob);
    if (key == "max_copies") return parse_size(value, &f.max_copies);
    if (key == "reorder_prob") return parse_f64(value, &f.reorder_prob);
    if (key == "reorder_max_delay_ms") {
      return parse_ms(value, &f.reorder_max_delay);
    }
    if (key == "crash") {
      sim::CrashEvent e;
      if (!parse_crash(value, &e)) return false;
      f.crashes.push_back(e);
      return true;
    }
    if (key == "late_joiner") {
      NodeEvent e;
      if (!parse_node_event(value, &e)) return false;
      s.late_joiners.push_back(e);
      return true;
    }
    if (key == "early_sleeper") {
      NodeEvent e;
      if (!parse_node_event(value, &e)) return false;
      s.early_sleepers.push_back(e);
      return true;
    }
    return unknown_key(key);
  }

  bool trial_key(const std::string& key, const std::string& value) {
    if (key == "repeats") return parse_size(value, &s.repeats);
    if (key == "seed") return parse_u64(value, &s.seed);
    if (key == "time_limit_s") return parse_f64(value, &s.time_limit_s);
    if (key == "check_invariants") {
      return parse_bool(value, &s.check_invariants);
    }
    if (key == "islands") return parse_bool(value, &s.islands);
    return unknown_key(key);
  }

  bool dispatch(const std::string& key, const std::string& value) {
    if (section == "scenario") return scenario_key(key, value);
    if (section == "topology") return topology_key(key, value);
    if (section == "channel") return channel_key(key, value);
    if (section == "faults") return faults_key(key, value);
    return trial_key(key, value);
  }
};

}  // namespace

const char* channel_model_name(ChannelSpec::Model m) {
  switch (m) {
    case ChannelSpec::Model::kPerfect: return "perfect";
    case ChannelSpec::Model::kUniform: return "uniform";
    case ChannelSpec::Model::kPerNode: return "per_node";
    case ChannelSpec::Model::kGilbertElliott: return "gilbert_elliott";
  }
  return "?";
}

bool channel_model_from_name(const std::string& name,
                             ChannelSpec::Model* out) {
  for (const ChannelSpec::Model m :
       {ChannelSpec::Model::kPerfect, ChannelSpec::Model::kUniform,
        ChannelSpec::Model::kPerNode, ChannelSpec::Model::kGilbertElliott}) {
    if (name == channel_model_name(m)) {
      *out = m;
      return true;
    }
  }
  return false;
}

std::size_t Scenario::expected_complete() const {
  // Under island execution every radio-connected component has its own base
  // station. All scenario topology kinds are connected by construction
  // except kCells, whose island count is exactly its cell count.
  const std::size_t bases =
      islands && topo.kind == sim::TopologyKind::kCells ? topo.rows * topo.cols
                                                        : 1;
  const std::size_t receivers = topo.node_count() - bases;
  // Early sleepers cannot be *expected* to finish (they might, if they
  // sleep late enough — this is the guaranteed floor).
  std::set<NodeId> asleep;
  for (const auto& e : early_sleepers) asleep.insert(e.node);
  return receivers - asleep.size();
}

std::optional<Scenario> parse_scenario(const std::string& text,
                                       std::string* error) {
  Parser p;
  int line_no = 0;
  const auto fail = [&](const std::string& msg) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + msg;
    }
    return std::nullopt;
  };

  std::istringstream in(text);
  std::string raw;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string line = raw;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    line = trim(line);
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') return fail("malformed section header");
      p.section = trim(line.substr(1, line.size() - 2));
      if (p.section != "scenario" && p.section != "topology" &&
          p.section != "channel" && p.section != "faults" &&
          p.section != "trial") {
        return fail("unknown section [" + p.section + "]");
      }
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) return fail("expected key = value");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (p.section.empty()) {
      return fail("key '" + key + "' outside any section");
    }
    if (key.empty()) return fail("empty key");
    const bool repeatable =
        key == "crash" || key == "late_joiner" || key == "early_sleeper";
    if (!repeatable && !p.seen.insert(p.section + "." + key).second) {
      return fail("duplicate key '" + key + "'");
    }
    if (!p.dispatch(key, value)) {
      return fail(p.detail.empty()
                      ? "invalid value '" + value + "' for key '" + key + "'"
                      : p.detail);
    }
  }

  if (const std::string msg = validate_scenario(p.s); !msg.empty()) {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  }
  if (error != nullptr) error->clear();
  return p.s;
}

std::optional<Scenario> load_scenario_file(const std::string& path,
                                           std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = path + ": cannot open";
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  std::string inner;
  auto s = parse_scenario(text.str(), &inner);
  if (!s && error != nullptr) *error = path + ": " + inner;
  return s;
}

std::string canonical_scenario(const Scenario& s) {
  std::ostringstream os;
  os << "[scenario]\n";
  os << "name = " << s.name << "\n";
  if (!s.description.empty()) os << "description = " << s.description << "\n";
  os << "scheme = " << core::scheme_name(s.scheme) << "\n";
  os << "image_size = " << s.image_size << "\n";
  os << "payload_size = " << s.payload_size << "\n";
  os << "k = " << s.k << "\n";
  os << "n = " << s.n << "\n";
  os << "k0 = " << s.k0 << "\n";
  os << "n0 = " << s.n0 << "\n";
  os << "delta = " << s.delta << "\n";
  os << "codec = " << codec_name(s.codec) << "\n";
  os << "puzzle_strength = " << static_cast<unsigned>(s.puzzle_strength)
     << "\n";
  os << "greedy_scheduler = " << (s.greedy_scheduler ? "true" : "false")
     << "\n";

  const auto& t = s.topo;
  os << "\n[topology]\n";
  os << "kind = " << sim::topology_kind_name(t.kind) << "\n";
  switch (t.kind) {
    case sim::TopologyKind::kStar:
      os << "receivers = " << t.receivers << "\n";
      break;
    case sim::TopologyKind::kGrid:
      os << "rows = " << t.rows << "\n";
      os << "cols = " << t.cols << "\n";
      os << "spacing = " << fmt_f64(t.spacing) << "\n";
      break;
    case sim::TopologyKind::kRandomGeometric:
      os << "nodes = " << t.nodes << "\n";
      os << "width = " << fmt_f64(t.width) << "\n";
      os << "height = " << fmt_f64(t.height) << "\n";
      break;
    case sim::TopologyKind::kClustered:
      os << "nodes = " << t.nodes << "\n";
      os << "clusters = " << t.clusters << "\n";
      os << "cluster_radius = " << fmt_f64(t.cluster_radius) << "\n";
      os << "width = " << fmt_f64(t.width) << "\n";
      os << "height = " << fmt_f64(t.height) << "\n";
      break;
    case sim::TopologyKind::kLine:
      os << "nodes = " << t.nodes << "\n";
      os << "spacing = " << fmt_f64(t.spacing) << "\n";
      break;
    case sim::TopologyKind::kRing:
      os << "nodes = " << t.nodes << "\n";
      os << "radius = " << fmt_f64(t.radius) << "\n";
      break;
    case sim::TopologyKind::kCells:
      os << "nodes = " << t.nodes << "\n";
      os << "rows = " << t.rows << "\n";
      os << "cols = " << t.cols << "\n";
      os << "width = " << fmt_f64(t.width) << "\n";
      os << "height = " << fmt_f64(t.height) << "\n";
      break;
  }
  os << "seed = " << t.seed << "\n";
  os << "connected_radius = " << fmt_f64(t.link.connected_radius) << "\n";
  os << "outer_radius = " << fmt_f64(t.link.outer_radius) << "\n";
  os << "max_prr = " << fmt_f64(t.link.max_prr) << "\n";
  os << "prr_jitter = " << fmt_f64(t.prr_jitter) << "\n";
  if (t.prr_jitter > 0.0) os << "jitter_seed = " << t.jitter_seed << "\n";

  const auto& c = s.channel;
  os << "\n[channel]\n";
  os << "model = " << channel_model_name(c.model) << "\n";
  switch (c.model) {
    case ChannelSpec::Model::kPerfect:
      break;
    case ChannelSpec::Model::kUniform:
      os << "loss = " << fmt_f64(c.loss) << "\n";
      break;
    case ChannelSpec::Model::kPerNode:
      if (!c.per_node.empty()) {
        os << "per_node = ";
        for (std::size_t i = 0; i < c.per_node.size(); ++i) {
          os << (i ? "," : "") << fmt_f64(c.per_node[i]);
        }
        os << "\n";
      } else {
        os << "loss = " << fmt_f64(c.loss) << "\n";
        os << "loss_jitter = " << fmt_f64(c.loss_jitter) << "\n";
        os << "loss_seed = " << c.loss_seed << "\n";
      }
      break;
    case ChannelSpec::Model::kGilbertElliott:
      os << "p_good = " << fmt_f64(c.ge.p_good) << "\n";
      os << "p_bad = " << fmt_f64(c.ge.p_bad) << "\n";
      os << "good_dwell_ms = " << fmt_ms(c.ge.mean_good_dwell) << "\n";
      os << "bad_dwell_ms = " << fmt_ms(c.ge.mean_bad_dwell) << "\n";
      break;
  }

  const auto& f = s.faults;
  const bool have_faults =
      f.any() || !s.late_joiners.empty() || !s.early_sleepers.empty();
  if (have_faults) {
    os << "\n[faults]\n";
    if (f.corrupt_prob > 0.0) {
      os << "corrupt_prob = " << fmt_f64(f.corrupt_prob) << "\n";
      os << "corrupt_burst = " << (f.corrupt_burst ? "true" : "false")
         << "\n";
      if (f.corrupt_burst) {
        os << "corrupt_burst_len = " << f.corrupt_burst_len << "\n";
      } else {
        os << "corrupt_max_flips = " << f.corrupt_max_flips << "\n";
      }
    }
    if (f.truncate_prob > 0.0) {
      os << "truncate_prob = " << fmt_f64(f.truncate_prob) << "\n";
    }
    if (f.pad_prob > 0.0) {
      os << "pad_prob = " << fmt_f64(f.pad_prob) << "\n";
      os << "max_pad = " << f.max_pad << "\n";
    }
    if (f.duplicate_prob > 0.0) {
      os << "duplicate_prob = " << fmt_f64(f.duplicate_prob) << "\n";
      os << "max_copies = " << f.max_copies << "\n";
    }
    if (f.reorder_prob > 0.0) {
      os << "reorder_prob = " << fmt_f64(f.reorder_prob) << "\n";
      os << "reorder_max_delay_ms = " << fmt_ms(f.reorder_max_delay) << "\n";
    }
    for (const auto& e : f.crashes) {
      os << "crash = " << e.node << "@" << fmt_ms(e.at) << "+"
         << fmt_ms(e.downtime) << "\n";
    }
    for (const auto& e : s.late_joiners) {
      os << "late_joiner = " << e.node << "@" << fmt_ms(e.at) << "\n";
    }
    for (const auto& e : s.early_sleepers) {
      os << "early_sleeper = " << e.node << "@" << fmt_ms(e.at) << "\n";
    }
  }

  os << "\n[trial]\n";
  os << "repeats = " << s.repeats << "\n";
  os << "seed = " << s.seed << "\n";
  os << "time_limit_s = " << fmt_f64(s.time_limit_s) << "\n";
  os << "check_invariants = " << (s.check_invariants ? "true" : "false")
     << "\n";
  if (s.islands) os << "islands = true\n";
  return os.str();
}

core::ExperimentConfig scenario_config(const Scenario& s) {
  core::ExperimentConfig c;
  c.scheme = s.scheme;
  c.image_size = s.image_size;
  c.params.payload_size = s.payload_size;
  c.params.k = s.k;
  c.params.n = s.n;
  c.params.k0 = s.k0;
  c.params.n0 = s.n0;
  c.params.delta = s.delta;
  c.params.codec = s.codec;
  c.params.puzzle_strength = s.puzzle_strength;
  c.params.lr_greedy_scheduler = s.greedy_scheduler;

  c.topo = core::ExperimentConfig::Topo::kSpec;
  c.topo_spec = s.topo;
  c.link = s.topo.link;

  switch (s.channel.model) {
    case ChannelSpec::Model::kPerfect:
      break;
    case ChannelSpec::Model::kUniform:
      c.loss_p = s.channel.loss;
      break;
    case ChannelSpec::Model::kPerNode:
      if (!s.channel.per_node.empty()) {
        c.per_node_loss = s.channel.per_node;
      } else {
        // Heterogeneous p_i around the base loss, deterministic in
        // loss_seed (independent of the trial seed, so every trial of a
        // scenario faces the same node population).
        Rng rng(s.channel.loss_seed);
        const std::size_t nodes = s.topo.node_count();
        c.per_node_loss.reserve(nodes);
        for (std::size_t i = 0; i < nodes; ++i) {
          const double p =
              s.channel.loss +
              s.channel.loss_jitter * (2.0 * rng.uniform01() - 1.0);
          c.per_node_loss.push_back(std::clamp(p, 0.0, 1.0));
        }
      }
      break;
    case ChannelSpec::Model::kGilbertElliott:
      c.gilbert_elliott = true;
      c.ge = s.channel.ge;
      break;
  }

  c.faults = s.faults;
  for (const auto& e : s.late_joiners) {
    // Down from the start; "reboots" fresh at the join time.
    c.faults.crashes.push_back({e.node, 0, e.at});
  }
  for (const auto& e : s.early_sleepers) {
    c.faults.crashes.push_back({e.node, e.at, kSleepForever});
  }

  c.seed = s.seed;
  c.time_limit = sim::from_seconds(s.time_limit_s);
  c.check_invariants = s.check_invariants;
  c.islands = s.islands;

  // Paper-scale Trickle constants (bench/common.h paper_config); small
  // scenarios converge faster but stay correct under them.
  c.timing.trickle.tau_low = 2 * sim::kSecond;
  c.timing.trickle.tau_high = 60 * sim::kSecond;
  return c;
}

}  // namespace lrs::scenario
