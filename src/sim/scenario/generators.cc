#include "sim/scenario/generators.h"

#include <cmath>
#include <string>

#include "sim/stats/stats.h"
#include "util/check.h"
#include "util/rng.h"

namespace lrs::sim {

namespace {

constexpr std::size_t kMaxPlacementAttempts = 256;

std::vector<Position> sample_geometric(std::size_t nodes, double width,
                                       double height, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Position> pos;
  pos.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    pos.push_back({rng.uniform_real(0.0, width), rng.uniform_real(0.0, height)});
  }
  return pos;
}

std::vector<Position> sample_clustered(const TopologySpec& spec,
                                       std::uint64_t seed) {
  Rng rng(seed);
  // Hotspot centers, inset so clusters stay inside the area.
  const double inset_w = std::min(spec.cluster_radius, spec.width / 2.0);
  const double inset_h = std::min(spec.cluster_radius, spec.height / 2.0);
  std::vector<Position> centers;
  centers.reserve(spec.clusters);
  for (std::size_t c = 0; c < spec.clusters; ++c) {
    centers.push_back({rng.uniform_real(inset_w, spec.width - inset_w),
                       rng.uniform_real(inset_h, spec.height - inset_h)});
  }
  std::vector<Position> pos;
  pos.reserve(spec.nodes);
  // Node 0 (base station) sits on the first hotspot's center; the rest
  // scatter round-robin across clusters, uniform in each hotspot disc.
  pos.push_back(centers[0]);
  for (std::size_t i = 1; i < spec.nodes; ++i) {
    const Position& c = centers[i % spec.clusters];
    const double angle = rng.uniform_real(0.0, 2.0 * M_PI);
    const double r = spec.cluster_radius * std::sqrt(rng.uniform01());
    pos.push_back({c.x + r * std::cos(angle), c.y + r * std::sin(angle)});
  }
  return pos;
}

/// Rejection loop shared by the stochastic generators: re-sample with a
/// derived seed until the placement is radio-connected.
template <typename SampleFn>
Topology connected_placement(const TopologySpec& spec, SampleFn sample) {
  for (std::size_t attempt = 0; attempt < kMaxPlacementAttempts; ++attempt) {
    Topology t =
        Topology::custom(sample(spec.seed + attempt * 0x9e3779b97f4a7c15ULL),
                         spec.link);
    if (t.connected()) return t;
  }
  LRS_CHECK_MSG(false,
                std::string(topology_kind_name(spec.kind)) +
                    " placement not connected after " +
                    std::to_string(kMaxPlacementAttempts) +
                    " attempts — densify (more nodes, smaller area, larger "
                    "radio range) or change the seed");
}

/// Each cell re-samples independently until its local placement is
/// connected, so one stubborn cell never perturbs the others' layouts.
///
/// Cells demand more than bare connectivity: every node must be reachable
/// over links carrying at least half of max_prr. A placement can be
/// "connected" through a single edge-of-range bridge (PRR well under 2%)
/// that in practice never delivers a repair round — one such pocket per
/// ~1.5k nodes at ladder density, so a 100-cell rung would all but surely
/// strand a handful of receivers past any realistic time limit. Weaker
/// floors are not enough: at 10% a handful of nodes per 100k still sat
/// unfinished after 12 simulated hours, their one viable inbound link
/// drowned by in-cell contention. Half-rate links need ~2 tries per
/// packet worst case, which keeps the completion tail inside the same
/// order as the connected geo rungs. At ladder density the reliable
/// radius sits just above the geometric connectivity threshold, so cells
/// still accept within a few attempts (256 allowed).
Topology sample_cell_lattice(const TopologySpec& spec) {
  const std::size_t cells = spec.rows * spec.cols;
  const std::size_t per_cell = spec.nodes / cells;
  // Adjacent cell areas sit two outer radii apart: nothing — frame,
  // carrier, collision — crosses between cells.
  const double pitch_x = spec.width + 2.0 * spec.link.outer_radius;
  const double pitch_y = spec.height + 2.0 * spec.link.outer_radius;
  std::vector<Position> all;
  all.reserve(spec.nodes);
  for (std::size_t cell = 0; cell < cells; ++cell) {
    const double ox = static_cast<double>(cell % spec.cols) * pitch_x;
    const double oy = static_cast<double>(cell / spec.cols) * pitch_y;
    bool placed = false;
    for (std::size_t attempt = 0; attempt < kMaxPlacementAttempts; ++attempt) {
      const std::uint64_t seed = spec.seed +
                                 cell * 0xd1342543de82ef95ULL +
                                 attempt * 0x9e3779b97f4a7c15ULL;
      std::vector<Position> local =
          sample_geometric(per_cell, spec.width, spec.height, seed);
      if (!Topology::custom(local, spec.link)
               .connected(0.5 * spec.link.max_prr)) {
        continue;
      }
      for (const Position& p : local) all.push_back({p.x + ox, p.y + oy});
      placed = true;
      break;
    }
    LRS_CHECK_MSG(placed,
                  "cells placement: cell " + std::to_string(cell) +
                      " not connected after " +
                      std::to_string(kMaxPlacementAttempts) +
                      " attempts — densify or change the seed");
  }
  return Topology::custom(std::move(all), spec.link);
}

}  // namespace

const char* topology_kind_name(TopologyKind k) {
  switch (k) {
    case TopologyKind::kStar: return "star";
    case TopologyKind::kGrid: return "grid";
    case TopologyKind::kRandomGeometric: return "geometric";
    case TopologyKind::kClustered: return "clustered";
    case TopologyKind::kLine: return "line";
    case TopologyKind::kRing: return "ring";
    case TopologyKind::kCells: return "cells";
  }
  return "?";
}

bool topology_kind_from_name(const std::string& name, TopologyKind* out) {
  for (TopologyKind k :
       {TopologyKind::kStar, TopologyKind::kGrid, TopologyKind::kRandomGeometric,
        TopologyKind::kClustered, TopologyKind::kLine, TopologyKind::kRing,
        TopologyKind::kCells}) {
    if (name == topology_kind_name(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

std::size_t TopologySpec::node_count() const {
  switch (kind) {
    case TopologyKind::kStar: return receivers + 1;
    case TopologyKind::kGrid: return rows * cols;
    case TopologyKind::kRandomGeometric:
    case TopologyKind::kClustered:
    case TopologyKind::kLine:
    case TopologyKind::kRing:
    case TopologyKind::kCells: return nodes;
  }
  return 0;
}

Topology build_topology(const TopologySpec& spec) {
  static stats::Timer& timer =
      stats::Registry::instance().timer("sim.build_topology",
                                        /*top_level=*/true);
  stats::TimerScope scope(timer);
  LRS_CHECK_MSG(spec.node_count() >= 2, "topology needs at least two nodes");
  Topology t = [&spec] {
    switch (spec.kind) {
      case TopologyKind::kStar:
        return Topology::star(spec.receivers, spec.link);
      case TopologyKind::kGrid:
        LRS_CHECK_MSG(spec.spacing > 0.0, "grid spacing must be positive");
        return Topology::grid(spec.rows, spec.cols, spec.spacing, spec.link);
      case TopologyKind::kRandomGeometric:
        LRS_CHECK_MSG(spec.width > 0.0 && spec.height > 0.0,
                      "geometric area must be positive");
        return connected_placement(spec, [&spec](std::uint64_t seed) {
          return sample_geometric(spec.nodes, spec.width, spec.height, seed);
        });
      case TopologyKind::kClustered:
        LRS_CHECK_MSG(spec.clusters >= 1, "need at least one cluster");
        LRS_CHECK_MSG(spec.width > 0.0 && spec.height > 0.0,
                      "clustered area must be positive");
        LRS_CHECK_MSG(spec.cluster_radius > 0.0,
                      "cluster radius must be positive");
        return connected_placement(spec, [&spec](std::uint64_t seed) {
          return sample_clustered(spec, seed);
        });
      case TopologyKind::kLine: {
        LRS_CHECK_MSG(spec.spacing > 0.0, "line spacing must be positive");
        std::vector<Position> pos;
        pos.reserve(spec.nodes);
        for (std::size_t i = 0; i < spec.nodes; ++i) {
          pos.push_back({static_cast<double>(i) * spec.spacing, 0.0});
        }
        return Topology::custom(std::move(pos), spec.link);
      }
      case TopologyKind::kRing: {
        LRS_CHECK_MSG(spec.radius > 0.0, "ring radius must be positive");
        std::vector<Position> pos;
        pos.reserve(spec.nodes);
        for (std::size_t i = 0; i < spec.nodes; ++i) {
          const double angle = 2.0 * M_PI * static_cast<double>(i) /
                               static_cast<double>(spec.nodes);
          pos.push_back(
              {spec.radius * std::cos(angle), spec.radius * std::sin(angle)});
        }
        return Topology::custom(std::move(pos), spec.link);
      }
      case TopologyKind::kCells: {
        const std::size_t cells = spec.rows * spec.cols;
        LRS_CHECK_MSG(cells >= 1, "cells needs rows x cols >= 1");
        LRS_CHECK_MSG(spec.nodes % cells == 0,
                      "cells needs nodes divisible by rows x cols");
        LRS_CHECK_MSG(spec.nodes / cells >= 2,
                      "cells needs at least two nodes per cell");
        LRS_CHECK_MSG(spec.width > 0.0 && spec.height > 0.0,
                      "cell area must be positive");
        return sample_cell_lattice(spec);
      }
    }
    LRS_CHECK_MSG(false, "unknown topology kind");
  }();
  if (spec.prr_jitter > 0.0) {
    t.set_prr_jitter(spec.prr_jitter,
                     spec.jitter_seed != 0 ? spec.jitter_seed
                                           : spec.seed ^ 0x6a177e5ULL);
  }
  return t;
}

}  // namespace lrs::sim
