// Parameterized topology generators for the scenario subsystem.
//
// The paper evaluates two fixed shapes (one-hop star, 15x15 mica2 grid);
// related work evaluates dissemination on random geometric and clustered
// deployments at larger scale. TopologySpec is the declarative superset: a
// kind plus its parameters, buildable into the existing sim::Topology. All
// generators are deterministic in the spec's seed, and the stochastic ones
// (random geometric, clustered) run a seeded rejection loop until the
// placement is radio-connected, so every spec that validates yields a
// usable deployment bit-identically on every build.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "sim/topology.h"

namespace lrs::sim {

enum class TopologyKind {
  kStar,             // paper one-hop cell: base + `receivers` around it
  kGrid,             // rows x cols, spacing (paper multi-hop grids)
  kRandomGeometric,  // `nodes` uniform in width x height, connected
  kClustered,        // `clusters` hotspots of nodes in width x height
  kLine,             // corridor: `nodes` in a row, `spacing` apart
  kRing,             // `nodes` on a circle of `radius`
  kCells,            // rows x cols radio-isolated geometric cells (islands)
};

const char* topology_kind_name(TopologyKind k);
/// Inverse of topology_kind_name; false on unknown names.
bool topology_kind_from_name(const std::string& name, TopologyKind* out);

/// Declarative topology description. Only the fields of the chosen kind are
/// read (scenario validation rejects out-of-range values for that kind):
///   kStar             receivers, link
///   kGrid             rows, cols, spacing, link
///   kRandomGeometric  nodes, width, height, seed, link
///   kClustered        nodes, clusters, cluster_radius, width, height,
///                     seed, link
///   kLine             nodes, spacing, link
///   kRing             nodes, radius, link
///   kCells            nodes, rows, cols, width, height, seed, link
/// prr_jitter (with jitter_seed) applies to every kind.
///
/// kCells models a fleet of independent deployments: a rows x cols lattice
/// of cells, each holding nodes / (rows*cols) nodes placed as a connected
/// random-geometric cluster in its own width x height area. Cell areas are
/// separated by two outer radii, so no radio link (and no carrier) crosses
/// cells — every cell is one island for the island-parallel executor, with
/// node ids cell-major (cell c owns ids [c*per_cell, (c+1)*per_cell)).
struct TopologySpec {
  TopologyKind kind = TopologyKind::kStar;

  std::size_t receivers = 20;  // star (node count = receivers + 1)
  std::size_t rows = 15;       // grid
  std::size_t cols = 15;
  double spacing = 10.0;       // grid / line inter-node distance
  std::size_t nodes = 25;      // geometric / clustered / line / ring
  double width = 120.0;        // geometric / clustered area
  double height = 120.0;
  std::size_t clusters = 4;        // clustered hotspot count
  double cluster_radius = 10.0;    // node scatter around a hotspot center
  double radius = 60.0;            // ring circle radius
  std::uint64_t seed = 1;          // placement seed (stochastic kinds)

  LinkModel link{};  // PRR-vs-distance curve (star forces max_prr = 1
                     // only when built through Topology::star defaults;
                     // scenarios set the curve explicitly)

  /// Per-link PRR heterogeneity in [0, 1): each directed link's PRR is
  /// scaled by a deterministic factor in [1 - prr_jitter, 1].
  double prr_jitter = 0.0;
  std::uint64_t jitter_seed = 0;  // 0 = derive from `seed`

  /// Total node count (base station included) the spec will produce.
  std::size_t node_count() const;
};

/// Builds the topology for a spec. Throws (LRS_CHECK) on invalid parameter
/// combinations and when a stochastic generator cannot find a connected
/// placement within its attempt budget — scenario validation rejects specs
/// before they get here in normal use.
Topology build_topology(const TopologySpec& spec);

}  // namespace lrs::sim
