// Declarative scenario files: one self-contained description of a
// dissemination experiment — topology, channel, faults, node schedules,
// scheme geometry and trial parameters — in a dependency-free key=value
// section format (scenarios/*.scn, see docs/scenarios.md):
//
//   [scenario]
//   name = geo-sparse
//   scheme = lr-seluge
//   k = 8
//   n = 12
//   ...
//   [topology]
//   kind = geometric
//   nodes = 40
//   ...
//
// Parsing is strict (unknown sections/keys, malformed values and
// out-of-range parameters are errors naming the offending line), and every
// scenario re-serializes to a canonical form that parses back to the
// identical scenario — the golden-file contract the scenario tests pin.
//
// A parsed Scenario compiles into a core::ExperimentConfig
// (scenario_config), so anything that runs experiments — bench_campaign,
// the fig/table harnesses via --scenario=, tests, examples — can swap its
// hard-coded workload for a file.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "sim/scenario/generators.h"

namespace lrs::scenario {

/// Channel description: which loss model rides on top of the topology PRR.
struct ChannelSpec {
  enum class Model { kPerfect, kUniform, kPerNode, kGilbertElliott };
  Model model = Model::kPerfect;

  double loss = 0.0;  // uniform drop probability; per-node base

  // kPerNode: explicit per-node probabilities, or — when `per_node` is
  // empty — p_i drawn uniformly from [loss - loss_jitter, loss + jitter]
  // (clamped to [0, 1]) with the deterministic `loss_seed` stream.
  std::vector<double> per_node;
  double loss_jitter = 0.0;
  std::uint64_t loss_seed = 1;

  sim::GilbertElliottParams ge{};  // kGilbertElliott
};

const char* channel_model_name(ChannelSpec::Model m);
bool channel_model_from_name(const std::string& name,
                             ChannelSpec::Model* out);

/// One scheduled node event (late join / early sleep), times in SimTime.
struct NodeEvent {
  NodeId node = 0;
  sim::SimTime at = 0;
};

/// A fully validated experiment description.
struct Scenario {
  // [scenario]
  std::string name;
  std::string description;
  core::Scheme scheme = core::Scheme::kLrSeluge;
  std::size_t image_size = 20 * 1024;
  std::size_t payload_size = 64;
  std::size_t k = 32;
  std::size_t n = 48;
  std::size_t k0 = 8;
  std::size_t n0 = 16;
  std::size_t delta = 0;
  erasure::CodecKind codec = erasure::CodecKind::kReedSolomon;
  std::uint8_t puzzle_strength = 8;
  bool greedy_scheduler = true;

  // [topology]
  sim::TopologySpec topo{};

  // [channel]
  ChannelSpec channel{};

  // [faults] — the PR-3 fault plan plus node schedules layered on its
  // crash/reboot hooks: a late joiner is down from t=0 until its join time
  // (volatile state fresh at join), an early sleeper powers off at its
  // sleep time and never returns.
  sim::FaultPlan faults{};
  std::vector<NodeEvent> late_joiners;
  std::vector<NodeEvent> early_sleepers;

  // [trial]
  std::size_t repeats = 3;
  std::uint64_t seed = 1;
  double time_limit_s = 4.0 * 3600.0;
  bool check_invariants = true;
  /// Island-sharded execution (core/experiment.cc): each radio-connected
  /// component gets its own base station (the island's smallest id) and is
  /// simulated independently, optionally on LRS_JOBS workers. Deterministic:
  /// serial and parallel runs produce byte-identical results. Incompatible
  /// with [faults] (fault plans are whole-network schedules).
  bool islands = false;
  /// Receivers expected to finish (campaign pass criterion). Default — all
  /// receivers minus the early sleepers, which by construction cannot.
  /// Under `islands` every island contributes its own base, so a cells
  /// topology expects node_count - rows*cols completions.
  std::size_t expected_complete() const;
};

/// Parses scenario text. On failure returns nullopt and, when `error` is
/// non-null, a message naming the offending line. The result is fully
/// validated (ranges, cross-field consistency, node ids inside the
/// topology).
std::optional<Scenario> parse_scenario(const std::string& text,
                                       std::string* error);

/// Reads and parses a .scn file; errors are prefixed with the path.
std::optional<Scenario> load_scenario_file(const std::string& path,
                                           std::string* error);

/// Canonical serialization: fixed section/key order, minimal keys (only
/// those the selected topology kind / channel model / fault plan read),
/// shortest round-tripping number formatting. For every valid scenario s:
/// parse_scenario(canonical_scenario(s)) reproduces s exactly, and
/// canonicalization is idempotent.
std::string canonical_scenario(const Scenario& s);

/// Compiles the scenario into a runnable experiment configuration
/// (topology spec, channel, fault plan + schedule crash events, scheme
/// geometry, trial parameters).
core::ExperimentConfig scenario_config(const Scenario& s);

}  // namespace lrs::scenario
