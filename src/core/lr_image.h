// LR-Seluge image preprocessing and node state (paper §IV-C, §IV-E).
//
// Base-station side (Fig. 1): working backwards from page g, each page's
// k plaintext blocks — the image slice plus, for pages below g, the n hash
// images of the *next* page's encoded packets — are erasure-coded into n
// packets. The hash page M0 (the n hashes of page 1's packets) is itself
// erasure-coded with a k0-n0-k0' code into n0 = 2^d packets protected by a
// Merkle tree (Fig. 2) whose root is signed.
//
// Receiver side: after verifying the signature packet (root + geometry),
// any k0' authenticated page-0 packets decode M0, yielding the hash images
// of page 1's n packets; any k' authenticated page-1 packets decode page 1,
// yielding page 2's hashes; and so on. Every data packet is authenticated
// with a single hash the moment it arrives, yet any k' of the n packets
// complete a page — loss resilience plus immediate authentication.
//
// A node that decoded a page can regenerate all n of its packets (the code
// instances are preloaded and deterministic), so it serves exactly the
// packets its neighbors ask for; the most recently served page is cached.
#pragma once

#include <memory>

#include "crypto/hash.h"
#include "crypto/wots.h"
#include "proto/params.h"
#include "proto/scheme.h"

namespace lrs::core {

/// Base-station side: preprocesses `image` and signs the Merkle root with
/// `signer` (consumes one one-time key).
std::unique_ptr<proto::SchemeState> make_lr_source(
    const proto::CommonParams& params, const Bytes& image,
    crypto::MultiKeySigner& signer);

/// Receiver side: only the preloaded code instances and verification root.
std::unique_ptr<proto::SchemeState> make_lr_receiver(
    const proto::CommonParams& params,
    const crypto::PacketHash& root_public_key);

/// Geometry sanity check shared with the facade: params must leave room for
/// the per-page hash block (k * payload > n * hash size).
void validate_lr_params(const proto::CommonParams& params);

}  // namespace lrs::core
