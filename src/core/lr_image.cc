#include "core/lr_image.h"

#include <optional>
#include <utility>
#include <vector>

#include "core/greedy_scheduler.h"
#include "crypto/merkle.h"
#include "crypto/puzzle.h"
#include "erasure/code.h"
#include "proto/layout.h"
#include "proto/packet.h"
#include "util/check.h"

namespace lrs::core {

namespace {

using proto::CommonParams;
using proto::compute_layout;
using proto::DataStatus;
using proto::PageLayout;
using proto::page_slice;
using proto::place_slice;
using proto::SignedMeta;

class LrSelugeState final : public proto::SchemeState {
 public:
  /// Receiver: empty until the signature packet verifies.
  LrSelugeState(const CommonParams& params, const crypto::PacketHash& root_pk)
      : params_(params),
        root_pk_(root_pk),
        // Cached: every node of a simulation (and every Monte Carlo trial)
        // shares one generator matrix per (codec, geometry, seed) instead of
        // rebuilding it per LrSelugeState.
        code_(erasure::make_code_cached(params.codec, params.k, params.n,
                                        params.delta, params.code_seed)),
        code0_(erasure::make_code_cached(params.codec, params.k0, params.n0,
                                         std::min(params.delta,
                                                  params.n0 - params.k0),
                                         params.code_seed ^ 0x9e3779b9ULL)) {
    validate_lr_params(params_);
  }

  /// Base station: preprocess + sign.
  LrSelugeState(const CommonParams& params, const Bytes& image,
                crypto::MultiKeySigner& signer)
      : LrSelugeState(params, signer.root_public_key()) {
    build_from_image(image, signer);
  }

  // --- geometry --------------------------------------------------------------

  Version version() const override { return params_.version; }

  /// Every member is value-copyable and the codec instances are shared
  /// through the process-wide cache, so the default copy constructor IS the
  /// cheap clone: the hash chain, decoded pages, Merkle root and signature
  /// frame are duplicated as bytes, never recomputed, and no one-time
  /// signing key is consumed. Only complete (serving-ready) states clone —
  /// a partially-filled receiver has nothing a fresh cell could serve.
  std::unique_ptr<proto::SchemeState> clone_source() const override {
    if (!image_complete()) return nullptr;
    return std::make_unique<LrSelugeState>(*this);
  }

  std::uint32_t num_pages() const override {
    return meta_ ? meta_->content_pages + 1 : 0;
  }

  std::size_t packets_in_page(std::uint32_t page) const override {
    return page == 0 ? params_.n0 : params_.n;
  }

  std::size_t decode_threshold(std::uint32_t page) const override {
    return page == 0 ? code0_->decode_threshold() : code_->decode_threshold();
  }

  // --- receiver --------------------------------------------------------------

  std::uint32_t pages_complete() const override { return complete_pages_; }

  bool image_complete() const override {
    return meta_ && complete_pages_ == meta_->content_pages + 1;
  }

  Bytes assemble_image() const override {
    LRS_CHECK_MSG(image_complete(), "image not complete yet");
    const PageLayout layout = current_layout();
    Bytes image(layout.image_size, 0);
    const std::size_t g = meta_->content_pages;
    for (std::size_t p = 1; p <= g; ++p) {
      Bytes input;
      for (const auto& block : page_inputs_[p - 1]) {
        input.insert(input.end(), block.begin(), block.end());
      }
      input.resize(p < g ? layout.mid_capacity : layout.last_capacity);
      place_slice(image, layout, p, view(input));
    }
    return image;
  }

  BitVec request_bits(std::uint32_t page) const override {
    const std::size_t count = packets_in_page(page);
    BitVec bits(count);
    if (!meta_ || page != complete_pages_) return bits;
    for (std::size_t j = 0; j < count; ++j) {
      if (!have_.get(j)) bits.set(j);
    }
    return bits;
  }

  std::size_t buffered_packets() const override {
    return image_complete() ? 0 : shares_.size();
  }

  void on_reboot() override {
    // Decoded pages and the verified signature metadata are flash-backed;
    // the partially collected share set for the current page is not.
    if (!meta_ || image_complete()) return;
    reset_collection(complete_pages_);
    serve_cache_.reset();
  }

  DataStatus on_data(std::uint32_t page, std::uint32_t index,
                     ByteView payload, sim::NodeMetrics& m) override {
    return on_data(page, index, payload, m, nullptr);
  }

  DataStatus on_data(std::uint32_t page, std::uint32_t index,
                     ByteView payload, sim::NodeMetrics& m,
                     proto::RxDigestMemo* dig) override {
    if (!meta_) return DataStatus::kStale;  // cannot authenticate yet
    if (page != complete_pages_ || page > meta_->content_pages) {
      return DataStatus::kStale;
    }
    const std::size_t count = packets_in_page(page);
    if (index >= count) {
      m.auth_failures += 1;
      return DataStatus::kRejected;
    }
    if (have_.get(index)) return DataStatus::kStale;

    if (page == 0) {
      if (!verify_page0_packet(index, payload, m)) {
        m.auth_failures += 1;
        return DataStatus::kRejected;
      }
      // Keep only the encoded block; auth paths are regenerated on demand.
      shares_.push_back(
          {index, Bytes(payload.begin(),
                        payload.begin() +
                            static_cast<std::ptrdiff_t>(page0_block_size()))});
    } else {
      m.hash_verifications += 1;
      if (payload.size() != params_.payload_size ||
          !crypto::equal(
              content_digest(page, index, payload, dig),
              current_hashes_[index])) {
        m.auth_failures += 1;
        return DataStatus::kRejected;
      }
      shares_.push_back({index, Bytes(payload.begin(), payload.end())});
    }
    have_.set(index);

    // Enough authenticated packets? Attempt the erasure decode.
    if (shares_.size() >= decode_threshold(page)) {
      m.decode_operations += 1;
      const auto& codec = page == 0 ? code0_ : code_;
      if (auto blocks = codec->decode(shares_)) {
        finish_page(page, *std::move(blocks));
        return image_complete() ? DataStatus::kImageComplete
                                : DataStatus::kPageComplete;
      }
      // Probabilistic code needed more rank; keep collecting.
    }
    return DataStatus::kStored;
  }

  // --- signature --------------------------------------------------------------

  bool verify_stored_packet(std::uint32_t page, std::uint32_t index,
                            ByteView payload,
                            sim::NodeMetrics& m) const override {
    return verify_stored_packet(page, index, payload, m, nullptr);
  }

  bool verify_stored_packet(std::uint32_t page, std::uint32_t index,
                            ByteView payload, sim::NodeMetrics& m,
                            proto::RxDigestMemo* dig) const override {
    if (!meta_ || page >= complete_pages_ || index >= packets_in_page(page))
      return false;
    if (page == 0) {
      // Non-const verify helper not usable here; redo the Merkle check.
      const std::size_t depth = merkle_depth();
      const std::size_t block = page0_block_size();
      if (payload.size() != block + depth * crypto::kPacketHashSize)
        return false;
      std::vector<crypto::PacketHash> path;
      for (std::size_t lvl = 0; lvl < depth; ++lvl) {
        path.push_back(crypto::read_packet_hash(
            payload, block + lvl * crypto::kPacketHashSize));
      }
      m.hash_verifications += depth + 1;
      return crypto::equal(crypto::MerkleTree::compute_root(
                               payload.subspan(0, block), index, path),
                           root_);
    }
    if (payload.size() != params_.payload_size ||
        page_hashes_[page].size() != params_.n) {
      return false;
    }
    m.hash_verifications += 1;
    return crypto::equal(content_digest(page, index, payload, dig),
                         page_hashes_[page][index]);
  }

  /// Packet-content digest with the cross-receiver memo: the preimage is
  /// identical for every receiver of one delivery, so the first computation
  /// is shared. Accounting (hash_verifications) stays with the caller.
  crypto::PacketHash content_digest(std::uint32_t page, std::uint32_t index,
                                    ByteView payload,
                                    proto::RxDigestMemo* dig) const {
    if (dig && dig->valid) return dig->digest;
    crypto::PacketHash h =
        proto::data_packet_hash(params_.version, page, index, payload);
    if (dig) {
      dig->digest = h;
      dig->valid = true;
    }
    return h;
  }

  bool needs_signature() const override { return true; }
  bool bootstrapped() const override { return meta_.has_value(); }

  bool on_signature(ByteView frame, sim::NodeMetrics& m) override {
    if (meta_) return false;
    auto packet = proto::SignaturePacket::parse(frame);
    if (!packet || packet->meta.version != params_.version) {
      m.auth_failures += 1;
      return false;
    }
    const Bytes msg = packet->signed_message();
    // Enforce the preloaded puzzle strength: the packet's own strength
    // field is attacker-controlled and must not weaken the gate.
    if (packet->puzzle.strength < params_.puzzle_strength ||
        !crypto::verify_puzzle(view(msg), packet->puzzle)) {
      m.puzzle_rejections += 1;
      return false;
    }
    auto cert =
        crypto::CertifiedSignature::deserialize(view(packet->signature));
    m.signature_verifications += 1;
    if (!cert || !crypto::verify_certified_cached(root_pk_, view(msg), *cert)) {
      m.auth_failures += 1;
      return false;
    }
    adopt_meta(packet->meta, packet->root);
    signature_frame_ = Bytes(frame.begin(), frame.end());
    return true;
  }

  std::optional<Bytes> signature_frame() const override {
    return signature_frame_;
  }

  // --- sender ----------------------------------------------------------------

  std::optional<Bytes> packet_payload(std::uint32_t page,
                                      std::uint32_t index) override {
    if (!meta_ || page >= complete_pages_ ||
        index >= packets_in_page(page)) {
      return std::nullopt;
    }
    const auto& encoded = encoded_page(page);
    return encoded[index];
  }

  std::unique_ptr<proto::TxScheduler> make_scheduler(
      std::uint32_t page) const override {
    if (!params_.lr_greedy_scheduler)
      return proto::make_union_scheduler(packets_in_page(page));
    return make_greedy_scheduler(packets_in_page(page));
  }

 private:
  // --- geometry helpers -------------------------------------------------------

  std::size_t hash_block_bytes() const {
    return params_.n * crypto::kPacketHashSize;  // appended per mid page
  }
  std::size_t page0_bytes() const { return hash_block_bytes(); }
  std::size_t page0_block_size() const {
    return (page0_bytes() + params_.k0 - 1) / params_.k0;
  }
  std::size_t merkle_depth() const {
    std::size_t d = 0;
    while ((std::size_t{1} << d) < params_.n0) ++d;
    return d;
  }

  PageLayout current_layout() const {
    LRS_CHECK(meta_.has_value());
    PageLayout l = compute_layout(meta_->image_size, mid_capacity(),
                                  last_capacity());
    LRS_CHECK_MSG(l.content_pages == meta_->content_pages,
                  "signed geometry disagrees with preloaded parameters");
    return l;
  }

  std::size_t mid_capacity() const {
    return params_.k * params_.payload_size - hash_block_bytes();
  }
  std::size_t last_capacity() const {
    return params_.k * params_.payload_size;
  }

  void adopt_meta(const SignedMeta& meta, const crypto::PacketHash& root) {
    LRS_CHECK(meta.content_pages >= 1 && meta.image_size >= 1);
    meta_ = meta;
    root_ = root;
    page_inputs_.assign(meta.content_pages, {});
    page_hashes_.assign(meta.content_pages + 1, {});
    current_hashes_.clear();
    reset_collection(0);
  }

  void reset_collection(std::uint32_t page) {
    shares_.clear();
    have_ = BitVec(packets_in_page(page));
  }

  // --- verification helpers ----------------------------------------------------

  bool verify_page0_packet(std::uint32_t index, ByteView payload,
                           sim::NodeMetrics& m) {
    const std::size_t depth = merkle_depth();
    const std::size_t block = page0_block_size();
    if (payload.size() != block + depth * crypto::kPacketHashSize)
      return false;
    std::vector<crypto::PacketHash> path;
    path.reserve(depth);
    for (std::size_t lvl = 0; lvl < depth; ++lvl) {
      path.push_back(crypto::read_packet_hash(
          payload, block + lvl * crypto::kPacketHashSize));
    }
    m.hash_verifications += depth + 1;
    return crypto::equal(crypto::MerkleTree::compute_root(
                             payload.subspan(0, block), index, path),
                         root_);
  }

  // --- page completion -----------------------------------------------------------

  void finish_page(std::uint32_t page, std::vector<Bytes> blocks) {
    if (page == 0) {
      // M0 holds the hash images of page 1's n packets.
      Bytes m0;
      for (const auto& b : blocks) m0.insert(m0.end(), b.begin(), b.end());
      m0.resize(page0_bytes());
      m0_blocks_ = std::move(blocks);
      current_hashes_ = parse_hashes(view(m0));
    } else {
      page_hashes_[page] = current_hashes_;  // archive for replay checks
      // Blocks = image slice (+ next page's hashes below page g).
      if (page < meta_->content_pages) {
        Bytes input;
        for (const auto& b : blocks)
          input.insert(input.end(), b.begin(), b.end());
        current_hashes_ = parse_hashes(
            ByteView(input).subspan(mid_capacity(), hash_block_bytes()));
      } else {
        current_hashes_.clear();
      }
      page_inputs_[page - 1] = std::move(blocks);
    }
    ++complete_pages_;
    if (complete_pages_ <= meta_->content_pages) {
      reset_collection(complete_pages_);
    } else {
      shares_.clear();
      have_ = BitVec();
    }
  }

  std::vector<crypto::PacketHash> parse_hashes(ByteView data) const {
    LRS_CHECK(data.size() >= hash_block_bytes());
    std::vector<crypto::PacketHash> hashes;
    hashes.reserve(params_.n);
    for (std::size_t j = 0; j < params_.n; ++j) {
      hashes.push_back(
          crypto::read_packet_hash(data, j * crypto::kPacketHashSize));
    }
    return hashes;
  }

  // --- serving ----------------------------------------------------------------

  /// Regenerates (and caches) all packets of a completed page.
  const std::vector<Bytes>& encoded_page(std::uint32_t page) {
    if (serve_cache_ && serve_cache_->first == page)
      return serve_cache_->second;

    std::vector<Bytes> payloads;
    if (page == 0) {
      LRS_CHECK(!m0_blocks_.empty());
      auto encoded = code0_->encode(m0_blocks_);
      std::vector<Bytes> leaves = encoded;
      const auto tree = crypto::MerkleTree::build(leaves);
      payloads.reserve(params_.n0);
      for (std::size_t j = 0; j < params_.n0; ++j) {
        Bytes payload = std::move(encoded[j]);
        for (const auto& sib : tree.auth_path(j))
          crypto::append(payload, sib);
        payloads.push_back(std::move(payload));
      }
    } else {
      payloads = code_->encode(page_inputs_[page - 1]);
    }
    serve_cache_ = {page, std::move(payloads)};
    return serve_cache_->second;
  }

  // --- build (base station) -----------------------------------------------------

  void build_from_image(const Bytes& image, crypto::MultiKeySigner& signer) {
    const PageLayout layout =
        compute_layout(image.size(), mid_capacity(), last_capacity());
    const std::size_t g = layout.content_pages;

    SignedMeta meta;
    meta.version = params_.version;
    meta.content_pages = static_cast<std::uint32_t>(g);
    meta.image_size = static_cast<std::uint32_t>(image.size());

    std::vector<std::vector<Bytes>> inputs(g);
    std::vector<std::vector<crypto::PacketHash>> all_hashes(g + 1);
    std::vector<crypto::PacketHash> next_hashes;  // of page p+1's packets
    for (std::size_t p = g; p >= 1; --p) {
      Bytes input = page_slice(view(image), layout, p);
      if (p < g) {
        for (const auto& h : next_hashes) crypto::append(input, h);
      }
      LRS_CHECK(input.size() == params_.k * params_.payload_size);
      auto blocks = proto::split_fixed(view(input), params_.payload_size,
                                       params_.k);
      auto encoded = code_->encode(blocks);
      // All n preimages share one length, so the whole page hashes as a
      // single multi-buffer batch (crypto/hash.h).
      std::vector<Bytes> preimages(params_.n);
      std::vector<ByteView> preimage_views(params_.n);
      for (std::size_t j = 0; j < params_.n; ++j) {
        proto::DataPacket probe;
        probe.version = params_.version;
        probe.page = static_cast<std::uint32_t>(p);
        probe.index = static_cast<std::uint32_t>(j);
        probe.payload = std::move(encoded[j]);
        preimages[j] = probe.hash_preimage();
        preimage_views[j] = view(preimages[j]);
      }
      std::vector<crypto::PacketHash> hashes(params_.n);
      crypto::packet_hash_batch(preimage_views.data(), params_.n,
                                hashes.data());
      inputs[p - 1] = std::move(blocks);
      all_hashes[p] = hashes;
      next_hashes = std::move(hashes);
    }

    // Hash page: M0 = h_{1,1} || ... || h_{1,n}, coded with f0, Merkle tree.
    Bytes m0;
    for (const auto& h : next_hashes) crypto::append(m0, h);
    auto m0_blocks =
        proto::split_fixed(view(m0), page0_block_size(), params_.k0);
    auto encoded0 = code0_->encode(m0_blocks);
    const auto tree = crypto::MerkleTree::build(encoded0);

    proto::SignaturePacket sig;
    sig.meta = meta;
    sig.root = tree.root();
    const Bytes msg = sig.signed_message();
    sig.puzzle = crypto::solve_puzzle(view(msg), params_.puzzle_strength);
    sig.signature = signer.sign(view(msg)).serialize();

    // Adopt as fully complete.
    adopt_meta(meta, tree.root());
    m0_blocks_ = std::move(m0_blocks);
    current_hashes_ = parse_hashes(view(m0));
    page_inputs_ = std::move(inputs);
    page_hashes_ = std::move(all_hashes);
    complete_pages_ = static_cast<std::uint32_t>(g + 1);
    // current_hashes_ after full build are not used for verification, but
    // keep the page-1 hashes for symmetry/diagnostics.
    signature_frame_ = sig.serialize();
    shares_.clear();
    have_ = BitVec();
  }

  CommonParams params_;
  crypto::PacketHash root_pk_;
  std::shared_ptr<const erasure::ErasureCode> code_;   // k -> n, cached
  std::shared_ptr<const erasure::ErasureCode> code0_;  // k0 -> n0, cached

  std::optional<SignedMeta> meta_;
  crypto::PacketHash root_{};
  std::optional<Bytes> signature_frame_;

  // Decoded state: hash-page blocks and per-content-page input blocks.
  std::vector<Bytes> m0_blocks_;
  std::vector<std::vector<Bytes>> page_inputs_;
  // Archived packet hashes of completed content pages (index = page number,
  // entry 0 unused); lets verify_stored_packet() check straggler traffic.
  std::vector<std::vector<crypto::PacketHash>> page_hashes_;

  // Collection state for the page currently being received.
  std::vector<erasure::Share> shares_;
  BitVec have_;
  std::vector<crypto::PacketHash> current_hashes_;  // for current page >= 1

  std::uint32_t complete_pages_ = 0;
  std::optional<std::pair<std::uint32_t, std::vector<Bytes>>> serve_cache_;
};

}  // namespace

void validate_lr_params(const proto::CommonParams& params) {
  LRS_CHECK_MSG(params.k >= 1 && params.k <= params.n,
                "need 1 <= k <= n");
  LRS_CHECK_MSG(params.k0 >= 1 && params.k0 <= params.n0,
                "need 1 <= k0 <= n0");
  LRS_CHECK_MSG((params.n0 & (params.n0 - 1)) == 0,
                "n0 must be a power of two (Merkle tree)");
  LRS_CHECK_MSG(
      params.k * params.payload_size > params.n * crypto::kPacketHashSize,
      "page too small to carry the next page's hash images");
}

std::unique_ptr<proto::SchemeState> make_lr_source(
    const proto::CommonParams& params, const Bytes& image,
    crypto::MultiKeySigner& signer) {
  return std::make_unique<LrSelugeState>(params, image, signer);
}

std::unique_ptr<proto::SchemeState> make_lr_receiver(
    const proto::CommonParams& params,
    const crypto::PacketHash& root_public_key) {
  return std::make_unique<LrSelugeState>(params, root_public_key);
}

}  // namespace lrs::core
