#include "core/experiment.h"

#include "core/run_trials.h"

#include <vector>

#include "core/lr_image.h"
#include "crypto/wots.h"
#include "proto/deluge.h"
#include "proto/engine.h"
#include "proto/rateless.h"
#include "proto/packet.h"
#include "proto/sluice.h"
#include "proto/seluge.h"
#include "sim/invariants.h"
#include "util/check.h"
#include "util/rng.h"

namespace lrs::core {

const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kDeluge: return "deluge";
    case Scheme::kRatelessDeluge: return "rateless";
    case Scheme::kSluice: return "sluice";
    case Scheme::kSeluge: return "seluge";
    case Scheme::kLrSeluge: return "lr-seluge";
  }
  return "?";
}

std::optional<Scheme> scheme_from_name(const std::string& name) {
  for (Scheme s : {Scheme::kDeluge, Scheme::kRatelessDeluge, Scheme::kSluice,
                   Scheme::kSeluge, Scheme::kLrSeluge}) {
    if (name == scheme_name(s)) return s;
  }
  return std::nullopt;
}

Bytes make_test_image(std::size_t size, std::uint64_t seed) {
  Rng rng(seed ^ 0xabcdef1234ULL);
  Bytes image(size);
  for (auto& b : image) b = static_cast<std::uint8_t>(rng.uniform(256));
  return image;
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  const Bytes image = make_test_image(config.image_size, config.seed);

  // Key material: one signer for the whole deployment.
  const Bytes key_seed{0x11, 0x22, 0x33, 0x44};
  crypto::MultiKeySigner signer(view(key_seed), /*height=*/2);
  const crypto::PacketHash root_pk = signer.root_public_key();

  // One-hop cells are error-free at the link layer (paper §VI-A): the
  // only losses are the application-layer drops of the loss model.
  sim::Topology topology = [&config] {
    switch (config.topo) {
      case ExperimentConfig::Topo::kStar:
        return sim::Topology::star(config.receivers);
      case ExperimentConfig::Topo::kGrid:
        return sim::Topology::grid(config.grid_rows, config.grid_cols,
                                   config.grid_spacing, config.link);
      case ExperimentConfig::Topo::kSpec:
        return sim::build_topology(config.topo_spec);
    }
    LRS_CHECK_MSG(false, "unknown topology selector");
  }();
  const std::size_t node_count = topology.size();
  const std::size_t receiver_count = node_count - 1;

  std::unique_ptr<sim::LossModel> loss;
  if (!config.per_node_loss.empty()) {
    loss = sim::make_per_node_loss(config.per_node_loss, node_count);
  } else if (config.gilbert_elliott) {
    loss = sim::make_gilbert_elliott(config.ge, node_count,
                                     config.seed ^ 0x6e01);
  } else if (config.loss_p > 0.0) {
    loss = sim::make_uniform_loss(config.loss_p);
  } else {
    loss = sim::make_perfect_channel();
  }

  sim::Simulator simulator(std::move(topology), std::move(loss), config.radio,
                           config.seed);

  auto make_scheme = [&](bool base) -> std::unique_ptr<proto::SchemeState> {
    switch (config.scheme) {
      case Scheme::kDeluge:
        return base ? proto::make_deluge_source(config.params, image)
                    : proto::make_deluge_receiver(config.params, image.size());
      case Scheme::kRatelessDeluge:
        return base
                   ? proto::make_rateless_source(config.params, image)
                   : proto::make_rateless_receiver(config.params, image.size());
      case Scheme::kSluice:
        return base ? proto::make_sluice_source(config.params, image, signer)
                    : proto::make_sluice_receiver(config.params, root_pk);
      case Scheme::kSeluge:
        return base ? proto::make_seluge_source(config.params, image, signer)
                    : proto::make_seluge_receiver(config.params, root_pk);
      case Scheme::kLrSeluge:
        return base ? make_lr_source(config.params, image, signer)
                    : make_lr_receiver(config.params, root_pk);
    }
    return nullptr;
  };

  const bool insecure = config.scheme == Scheme::kDeluge ||
                        config.scheme == Scheme::kRatelessDeluge;
  const Bytes cluster_key = insecure ? Bytes{} : config.params.cluster_key;

  proto::EngineConfig engine;
  engine.timing = config.timing;
  engine.dor_mitigation = config.dor_mitigation;
  engine.leap_snack_auth = config.params.leap_snack_auth && !insecure;
  engine.leap_master = config.params.leap_master;

  std::vector<proto::DissemNode*> nodes;
  nodes.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    proto::EngineConfig cfg = engine;
    cfg.is_base_station = i == 0;
    nodes.push_back(&simulator.add_node<proto::DissemNode>(
        make_scheme(i == 0), cfg, cluster_key));
  }

  if (config.faults.any()) {
    simulator.set_fault_model(sim::make_fault_model(config.faults));
  }

  std::unique_ptr<sim::InvariantObserver> observer;
  if (config.check_invariants) {
    sim::InvariantConfig ic;
    ic.expected_image = image;
    // The checked subset follows the scheme's promises: only Seluge and
    // LR-Seluge authenticate every packet before buffering, and only the
    // LR greedy scheduler is bound by d = q + k' - n.
    const bool authenticated = config.scheme == Scheme::kSeluge ||
                               config.scheme == Scheme::kLrSeluge;
    ic.check_immediate_auth = authenticated;
    ic.check_tamper_rejection = authenticated;
    ic.check_greedy_bound = config.scheme == Scheme::kLrSeluge &&
                            config.params.lr_greedy_scheduler;
    // Parse wire frames exactly the way the engine does (same keys), so
    // forged SNACKs earn a server no send allowance.
    ic.parse_snack = [key = cluster_key, leap = engine.leap_snack_auth,
                      master = engine.leap_master](
                         ByteView frame) -> std::optional<sim::SnackView> {
      std::optional<proto::Snack> s;
      if (leap) {
        const auto sender = proto::Snack::peek_sender(frame);
        if (!sender) return std::nullopt;
        const Bytes source_key = proto::leap_source_key(view(master), *sender);
        s = proto::Snack::parse(frame, view(source_key));
      } else {
        s = proto::Snack::parse(frame, view(key));
      }
      if (!s) return std::nullopt;
      sim::SnackView v;
      v.sender = s->sender;
      v.target = s->target;
      v.page = s->page;
      v.signature_request = s->page == proto::kSignatureRequestPage;
      v.requested = v.signature_request ? 0 : s->requested.count();
      return v;
    };
    ic.parse_data = [](ByteView frame) -> std::optional<sim::DataView> {
      const auto d = proto::DataPacket::parse(frame);
      if (!d) return std::nullopt;
      return sim::DataView{d->page, d->index};
    };
    observer = std::make_unique<sim::InvariantObserver>(std::move(ic));
    for (std::size_t i = 0; i < node_count; ++i) {
      proto::DissemNode* n = nodes[i];
      sim::NodeProbe probe;
      // Probe through the DissemNode on every call: scheme upgrades swap
      // the SchemeState underneath.
      probe.bootstrapped = [n] { return n->scheme().bootstrapped(); };
      probe.pages_complete = [n] { return n->scheme().pages_complete(); };
      probe.buffered_packets = [n] { return n->scheme().buffered_packets(); };
      probe.image_complete = [n] { return n->scheme().image_complete(); };
      probe.assemble_image = [n] { return n->scheme().assemble_image(); };
      probe.engine_state = [n] { return static_cast<int>(n->state()); };
      probe.packets_in_page = [n](std::uint32_t p) {
        return n->scheme().packets_in_page(p);
      };
      probe.decode_threshold = [n](std::uint32_t p) {
        return n->scheme().decode_threshold(p);
      };
      observer->attach(static_cast<NodeId>(i), std::move(probe));
    }
    simulator.add_observer(observer.get());
  }

  std::unique_ptr<sim::TraceRecorder> tracer;
  if (config.trace.enabled()) {
    tracer = std::make_unique<sim::TraceRecorder>();
    simulator.add_observer(tracer.get());
  }

  auto& metrics = simulator.metrics();
  // completed_count is O(1) (Metrics keeps an exact counter) — this
  // predicate runs after every event, so it must not scan the node table.
  const auto done = [&] { return metrics.completed_count(0) == receiver_count; };
  simulator.run(config.time_limit, done);

  ExperimentResult r;
  r.receivers = receiver_count;
  r.completed = metrics.completed_count(0);
  r.all_complete = r.completed == receiver_count;

  r.data_packets = metrics.total_sent(sim::PacketClass::kData);
  for (NodeId i = 0; i < node_count; ++i)
    r.page0_data_packets += metrics.node(i).page0_data_sent;
  r.snack_packets = metrics.total_sent(sim::PacketClass::kSnack);
  r.adv_packets = metrics.total_sent(sim::PacketClass::kAdvertisement);
  r.sig_packets = metrics.total_sent(sim::PacketClass::kSignature);
  r.total_bytes = metrics.total_sent_bytes();
  r.received_bytes = metrics.total_received_bytes();
  r.latency_s = r.all_complete
                    ? sim::to_seconds(metrics.last_completion())
                    : sim::to_seconds(config.time_limit);
  r.collisions = simulator.collisions();
  r.events_executed = simulator.events_executed();
  r.hash_verifications = metrics.total_hash_verifications();
  r.signature_verifications = metrics.total_signature_verifications();
  r.auth_failures = metrics.total_auth_failures();

  double tx_us = 0, rx_us = 0;
  for (NodeId i = 0; i < node_count; ++i) {
    tx_us += static_cast<double>(metrics.node(i).tx_airtime_us);
    rx_us += static_cast<double>(metrics.node(i).rx_airtime_us);
  }
  r.tx_energy_mj = tx_us * 1e-6 * config.radio.tx_power_mw;
  r.rx_energy_mj = rx_us * 1e-6 * config.radio.rx_power_mw;
  r.listen_energy_mj = static_cast<double>(node_count) * r.latency_s *
                       config.radio.rx_power_mw;

  r.images_match = true;
  for (std::size_t i = 1; i < node_count; ++i) {
    if (!nodes[i]->image_complete()) {
      if (metrics.node(static_cast<NodeId>(i)).completion_time >= 0)
        r.images_match = false;  // inconsistent bookkeeping
      continue;
    }
    if (nodes[i]->scheme().assemble_image() != image) r.images_match = false;
  }

  r.tampered_frames = simulator.tampered_frames();
  r.fault_drops = simulator.fault_drops();
  r.reboots = simulator.reboots();
  if (observer) {
    observer->finalize(simulator.now());
    r.invariant_checks = observer->checks_run();
    r.invariant_violations = observer->violations().size();
    if (!observer->ok()) {
      r.first_violation = observer->violations().front().to_string();
    }
  }
  if (tracer) {
    sim::export_trace(*tracer, config.trace, node_count);
  }
  return r;
}

ExperimentResult run_experiment_avg(const ExperimentConfig& config,
                                    std::size_t repeats) {
  const std::vector<ExperimentResult> trials = run_trials(config, repeats);
  return aggregate_trials(trials);
}

}  // namespace lrs::core
