#include "core/experiment.h"

#include "core/run_trials.h"

#include <algorithm>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/lr_image.h"
#include "core/parallel.h"
#include "crypto/wots.h"
#include "proto/deluge.h"
#include "proto/engine.h"
#include "proto/rateless.h"
#include "proto/packet.h"
#include "proto/sluice.h"
#include "proto/seluge.h"
#include "sim/invariants.h"
#include "sim/partition.h"
#include "sim/stats/stats.h"
#include "util/check.h"
#include "util/rng.h"

namespace lrs::core {

const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kDeluge: return "deluge";
    case Scheme::kRatelessDeluge: return "rateless";
    case Scheme::kSluice: return "sluice";
    case Scheme::kSeluge: return "seluge";
    case Scheme::kLrSeluge: return "lr-seluge";
  }
  return "?";
}

std::optional<Scheme> scheme_from_name(const std::string& name) {
  for (Scheme s : {Scheme::kDeluge, Scheme::kRatelessDeluge, Scheme::kSluice,
                   Scheme::kSeluge, Scheme::kLrSeluge}) {
    if (name == scheme_name(s)) return s;
  }
  return std::nullopt;
}

Bytes make_test_image(std::size_t size, std::uint64_t seed) {
  Rng rng(seed ^ 0xabcdef1234ULL);
  Bytes image(size);
  for (auto& b : image) b = static_cast<std::uint8_t>(rng.uniform(256));
  return image;
}

namespace {

/// The disseminating side consumes one of the signer's one-time keys per
/// call (secure schemes sign the image's hash-tree root).
std::unique_ptr<proto::SchemeState> make_source_scheme(
    const ExperimentConfig& config, const Bytes& image,
    crypto::MultiKeySigner& signer) {
  switch (config.scheme) {
    case Scheme::kDeluge:
      return proto::make_deluge_source(config.params, image);
    case Scheme::kRatelessDeluge:
      return proto::make_rateless_source(config.params, image);
    case Scheme::kSluice:
      return proto::make_sluice_source(config.params, image, signer);
    case Scheme::kSeluge:
      return proto::make_seluge_source(config.params, image, signer);
    case Scheme::kLrSeluge:
      return make_lr_source(config.params, image, signer);
  }
  return nullptr;
}

std::unique_ptr<proto::SchemeState> make_receiver_scheme(
    const ExperimentConfig& config, std::size_t image_size,
    const crypto::PacketHash& root_pk) {
  switch (config.scheme) {
    case Scheme::kDeluge:
      return proto::make_deluge_receiver(config.params, image_size);
    case Scheme::kRatelessDeluge:
      return proto::make_rateless_receiver(config.params, image_size);
    case Scheme::kSluice:
      return proto::make_sluice_receiver(config.params, root_pk);
    case Scheme::kSeluge:
      return proto::make_seluge_receiver(config.params, root_pk);
    case Scheme::kLrSeluge:
      return make_lr_receiver(config.params, root_pk);
  }
  return nullptr;
}

/// Simulates one closed radio system — the whole network, or one island of
/// it — to completion and extracts its metrics. `members` follows the
/// Simulator contract: empty means every topology position; otherwise an
/// ascending list closed under the radio graph, whose smallest id serves
/// as the base station. `source` is the (pre-signed) disseminating scheme.
ExperimentResult run_cell(const ExperimentConfig& config, const Bytes& image,
                          const crypto::PacketHash& root_pk,
                          std::shared_ptr<const sim::Topology> topology,
                          std::vector<NodeId> members,
                          std::unique_ptr<proto::SchemeState> source) {
  // Top-level scope: one cell end to end (build, run, metric extraction).
  // In island mode cells run concurrently, so accumulated scope time is
  // CPU-time-like — it can exceed wall time under LRS_JOBS > 1.
  static stats::Timer& cell_timer =
      stats::Registry::instance().timer("core.run_cell", /*top_level=*/true);
  stats::TimerScope cell_scope(cell_timer);
  const std::size_t node_count = topology->size();

  std::unique_ptr<sim::LossModel> loss;
  if (!config.per_node_loss.empty()) {
    loss = sim::make_per_node_loss(config.per_node_loss, node_count);
  } else if (config.gilbert_elliott) {
    loss = sim::make_gilbert_elliott(config.ge, node_count,
                                     config.seed ^ 0x6e01);
  } else if (config.loss_p > 0.0) {
    loss = sim::make_uniform_loss(config.loss_p);
  } else {
    loss = sim::make_perfect_channel();
  }

  sim::Simulator simulator(std::move(topology), std::move(loss), config.radio,
                           config.seed, std::move(members));
  // The simulated ids (all of them outside island mode), base first.
  const std::vector<NodeId>& cell = simulator.members();
  const NodeId base = cell.front();
  const std::size_t receiver_count = cell.size() - 1;

  const bool insecure = config.scheme == Scheme::kDeluge ||
                        config.scheme == Scheme::kRatelessDeluge;
  const Bytes cluster_key = insecure ? Bytes{} : config.params.cluster_key;

  // One receive-side verification memo for the whole (single-threaded)
  // simulation: every node of this run shares keys and delivery serials,
  // so the ~radio-degree receivers of each broadcast verify it once.
  auto rx_memo = std::make_unique<proto::RxFanoutMemo>();

  proto::EngineConfig engine;
  engine.timing = config.timing;
  engine.dor_mitigation = config.dor_mitigation;
  engine.leap_snack_auth = config.params.leap_snack_auth && !insecure;
  engine.leap_master = config.params.leap_master;
  engine.rx_memo = rx_memo.get();

  std::vector<proto::DissemNode*> nodes;
  nodes.reserve(cell.size());
  for (const NodeId id : cell) {
    proto::EngineConfig cfg = engine;
    cfg.is_base_station = id == base;
    nodes.push_back(&simulator.add_node<proto::DissemNode>(
        id == base ? std::move(source)
                   : make_receiver_scheme(config, image.size(), root_pk),
        cfg, cluster_key));
  }

  if (config.faults.any()) {
    simulator.set_fault_model(sim::make_fault_model(config.faults));
  }

  std::unique_ptr<sim::InvariantObserver> observer;
  if (config.check_invariants) {
    sim::InvariantConfig ic;
    ic.expected_image = image;
    // The checked subset follows the scheme's promises: only Seluge and
    // LR-Seluge authenticate every packet before buffering, and only the
    // LR greedy scheduler is bound by d = q + k' - n.
    const bool authenticated = config.scheme == Scheme::kSeluge ||
                               config.scheme == Scheme::kLrSeluge;
    ic.check_immediate_auth = authenticated;
    ic.check_tamper_rejection = authenticated;
    ic.check_greedy_bound = config.scheme == Scheme::kLrSeluge &&
                            config.params.lr_greedy_scheduler;
    // Parse wire frames exactly the way the engine does (same keys), so
    // forged SNACKs earn a server no send allowance.
    ic.parse_snack = [key = cluster_key, leap = engine.leap_snack_auth,
                      master = engine.leap_master](
                         ByteView frame) -> std::optional<sim::SnackView> {
      std::optional<proto::Snack> s;
      if (leap) {
        const auto sender = proto::Snack::peek_sender(frame);
        if (!sender) return std::nullopt;
        const Bytes source_key = proto::leap_source_key(view(master), *sender);
        s = proto::Snack::parse(frame, view(source_key));
      } else {
        s = proto::Snack::parse(frame, view(key));
      }
      if (!s) return std::nullopt;
      sim::SnackView v;
      v.sender = s->sender;
      v.target = s->target;
      v.page = s->page;
      v.signature_request = s->page == proto::kSignatureRequestPage;
      v.requested = v.signature_request ? 0 : s->requested.count();
      return v;
    };
    ic.parse_data = [](ByteView frame) -> std::optional<sim::DataView> {
      const auto d = proto::DataPacket::parse(frame);
      if (!d) return std::nullopt;
      return sim::DataView{d->page, d->index};
    };
    observer = std::make_unique<sim::InvariantObserver>(std::move(ic));
    for (std::size_t k = 0; k < cell.size(); ++k) {
      proto::DissemNode* n = nodes[k];
      sim::NodeProbe probe;
      // Probe through the DissemNode on every call: scheme upgrades swap
      // the SchemeState underneath.
      probe.bootstrapped = [n] { return n->scheme().bootstrapped(); };
      probe.pages_complete = [n] { return n->scheme().pages_complete(); };
      probe.buffered_packets = [n] { return n->scheme().buffered_packets(); };
      probe.image_complete = [n] { return n->scheme().image_complete(); };
      probe.assemble_image = [n] { return n->scheme().assemble_image(); };
      probe.engine_state = [n] { return static_cast<int>(n->state()); };
      probe.packets_in_page = [n](std::uint32_t p) {
        return n->scheme().packets_in_page(p);
      };
      probe.decode_threshold = [n](std::uint32_t p) {
        return n->scheme().decode_threshold(p);
      };
      observer->attach(cell[k], std::move(probe));
    }
    simulator.add_observer(observer.get());
  }

  std::unique_ptr<sim::TraceRecorder> tracer;
  if (config.trace.enabled()) {
    tracer = std::make_unique<sim::TraceRecorder>();
    simulator.add_observer(tracer.get());
  }

  auto& metrics = simulator.metrics();
  // completed_count is O(1) (Metrics keeps an exact counter) — this
  // predicate runs after every event, so it must not scan the node table.
  const auto done = [&] {
    return metrics.completed_count(base) == receiver_count;
  };
  {
    // Nested (inclusive) scope: the event loop proper, inside core.run_cell.
    static stats::Timer& run_timer =
        stats::Registry::instance().timer("sim.run");
    stats::TimerScope run_scope(run_timer);
    simulator.run(config.time_limit, done);
  }

  ExperimentResult r;
  r.receivers = receiver_count;
  r.completed = metrics.completed_count(base);
  r.all_complete = r.completed == receiver_count;

  r.data_packets = metrics.total_sent(sim::PacketClass::kData);
  for (const NodeId i : cell) r.page0_data_packets += metrics.node(i).page0_data_sent;
  r.snack_packets = metrics.total_sent(sim::PacketClass::kSnack);
  r.adv_packets = metrics.total_sent(sim::PacketClass::kAdvertisement);
  r.sig_packets = metrics.total_sent(sim::PacketClass::kSignature);
  r.total_bytes = metrics.total_sent_bytes();
  r.received_bytes = metrics.total_received_bytes();
  r.latency_s = r.all_complete
                    ? sim::to_seconds(metrics.last_completion())
                    : sim::to_seconds(config.time_limit);
  r.collisions = simulator.collisions();
  r.events_executed = simulator.events_executed();
  r.max_island_events = r.events_executed;  // one cell == one island here
  {
    static stats::Counter& events =
        stats::Registry::instance().counter("core.events_executed");
    static stats::Histogram& island_events =
        stats::Registry::instance().histogram("core.island.events");
    events.add(r.events_executed);
    island_events.record(r.events_executed);
  }
  r.hash_verifications = metrics.total_hash_verifications();
  r.signature_verifications = metrics.total_signature_verifications();
  r.auth_failures = metrics.total_auth_failures();

  double tx_us = 0, rx_us = 0;
  for (const NodeId i : cell) {
    tx_us += static_cast<double>(metrics.node(i).tx_airtime_us);
    rx_us += static_cast<double>(metrics.node(i).rx_airtime_us);
  }
  r.tx_energy_mj = tx_us * 1e-6 * config.radio.tx_power_mw;
  r.rx_energy_mj = rx_us * 1e-6 * config.radio.rx_power_mw;
  r.listen_energy_mj = static_cast<double>(cell.size()) * r.latency_s *
                       config.radio.rx_power_mw;

  r.images_match = true;
  for (std::size_t k = 1; k < cell.size(); ++k) {
    if (!nodes[k]->image_complete()) {
      if (metrics.node(cell[k]).completion_time >= 0)
        r.images_match = false;  // inconsistent bookkeeping
      continue;
    }
    if (nodes[k]->scheme().assemble_image() != image) r.images_match = false;
  }

  r.tampered_frames = simulator.tampered_frames();
  r.fault_drops = simulator.fault_drops();
  r.reboots = simulator.reboots();
  if (observer) {
    observer->finalize(simulator.now());
    r.invariant_checks = observer->checks_run();
    r.invariant_violations = observer->violations().size();
    if (!observer->ok()) {
      r.first_violation = observer->violations().front().to_string();
    }
  }
  if (tracer) {
    sim::export_trace(*tracer, config.trace, node_count);
  }
  return r;
}

/// Folds per-island results (in island order) into one network-wide
/// result. Counters add; latency is the slowest island's (dissemination
/// runs everywhere concurrently); the idle-listening bound adds because
/// every island's radios switch off at their own island's completion.
ExperimentResult merge_islands(std::span<const ExperimentResult> parts) {
  static stats::Timer& timer = stats::Registry::instance().timer(
      "core.merge_islands", /*top_level=*/true);
  stats::TimerScope scope(timer);
  ExperimentResult m;
  m.all_complete = true;
  m.images_match = true;
  m.islands = parts.size();
  for (const ExperimentResult& r : parts) {
    m.max_island_events = std::max(m.max_island_events, r.events_executed);
    m.all_complete = m.all_complete && r.all_complete;
    m.images_match = m.images_match && r.images_match;
    m.completed += r.completed;
    m.receivers += r.receivers;
    m.data_packets += r.data_packets;
    m.page0_data_packets += r.page0_data_packets;
    m.snack_packets += r.snack_packets;
    m.adv_packets += r.adv_packets;
    m.sig_packets += r.sig_packets;
    m.total_bytes += r.total_bytes;
    m.received_bytes += r.received_bytes;
    m.latency_s = std::max(m.latency_s, r.latency_s);
    m.collisions += r.collisions;
    m.events_executed += r.events_executed;
    m.hash_verifications += r.hash_verifications;
    m.signature_verifications += r.signature_verifications;
    m.auth_failures += r.auth_failures;
    m.tx_energy_mj += r.tx_energy_mj;
    m.rx_energy_mj += r.rx_energy_mj;
    m.listen_energy_mj += r.listen_energy_mj;
    m.tampered_frames += r.tampered_frames;
    m.fault_drops += r.fault_drops;
    m.reboots += r.reboots;
    m.invariant_checks += r.invariant_checks;
    m.invariant_violations += r.invariant_violations;
    if (m.first_violation.empty() && !r.first_violation.empty()) {
      m.first_violation = r.first_violation;
    }
  }
  return m;
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
  const Bytes image = make_test_image(config.image_size, config.seed);
  const Bytes key_seed{0x11, 0x22, 0x33, 0x44};

  // One-hop cells are error-free at the link layer (paper §VI-A): the
  // only losses are the application-layer drops of the loss model.
  auto topology = std::make_shared<const sim::Topology>([&config] {
    switch (config.topo) {
      case ExperimentConfig::Topo::kStar:
        return sim::Topology::star(config.receivers);
      case ExperimentConfig::Topo::kGrid:
        return sim::Topology::grid(config.grid_rows, config.grid_cols,
                                   config.grid_spacing, config.link);
      case ExperimentConfig::Topo::kSpec:
        return sim::build_topology(config.topo_spec);
    }
    LRS_CHECK_MSG(false, "unknown topology selector");
  }());

  if (config.islands) {
    std::vector<std::vector<NodeId>> islands = sim::radio_islands(*topology);
    if (islands.size() > 1) {
      // Fault plans and trace exports are whole-network, single-stream
      // concepts; the scenario layer rejects the combination up front.
      LRS_CHECK_MSG(!config.faults.any(),
                    "island mode does not support fault plans");
      LRS_CHECK_MSG(!config.trace.enabled(),
                    "island mode does not support tracing");

      std::vector<std::unique_ptr<proto::SchemeState>> sources;
      crypto::PacketHash root_pk{};
      {
        // Top-level scope: all source-side key material and signing work
        // (serial by construction — see the pre-sign comment below).
        static stats::Timer& source_timer = stats::Registry::instance().timer(
            "core.source", /*top_level=*/true);
        stats::TimerScope source_scope(source_timer);

        // Key material: still one signer (one preloaded root) for the whole
        // deployment, but every island's base signs its own dissemination,
        // so the one-time-key tree must cover the island count.
        std::size_t height = 2;
        while ((std::size_t{1} << height) < islands.size()) ++height;
        crypto::MultiKeySigner signer(view(key_seed), height);
        root_pk = signer.root_public_key();

        // Pre-sign serially in island order: the signer hands out one-time
        // keys in sequence, so the leaf -> island assignment must never
        // depend on worker scheduling.
        sources.reserve(islands.size());
        for (std::size_t i = 0; i < islands.size(); ++i) {
          sources.push_back(make_source_scheme(config, image, signer));
        }
      }

      // Each worker builds, runs and destroys its island's simulator, so
      // peak memory is jobs x one-island state, not islands x. Results land
      // in island-indexed slots: byte-identical for any worker count.
      std::vector<ExperimentResult> parts(islands.size());
      const std::size_t jobs =
          config.island_jobs != 0 ? config.island_jobs : default_jobs();
      // Island sizes are heterogeneous (a geometric deployment mixes
      // 2-node islets with 1000-node blobs), so the work-stealing runner
      // replaces the flat atomic-counter fan-out; results stay in
      // island-indexed slots, hence byte-identical for any worker count.
      const std::size_t steals =
          parallel_for_ws(islands.size(), jobs, [&](std::size_t i) {
            parts[i] = run_cell(config, image, root_pk, topology,
                                std::move(islands[i]), std::move(sources[i]));
          });
      static stats::Gauge& steal_gauge =
          stats::Registry::instance().gauge("core.parallel.steals");
      steal_gauge.add(static_cast<std::int64_t>(steals));
      return merge_islands(parts);
    }
  }

  // Classic single-simulator path (also: island mode on a connected
  // topology, which is one island and must match this path exactly).
  std::unique_ptr<proto::SchemeState> source;
  crypto::PacketHash root_pk{};
  {
    static stats::Timer& source_timer = stats::Registry::instance().timer(
        "core.source", /*top_level=*/true);
    stats::TimerScope source_scope(source_timer);
    crypto::MultiKeySigner signer(view(key_seed), /*height=*/2);
    root_pk = signer.root_public_key();
    source = make_source_scheme(config, image, signer);
  }
  return run_cell(config, image, root_pk, std::move(topology), {},
                  std::move(source));
}

ExperimentResult run_experiment_avg(const ExperimentConfig& config,
                                    std::size_t repeats) {
  const std::vector<ExperimentResult> trials = run_trials(config, repeats);
  return aggregate_trials(trials);
}

}  // namespace lrs::core
