// LR-Seluge's greedy round-robin TX scheduler (paper §IV-D.3, Table I).
//
// A serving node keeps a tracking table with one entry per requesting
// neighbor: the bit-vector of packets that neighbor still finds useful and
// its *distance* — how many more packets it needs to decode the page
// (d = q + k' - n). The scheduler transmits the packet wanted by the most
// neighbors (ties: first in cyclic order after the previous transmission;
// the very first pick starts from index 0, i.e. lowest index). After each
// transmission it optimistically clears that column, decrements the
// distance of every neighbor that wanted the packet, and deletes entries
// whose distance reaches zero — those neighbors can decode even though
// other requested bits remain unserved. That early cutoff is what saves
// LR-Seluge up to ~40% of data transmissions versus serving the union.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "proto/scheduler.h"

namespace lrs::core {

class GreedyRoundRobinScheduler final : public proto::TxScheduler {
 public:
  explicit GreedyRoundRobinScheduler(std::size_t packets_in_page);

  void on_snack(NodeId node, const BitVec& requested,
                std::size_t needed) override;
  std::optional<std::uint32_t> next_packet() override;
  void on_overheard_data(std::uint32_t index) override;
  void set_start(std::uint32_t index) override;
  bool idle() const override { return table_.empty(); }
  std::size_t backlog() const override;

  /// Number of tracked neighbors (tests & diagnostics).
  std::size_t tracked() const { return table_.size(); }
  /// Distance of a tracked neighbor, 0 if absent.
  std::size_t distance(NodeId node) const;
  /// Popularity of a packet index: how many tracked neighbors want it.
  std::size_t popularity(std::uint32_t index) const;

 private:
  struct Entry {
    BitVec wanted;
    std::size_t distance = 0;
  };

  /// Clears column `index` and settles distances, deleting satisfied rows.
  void account_transmission(std::uint32_t index);

  std::size_t n_;
  bool sent_any_ = false;
  std::size_t last_ = 0;
  std::map<NodeId, Entry> table_;
};

std::unique_ptr<proto::TxScheduler> make_greedy_scheduler(
    std::size_t packets_in_page);

}  // namespace lrs::core
