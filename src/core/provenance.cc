#include "core/provenance.h"

#include <sstream>

#include "crypto/sha256_kernels.h"
#include "erasure/gf256_kernels.h"

// Baked in by CMake (execute_process over git rev-parse at configure time);
// falls back to "unknown" for tarball builds without a .git directory.
#ifndef LRS_GIT_SHA
#define LRS_GIT_SHA "unknown"
#endif
#ifndef LRS_BUILD_TYPE
#define LRS_BUILD_TYPE ""
#endif

namespace lrs::core {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // drop control chars
    out.push_back(c);
  }
  return out;
}

std::string json_string_array(const std::vector<std::string>& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += ", ";
    out += "\"" + json_escape(items[i]) + "\"";
  }
  return out + "]";
}

std::string compiler_id() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

std::string cxx_standard() {
  std::ostringstream os;
  os << "c++" << (__cplusplus / 100 % 100);
  return os.str();
}

}  // namespace

Provenance collect_provenance() {
  Provenance p;
  p.git_sha = LRS_GIT_SHA;
  p.build_type = LRS_BUILD_TYPE;
  p.compiler = compiler_id();
  p.cxx_standard = cxx_standard();
  p.gf256_kernel = erasure::gf256_kernel().name;
  p.gf256_available = erasure::gf256_available_kernels();
  p.sha256_kernel = crypto::sha256_kernel().name;
  const auto* batch = crypto::sha256_batch_kernel();
  p.sha256_batch_kernel = batch != nullptr ? batch->name : "none";
  p.sha256_available = crypto::sha256_available_kernels();
  return p;
}

std::string provenance_json(
    const std::string& indent,
    const std::vector<std::pair<std::string, std::string>>& extra) {
  const Provenance p = collect_provenance();
  std::ostringstream os;
  const std::string in2 = indent + "  ";
  os << "{\n";
  os << in2 << "\"git_sha\": \"" << json_escape(p.git_sha) << "\",\n";
  os << in2 << "\"build_type\": \"" << json_escape(p.build_type) << "\",\n";
  os << in2 << "\"compiler\": \"" << json_escape(p.compiler) << "\",\n";
  os << in2 << "\"cxx_standard\": \"" << json_escape(p.cxx_standard)
     << "\",\n";
  os << in2 << "\"gf256_kernel\": \"" << json_escape(p.gf256_kernel)
     << "\",\n";
  os << in2 << "\"gf256_available\": " << json_string_array(p.gf256_available)
     << ",\n";
  os << in2 << "\"sha256_kernel\": \"" << json_escape(p.sha256_kernel)
     << "\",\n";
  os << in2 << "\"sha256_batch_kernel\": \""
     << json_escape(p.sha256_batch_kernel) << "\",\n";
  os << in2
     << "\"sha256_available\": " << json_string_array(p.sha256_available);
  for (const auto& [key, value] : extra) {
    os << ",\n" << in2 << "\"" << json_escape(key) << "\": " << value;
  }
  os << "\n" << indent << "}";
  return os.str();
}

}  // namespace lrs::core
