// Run-provenance manifest: everything needed to compare a BENCH_*.json
// artifact across PRs and machines without guessing — the git revision,
// build configuration and the GF(256)/SHA-256 kernels the dispatchers
// actually selected at runtime. Deliberately hostname-free: two runs of
// the same commit on the same microarchitecture produce the same manifest.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace lrs::core {

struct Provenance {
  std::string git_sha;        // short commit hash at configure time
  std::string build_type;     // CMAKE_BUILD_TYPE
  std::string compiler;       // e.g. "g++ 13.2.0" (from __VERSION__)
  std::string cxx_standard;   // e.g. "c++20"
  std::string gf256_kernel;            // active GF(256) kernel name
  std::vector<std::string> gf256_available;
  std::string sha256_kernel;           // active SHA-256 kernel name
  std::string sha256_batch_kernel;     // active batch kernel, "none" if n/a
  std::vector<std::string> sha256_available;
};

/// Queries the kernel dispatchers (forcing selection if it has not run
/// yet) and the baked-in build facts.
Provenance collect_provenance();

/// The manifest as one JSON object, each line prefixed with `indent`.
/// `extra` appends caller-supplied key/value pairs (values emitted
/// verbatim, so pass pre-quoted strings or raw numbers). Typical use:
///
///   out << "  \"provenance\": "
///       << provenance_json("  ", {{"seed_base", "1"}, {"repeats", "3"}});
std::string provenance_json(
    const std::string& indent = "  ",
    const std::vector<std::pair<std::string, std::string>>& extra = {});

}  // namespace lrs::core
