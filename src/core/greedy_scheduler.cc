#include "core/greedy_scheduler.h"

#include "util/check.h"

namespace lrs::core {

GreedyRoundRobinScheduler::GreedyRoundRobinScheduler(
    std::size_t packets_in_page)
    : n_(packets_in_page) {
  LRS_CHECK(n_ >= 1);
}

void GreedyRoundRobinScheduler::on_snack(NodeId node, const BitVec& requested,
                                         std::size_t needed) {
  LRS_CHECK(requested.size() == n_);
  if (needed == 0 || requested.none()) {
    table_.erase(node);
    return;
  }
  auto& entry = table_[node];
  entry.wanted = requested;
  entry.distance = needed;
}

std::size_t GreedyRoundRobinScheduler::popularity(std::uint32_t index) const {
  LRS_CHECK(index < n_);
  std::size_t pop = 0;
  for (const auto& [id, entry] : table_) {
    if (entry.wanted.get(index)) ++pop;
  }
  return pop;
}

std::size_t GreedyRoundRobinScheduler::distance(NodeId node) const {
  auto it = table_.find(node);
  return it == table_.end() ? 0 : it->second.distance;
}

std::optional<std::uint32_t> GreedyRoundRobinScheduler::next_packet() {
  if (table_.empty()) return std::nullopt;

  // Scan cyclically, starting right after the previous transmission (from
  // index 0 for the first pick), keeping the first index of maximum
  // popularity encountered in that order.
  const std::size_t start = sent_any_ ? (last_ + 1) % n_ : 0;
  std::size_t best_index = n_;  // invalid
  std::size_t best_pop = 0;
  for (std::size_t step = 0; step < n_; ++step) {
    const std::size_t j = (start + step) % n_;
    const std::size_t pop = popularity(static_cast<std::uint32_t>(j));
    if (pop > best_pop) {
      best_pop = pop;
      best_index = j;
    }
  }
  if (best_pop == 0) {
    // Entries exist but want nothing we can give; drop them (they will
    // re-request after their own timeout if they still need packets).
    table_.clear();
    return std::nullopt;
  }

  account_transmission(static_cast<std::uint32_t>(best_index));
  sent_any_ = true;
  last_ = best_index;
  return static_cast<std::uint32_t>(best_index);
}

void GreedyRoundRobinScheduler::set_start(std::uint32_t index) {
  sent_any_ = true;
  last_ = (index + n_ - 1) % n_;
}

void GreedyRoundRobinScheduler::on_overheard_data(std::uint32_t index) {
  if (index >= n_) return;
  account_transmission(index);
}

void GreedyRoundRobinScheduler::account_transmission(std::uint32_t index) {
  for (auto it = table_.begin(); it != table_.end();) {
    auto& entry = it->second;
    if (entry.wanted.get(index)) {
      entry.wanted.clear(index);
      if (entry.distance > 0) --entry.distance;
    }
    if (entry.distance == 0 || entry.wanted.none()) {
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t GreedyRoundRobinScheduler::backlog() const {
  // Transmissions still owed under the optimistic no-loss assumption: the
  // greedy sweep sends at most max distance... a cheap upper bound is the
  // largest per-neighbor distance; the true count depends on overlaps.
  std::size_t worst = 0;
  for (const auto& [id, entry] : table_) {
    worst = std::max(worst, entry.distance);
  }
  return worst;
}

std::unique_ptr<proto::TxScheduler> make_greedy_scheduler(
    std::size_t packets_in_page) {
  return std::make_unique<GreedyRoundRobinScheduler>(packets_in_page);
}

}  // namespace lrs::core
