#include "core/lr_seluge.h"

#include "util/check.h"

namespace lrs::core {

Publisher::Publisher(proto::CommonParams params, ByteView key_seed,
                     std::size_t key_height)
    : params_(std::move(params)), signer_(key_seed, key_height) {
  validate_lr_params(params_);
}

std::unique_ptr<proto::SchemeState> Publisher::prepare(const Bytes& image) {
  LRS_CHECK_MSG(!image.empty(), "cannot disseminate an empty image");
  return make_lr_source(params_, image, signer_);
}

std::function<std::unique_ptr<proto::SchemeState>(Version)>
lr_scheme_factory(proto::CommonParams params,
                  crypto::PacketHash root_public_key) {
  return [params, root_public_key](Version v) {
    proto::CommonParams p = params;
    p.version = v;
    return make_lr_receiver(p, root_public_key);
  };
}

Receiver::Receiver(proto::CommonParams params,
                   const crypto::PacketHash& root_public_key)
    : state_(make_lr_receiver(params, root_public_key)) {}

bool Receiver::feed_signature(ByteView frame) {
  return state_->on_signature(frame, metrics_);
}

proto::DataStatus Receiver::feed_data(std::uint32_t page, std::uint32_t index,
                                      ByteView payload) {
  return state_->on_data(page, index, payload, metrics_);
}

}  // namespace lrs::core
