// Minimal deterministic work-sharing primitive shared by the trial runner
// (core/run_trials.cc) and the island executor (core/experiment.cc).
//
// The contract both callers rely on: the task for index i is fixed, only
// the assignment of indices to threads is dynamic, and results are written
// into index-addressed slots — so a parallel run is bit-identical to the
// serial loop over 0..count-1.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace lrs::core {

/// Worker-thread count used when a `jobs` parameter is 0: the LRS_JOBS
/// environment variable if set to a positive integer, else
/// std::thread::hardware_concurrency() (minimum 1).
std::size_t default_jobs();

/// Runs `count` index-addressed tasks on up to `jobs` threads. Work is
/// handed out through an atomic counter, so scheduling is dynamic but the
/// task for index i is fixed; the first exception (by whichever worker
/// hits one) is rethrown on the caller's thread after all workers join.
template <typename Fn>
void parallel_for(std::size_t count, std::size_t jobs, const Fn& fn) {
  if (count == 0) return;
  const std::size_t workers = jobs < count ? jobs : count;
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex err_mu;
  std::exception_ptr err;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!err) err = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) threads.emplace_back(worker);
  worker();
  for (auto& t : threads) t.join();
  if (err) std::rethrow_exception(err);
}

}  // namespace lrs::core
