// Minimal deterministic work-sharing primitive shared by the trial runner
// (core/run_trials.cc) and the island executor (core/experiment.cc).
//
// The contract both callers rely on: the task for index i is fixed, only
// the assignment of indices to threads is dynamic, and results are written
// into index-addressed slots — so a parallel run is bit-identical to the
// serial loop over 0..count-1.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace lrs::core {

/// Worker-thread count used when a `jobs` parameter is 0: the LRS_JOBS
/// environment variable if set to a positive integer, else
/// std::thread::hardware_concurrency() (minimum 1).
std::size_t default_jobs();

/// Runs `count` index-addressed tasks on up to `jobs` threads. Work is
/// handed out through an atomic counter, so scheduling is dynamic but the
/// task for index i is fixed; the first exception (by whichever worker
/// hits one) is rethrown on the caller's thread after all workers join.
template <typename Fn>
void parallel_for(std::size_t count, std::size_t jobs, const Fn& fn) {
  if (count == 0) return;
  const std::size_t workers = jobs < count ? jobs : count;
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex err_mu;
  std::exception_ptr err;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!err) err = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) threads.emplace_back(worker);
  worker();
  for (auto& t : threads) t.join();
  if (err) std::rethrow_exception(err);
}

namespace detail {

/// Fixed per-worker victim visiting order: the other workers permuted by a
/// seeded Fisher-Yates shuffle (SplitMix-style LCG on the worker id). Pure
/// function of (worker, workers) — never of scheduling — so the only
/// nondeterminism work stealing introduces is WHICH thread runs a task,
/// which the index-addressed-slot contract already absorbs.
inline std::vector<std::size_t> steal_victim_order(std::size_t worker,
                                                   std::size_t workers) {
  std::vector<std::size_t> order;
  order.reserve(workers - 1);
  for (std::size_t v = 0; v < workers; ++v) {
    if (v != worker) order.push_back(v);
  }
  std::uint64_t s = 0x9e3779b97f4a7c15ULL * (worker + 1);
  for (std::size_t i = order.size(); i > 1; --i) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    std::swap(order[i - 1], order[(s >> 33) % i]);
  }
  return order;
}

}  // namespace detail

/// Work-stealing variant of parallel_for for heterogeneous task sizes (a
/// fleet of network cells whose simulations differ by orders of magnitude,
/// a trial sweep mixing cheap and expensive configs). Same determinism
/// contract: the task for index i is fixed and results go into
/// index-addressed slots, so serial and any-jobs runs stay byte-identical.
///
/// Scheduling: indices are dealt out as contiguous blocks, one deque per
/// worker. Owners consume their block front-to-back (ascending, like the
/// serial loop); an idle worker steals one task from the BACK of a victim's
/// deque (LIFO steal — the work its owner would reach last), visiting
/// victims in a seeded per-worker permutation so thieves spread instead of
/// convoying on worker 0. Exceptions behave like parallel_for: the first
/// one is rethrown on the caller's thread after all workers finish; the
/// failed worker's leftover tasks are stolen and still run.
///
/// Returns the number of successful steals — schedule-dependent, so callers
/// must report it as timing-only (a stats Gauge, never a Counter).
template <typename Fn>
std::size_t parallel_for_ws(std::size_t count, std::size_t jobs,
                            const Fn& fn) {
  if (count == 0) return 0;
  const std::size_t workers = jobs < count ? jobs : count;
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return 0;
  }

  // Mutex-per-deque keeps this dependency-free and obviously correct; the
  // tasks this runner exists for are whole simulations (milliseconds to
  // minutes), so lock traffic is noise next to the work.
  struct Deque {
    std::mutex mu;
    std::deque<std::size_t> q;
  };
  std::vector<Deque> deques(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = w * count / workers;
    const std::size_t hi = (w + 1) * count / workers;
    for (std::size_t i = lo; i < hi; ++i) deques[w].q.push_back(i);
  }

  std::atomic<std::size_t> remaining{count};
  std::atomic<std::size_t> steals{0};
  std::mutex err_mu;
  std::exception_ptr err;

  auto worker = [&](std::size_t w) {
    const std::vector<std::size_t> victims =
        detail::steal_victim_order(w, workers);
    for (;;) {
      std::optional<std::size_t> task;
      {
        std::lock_guard<std::mutex> lock(deques[w].mu);
        if (!deques[w].q.empty()) {
          task = deques[w].q.front();
          deques[w].q.pop_front();
        }
      }
      if (!task) {
        for (const std::size_t v : victims) {
          std::lock_guard<std::mutex> lock(deques[v].mu);
          if (!deques[v].q.empty()) {
            task = deques[v].q.back();
            deques[v].q.pop_back();
            steals.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
      }
      if (!task) {
        // Every queue was empty when visited. Tasks may still be running
        // (their completion decrements `remaining`), but none can reappear
        // in a queue, so spin-yield until the count drains.
        if (remaining.load(std::memory_order_acquire) == 0) return;
        std::this_thread::yield();
        continue;
      }
      try {
        fn(*task);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(err_mu);
          if (!err) err = std::current_exception();
        }
        remaining.fetch_sub(1, std::memory_order_release);
        return;  // this worker's leftover deque gets stolen by the others
      }
      remaining.fetch_sub(1, std::memory_order_release);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) {
    threads.emplace_back([&worker, t] { worker(t); });
  }
  worker(0);
  for (auto& t : threads) t.join();
  if (err) std::rethrow_exception(err);
  return steals.load(std::memory_order_relaxed);
}

}  // namespace lrs::core
