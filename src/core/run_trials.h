// Deterministic parallel trial runner.
//
// Every figure/table in the paper averages repeated simulation runs with
// derived seeds. The runs are embarrassingly parallel — each trial owns its
// simulator, RNG streams and scheme state — so this module fans them out
// over a small work-stealing pool (core/parallel.h, parallel_for_ws) while
// keeping results (and therefore every aggregate) bit-identical to the
// historical serial loop: trial i always uses seed config.seed + i, results
// are collected by index, and the aggregation walks them in index order
// with the same arithmetic. Only the index -> thread assignment is
// schedule-dependent; steal counts are reported as the timing-only gauge
// "core.parallel.steals".
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/experiment.h"
#include "core/parallel.h"  // parallel_for + default_jobs

namespace lrs::core {

/// Runs `repeats` independent trials of `config` with derived seeds
/// (config.seed + i) on up to `jobs` threads (0 = default_jobs()).
/// Element i of the result is trial i's outcome regardless of how the
/// trials were scheduled.
std::vector<ExperimentResult> run_trials(const ExperimentConfig& config,
                                         std::size_t repeats,
                                         std::size_t jobs = 0);

/// Folds per-trial results into one averaged ExperimentResult using the
/// exact arithmetic (and index order) of the original serial
/// run_experiment_avg loop, so serial and parallel runs agree bitwise.
ExperimentResult aggregate_trials(std::span<const ExperimentResult> trials);

/// Grid runner: out[i] averages `repeats` trials of configs[i]. All
/// (config, trial) pairs share one pool, so a sweep with cheap and
/// expensive points still keeps every thread busy.
std::vector<ExperimentResult> run_experiments_avg(
    std::span<const ExperimentConfig> configs, std::size_t repeats,
    std::size_t jobs = 0);

}  // namespace lrs::core
