// LR-Seluge public API.
//
// Two ways to use the library:
//
//  1. Standalone (no simulator): Publisher preprocesses and signs a code
//     image; Receiver authenticates packets and incrementally decodes. The
//     caller moves packets between them over any transport. See
//     examples/quickstart.cpp.
//
//  2. Simulated network: build proto::DissemNode instances around
//     make_lr_source / make_lr_receiver scheme states and attach them to a
//     sim::Simulator. See examples/multihop_grid.cpp and bench/.
//
// All parameters (erasure-code instances, packet sizes, keys) come from
// proto::CommonParams — the material the network owner preloads on nodes
// before deployment (paper §IV-B).
#pragma once

#include <memory>
#include <optional>

#include "core/lr_image.h"
#include "crypto/wots.h"
#include "proto/engine.h"
#include "proto/params.h"

namespace lrs::core {

/// Base-station side: owns the signing key material and turns raw images
/// into dissemination-ready state.
class Publisher {
 public:
  /// `key_seed` seeds the hash-based multi-key signer; `key_height` fixes
  /// the number of images one preloaded root can cover (2^height).
  Publisher(proto::CommonParams params, ByteView key_seed,
            std::size_t key_height = 4);

  /// Preloaded on every sensor node: verifies all future image signatures.
  const crypto::PacketHash& root_public_key() const {
    return signer_.root_public_key();
  }

  const proto::CommonParams& params() const { return params_; }

  /// Preprocesses and signs an image (consumes one one-time key). The
  /// returned scheme state holds every packet of every page plus the
  /// signature frame, ready to serve.
  std::unique_ptr<proto::SchemeState> prepare(const Bytes& image);

  /// Signatures still available.
  std::size_t signatures_left() const {
    return signer_.capacity() - signer_.signatures_issued();
  }

  crypto::MultiKeySigner& signer() { return signer_; }

 private:
  proto::CommonParams params_;
  crypto::MultiKeySigner signer_;
};

/// Receiver-state factory for multi-image deployments: plugged into
/// proto::EngineConfig::scheme_factory, it lets a node adopt any newer
/// image version whose signature verifies under the preloaded root.
std::function<std::unique_ptr<proto::SchemeState>(Version)>
lr_scheme_factory(proto::CommonParams params,
                  crypto::PacketHash root_public_key);

/// Node-side convenience wrapper around the LR-Seluge scheme state for
/// transport-agnostic use.
class Receiver {
 public:
  Receiver(proto::CommonParams params,
           const crypto::PacketHash& root_public_key);

  /// Feed the signature frame; true once the root verified.
  bool feed_signature(ByteView frame);

  /// Feed one data packet (any order within the current page). Returns the
  /// authentication/decode outcome.
  proto::DataStatus feed_data(std::uint32_t page, std::uint32_t index,
                              ByteView payload);

  bool bootstrapped() const { return state_->bootstrapped(); }
  std::uint32_t pages_complete() const { return state_->pages_complete(); }
  std::uint32_t total_pages() const { return state_->num_pages(); }
  bool complete() const { return state_->image_complete(); }
  /// The recovered image (only when complete()).
  Bytes image() const { return state_->assemble_image(); }

  /// Which packets of the current page to request (SNACK bitmap).
  BitVec request_bits() const {
    return state_->request_bits(state_->pages_complete());
  }

  /// Verification-work counters accumulated by this receiver.
  const sim::NodeMetrics& metrics() const { return metrics_; }

  /// Access to the underlying scheme state (serving, advanced use).
  proto::SchemeState& state() { return *state_; }

 private:
  std::unique_ptr<proto::SchemeState> state_;
  sim::NodeMetrics metrics_;
};

}  // namespace lrs::core
