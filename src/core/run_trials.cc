#include "core/run_trials.h"

#include <cstdlib>
#include <thread>

#include "core/parallel.h"
#include "sim/stats/stats.h"
#include "util/check.h"

namespace lrs::core {

std::size_t default_jobs() {
  if (const char* env = std::getenv("LRS_JOBS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) {
      return static_cast<std::size_t>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

std::vector<ExperimentResult> run_trials(const ExperimentConfig& config,
                                         std::size_t repeats,
                                         std::size_t jobs) {
  LRS_CHECK(repeats >= 1);
  if (jobs == 0) jobs = default_jobs();

  std::vector<ExperimentResult> results(repeats);
  const std::size_t steals = parallel_for_ws(repeats, jobs, [&](std::size_t i) {
    ExperimentConfig c = config;
    c.seed = config.seed + i;
    c.trace = sim::trace_for_trial(config.trace, 0, i);
    results[i] = run_experiment(c);
  });
  // Steal counts depend on worker timing: a Gauge (timing section), never a
  // Counter, or the deterministic export would vary with LRS_JOBS.
  static stats::Gauge& steal_gauge =
      stats::Registry::instance().gauge("core.parallel.steals");
  steal_gauge.add(static_cast<std::int64_t>(steals));
  return results;
}

ExperimentResult aggregate_trials(std::span<const ExperimentResult> trials) {
  static stats::Timer& timer =
      stats::Registry::instance().timer("core.aggregate", /*top_level=*/true);
  stats::TimerScope scope(timer);
  const std::size_t repeats = trials.size();
  LRS_CHECK(repeats >= 1);
  ExperimentResult avg;
  avg.max_island_events = 0;
  double data = 0, snack = 0, adv = 0, sig = 0, bytes = 0, latency = 0;
  double rbytes = 0;
  for (std::size_t i = 0; i < repeats; ++i) {
    const ExperimentResult& r = trials[i];
    avg.receivers = r.receivers;
    avg.completed += r.completed;
    avg.all_complete = (i == 0 ? true : avg.all_complete) && r.all_complete;
    avg.images_match = (i == 0 ? true : avg.images_match) && r.images_match;
    data += static_cast<double>(r.data_packets);
    avg.page0_data_packets += r.page0_data_packets;
    snack += static_cast<double>(r.snack_packets);
    adv += static_cast<double>(r.adv_packets);
    sig += static_cast<double>(r.sig_packets);
    bytes += static_cast<double>(r.total_bytes);
    rbytes += static_cast<double>(r.received_bytes);
    latency += r.latency_s;
    avg.collisions += r.collisions;
    avg.events_executed += r.events_executed;
    // Sum alongside events_executed so max_island_events * islands /
    // events_executed stays the (trial-weighted) max/mean imbalance ratio.
    avg.islands = r.islands;
    avg.max_island_events += r.max_island_events;
    avg.tx_energy_mj += r.tx_energy_mj / static_cast<double>(repeats);
    avg.rx_energy_mj += r.rx_energy_mj / static_cast<double>(repeats);
    avg.listen_energy_mj += r.listen_energy_mj / static_cast<double>(repeats);
    avg.hash_verifications += r.hash_verifications;
    avg.signature_verifications += r.signature_verifications;
    avg.auth_failures += r.auth_failures;
    avg.tampered_frames += r.tampered_frames;
    avg.fault_drops += r.fault_drops;
    avg.reboots += r.reboots;
    avg.invariant_checks += r.invariant_checks;
    avg.invariant_violations += r.invariant_violations;
    if (avg.first_violation.empty() && !r.first_violation.empty()) {
      avg.first_violation = r.first_violation;
    }
  }
  const double inv = 1.0 / static_cast<double>(repeats);
  avg.completed /= repeats;
  avg.data_packets = static_cast<std::uint64_t>(data * inv + 0.5);
  avg.page0_data_packets = static_cast<std::uint64_t>(
      static_cast<double>(avg.page0_data_packets) * inv + 0.5);
  avg.snack_packets = static_cast<std::uint64_t>(snack * inv + 0.5);
  avg.adv_packets = static_cast<std::uint64_t>(adv * inv + 0.5);
  avg.sig_packets = static_cast<std::uint64_t>(sig * inv + 0.5);
  avg.total_bytes = static_cast<std::uint64_t>(bytes * inv + 0.5);
  avg.received_bytes = static_cast<std::uint64_t>(rbytes * inv + 0.5);
  avg.latency_s = latency * inv;
  return avg;
}

std::vector<ExperimentResult> run_experiments_avg(
    std::span<const ExperimentConfig> configs, std::size_t repeats,
    std::size_t jobs) {
  LRS_CHECK(repeats >= 1);
  if (jobs == 0) jobs = default_jobs();

  const std::size_t total = configs.size() * repeats;
  std::vector<ExperimentResult> trials(total);
  // Work-stealing pool: sweeps mix cheap and expensive configs, and the
  // block deal-out puts each config's trials on one worker — stealing keeps
  // the tail busy without touching the trial -> seed mapping.
  const std::size_t steals = parallel_for_ws(total, jobs, [&](std::size_t t) {
    const std::size_t ci = t / repeats;
    const std::size_t ri = t % repeats;
    ExperimentConfig c = configs[ci];
    c.seed = configs[ci].seed + ri;
    c.trace = sim::trace_for_trial(configs[ci].trace, ci, ri);
    trials[t] = run_experiment(c);
  });
  static stats::Gauge& steal_gauge =
      stats::Registry::instance().gauge("core.parallel.steals");
  steal_gauge.add(static_cast<std::int64_t>(steals));

  std::vector<ExperimentResult> out(configs.size());
  for (std::size_t ci = 0; ci < configs.size(); ++ci) {
    out[ci] = aggregate_trials(
        std::span<const ExperimentResult>(trials).subspan(ci * repeats,
                                                          repeats));
  }
  return out;
}

}  // namespace lrs::core
