// One-call experiment runner shared by the end-to-end tests and every
// benchmark harness: builds a network of DissemNodes running a chosen
// scheme, disseminates a pseudorandom image, and reports the paper's five
// metrics (data / SNACK / advertisement packets, total bytes, latency)
// plus integrity and verification-work counters.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "proto/params.h"
#include "sim/channel.h"
#include "sim/faults.h"
#include "sim/scenario/generators.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace lrs::core {

enum class Scheme { kDeluge, kRatelessDeluge, kSluice, kSeluge, kLrSeluge };

const char* scheme_name(Scheme s);
/// Inverse of scheme_name ("lr-seluge" -> kLrSeluge); nullopt on unknown.
std::optional<Scheme> scheme_from_name(const std::string& name);

struct ExperimentConfig {
  Scheme scheme = Scheme::kLrSeluge;
  proto::CommonParams params{};
  proto::EngineTiming timing{};
  bool dor_mitigation = true;

  std::size_t image_size = 20 * 1024;  // the paper's 20 KB image
  std::uint64_t seed = 1;

  // Topology: a one-hop star of `receivers`, a rows x cols grid, or —
  // kSpec — any generator the scenario subsystem supports (random
  // geometric, clustered, corridor, ring, plus star/grid with per-link
  // PRR jitter); see sim/scenario/generators.h.
  enum class Topo { kStar, kGrid, kSpec } topo = Topo::kStar;
  std::size_t receivers = 20;
  std::size_t grid_rows = 15;
  std::size_t grid_cols = 15;
  double grid_spacing = 10.0;
  sim::LinkModel link{};
  sim::TopologySpec topo_spec{};  // used when topo == Topo::kSpec

  // Channel: uniform app-layer loss p (paper §VI-A), optionally replaced
  // by Gilbert-Elliott burst noise (multi-hop tables) or, when non-empty,
  // a heterogeneous per-node loss vector (p[i] applies to receptions at
  // node i; length must cover the node count).
  double loss_p = 0.0;
  bool gilbert_elliott = false;
  sim::GilbertElliottParams ge{};
  std::vector<double> per_node_loss;

  sim::RadioParams radio{};
  sim::SimTime time_limit = 4LL * 3600 * sim::kSecond;

  // Fault injection (corruption, truncation, duplication, reorder,
  // crash/reboot) layered behind the loss model; empty plan = none.
  sim::FaultPlan faults{};
  // Attach the invariant observer (sim/invariants.h); the checked subset
  // follows the scheme's guarantees. Off by default: probing every
  // delivery costs time and the benign harnesses don't need it.
  bool check_invariants = false;

  // Structured event tracing (sim/trace.h). Disabled (no paths set) by
  // default; when enabled a TraceRecorder rides the observer chain and the
  // requested exports are written after the run.
  sim::TraceExportConfig trace{};

  // Island-sharded execution (sim/partition.h): partition the topology
  // into radio-connected components, give each its own base station (the
  // island's smallest id) and simulate them independently on a worker
  // pool. Deterministic — serial and parallel runs are byte-identical, and
  // a connected topology (one island) takes the classic single-simulator
  // path unchanged. Requires no fault plan and no tracing.
  bool islands = false;
  std::size_t island_jobs = 0;  // 0 = default_jobs() (LRS_JOBS)
};

struct ExperimentResult {
  bool all_complete = false;
  std::size_t completed = 0;
  std::size_t receivers = 0;

  std::uint64_t data_packets = 0;
  std::uint64_t page0_data_packets = 0;
  std::uint64_t snack_packets = 0;
  std::uint64_t adv_packets = 0;
  std::uint64_t sig_packets = 0;
  std::uint64_t total_bytes = 0;
  /// Bytes successfully delivered to (and accepted by the radio of) any
  /// node, summed over all nodes — the broadcast-fanout counterpart of
  /// total_bytes. received_bytes / total_bytes approximates the mean
  /// neighborhood size actually reached per transmission.
  std::uint64_t received_bytes = 0;
  double latency_s = 0.0;

  std::uint64_t collisions = 0;
  /// Discrete events the simulator core executed during the run — the
  /// workload denominator is wall-clock, so events/sec is the simulator
  /// throughput figure (bench_scale). Deterministic for a (config, seed).
  std::uint64_t events_executed = 0;
  /// Island-sharded load attribution. `islands` is the number of radio
  /// islands simulated (1 on the classic single-simulator path) and
  /// `max_island_events` the busiest island's events_executed, so
  /// max_island_events * islands / events_executed is the load-imbalance
  /// ratio (max/mean, 1.0 when perfectly balanced). Both are deterministic
  /// for a (config, seed); trial aggregation sums them alongside
  /// events_executed so the ratio stays meaningful after averaging.
  std::uint64_t islands = 1;
  std::uint64_t max_island_events = 0;
  std::uint64_t hash_verifications = 0;
  std::uint64_t signature_verifications = 0;
  std::uint64_t auth_failures = 0;

  /// Radio energy across all nodes, millijoules: time on the air
  /// transmitting, time locked onto incoming frames, and an always-on
  /// idle-listening upper bound (node-count x latency x rx power) — the
  /// quantity a duty-cycling MAC would shrink but whose ORDER tracks
  /// dissemination latency.
  double tx_energy_mj = 0.0;
  double rx_energy_mj = 0.0;
  double listen_energy_mj = 0.0;

  /// Every completed receiver reassembled exactly the published image.
  bool images_match = false;

  /// Fault-layer accounting (zero when no fault plan is configured).
  std::uint64_t tampered_frames = 0;
  std::uint64_t fault_drops = 0;
  std::uint64_t reboots = 0;

  /// Invariant observer outcome (zero/empty unless check_invariants).
  std::uint64_t invariant_checks = 0;
  std::uint64_t invariant_violations = 0;
  std::string first_violation;  // human-readable; empty when clean
};

/// Deterministic pseudorandom image of `size` bytes.
Bytes make_test_image(std::size_t size, std::uint64_t seed);

ExperimentResult run_experiment(const ExperimentConfig& config);

/// Averages `repeats` runs with derived seeds (seed, seed+1, ...).
ExperimentResult run_experiment_avg(const ExperimentConfig& config,
                                    std::size_t repeats);

}  // namespace lrs::core
