// Shared configuration for all three dissemination schemes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "erasure/code.h"
#include "sim/time.h"
#include "sim/trickle.h"
#include "util/types.h"

namespace lrs::proto {

class SchemeState;   // proto/scheme.h
struct RxFanoutMemo; // proto/engine.h

/// Geometry and crypto parameters preloaded on every node before deployment
/// (paper §IV-B): the erasure-code instances, packet sizes and keys. Only
/// the image content, its hash chain and the signed root travel over the
/// air.
struct CommonParams {
  Version version = 1;

  /// Data payload bytes per packet (excluding protocol headers). Every
  /// encoded block is exactly this long.
  std::size_t payload_size = 64;

  /// Content-page code: k original blocks -> n encoded packets.
  std::size_t k = 32;
  std::size_t n = 48;

  /// Hash-page code: k0 blocks -> n0 = 2^d encoded packets (Merkle leaves).
  std::size_t k0 = 8;
  std::size_t n0 = 16;

  /// Nominal decode overhead for probabilistic codes (k' = k + delta).
  std::size_t delta = 0;
  erasure::CodecKind codec = erasure::CodecKind::kReedSolomon;
  std::uint64_t code_seed = 0x5e1f6e;

  /// Weak-authenticator difficulty on the signature packet.
  std::uint8_t puzzle_strength = 12;

  /// Ablation switch: serve LR-Seluge pages with the greedy round-robin
  /// tracking-table scheduler (the paper's design, default) or fall back
  /// to Deluge's union scheduler to quantify the scheduler's contribution.
  bool lr_greedy_scheduler = true;

  /// Cluster key authenticating advertisement/SNACK packets.
  Bytes cluster_key{0x42, 0x13, 0x37, 0x99};

  /// §IV-E future-work extension: authenticate SNACKs with LEAP-style
  /// per-source keys instead of the shared cluster key. The MAC then
  /// *identifies* the sender, so the denial-of-receipt budget cannot be
  /// evaded by rotating claimed node IDs — with a single cluster key any
  /// compromised node can speak as anyone.
  bool leap_snack_auth = false;
  /// Master secret the per-source keys derive from (models LEAP's
  /// pairwise establishment; an attacker holds only its own derived key).
  Bytes leap_master{0x1e, 0xa9, 0x5e, 0xc7};
};

/// Engine pacing knobs. Defaults follow Deluge-style constants scaled so a
/// 20 KB dissemination finishes in minutes of simulated time.
struct EngineTiming {
  sim::TrickleParams trickle{};  // tau_low=1s, tau_high=60s, kappa=2

  /// Random delay before sending a SNACK after deciding to request.
  sim::SimTime snack_delay_max = 50 * sim::kMillisecond;
  /// Quiet period after the last useful data packet before re-requesting
  /// the remainder of the page (Deluge re-requests when the stream ends).
  sim::SimTime stream_gap = 40 * sim::kMillisecond;
  sim::SimTime stream_gap_jitter = 40 * sim::kMillisecond;
  /// Retry period when nothing is heard at all (lost SNACK, busy server).
  sim::SimTime snack_retry = 300 * sim::kMillisecond;
  /// Extra random jitter on the retry.
  sim::SimTime snack_retry_jitter = 150 * sim::kMillisecond;
  /// Hold-back after overhearing traffic for an earlier page: neighbors
  /// are behind, let them catch up so bursts stay shared (lockstep).
  sim::SimTime lockstep_delay = 350 * sim::kMillisecond;
  /// SNACK retries against one server before trying another.
  int max_snack_retries = 8;
  /// Hard ceiling on how long suppression/lockstep deferrals may postpone
  /// the next SNACK after the previous one. Without it, an adversary
  /// replaying old-page or duplicate data packets could stall receivers
  /// indefinitely (each overheard packet pushing the request out again).
  sim::SimTime max_snack_deferral = 4 * sim::kSecond;

  /// Pacing gap between successive served data packets (lets requests in).
  sim::SimTime data_gap = 3 * sim::kMillisecond;
  /// How long a sender pools SNACKs before starting to serve: concurrent
  /// requesters then share one burst instead of spawning mini-bursts.
  sim::SimTime serve_aggregation = 45 * sim::kMillisecond;

  /// Base-station delay before the initial signature broadcast.
  sim::SimTime signature_boot_delay = 50 * sim::kMillisecond;
  /// Minimum spacing between signature rebroadcasts by one node.
  sim::SimTime signature_rebroadcast_min_gap = 1 * sim::kSecond;
};

struct EngineConfig {
  EngineTiming timing{};
  bool is_base_station = false;

  /// LEAP-style per-source SNACK authentication (CommonParams mirrors).
  bool leap_snack_auth = false;
  Bytes leap_master;

  /// Multi-image support: when set, a node that learns of a NEWER image
  /// version (signature packet or advertisement) builds a fresh receiver
  /// state for it and abandons the old image once the new signature
  /// verifies. Versions only move forward — downgrade replays are ignored.
  std::function<std::unique_ptr<SchemeState>(Version)> scheme_factory;

  /// Denial-of-receipt mitigation (paper §IV-E): per neighbor and page,
  /// stop honoring SNACKs after `dor_limit_factor * k'` requested packets.
  bool dor_mitigation = true;
  std::size_t dor_limit_factor = 8;

  /// Shared receive-side verification memo, one per simulator (nullable,
  /// not owned; wired by the experiment harness). Lets the nodes of one
  /// single-threaded simulation verify each broadcast frame once per
  /// transmission instead of once per receiver. See RxFanoutMemo.
  RxFanoutMemo* rx_memo = nullptr;
};

}  // namespace lrs::proto
