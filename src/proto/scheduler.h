// TX-state packet scheduling.
//
// When a node enters the TX state it must decide which packets of the
// requested page to broadcast, and in what order, to satisfy every
// requester with as few transmissions as possible.
//
//  * UnionScheduler — Deluge/Seluge behavior: transmit the union of all
//    requested bit-vectors, cyclically by index. Every requested packet is
//    sent because every receiver needs exactly the packets it asked for.
//  * GreedyRoundRobinScheduler (src/core) — LR-Seluge's contribution
//    (paper §IV-D.3): a tracking table of per-neighbor bit-vectors and
//    distances; transmit the most popular packet, then sweep cyclically
//    right, stopping each neighbor's service as soon as its distance
//    (remaining packets needed to decode) hits zero.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "util/bitvec.h"
#include "util/types.h"

namespace lrs::proto {

class TxScheduler {
 public:
  virtual ~TxScheduler() = default;

  /// Merges a SNACK from `node`: `requested` marks desired packet indices,
  /// `needed` is how many more packets that node requires to finish the
  /// page (its "distance"; ignored by schedulers that must send the full
  /// request).
  virtual void on_snack(NodeId node, const BitVec& requested,
                        std::size_t needed) = 0;

  /// Picks the next packet index to broadcast and updates internal state
  /// under the optimistic assumption the broadcast is received. nullopt
  /// when there is nothing (left) to send.
  virtual std::optional<std::uint32_t> next_packet() = 0;

  /// A packet for this page was overheard from another server: treat it as
  /// sent (Deluge-style data suppression).
  virtual void on_overheard_data(std::uint32_t index) = 0;

  /// Sets where the cyclic sweep starts. Serving nodes persist the rotation
  /// position across TX sessions so successive bursts for the same page
  /// cover DIFFERENT packets — for an erasure-coded page every fresh index
  /// is innovative for every listener.
  virtual void set_start(std::uint32_t index) = 0;

  virtual bool idle() const = 0;

  /// Packets this scheduler would still transmit (diagnostics).
  virtual std::size_t backlog() const = 0;
};

/// Deluge/Seluge: union of requests, served round-robin by index.
std::unique_ptr<TxScheduler> make_union_scheduler(std::size_t packets_in_page);

}  // namespace lrs::proto
