// The scheme abstraction: everything protocol-specific that the shared
// dissemination engine delegates.
//
// One SchemeState instance lives inside each node. It owns the node's view
// of the code image — complete on the base station, incrementally filled on
// receivers — and implements packet authentication, page decoding, request
// construction and packet (re)generation for serving. The engine handles
// states, timers, Trickle, SNACK suppression and TX scheduling policy.
#pragma once

#include <memory>
#include <optional>

#include "crypto/hash.h"
#include "proto/scheduler.h"
#include "sim/metrics.h"
#include "util/bitvec.h"
#include "util/types.h"

namespace lrs::proto {

/// Outcome of feeding a data packet to the scheme.
enum class DataStatus {
  kRejected,       // failed authentication (or malformed) — hostile
  kStale,          // wrong page / duplicate — harmless, dropped
  kStored,         // authenticated and buffered
  kPageComplete,   // this packet completed (decoded) the current page
  kImageComplete,  // this packet completed the whole image
};

/// Cached digest of one data packet's hash preimage, shared across the
/// receivers of a single broadcast delivery (see RxFanoutMemo in engine.h).
/// The engine resets `valid` whenever the delivery serial changes; schemes
/// fill it the first time they hash the packet and reuse it afterwards.
/// Verification *decisions* and hash_verifications accounting stay
/// per-receiver — only the recomputation of an identical digest is elided.
struct RxDigestMemo {
  bool valid = false;
  crypto::PacketHash digest{};
};

class SchemeState {
 public:
  virtual ~SchemeState() = default;

  // --- identity & geometry -------------------------------------------------
  virtual Version version() const = 0;
  /// Deep copy of a COMPLETE (serving-ready) state, sharing the expensive
  /// immutable preprocessing — hash chain, Merkle tree, signature frame,
  /// cached codecs — instead of recomputing and re-signing per copy. The
  /// fleet engine uses this to stamp one prepared image onto thousands of
  /// concurrent cells' base stations. Returns nullptr when the state is not
  /// complete here (nothing worth cloning) or the scheme does not support
  /// it (the default).
  virtual std::unique_ptr<SchemeState> clone_source() const {
    return nullptr;
  }
  /// Total transfer pages (hash page included where the scheme has one).
  virtual std::uint32_t num_pages() const = 0;
  /// Number of distinct packets a page is served as (n, n0 or k).
  virtual std::size_t packets_in_page(std::uint32_t page) const = 0;
  /// Packets sufficient to complete a page (k' / k0' / k).
  virtual std::size_t decode_threshold(std::uint32_t page) const = 0;

  // --- receiver ------------------------------------------------------------
  /// Contiguous count of complete pages starting at page 0.
  virtual std::uint32_t pages_complete() const = 0;
  virtual bool image_complete() const = 0;
  /// Recovered image bytes (only once complete).
  virtual Bytes assemble_image() const = 0;

  /// Which packet indices of `page` to set in a SNACK (the ones not yet
  /// received/stored).
  virtual BitVec request_bits(std::uint32_t page) const = 0;

  /// Packets currently buffered for the in-progress (not yet complete)
  /// page — the volatile RAM a crash would lose. Zero once the image is
  /// complete. Invariant checkers use this to verify nothing is buffered
  /// before authentication succeeds.
  virtual std::size_t buffered_packets() const { return 0; }

  /// Crash/reboot: drop the volatile in-progress page buffer, keep what a
  /// real node persists to flash (completed pages, verified bootstrap
  /// metadata). Default: nothing volatile to lose.
  virtual void on_reboot() {}

  /// Authenticates and stores a received data packet. `m` is charged for
  /// verification work. Only packets of page pages_complete() make
  /// progress; others are kStale.
  virtual DataStatus on_data(std::uint32_t page, std::uint32_t index,
                             ByteView payload, sim::NodeMetrics& m) = 0;

  /// Memo-aware overload: `digest` (nullable) caches the packet-content
  /// digest across the receivers of one broadcast delivery. Schemes whose
  /// authentication is a per-packet content hash override this to reuse
  /// the digest; the default ignores the memo.
  virtual DataStatus on_data(std::uint32_t page, std::uint32_t index,
                             ByteView payload, sim::NodeMetrics& m,
                             RxDigestMemo* digest) {
    (void)digest;
    return on_data(page, index, payload, m);
  }

  /// Checks whether a packet of an ALREADY-COMPLETE page is authentic
  /// (one hash against the stored hash chain). The engine uses this to
  /// distinguish genuine straggler service (worth holding our own request
  /// back for, to keep the neighborhood in lockstep) from forged traffic,
  /// which must never delay us. Returns false for pages not yet complete.
  virtual bool verify_stored_packet(std::uint32_t page, std::uint32_t index,
                                    ByteView payload,
                                    sim::NodeMetrics& m) const = 0;

  /// Memo-aware overload of verify_stored_packet (see on_data above).
  virtual bool verify_stored_packet(std::uint32_t page, std::uint32_t index,
                                    ByteView payload, sim::NodeMetrics& m,
                                    RxDigestMemo* digest) const {
    (void)digest;
    return verify_stored_packet(page, index, payload, m);
  }

  // --- bootstrap (signature packet) ----------------------------------------
  /// Whether data packets are useless until a signature packet verified.
  virtual bool needs_signature() const = 0;
  /// Root known (vacuously true for schemes without signatures).
  virtual bool bootstrapped() const = 0;
  /// Processes a received signature frame. Returns true when it verified
  /// and the node became bootstrapped.
  virtual bool on_signature(ByteView frame, sim::NodeMetrics& m) = 0;
  /// Serialized signature frame for (re)broadcast; nullopt if the scheme
  /// has none or this node is not bootstrapped with a stored copy.
  virtual std::optional<Bytes> signature_frame() const = 0;

  // --- sender --------------------------------------------------------------
  /// Payload of packet (page, index); nullopt unless the page is complete
  /// here. LR-Seluge re-encodes the decoded page on demand.
  virtual std::optional<Bytes> packet_payload(std::uint32_t page,
                                              std::uint32_t index) = 0;

  /// TX scheduling policy for serving a page of this scheme.
  virtual std::unique_ptr<TxScheduler> make_scheduler(
      std::uint32_t page) const = 0;
};

}  // namespace lrs::proto
