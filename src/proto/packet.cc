#include "proto/packet.h"

#include <algorithm>

#include "util/buffer.h"
#include "util/check.h"

namespace lrs::proto {

namespace {

void append_mac(Bytes& frame, ByteView cluster_key) {
  if (cluster_key.empty()) return;
  const crypto::ControlMac mac = crypto::control_mac(cluster_key, view(frame));
  frame.insert(frame.end(), mac.begin(), mac.end());
}

void append_mac(Bytes& frame, const crypto::HmacKey& key) {
  const crypto::ControlMac mac = crypto::control_mac(key, view(frame));
  frame.insert(frame.end(), mac.begin(), mac.end());
}

/// Splits off and checks the trailing MAC; returns the covered prefix, or
/// nullopt on failure. When the key is empty the whole frame is returned.
std::optional<ByteView> strip_mac(ByteView frame, ByteView cluster_key) {
  if (cluster_key.empty()) return frame;
  if (frame.size() < crypto::kControlMacSize) return std::nullopt;
  const std::size_t body_len = frame.size() - crypto::kControlMacSize;
  crypto::ControlMac mac;
  std::copy_n(frame.begin() + body_len, crypto::kControlMacSize, mac.begin());
  const ByteView body = frame.subspan(0, body_len);
  if (!crypto::verify_control_mac(cluster_key, body, mac)) return std::nullopt;
  return body;
}

std::optional<ByteView> strip_mac(ByteView frame, const crypto::HmacKey& key) {
  if (frame.size() < crypto::kControlMacSize) return std::nullopt;
  const std::size_t body_len = frame.size() - crypto::kControlMacSize;
  crypto::ControlMac mac;
  std::copy_n(frame.begin() + body_len, crypto::kControlMacSize, mac.begin());
  const ByteView body = frame.subspan(0, body_len);
  if (!crypto::verify_control_mac(key, body, mac)) return std::nullopt;
  return body;
}

}  // namespace

std::optional<PacketType> peek_type(ByteView frame) {
  if (frame.empty()) return std::nullopt;
  switch (frame[0]) {
    case 1: return PacketType::kAdvertisement;
    case 2: return PacketType::kSnack;
    case 3: return PacketType::kData;
    case 4: return PacketType::kSignature;
    default: return std::nullopt;
  }
}

namespace {

Bytes adv_body(const Advertisement& a) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(PacketType::kAdvertisement));
  w.u32(a.version);
  w.u32(a.sender);
  w.u32(a.pages_complete);
  w.u8(a.bootstrapped ? 1 : 0);
  return std::move(w).take();
}

std::optional<Advertisement> parse_adv_body(ByteView body) {
  Reader r(body);
  Advertisement a;
  auto type = r.try_u8();
  if (!type || *type != static_cast<std::uint8_t>(PacketType::kAdvertisement))
    return std::nullopt;
  auto ver = r.try_u32();
  auto sender = r.try_u32();
  auto pages = r.try_u32();
  auto boot = r.try_u8();
  if (!ver || !sender || !pages || !boot || !r.at_end()) return std::nullopt;
  a.version = *ver;
  a.sender = *sender;
  a.pages_complete = *pages;
  a.bootstrapped = *boot != 0;
  return a;
}

}  // namespace

Bytes Advertisement::serialize(ByteView cluster_key) const {
  Bytes frame = adv_body(*this);
  append_mac(frame, cluster_key);
  return frame;
}

Bytes Advertisement::serialize(const crypto::HmacKey& key) const {
  Bytes frame = adv_body(*this);
  append_mac(frame, key);
  return frame;
}

std::optional<Advertisement> Advertisement::parse(ByteView frame,
                                                  ByteView cluster_key) {
  auto body = strip_mac(frame, cluster_key);
  if (!body) return std::nullopt;
  return parse_adv_body(*body);
}

std::optional<Advertisement> Advertisement::parse(ByteView frame,
                                                  const crypto::HmacKey& key) {
  auto body = strip_mac(frame, key);
  if (!body) return std::nullopt;
  return parse_adv_body(*body);
}

namespace {

Bytes snack_body(const Snack& s) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(PacketType::kSnack));
  w.u32(s.version);
  w.u32(s.sender);
  w.u32(s.target);
  w.u32(s.page);
  w.u16(static_cast<std::uint16_t>(s.requested.size()));
  w.bytes(view(s.requested.to_bytes()));
  return std::move(w).take();
}

std::optional<Snack> parse_snack_body(ByteView body) {
  Reader r(body);
  Snack s;
  auto type = r.try_u8();
  if (!type || *type != static_cast<std::uint8_t>(PacketType::kSnack))
    return std::nullopt;
  auto ver = r.try_u32();
  auto sender = r.try_u32();
  auto target = r.try_u32();
  auto page = r.try_u32();
  auto bits = r.try_u16();
  if (!ver || !sender || !target || !page || !bits) return std::nullopt;
  auto raw = r.try_bytes((static_cast<std::size_t>(*bits) + 7) / 8);
  if (!raw || !r.at_end()) return std::nullopt;
  s.version = *ver;
  s.sender = *sender;
  s.target = *target;
  s.page = *page;
  s.requested = BitVec::from_bytes(view(*raw), *bits);
  return s;
}

}  // namespace

Bytes Snack::serialize(ByteView cluster_key) const {
  Bytes frame = snack_body(*this);
  append_mac(frame, cluster_key);
  return frame;
}

Bytes Snack::serialize(const crypto::HmacKey& key) const {
  Bytes frame = snack_body(*this);
  append_mac(frame, key);
  return frame;
}

std::optional<Snack> Snack::parse(ByteView frame, ByteView cluster_key) {
  auto body = strip_mac(frame, cluster_key);
  if (!body) return std::nullopt;
  return parse_snack_body(*body);
}

std::optional<Snack> Snack::parse(ByteView frame, const crypto::HmacKey& key) {
  auto body = strip_mac(frame, key);
  if (!body) return std::nullopt;
  return parse_snack_body(*body);
}

std::optional<NodeId> Snack::peek_sender(ByteView frame) {
  Reader r(frame);
  auto type = r.try_u8();
  if (!type || *type != static_cast<std::uint8_t>(PacketType::kSnack))
    return std::nullopt;
  if (!r.try_u32()) return std::nullopt;  // version
  return r.try_u32();
}

Bytes leap_source_key(ByteView master, NodeId v) {
  Writer w;
  w.u8(0x4c);  // 'L' domain tag
  w.u32(v);
  const crypto::Sha256Digest d = crypto::hmac_sha256(master, view(w.data()));
  return Bytes(d.begin(), d.begin() + 16);
}

Bytes DataPacket::serialize() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(PacketType::kData));
  w.u32(version);
  w.u32(page);
  w.u32(index);
  w.sized_bytes(view(payload));
  return std::move(w).take();
}

std::optional<DataPacket> DataPacket::parse(ByteView frame) {
  Reader r(frame);
  DataPacket d;
  auto type = r.try_u8();
  if (!type || *type != static_cast<std::uint8_t>(PacketType::kData))
    return std::nullopt;
  auto ver = r.try_u32();
  auto page = r.try_u32();
  auto index = r.try_u32();
  if (!ver || !page || !index) return std::nullopt;
  auto payload = r.try_sized_bytes();
  if (!payload || !r.at_end()) return std::nullopt;
  d.version = *ver;
  d.page = *page;
  d.index = *index;
  d.payload = *std::move(payload);
  return d;
}

Bytes DataPacket::hash_preimage() const {
  Writer w;
  w.u32(version);
  w.u32(page);
  w.u32(index);
  w.bytes(view(payload));
  return std::move(w).take();
}

crypto::PacketHash data_packet_hash(Version version, std::uint32_t page,
                                    std::uint32_t index, ByteView payload) {
  // Streamed equivalent of packet_hash(view(DataPacket::hash_preimage())):
  // same little-endian header bytes, same digest, no heap traffic.
  std::uint8_t header[12];
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<std::uint8_t>(version >> (8 * i));
    header[4 + i] = static_cast<std::uint8_t>(page >> (8 * i));
    header[8 + i] = static_cast<std::uint8_t>(index >> (8 * i));
  }
  crypto::Sha256 ctx;
  ctx.update(ByteView(header, sizeof(header))).update(payload);
  const crypto::Sha256Digest full = ctx.finalize();
  crypto::PacketHash out;
  std::copy_n(full.begin(), crypto::kPacketHashSize, out.begin());
  return out;
}

Bytes SignedMeta::serialize() const {
  Writer w;
  w.u32(version);
  w.u32(content_pages);
  w.u32(image_size);
  return std::move(w).take();
}

std::optional<SignedMeta> SignedMeta::parse_from(lrs::Reader& r) {
  SignedMeta m;
  auto ver = r.try_u32();
  auto pages = r.try_u32();
  auto size = r.try_u32();
  if (!ver || !pages || !size) return std::nullopt;
  m.version = *ver;
  m.content_pages = *pages;
  m.image_size = *size;
  return m;
}

Bytes SignaturePacket::signed_message() const {
  Bytes msg = meta.serialize();
  msg.insert(msg.end(), root.begin(), root.end());
  return msg;
}

Bytes SignaturePacket::serialize() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(PacketType::kSignature));
  w.bytes(view(meta.serialize()));
  w.bytes(ByteView(root.data(), root.size()));
  w.bytes(view(puzzle.serialize()));
  w.sized_bytes(view(signature));
  return std::move(w).take();
}

std::optional<SignaturePacket> SignaturePacket::parse(ByteView frame) {
  Reader r(frame);
  SignaturePacket p;
  auto type = r.try_u8();
  if (!type || *type != static_cast<std::uint8_t>(PacketType::kSignature))
    return std::nullopt;
  auto meta = SignedMeta::parse_from(r);
  if (!meta) return std::nullopt;
  p.meta = *meta;
  auto root = r.try_bytes(p.root.size());
  if (!root) return std::nullopt;
  std::copy(root->begin(), root->end(), p.root.begin());
  auto puzzle_bytes = r.try_bytes(crypto::PuzzleSolution::kSerializedSize);
  if (!puzzle_bytes) return std::nullopt;
  auto puzzle = crypto::PuzzleSolution::deserialize(view(*puzzle_bytes));
  if (!puzzle) return std::nullopt;
  p.puzzle = *puzzle;
  auto sig = r.try_sized_bytes();
  if (!sig || !r.at_end()) return std::nullopt;
  p.signature = *std::move(sig);
  return p;
}

}  // namespace lrs::proto
