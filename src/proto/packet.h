// Wire formats for the four packet kinds all three schemes share.
//
// Every frame starts with a one-byte type tag. Advertisements and SNACKs
// optionally carry a truncated HMAC under the shared cluster key (Seluge and
// LR-Seluge authenticate control traffic; Deluge does not). Parsers treat
// malformed frames as hostile input and fail soft.
#pragma once

#include <cstdint>
#include <optional>

#include "crypto/hash.h"
#include "crypto/hmac.h"
#include "crypto/puzzle.h"
#include "util/bitvec.h"
#include "util/buffer.h"
#include "util/types.h"

namespace lrs::proto {

enum class PacketType : std::uint8_t {
  kAdvertisement = 1,
  kSnack = 2,
  kData = 3,
  kSignature = 4,
};

/// Reads the leading type tag without consuming anything else.
std::optional<PacketType> peek_type(ByteView frame);

/// Sentinel page number used in a SNACK to request a rebroadcast of the
/// signature packet (bootstrapping nodes that missed the initial flood).
inline constexpr std::uint32_t kSignatureRequestPage = 0xffffffff;

struct Advertisement {
  Version version = 0;
  NodeId sender = 0;
  std::uint32_t pages_complete = 0;
  bool bootstrapped = false;  // holds a verified Merkle root

  /// Serializes; when `cluster_key` is non-empty a control MAC is appended.
  Bytes serialize(ByteView cluster_key) const;
  /// Parses and, when `cluster_key` is non-empty, verifies the MAC.
  static std::optional<Advertisement> parse(ByteView frame,
                                            ByteView cluster_key);

  /// Precomputed-key variants, bit-identical to the ByteView overloads.
  /// The engine MACs/verifies one control frame per delivery, so it holds
  /// the pad midstates instead of redoing the HMAC key schedule each time.
  Bytes serialize(const crypto::HmacKey& key) const;
  static std::optional<Advertisement> parse(ByteView frame,
                                            const crypto::HmacKey& key);
};

struct Snack {
  Version version = 0;
  NodeId sender = 0;
  NodeId target = 0;
  std::uint32_t page = 0;  // or kSignatureRequestPage
  BitVec requested;        // empty for signature requests

  Bytes serialize(ByteView cluster_key) const;
  static std::optional<Snack> parse(ByteView frame, ByteView cluster_key);

  /// Precomputed-key variants (see Advertisement).
  Bytes serialize(const crypto::HmacKey& key) const;
  static std::optional<Snack> parse(ByteView frame,
                                    const crypto::HmacKey& key);

  /// Reads the claimed sender without verifying anything — used to select
  /// the per-source verification key under LEAP-style SNACK auth.
  static std::optional<NodeId> peek_sender(ByteView frame);
};

/// LEAP-style per-source key: every node v MACs its SNACKs with
/// HMAC(master, v); neighbors hold (here: derive) the key of each
/// neighbor, so a valid MAC *proves* the sender identity.
Bytes leap_source_key(ByteView master, NodeId v);

struct DataPacket {
  Version version = 0;
  std::uint32_t page = 0;
  std::uint32_t index = 0;
  Bytes payload;  // encoded block; page-0 payloads append the Merkle path

  Bytes serialize() const;
  static std::optional<DataPacket> parse(ByteView frame);

  /// The bytes covered by the per-packet hash image: version, page, index
  /// and payload — binding position as well as content.
  Bytes hash_preimage() const;
};

/// packet_hash of the (version, page, index, payload) preimage, streamed
/// straight into the hash context — the digest a receiver computes for
/// every delivered data packet, without materializing hash_preimage().
crypto::PacketHash data_packet_hash(Version version, std::uint32_t page,
                                    std::uint32_t index, ByteView payload);

/// Geometry and identity covered by the root signature. Signing these
/// alongside the root stops an attacker from replaying a root with altered
/// parameters.
struct SignedMeta {
  Version version = 0;
  std::uint32_t content_pages = 0;  // g
  std::uint32_t image_size = 0;     // exact byte length (strips padding)

  Bytes serialize() const;
  static std::optional<SignedMeta> parse_from(lrs::Reader& r);
};

struct SignaturePacket {
  SignedMeta meta{};
  crypto::PacketHash root{};  // Merkle root over the hash page packets
  crypto::PuzzleSolution puzzle{};
  Bytes signature;  // serialized crypto::CertifiedSignature

  /// The message the signature (and puzzle) covers: meta || root.
  Bytes signed_message() const;

  Bytes serialize() const;
  static std::optional<SignaturePacket> parse(ByteView frame);
};

}  // namespace lrs::proto
